/**
 * @file
 * Integration tests of the offline profiling stage against the live device
 * simulator (§III-A).
 */
#include <gtest/gtest.h>

#include "apps/app_registry.h"
#include "core/offline_profiler.h"
#include "core/scenarios.h"

namespace aeo {
namespace {

ProfilerOptions
FastOptions()
{
    ProfilerOptions options;
    options.runs = 1;
    options.measure_duration = SimTime::FromSeconds(10);
    return options;
}

TEST(ProfilerIntegrationTest, SparseProfileCoversAllBandwidthLevels)
{
    const OfflineProfiler profiler;
    ProfilerOptions options = FastOptions();
    options.cpu_levels = {0, 2, 4};  // AngryBirds restriction (levels 1,3,5)
    const ProfileTable table =
        profiler.Profile(MakeAppSpecByName("AngryBirds"), options);
    // Sparse: 3 levels × 13 interpolated bandwidths.
    EXPECT_EQ(table.size(), 3u * 13u);
    EXPECT_GT(table.base_speed_gips(), 0.0);
    EXPECT_GE(table.max_speedup(), table.min_speedup());
}

TEST(ProfilerIntegrationTest, SpeedupIncreasesWithCpuLevelForComputeBoundApp)
{
    const OfflineProfiler profiler;
    ProfilerOptions options = FastOptions();
    options.cpu_levels = {6, 7, 8, 9, 10, 11};
    const ProfileTable table =
        profiler.Profile(MakeAppSpecByName("VidCon"), options);
    // At the lowest bandwidth, speedup must rise with the CPU level.
    double prev = 0.0;
    for (const ProfileEntry& entry : table.entries()) {
        if (entry.config.bw_level == 0) {
            EXPECT_GT(entry.speedup, prev);
            prev = entry.speedup;
        }
    }
    EXPECT_GT(prev, 1.2);
}

TEST(ProfilerIntegrationTest, PowerIncreasesWithCpuLevel)
{
    const OfflineProfiler profiler;
    ProfilerOptions options = FastOptions();
    options.cpu_levels = {0, 4, 8, 12, 16};
    const ProfileTable table =
        profiler.Profile(MakeAppSpecByName("VidCon"), options);
    double prev = 0.0;
    for (const ProfileEntry& entry : table.entries()) {
        if (entry.config.bw_level == 0) {
            EXPECT_GT(entry.power_mw.value(), prev);
            prev = entry.power_mw.value();
        }
    }
}

TEST(ProfilerIntegrationTest, PacedAppSpeedupSaturates)
{
    // AngryBirds: speedup at the highest profiled level stays near the
    // demand cap (≈1.84), far below the frequency ratio (2.94×).
    const OfflineProfiler profiler;
    ProfilerOptions options = FastOptions();
    options.cpu_levels = GetAppScenario("AngryBirds").profile_cpu_levels;
    const ProfileTable table =
        profiler.Profile(MakeAppSpecByName("AngryBirds"), options);
    EXPECT_LT(table.max_speedup(), 2.2);
    EXPECT_GT(table.max_speedup(), 1.5);
}

TEST(ProfilerIntegrationTest, CpuOnlyProfileUsesSentinel)
{
    const OfflineProfiler profiler;
    ProfilerOptions options = FastOptions();
    options.cpu_only = true;
    options.cpu_levels = {0, 2, 4};
    const ProfileTable table =
        profiler.Profile(MakeAppSpecByName("Spotify"), options);
    EXPECT_EQ(table.size(), 3u);
    for (const ProfileEntry& entry : table.entries()) {
        EXPECT_FALSE(entry.config.controls_bandwidth());
    }
}

TEST(ProfilerIntegrationTest, DenseProfileHasFullGrid)
{
    const OfflineProfiler profiler;
    ProfilerOptions options = FastOptions();
    options.sparse = false;
    options.cpu_levels = {0, 4};
    options.measure_duration = SimTime::FromSeconds(5);
    const ProfileTable table =
        profiler.Profile(MakeAppSpecByName("Spotify"), options);
    EXPECT_EQ(table.size(), 2u * 13u);
}

TEST(ProfilerIntegrationTest, GpuGridExtendsTheTable)
{
    // §VII extension: adding GPU levels multiplies the grid; the table rows
    // carry the GPU level and it round-trips through CSV.
    const OfflineProfiler profiler;
    ProfilerOptions options = FastOptions();
    options.cpu_levels = {0, 4};
    options.gpu_levels = {1, 3};
    options.measure_duration = SimTime::FromSeconds(5);
    const ProfileTable table =
        profiler.Profile(MakeAppSpecByName("Spotify"), options);
    EXPECT_EQ(table.size(), 2u * 13u * 2u);
    for (const ProfileEntry& entry : table.entries()) {
        EXPECT_TRUE(entry.config.controls_gpu());
    }
    const ProfileTable parsed =
        ProfileTable::FromCsv("Spotify", table.ToCsv(), table.base_speed_gips());
    ASSERT_EQ(parsed.size(), table.size());
    EXPECT_EQ(parsed.entries()[5].config, table.entries()[5].config);
}

TEST(ProfilerIntegrationTest, MeasurementAveragesRuns)
{
    const OfflineProfiler profiler;
    ProfilerOptions options = FastOptions();
    options.runs = 3;
    options.measure_duration = SimTime::FromSeconds(5);
    const ProfileMeasurement m = profiler.MeasureConfig(
        MakeAppSpecByName("AngryBirds"), SystemConfig{0, 0}, options);
    EXPECT_NEAR(m.gips, 0.129, 0.012);
    EXPECT_GT(m.power_mw.value(), 1000.0);
}

}  // namespace
}  // namespace aeo
