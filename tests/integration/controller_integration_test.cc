/**
 * @file
 * Closed-loop integration tests: the online controller driving the live
 * device simulator (§III-B).
 */
#include <gtest/gtest.h>

#include "apps/app_registry.h"
#include "core/offline_profiler.h"
#include "core/online_controller.h"
#include "platform/sim_platform.h"
#include "core/scenarios.h"
#include "device/device.h"

namespace aeo {
namespace {

ProfileTable
ProfileFast(const std::string& app)
{
    const OfflineProfiler profiler;
    ProfilerOptions options;
    options.runs = 1;
    options.measure_duration = SimTime::FromSeconds(10);
    options.cpu_levels = GetAppScenario(app).profile_cpu_levels;
    return profiler.Profile(MakeAppSpecByName(app), options);
}

struct ControlledRun {
    RunResult result;
    size_t cycles = 0;
    double final_base_estimate = 0.0;
};

ControlledRun
RunControlled(const std::string& app, double target_gips, SimTime duration,
              uint64_t seed = 555)
{
    const ProfileTable table = ProfileFast(app);
    DeviceConfig device_config;
    device_config.seed = seed;
    Device device(device_config);
    device.LaunchApp(MakeAppSpecByName(app));
    ControllerConfig config;
    config.target_gips = target_gips;
    platform::SimPlatform plat(&device);
    OnlineController controller(&plat, table, config);
    controller.Start();
    device.RunFor(duration);
    controller.Stop();
    ControlledRun run;
    run.result = device.CollectResult("controller");
    run.cycles = controller.cycle_count();
    run.final_base_estimate = controller.base_speed_estimate();
    return run;
}

TEST(ControllerIntegrationTest, MeetsPerformanceTargetOnPacedApp)
{
    // AngryBirds: target between the base speed and the saturation rate.
    const double target = 0.20;
    const ControlledRun run =
        RunControlled("AngryBirds", target, SimTime::FromSeconds(60));
    EXPECT_NEAR(run.result.avg_gips, target, target * 0.06);
    EXPECT_GE(run.cycles, 25u);
}

TEST(ControllerIntegrationTest, KalmanEstimatesBaseSpeed)
{
    const ControlledRun run =
        RunControlled("AngryBirds", 0.20, SimTime::FromSeconds(60));
    // True base speed ≈ 0.129 GIPS.
    EXPECT_NEAR(run.final_base_estimate, 0.129, 0.02);
}

TEST(ControllerIntegrationTest, UnreachableTargetPinsTopConfig)
{
    const ControlledRun run =
        RunControlled("AngryBirds", 5.0, SimTime::FromSeconds(40));
    // Saturated at the table's maximum (~0.237 GIPS).
    EXPECT_GT(run.result.avg_gips, 0.21);
    EXPECT_LT(run.result.avg_gips, 0.28);
}

TEST(ControllerIntegrationTest, LowTargetRunsAtCheapConfigs)
{
    const ControlledRun low =
        RunControlled("AngryBirds", 0.14, SimTime::FromSeconds(60));
    const ControlledRun high =
        RunControlled("AngryBirds", 0.22, SimTime::FromSeconds(60));
    EXPECT_LT(low.result.avg_power_mw.value(), high.result.avg_power_mw.value());
}

TEST(ControllerIntegrationTest, ControllerSwitchesGovernorsToUserspace)
{
    const ProfileTable table = ProfileFast("Spotify");
    Device device;
    device.LaunchApp(MakeAppSpecByName("Spotify"));
    ControllerConfig config;
    config.target_gips = 0.04;
    platform::SimPlatform plat(&device);
    OnlineController controller(&plat, table, config);
    controller.Start();
    EXPECT_EQ(device.sysfs().Read(std::string(kCpufreqSysfsRoot) + "/scaling_governor"),
              "userspace");
    EXPECT_EQ(device.sysfs().Read(std::string(kDevfreqSysfsRoot) + "/governor"),
              "userspace");
    device.RunFor(SimTime::FromSeconds(10));
    controller.Stop();
}

TEST(ControllerIntegrationTest, CpuOnlyModeLeavesBusWithHwmon)
{
    const OfflineProfiler profiler;
    ProfilerOptions options;
    options.runs = 1;
    options.measure_duration = SimTime::FromSeconds(10);
    options.cpu_only = true;
    options.cpu_levels = GetAppScenario("Spotify").profile_cpu_levels;
    const ProfileTable table =
        profiler.Profile(MakeAppSpecByName("Spotify"), options);

    Device device;
    device.LaunchApp(MakeAppSpecByName("Spotify"));
    ControllerConfig config;
    config.target_gips = 0.04;
    platform::SimPlatform plat(&device);
    OnlineController controller(&plat, table, config);
    controller.Start();
    EXPECT_EQ(device.sysfs().Read(std::string(kDevfreqSysfsRoot) + "/governor"),
              "cpubw_hwmon");
    device.RunFor(SimTime::FromSeconds(20));
    controller.Stop();
}

TEST(ControllerIntegrationTest, HistoryRecordsSchedules)
{
    const ControlledRun run =
        RunControlled("AngryBirds", 0.20, SimTime::FromSeconds(30));
    ASSERT_GE(run.cycles, 10u);
    // Schedules bracket the requirement: low speedup ≤ high speedup.
    // (Records are inspected through the controller, so re-run in place.)
    const ProfileTable table = ProfileFast("AngryBirds");
    Device device;
    device.LaunchApp(MakeAppSpecByName("AngryBirds"));
    ControllerConfig config;
    config.target_gips = 0.20;
    platform::SimPlatform plat(&device);
    OnlineController controller(&plat, table, config);
    controller.Start();
    device.RunFor(SimTime::FromSeconds(30));
    controller.Stop();
    for (const ControlCycleRecord& record : controller.history()) {
        EXPECT_GT(record.required_speedup, 0.0);
        EXPECT_GT(record.base_speed_estimate, 0.0);
        EXPECT_LE(record.low_config.cpu_level, record.high_config.cpu_level);
    }
}

TEST(ControllerIntegrationTest, DwellQuantizationRespectsMinimum)
{
    // Observe CPU transitions: with T = 2 s and a 200 ms minimum dwell, at
    // most 2 configs per cycle → transition rate bounded by ~2 per cycle.
    const ControlledRun run =
        RunControlled("AngryBirds", 0.18, SimTime::FromSeconds(60));
    EXPECT_LE(run.result.cpu_transitions, 2u * 30u + 4u);
}

}  // namespace
}  // namespace aeo
