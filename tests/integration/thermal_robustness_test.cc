/**
 * @file
 * Thermal-robustness integration tests: the hardened control loop against
 * the silent adversaries — msm_thermal clamping the frequency table under
 * sustained load, injected silent-clamp faults, profile drift from
 * temperature-dependent leakage — plus the watchdog's re-engagement path.
 *
 * The acceptance bar (DESIGN.md §"Failure model"): with the thermal
 * adversary at its harshest stage the controller still meets the target
 * whenever the reachable set permits, never dwells on a clamped-away
 * configuration, keeps drift-corrected power predictions within 10 % of
 * measurements, and fault-free runs remain bit-identical to a controller
 * without the hardening machinery.
 */
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "apps/app_registry.h"
#include "core/offline_profiler.h"
#include "core/online_controller.h"
#include "platform/sim_platform.h"
#include "core/scenarios.h"
#include "device/device.h"

namespace aeo {
namespace {

constexpr double kTarget = 0.20;  // AngryBirds: between base and saturation

ProfileTable
ProfileFast(const std::string& app)
{
    const OfflineProfiler profiler;
    ProfilerOptions options;
    options.runs = 1;
    options.measure_duration = SimTime::FromSeconds(10);
    options.cpu_levels = GetAppScenario(app).profile_cpu_levels;
    return profiler.Profile(MakeAppSpecByName(app), options);
}

/** A fast-heating package so a 2-minute run spans several clamp stages. */
ThermalParams
HotPackage()
{
    ThermalParams params;
    params.resistance_c_per_w = 12.0;
    params.capacitance_j_per_c = 1.0;  // RC = 12 s
    return params;
}

/** Checks the cycle never planned above the cap it reported planning under. */
void
ExpectNoDwellOnClampedConfigs(const std::vector<ControlCycleRecord>& history)
{
    for (const ControlCycleRecord& record : history) {
        if (record.cpu_cap_level < 0) {
            continue;
        }
        EXPECT_LE(record.low_config.cpu_level, record.cpu_cap_level)
            << "planned below-slot above the cap at t=" << record.time_s;
        EXPECT_LE(record.high_config.cpu_level, record.cpu_cap_level)
            << "planned above-slot above the cap at t=" << record.time_s;
    }
}

TEST(ThermalRobustnessTest, ThrottlingAdversaryIsMaskedNotFatal)
{
    const ProfileTable table = ProfileFast("AngryBirds");

    DeviceConfig device_config;
    device_config.seed = 555;
    Device device(device_config);
    device.LaunchApp(MakeAppSpecByName("AngryBirds"));
    MsmThermalParams msm;
    msm.trigger_temp_c = 30.0;  // sustained load crosses this within ~10 s
    msm.levels_per_step = 2;
    msm.min_cap_level = 9;      // harshest stage still reaches the target
    device.EnableThermal(HotPackage(), msm);

    ControllerConfig config;
    config.target_gips = kTarget;
    platform::SimPlatform plat(&device);
    OnlineController controller(&plat, table, config);
    controller.Start();
    device.RunFor(SimTime::FromSeconds(120));
    controller.Stop();
    const RunResult result = device.CollectResult("controller+thermal");

    // The adversary actually fired, repeatedly and in stages.
    ASSERT_NE(device.msm_thermal(), nullptr);
    EXPECT_GE(device.msm_thermal()->max_stage_reached(), 1);
    EXPECT_GT(device.msm_thermal()->clamp_event_count(), 0u);

    // Clamps are silent successes, not write failures: the watchdog must
    // never trip, and the loop must run the full campaign.
    EXPECT_FALSE(controller.fallback_engaged());
    EXPECT_GE(controller.cycle_count(), 50u);
    EXPECT_GT(result.duration_s, 119.0);

    // The controller saw the cap (via read-back / scaling_max_freq) and
    // planned only over the reachable subset.
    bool saw_cap = false;
    bool saw_heat = false;
    for (const ControlCycleRecord& record : controller.history()) {
        saw_cap = saw_cap || record.cpu_cap_level >= 0;
        saw_heat = saw_heat || record.temp_c > msm.trigger_temp_c;
    }
    EXPECT_TRUE(saw_cap);
    EXPECT_TRUE(saw_heat);
    ExpectNoDwellOnClampedConfigs(controller.history());

    // With the floor chosen so the target stays reachable, the throttled
    // steady state still regulates to the target.
    double late_gips = 0.0;
    int late = 0;
    for (const ControlCycleRecord& record : controller.history()) {
        if (record.time_s > 60.0 && !record.degraded && !record.safe_mode) {
            late_gips += record.measured_gips;
            ++late;
        }
    }
    ASSERT_GT(late, 10);
    EXPECT_NEAR(late_gips / late, kTarget, 0.12 * kTarget);
}

TEST(ThermalRobustnessTest, InjectedSilentClampEpisodeIsDetectedAndOutlived)
{
    const ProfileTable table = ProfileFast("AngryBirds");

    FaultRule clamp;  // one msm_thermal-style episode: 10 lying writes
    clamp.path_prefix = std::string(kCpufreqSysfsRoot) + "/scaling_setspeed";
    clamp.silent_clamp_probability = 1.0;
    clamp.silent_clamp_factor = 0.5;
    clamp.max_triggers = 10;

    DeviceConfig device_config;
    device_config.seed = 555;
    device_config.fault_rules = {clamp};
    Device device(device_config);
    device.LaunchApp(MakeAppSpecByName("AngryBirds"));

    ControllerConfig config;
    config.target_gips = kTarget;
    platform::SimPlatform plat(&device);
    OnlineController controller(&plat, table, config);
    controller.Start();
    device.RunFor(SimTime::FromSeconds(120));
    controller.Stop();
    const RunResult result = device.CollectResult("controller+silent-clamps");

    // Read-back caught the lies and filed them apart from write failures.
    const platform::ActuationStats& stats = controller.actuator().stats();
    EXPECT_GE(stats.silent_clamps, 1u);
    EXPECT_EQ(stats.failed_ops, 0u);
    EXPECT_FALSE(controller.fallback_engaged());
    ExpectNoDwellOnClampedConfigs(controller.history());

    // Once the episode ends the learned cap expires and the loop returns to
    // the target (same bar as the transient-fault campaign: twice the
    // fault-free tolerance).
    double late_gips = 0.0;
    int late = 0;
    for (const ControlCycleRecord& record : controller.history()) {
        if (record.time_s > 80.0 && !record.degraded) {
            late_gips += record.measured_gips;
            ++late;
        }
    }
    ASSERT_GT(late, 5);
    EXPECT_NEAR(late_gips / late, kTarget, 2.0 * 0.06 * kTarget);
    EXPECT_GT(result.duration_s, 119.0);
}

TEST(ThermalRobustnessTest, OneOffLyingWriteDoesNotMaskTheFeasibleSet)
{
    const ProfileTable table = ProfileFast("AngryBirds");

    // One cycle's worth of lying writes, never re-confirmed. (Two triggers:
    // the first write requests the lowest level, where a halved frequency
    // still maps to the same level and nothing is detectably clamped; the
    // second hits the cycle's high slot.)
    FaultRule lie;
    lie.path_prefix = std::string(kCpufreqSysfsRoot) + "/scaling_setspeed";
    lie.silent_clamp_probability = 1.0;
    lie.silent_clamp_factor = 0.5;
    lie.max_triggers = 2;

    DeviceConfig device_config;
    device_config.seed = 555;
    device_config.fault_rules = {lie};
    Device device(device_config);
    device.LaunchApp(MakeAppSpecByName("AngryBirds"));

    ControllerConfig config;
    config.target_gips = kTarget;
    platform::SimPlatform plat(&device);
    OnlineController controller(&plat, table, config);
    controller.Start();
    device.RunFor(SimTime::FromSeconds(60));
    controller.Stop();

    // Read-back caught the lie...
    EXPECT_GE(controller.actuator().stats().silent_clamps, 1u);
    // ...but one cycle of evidence is below cap_confirm_cycles, so no
    // mismatch cap ever engages and the plan keeps the full table.
    for (const ControlCycleRecord& record : controller.history()) {
        EXPECT_LT(record.cpu_cap_level, 0)
            << "a one-off lie engaged a cap at t=" << record.time_s;
    }
    EXPECT_FALSE(controller.fallback_engaged());
}

TEST(ThermalRobustnessTest, SafeModeEngagesWhenTheTargetBecomesUnreachable)
{
    const ProfileTable table = ProfileFast("AngryBirds");

    DeviceConfig device_config;
    device_config.seed = 555;
    Device device(device_config);
    device.LaunchApp(MakeAppSpecByName("AngryBirds"));
    MsmThermalParams msm;
    msm.trigger_temp_c = 28.0;
    msm.levels_per_step = 6;  // harsh: plunges to the floor within a second
    msm.min_cap_level = GetAppScenario("AngryBirds").profile_cpu_levels.front();
    device.EnableThermal(HotPackage(), msm);

    ControllerConfig config;
    // Near the top of the profiled range: unreachable once clamped.
    config.target_gips = table.GipsForSpeedup(0.9 * table.max_speedup());
    platform::SimPlatform plat(&device);
    OnlineController controller(&plat, table, config);
    controller.Start();
    device.RunFor(SimTime::FromSeconds(60));
    controller.Stop();

    // The reachable set shrank below the target: the controller runs the
    // safe-mode envelope at the best reachable point instead of failing.
    EXPECT_GT(controller.safe_mode_cycle_count(), 0u);
    EXPECT_FALSE(controller.fallback_engaged());
    EXPECT_GE(controller.cycle_count(), 25u);
    ExpectNoDwellOnClampedConfigs(controller.history());
}

TEST(ThermalRobustnessTest, DriftCorrectionTracksLeakageHeating)
{
    const ProfileTable table = ProfileFast("AngryBirds");

    DeviceConfig device_config;
    device_config.seed = 555;
    // Strong temperature-dependent leakage: the profiled power surface
    // (measured cold) drifts as the package heats.
    device_config.power_params.leak_temp_coeff_per_c = 0.08;
    Device device(device_config);
    device.LaunchApp(MakeAppSpecByName("AngryBirds"));
    MsmThermalParams msm;
    msm.trigger_temp_c = 1000.0;  // pure drift: no clamping in this test
    device.EnableThermal(HotPackage(), msm);

    ControllerConfig config;
    config.target_gips = kTarget;
    config.drift.enabled = true;
    platform::SimPlatform plat(&device);
    OnlineController controller(&plat, table, config);
    controller.Start();
    device.RunFor(SimTime::FromSeconds(120));
    controller.Stop();

    // The package heated and the detector observed the drift.
    const std::vector<ControlCycleRecord>& history = controller.history();
    ASSERT_GT(history.size(), 40u);
    EXPECT_GT(history.back().temp_c, 30.0);
    EXPECT_GT(controller.drift().observation_count(), 0u);

    // Acceptance: drift-corrected predicted power tracks measured power to
    // within 10 % once the EWMA has converged. Record i's expectation is the
    // plan the *next* record measures, so compare aligned pairs.
    double rel_err_sum = 0.0;
    int pairs = 0;
    for (size_t i = 0; i + 1 < history.size(); ++i) {
        const ControlCycleRecord& plan = history[i];
        const ControlCycleRecord& outcome = history[i + 1];
        if (plan.time_s <= 60.0 || plan.degraded || outcome.degraded ||
            outcome.measured_power_mw.value() <= 0.0) {
            continue;
        }
        rel_err_sum += std::abs(plan.expected_power_mw.value() -
                                outcome.measured_power_mw.value()) /
                       outcome.measured_power_mw.value();
        ++pairs;
    }
    ASSERT_GT(pairs, 10);
    EXPECT_LE(rel_err_sum / pairs, 0.10);
    EXPECT_TRUE(controller.drift().AnyCorrection());
}

TEST(ThermalRobustnessTest, ReadbackMachineryIsInvisibleWhenHealthy)
{
    // Acceptance: fault-free runs are bit-identical with the hardening on or
    // off — read-backs, cap reads and zone-temperature reads are pure, and
    // no RNG stream shifts.
    const ProfileTable table = ProfileFast("AngryBirds");

    auto run = [&](bool readback) {
        DeviceConfig device_config;
        device_config.seed = 555;
        Device device(device_config);
        device.LaunchApp(MakeAppSpecByName("AngryBirds"));
        ControllerConfig config;
        config.target_gips = kTarget;
        config.readback_verification = readback;
        platform::SimPlatform plat(&device);
    OnlineController controller(&plat, table, config);
        controller.Start();
        device.RunFor(SimTime::FromSeconds(60));
        controller.Stop();
        return device.CollectResult(readback ? "verified" : "blind");
    };

    const RunResult verified = run(true);
    const RunResult blind = run(false);
    EXPECT_EQ(verified.energy_j, blind.energy_j);  // bit-identical
    EXPECT_EQ(verified.avg_gips, blind.avg_gips);
    EXPECT_EQ(verified.avg_power_mw.value(), blind.avg_power_mw.value());
}

TEST(ThermalRobustnessTest, CoolThermalSubsystemDoesNotPerturbTheRun)
{
    // With the zone below trigger and zero leakage coefficient the thermal
    // subsystem is pure observation: energy matches a thermally
    // unconstrained device to numerical identity.
    const ProfileTable table = ProfileFast("AngryBirds");

    auto run = [&](bool thermal) {
        DeviceConfig device_config;
        device_config.seed = 555;
        Device device(device_config);
        device.LaunchApp(MakeAppSpecByName("AngryBirds"));
        if (thermal) {
            MsmThermalParams msm;
            msm.trigger_temp_c = 500.0;  // never reached
            device.EnableThermal(ThermalParams{}, msm);
        }
        ControllerConfig config;
        config.target_gips = kTarget;
        platform::SimPlatform plat(&device);
    OnlineController controller(&plat, table, config);
        controller.Start();
        device.RunFor(SimTime::FromSeconds(60));
        controller.Stop();
        return device.CollectResult(thermal ? "thermal" : "plain");
    };

    const RunResult with = run(true);
    const RunResult without = run(false);
    EXPECT_EQ(with.energy_j, without.energy_j);
    EXPECT_EQ(with.avg_gips, without.avg_gips);
}

TEST(ThermalRobustnessTest, WatchdogReengagesAfterTheDeviceHeals)
{
    const ProfileTable table = ProfileFast("AngryBirds");

    FaultRule sticky;  // latches on the first write, then never re-arms
    sticky.path_prefix = std::string(kCpufreqSysfsRoot) + "/scaling_setspeed";
    sticky.fail_probability = 1.0;
    sticky.errc = FaultErrc::kIo;
    sticky.duration = FaultDuration::kSticky;
    sticky.max_triggers = 1;

    DeviceConfig device_config;
    device_config.seed = 555;
    device_config.fault_rules = {sticky};
    Device device(device_config);
    device.LaunchApp(MakeAppSpecByName("AngryBirds"));

    ControllerConfig config;
    config.target_gips = kTarget;
    platform::SimPlatform plat(&device);
    OnlineController controller(&plat, table, config);
    controller.Start();
    // The kernel path heals mid-run (a reboot of the flaky subsystem); the
    // recovery probes then see healthy writes and re-engage control.
    device.sim().ScheduleAt(SimTime::FromSeconds(20), [&device] {
        device.fault_injector()->RepairAll();
    });
    device.RunFor(SimTime::FromSeconds(120));
    controller.Stop();
    const RunResult result = device.CollectResult("controller+reengage");

    EXPECT_EQ(controller.reengage_count(), 1u);
    EXPECT_FALSE(controller.fallback_engaged());
    EXPECT_GT(controller.actuator().stats().failed_ops, 0u);
    // Control resumed: a healthy tail of cycles regulates to the target.
    EXPECT_GE(controller.cycle_count(), 20u);
    double late_gips = 0.0;
    int late = 0;
    for (const ControlCycleRecord& record : controller.history()) {
        if (record.time_s > 80.0 && !record.degraded) {
            late_gips += record.measured_gips;
            ++late;
        }
    }
    ASSERT_GT(late, 5);
    EXPECT_NEAR(late_gips / late, kTarget, 2.0 * 0.06 * kTarget);
    EXPECT_GT(result.duration_s, 119.0);
}

}  // namespace
}  // namespace aeo
