/**
 * @file
 * Robustness integration tests: the hardened control loop driving a device
 * whose kernel interfaces and instruments misbehave (see DESIGN.md §
 * "Failure model & degraded mode").
 *
 * The acceptance bar: at a 5 % transient fault rate the controller completes
 * a full scenario run with no Fatal() escape and a performance violation no
 * worse than twice the fault-free tolerance; at 100 % sticky actuation
 * failure the watchdog hands the device back to the stock governors within
 * K = 3 control cycles.
 */
#include <gtest/gtest.h>

#include "apps/app_registry.h"
#include "core/offline_profiler.h"
#include "core/online_controller.h"
#include "platform/sim_platform.h"
#include "core/scenarios.h"
#include "device/device.h"

namespace aeo {
namespace {

constexpr double kTarget = 0.20;  // AngryBirds: between base and saturation

ProfileTable
ProfileFast(const std::string& app)
{
    const OfflineProfiler profiler;
    ProfilerOptions options;
    options.runs = 1;
    options.measure_duration = SimTime::FromSeconds(10);
    options.cpu_levels = GetAppScenario(app).profile_cpu_levels;
    return profiler.Profile(MakeAppSpecByName(app), options);
}

/** Fault rules covering every guarded path at one transient rate. */
std::vector<FaultRule>
TransientFaultsEverywhere(double rate)
{
    std::vector<FaultRule> rules;

    FaultRule sysfs_writes;  // actuation: EBUSY on the speed knobs
    sysfs_writes.path_prefix = std::string(kCpufreqSysfsRoot);
    sysfs_writes.fail_probability = rate;
    sysfs_writes.errc = FaultErrc::kBusy;
    rules.push_back(sysfs_writes);
    sysfs_writes.path_prefix = std::string(kDevfreqSysfsRoot);
    rules.push_back(sysfs_writes);

    FaultRule pmu;  // measurement: dropped and stale PMU reads
    pmu.path_prefix = kPmuFaultPath;
    pmu.fail_probability = rate;
    pmu.errc = FaultErrc::kIo;
    pmu.stale_probability = rate;
    rules.push_back(pmu);

    FaultRule meter;  // power meter: missed sample windows
    meter.path_prefix = kMonsoonFaultPath;
    meter.fail_probability = rate;
    meter.errc = FaultErrc::kIo;
    rules.push_back(meter);

    return rules;
}

struct FaultedRun {
    RunResult result;
    size_t cycles = 0;
    uint64_t degraded = 0;
    uint64_t fault_events = 0;
    bool fallback = false;
};

FaultedRun
RunControlled(const ProfileTable& table, std::vector<FaultRule> rules,
              uint64_t seed = 555)
{
    DeviceConfig device_config;
    device_config.seed = seed;
    device_config.fault_rules = std::move(rules);
    Device device(device_config);
    device.LaunchApp(MakeAppSpecByName("AngryBirds"));
    ControllerConfig config;
    config.target_gips = kTarget;
    platform::SimPlatform plat(&device);
    OnlineController controller(&plat, table, config);
    controller.Start();
    device.RunFor(SimTime::FromSeconds(60));
    controller.Stop();
    FaultedRun run;
    run.result = device.CollectResult("controller+faults");
    run.cycles = controller.cycle_count();
    run.degraded = controller.degraded_cycle_count();
    run.fault_events = device.fault_injector() != nullptr
                           ? device.fault_injector()->trace().size()
                           : 0;
    run.fallback = controller.fallback_engaged();
    return run;
}

TEST(FaultInjectionTest, FivePercentTransientFaultsAreSurvived)
{
    const ProfileTable table = ProfileFast("AngryBirds");
    // Reaching this point without a FatalError escape IS half the test: at
    // a 5 % fault rate the unhardened loop's first EBUSY would have thrown.
    const FaultedRun run = RunControlled(table, TransientFaultsEverywhere(0.05));

    EXPECT_GT(run.fault_events, 50u);  // the campaign actually fired
    EXPECT_FALSE(run.fallback);        // transient faults never trip K = 3
    EXPECT_GE(run.cycles, 25u);

    // The fault-free loop regulates to ±6 % (controller integration suite);
    // under faults the violation stays within twice that.
    EXPECT_NEAR(run.result.avg_gips, kTarget, 2.0 * 0.06 * kTarget);
}

TEST(FaultInjectionTest, FaultCampaignIsDeterministic)
{
    const ProfileTable table = ProfileFast("AngryBirds");
    const FaultedRun first = RunControlled(table, TransientFaultsEverywhere(0.05));
    const FaultedRun second = RunControlled(table, TransientFaultsEverywhere(0.05));
    EXPECT_EQ(first.fault_events, second.fault_events);
    EXPECT_EQ(first.degraded, second.degraded);
    EXPECT_EQ(first.result.energy_j, second.result.energy_j);  // bit-identical
    EXPECT_EQ(first.result.avg_gips, second.result.avg_gips);
}

TEST(FaultInjectionTest, FaultFreeRunsAreUnperturbedByTheFaultLayer)
{
    // A device with no fault rules must be bit-identical to the seed
    // behaviour: the injector is not even constructed, and no RNG stream
    // shifts. Guarded by comparing against an explicit empty-rules run.
    const ProfileTable table = ProfileFast("AngryBirds");
    const FaultedRun without = RunControlled(table, {});
    EXPECT_EQ(without.fault_events, 0u);
    EXPECT_EQ(without.degraded, 0u);
    EXPECT_NEAR(without.result.avg_gips, kTarget, 0.06 * kTarget);
}

TEST(FaultInjectionTest, StickyActuationFailureFallsBackWithinThreeCycles)
{
    const ProfileTable table = ProfileFast("AngryBirds");
    FaultRule sticky;
    sticky.path_prefix = std::string(kCpufreqSysfsRoot) + "/scaling_setspeed";
    sticky.fail_probability = 1.0;
    sticky.errc = FaultErrc::kIo;
    sticky.duration = FaultDuration::kSticky;
    const FaultedRun run = RunControlled(table, {sticky});

    EXPECT_TRUE(run.fallback);
    // Start's apply is strike one; the watchdog fires on the cycle that
    // makes strike three, so at most two cycle records accumulate.
    EXPECT_LE(run.cycles, 2u);
    // The run itself continues to completion under the stock governors.
    EXPECT_GT(run.result.duration_s, 59.0);
}

TEST(FaultInjectionTest, MeterDropoutsThinTheDataWithoutBiasingIt)
{
    const ProfileTable table = ProfileFast("AngryBirds");
    FaultRule meter;
    meter.path_prefix = kMonsoonFaultPath;
    meter.fail_probability = 0.25;
    meter.errc = FaultErrc::kIo;
    const FaultedRun run = RunControlled(table, {meter});

    // A quarter of the windows are gone, but the surviving samples still
    // estimate the true average power closely.
    EXPECT_NEAR(run.result.measured_avg_power_mw.value(), run.result.avg_power_mw.value(),
                0.02 * run.result.avg_power_mw.value());
}

}  // namespace
}  // namespace aeo
