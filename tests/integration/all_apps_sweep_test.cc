/**
 * @file
 * Parameterized end-to-end sweep over all six evaluation applications:
 * the paper's headline claims as testable invariants.
 *
 *  - the controller's performance stays within a few percent of the default
 *    governors' (the paper's worst case is <1 %; we allow simulation noise);
 *  - energy savings are positive for every application except MobileBench,
 *    which the paper itself identifies as pathological for this controller
 *    (§V-B; its own Table IV reports −4.9 % under NL);
 *  - the controller honours the §V-A residency shape: most bandwidth time
 *    at level 1 for the low-demand apps.
 */
#include <gtest/gtest.h>

#include "core/experiment.h"

namespace aeo {
namespace {

class AllAppsSweepTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllAppsSweepTest, ControllerMeetsTargetAndSaves)
{
    const std::string app = GetParam();
    const ExperimentHarness harness;
    ExperimentOptions options;
    options.profile_runs = 1;
    options.seed = 404;
    const ExperimentOutcome outcome = harness.RunComparison(app, options);

    // Performance within a few percent of the default governors.
    EXPECT_GT(outcome.perf_delta_pct, -4.0) << app;

    if (app != "MobileBench") {
        EXPECT_GT(outcome.energy_savings_pct, 0.0) << app;
    }

    // Both runs completed their scenario.
    EXPECT_GT(outcome.default_run.duration_s, 10.0);
    EXPECT_GT(outcome.controller_run.duration_s, 10.0);
}

TEST_P(AllAppsSweepTest, DeterministicForSameSeed)
{
    const std::string app = GetParam();
    if (app != "Spotify" && app != "MXPlayer") {
        GTEST_SKIP() << "determinism spot-checked on two apps to bound runtime";
    }
    const ExperimentHarness harness;
    ExperimentOptions options;
    options.profile_runs = 1;
    options.seed = 77;
    const ExperimentOutcome a = harness.RunComparison(app, options);
    const ExperimentOutcome b = harness.RunComparison(app, options);
    EXPECT_DOUBLE_EQ(a.energy_savings_pct, b.energy_savings_pct);
    EXPECT_DOUBLE_EQ(a.perf_delta_pct, b.perf_delta_pct);
    EXPECT_DOUBLE_EQ(a.default_run.energy_j, b.default_run.energy_j);
}

INSTANTIATE_TEST_SUITE_P(EvaluationApps, AllAppsSweepTest,
                         ::testing::Values("VidCon", "MobileBench", "AngryBirds",
                                           "WeChat", "MXPlayer", "Spotify"),
                         [](const auto& param_info) { return param_info.param; });

}  // namespace
}  // namespace aeo
