/**
 * @file
 * End-to-end experiment tests: the full §V procedure (default run →
 * profile → controller run → comparison) on a representative subset of
 * apps, asserting the paper's headline shape — energy savings at ≤~1 %
 * performance loss.
 */
#include <gtest/gtest.h>

#include "core/experiment.h"

namespace aeo {
namespace {

ExperimentOptions
FastOptions()
{
    ExperimentOptions options;
    options.profile_runs = 1;  // the scenario's cycle-covering window applies
    options.seed = 31;
    return options;
}

TEST(ExperimentIntegrationTest, SpotifySavesSubstantialEnergy)
{
    const ExperimentHarness harness;
    const ExperimentOutcome outcome = harness.RunComparison("Spotify", FastOptions());
    // Paper Table III: 31.6 % savings at +9.3 % performance. Shape check:
    // double-digit savings without degrading performance beyond ~1.5 %.
    EXPECT_GT(outcome.energy_savings_pct, 10.0);
    EXPECT_GT(outcome.perf_delta_pct, -1.5);
}

TEST(ExperimentIntegrationTest, AngryBirdsSavesEnergyAtTargetPerformance)
{
    const ExperimentHarness harness;
    ExperimentOptions options = FastOptions();
    options.profile_runs = 3;  // single-run tables are too noisy near saturation
    const ExperimentOutcome outcome =
        harness.RunComparison("AngryBirds", options);
    // Paper: 14.9 % savings, +0.6 % performance. (Shape: meaningful savings
    // at essentially unchanged performance.)
    EXPECT_GT(outcome.energy_savings_pct, 3.0);
    EXPECT_GT(outcome.perf_delta_pct, -1.5);
}

TEST(ExperimentIntegrationTest, CpuOnlyControlSavesLessThanCoordinated)
{
    // §V-D: coordinated control beats CPU-only DVFS. Spotify shows it most
    // clearly: the default bandwidth governor keeps over-provisioning the
    // bus on the decode bursts the CPU-only controller cannot veto.
    const ExperimentHarness harness;
    ExperimentOptions coordinated = FastOptions();
    ExperimentOptions cpu_only = FastOptions();
    cpu_only.cpu_only = true;
    const ExperimentOutcome both = harness.RunComparison("Spotify", coordinated);
    const ExperimentOutcome cpu = harness.RunComparison("Spotify", cpu_only);
    EXPECT_GT(both.energy_savings_pct, cpu.energy_savings_pct);
}

TEST(ExperimentIntegrationTest, OutcomeRecordsAreConsistent)
{
    const ExperimentHarness harness;
    const ExperimentOutcome outcome = harness.RunComparison("Spotify", FastOptions());
    EXPECT_EQ(outcome.default_run.policy_name, "default");
    EXPECT_EQ(outcome.controller_run.policy_name, "controller");
    EXPECT_EQ(outcome.default_run.app_name, "Spotify");
    EXPECT_GT(outcome.table.size(), 0u);
    // The reported deltas match the raw runs.
    EXPECT_NEAR(outcome.energy_savings_pct,
                outcome.controller_run.EnergySavingsPercent(outcome.default_run),
                1e-12);
}

}  // namespace
}  // namespace aeo
