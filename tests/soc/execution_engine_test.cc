#include "soc/execution_engine.h"

#include <gtest/gtest.h>

#include <tuple>

#include "soc/nexus6.h"

namespace aeo {
namespace {

WorkloadDemand
SelfPaced(double ipc, double par, double bpi)
{
    WorkloadDemand demand;
    demand.ipc = ipc;
    demand.parallelism = par;
    demand.mem_bytes_per_instr = bpi;
    return demand;
}

TEST(ExecutionEngineTest, ComputeBoundScalesWithFrequency)
{
    const ExecutionEngine engine;
    const WorkloadDemand demand = SelfPaced(1.0, 2.0, 0.0);
    const auto slow = engine.Compute(demand, Gigahertz(0.5), MegabytesPerSecond(762), 4);
    const auto fast = engine.Compute(demand, Gigahertz(2.0), MegabytesPerSecond(762), 4);
    EXPECT_NEAR(fast.gips / slow.gips, 4.0, 1e-9);
}

TEST(ExecutionEngineTest, MemoryBoundSaturatesWithBandwidth)
{
    const ExecutionEngine engine;
    const WorkloadDemand demand = SelfPaced(2.0, 4.0, 8.0);  // heavy traffic
    const auto narrow =
        engine.Compute(demand, Gigahertz(2.0), MegabytesPerSecond(762), 4);
    const auto wide =
        engine.Compute(demand, Gigahertz(2.0), MegabytesPerSecond(16250), 4);
    // Bandwidth-dominated: doubling frequency barely helps, bandwidth does.
    EXPECT_GT(wide.gips / narrow.gips, 5.0);
    const auto faster_clock =
        engine.Compute(demand, Gigahertz(2.6496), MegabytesPerSecond(762), 4);
    EXPECT_LT(faster_clock.gips / narrow.gips, 1.1);
}

TEST(ExecutionEngineTest, DemandCapLimitsRateAndLoad)
{
    const ExecutionEngine engine;
    WorkloadDemand demand = SelfPaced(1.0, 2.0, 0.0);
    demand.demand_gips = 0.5;
    const auto rates = engine.Compute(demand, Gigahertz(2.0), MegabytesPerSecond(762), 4);
    EXPECT_DOUBLE_EQ(rates.gips, 0.5);
    EXPECT_GT(rates.capacity_gips, 3.9);
    // Busy time shrinks proportionally when demand-capped.
    EXPECT_NEAR(rates.busy_cores, 0.5 / rates.capacity_gips * 2.0, 1e-9);
    EXPECT_LT(rates.LoadFraction(4), 0.1);
}

TEST(ExecutionEngineTest, SaturatedWorkloadBusiesItsCores)
{
    const ExecutionEngine engine;
    const WorkloadDemand demand = SelfPaced(0.172, 2.5, 0.06);  // AngryBirds-like
    const auto rates = engine.Compute(demand, Gigahertz(0.3), MegabytesPerSecond(762), 4);
    EXPECT_NEAR(rates.busy_cores, 2.5, 1e-9);
    EXPECT_DOUBLE_EQ(rates.gips, rates.capacity_gips);
}

TEST(ExecutionEngineTest, TrafficFollowsRateAndPrefetch)
{
    const ExecutionEngine engine;
    const WorkloadDemand demand = SelfPaced(1.0, 1.0, 0.5);
    const auto rates = engine.Compute(demand, Gigahertz(1.0), MegabytesPerSecond(8056), 4);
    // Demand traffic (gips × bytes/instr) plus the prefetcher streams that
    // scale with busy cores — the traffic cpubw_hwmon actually sees.
    const double prefetch = engine.params().prefetch_gbps_per_busy_core;
    EXPECT_NEAR(rates.mem_gbps, rates.gips * 0.5 + rates.busy_cores * prefetch, 1e-12);
}

TEST(ExecutionEngineTest, ParallelismIsCappedByCores)
{
    const ExecutionEngine engine;
    const WorkloadDemand demand = SelfPaced(1.0, 8.0, 0.0);
    const auto rates = engine.Compute(demand, Gigahertz(1.0), MegabytesPerSecond(762), 4);
    EXPECT_NEAR(rates.capacity_gips, 4.0, 1e-9);
    EXPECT_NEAR(rates.busy_cores, 4.0, 1e-9);
}

TEST(ExecutionEngineTest, BackgroundStealsBandwidth)
{
    const ExecutionEngine engine;
    const WorkloadDemand fg = SelfPaced(2.0, 4.0, 4.0);  // memory hungry
    WorkloadDemand bg = SelfPaced(0.6, 1.0, 2.0);
    bg.demand_gips = 0.05;
    const auto alone = engine.Compute(fg, Gigahertz(1.0), MegabytesPerSecond(762), 4);
    const auto shared =
        engine.ComputeShared(fg, bg, Gigahertz(1.0), MegabytesPerSecond(762), 4);
    EXPECT_LT(shared.foreground.gips, alone.gips);
    EXPECT_GT(shared.background.gips, 0.0);
}

TEST(ExecutionEngineTest, LoadFractionClamps)
{
    ExecutionRates rates;
    rates.busy_cores = 5.0;
    EXPECT_DOUBLE_EQ(rates.LoadFraction(4), 1.0);
    EXPECT_DOUBLE_EQ(rates.LoadFraction(0), 0.0);
}

/** Property sweep: GIPS is monotonically non-decreasing in both frequency
 * and bandwidth across the full Nexus 6 grid, for several workload mixes. */
class MonotonicityTest
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(MonotonicityTest, GipsMonotoneOverGrid)
{
    const auto [ipc, par, bpi] = GetParam();
    const ExecutionEngine engine;
    const FrequencyTable freqs = MakeNexus6FrequencyTable();
    const BandwidthTable bws = MakeNexus6BandwidthTable();
    const WorkloadDemand demand = SelfPaced(ipc, par, bpi);

    for (int bw = 0; bw < bws.size(); ++bw) {
        double prev = 0.0;
        for (int f = 0; f < freqs.size(); ++f) {
            const auto rates = engine.Compute(demand, freqs.FrequencyAt(f),
                                              bws.BandwidthAt(bw), 4);
            EXPECT_GE(rates.gips, prev - 1e-12)
                << "f level " << f << " bw level " << bw;
            prev = rates.gips;
        }
    }
    for (int f = 0; f < freqs.size(); ++f) {
        double prev = 0.0;
        for (int bw = 0; bw < bws.size(); ++bw) {
            const auto rates = engine.Compute(demand, freqs.FrequencyAt(f),
                                              bws.BandwidthAt(bw), 4);
            EXPECT_GE(rates.gips, prev - 1e-12)
                << "f level " << f << " bw level " << bw;
            prev = rates.gips;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadMixes, MonotonicityTest,
    ::testing::Values(std::make_tuple(0.55, 3.0, 0.10),   // VidCon-like
                      std::make_tuple(0.80, 3.0, 0.45),   // MobileBench-like
                      std::make_tuple(0.172, 2.5, 0.06),  // AngryBirds-like
                      std::make_tuple(0.12, 1.0, 0.35),   // MXPlayer-like
                      std::make_tuple(1.00, 4.0, 2.00),   // memory-heavy
                      std::make_tuple(1.50, 1.0, 0.00))); // pure compute

ClusterOperatingPoint
Op(double ghz, double perf_scale, int cores)
{
    ClusterOperatingPoint op;
    op.frequency = Gigahertz(ghz);
    op.perf_scale = perf_scale;
    op.online_cores = cores;
    return op;
}

TEST(HetExecutionTest, BigOnlyWithIdleLittleMatchesHomogeneousShared)
{
    const ExecutionEngine engine;
    const WorkloadDemand fg = SelfPaced(0.8, 3.0, 0.45);
    WorkloadDemand bg = SelfPaced(0.5, 1.0, 0.2);
    bg.demand_gips = 0.3;

    const auto shared = engine.ComputeShared(fg, bg, Gigahertz(1.5),
                                             MegabytesPerSecond(4684), 4);
    const auto het = engine.ComputeSharedHet(
        fg, bg, Op(1.5, 1.0, 4), Op(0.4, 0.5, 0), ThreadPlacement::kBigOnly,
        0.08, MegabytesPerSecond(4684));

    EXPECT_NEAR(het.foreground.gips, shared.foreground.gips, 1e-9);
    EXPECT_NEAR(het.background.gips, shared.background.gips, 1e-9);
    EXPECT_NEAR(het.big_busy_cores,
                shared.foreground.busy_cores + shared.background.busy_cores,
                1e-9);
    EXPECT_DOUBLE_EQ(het.little_busy_cores, 0.0);
}

TEST(HetExecutionTest, BothPlacementBeatsBigOnlyForParallelWork)
{
    const ExecutionEngine engine;
    const WorkloadDemand fg = SelfPaced(1.0, 8.0, 0.05);
    const WorkloadDemand bg = SelfPaced(0.5, 0.5, 0.1);

    const auto big_only = engine.ComputeSharedHet(
        fg, bg, Op(1.9, 1.0, 4), Op(1.3, 0.58, 4), ThreadPlacement::kBigOnly,
        0.08, MegabytesPerSecond(8132));
    const auto both = engine.ComputeSharedHet(
        fg, bg, Op(1.9, 1.0, 4), Op(1.3, 0.58, 4), ThreadPlacement::kBoth,
        0.08, MegabytesPerSecond(8132));
    EXPECT_GT(both.foreground.gips, big_only.foreground.gips * 1.05);
    EXPECT_GT(both.little_busy_cores, big_only.little_busy_cores);
}

TEST(HetExecutionTest, SpanPenaltyCostsThroughput)
{
    const ExecutionEngine engine;
    const WorkloadDemand fg = SelfPaced(1.0, 8.0, 0.0);
    const WorkloadDemand bg;  // negligible

    const auto free_span = engine.ComputeSharedHet(
        fg, bg, Op(1.9, 1.0, 4), Op(1.3, 0.58, 4), ThreadPlacement::kBoth,
        0.0, MegabytesPerSecond(8132));
    const auto costly_span = engine.ComputeSharedHet(
        fg, bg, Op(1.9, 1.0, 4), Op(1.3, 0.58, 4), ThreadPlacement::kBoth,
        0.20, MegabytesPerSecond(8132));
    EXPECT_LT(costly_span.foreground.gips, free_span.foreground.gips);
}

TEST(HetExecutionTest, LittleOnlyIsSlowerAndKeepsBigIdle)
{
    const ExecutionEngine engine;
    const WorkloadDemand fg = SelfPaced(1.0, 3.0, 0.05);
    const WorkloadDemand bg = SelfPaced(0.5, 0.25, 0.0);

    const auto little_only = engine.ComputeSharedHet(
        fg, bg, Op(1.9, 1.0, 4), Op(1.3, 0.58, 4),
        ThreadPlacement::kLittleOnly, 0.08, MegabytesPerSecond(8132));
    const auto big_only = engine.ComputeSharedHet(
        fg, bg, Op(1.9, 1.0, 4), Op(1.3, 0.58, 4), ThreadPlacement::kBigOnly,
        0.08, MegabytesPerSecond(8132));
    EXPECT_LT(little_only.foreground.gips, big_only.foreground.gips);
    // Foreground is confined to LITTLE; only the background may touch big.
    EXPECT_LE(little_only.big_busy_cores, bg.parallelism + 1e-9);
}

TEST(HetExecutionTest, BackgroundFillsLittleFirst)
{
    const ExecutionEngine engine;
    WorkloadDemand fg = SelfPaced(1.0, 1.0, 0.0);
    fg.demand_gips = 0.1;
    WorkloadDemand bg = SelfPaced(0.6, 1.0, 0.1);
    bg.demand_gips = 0.2;

    const auto het = engine.ComputeSharedHet(
        fg, bg, Op(1.9, 1.0, 4), Op(1.3, 0.58, 4), ThreadPlacement::kBoth,
        0.08, MegabytesPerSecond(8132));
    EXPECT_GT(het.background.gips, 0.0);
    // With one bg thread and plenty of LITTLE capacity, bg load lands there.
    EXPECT_GT(het.little_busy_cores, 0.0);
}

TEST(HetExecutionTest, BusyCoreSplitSumsToWorkloadBusyCores)
{
    const ExecutionEngine engine;
    const WorkloadDemand fg = SelfPaced(0.8, 5.0, 0.3);
    const WorkloadDemand bg = SelfPaced(0.5, 1.5, 0.2);

    const auto het = engine.ComputeSharedHet(
        fg, bg, Op(1.5, 1.0, 4), Op(1.0, 0.58, 4), ThreadPlacement::kBoth,
        0.08, MegabytesPerSecond(5421));
    EXPECT_NEAR(het.big_busy_cores + het.little_busy_cores,
                het.foreground.busy_cores + het.background.busy_cores, 1e-9);
    EXPECT_GE(het.big_max_core_load, 0.0);
    EXPECT_LE(het.big_max_core_load, 1.0);
    EXPECT_GE(het.little_max_core_load, 0.0);
    EXPECT_LE(het.little_max_core_load, 1.0);
}

TEST(HetExecutionTest, HigherLittleClockHelpsLittleConfinedWork)
{
    const ExecutionEngine engine;
    const WorkloadDemand fg = SelfPaced(1.0, 4.0, 0.02);
    const WorkloadDemand bg;

    const auto slow = engine.ComputeSharedHet(
        fg, bg, Op(0.7, 1.0, 4), Op(0.4, 0.58, 4),
        ThreadPlacement::kLittleOnly, 0.08, MegabytesPerSecond(8132));
    const auto fast = engine.ComputeSharedHet(
        fg, bg, Op(0.7, 1.0, 4), Op(1.3, 0.58, 4),
        ThreadPlacement::kLittleOnly, 0.08, MegabytesPerSecond(8132));
    EXPECT_NEAR(fast.foreground.gips / slow.foreground.gips, 1.3 / 0.4, 0.5);
    EXPECT_GT(fast.foreground.gips, slow.foreground.gips * 2.0);
}

}  // namespace
}  // namespace aeo
