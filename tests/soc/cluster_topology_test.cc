#include "soc/cluster_topology.h"

#include <gtest/gtest.h>

#include <set>

#include "soc/exynos5433.h"
#include "soc/nexus6.h"

namespace aeo {
namespace {

TEST(ClusterTopologyTest, Nexus6IsHomogeneous)
{
    const ClusterTopology topo = MakeNexus6Topology();
    EXPECT_EQ(topo.num_clusters(), 1);
    EXPECT_FALSE(topo.is_heterogeneous());
    EXPECT_EQ(topo.primary().name, "krait450");
    EXPECT_EQ(topo.primary().role, ClusterRole::kUnified);
    EXPECT_EQ(topo.primary().num_cores, kNexus6Cores);
    EXPECT_EQ(topo.primary().table.size(), kNexus6CpuLevels);
    EXPECT_EQ(topo.bandwidth_table().size(), kNexus6BwLevels);
    EXPECT_DOUBLE_EQ(topo.primary().perf_scale, 1.0);
    EXPECT_DOUBLE_EQ(topo.primary().dyn_power_scale, 1.0);
    EXPECT_DOUBLE_EQ(topo.primary().leak_power_scale, 1.0);
}

TEST(ClusterTopologyTest, HomogeneousAdmitsBigOnlyPlacement)
{
    const ClusterTopology topo = MakeNexus6Topology();
    const std::vector<ThreadPlacement> placements = topo.AdmissiblePlacements();
    ASSERT_EQ(placements.size(), 1u);
    EXPECT_EQ(placements[0], ThreadPlacement::kBigOnly);
}

TEST(ClusterTopologyTest, Exynos5433IsValidBigLittle)
{
    const ClusterTopology topo = MakeExynos5433Topology();
    EXPECT_EQ(topo.num_clusters(), 2);
    EXPECT_TRUE(topo.is_heterogeneous());
    EXPECT_EQ(topo.primary().role, ClusterRole::kBig);
    EXPECT_EQ(topo.little().role, ClusterRole::kLittle);
    EXPECT_EQ(topo.primary().table.size(), kExynos5433BigLevels);
    EXPECT_EQ(topo.little().table.size(), kExynos5433LittleLevels);
    EXPECT_EQ(topo.bandwidth_table().size(), kExynos5433BwLevels);
    // Linux policy naming: policy4 for the A57s, policy0 for the A53s.
    EXPECT_EQ(topo.primary().first_cpu, 4);
    EXPECT_EQ(topo.little().first_cpu, 0);
    EXPECT_GT(topo.primary().perf_scale, topo.little().perf_scale);
    EXPECT_LT(topo.little().dyn_power_scale, 1.0);
    EXPECT_EQ(topo.AdmissiblePlacements().size(), 3u);
}

TEST(ClusterTopologyTest, BigClusterIsFasterAtEveryOppPair)
{
    // The per-core equivalent throughput of the slowest big OPP must beat
    // the fastest LITTLE OPP; otherwise the placement axis degenerates.
    const ClusterTopology topo = MakeExynos5433Topology();
    const ClusterSpec& big = topo.primary();
    const ClusterSpec& little = topo.little();
    const double big_min =
        big.table.FrequencyAt(0).value() * big.perf_scale;
    const double little_max =
        little.table.FrequencyAt(little.table.size() - 1).value() *
        little.perf_scale;
    EXPECT_LT(little_max, big_min * 2.0);
    EXPECT_GT(little_max, big_min * 0.5);
}

TEST(ClusterTopologyTest, ConfigIdPacksFields)
{
    const uint64_t id =
        EncodeHetConfigId(5, 3, 9, ThreadPlacement::kBoth);
    EXPECT_EQ(id, (uint64_t{5} << 42) | (uint64_t{3} << 20) |
                      (uint64_t{9} << 2) | uint64_t{2});
}

TEST(ClusterTopologyTest, ConfigIdsUniqueAcrossCrossProduct)
{
    const ClusterTopology topo = MakeExynos5433Topology();
    std::set<uint64_t> ids;
    int count = 0;
    for (int b = 0; b < kExynos5433BigLevels; ++b) {
        for (int l = 0; l < kExynos5433LittleLevels; ++l) {
            for (int w = 0; w < kExynos5433BwLevels; ++w) {
                for (int p = 0; p < kNumThreadPlacements; ++p) {
                    HetConfig config;
                    config.big_level = b;
                    config.little_level = l;
                    config.bw_level = w;
                    config.placement = static_cast<ThreadPlacement>(p);
                    ids.insert(HetConfigId(topo, config));
                    ++count;
                }
            }
        }
    }
    EXPECT_EQ(static_cast<int>(ids.size()), count);
}

TEST(ClusterTopologyTest, HomogeneousConfigIdZeroesLittleBits)
{
    const ClusterTopology topo = MakeNexus6Topology();
    HetConfig config;
    config.big_level = 3;
    config.little_level = 0;
    config.bw_level = 1;
    config.placement = ThreadPlacement::kBigOnly;
    const uint64_t id = HetConfigId(topo, config);
    EXPECT_EQ((id >> 20) & ((uint64_t{1} << 22) - 1), 0u);
}

TEST(ClusterTopologyTest, ToStringUsesOneBasedLevels)
{
    HetConfig config;
    config.big_level = 2;
    config.little_level = 0;
    config.bw_level = 4;
    config.placement = ThreadPlacement::kBoth;
    EXPECT_EQ(config.ToString(), "(b3, l1, w5, both)");
}

TEST(ClusterTopologyTest, PlaceholderTableHasOneOpp)
{
    const FrequencyTable table = MakePlaceholderFrequencyTable();
    EXPECT_EQ(table.size(), 1);
    EXPECT_DOUBLE_EQ(table.FrequencyAt(0).value(), 1.0);
}

TEST(ClusterTopologyTest, PlacementAndRoleNames)
{
    EXPECT_EQ(ClusterRoleName(ClusterRole::kUnified), "unified");
    EXPECT_EQ(ClusterRoleName(ClusterRole::kBig), "big");
    EXPECT_EQ(ClusterRoleName(ClusterRole::kLittle), "little");
    EXPECT_EQ(ThreadPlacementName(ThreadPlacement::kLittleOnly), "little");
    EXPECT_EQ(ThreadPlacementName(ThreadPlacement::kBigOnly), "big");
    EXPECT_EQ(ThreadPlacementName(ThreadPlacement::kBoth), "both");
}

}  // namespace
}  // namespace aeo
