#include "soc/memory_bus.h"

#include <gtest/gtest.h>

#include "soc/nexus6.h"

namespace aeo {
namespace {

TEST(MemoryBusTest, StartsAtLowestLevel)
{
    MemoryBus bus(MakeNexus6BandwidthTable());
    EXPECT_EQ(bus.level(), 0);
    EXPECT_DOUBLE_EQ(bus.bandwidth().value(), 762.0);
}

TEST(MemoryBusTest, SetLevelChangesBandwidth)
{
    MemoryBus bus(MakeNexus6BandwidthTable());
    bus.SetLevel(12);
    EXPECT_DOUBLE_EQ(bus.bandwidth().value(), 16250.0);
    EXPECT_EQ(bus.transition_count(), 1u);
}

TEST(MemoryBusTest, ListenersFireOnChangeOnly)
{
    MemoryBus bus(MakeNexus6BandwidthTable());
    int pre = 0;
    int post = 0;
    bus.SetPreChangeListener([&] { ++pre; });
    bus.SetPostChangeListener([&] { ++post; });
    bus.SetLevel(3);
    bus.SetLevel(3);
    bus.SetLevel(4);
    EXPECT_EQ(pre, 2);
    EXPECT_EQ(post, 2);
}

TEST(MemoryBusDeathTest, RejectsBadLevel)
{
    MemoryBus bus(MakeNexus6BandwidthTable());
    EXPECT_DEATH(bus.SetLevel(13), "out of");
}

}  // namespace
}  // namespace aeo
