#include "soc/cpu_cluster.h"

#include <gtest/gtest.h>

#include "soc/nexus6.h"

namespace aeo {
namespace {

TEST(CpuClusterTest, StartsAtLowestLevel)
{
    CpuCluster cluster(MakeNexus6FrequencyTable(), 4);
    EXPECT_EQ(cluster.level(), 0);
    EXPECT_DOUBLE_EQ(cluster.frequency().value(), 0.3);
    EXPECT_EQ(cluster.num_cores(), 4);
    EXPECT_EQ(cluster.online_cores(), 4);
}

TEST(CpuClusterTest, SetLevelChangesFrequencyAndCounts)
{
    CpuCluster cluster(MakeNexus6FrequencyTable(), 4);
    cluster.SetLevel(9);
    EXPECT_DOUBLE_EQ(cluster.frequency().value(), 1.4976);
    EXPECT_EQ(cluster.transition_count(), 1u);
    cluster.SetLevel(9);  // no-op
    EXPECT_EQ(cluster.transition_count(), 1u);
    cluster.SetLevel(0);
    EXPECT_EQ(cluster.transition_count(), 2u);
}

TEST(CpuClusterTest, ListenersFireAroundChanges)
{
    CpuCluster cluster(MakeNexus6FrequencyTable(), 4);
    int pre = 0;
    int post = 0;
    int level_at_pre = -1;
    cluster.SetPreChangeListener([&] {
        ++pre;
        level_at_pre = cluster.level();
    });
    cluster.SetPostChangeListener([&] { ++post; });
    cluster.SetLevel(5);
    EXPECT_EQ(pre, 1);
    EXPECT_EQ(post, 1);
    EXPECT_EQ(level_at_pre, 0);  // pre sees the old state
    cluster.SetLevel(5);         // unchanged: no listener calls
    EXPECT_EQ(pre, 1);
}

TEST(CpuClusterTest, HotplugTracksOnlineCores)
{
    CpuCluster cluster(MakeNexus6FrequencyTable(), 4);
    cluster.SetOnlineCores(2);
    EXPECT_EQ(cluster.online_cores(), 2);
    cluster.SetOnlineCores(4);
    EXPECT_EQ(cluster.online_cores(), 4);
}

TEST(CpuClusterDeathTest, RejectsBadLevel)
{
    CpuCluster cluster(MakeNexus6FrequencyTable(), 4);
    EXPECT_DEATH(cluster.SetLevel(18), "out of");
    EXPECT_DEATH(cluster.SetLevel(-1), "out of");
    EXPECT_DEATH(cluster.SetOnlineCores(0), "out of");
}

}  // namespace
}  // namespace aeo
