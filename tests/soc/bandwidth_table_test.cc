#include "soc/bandwidth_table.h"

#include <gtest/gtest.h>

#include "soc/nexus6.h"

namespace aeo {
namespace {

BandwidthTable
SmallTable()
{
    return BandwidthTable({MegabytesPerSecond(762), MegabytesPerSecond(3051),
                           MegabytesPerSecond(16250)});
}

TEST(BandwidthTableTest, BasicAccessors)
{
    const BandwidthTable table = SmallTable();
    EXPECT_EQ(table.size(), 3);
    EXPECT_DOUBLE_EQ(table.BandwidthAt(1).value(), 3051.0);
    EXPECT_EQ(table.max_level(), 2);
}

TEST(BandwidthTableTest, LevelAtOrAbove)
{
    const BandwidthTable table = SmallTable();
    EXPECT_EQ(table.LevelAtOrAbove(MegabytesPerSecond(100)), 0);
    EXPECT_EQ(table.LevelAtOrAbove(MegabytesPerSecond(762)), 0);
    EXPECT_EQ(table.LevelAtOrAbove(MegabytesPerSecond(763)), 1);
    EXPECT_EQ(table.LevelAtOrAbove(MegabytesPerSecond(99999)), 2);
}

TEST(BandwidthTableTest, ClosestLevel)
{
    const BandwidthTable table = SmallTable();
    EXPECT_EQ(table.ClosestLevel(MegabytesPerSecond(800)), 0);
    EXPECT_EQ(table.ClosestLevel(MegabytesPerSecond(3000)), 1);
    EXPECT_EQ(table.ClosestLevel(MegabytesPerSecond(12000)), 2);
}

TEST(Nexus6BandwidthTableTest, MatchesTableII)
{
    const BandwidthTable table = MakeNexus6BandwidthTable();
    ASSERT_EQ(table.size(), kNexus6BwLevels);
    EXPECT_DOUBLE_EQ(table.BandwidthAt(0).value(), 762.0);     // level 1
    EXPECT_DOUBLE_EQ(table.BandwidthAt(4).value(), 3051.0);    // level 5
    EXPECT_DOUBLE_EQ(table.BandwidthAt(12).value(), 16250.0);  // level 13
}

}  // namespace
}  // namespace aeo
