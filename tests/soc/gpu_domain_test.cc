#include "soc/gpu_domain.h"

#include <gtest/gtest.h>

namespace aeo {
namespace {

TEST(GpuDomainTest, Adreno420Table)
{
    const GpuDomain gpu = MakeAdreno420();
    ASSERT_EQ(gpu.size(), kAdreno420Levels);
    EXPECT_DOUBLE_EQ(gpu.MhzAt(0), 200.0);
    EXPECT_DOUBLE_EQ(gpu.MhzAt(4), 600.0);
    for (int level = 1; level < gpu.size(); ++level) {
        EXPECT_GT(gpu.MhzAt(level), gpu.MhzAt(level - 1));
        EXPECT_GE(gpu.VoltageAt(level).value(), gpu.VoltageAt(level - 1).value());
    }
}

TEST(GpuDomainTest, CapacityIsFrequencyProportional)
{
    const GpuDomain gpu = MakeAdreno420();
    EXPECT_DOUBLE_EQ(gpu.CapacityAt(0), 200.0);
    EXPECT_DOUBLE_EQ(gpu.CapacityAt(4), 600.0);
}

TEST(GpuDomainTest, LevelLookups)
{
    const GpuDomain gpu = MakeAdreno420();
    EXPECT_EQ(gpu.ClosestLevel(310.0), 1);
    EXPECT_EQ(gpu.ClosestLevel(900.0), 4);
    EXPECT_EQ(gpu.LevelAtOrAbove(390.0), 3);  // 389 < 390 → 500
    EXPECT_EQ(gpu.LevelAtOrAbove(389.0), 2);
    EXPECT_EQ(gpu.LevelAtOrAbove(9999.0), 4);
}

TEST(GpuDomainTest, TransitionsCountAndListenersFire)
{
    GpuDomain gpu = MakeAdreno420();
    int pre = 0;
    int post = 0;
    gpu.SetPreChangeListener([&] { ++pre; });
    gpu.SetPostChangeListener([&] { ++post; });
    gpu.SetLevel(3);
    gpu.SetLevel(3);  // no-op
    gpu.SetLevel(1);
    EXPECT_EQ(gpu.transition_count(), 2u);
    EXPECT_EQ(pre, 2);
    EXPECT_EQ(post, 2);
}

TEST(GpuDomainDeathTest, RejectsBadLevel)
{
    GpuDomain gpu = MakeAdreno420();
    EXPECT_DEATH(gpu.SetLevel(5), "out of");
}

}  // namespace
}  // namespace aeo
