/**
 * @file
 * Locks the model calibration to the paper's published anchor points:
 *
 *  - Table I (AngryBirds profile): (0.3 GHz, 762 MBps) ≈ 1623.57 mW at
 *    speedup 1.0; (0.3, 1525) ≈ 1682.83 mW; (0.3, 3051) ≈ 1742.09 mW;
 *    (0.8832, 762) ≈ 2219.22 mW at speedup 1.837;
 *  - §III-B3 base speeds: AngryBirds 0.129 GIPS, VidCon 0.471 GIPS at the
 *    lowest configuration.
 *
 * If these drift, every downstream experiment drifts with them, so the
 * tolerances here are deliberately tight (a few percent).
 */
#include <gtest/gtest.h>

#include "apps/workloads.h"
#include "device/device.h"

namespace aeo {
namespace {

struct Anchor {
    int cpu_level;  // 0-based
    int bw_level;   // 0-based
    double paper_power_mw;
    double paper_speedup;
};

/** Measures AngryBirds pinned at a configuration under baseline load. */
RunResult
MeasureAngryBirds(int cpu_level, int bw_level)
{
    DeviceConfig config;
    config.seed = 20170201 + static_cast<uint64_t>(cpu_level * 100 + bw_level);
    Device device(config);
    device.SetBackground(MakeBackgroundEnv(BackgroundKind::kBaseline));
    device.PinConfiguration(cpu_level, bw_level);
    device.LaunchApp(MakeAngryBirdsSpec());
    device.RunFor(SimTime::FromSeconds(30));
    return device.CollectResult("calibration");
}

class TableIAnchorTest : public ::testing::TestWithParam<Anchor> {};

TEST_P(TableIAnchorTest, PowerMatchesPaper)
{
    const Anchor anchor = GetParam();
    const RunResult result = MeasureAngryBirds(anchor.cpu_level, anchor.bw_level);
    EXPECT_NEAR(result.measured_avg_power_mw.value(), anchor.paper_power_mw,
                anchor.paper_power_mw * 0.05)
        << "config (" << anchor.cpu_level + 1 << ", " << anchor.bw_level + 1 << ")";
}

TEST_P(TableIAnchorTest, SpeedupMatchesPaper)
{
    const Anchor anchor = GetParam();
    const RunResult base = MeasureAngryBirds(0, 0);
    const RunResult result = MeasureAngryBirds(anchor.cpu_level, anchor.bw_level);
    const double speedup = result.avg_gips / base.avg_gips;
    EXPECT_NEAR(speedup, anchor.paper_speedup, anchor.paper_speedup * 0.06)
        << "config (" << anchor.cpu_level + 1 << ", " << anchor.bw_level + 1 << ")";
}

INSTANTIATE_TEST_SUITE_P(
    TableI, TableIAnchorTest,
    ::testing::Values(Anchor{0, 0, 1623.57, 1.0},      // row 1
                      Anchor{0, 2, 1682.83, 1.0038},   // row 2
                      Anchor{0, 4, 1742.09, 1.0077},   // row 3
                      Anchor{4, 0, 2219.22, 1.837}));  // row 31

TEST(BaseSpeedCalibrationTest, AngryBirdsBaseSpeed)
{
    const RunResult result = MeasureAngryBirds(0, 0);
    EXPECT_NEAR(result.avg_gips, 0.129, 0.129 * 0.05);
}

TEST(BaseSpeedCalibrationTest, VidConBaseSpeed)
{
    DeviceConfig config;
    config.seed = 20170202;
    Device device(config);
    device.SetBackground(MakeBackgroundEnv(BackgroundKind::kBaseline));
    device.PinConfiguration(0, 0);
    device.LaunchApp(MakeVidConSpec());
    device.RunFor(SimTime::FromSeconds(30));
    const RunResult result = device.CollectResult("calibration");
    // §III-B3: VidCon's base speed is 0.471 GIPS.
    EXPECT_NEAR(result.avg_gips, 0.471, 0.471 * 0.06);
}

}  // namespace
}  // namespace aeo
