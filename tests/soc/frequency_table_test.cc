#include "soc/frequency_table.h"

#include <gtest/gtest.h>

#include "soc/nexus6.h"

namespace aeo {
namespace {

FrequencyTable
SmallTable()
{
    return FrequencyTable({{Gigahertz(0.3), Volts(0.8)},
                           {Gigahertz(1.0), Volts(0.9)},
                           {Gigahertz(2.0), Volts(1.1)}});
}

TEST(FrequencyTableTest, BasicAccessors)
{
    const FrequencyTable table = SmallTable();
    EXPECT_EQ(table.size(), 3);
    EXPECT_EQ(table.min_level(), 0);
    EXPECT_EQ(table.max_level(), 2);
    EXPECT_DOUBLE_EQ(table.FrequencyAt(1).value(), 1.0);
    EXPECT_DOUBLE_EQ(table.VoltageAt(2).value(), 1.1);
}

TEST(FrequencyTableTest, ClosestLevel)
{
    const FrequencyTable table = SmallTable();
    EXPECT_EQ(table.ClosestLevel(Gigahertz(0.31)), 0);
    EXPECT_EQ(table.ClosestLevel(Gigahertz(0.64)), 0);  // ties go lower
    EXPECT_EQ(table.ClosestLevel(Gigahertz(0.66)), 1);
    EXPECT_EQ(table.ClosestLevel(Gigahertz(99.0)), 2);
}

TEST(FrequencyTableTest, LevelAtOrAbove)
{
    const FrequencyTable table = SmallTable();
    EXPECT_EQ(table.LevelAtOrAbove(Gigahertz(0.0)), 0);
    EXPECT_EQ(table.LevelAtOrAbove(Gigahertz(0.3)), 0);
    EXPECT_EQ(table.LevelAtOrAbove(Gigahertz(0.31)), 1);
    EXPECT_EQ(table.LevelAtOrAbove(Gigahertz(1.5)), 2);
    // Above the top: clamps to the highest level.
    EXPECT_EQ(table.LevelAtOrAbove(Gigahertz(9.9)), 2);
}

TEST(FrequencyTableTest, PaperLabelIsOneBased)
{
    const FrequencyTable table = SmallTable();
    EXPECT_EQ(table.PaperLabel(0), "1");
    EXPECT_EQ(table.PaperLabel(2), "3");
}

TEST(Nexus6FrequencyTableTest, MatchesTableII)
{
    const FrequencyTable table = MakeNexus6FrequencyTable();
    ASSERT_EQ(table.size(), kNexus6CpuLevels);
    EXPECT_DOUBLE_EQ(table.FrequencyAt(0).value(), 0.3000);   // level 1
    EXPECT_DOUBLE_EQ(table.FrequencyAt(4).value(), 0.8832);   // level 5
    EXPECT_DOUBLE_EQ(table.FrequencyAt(9).value(), 1.4976);   // level 10
    EXPECT_DOUBLE_EQ(table.FrequencyAt(17).value(), 2.6496);  // level 18
}

TEST(Nexus6FrequencyTableTest, VoltageIsMonotonic)
{
    const FrequencyTable table = MakeNexus6FrequencyTable();
    for (int level = 1; level < table.size(); ++level) {
        EXPECT_GE(table.VoltageAt(level).value(), table.VoltageAt(level - 1).value());
    }
    EXPECT_GT(table.VoltageAt(0).value(), 0.5);
    EXPECT_LT(table.VoltageAt(17).value(), 1.5);
}

}  // namespace
}  // namespace aeo
