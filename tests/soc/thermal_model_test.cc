#include "soc/thermal_model.h"

#include <cmath>

#include <gtest/gtest.h>

namespace aeo {
namespace {

TEST(ThermalModelTest, StartsAtAmbient)
{
    const ThermalModel model;
    EXPECT_DOUBLE_EQ(model.temperature_c(), 25.0);
}

TEST(ThermalModelTest, SteadyStateIsAmbientPlusPowerTimesResistance)
{
    const ThermalModel model;  // 8 °C/W
    EXPECT_DOUBLE_EQ(model.SteadyStateC(Milliwatts(2500.0)), 45.0);
    EXPECT_DOUBLE_EQ(model.SteadyStateC(Milliwatts(0.0)), 25.0);
}

TEST(ThermalModelTest, TimeConstantIsResistanceTimesCapacitance)
{
    ThermalParams params;
    params.resistance_c_per_w = 8.0;
    params.capacitance_j_per_c = 6.0;
    const ThermalModel model(params);
    EXPECT_DOUBLE_EQ(model.TimeConstant().seconds(), 48.0);
}

TEST(ThermalModelTest, OneTimeConstantCoversTheExponentialFraction)
{
    ThermalModel model;
    const double steady = model.SteadyStateC(Milliwatts(2500.0));
    model.Advance(Milliwatts(2500.0), model.TimeConstant());
    const double expected = steady + (25.0 - steady) * std::exp(-1.0);
    EXPECT_NEAR(model.temperature_c(), expected, 1e-9);
}

TEST(ThermalModelTest, ConvergesToSteadyStateUnderSustainedPower)
{
    ThermalModel model;
    // Ten time constants: within a hundredth of a degree of steady state.
    model.Advance(Milliwatts(2500.0), model.TimeConstant() * 10);
    EXPECT_NEAR(model.temperature_c(), 45.0, 0.01);
}

TEST(ThermalModelTest, IntegrationIsInvariantToTimeSlicing)
{
    // The closed-form segment update must not depend on how the simulation
    // slices time: one 20 s step and 2000 × 10 ms steps land on (essentially)
    // the same temperature.
    ThermalModel coarse;
    ThermalModel fine;
    coarse.Advance(Milliwatts(3000.0), SimTime::FromSeconds(20));
    for (int i = 0; i < 2000; ++i) {
        fine.Advance(Milliwatts(3000.0), SimTime::Millis(10));
    }
    EXPECT_NEAR(coarse.temperature_c(), fine.temperature_c(), 1e-9);
}

TEST(ThermalModelTest, CoolsBackToAmbientWhenIdle)
{
    ThermalModel model;
    model.Advance(Milliwatts(4000.0), model.TimeConstant() * 5);
    EXPECT_GT(model.temperature_c(), 40.0);
    model.Advance(Milliwatts(0.0), model.TimeConstant() * 10);
    EXPECT_NEAR(model.temperature_c(), 25.0, 0.01);
}

TEST(ThermalModelTest, ZeroDtLeavesTemperatureUntouched)
{
    ThermalModel model;
    model.Advance(Milliwatts(2500.0), SimTime::FromSeconds(10));
    const double before = model.temperature_c();
    model.Advance(Milliwatts(2500.0), SimTime::Zero());
    EXPECT_DOUBLE_EQ(model.temperature_c(), before);
}

TEST(ThermalModelTest, ResetRestartsFromTheGivenTemperature)
{
    ThermalModel model;
    model.Advance(Milliwatts(4000.0), SimTime::FromSeconds(100));
    model.Reset(30.0);
    EXPECT_DOUBLE_EQ(model.temperature_c(), 30.0);
}

}  // namespace
}  // namespace aeo
