/**
 * @file
 * Golden-fixture suite for the aeo-lint static-analysis pass: each fixture
 * under tests/tools/fixtures is a miniature repo tree seeding exactly one
 * kind of violation, and the tests pin the rule AND the file:line it is
 * reported at. The final test lints the real repo, making `ctest -L tooling`
 * a local equivalent of the blocking CI lint job.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint.h"

namespace aeo::lint {
namespace {

std::vector<Finding>
LintFixture(const std::string& name)
{
    return RunLint({.root = std::string(AEO_LINT_FIXTURES) + "/" + name});
}

bool
HasFinding(const std::vector<Finding>& findings, const std::string& rule,
           const std::string& file, int line)
{
    return std::any_of(findings.begin(), findings.end(),
                       [&](const Finding& f) {
                           return f.rule == rule && f.file == file &&
                                  f.line == line;
                       });
}

std::string
Dump(const std::vector<Finding>& findings)
{
    return FormatFindings(findings);
}

TEST(AeoLintTest, CleanFixtureHasNoFindings)
{
    const std::vector<Finding> findings = LintFixture("clean");
    EXPECT_TRUE(findings.empty()) << Dump(findings);
}

TEST(AeoLintTest, LayeringBreaksAreReportedAtTheIncludeLine)
{
    const std::vector<Finding> findings = LintFixture("layering_break");
    // soc reaching up into core.
    EXPECT_TRUE(
        HasFinding(findings, "layering", "src/soc/uses_core.cc", 2))
        << Dump(findings);
    // core reaching down into kernel.
    EXPECT_TRUE(
        HasFinding(findings, "layering", "src/core/includes_kernel.cc", 2))
        << Dump(findings);
    // core reaching UP into chaos: the product must not include its chaos
    // harness.
    EXPECT_TRUE(
        HasFinding(findings, "layering", "src/core/includes_chaos.cc", 2))
        << Dump(findings);
    // core naming Device outside the harness seam (both mentions).
    EXPECT_TRUE(
        HasFinding(findings, "layering", "src/core/names_device.cc", 3))
        << Dump(findings);
    EXPECT_TRUE(
        HasFinding(findings, "layering", "src/core/names_device.cc", 4))
        << Dump(findings);
    EXPECT_EQ(findings.size(), 5u) << Dump(findings);
}

TEST(AeoLintTest, RawSimulatorTimeInPolicyLayersIsReported)
{
    const std::vector<Finding> findings = LintFixture("time_seam");
    // core naming the raw machinery: the type, the task, the clock call.
    EXPECT_TRUE(
        HasFinding(findings, "time-seam", "src/core/raw_time.cc", 3))
        << Dump(findings);
    EXPECT_TRUE(
        HasFinding(findings, "time-seam", "src/core/raw_time.cc", 4))
        << Dump(findings);
    EXPECT_TRUE(
        HasFinding(findings, "time-seam", "src/core/raw_time.cc", 5))
        << Dump(findings);
    // control is a policy layer too...
    EXPECT_TRUE(
        HasFinding(findings, "time-seam", "src/control/raw_time.cc", 3))
        << Dump(findings);
    // ...while src/platform IS the seam: its Simulator use is clean.
    EXPECT_EQ(findings.size(), 4u) << Dump(findings);
}

TEST(AeoLintTest, InlineSysfsLiteralIsReported)
{
    const std::vector<Finding> findings = LintFixture("sysfs_literal");
    ASSERT_EQ(findings.size(), 1u) << Dump(findings);
    EXPECT_TRUE(
        HasFinding(findings, "sysfs-literal", "src/apps/bad.cc", 4))
        << Dump(findings);
}

TEST(AeoLintTest, HardCodedClusterIndexLiteralIsReported)
{
    const std::vector<Finding> findings = LintFixture("cluster_literal");
    // bad.cc hard-codes a core index (cpu0) and a cpufreq domain (policy4)
    // outside the kernel/platform seams; `cpuinfo_max_freq` is not an
    // indexed reference and src/kernel composes per-cluster paths by
    // design, so neither is a finding.
    ASSERT_EQ(findings.size(), 2u) << Dump(findings);
    EXPECT_TRUE(
        HasFinding(findings, "cluster-literal", "src/apps/bad.cc", 4))
        << Dump(findings);
    EXPECT_TRUE(
        HasFinding(findings, "cluster-literal", "src/apps/bad.cc", 6))
        << Dump(findings);
}

TEST(AeoLintTest, UnlabeledAndUnregisteredTestsAreReported)
{
    const std::vector<Finding> findings = LintFixture("unlabeled_test");
    // widget_test is registered but carries no ctest label: reported at the
    // aeo_add_test() call site.
    EXPECT_TRUE(HasFinding(findings, "test-registration",
                           "tests/CMakeLists.txt", 1))
        << Dump(findings);
    // orphan_test.cc never appears in tests/CMakeLists.txt.
    EXPECT_TRUE(HasFinding(findings, "test-registration",
                           "tests/orphan_test.cc", 1))
        << Dump(findings);
    EXPECT_EQ(findings.size(), 2u) << Dump(findings);
}

TEST(AeoLintTest, RawUnitLiteralIsReportedButZeroIsExempt)
{
    const std::vector<Finding> findings = LintFixture("unit_literal");
    // Line 3 initializes compute_power_mw to 0.0 — scale-free, exempt.
    // Line 8 assigns the raw 25.0 — must go through Milliwatts().
    ASSERT_EQ(findings.size(), 1u) << Dump(findings);
    EXPECT_TRUE(
        HasFinding(findings, "unit-literal", "src/core/bad.cc", 8))
        << Dump(findings);
}

TEST(AeoLintTest, JustifiedAllowSuppressesAndBareAllowIsAFinding)
{
    const std::vector<Finding> findings = LintFixture("suppressed");
    // allowed.cc: the justified allow swallows the sysfs finding entirely.
    for (const Finding& finding : findings) {
        EXPECT_NE(finding.file, "src/apps/allowed.cc") << Dump(findings);
    }
    // bad_allow.cc: the justification-free allow is itself a finding AND
    // does not suppress the violation it sits on.
    EXPECT_TRUE(
        HasFinding(findings, "suppression", "src/apps/bad_allow.cc", 4))
        << Dump(findings);
    EXPECT_TRUE(
        HasFinding(findings, "sysfs-literal", "src/apps/bad_allow.cc", 5))
        << Dump(findings);
    EXPECT_EQ(findings.size(), 2u) << Dump(findings);
}

TEST(AeoLintTest, UntestedInvariantMonitorSubclassIsReported)
{
    const std::vector<Finding> findings = LintFixture("monitor_catalogue");
    // TestedMonitor is named in the catalogue suite's code; UntestedMonitor
    // only in a comment there, which is stripped before matching. The base
    // class declaration itself is not a finding.
    ASSERT_EQ(findings.size(), 1u) << Dump(findings);
    EXPECT_TRUE(HasFinding(findings, "monitor-catalogue",
                           "src/chaos/monitors.h", 9))
        << Dump(findings);
}

TEST(AeoLintTest, BenchWithoutCommittedSnapshotIsReported)
{
    const std::vector<Finding> findings = LintFixture("bench_snapshot");
    // missing_snapshot_bench.cc names BENCH_missing.json with no committed
    // bench/snapshots/ baseline: reported at the literal. gated_bench.cc
    // has its baseline committed and bench_batch_scaling.cc is an
    // allowlisted perf record — both clean.
    ASSERT_EQ(findings.size(), 1u) << Dump(findings);
    EXPECT_TRUE(HasFinding(findings, "bench-snapshot",
                           "bench/missing_snapshot_bench.cc", 5))
        << Dump(findings);
}

TEST(AeoLintTest, StripSourceSeparatesCodeCommentsAndStrings)
{
    const internal::StrippedSource stripped = internal::StripSource(
        "int a = 1; // trailing\n"
        "const char* p = \"/sys/x\"; /* block\n"
        "spanning */ int Device = 2;\n");
    // Comment text is blanked from the code view...
    EXPECT_EQ(stripped.code.find("trailing"), std::string::npos);
    EXPECT_EQ(stripped.code.find("spanning"), std::string::npos);
    // ...string contents are blanked but collected with their line...
    EXPECT_EQ(stripped.code.find("/sys"), std::string::npos);
    ASSERT_EQ(stripped.string_literals.size(), 1u);
    EXPECT_EQ(stripped.string_literals[0].first, 2);
    EXPECT_EQ(stripped.string_literals[0].second, "/sys/x");
    // ...and real code survives with line structure intact.
    EXPECT_NE(stripped.code.find("int Device = 2;"), std::string::npos);
    EXPECT_EQ(std::count(stripped.code.begin(), stripped.code.end(), '\n'),
              3);
}

TEST(AeoLintTest, RepoTreeIsClean)
{
    // The local twin of the blocking CI lint job: the actual repo must lint
    // clean. If this fails, fix the violation or add a justified
    // allow-comment per DESIGN.md §11.
    const std::vector<Finding> findings =
        RunLint({.root = AEO_LINT_REPO_ROOT});
    EXPECT_TRUE(findings.empty()) << Dump(findings);
}

}  // namespace
}  // namespace aeo::lint
