/**
 * @file
 * Golden-fixture suite for the aeo-lint static-analysis pass: each fixture
 * under tests/tools/fixtures is a miniature repo tree seeding exactly one
 * kind of violation, and the tests pin the rule AND the file:line it is
 * reported at. The final test lints the real repo, making `ctest -L tooling`
 * a local equivalent of the blocking CI lint job.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lexer.h"
#include "lint.h"

namespace aeo::lint {
namespace {

std::vector<Finding>
LintFixture(const std::string& name)
{
    return RunLint({.root = std::string(AEO_LINT_FIXTURES) + "/" + name});
}

bool
HasFinding(const std::vector<Finding>& findings, const std::string& rule,
           const std::string& file, int line)
{
    return std::any_of(findings.begin(), findings.end(),
                       [&](const Finding& f) {
                           return f.rule == rule && f.file == file &&
                                  f.line == line;
                       });
}

std::string
Dump(const std::vector<Finding>& findings)
{
    return FormatFindings(findings);
}

TEST(AeoLintTest, CleanFixtureHasNoFindings)
{
    const std::vector<Finding> findings = LintFixture("clean");
    EXPECT_TRUE(findings.empty()) << Dump(findings);
}

TEST(AeoLintTest, LayeringBreaksAreReportedAtTheIncludeLine)
{
    const std::vector<Finding> findings = LintFixture("layering_break");
    // soc reaching up into core.
    EXPECT_TRUE(
        HasFinding(findings, "layering", "src/soc/uses_core.cc", 2))
        << Dump(findings);
    // core reaching down into kernel.
    EXPECT_TRUE(
        HasFinding(findings, "layering", "src/core/includes_kernel.cc", 2))
        << Dump(findings);
    // core reaching UP into chaos: the product must not include its chaos
    // harness.
    EXPECT_TRUE(
        HasFinding(findings, "layering", "src/core/includes_chaos.cc", 2))
        << Dump(findings);
    // core naming Device outside the harness seam (both mentions).
    EXPECT_TRUE(
        HasFinding(findings, "layering", "src/core/names_device.cc", 3))
        << Dump(findings);
    EXPECT_TRUE(
        HasFinding(findings, "layering", "src/core/names_device.cc", 4))
        << Dump(findings);
    EXPECT_EQ(findings.size(), 5u) << Dump(findings);
}

TEST(AeoLintTest, RawSimulatorTimeInPolicyLayersIsReported)
{
    const std::vector<Finding> findings = LintFixture("time_seam");
    // core naming the raw machinery: the type, the task, the clock call.
    EXPECT_TRUE(
        HasFinding(findings, "time-seam", "src/core/raw_time.cc", 3))
        << Dump(findings);
    EXPECT_TRUE(
        HasFinding(findings, "time-seam", "src/core/raw_time.cc", 4))
        << Dump(findings);
    EXPECT_TRUE(
        HasFinding(findings, "time-seam", "src/core/raw_time.cc", 5))
        << Dump(findings);
    // control is a policy layer too...
    EXPECT_TRUE(
        HasFinding(findings, "time-seam", "src/control/raw_time.cc", 3))
        << Dump(findings);
    // ...while src/platform IS the seam: its Simulator use is clean.
    EXPECT_EQ(findings.size(), 4u) << Dump(findings);
}

TEST(AeoLintTest, InlineSysfsLiteralIsReported)
{
    const std::vector<Finding> findings = LintFixture("sysfs_literal");
    ASSERT_EQ(findings.size(), 1u) << Dump(findings);
    EXPECT_TRUE(
        HasFinding(findings, "sysfs-literal", "src/apps/bad.cc", 4))
        << Dump(findings);
}

TEST(AeoLintTest, HardCodedClusterIndexLiteralIsReported)
{
    const std::vector<Finding> findings = LintFixture("cluster_literal");
    // bad.cc hard-codes a core index (cpu0) and a cpufreq domain (policy4)
    // outside the kernel/platform seams; `cpuinfo_max_freq` is not an
    // indexed reference and src/kernel composes per-cluster paths by
    // design, so neither is a finding.
    ASSERT_EQ(findings.size(), 2u) << Dump(findings);
    EXPECT_TRUE(
        HasFinding(findings, "cluster-literal", "src/apps/bad.cc", 4))
        << Dump(findings);
    EXPECT_TRUE(
        HasFinding(findings, "cluster-literal", "src/apps/bad.cc", 6))
        << Dump(findings);
}

TEST(AeoLintTest, UnlabeledAndUnregisteredTestsAreReported)
{
    const std::vector<Finding> findings = LintFixture("unlabeled_test");
    // widget_test is registered but carries no ctest label: reported at the
    // aeo_add_test() call site.
    EXPECT_TRUE(HasFinding(findings, "test-registration",
                           "tests/CMakeLists.txt", 1))
        << Dump(findings);
    // orphan_test.cc never appears in tests/CMakeLists.txt.
    EXPECT_TRUE(HasFinding(findings, "test-registration",
                           "tests/orphan_test.cc", 1))
        << Dump(findings);
    EXPECT_EQ(findings.size(), 2u) << Dump(findings);
}

TEST(AeoLintTest, RawUnitLiteralIsReportedButZeroIsExempt)
{
    const std::vector<Finding> findings = LintFixture("unit_literal");
    // Line 3 initializes compute_power_mw to 0.0 — scale-free, exempt.
    // Line 8 assigns the raw 25.0 — must go through Milliwatts().
    ASSERT_EQ(findings.size(), 1u) << Dump(findings);
    EXPECT_TRUE(
        HasFinding(findings, "unit-literal", "src/core/bad.cc", 8))
        << Dump(findings);
}

TEST(AeoLintTest, JustifiedAllowSuppressesAndBareAllowIsAFinding)
{
    const std::vector<Finding> findings = LintFixture("suppressed");
    // allowed.cc: the justified allow swallows the sysfs finding entirely.
    for (const Finding& finding : findings) {
        EXPECT_NE(finding.file, "src/apps/allowed.cc") << Dump(findings);
    }
    // bad_allow.cc: the justification-free allow is itself a finding AND
    // does not suppress the violation it sits on.
    EXPECT_TRUE(
        HasFinding(findings, "suppression", "src/apps/bad_allow.cc", 4))
        << Dump(findings);
    EXPECT_TRUE(
        HasFinding(findings, "sysfs-literal", "src/apps/bad_allow.cc", 5))
        << Dump(findings);
    EXPECT_EQ(findings.size(), 2u) << Dump(findings);
}

TEST(AeoLintTest, UntestedInvariantMonitorSubclassIsReported)
{
    const std::vector<Finding> findings = LintFixture("monitor_catalogue");
    // TestedMonitor is named in the catalogue suite's code; UntestedMonitor
    // only in a comment there, which is stripped before matching. The base
    // class declaration itself is not a finding.
    ASSERT_EQ(findings.size(), 1u) << Dump(findings);
    EXPECT_TRUE(HasFinding(findings, "monitor-catalogue",
                           "src/chaos/monitors.h", 9))
        << Dump(findings);
}

TEST(AeoLintTest, BenchWithoutCommittedSnapshotIsReported)
{
    const std::vector<Finding> findings = LintFixture("bench_snapshot");
    // missing_snapshot_bench.cc names BENCH_missing.json with no committed
    // bench/snapshots/ baseline: reported at the literal. gated_bench.cc
    // has its baseline committed and bench_batch_scaling.cc is an
    // allowlisted perf record — both clean.
    ASSERT_EQ(findings.size(), 1u) << Dump(findings);
    EXPECT_TRUE(HasFinding(findings, "bench-snapshot",
                           "bench/missing_snapshot_bench.cc", 5))
        << Dump(findings);
}

// ---------------------------------------------------------------------------
// Lexer edge cases: the token stream the rules consume.
// ---------------------------------------------------------------------------

/** The token texts of every token of @p kind, in order. */
std::vector<std::string>
TextsOf(const LexedSource& lexed, TokKind kind)
{
    std::vector<std::string> out;
    for (const Token& t : lexed.tokens) {
        if (t.kind == kind) {
            out.push_back(t.text);
        }
    }
    return out;
}

TEST(AeoLexerTest, CommentsAndStringsNeverLeakIntoIdentifiers)
{
    const LexedSource lexed = Lex(
        "int a = 1; // trailing rand()\n"
        "const char* p = \"/sys/x\"; /* block\n"
        "spanning */ int device = 2;\n");
    const std::vector<std::string> idents = TextsOf(lexed, TokKind::kIdent);
    // Comment text vanishes entirely; string contents become kString.
    EXPECT_EQ(std::count(idents.begin(), idents.end(), "rand"), 0);
    EXPECT_EQ(std::count(idents.begin(), idents.end(), "spanning"), 0);
    const std::vector<std::string> strings = TextsOf(lexed, TokKind::kString);
    ASSERT_EQ(strings.size(), 1u);
    EXPECT_EQ(strings[0], "/sys/x");
    // Line numbers survive the block comment: `device` sits on line 3.
    for (const Token& t : lexed.tokens) {
        if (t.text == "device") {
            EXPECT_EQ(t.line, 3);
        }
    }
}

TEST(AeoLexerTest, RawStringsSwallowCommentMarkersAndControlTags)
{
    const LexedSource lexed = Lex(
        "const char* r = R\"x(\n"
        "// aeo-lint: allow(layering) -- prose, not a directive\n"
        "\"/sys/inner\")x\";\n"
        "int after = 1;\n");
    // The raw string is one kString token carrying its full body...
    const std::vector<std::string> strings = TextsOf(lexed, TokKind::kString);
    ASSERT_EQ(strings.size(), 1u);
    EXPECT_NE(strings[0].find("aeo-lint"), std::string::npos);
    // ...that never parses as a control comment...
    EXPECT_TRUE(lexed.allows.empty());
    EXPECT_TRUE(lexed.malformed_allows.empty());
    // ...and the newlines inside it still advance the line counter.
    for (const Token& t : lexed.tokens) {
        if (t.text == "after") {
            EXPECT_EQ(t.line, 4);
        }
    }
}

TEST(AeoLexerTest, SplicesFoldAndPreprocessorLinesAreMarked)
{
    const LexedSource lexed = Lex(
        "#define WIDTH 4\n"
        "int tota\\\nl = 1;\n");
    bool saw_total = false;
    for (const Token& t : lexed.tokens) {
        if (t.text == "WIDTH") {
            EXPECT_TRUE(t.preprocessor);
        }
        if (t.text == "total") {
            saw_total = true;
            EXPECT_FALSE(t.preprocessor);
        }
        // The spliced identifier must not surface as two halves.
        EXPECT_NE(t.text, "tota");
        EXPECT_NE(t.text, "l");
    }
    EXPECT_TRUE(saw_total);
}

TEST(AeoLexerTest, ControlCommentsParseOnlyAtTheCommentBodyStart)
{
    const LexedSource lexed = Lex(
        "// aeo-lint: allow(sysfs-literal) -- justified\n"
        "// prose mentioning aeo-lint: allow(layering) does not parse\n"
        "// aeo-lint: allow(unit-literal)\n"
        "// aeo: hot-path\n"
        "// aeo: hot-path-stop -- amortized slow path\n"
        "// aeo: hot-path-stop\n");
    ASSERT_EQ(lexed.allows.size(), 1u);
    EXPECT_EQ(lexed.allows[0].line, 1);
    EXPECT_EQ(lexed.allows[0].rule, "sysfs-literal");
    ASSERT_EQ(lexed.hot_path_annotations.size(), 1u);
    EXPECT_EQ(lexed.hot_path_annotations[0], 4);
    // A stop without a justification is malformed, like a bare allow.
    ASSERT_EQ(lexed.hot_path_stops.size(), 1u);
    EXPECT_EQ(lexed.hot_path_stops[0], 5);
    ASSERT_EQ(lexed.malformed_allows.size(), 2u);
    EXPECT_EQ(lexed.malformed_allows[0], 3);
    EXPECT_EQ(lexed.malformed_allows[1], 6);
}

TEST(AeoLintTest, LexerEdgeFixtureTreeIsClean)
{
    // Raw strings hiding control tags, escaped quotes, comment-only
    // mentions of restricted names, and a spliced identifier: none of it
    // may reach a rule.
    const std::vector<Finding> findings = LintFixture("lexer_edges");
    EXPECT_TRUE(findings.empty()) << Dump(findings);
}

// ---------------------------------------------------------------------------
// Determinism rule family.
// ---------------------------------------------------------------------------

TEST(AeoLintTest, DeterminismBansEntropyClocksAndPointerHashing)
{
    const std::vector<Finding> findings = LintFixture("determinism");
    // Ambient entropy, libc randomness, wall clocks, pointer hashing.
    EXPECT_TRUE(
        HasFinding(findings, "determinism", "src/core/nondet.cc", 4))
        << Dump(findings);
    EXPECT_TRUE(
        HasFinding(findings, "determinism", "src/core/nondet.cc", 9))
        << Dump(findings);
    EXPECT_TRUE(
        HasFinding(findings, "determinism", "src/core/nondet.cc", 10))
        << Dump(findings);
    EXPECT_TRUE(
        HasFinding(findings, "determinism", "src/core/nondet.cc", 16))
        << Dump(findings);
    EXPECT_TRUE(
        HasFinding(findings, "determinism", "src/core/nondet.cc", 22))
        << Dump(findings);
    EXPECT_TRUE(
        HasFinding(findings, "determinism", "src/core/nondet.cc", 28))
        << Dump(findings);
    // Unordered iteration inside a serialization sink, reported at the
    // `for`. src/platform naming steady_clock is the sanctioned seam and
    // contributes nothing.
    EXPECT_TRUE(HasFinding(findings, "determinism",
                           "src/stats/unordered_sink.cc", 9))
        << Dump(findings);
    EXPECT_EQ(findings.size(), 7u) << Dump(findings);
}

// ---------------------------------------------------------------------------
// Hot-path allocation rule family.
// ---------------------------------------------------------------------------

TEST(AeoLintTest, HotPathAllocationsAreTracedThroughTheCallGraph)
{
    const std::vector<Finding> findings = LintFixture("hot_path_alloc");
    // Helper is not annotated itself — the findings come from reachability
    // off the `RunCycle` entry: new, make_unique, std::function, growth.
    EXPECT_TRUE(
        HasFinding(findings, "hot-path-alloc", "src/core/hot.cc", 21))
        << Dump(findings);
    EXPECT_TRUE(
        HasFinding(findings, "hot-path-alloc", "src/core/hot.cc", 23))
        << Dump(findings);
    EXPECT_TRUE(
        HasFinding(findings, "hot-path-alloc", "src/core/hot.cc", 24))
        << Dump(findings);
    EXPECT_TRUE(
        HasFinding(findings, "hot-path-alloc", "src/core/hot.cc", 25))
        << Dump(findings);
    // Refill allocates too, but its justified hot-path-stop cuts the
    // traversal, so nothing in its body is reported. The trailing
    // annotation attaches to no function: dangling, a finding.
    EXPECT_TRUE(
        HasFinding(findings, "hot-path-alloc", "src/core/hot.cc", 37))
        << Dump(findings);
    EXPECT_EQ(findings.size(), 5u) << Dump(findings);
}

// ---------------------------------------------------------------------------
// Stale-suppression rule.
// ---------------------------------------------------------------------------

TEST(AeoLintTest, UnusedAllowIsStaleAndUsedAllowIsNot)
{
    const std::vector<Finding> findings = LintFixture("stale_suppression");
    // stale.cc's justified allow suppresses nothing -> a finding at the
    // allow itself; used.cc's allow swallows a real sysfs literal and is
    // therefore silent.
    ASSERT_EQ(findings.size(), 1u) << Dump(findings);
    EXPECT_TRUE(HasFinding(findings, "stale-suppression",
                           "src/apps/stale.cc", 2))
        << Dump(findings);
}

TEST(AeoLintTest, RepoTreeIsClean)
{
    // The local twin of the blocking CI lint job: the actual repo must lint
    // clean. If this fails, fix the violation or add a justified
    // allow-comment per DESIGN.md §11.
    const std::vector<Finding> findings =
        RunLint({.root = AEO_LINT_REPO_ROOT});
    EXPECT_TRUE(findings.empty()) << Dump(findings);
}

}  // namespace
}  // namespace aeo::lint
