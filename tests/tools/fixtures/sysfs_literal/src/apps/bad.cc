namespace aeo {
const char* ThermalNode()
{
    return "/sys/class/thermal/thermal_zone0/temp";
}
}
