namespace aeo {
// A would-be sysfs literal inside a raw string must not be read as code,
// and control tags quoted inside it must not parse:
//   R"(/sys/devices/system/cpu/cpu0)" below is data, not a path literal?
// No: string literals ARE matched by the sysfs rule, so the raw string
// here names a /proc path the rule ignores, proving only that the raw
// string's contents are lexed with the right line numbers.
const char* kRaw = R"x(
  // aeo-lint: allow(layering) this is prose inside a raw string
  "/proc/not/a/sysfs/path"
)x";

/* Device and Simulator are layer-restricted names, but comments are
 * stripped before any rule sees them. rand() too. */
const char kEscaped[] = "quote \" then // not a comment";
const char kCharLit = '\'';

int
Spliced()
{
    int tota\
l = 1;
    return total;
}
}  // namespace aeo
