#ifndef OK_H_
#define OK_H_
namespace aeo {
inline int Twice(int x) { return 2 * x; }
}
#endif
