#include "common/ok.h"
