#include "sim/simulator.h"
namespace aeo::platform {
Simulator* Raw(Simulator* backing) { return backing; }
}
