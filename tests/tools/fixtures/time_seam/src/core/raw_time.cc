#include "common/logging.h"
namespace aeo {
class Simulator;
void Spin(PeriodicTask* tick);
double Now() { return sim().NowSeconds(); }
}
