#include "common/logging.h"
namespace aeo {
void Arm(PeriodicTask* tick);
}
