namespace aeo {
struct Overheads {
    double compute_power_mw = 0.0;
};
Overheads Defaults()
{
    Overheads overheads;
    overheads.compute_power_mw = 25.0;
    return overheads;
}
}
