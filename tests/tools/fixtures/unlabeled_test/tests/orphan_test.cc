// Never registered in tests/CMakeLists.txt at all.
