// Registered, but the aeo_add_test() call above carries no LABELS.
