// Fixture: names a gated snapshot with no committed baseline.
int
main()
{
    const char* path = "BENCH_missing.json";
    return path != nullptr ? 0 : 1;
}
