// Fixture: an allowlisted perf-record bench — machine-dependent output, no
// snapshot required.
int
main()
{
    const char* path = "BENCH_batch_scaling.json";
    return path != nullptr ? 0 : 1;
}
