// Fixture: names a gated snapshot whose baseline IS committed — clean.
int
main()
{
    const char* path = "BENCH_gated.json";
    return path != nullptr ? 0 : 1;
}
