namespace aeo {
const char* LegacyNode()
{
    // aeo-lint: allow(sysfs-literal) -- fixture: justified legacy node.
    return "/sys/devices/legacy/node";
}
}
