namespace aeo {
const char* OtherNode()
{
    // aeo-lint: allow(sysfs-literal)
    return "/sys/devices/other/node";
}
}
