namespace aeo {
const char*
ThermalNode()
{
    // aeo-lint: allow(sysfs-literal) -- fixture: exercising a used allow.
    return "/sys/class/thermal/thermal_zone0/temp";
}
}  // namespace aeo
