namespace aeo {
// aeo-lint: allow(sysfs-literal) -- justified, but nothing here violates
// the rule any more, so the allow is stale.
int
Answer()
{
    return 42;
}
}  // namespace aeo
