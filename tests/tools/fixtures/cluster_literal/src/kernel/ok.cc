namespace aeo {
const char* LittlePolicyDir()
{
    return "/sys/devices/system/cpu/cpufreq/policy0";
}
const char* BigOnlineNode()
{
    return "/sys/devices/system/cpu/cpu4/online";
}
}
