namespace aeo {
const char* OnlineNode()
{
    return "devices/system/cpu/cpu0/online";
}
const char* PolicyNode() { return "cpufreq/policy4"; }
const char* InfoNode() { return "cpuinfo_max_freq"; }
}
