// A lower layer reaching up: soc must never see the controller.
#include "core/profile_table.h"
