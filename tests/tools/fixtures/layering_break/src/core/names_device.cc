#include "common/logging.h"
namespace aeo {
class Device;
void Poke(Device* device);
}
