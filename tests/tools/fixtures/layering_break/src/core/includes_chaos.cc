// Upward include: the product must not know its chaos harness exists.
#include "chaos/campaign.h"
