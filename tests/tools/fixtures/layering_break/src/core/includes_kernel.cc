#include "common/logging.h"
#include "kernel/cpufreq.h"
