#ifndef MONITORS_H_
#define MONITORS_H_
namespace aeo::chaos {
class InvariantMonitor {
  public:
    virtual ~InvariantMonitor() = default;
};
class TestedMonitor final : public InvariantMonitor {};
class UntestedMonitor final : public InvariantMonitor {};
}  // namespace aeo::chaos
#endif
