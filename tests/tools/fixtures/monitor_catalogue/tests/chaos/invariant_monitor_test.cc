#include "chaos/monitors.h"
// UntestedMonitor is only named in this comment, which must not count.
static aeo::chaos::TestedMonitor tested;
