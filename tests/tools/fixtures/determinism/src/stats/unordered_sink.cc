#include <unordered_map>

namespace aeo {
std::unordered_map<int, double> g_table;

void
WriteCsv()
{
    for (const auto& kv : g_table) {
        (void)kv;
    }
}
}  // namespace aeo
