namespace aeo::platform {
// The platform layer owns the Clock seam, so a wall-clock backend may name
// the raw chrono clocks here without a finding.
double
ReadWall()
{
    return std::chrono::steady_clock::now().time_since_epoch().count();
}
}  // namespace aeo::platform
