#include <random>

namespace aeo {
std::random_device g_entropy;

int
Draw()
{
    srand(42);
    return rand();
}

long
Stamp()
{
    return time(nullptr);
}

double
Wall()
{
    return std::chrono::steady_clock::now().time_since_epoch().count();
}

size_t
AddressKey(const int* p)
{
    return std::hash<const int*>{}(p);
}
}  // namespace aeo
