#include <functional>
#include <vector>

namespace aeo {
std::vector<int> g_log;

void Helper();
void Refill();

// aeo: hot-path
void
RunCycle()
{
    Helper();
    Refill();
}

void
Helper()
{
    int* scratch = new int(3);
    delete scratch;
    auto owned = std::make_unique<int>(4);
    std::function<void()> cb = [] {};
    g_log.push_back(1);
}

// aeo: hot-path-stop -- amortized refill: runs only when the cache is
// invalidated, never on the steady-state cycle path.
void
Refill()
{
    g_log.push_back(2);
}
}  // namespace aeo

// aeo: hot-path
