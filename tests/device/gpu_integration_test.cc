/**
 * @file
 * GPU integration with the device model: render demand tracks app progress,
 * a slow GPU co-bottlenecks the application, and the §VII extended
 * configuration controls it end to end.
 */
#include <gtest/gtest.h>

#include "core/online_controller.h"
#include "platform/sim_platform.h"
#include "device/device.h"

namespace aeo {
namespace {

/** 60 fps app needing ~390 MHz-equivalents of render work. */
AppSpec
GpuHeavySpec()
{
    AppSpec spec;
    spec.name = "gpu-heavy";
    spec.loop = true;
    AppPhase race;
    race.name = "race";
    race.kind = PhaseKind::kFrame;
    race.demand.ipc = 0.30;
    race.demand.parallelism = 2.0;
    race.demand.mem_bytes_per_instr = 0.10;
    race.duration = SimTime::FromSeconds(30);
    race.frame_work_gi = 0.005;
    race.frame_period = SimTime::Micros(16667);
    race.slack_demand.demand_gips = 0.004;
    race.gpu_units_per_gi = 1300.0;
    spec.phases.push_back(race);
    return spec;
}

TEST(GpuIntegrationTest, SlowGpuCoBottlenecksTheApp)
{
    Device device;
    device.PinConfiguration(9, 4);  // plenty of CPU
    device.LaunchApp(GpuHeavySpec());
    // GPU pinned at the lowest clock (no governor started): capacity 200
    // units/s against ~390 of demand → the app runs at roughly half rate.
    device.RunFor(SimTime::FromSeconds(10));
    const double slow_gips = device.CollectResult("slow").avg_gips;

    Device fast;
    fast.PinConfiguration(9, 4);
    fast.sysfs().Write(std::string(kGpuSysfsRoot) + "/governor", "performance");
    fast.LaunchApp(GpuHeavySpec());
    fast.RunFor(SimTime::FromSeconds(10));
    const double fast_gips = fast.CollectResult("fast").avg_gips;

    EXPECT_GT(fast_gips, slow_gips * 1.6);
    EXPECT_NEAR(fast_gips, 0.3, 0.05);
}

TEST(GpuIntegrationTest, AdrenoTzServesTheGameByDefault)
{
    Device device;
    device.UseDefaultGovernors();
    device.LaunchApp(GpuHeavySpec());
    device.RunFor(SimTime::FromSeconds(20));
    const RunResult result = device.CollectResult("default");
    // The GPU governor ramps off the bottom; the coupled governors settle
    // on a vsync plateau — the jitter-free spec locks onto 30 fps (half
    // rate), which is exactly the kind of stable sub-optimal equilibrium
    // real interactive governors exhibit on borderline game loads.
    EXPECT_GE(device.gpu().level(), 2);
    EXPECT_GT(result.avg_gips, 0.14);
}

TEST(GpuIntegrationTest, GpuAppsDrawGpuPower)
{
    const auto run = [](const AppSpec& spec) {
        Device device;
        device.UseDefaultGovernors();
        device.LaunchApp(spec);
        device.RunFor(SimTime::FromSeconds(10));
        return device.CollectResult("x").avg_power_mw.value();
    };
    AppSpec without = GpuHeavySpec();
    without.phases[0].gpu_units_per_gi = 0.0;
    EXPECT_GT(run(GpuHeavySpec()), run(without) + 300.0);
}

TEST(GpuIntegrationTest, ExtendedControllerDrivesGpuThroughSysfs)
{
    Device device;
    device.LaunchApp(GpuHeavySpec());
    std::vector<ProfileEntry> entries = {
        {SystemConfig{2, 0, 2}, 1.0, Milliwatts(2000.0)},
        {SystemConfig{4, 0, 3}, 1.3, Milliwatts(2500.0)},
    };
    ControllerConfig config;
    config.target_gips = 0.25;
    platform::SimPlatform plat(&device);
    OnlineController controller(&plat, ProfileTable("x", entries, 0.2), config);
    controller.Start();
    EXPECT_EQ(device.gpufreq().governor_name(), "userspace");
    device.RunFor(SimTime::FromSeconds(10));
    controller.Stop();
    // The controller drove the GPU to one of its table levels.
    EXPECT_GE(device.gpu().transition_count(), 1u);
}

}  // namespace
}  // namespace aeo
