#include "device/device.h"

#include <gtest/gtest.h>

#include "apps/workloads.h"

namespace aeo {
namespace {

TEST(DeviceTest, BuildsWithStockGovernorsRegistered)
{
    Device device;
    const std::string cpu_governors = device.sysfs().Read(
        std::string(kCpufreqSysfsRoot) + "/scaling_available_governors");
    EXPECT_NE(cpu_governors.find("interactive"), std::string::npos);
    EXPECT_NE(cpu_governors.find("ondemand"), std::string::npos);
    EXPECT_NE(cpu_governors.find("userspace"), std::string::npos);
    const std::string bus_governors =
        device.sysfs().Read(std::string(kDevfreqSysfsRoot) + "/available_governors");
    EXPECT_NE(bus_governors.find("cpubw_hwmon"), std::string::npos);
}

TEST(DeviceTest, PinConfigurationSetsLevels)
{
    Device device;
    device.PinConfiguration(9, 4);
    EXPECT_EQ(device.cluster().level(), 9);
    EXPECT_EQ(device.bus().level(), 4);
}

TEST(DeviceTest, EnergyAccruesOverTime)
{
    Device device;
    device.PinConfiguration(0, 0);
    device.RunFor(SimTime::FromSeconds(5));
    EXPECT_NEAR(device.energy_meter().elapsed().seconds(), 5.0, 1e-6);
    EXPECT_GT(device.energy_meter().energy().value(), 0.0);
    // Idle phone at the lowest config: roughly base power.
    const double avg = device.energy_meter().AveragePower().value();
    EXPECT_GT(avg, 500.0);
    EXPECT_LT(avg, 1500.0);
}

TEST(DeviceTest, MonitorTracksExactEnergy)
{
    Device device;
    device.PinConfiguration(5, 3);
    device.LaunchApp(MakeSpotifySpec());
    device.RunFor(SimTime::FromSeconds(10));
    const RunResult result = device.CollectResult("test");
    EXPECT_NEAR(result.measured_energy_j, result.energy_j, result.energy_j * 0.02);
}

TEST(DeviceTest, AppMakesProgressAtPinnedConfig)
{
    Device device;
    device.PinConfiguration(17, 12);
    device.LaunchApp(MakeVidConSpec());
    device.RunFor(SimTime::FromSeconds(10));
    const RunResult result = device.CollectResult("test");
    EXPECT_GT(result.avg_gips, 1.0);
    EXPECT_GT(result.executed_gi, 10.0);
    EXPECT_FALSE(result.app_finished);
}

TEST(DeviceTest, BatchAppFinishesAndStopsTheRun)
{
    Device device;
    device.PinConfiguration(17, 12);
    AppSpec tiny;
    tiny.name = "tiny";
    AppPhase phase;
    phase.kind = PhaseKind::kWork;
    phase.work_gi = 1.0;
    phase.demand.ipc = 1.0;
    phase.demand.parallelism = 2.0;
    tiny.phases.push_back(phase);
    device.LaunchApp(tiny);
    device.RunUntilAppFinishes(SimTime::FromSeconds(100));
    const RunResult result = device.CollectResult("test");
    EXPECT_TRUE(result.app_finished);
    EXPECT_LT(result.duration_s, 5.0);
    EXPECT_NEAR(result.executed_gi, 1.0, 1e-4);
}

TEST(DeviceTest, HigherConfigDrawsMorePower)
{
    RunResult low;
    RunResult high;
    {
        Device device;
        device.PinConfiguration(0, 0);
        device.LaunchApp(MakeAngryBirdsSpec());
        device.RunFor(SimTime::FromSeconds(10));
        low = device.CollectResult("low");
    }
    {
        Device device;
        device.PinConfiguration(17, 12);
        device.LaunchApp(MakeAngryBirdsSpec());
        device.RunFor(SimTime::FromSeconds(10));
        high = device.CollectResult("high");
    }
    EXPECT_GT(high.avg_power_mw.value(), low.avg_power_mw.value() * 1.3);
    EXPECT_GT(high.avg_gips, low.avg_gips);
}

TEST(DeviceTest, ResidencyFractionsSumToOne)
{
    Device device;
    device.UseDefaultGovernors();
    device.LaunchApp(MakeAngryBirdsSpec());
    device.RunFor(SimTime::FromSeconds(20));
    const RunResult result = device.CollectResult("test");
    double cpu_sum = 0.0;
    for (const double f : result.cpu_residency) {
        cpu_sum += f;
    }
    double bw_sum = 0.0;
    for (const double f : result.bw_residency) {
        bw_sum += f;
    }
    EXPECT_NEAR(cpu_sum, 1.0, 1e-9);
    EXPECT_NEAR(bw_sum, 1.0, 1e-9);
    ASSERT_EQ(result.cpu_residency.size(), 18u);
    ASSERT_EQ(result.bw_residency.size(), 13u);
}

TEST(DeviceTest, GpuResidencySumsToOne)
{
    Device device;
    device.UseDefaultGovernors();
    device.LaunchApp(MakeSpotifySpec());
    device.RunFor(SimTime::FromSeconds(10));
    const RunResult result = device.CollectResult("test");
    ASSERT_EQ(result.gpu_residency.size(), 5u);
    double sum = 0.0;
    for (const double f : result.gpu_residency) {
        sum += f;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
    // Spotify never touches the GPU model: the clock stays at the floor.
    EXPECT_NEAR(result.gpu_residency[0], 1.0, 1e-9);
}

TEST(DeviceTest, DefaultGovernorsReactToLoad)
{
    Device device;
    device.UseDefaultGovernors();
    device.LaunchApp(MakeVidConSpec());  // saturating load
    device.RunFor(SimTime::FromSeconds(5));
    // interactive must have ramped up under full load.
    EXPECT_GT(device.cluster().level(), 9);
    EXPECT_GT(device.cluster().transition_count(), 0u);
}

TEST(DeviceTest, DeterministicForSameSeed)
{
    const auto run = [](uint64_t seed) {
        DeviceConfig config;
        config.seed = seed;
        Device device(config);
        device.UseDefaultGovernors();
        device.LaunchApp(MakeAngryBirdsSpec());
        device.RunFor(SimTime::FromSeconds(15));
        return device.CollectResult("test");
    };
    const RunResult a = run(99);
    const RunResult b = run(99);
    const RunResult c = run(100);
    EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
    EXPECT_DOUBLE_EQ(a.avg_gips, b.avg_gips);
    EXPECT_EQ(a.cpu_transitions, b.cpu_transitions);
    EXPECT_NE(a.energy_j, c.energy_j);
}

TEST(DeviceTest, ControllerOverheadPowerIsCharged)
{
    RunResult without;
    RunResult with;
    {
        Device device;
        device.PinConfiguration(0, 0);
        device.RunFor(SimTime::FromSeconds(5));
        without = device.CollectResult("test");
    }
    {
        Device device;
        device.PinConfiguration(0, 0);
        device.SetControllerOverheadPower(100.0);
        device.RunFor(SimTime::FromSeconds(5));
        with = device.CollectResult("test");
    }
    EXPECT_NEAR(with.avg_power_mw.value() - without.avg_power_mw.value(), 100.0, 1.0);
}

TEST(DeviceTest, BackgroundLoadAffectsPowerAndLoadavg)
{
    RunResult nl;
    RunResult hl;
    {
        Device device;
        device.SetBackground(MakeBackgroundEnv(BackgroundKind::kNoLoad));
        device.PinConfiguration(0, 0);
        device.RunFor(SimTime::FromSeconds(30));
        nl = device.CollectResult("test");
    }
    {
        Device device;
        device.SetBackground(MakeBackgroundEnv(BackgroundKind::kHeavy));
        device.PinConfiguration(0, 0);
        device.RunFor(SimTime::FromSeconds(30));
        hl = device.CollectResult("test");
    }
    EXPECT_GT(hl.avg_power_mw.value(), nl.avg_power_mw.value());
    EXPECT_EQ(nl.load_name, "NL");
    EXPECT_EQ(hl.load_name, "HL");
}

TEST(DeviceTest, PerfToolOverheadSlowsForeground)
{
    const auto measure = [](bool perf_on) {
        Device device;
        device.PinConfiguration(4, 4);
        device.LaunchApp(MakeVidConSpec());
        if (perf_on) {
            PerfToolConfig config;  // 1 s period → 4 % overhead
            device.perf().Start();
            device.Sync();
        }
        device.RunFor(SimTime::FromSeconds(10));
        return device.CollectResult("test").avg_gips;
    };
    const double without = measure(false);
    const double with = measure(true);
    EXPECT_NEAR(with / without, 0.96, 0.005);
}

}  // namespace
}  // namespace aeo
