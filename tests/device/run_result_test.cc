#include "device/run_result.h"

#include <gtest/gtest.h>

namespace aeo {
namespace {

RunResult
MakeResult(double energy, double gips, double duration, bool finished)
{
    RunResult result;
    result.app_name = "app";
    result.load_name = "BL";
    result.policy_name = "test";
    result.energy_j = energy;
    result.measured_energy_j = energy;
    result.avg_gips = gips;
    result.duration_s = duration;
    result.app_finished = finished;
    return result;
}

TEST(RunResultTest, EnergySavingsSignConvention)
{
    const RunResult baseline = MakeResult(100.0, 1.0, 60.0, false);
    const RunResult better = MakeResult(75.0, 1.0, 60.0, false);
    const RunResult worse = MakeResult(120.0, 1.0, 60.0, false);
    EXPECT_NEAR(better.EnergySavingsPercent(baseline), 25.0, 1e-9);
    EXPECT_NEAR(worse.EnergySavingsPercent(baseline), -20.0, 1e-9);
}

TEST(RunResultTest, PacedRunsCompareGips)
{
    const RunResult baseline = MakeResult(100.0, 2.0, 60.0, false);
    const RunResult faster = MakeResult(100.0, 2.2, 60.0, false);
    EXPECT_NEAR(faster.PerformanceDeltaPercent(baseline), 10.0, 1e-9);
}

TEST(RunResultTest, BatchRunsCompareExecutionTime)
{
    // Deadline-critical apps: performance is execution time (§V-A).
    const RunResult baseline = MakeResult(100.0, 2.0, 59.0, true);
    const RunResult slightly_slower = MakeResult(80.0, 2.0, 59.24, true);
    EXPECT_NEAR(slightly_slower.PerformanceDeltaPercent(baseline), -0.4, 0.01);
}

TEST(RunResultTest, MixedFinishFallsBackToGips)
{
    const RunResult baseline = MakeResult(100.0, 2.0, 60.0, true);
    const RunResult timed_out = MakeResult(100.0, 1.8, 400.0, false);
    EXPECT_NEAR(timed_out.PerformanceDeltaPercent(baseline), -10.0, 1e-9);
}

TEST(RunResultTest, SummaryMentionsKeyNumbers)
{
    const RunResult result = MakeResult(42.5, 1.25, 60.0, true);
    const std::string summary = result.Summary();
    EXPECT_NE(summary.find("app"), std::string::npos);
    EXPECT_NE(summary.find("1.250"), std::string::npos);
    EXPECT_NE(summary.find("completed"), std::string::npos);
}

}  // namespace
}  // namespace aeo
