#include "lp/simplex.h"

#include <gtest/gtest.h>

#include "common/logging.h"

namespace aeo {
namespace {

TEST(SimplexTest, SolvesTrivialSingleVariable)
{
    // min 2x s.t. x = 3.
    LpProblem problem;
    problem.objective = {2.0};
    problem.eq_lhs = {{1.0}};
    problem.eq_rhs = {3.0};
    const LpSolution solution = SolveSimplex(problem);
    ASSERT_TRUE(solution.feasible);
    EXPECT_NEAR(solution.objective_value, 6.0, 1e-9);
    EXPECT_NEAR(solution.x[0], 3.0, 1e-9);
}

TEST(SimplexTest, PicksCheaperVariable)
{
    // min 5a + 1b s.t. a + b = 10 → all weight on b.
    LpProblem problem;
    problem.objective = {5.0, 1.0};
    problem.eq_lhs = {{1.0, 1.0}};
    problem.eq_rhs = {10.0};
    const LpSolution solution = SolveSimplex(problem);
    ASSERT_TRUE(solution.feasible);
    EXPECT_NEAR(solution.objective_value, 10.0, 1e-9);
    EXPECT_NEAR(solution.x[0], 0.0, 1e-9);
    EXPECT_NEAR(solution.x[1], 10.0, 1e-9);
}

TEST(SimplexTest, TwoConstraintBlend)
{
    // min p·u s.t. s·u = 1.5·T, 1·u = T with speedups {1, 2}, powers {1, 4},
    // T = 2: the blend is u = (1, 1), objective 5.
    LpProblem problem;
    problem.objective = {1.0, 4.0};
    problem.eq_lhs = {{1.0, 2.0}, {1.0, 1.0}};
    problem.eq_rhs = {3.0, 2.0};
    const LpSolution solution = SolveSimplex(problem);
    ASSERT_TRUE(solution.feasible);
    EXPECT_NEAR(solution.x[0], 1.0, 1e-9);
    EXPECT_NEAR(solution.x[1], 1.0, 1e-9);
    EXPECT_NEAR(solution.objective_value, 5.0, 1e-9);
}

TEST(SimplexTest, DetectsInfeasibility)
{
    // x = 1 and x = 2 simultaneously.
    LpProblem problem;
    problem.objective = {1.0};
    problem.eq_lhs = {{1.0}, {1.0}};
    problem.eq_rhs = {1.0, 2.0};
    const LpSolution solution = SolveSimplex(problem);
    EXPECT_FALSE(solution.feasible);
}

TEST(SimplexTest, InfeasibleWhenRhsUnreachable)
{
    // x + y = -1 with x, y ≥ 0.
    LpProblem problem;
    problem.objective = {1.0, 1.0};
    problem.eq_lhs = {{1.0, 1.0}};
    problem.eq_rhs = {-1.0};
    const LpSolution solution = SolveSimplex(problem);
    EXPECT_FALSE(solution.feasible);
}

TEST(SimplexTest, DetectsUnboundedness)
{
    // min -x s.t. x - y = 1: x can grow without bound.
    LpProblem problem;
    problem.objective = {-1.0, 0.0};
    problem.eq_lhs = {{1.0, -1.0}};
    problem.eq_rhs = {1.0};
    const LpSolution solution = SolveSimplex(problem);
    EXPECT_TRUE(solution.unbounded);
}

TEST(SimplexTest, HandlesNegativeRhsByRowScaling)
{
    // -x = -4 → x = 4.
    LpProblem problem;
    problem.objective = {1.0};
    problem.eq_lhs = {{-1.0}};
    problem.eq_rhs = {-4.0};
    const LpSolution solution = SolveSimplex(problem);
    ASSERT_TRUE(solution.feasible);
    EXPECT_NEAR(solution.x[0], 4.0, 1e-9);
}

TEST(SimplexTest, DegenerateConstraintsTerminate)
{
    // Redundant rows (same constraint twice) must not cycle.
    LpProblem problem;
    problem.objective = {1.0, 2.0};
    problem.eq_lhs = {{1.0, 1.0}, {2.0, 2.0}};
    problem.eq_rhs = {4.0, 8.0};
    const LpSolution solution = SolveSimplex(problem);
    ASSERT_TRUE(solution.feasible);
    EXPECT_NEAR(solution.objective_value, 4.0, 1e-9);  // all on x0
}

TEST(SimplexTest, ModeratelySizedProblem)
{
    // min Σ i·x_i s.t. Σ x_i = 1, Σ (i+1)·x_i = 3  over 50 vars.
    const size_t n = 50;
    LpProblem problem;
    problem.objective.resize(n);
    std::vector<double> row1(n), row2(n);
    for (size_t i = 0; i < n; ++i) {
        problem.objective[i] = static_cast<double>(i);
        row1[i] = 1.0;
        row2[i] = static_cast<double>(i + 1);
    }
    problem.eq_lhs = {row1, row2};
    problem.eq_rhs = {1.0, 3.0};
    const LpSolution solution = SolveSimplex(problem);
    ASSERT_TRUE(solution.feasible);
    // Row 2 forces Σ(i+1)x = 3 with Σx = 1: the cheapest vertex is x2 = 1
    // alone (coefficients 1·x0 + 3·x2), objective 2·1 = 2.
    EXPECT_NEAR(solution.objective_value, 2.0, 1e-6);
}

}  // namespace
}  // namespace aeo
