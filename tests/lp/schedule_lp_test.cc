#include "lp/schedule_lp.h"

#include <gtest/gtest.h>

namespace aeo {
namespace {

TEST(ScheduleLpTest, BuildsThePaperProgram)
{
    const LpProblem problem =
        BuildScheduleLp({1.0, 1.5, 2.0}, {100.0, 150.0, 260.0}, 1.25, 2.0);
    ASSERT_EQ(problem.objective.size(), 3u);
    ASSERT_EQ(problem.eq_lhs.size(), 2u);
    EXPECT_DOUBLE_EQ(problem.eq_rhs[0], 2.5);  // s·T
    EXPECT_DOUBLE_EQ(problem.eq_rhs[1], 2.0);  // T
    EXPECT_DOUBLE_EQ(problem.eq_lhs[1][0], 1.0);
}

TEST(ScheduleLpTest, OptimalUsesBracketingPair)
{
    // Speedups {1, 2}, powers {100, 300}; required 1.5 over T = 2 s:
    // τ = (1, 1), energy 400 mW·s → u has exactly two non-zeros.
    const LpSolution solution =
        SolveScheduleLp({1.0, 2.0}, {100.0, 300.0}, 1.5, 2.0);
    ASSERT_TRUE(solution.feasible);
    EXPECT_NEAR(solution.x[0], 1.0, 1e-9);
    EXPECT_NEAR(solution.x[1], 1.0, 1e-9);
    EXPECT_NEAR(solution.objective_value, 400.0, 1e-9);
}

TEST(ScheduleLpTest, SkipsDominatedConfiguration)
{
    // Config 1 is dominated: same speedup band but pricier than blending
    // 0 and 2. LP must route around it.
    const LpSolution solution =
        SolveScheduleLp({1.0, 1.5, 2.0}, {100.0, 400.0, 200.0}, 1.5, 2.0);
    ASSERT_TRUE(solution.feasible);
    EXPECT_NEAR(solution.x[1], 0.0, 1e-9);
    EXPECT_NEAR(solution.objective_value, 300.0, 1e-9);  // (1+1)·(100+200)/2
}

TEST(ScheduleLpTest, ExactSpeedupUsesSingleConfig)
{
    const LpSolution solution =
        SolveScheduleLp({1.0, 1.5, 2.0}, {100.0, 150.0, 260.0}, 1.5, 2.0);
    ASSERT_TRUE(solution.feasible);
    EXPECT_NEAR(solution.x[1], 2.0, 1e-9);
}

TEST(ScheduleLpTest, InfeasibleAboveMaxSpeedup)
{
    const LpSolution solution = SolveScheduleLp({1.0, 2.0}, {100.0, 300.0}, 3.0, 2.0);
    EXPECT_FALSE(solution.feasible);
}

TEST(ScheduleLpTest, AtMostTwoNonZeroDwells)
{
    // Property the paper states (§III-B3): an optimal solution exists with
    // at most two non-zero dwell times.
    const std::vector<double> speedups = {1.0, 1.2, 1.5, 1.7, 2.0, 2.3, 2.6};
    const std::vector<double> powers = {100, 130, 180, 210, 280, 350, 430};
    for (double s = 1.0; s <= 2.6; s += 0.1) {
        const LpSolution solution = SolveScheduleLp(speedups, powers, s, 2.0);
        ASSERT_TRUE(solution.feasible) << "speedup " << s;
        int nonzero = 0;
        for (const double t : solution.x) {
            if (t > 1e-7) {
                ++nonzero;
            }
        }
        EXPECT_LE(nonzero, 2) << "speedup " << s;
    }
}

}  // namespace
}  // namespace aeo
