#include "apps/app_model.h"

#include <gtest/gtest.h>

namespace aeo {
namespace {

AppSpec
TimedSpec(double seconds, double gips_cap)
{
    AppSpec spec;
    spec.name = "timed";
    AppPhase phase;
    phase.name = "steady";
    phase.kind = PhaseKind::kTimed;
    phase.demand.demand_gips = gips_cap;
    phase.duration = SimTime::FromSecondsF(seconds);
    spec.phases.push_back(phase);
    return spec;
}

TEST(AppModelTest, TimedPhaseEndsAfterDuration)
{
    AppModel app(TimedSpec(2.0, 0.1), 1);
    EXPECT_FALSE(app.Finished());
    app.Advance(SimTime::FromSeconds(1), 0.1);
    EXPECT_FALSE(app.Finished());
    app.Advance(SimTime::FromSeconds(1), 0.1);
    EXPECT_TRUE(app.Finished());
}

TEST(AppModelTest, WorkPhaseEndsWhenWorkDrains)
{
    AppSpec spec;
    spec.name = "batch";
    AppPhase phase;
    phase.name = "chunk";
    phase.kind = PhaseKind::kWork;
    phase.work_gi = 1.0;
    spec.phases.push_back(phase);
    AppModel app(spec, 1);

    app.Advance(SimTime::FromSeconds(1), 0.6);
    EXPECT_FALSE(app.Finished());
    app.Advance(SimTime::FromSeconds(1), 0.4);
    EXPECT_TRUE(app.Finished());
    EXPECT_DOUBLE_EQ(app.total_executed_gi(), 1.0);
}

TEST(AppModelTest, PhasesRunInSequence)
{
    AppSpec spec;
    spec.name = "seq";
    AppPhase a = TimedSpec(1.0, 0.1).phases[0];
    a.name = "first";
    AppPhase b = TimedSpec(1.0, 0.2).phases[0];
    b.name = "second";
    spec.phases = {a, b};
    AppModel app(spec, 1);

    EXPECT_EQ(app.CurrentPhaseName(), "first");
    app.Advance(SimTime::FromSeconds(1), 0.0);
    EXPECT_EQ(app.CurrentPhaseName(), "second");
    app.Advance(SimTime::FromSeconds(1), 0.0);
    EXPECT_TRUE(app.Finished());
    EXPECT_EQ(app.CurrentPhaseName(), "done");
}

TEST(AppModelTest, LoopingSpecNeverFinishes)
{
    AppSpec spec = TimedSpec(1.0, 0.1);
    spec.loop = true;
    AppModel app(spec, 1);
    for (int i = 0; i < 100; ++i) {
        app.Advance(SimTime::FromSeconds(1), 0.1);
    }
    EXPECT_FALSE(app.Finished());
    EXPECT_EQ(app.total_elapsed(), SimTime::FromSeconds(100));
}

TEST(AppModelTest, TimeToBoundaryForTimedPhase)
{
    AppModel app(TimedSpec(2.0, 0.1), 1);
    app.Advance(SimTime::Millis(500), 0.0);
    const auto boundary = app.TimeToBoundary(1.0);
    ASSERT_TRUE(boundary.has_value());
    EXPECT_EQ(*boundary, SimTime::Millis(1500));
}

TEST(AppModelTest, TimeToBoundaryForWorkPhaseUsesRate)
{
    AppSpec spec;
    spec.name = "batch";
    AppPhase phase;
    phase.kind = PhaseKind::kWork;
    phase.work_gi = 2.0;
    spec.phases.push_back(phase);
    AppModel app(spec, 1);

    const auto boundary = app.TimeToBoundary(0.5);
    ASSERT_TRUE(boundary.has_value());
    EXPECT_EQ(*boundary, SimTime::FromSeconds(4));
    // Zero rate: no predictable boundary.
    EXPECT_FALSE(app.TimeToBoundary(0.0).has_value());
}

TEST(AppModelTest, FinishedModelHasIdleDemand)
{
    AppModel app(TimedSpec(1.0, 5.0), 1);
    app.Advance(SimTime::FromSeconds(1), 0.0);
    ASSERT_TRUE(app.Finished());
    EXPECT_DOUBLE_EQ(app.CurrentDemand().demand_gips, 0.0);
    EXPECT_DOUBLE_EQ(app.CurrentComponentPower(), 0.0);
    EXPECT_FALSE(app.TimeToBoundary(1.0).has_value());
}

AppSpec
FrameSpec(double frame_work_gi, double period_s, double duration_s)
{
    AppSpec spec;
    spec.name = "frames";
    AppPhase phase;
    phase.name = "render";
    phase.kind = PhaseKind::kFrame;
    phase.demand.ipc = 1.0;
    phase.demand.parallelism = 1.0;
    phase.frame_work_gi = frame_work_gi;
    phase.frame_period = SimTime::FromSecondsF(period_s);
    phase.duration = SimTime::FromSecondsF(duration_s);
    phase.slack_demand.demand_gips = 0.0;
    spec.phases.push_back(phase);
    return spec;
}

TEST(AppModelTest, FrameLoopAlternatesComputeAndSlack)
{
    // 0.01 Gi per 100 ms frame; at 0.2 GIPS compute takes 50 ms.
    AppModel app(FrameSpec(0.01, 0.1, 10.0), 1);
    // Compute sub-state: boundary is work completion.
    auto boundary = app.TimeToBoundary(0.2);
    ASSERT_TRUE(boundary.has_value());
    EXPECT_EQ(*boundary, SimTime::Millis(50));
    app.Advance(SimTime::Millis(50), 0.01);
    // Now in slack until the 100 ms period boundary.
    boundary = app.TimeToBoundary(0.2);
    ASSERT_TRUE(boundary.has_value());
    EXPECT_NEAR(boundary->seconds(), 0.05, 1e-6);
    EXPECT_DOUBLE_EQ(app.CurrentDemand().demand_gips, 0.0);
    // After the slack a new frame starts computing.
    app.Advance(*boundary, 0.0);
    EXPECT_GT(app.CurrentDemand().demand_gips, 0.0);
}

TEST(AppModelTest, OverrunningFramesSkipSlack)
{
    // 0.01 Gi per 100 ms frame at only 0.05 GIPS: compute takes 200 ms.
    AppModel app(FrameSpec(0.01, 0.1, 10.0), 1);
    app.Advance(SimTime::Millis(200), 0.01);  // completes exactly at overrun
    // No slack: next frame starts computing immediately.
    EXPECT_GT(app.CurrentDemand().demand_gips, 0.0);
}

TEST(AppModelTest, FramePhaseEndsAtDuration)
{
    AppModel app(FrameSpec(0.01, 0.1, 0.5), 7);
    for (int i = 0; i < 10; ++i) {
        app.Advance(SimTime::Millis(100), 0.002);
    }
    EXPECT_TRUE(app.Finished());
}

TEST(AppModelTest, JitterVariesWorkButDeterministically)
{
    AppSpec spec;
    spec.name = "jittered";
    spec.jitter_rel = 0.2;
    AppPhase phase;
    phase.kind = PhaseKind::kWork;
    phase.work_gi = 1.0;
    spec.phases = {phase, phase, phase};

    AppModel a(spec, 42);
    AppModel b(spec, 42);
    // Same seed → identical boundaries.
    for (int i = 0; i < 3; ++i) {
        const auto ta = a.TimeToBoundary(1.0);
        const auto tb = b.TimeToBoundary(1.0);
        ASSERT_TRUE(ta && tb);
        EXPECT_EQ(*ta, *tb);
        a.Advance(*ta, ta->seconds());
        b.Advance(*tb, tb->seconds());
    }

    // Different seed → different jitter.
    AppModel c(spec, 43);
    const auto tc = c.TimeToBoundary(1.0);
    AppModel d(spec, 42);
    const auto td = d.TimeToBoundary(1.0);
    ASSERT_TRUE(tc && td);
    EXPECT_NE(*tc, *td);
}

TEST(AppModelTest, TotalsAccumulate)
{
    AppModel app(TimedSpec(10.0, 1.0), 1);
    app.Advance(SimTime::FromSeconds(2), 1.5);
    app.Advance(SimTime::FromSeconds(3), 2.5);
    EXPECT_DOUBLE_EQ(app.total_executed_gi(), 4.0);
    EXPECT_EQ(app.total_elapsed(), SimTime::FromSeconds(5));
}

}  // namespace
}  // namespace aeo
