#include "apps/app_registry.h"

#include <gtest/gtest.h>

#include "common/logging.h"

namespace aeo {
namespace {

TEST(AppRegistryTest, AllPaperAppsPresent)
{
    const auto names = BuiltinAppNames();
    ASSERT_EQ(names.size(), 7u);
    for (const auto& name : names) {
        EXPECT_TRUE(IsBuiltinApp(name)) << name;
        const AppSpec spec = MakeAppSpecByName(name);
        EXPECT_EQ(spec.name, name);
        EXPECT_FALSE(spec.phases.empty());
    }
}

TEST(AppRegistryTest, UnknownAppIsFatal)
{
    EXPECT_FALSE(IsBuiltinApp("Netflix"));
    EXPECT_THROW(MakeAppSpecByName("Netflix"), FatalError);
}

TEST(AppRegistryTest, OrderMatchesPaperPresentation)
{
    const auto names = BuiltinAppNames();
    EXPECT_EQ(names.front(), "VidCon");
    EXPECT_EQ(names[5], "Spotify");
    EXPECT_EQ(names.back(), "eBook");
}

}  // namespace
}  // namespace aeo
