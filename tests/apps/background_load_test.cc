#include "apps/background_load.h"

#include <gtest/gtest.h>

namespace aeo {
namespace {

TEST(BackgroundLoadTest, NamesMatchPaper)
{
    EXPECT_EQ(ToString(BackgroundKind::kNoLoad), "NL");
    EXPECT_EQ(ToString(BackgroundKind::kBaseline), "BL");
    EXPECT_EQ(ToString(BackgroundKind::kHeavy), "HL");
}

TEST(BackgroundLoadTest, FreeMemoryOrderingMatchesPaper)
{
    // §V-C: free memory is 1 GB (NL) > 500 MB (BL) > 134 MB (HL).
    const BackgroundEnv nl = MakeBackgroundEnv(BackgroundKind::kNoLoad);
    const BackgroundEnv bl = MakeBackgroundEnv(BackgroundKind::kBaseline);
    const BackgroundEnv hl = MakeBackgroundEnv(BackgroundKind::kHeavy);
    EXPECT_GT(nl.free_memory_mb, bl.free_memory_mb);
    EXPECT_GT(bl.free_memory_mb, hl.free_memory_mb);
    EXPECT_NEAR(hl.free_memory_mb, 134.0, 1.0);
}

TEST(BackgroundLoadTest, MemoryPressureGrowsWithLoad)
{
    const BackgroundEnv nl = MakeBackgroundEnv(BackgroundKind::kNoLoad);
    const BackgroundEnv bl = MakeBackgroundEnv(BackgroundKind::kBaseline);
    const BackgroundEnv hl = MakeBackgroundEnv(BackgroundKind::kHeavy);
    EXPECT_LE(nl.fg_mem_intensity_multiplier, bl.fg_mem_intensity_multiplier);
    EXPECT_LT(bl.fg_mem_intensity_multiplier, hl.fg_mem_intensity_multiplier);
}

TEST(BackgroundLoadTest, LoadavgPressureIsSimilarAcrossLoads)
{
    // §V-C: loadavg is 6.3 / 6.7 / 6.6 — nearly identical; memory differs.
    for (const auto kind : {BackgroundKind::kNoLoad, BackgroundKind::kBaseline,
                            BackgroundKind::kHeavy}) {
        const BackgroundEnv env = MakeBackgroundEnv(kind);
        EXPECT_GT(env.resident_tasks, 6.0);
        EXPECT_LT(env.resident_tasks, 7.0);
    }
}

TEST(BackgroundLoadTest, SpecsLoopAndAreRunnable)
{
    for (const auto kind : {BackgroundKind::kNoLoad, BackgroundKind::kBaseline,
                            BackgroundKind::kHeavy}) {
        const BackgroundEnv env = MakeBackgroundEnv(kind);
        EXPECT_TRUE(env.spec.loop);
        AppModel model(env.spec, 5);
        for (int i = 0; i < 1000; ++i) {
            model.Advance(SimTime::Millis(100), 0.01);
        }
        EXPECT_FALSE(model.Finished());
    }
}

TEST(BackgroundLoadTest, HeavierLoadDemandsMoreCompute)
{
    // Average the demand cap over the idle phases as a load proxy.
    const auto avg_idle_demand = [](const BackgroundEnv& env) {
        double sum = 0.0;
        int count = 0;
        for (const AppPhase& phase : env.spec.phases) {
            if (phase.kind == PhaseKind::kTimed) {
                sum += phase.demand.demand_gips;
                ++count;
            }
        }
        return sum / count;
    };
    EXPECT_LT(avg_idle_demand(MakeBackgroundEnv(BackgroundKind::kNoLoad)),
              avg_idle_demand(MakeBackgroundEnv(BackgroundKind::kBaseline)));
    EXPECT_LT(avg_idle_demand(MakeBackgroundEnv(BackgroundKind::kBaseline)),
              avg_idle_demand(MakeBackgroundEnv(BackgroundKind::kHeavy)));
}

}  // namespace
}  // namespace aeo
