/**
 * @file
 * Sanity checks that each workload spec encodes the characteristics the
 * paper reports for it (§IV-C, §V-A).
 */
#include "apps/workloads.h"

#include <gtest/gtest.h>

#include <cmath>

namespace aeo {
namespace {

TEST(WorkloadsTest, VidConIsBatchAndSelfPaced)
{
    const AppSpec spec = MakeVidConSpec();
    EXPECT_FALSE(spec.loop);
    double total_work = 0.0;
    for (const AppPhase& phase : spec.phases) {
        ASSERT_EQ(phase.kind, PhaseKind::kWork);
        EXPECT_TRUE(phase.demand.self_paced());
        total_work += phase.work_gi;
    }
    EXPECT_NEAR(total_work, 148.0, 1.0);
}

TEST(WorkloadsTest, MobileBenchAlternatesLoadAndView)
{
    const AppSpec spec = MakeMobileBenchSpec();
    EXPECT_FALSE(spec.loop);
    ASSERT_EQ(spec.phases.size(), 48u);  // 24 pages × (load + view)
    EXPECT_EQ(spec.phases[0].kind, PhaseKind::kWork);
    EXPECT_EQ(spec.phases[1].kind, PhaseKind::kFrame);  // 60 fps zoom/scroll
}

TEST(WorkloadsTest, AngryBirdsIsA60FpsLoopWithAds)
{
    const AppSpec spec = MakeAngryBirdsSpec();
    EXPECT_TRUE(spec.loop);
    ASSERT_EQ(spec.phases.size(), 2u);
    const AppPhase& gameplay = spec.phases[0];
    EXPECT_EQ(gameplay.kind, PhaseKind::kFrame);
    EXPECT_NEAR(gameplay.frame_period.seconds(), 1.0 / 60.0, 1e-4);
    // ipc·par = 0.5675: vsync re-sync losses bring the measured base speed
    // down to the paper's 0.129 GIPS (see nexus6_calibration_test.cc).
    EXPECT_NEAR(gameplay.demand.ipc * gameplay.demand.parallelism, 0.5675, 1e-9);
    const AppPhase& ad = spec.phases[1];
    EXPECT_EQ(ad.kind, PhaseKind::kWork);
    EXPECT_GT(ad.component_mw, gameplay.component_mw + 400.0);  // ~0.5 W extra
    EXPECT_GT(ad.demand.mem_bytes_per_instr, 1.0);  // bus-heavy creative fetch
}

TEST(WorkloadsTest, WeChatSaturatesNearLevel7)
{
    const AppSpec spec = MakeWeChatSpec();
    ASSERT_EQ(spec.phases.size(), 2u);
    const AppPhase& quiet = spec.phases[0];
    const AppPhase& active = spec.phases[1];
    EXPECT_EQ(quiet.kind, PhaseKind::kFrame);
    const double k = quiet.demand.ipc * quiet.demand.parallelism;
    // Quiet (talking-head) frames fit at level 3, where the paper's
    // controller spends >50 % of its time...
    const double quiet_demand = quiet.frame_work_gi / quiet.frame_period.seconds();
    EXPECT_GT(0.6528 * k, quiet_demand);
    // ...while heavy motion frames (+1.5σ work jitter) overrun level 5 and
    // only fit at level 7 — "no significant improvement beyond frequency 7".
    const double active_demand =
        active.frame_work_gi / active.frame_period.seconds();
    const double heavy = active_demand * std::exp(1.5 * spec.jitter_rel);
    EXPECT_LT(0.8832 * k, heavy);
    EXPECT_GT(1.0368 * k, heavy);
}

TEST(WorkloadsTest, MxPlayerHasTinyCpuDemandAndDecoderPower)
{
    const AppSpec spec = MakeMxPlayerSpec();
    const AppPhase& playback = spec.phases[0];
    const double demand = playback.frame_work_gi / playback.frame_period.seconds();
    EXPECT_LT(demand, 0.15);
    EXPECT_GT(playback.component_mw, 300.0);
    // Frames overrun below level 5 (0.8832 GHz), the paper's stutter bound.
    const double k = playback.demand.ipc * playback.demand.parallelism;
    EXPECT_LT(0.7296 * k, demand);
    EXPECT_GT(0.8832 * k, demand * 0.95);
}

TEST(WorkloadsTest, SpotifyDecodeAheadFitsTheLowestFrequency)
{
    const AppSpec spec = MakeSpotifySpec();
    EXPECT_TRUE(spec.loop);
    const AppPhase& playback = spec.phases[0];
    EXPECT_EQ(playback.kind, PhaseKind::kFrame);
    EXPECT_EQ(playback.frame_period, SimTime::Millis(400));
    // 0.024 Gi of decode-ahead per 400 ms audio chunk: even at 0.3 GHz the
    // chunk (≈0.13 s of compute) finishes with margin — audio never
    // underruns at the lowest frequency, per the paper.
    const double capacity =
        0.3 * playback.demand.ipc * playback.demand.parallelism;
    const double needed_rate =
        playback.frame_work_gi / playback.frame_period.seconds();
    EXPECT_GT(capacity, 3.0 * needed_rate);
    // A song change every ≈21 s (18 s + 1.2 s transition + 2 s tail).
    double cycle_s = 0.0;
    for (const AppPhase& phase : spec.phases) {
        cycle_s += phase.duration.seconds();
    }
    EXPECT_NEAR(cycle_s, 21.2, 0.5);
}

TEST(WorkloadsTest, EbookIsNearlyIdleWithRedrawTicks)
{
    const AppSpec spec = MakeEbookSpec();
    EXPECT_TRUE(spec.loop);
    ASSERT_EQ(spec.phases.size(), 2u);
    const AppPhase& reading = spec.phases[0];
    EXPECT_EQ(reading.kind, PhaseKind::kFrame);
    EXPECT_EQ(reading.frame_period, SimTime::FromSeconds(1));
    EXPECT_LT(reading.slack_demand.demand_gips, 0.05);
    // Plus a periodic page-typeset burst (the >10 % at level 18 in Fig. 1).
    EXPECT_EQ(spec.phases[1].kind, PhaseKind::kWork);
}

}  // namespace
}  // namespace aeo
