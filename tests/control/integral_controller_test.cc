#include "control/integral_controller.h"

#include <gtest/gtest.h>

namespace aeo {
namespace {

TEST(IntegralControllerTest, StepAccumulatesScaledError)
{
    AdaptiveIntegralController controller(1.0, 0.0, 10.0);
    // s = 1 + e/b = 1 + 0.5/0.5 = 2.
    EXPECT_DOUBLE_EQ(controller.Step(0.5, 0.5), 2.0);
    EXPECT_DOUBLE_EQ(controller.output(), 2.0);
    // Negative error integrates downward.
    EXPECT_DOUBLE_EQ(controller.Step(-0.25, 0.5), 1.5);
}

TEST(IntegralControllerTest, OutputIsClamped)
{
    AdaptiveIntegralController controller(1.0, 1.0, 2.0);
    EXPECT_DOUBLE_EQ(controller.Step(100.0, 1.0), 2.0);
    EXPECT_DOUBLE_EQ(controller.Step(-100.0, 1.0), 1.0);
}

TEST(IntegralControllerTest, AdaptiveGainScalesWithBaseSpeed)
{
    AdaptiveIntegralController slow_app(1.0, 0.0, 100.0);
    AdaptiveIntegralController fast_app(1.0, 0.0, 100.0);
    // The same GIPS error moves a slow app (small b) much more.
    slow_app.Step(0.1, 0.129);  // AngryBirds-like base speed
    fast_app.Step(0.1, 0.471);  // VidCon-like base speed
    EXPECT_GT(slow_app.output(), fast_app.output());
    EXPECT_NEAR(slow_app.output(), 1.0 + 0.1 / 0.129, 1e-12);
}

TEST(IntegralControllerTest, ConvergesOnStaticPlant)
{
    // Plant: y = s · b with b = 0.2; target r = 0.5 → s* = 2.5.
    const double b = 0.2;
    const double target = 0.5;
    AdaptiveIntegralController controller(1.0, 0.5, 5.0);
    double s = controller.output();
    for (int i = 0; i < 50; ++i) {
        const double y = s * b;
        s = controller.Step(target - y, b);
    }
    EXPECT_NEAR(s, 2.5, 1e-6);
}

TEST(IntegralControllerTest, SetOutputRangeReclamps)
{
    AdaptiveIntegralController controller(5.0, 0.0, 10.0);
    controller.SetOutputRange(0.0, 3.0);
    EXPECT_DOUBLE_EQ(controller.output(), 3.0);
}

TEST(IntegralControllerTest, ResetRestoresState)
{
    AdaptiveIntegralController controller(1.0, 0.0, 10.0);
    controller.Step(5.0, 1.0);
    controller.Reset(2.0);
    EXPECT_DOUBLE_EQ(controller.output(), 2.0);
}

TEST(IntegralControllerDeathTest, RejectsNonPositiveGainDenominator)
{
    AdaptiveIntegralController controller(1.0, 0.0, 10.0);
    EXPECT_DEATH(controller.Step(1.0, 0.0), "positive");
}

}  // namespace
}  // namespace aeo
