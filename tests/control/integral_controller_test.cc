#include "control/integral_controller.h"

#include <gtest/gtest.h>

namespace aeo {
namespace {

TEST(IntegralControllerTest, StepAccumulatesScaledError)
{
    AdaptiveIntegralController controller(1.0, 0.0, 10.0);
    // s = 1 + e/b = 1 + 0.5/0.5 = 2.
    EXPECT_DOUBLE_EQ(controller.Step(0.5, 0.5), 2.0);
    EXPECT_DOUBLE_EQ(controller.output(), 2.0);
    // Negative error integrates downward.
    EXPECT_DOUBLE_EQ(controller.Step(-0.25, 0.5), 1.5);
}

TEST(IntegralControllerTest, OutputIsClamped)
{
    AdaptiveIntegralController controller(1.0, 1.0, 2.0);
    EXPECT_DOUBLE_EQ(controller.Step(100.0, 1.0), 2.0);
    EXPECT_DOUBLE_EQ(controller.Step(-100.0, 1.0), 1.0);
}

TEST(IntegralControllerTest, AdaptiveGainScalesWithBaseSpeed)
{
    AdaptiveIntegralController slow_app(1.0, 0.0, 100.0);
    AdaptiveIntegralController fast_app(1.0, 0.0, 100.0);
    // The same GIPS error moves a slow app (small b) much more.
    slow_app.Step(0.1, 0.129);  // AngryBirds-like base speed
    fast_app.Step(0.1, 0.471);  // VidCon-like base speed
    EXPECT_GT(slow_app.output(), fast_app.output());
    EXPECT_NEAR(slow_app.output(), 1.0 + 0.1 / 0.129, 1e-12);
}

TEST(IntegralControllerTest, ConvergesOnStaticPlant)
{
    // Plant: y = s · b with b = 0.2; target r = 0.5 → s* = 2.5.
    const double b = 0.2;
    const double target = 0.5;
    AdaptiveIntegralController controller(1.0, 0.5, 5.0);
    double s = controller.output();
    for (int i = 0; i < 50; ++i) {
        const double y = s * b;
        s = controller.Step(target - y, b);
    }
    EXPECT_NEAR(s, 2.5, 1e-6);
}

TEST(IntegralControllerTest, SetOutputRangeReclamps)
{
    AdaptiveIntegralController controller(5.0, 0.0, 10.0);
    controller.SetOutputRange(0.0, 3.0);
    EXPECT_DOUBLE_EQ(controller.output(), 3.0);
}

TEST(IntegralControllerTest, ResetRestoresState)
{
    AdaptiveIntegralController controller(1.0, 0.0, 10.0);
    controller.Step(5.0, 1.0);
    controller.Reset(2.0);
    EXPECT_DOUBLE_EQ(controller.output(), 2.0);
}

TEST(IntegralControllerTest, DefaultKnobsReproducePlainClampedIntegrator)
{
    // band = 0 and max_step_down = kUnlimitedStep must be bit-identical to
    // the plain clamped integrator of equations (2)-(3) on any trajectory,
    // including floor- and ceiling-clamped cycles.
    AdaptiveIntegralController plain(2.0, 1.0, 3.0);
    AdaptiveIntegralController knobbed(2.0, 1.0, 3.0);
    knobbed.set_surplus_band(0.0);
    knobbed.set_max_step_down(kUnlimitedStep);
    const double errors[] = {0.4, -9.0, -0.3, 7.5, 0.1, -2.0, 0.0, 5.0};
    for (double e : errors) {
        EXPECT_DOUBLE_EQ(plain.Step(e, 0.5), knobbed.Step(e, 0.5));
        EXPECT_DOUBLE_EQ(knobbed.banked_surplus(), 0.0);
    }
}

TEST(IntegralControllerTest, SurplusBankHoldsBurstCreditBelowTheFloor)
{
    AdaptiveIntegralController controller(2.0, 1.0, 3.0);
    controller.set_surplus_band(2.0);
    // A demand burst delivers far more than target: the output clamps at the
    // floor, but the state keeps integrating down to min - band.
    EXPECT_DOUBLE_EQ(controller.Step(-100.0, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(controller.banked_surplus(), 2.0);
    // Post-burst deficits are repaid from the bank first: the output stays
    // at the floor until the credit is exhausted...
    EXPECT_DOUBLE_EQ(controller.Step(0.5, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(controller.banked_surplus(), 1.5);
    // ...and only then does the integrator push the output back up.
    EXPECT_DOUBLE_EQ(controller.Step(2.0, 1.0), 1.5);
    EXPECT_DOUBLE_EQ(controller.banked_surplus(), 0.0);
}

TEST(IntegralControllerTest, SurplusBankIsOneSided)
{
    // An infeasible target (persistent positive error) accumulates no debt
    // beyond the ceiling: safe mode stays "run at maximum", not "run at
    // maximum for extra cycles after the target drops".
    AdaptiveIntegralController controller(2.0, 1.0, 3.0);
    controller.set_surplus_band(2.0);
    for (int i = 0; i < 10; ++i) controller.Step(100.0, 1.0);
    EXPECT_DOUBLE_EQ(controller.output(), 3.0);
    EXPECT_DOUBLE_EQ(controller.Step(-1.5, 1.0), 1.5);
}

TEST(IntegralControllerTest, WithoutBankingBurstCreditIsTruncated)
{
    AdaptiveIntegralController controller(2.0, 1.0, 3.0);
    EXPECT_DOUBLE_EQ(controller.Step(-100.0, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(controller.banked_surplus(), 0.0);
    // The same post-burst deficit immediately raises the output: the burst
    // surplus was destroyed by the clamp.
    EXPECT_DOUBLE_EQ(controller.Step(0.5, 1.0), 1.5);
}

TEST(IntegralControllerTest, DownwardSlewLimitsDescentButNotAscent)
{
    AdaptiveIntegralController controller(5.0, 1.0, 5.0);
    controller.set_max_step_down(0.5);
    // Descent walks down the frontier half a speedup per cycle...
    EXPECT_DOUBLE_EQ(controller.Step(-100.0, 1.0), 4.5);
    EXPECT_DOUBLE_EQ(controller.Step(-100.0, 1.0), 4.0);
    // ...but a performance deficit snaps the output up immediately (QoS
    // tracking never waits on the slew limit).
    EXPECT_DOUBLE_EQ(controller.Step(100.0, 1.0), 5.0);
}

TEST(IntegralControllerTest, SetOutputRangeReclampsBankedState)
{
    AdaptiveIntegralController controller(2.0, 1.0, 3.0);
    controller.set_surplus_band(2.0);
    controller.Step(-100.0, 1.0);
    EXPECT_DOUBLE_EQ(controller.banked_surplus(), 2.0);
    // Raising the floor (a table refresh) re-clamps the banked state so the
    // credit still sits within one band of the new floor.
    controller.SetOutputRange(2.0, 4.0);
    EXPECT_DOUBLE_EQ(controller.output(), 2.0);
    EXPECT_DOUBLE_EQ(controller.banked_surplus(), 2.0);
}

TEST(IntegralControllerTest, ResetClearsBankedSurplus)
{
    AdaptiveIntegralController controller(2.0, 1.0, 3.0);
    controller.set_surplus_band(2.0);
    controller.Step(-100.0, 1.0);
    controller.Reset(2.5);
    EXPECT_DOUBLE_EQ(controller.output(), 2.5);
    EXPECT_DOUBLE_EQ(controller.banked_surplus(), 0.0);
}

TEST(IntegralControllerDeathTest, RejectsNegativeSurplusBand)
{
    AdaptiveIntegralController controller(1.0, 0.0, 10.0);
    EXPECT_DEATH(controller.set_surplus_band(-1.0), "non-negative");
}

TEST(IntegralControllerDeathTest, RejectsNonPositiveSlewLimit)
{
    AdaptiveIntegralController controller(1.0, 0.0, 10.0);
    EXPECT_DEATH(controller.set_max_step_down(0.0), "positive");
}

TEST(IntegralControllerDeathTest, RejectsNonPositiveGainDenominator)
{
    AdaptiveIntegralController controller(1.0, 0.0, 10.0);
    EXPECT_DEATH(controller.Step(1.0, 0.0), "positive");
}

}  // namespace
}  // namespace aeo
