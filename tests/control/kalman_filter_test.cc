#include "control/kalman_filter.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace aeo {
namespace {

TEST(KalmanFilterTest, ConvergesToConstantState)
{
    ScalarKalmanFilter filter(0.5, 1.0, 1e-6, 0.01);
    for (int i = 0; i < 200; ++i) {
        filter.Update(2.0, 1.0);  // noiseless z = x, true x = 2
    }
    EXPECT_NEAR(filter.estimate(), 2.0, 1e-3);
    EXPECT_LT(filter.variance(), 0.01);
}

TEST(KalmanFilterTest, FiltersNoisyMeasurements)
{
    Rng rng(123);
    ScalarKalmanFilter filter(0.1, 0.5, 1e-7, 0.04);
    const double truth = 0.129;  // AngryBirds base speed
    for (int i = 0; i < 500; ++i) {
        filter.Update(truth + rng.Gaussian(0.0, 0.02), 1.0);
    }
    EXPECT_NEAR(filter.estimate(), truth, 0.01);
}

TEST(KalmanFilterTest, TimeVaryingObservationGain)
{
    // y = h·x with varying h (the controller's applied speedup).
    ScalarKalmanFilter filter(1.0, 1.0, 1e-6, 0.001);
    const double truth = 0.25;
    Rng rng(7);
    for (int i = 0; i < 300; ++i) {
        const double h = 1.0 + 0.5 * rng.NextDouble() * 2.0;  // 1..2
        filter.Update(h * truth, h);
    }
    EXPECT_NEAR(filter.estimate(), truth, 1e-3);
}

TEST(KalmanFilterTest, TracksDriftingState)
{
    ScalarKalmanFilter filter(1.0, 0.1, 1e-3, 0.01);
    double truth = 1.0;
    for (int i = 0; i < 500; ++i) {
        truth += 0.002;  // slow drift
        filter.Update(truth, 1.0);
    }
    EXPECT_NEAR(filter.estimate(), truth, 0.05);
}

TEST(KalmanFilterTest, HugeMeasurementVarianceFreezesEstimate)
{
    // This is how the controller disables the filter in the ablation.
    ScalarKalmanFilter filter(0.3, 0.01, 0.0, 1e12);
    for (int i = 0; i < 100; ++i) {
        filter.Update(5.0, 1.0);
    }
    EXPECT_NEAR(filter.estimate(), 0.3, 1e-6);
}

TEST(KalmanFilterTest, VarianceShrinksWithInformativeUpdates)
{
    ScalarKalmanFilter filter(0.0, 10.0, 0.0, 0.1);
    const double v0 = filter.variance();
    filter.Update(1.0, 1.0);
    EXPECT_LT(filter.variance(), v0);
}

TEST(KalmanFilterTest, ResetReinitializes)
{
    ScalarKalmanFilter filter(1.0, 1.0, 1e-4, 0.01);
    filter.Update(3.0, 1.0);
    filter.Reset(0.5, 2.0);
    EXPECT_DOUBLE_EQ(filter.estimate(), 0.5);
    EXPECT_DOUBLE_EQ(filter.variance(), 2.0);
}

}  // namespace
}  // namespace aeo
