#include "control/phase_detector.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace aeo {
namespace {

TEST(PhaseDetectorTest, SinglePhaseStaysSingle)
{
    PhaseDetector detector;
    Rng rng(1);
    for (int i = 0; i < 100; ++i) {
        detector.Classify(0.30 * (1.0 + rng.Gaussian(0.0, 0.03)));
    }
    EXPECT_EQ(detector.phases().size(), 1u);
    EXPECT_NEAR(detector.phases()[0].centroid, 0.30, 0.02);
    EXPECT_EQ(detector.switch_count(), 0u);
}

TEST(PhaseDetectorTest, SeparatesTwoDistinctPhases)
{
    // MobileBench-like: page loads (~2.5 GIPS) vs viewing (~0.5 GIPS).
    PhaseDetector detector;
    Rng rng(2);
    for (int i = 0; i < 50; ++i) {
        detector.Classify(2.5 * (1.0 + rng.Gaussian(0.0, 0.05)));
        detector.Classify(0.5 * (1.0 + rng.Gaussian(0.0, 0.05)));
    }
    ASSERT_EQ(detector.phases().size(), 2u);
    const double lo = std::min(detector.phases()[0].centroid,
                               detector.phases()[1].centroid);
    const double hi = std::max(detector.phases()[0].centroid,
                               detector.phases()[1].centroid);
    EXPECT_NEAR(lo, 0.5, 0.1);
    EXPECT_NEAR(hi, 2.5, 0.3);
    // Alternating stream: a switch on nearly every sample.
    EXPECT_GE(detector.switch_count(), 95u);
}

TEST(PhaseDetectorTest, CentroidTracksDrift)
{
    PhaseDetector detector;
    double level = 1.0;
    for (int i = 0; i < 200; ++i) {
        level *= 1.002;  // slow drift stays within tolerance
        detector.Classify(level);
    }
    EXPECT_EQ(detector.phases().size(), 1u);
    EXPECT_GT(detector.phases()[0].centroid, 1.2);
}

TEST(PhaseDetectorTest, EvictsStalePhaseWhenFull)
{
    PhaseDetectorParams params;
    params.max_phases = 2;
    PhaseDetector detector(params);
    detector.Classify(1.0);
    detector.Classify(2.0);
    // A third, distinct level evicts the least-recently-seen (1.0).
    const int id = detector.Classify(4.0);
    EXPECT_GE(id, 0);
    ASSERT_EQ(detector.phases().size(), 2u);
    for (const PhaseInfo& phase : detector.phases()) {
        EXPECT_NE(phase.centroid, 1.0);
    }
}

TEST(PhaseDetectorTest, StablePhaseIdsAcrossRevisits)
{
    PhaseDetector detector;
    const int a1 = detector.Classify(1.0);
    const int b1 = detector.Classify(3.0);
    const int a2 = detector.Classify(1.02);
    const int b2 = detector.Classify(2.95);
    EXPECT_EQ(a1, a2);
    EXPECT_EQ(b1, b2);
    EXPECT_NE(a1, b1);
    EXPECT_EQ(detector.switch_count(), 3u);
}

}  // namespace
}  // namespace aeo
