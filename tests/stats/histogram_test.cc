#include "stats/histogram.h"

#include <gtest/gtest.h>

#include "common/logging.h"

namespace aeo {
namespace {

TEST(HistogramTest, AccumulatesWeights)
{
    Histogram hist(4);
    hist.Add(0, 1.0);
    hist.Add(0, 2.0);
    hist.Add(3, 1.0);
    EXPECT_DOUBLE_EQ(hist.WeightAt(0), 3.0);
    EXPECT_DOUBLE_EQ(hist.WeightAt(1), 0.0);
    EXPECT_DOUBLE_EQ(hist.TotalWeight(), 4.0);
}

TEST(HistogramTest, FractionsSumToOne)
{
    Histogram hist(5);
    hist.Add(1, 2.0);
    hist.Add(2, 3.0);
    hist.Add(4, 5.0);
    const auto fractions = hist.Fractions();
    double sum = 0.0;
    for (const double f : fractions) {
        sum += f;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(fractions[4], 0.5);
}

TEST(HistogramTest, EmptyHistogramHasZeroFractions)
{
    Histogram hist(3);
    EXPECT_DOUBLE_EQ(hist.FractionAt(0), 0.0);
    EXPECT_DOUBLE_EQ(hist.TotalWeight(), 0.0);
}

TEST(HistogramTest, ModeBinFindsHeaviest)
{
    Histogram hist(6);
    hist.Add(2, 1.0);
    hist.Add(5, 3.0);
    hist.Add(0, 2.0);
    EXPECT_EQ(hist.ModeBin(), 5u);
}

TEST(HistogramTest, PercentMatchesFraction)
{
    Histogram hist(2);
    hist.Add(0, 1.0);
    hist.Add(1, 3.0);
    EXPECT_DOUBLE_EQ(hist.PercentAt(1), 75.0);
}

TEST(HistogramTest, BarChartContainsLabelsAndPercents)
{
    Histogram hist(2);
    hist.Add(0, 9.0);
    hist.Add(1, 1.0);
    const std::string chart = hist.ToBarChart({"low", "high"}, 10);
    EXPECT_NE(chart.find("low"), std::string::npos);
    EXPECT_NE(chart.find("90.00%"), std::string::npos);
    EXPECT_NE(chart.find("##########"), std::string::npos);
}

TEST(HistogramDeathTest, OutOfRangeBinPanics)
{
    Histogram hist(2);
    EXPECT_DEATH(hist.Add(2, 1.0), "bin 2 out of 2");
}

}  // namespace
}  // namespace aeo
