#include "stats/comparison.h"

#include <gtest/gtest.h>

namespace aeo {
namespace {

TEST(ComparisonReportTest, RendersTitleAndRows)
{
    ComparisonReport report("Table III: VidCon");
    report.Add("energy savings", 25.3, 24.8, "%");
    report.Add("performance delta", -0.4, -0.2, "%");
    const std::string out = report.ToString();
    EXPECT_NE(out.find("Table III: VidCon"), std::string::npos);
    EXPECT_NE(out.find("energy savings"), std::string::npos);
    EXPECT_NE(out.find("25.30"), std::string::npos);
    EXPECT_NE(out.find("24.80"), std::string::npos);
    ASSERT_EQ(report.rows().size(), 2u);
    EXPECT_DOUBLE_EQ(report.rows()[0].paper_value, 25.3);
}

TEST(ComparisonReportTest, EmptyReportStillRenders)
{
    ComparisonReport report("empty");
    EXPECT_NE(report.ToString().find("empty"), std::string::npos);
}

}  // namespace
}  // namespace aeo
