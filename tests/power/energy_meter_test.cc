#include "power/energy_meter.h"

#include <gtest/gtest.h>

namespace aeo {
namespace {

TEST(EnergyMeterTest, IntegratesPiecewiseConstantPower)
{
    EnergyMeter meter;
    meter.Accumulate(Milliwatts(1000.0), SimTime::FromSeconds(2));  // 2 J
    meter.Accumulate(Milliwatts(500.0), SimTime::FromSeconds(4));   // 2 J
    EXPECT_NEAR(meter.energy().value(), 4.0, 1e-12);
    EXPECT_EQ(meter.elapsed(), SimTime::FromSeconds(6));
}

TEST(EnergyMeterTest, AveragePowerIsEnergyOverTime)
{
    EnergyMeter meter;
    meter.Accumulate(Milliwatts(2000.0), SimTime::FromSeconds(1));
    meter.Accumulate(Milliwatts(1000.0), SimTime::FromSeconds(3));
    EXPECT_NEAR(meter.AveragePower().value(), 1250.0, 1e-9);
}

TEST(EnergyMeterTest, EmptyMeterHasZeroAverage)
{
    EnergyMeter meter;
    EXPECT_DOUBLE_EQ(meter.AveragePower().value(), 0.0);
}

TEST(EnergyMeterTest, ZeroDurationSegmentsAreHarmless)
{
    EnergyMeter meter;
    meter.Accumulate(Milliwatts(5000.0), SimTime::Zero());
    EXPECT_DOUBLE_EQ(meter.energy().value(), 0.0);
}

TEST(EnergyMeterTest, ResetClears)
{
    EnergyMeter meter;
    meter.Accumulate(Milliwatts(1000.0), SimTime::FromSeconds(1));
    meter.Reset();
    EXPECT_DOUBLE_EQ(meter.energy().value(), 0.0);
    EXPECT_EQ(meter.elapsed(), SimTime::Zero());
}

TEST(EnergyMeterTest, MicrosecondResolutionAccumulates)
{
    EnergyMeter meter;
    for (int i = 0; i < 1000000; ++i) {
        meter.Accumulate(Milliwatts(1000.0), SimTime::Micros(1));
    }
    EXPECT_NEAR(meter.energy().value(), 1.0, 1e-6);  // 1 W × 1 s
}

}  // namespace
}  // namespace aeo
