#include "power/monsoon.h"

#include <gtest/gtest.h>

namespace aeo {
namespace {

TEST(MonsoonTest, SamplesAtConfiguredRate)
{
    Simulator sim;
    MonsoonConfig config;
    config.sample_hz = 5000.0;
    config.noise_rel_stddev = 0.0;
    MonsoonMonitor monitor(&sim, [] { return Milliwatts(1000.0); }, 1, config);
    monitor.Start();
    sim.RunUntil(SimTime::FromSeconds(1));
    EXPECT_EQ(monitor.sample_count(), 5000u);
}

TEST(MonsoonTest, NoiselessAverageIsExact)
{
    Simulator sim;
    MonsoonConfig config;
    config.noise_rel_stddev = 0.0;
    MonsoonMonitor monitor(&sim, [] { return Milliwatts(1623.57); }, 1, config);
    monitor.Start();
    sim.RunUntil(SimTime::FromSeconds(2));
    EXPECT_NEAR(monitor.MeasuredAveragePower().value(), 1623.57, 1e-9);
}

TEST(MonsoonTest, NoisyAverageConvergesToTruth)
{
    Simulator sim;
    MonsoonConfig config;
    config.noise_rel_stddev = 0.02;
    MonsoonMonitor monitor(&sim, [] { return Milliwatts(2000.0); }, 7, config);
    monitor.Start();
    sim.RunUntil(SimTime::FromSeconds(5));
    // 25000 samples at 2 % relative noise: mean within ~0.1 %.
    EXPECT_NEAR(monitor.MeasuredAveragePower().value(), 2000.0, 4.0);
}

TEST(MonsoonTest, TracksTimeVaryingPower)
{
    Simulator sim;
    double current = 1000.0;
    MonsoonConfig config;
    config.noise_rel_stddev = 0.0;
    MonsoonMonitor monitor(&sim, [&] { return Milliwatts(current); }, 1, config);
    monitor.Start();
    sim.RunUntil(SimTime::FromSeconds(1));
    current = 3000.0;
    sim.RunUntil(SimTime::FromSeconds(2));
    // Half the samples at 1 W, half at 3 W.
    EXPECT_NEAR(monitor.MeasuredAveragePower().value(), 2000.0, 2.0);
}

TEST(MonsoonTest, MeasuredEnergyMatchesAverageTimesDuration)
{
    Simulator sim;
    MonsoonConfig config;
    config.noise_rel_stddev = 0.0;
    MonsoonMonitor monitor(&sim, [] { return Milliwatts(1500.0); }, 1, config);
    monitor.Start();
    sim.RunUntil(SimTime::FromSeconds(10));
    EXPECT_NEAR(monitor.MeasuredEnergy().value(), 15.0, 0.01);
}

TEST(MonsoonTest, TraceDecimationKeepsEveryNth)
{
    Simulator sim;
    MonsoonConfig config;
    config.sample_hz = 1000.0;
    config.trace_decimation = 100;
    MonsoonMonitor monitor(&sim, [] { return Milliwatts(1.0); }, 1, config);
    monitor.Start();
    sim.RunUntil(SimTime::FromSeconds(1));
    EXPECT_EQ(monitor.trace().size(), 10u);
}

TEST(MonsoonTest, StopAndResetWork)
{
    Simulator sim;
    MonsoonMonitor monitor(&sim, [] { return Milliwatts(1.0); }, 1);
    monitor.Start();
    sim.RunUntil(SimTime::Millis(10));
    monitor.Stop();
    const uint64_t count = monitor.sample_count();
    sim.RunUntil(SimTime::FromSeconds(1));
    EXPECT_EQ(monitor.sample_count(), count);
    monitor.Reset();
    EXPECT_EQ(monitor.sample_count(), 0u);
}

}  // namespace
}  // namespace aeo
