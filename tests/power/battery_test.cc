#include "power/battery.h"

#include <gtest/gtest.h>

namespace aeo {
namespace {

TEST(BatteryTest, FullEnergyMatchesCapacity)
{
    const Battery battery;  // Nexus 6: 3220 mAh @ 3.8 V
    EXPECT_NEAR(battery.FullEnergy().value(), 3220 * 3.6 * 3.8, 1e-6);
    EXPECT_DOUBLE_EQ(battery.StateOfCharge(), 1.0);
}

TEST(BatteryTest, DrainReducesCharge)
{
    Battery battery(BatteryParams{1000.0, 4.0});  // 14400 J
    battery.Drain(Joules(7200.0));
    EXPECT_NEAR(battery.StateOfCharge(), 0.5, 1e-12);
    EXPECT_NEAR(battery.RemainingEnergy().value(), 7200.0, 1e-9);
}

TEST(BatteryTest, CannotGoBelowEmpty)
{
    Battery battery(BatteryParams{10.0, 1.0});  // 36 J
    battery.Drain(Joules(100.0));
    EXPECT_DOUBLE_EQ(battery.StateOfCharge(), 0.0);
    EXPECT_TRUE(battery.Empty());
}

TEST(BatteryTest, TimeToEmptyAtConstantDraw)
{
    Battery battery(BatteryParams{1000.0, 3.6});  // 12960 J
    const SimTime t = battery.TimeToEmpty(Milliwatts(1296.0));
    EXPECT_NEAR(t.seconds(), 10000.0, 1.0);
}

}  // namespace
}  // namespace aeo
