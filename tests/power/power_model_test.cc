#include "power/power_model.h"

#include <gtest/gtest.h>

#include "soc/nexus6.h"

namespace aeo {
namespace {

PowerInputs
BaseInputs()
{
    PowerInputs inputs;
    inputs.cpu_freq = Gigahertz(1.0);
    inputs.cpu_voltage = Volts(0.9);
    inputs.online_cores = 4;
    inputs.busy_cores = 2.0;
    inputs.bw_level = 0;
    inputs.mem_gbps = 0.1;
    return inputs;
}

TEST(PowerModelTest, BreakdownSumsToTotal)
{
    const PowerModel model;
    PowerInputs inputs = BaseInputs();
    inputs.app_component_mw = 300.0;
    inputs.overhead_mw = 15.0;
    const PowerBreakdown breakdown = model.Compute(inputs);
    EXPECT_NEAR(breakdown.total_mw(),
                breakdown.cpu_mw + breakdown.gpu_mw + breakdown.mem_mw +
                    breakdown.base_mw + breakdown.app_component_mw +
                    breakdown.overhead_mw,
                1e-9);
    EXPECT_DOUBLE_EQ(breakdown.app_component_mw, 300.0);
    EXPECT_DOUBLE_EQ(breakdown.overhead_mw, 15.0);
}

TEST(PowerModelTest, PowerIncreasesWithFrequencyAndVoltage)
{
    const PowerModel model;
    PowerInputs low = BaseInputs();
    PowerInputs high = BaseInputs();
    high.cpu_freq = Gigahertz(2.6496);
    high.cpu_voltage = Volts(1.15);
    EXPECT_GT(model.Compute(high).cpu_mw, model.Compute(low).cpu_mw);
}

TEST(PowerModelTest, PowerIncreasesWithBusyCores)
{
    const PowerModel model;
    PowerInputs idle = BaseInputs();
    idle.busy_cores = 0.0;
    PowerInputs busy = BaseInputs();
    busy.busy_cores = 4.0;
    EXPECT_GT(model.Compute(busy).cpu_mw, model.Compute(idle).cpu_mw);
    // Idle cores still leak and burn a residue.
    EXPECT_GT(model.Compute(idle).cpu_mw, 0.0);
}

TEST(PowerModelTest, MemoryPowerScalesWithLevelAndTraffic)
{
    const PowerModel model(MakeNexus6PowerParams());
    PowerInputs a = BaseInputs();
    PowerInputs b = BaseInputs();
    b.bw_level = 4;
    const double per_level = MakeNexus6PowerParams().mem_mw_per_level;
    EXPECT_NEAR(model.Compute(b).mem_mw - model.Compute(a).mem_mw, 4 * per_level,
                1e-9);

    PowerInputs c = BaseInputs();
    c.mem_gbps = 1.1;
    EXPECT_GT(model.Compute(c).mem_mw, model.Compute(a).mem_mw);
}

TEST(PowerModelTest, BusyAboveCoreCountIsClamped)
{
    const PowerModel model;
    PowerInputs a = BaseInputs();
    a.busy_cores = 4.0;
    PowerInputs b = BaseInputs();
    b.busy_cores = 7.0;  // meters can transiently report more
    EXPECT_DOUBLE_EQ(model.Compute(a).cpu_mw, model.Compute(b).cpu_mw);
}

TEST(PowerModelTest, TotalPowerHelperAgrees)
{
    const PowerModel model;
    const PowerInputs inputs = BaseInputs();
    EXPECT_DOUBLE_EQ(model.TotalPower(inputs).value(),
                     model.Compute(inputs).total_mw());
}

TEST(PowerModelTest, GpuRailScalesWithClockVoltageAndBusy)
{
    const PowerModel model;
    PowerInputs idle = BaseInputs();  // GPU defaults: 200 MHz, 0.8 V, idle
    PowerInputs busy = BaseInputs();
    busy.gpu_mhz = 600.0;
    busy.gpu_voltage = Volts(1.07);
    busy.gpu_busy = 1.0;
    const double idle_gpu = model.Compute(idle).gpu_mw;
    const double busy_gpu = model.Compute(busy).gpu_mw;
    // Idle GPU: leakage only (~15 mW at 0.8 V).
    EXPECT_LT(idle_gpu, 30.0);
    // Flat-out Adreno 420: ~1.5 W.
    EXPECT_GT(busy_gpu, 1000.0);
    EXPECT_LT(busy_gpu, 2200.0);
}

TEST(PowerModelDeathTest, RejectsInvalidInputs)
{
    const PowerModel model;
    PowerInputs inputs = BaseInputs();
    inputs.online_cores = 0;
    EXPECT_DEATH(model.Compute(inputs), "no cores online");
}

}  // namespace
}  // namespace aeo
