#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/logging.h"

namespace aeo {
namespace {

TEST(CsvWriterTest, WritesHeaderAndRows)
{
    CsvWriter writer({"a", "b"});
    writer.AddRow({"1", "2"});
    writer.AddRow({"x", "y"});
    EXPECT_EQ(writer.ToString(), "a,b\n1,2\nx,y\n");
    EXPECT_EQ(writer.row_count(), 2u);
}

TEST(CsvWriterTest, EscapesSpecialCharacters)
{
    CsvWriter writer({"text"});
    writer.AddRow({"has,comma"});
    writer.AddRow({"has\"quote"});
    EXPECT_EQ(writer.ToString(), "text\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST(CsvWriterTest, NumericRowFormatting)
{
    CsvWriter writer({"x", "y"});
    writer.AddNumericRow({1.5, 2.0});
    EXPECT_EQ(writer.ToString(), "x,y\n1.5,2\n");
}

TEST(ParseCsvTest, RoundTripsSimpleTable)
{
    const auto rows = ParseCsv("a,b\n1,2\n3,4\n");
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0][0], "a");
    EXPECT_EQ(rows[2][1], "4");
}

TEST(ParseCsvTest, SkipsBlankLines)
{
    const auto rows = ParseCsv("a\n\n1\n  \n2\n");
    EXPECT_EQ(rows.size(), 3u);
}

TEST(CsvFileTest, WriteAndReadBack)
{
    const std::string path = ::testing::TempDir() + "/aeo_csv_test.csv";
    CsvWriter writer({"k", "v"});
    writer.AddRow({"alpha", "1"});
    writer.WriteFile(path);
    EXPECT_EQ(ReadFileToString(path), "k,v\nalpha,1\n");
    std::remove(path.c_str());
}

TEST(CsvFileTest, ReadMissingFileIsFatal)
{
    EXPECT_THROW(ReadFileToString("/nonexistent/aeo/file.csv"), FatalError);
}

}  // namespace
}  // namespace aeo
