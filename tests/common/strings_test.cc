#include "common/strings.h"

#include <gtest/gtest.h>

namespace aeo {
namespace {

TEST(StrFormatTest, FormatsLikePrintf)
{
    EXPECT_EQ(StrFormat("x=%d y=%.2f s=%s", 3, 2.5, "hi"), "x=3 y=2.50 s=hi");
}

TEST(StrFormatTest, NoArgumentsPassesThrough)
{
    EXPECT_EQ(StrFormat("plain"), "plain");
}

TEST(StrFormatTest, LongOutputIsNotTruncated)
{
    const std::string big(5000, 'a');
    EXPECT_EQ(StrFormat("%s", big.c_str()).size(), 5000u);
}

TEST(SplitTest, SplitsAndKeepsEmptyFields)
{
    const auto fields = Split("a,,b,", ',');
    ASSERT_EQ(fields.size(), 4u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[1], "");
    EXPECT_EQ(fields[2], "b");
    EXPECT_EQ(fields[3], "");
}

TEST(SplitTest, NoSeparatorYieldsWholeString)
{
    const auto fields = Split("abc", ',');
    ASSERT_EQ(fields.size(), 1u);
    EXPECT_EQ(fields[0], "abc");
}

TEST(TrimTest, RemovesSurroundingWhitespace)
{
    EXPECT_EQ(Trim("  hello\tworld \n"), "hello\tworld");
    EXPECT_EQ(Trim("   "), "");
    EXPECT_EQ(Trim(""), "");
}

TEST(JoinTest, JoinsWithSeparator)
{
    EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(Join({}, ","), "");
    EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StartsEndsWithTest, Basics)
{
    EXPECT_TRUE(StartsWith("scaling_governor", "scaling"));
    EXPECT_FALSE(StartsWith("gov", "governor"));
    EXPECT_TRUE(EndsWith("cur_freq", "freq"));
    EXPECT_FALSE(EndsWith("freq", "cur_freq"));
}

TEST(ParseDoubleTest, ParsesValidInput)
{
    double value = 0.0;
    EXPECT_TRUE(ParseDouble("3.25", &value));
    EXPECT_DOUBLE_EQ(value, 3.25);
    EXPECT_TRUE(ParseDouble("  -1e3 ", &value));
    EXPECT_DOUBLE_EQ(value, -1000.0);
}

TEST(ParseDoubleTest, RejectsGarbage)
{
    double value = 0.0;
    EXPECT_FALSE(ParseDouble("", &value));
    EXPECT_FALSE(ParseDouble("12x", &value));
    EXPECT_FALSE(ParseDouble("abc", &value));
}

TEST(ParseInt64Test, ParsesAndRejects)
{
    long long value = 0;
    EXPECT_TRUE(ParseInt64("2649600", &value));
    EXPECT_EQ(value, 2649600);
    EXPECT_TRUE(ParseInt64("-5", &value));
    EXPECT_EQ(value, -5);
    EXPECT_FALSE(ParseInt64("1.5", &value));
    EXPECT_FALSE(ParseInt64("", &value));
}

}  // namespace
}  // namespace aeo
