#include "common/units.h"

#include <gtest/gtest.h>

namespace aeo {
namespace {

using namespace unit_literals;

TEST(UnitsTest, ArithmeticWithinAUnit)
{
    const Milliwatts a(1500.0);
    const Milliwatts b(500.0);
    EXPECT_DOUBLE_EQ((a + b).value(), 2000.0);
    EXPECT_DOUBLE_EQ((a - b).value(), 1000.0);
    EXPECT_DOUBLE_EQ((a * 2.0).value(), 3000.0);
    EXPECT_DOUBLE_EQ((a / 3.0).value(), 500.0);
    EXPECT_DOUBLE_EQ(a / b, 3.0);
}

TEST(UnitsTest, ComparisonOperators)
{
    EXPECT_LT(Gigahertz(0.3), Gigahertz(2.65));
    EXPECT_GE(Gips(1.0), Gips(1.0));
    EXPECT_EQ(Joules(5.0), Joules(5.0));
}

TEST(UnitsTest, PowerTimesTimeIsEnergy)
{
    const Joules e = Milliwatts(2000.0) * Seconds(3.0);
    EXPECT_DOUBLE_EQ(e.value(), 6.0);  // 2 W × 3 s
    EXPECT_DOUBLE_EQ((Seconds(3.0) * Milliwatts(2000.0)).value(), 6.0);
}

TEST(UnitsTest, AveragePowerInverts)
{
    const Milliwatts p = AveragePower(Joules(6.0), Seconds(3.0));
    EXPECT_DOUBLE_EQ(p.value(), 2000.0);
}

TEST(UnitsTest, ConversionHelpers)
{
    EXPECT_DOUBLE_EQ(Gigahertz(1.4976).megahertz(), 1497.6);
    EXPECT_DOUBLE_EQ(MegabytesPerSecond(762).bytes_per_second(), 762e6);
    EXPECT_DOUBLE_EQ(Milliwatts(1500).watts(), 1.5);
    EXPECT_DOUBLE_EQ(Joules(2.0).millijoules(), 2000.0);
    EXPECT_DOUBLE_EQ(Gips(0.129).instructions_per_second(), 0.129e9);
}

TEST(UnitsTest, GigaInstructions)
{
    EXPECT_DOUBLE_EQ(GigaInstructions(Gips(2.0), Seconds(10.0)), 20.0);
}

TEST(UnitsTest, Literals)
{
    EXPECT_DOUBLE_EQ((1.5_GHz).value(), 1.5);
    EXPECT_DOUBLE_EQ((762_MBps).value(), 762.0);
    EXPECT_DOUBLE_EQ((1623.57_mW).value(), 1623.57);
    EXPECT_DOUBLE_EQ((2_s).value(), 2.0);
}

TEST(UnitsTest, KilohertzConversions)
{
    EXPECT_DOUBLE_EQ(KHz(2649600.0).megahertz(), 2649.6);
    EXPECT_DOUBLE_EQ(KHz(2649600.0).gigahertz().value(), 2.6496);
    EXPECT_DOUBLE_EQ(Gigahertz(2.6496).kilohertz(), 2649600.0);
    // Exactly the sysfs-boundary arithmetic the kernel drivers use.
    EXPECT_EQ(Gigahertz(1.4976).kilohertz(), Gigahertz(1.4976).megahertz() * 1000.0);
}

TEST(UnitsTest, MillisecondsConversions)
{
    EXPECT_DOUBLE_EQ(Millis(200.0).seconds().value(), 0.2);
    EXPECT_DOUBLE_EQ(Seconds(2.0).milliseconds(), 2000.0);
}

TEST(UnitsTest, TaggedConstructorAliases)
{
    // The spellings the aeo-lint unit-suffix rule accepts.
    EXPECT_DOUBLE_EQ(KHz(300000.0).value(), 300000.0);
    EXPECT_DOUBLE_EQ(MBps(762.0).value(), 762.0);
    EXPECT_DOUBLE_EQ(Milliwatts(14.0).value(), 14.0);
    EXPECT_DOUBLE_EQ(Millis(200.0).value(), 200.0);
}

TEST(UnitsTest, CompoundAssignment)
{
    Joules e(1.0);
    e += Joules(2.0);
    EXPECT_DOUBLE_EQ(e.value(), 3.0);
    e -= Joules(0.5);
    EXPECT_DOUBLE_EQ(e.value(), 2.5);
}

}  // namespace
}  // namespace aeo
