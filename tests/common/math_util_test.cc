#include "common/math_util.h"

#include <gtest/gtest.h>

namespace aeo {
namespace {

TEST(ClampTest, ClampsBothEnds)
{
    EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(LerpTest, Interpolates)
{
    EXPECT_DOUBLE_EQ(Lerp(10.0, 20.0, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(Lerp(10.0, 20.0, 1.0), 20.0);
    EXPECT_DOUBLE_EQ(Lerp(10.0, 20.0, 0.25), 12.5);
}

TEST(ApproxEqualTest, RelativeAndAbsolute)
{
    EXPECT_TRUE(ApproxEqual(1.0, 1.0 + 1e-12));
    EXPECT_FALSE(ApproxEqual(1.0, 1.001));
    EXPECT_TRUE(ApproxEqual(1.0, 1.001, 1e-2));
    EXPECT_TRUE(ApproxEqual(1e9, 1e9 + 1.0, 1e-8));
}

TEST(PercentChangeTest, SignConvention)
{
    EXPECT_DOUBLE_EQ(PercentChange(100.0, 125.0), 25.0);
    EXPECT_DOUBLE_EQ(PercentChange(100.0, 75.0), -25.0);
}

TEST(MeanStdDevTest, KnownValues)
{
    const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
    EXPECT_NEAR(StdDev(xs), 2.138, 1e-3);
}

TEST(MeanStdDevTest, DegenerateInputs)
{
    EXPECT_DOUBLE_EQ(Mean({}), 0.0);
    EXPECT_DOUBLE_EQ(StdDev({}), 0.0);
    EXPECT_DOUBLE_EQ(StdDev({3.0}), 0.0);
}

TEST(MinMaxTest, FindsExtremes)
{
    const std::vector<double> xs = {3.0, -1.0, 7.0, 2.0};
    EXPECT_DOUBLE_EQ(Min(xs), -1.0);
    EXPECT_DOUBLE_EQ(Max(xs), 7.0);
}

TEST(PercentileTest, InterpolatesOrderStatistics)
{
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
    EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(Percentile(xs, 100.0), 5.0);
    EXPECT_DOUBLE_EQ(Percentile(xs, 50.0), 3.0);
    EXPECT_DOUBLE_EQ(Percentile(xs, 25.0), 2.0);
    EXPECT_DOUBLE_EQ(Percentile(xs, 62.5), 3.5);
}

TEST(PercentileTest, SingleElement)
{
    EXPECT_DOUBLE_EQ(Percentile({42.0}, 99.0), 42.0);
}

}  // namespace
}  // namespace aeo
