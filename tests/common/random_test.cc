#include "common/random.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/math_util.h"

namespace aeo {
namespace {

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.NextU64(), b.NextU64());
    }
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.NextU64() == b.NextU64()) {
            ++same;
        }
    }
    EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.NextDouble();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(RngTest, UniformRespectsRange)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.Uniform(-2.0, 5.0);
        EXPECT_GE(x, -2.0);
        EXPECT_LT(x, 5.0);
    }
}

TEST(RngTest, UniformIntCoversRangeInclusively)
{
    Rng rng(11);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const int64_t x = rng.UniformInt(0, 9);
        EXPECT_GE(x, 0);
        EXPECT_LE(x, 9);
        saw_lo = saw_lo || x == 0;
        saw_hi = saw_hi || x == 9;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianHasRequestedMoments)
{
    Rng rng(13);
    std::vector<double> samples;
    samples.reserve(50000);
    for (int i = 0; i < 50000; ++i) {
        samples.push_back(rng.Gaussian(10.0, 2.0));
    }
    EXPECT_NEAR(Mean(samples), 10.0, 0.05);
    EXPECT_NEAR(StdDev(samples), 2.0, 0.05);
}

TEST(RngTest, BernoulliMatchesProbability)
{
    Rng rng(17);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        hits += rng.Bernoulli(0.3) ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ExponentialHasRequestedMean)
{
    Rng rng(19);
    std::vector<double> samples;
    for (int i = 0; i < 50000; ++i) {
        const double x = rng.Exponential(4.0);
        EXPECT_GE(x, 0.0);
        samples.push_back(x);
    }
    EXPECT_NEAR(Mean(samples), 4.0, 0.15);
}

TEST(RngTest, ForkProducesIndependentStream)
{
    Rng parent(23);
    Rng child = parent.Fork();
    // The child stream should differ from the parent's continuation.
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (parent.NextU64() == child.NextU64()) {
            ++same;
        }
    }
    EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace aeo
