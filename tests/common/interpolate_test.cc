#include "common/interpolate.h"

#include <gtest/gtest.h>

namespace aeo {
namespace {

TEST(PiecewiseLinearTest, ExactAtKnots)
{
    const PiecewiseLinear fn({762, 3051, 16250}, {1.0, 1.4, 1.6});
    EXPECT_DOUBLE_EQ(fn(762), 1.0);
    EXPECT_DOUBLE_EQ(fn(3051), 1.4);
    EXPECT_DOUBLE_EQ(fn(16250), 1.6);
}

TEST(PiecewiseLinearTest, LinearBetweenKnots)
{
    const PiecewiseLinear fn({0.0, 10.0}, {100.0, 200.0});
    EXPECT_DOUBLE_EQ(fn(2.5), 125.0);
    EXPECT_DOUBLE_EQ(fn(5.0), 150.0);
}

TEST(PiecewiseLinearTest, ClampsOutsideRange)
{
    const PiecewiseLinear fn({1.0, 2.0}, {10.0, 20.0});
    EXPECT_DOUBLE_EQ(fn(0.0), 10.0);
    EXPECT_DOUBLE_EQ(fn(5.0), 20.0);
}

TEST(PiecewiseLinearTest, SingleKnotIsConstant)
{
    const PiecewiseLinear fn({3.0}, {7.0});
    EXPECT_DOUBLE_EQ(fn(-1.0), 7.0);
    EXPECT_DOUBLE_EQ(fn(3.0), 7.0);
    EXPECT_DOUBLE_EQ(fn(100.0), 7.0);
}

TEST(PiecewiseLinearTest, PicksCorrectSegment)
{
    const PiecewiseLinear fn({0.0, 1.0, 2.0, 4.0}, {0.0, 10.0, 10.0, 0.0});
    EXPECT_DOUBLE_EQ(fn(0.5), 5.0);
    EXPECT_DOUBLE_EQ(fn(1.5), 10.0);
    EXPECT_DOUBLE_EQ(fn(3.0), 5.0);
}

}  // namespace
}  // namespace aeo
