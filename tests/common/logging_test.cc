#include "common/logging.h"

#include <gtest/gtest.h>

namespace aeo {
namespace {

TEST(LoggingTest, FatalThrowsWithFormattedMessage)
{
    try {
        Fatal("bad value %d for '%s'", 42, "knob");
        FAIL() << "Fatal did not throw";
    } catch (const FatalError& e) {
        EXPECT_STREQ(e.what(), "bad value 42 for 'knob'");
    }
}

TEST(LoggingTest, LogLevelRoundTrips)
{
    const LogLevel before = GetLogLevel();
    SetLogLevel(LogLevel::kQuiet);
    EXPECT_EQ(GetLogLevel(), LogLevel::kQuiet);
    SetLogLevel(before);
}

TEST(LoggingTest, AssertPassesOnTrueCondition)
{
    AEO_ASSERT(1 + 1 == 2, "math works");
    SUCCEED();
}

TEST(LoggingDeathTest, AssertAbortsOnFalseCondition)
{
    EXPECT_DEATH({ AEO_ASSERT(false, "expected failure %d", 7); }, "expected failure 7");
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH({ AEO_PANIC("boom %s", "now"); }, "boom now");
}

}  // namespace
}  // namespace aeo
