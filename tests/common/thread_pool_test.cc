#include "common/thread_pool.h"

#include <atomic>
#include <future>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace aeo {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i) {
        futures.push_back(pool.Submit([&counter] { ++counter; }));
    }
    for (auto& f : futures) {
        f.get();
    }
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, FuturesReturnValuesInSubmissionOrder)
{
    ThreadPool pool(3);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 50; ++i) {
        futures.push_back(pool.Submit([i] { return i * i; }));
    }
    // Whatever order the workers finish in, future k holds task k's result.
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
    }
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures)
{
    ThreadPool pool(2);
    auto ok = pool.Submit([] { return 7; });
    auto boom = pool.Submit(
        []() -> int { throw std::runtime_error("task failed"); });
    EXPECT_EQ(ok.get(), 7);
    EXPECT_THROW(boom.get(), std::runtime_error);
}

TEST(ThreadPoolTest, BoundedQueueAcceptsMoreTasksThanCapacity)
{
    // Queue capacity 2 with a single worker: Submit must block (not drop,
    // not deadlock) until the worker drains the backlog.
    ThreadPool pool(1, 2);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 20; ++i) {
        futures.push_back(pool.Submit([&counter] { ++counter; }));
    }
    for (auto& f : futures) {
        f.get();
    }
    EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, SingleWorkerPreservesExecutionOrder)
{
    // One worker pops front-to-back, so side effects happen in submission
    // order — the property the jobs=1-equivalence of the batch layer builds
    // on.
    ThreadPool pool(1);
    std::vector<int> order;
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 25; ++i) {
        futures.push_back(pool.Submit([&order, i] { order.push_back(i); }));
    }
    for (auto& f : futures) {
        f.get();
    }
    ASSERT_EQ(order.size(), 25u);
    for (int i = 0; i < 25; ++i) {
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
    }
}

}  // namespace
}  // namespace aeo
