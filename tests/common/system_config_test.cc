#include "common/system_config.h"

#include <gtest/gtest.h>

namespace aeo {
namespace {

TEST(SystemConfigTest, OrderingIsLexicographic)
{
    EXPECT_LT((SystemConfig{0, 5}), (SystemConfig{1, 0}));
    EXPECT_LT((SystemConfig{1, 0}), (SystemConfig{1, 3}));
    EXPECT_EQ((SystemConfig{2, 2}), (SystemConfig{2, 2}));
}

TEST(SystemConfigTest, ToStringUsesPaperNumbering)
{
    EXPECT_EQ((SystemConfig{4, 0}).ToString(), "(5, 1)");
    EXPECT_EQ((SystemConfig{0, 12}).ToString(), "(1, 13)");
}

TEST(SystemConfigTest, CpuOnlySentinel)
{
    const SystemConfig cpu_only{9, kBwDefaultGovernor};
    EXPECT_FALSE(cpu_only.controls_bandwidth());
    EXPECT_EQ(cpu_only.ToString(), "(10, default)");
    EXPECT_TRUE((SystemConfig{9, 0}).controls_bandwidth());
}

}  // namespace
}  // namespace aeo
