#include "common/text_table.h"

#include <gtest/gtest.h>

namespace aeo {
namespace {

TEST(TextTableTest, RendersHeaderAndRows)
{
    TextTable table({"App", "Energy"});
    table.AddRow({"VidCon", "25.3%"});
    const std::string out = table.ToString();
    EXPECT_NE(out.find("App"), std::string::npos);
    EXPECT_NE(out.find("VidCon"), std::string::npos);
    EXPECT_NE(out.find("25.3%"), std::string::npos);
}

TEST(TextTableTest, ColumnsAreAligned)
{
    TextTable table({"name", "value"});
    table.AddRow({"a", "1"});
    table.AddRow({"longer-name", "22"});
    const std::string out = table.ToString();
    // Every rendered line has the same width.
    size_t width = 0;
    size_t start = 0;
    while (start < out.size()) {
        const size_t end = out.find('\n', start);
        const size_t len = end - start;
        if (width == 0) {
            width = len;
        }
        EXPECT_EQ(len, width);
        start = end + 1;
    }
}

TEST(TextTableTest, SeparatorAddsRuler)
{
    TextTable table({"x"});
    table.AddRow({"1"});
    table.AddSeparator();
    table.AddRow({"2"});
    const std::string out = table.ToString();
    // Rulers: top, under header, separator, bottom = 4 lines starting with '+'.
    int rulers = 0;
    size_t start = 0;
    while (start < out.size()) {
        if (out[start] == '+') {
            ++rulers;
        }
        const size_t end = out.find('\n', start);
        if (end == std::string::npos) {
            break;
        }
        start = end + 1;
    }
    EXPECT_EQ(rulers, 4);
}

TEST(TextTableTest, AlignmentIsConfigurable)
{
    TextTable table({"l", "r"});
    table.SetAlignment({Align::kLeft, Align::kRight});
    table.AddRow({"ab", "1"});
    table.AddRow({"c", "22"});
    const std::string out = table.ToString();
    EXPECT_NE(out.find("| ab |"), std::string::npos);
    EXPECT_NE(out.find("|  1 |"), std::string::npos);
}

}  // namespace
}  // namespace aeo
