/**
 * @file
 * Tests for the minimal JSON library: strict parsing with positioned
 * errors, value accessors, and — the property the chaos crash bundles
 * depend on — byte-identical Dump output across a parse/serialize
 * round-trip.
 */
#include <gtest/gtest.h>

#include <string>

#include "common/json.h"

namespace aeo {
namespace {

TEST(JsonTest, ParsesScalars)
{
    EXPECT_TRUE(ParseJson("null").value.is_null());
    EXPECT_TRUE(ParseJson("true").value.AsBool());
    EXPECT_FALSE(ParseJson("false").value.AsBool());
    EXPECT_DOUBLE_EQ(ParseJson("-2.5e3").value.AsDouble(), -2500.0);
    EXPECT_EQ(ParseJson("\"hi\\nthere\"").value.AsString(), "hi\nthere");
}

TEST(JsonTest, ParsesNestedStructures)
{
    const JsonParseResult result = ParseJson(
        "{\"seed\": 42, \"actions\": [{\"cls\": \"busy\", \"p\": 0.25}],"
        " \"ok\": true}");
    ASSERT_TRUE(result.ok) << result.error;
    const JsonValue& doc = result.value;
    EXPECT_EQ(doc.At("seed").AsUint64(), 42u);
    ASSERT_EQ(doc.At("actions").items().size(), 1u);
    EXPECT_EQ(doc.At("actions").items()[0].GetString("cls", ""), "busy");
    EXPECT_DOUBLE_EQ(doc.At("actions").items()[0].GetDouble("p", 0.0), 0.25);
    EXPECT_TRUE(doc.GetBool("ok", false));
    EXPECT_FALSE(doc.Has("missing"));
    EXPECT_DOUBLE_EQ(doc.GetDouble("missing", 7.0), 7.0);
}

TEST(JsonTest, ReportsErrorsWithLineAndColumn)
{
    const JsonParseResult trailing = ParseJson("{} x");
    EXPECT_FALSE(trailing.ok);
    EXPECT_NE(trailing.error.find("line 1, column 4"), std::string::npos)
        << trailing.error;

    const JsonParseResult comma = ParseJson("[1,\n 2,]");
    EXPECT_FALSE(comma.ok);
    EXPECT_NE(comma.error.find("line 2"), std::string::npos) << comma.error;

    EXPECT_FALSE(ParseJson("").ok);
    EXPECT_FALSE(ParseJson("{\"a\" 1}").ok);
    EXPECT_FALSE(ParseJson("\"unterminated").ok);
    EXPECT_FALSE(ParseJson("nul").ok);
}

TEST(JsonTest, ObjectKeysKeepInsertionOrder)
{
    JsonValue doc = JsonValue::MakeObject();
    doc.Set("zulu", 1);
    doc.Set("alpha", 2);
    doc.Set("zulu", 3);  // Replaces in place, keeps first-set position.
    EXPECT_EQ(doc.Dump(), "{\"zulu\":3,\"alpha\":2}");
}

TEST(JsonTest, DumpRoundTripsByteIdentically)
{
    JsonValue doc = JsonValue::MakeObject();
    doc.Set("seed", static_cast<uint64_t>(1234567890123ull));
    doc.Set("rate", 0.1);
    doc.Set("neg", -42);
    JsonValue actions = JsonValue::MakeArray();
    actions.Append("a/b\"c");
    actions.Append(JsonValue());
    actions.Append(true);
    doc.Set("actions", std::move(actions));

    const std::string compact = doc.Dump();
    const JsonParseResult reparsed = ParseJson(compact);
    ASSERT_TRUE(reparsed.ok) << reparsed.error;
    EXPECT_EQ(reparsed.value.Dump(), compact);

    const std::string pretty = doc.Dump(2);
    const JsonParseResult repretty = ParseJson(pretty);
    ASSERT_TRUE(repretty.ok) << repretty.error;
    EXPECT_EQ(repretty.value.Dump(2), pretty);
    EXPECT_EQ(repretty.value.Dump(), compact);
}

TEST(JsonTest, NumbersPrintShortestRoundTrip)
{
    EXPECT_EQ(JsonValue(0.1).Dump(), "0.1");
    EXPECT_EQ(JsonValue(1.0).Dump(), "1");
    EXPECT_EQ(JsonValue(-0.25).Dump(), "-0.25");
    EXPECT_EQ(JsonValue(1e21).Dump(), "1e+21");
    // 2^53 - 1: the largest integer the library guarantees exact.
    EXPECT_EQ(JsonValue(static_cast<uint64_t>(9007199254740991ull)).Dump(),
              "9007199254740991");
}

TEST(JsonTest, UnicodeEscapesDecodeToUtf8)
{
    const JsonParseResult result = ParseJson("\"a\\u00e9b\"");
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.value.AsString(),
              "a\xc3\xa9"
              "b");
    EXPECT_FALSE(ParseJson("\"\\u00zz\"").ok);
}

}  // namespace
}  // namespace aeo
