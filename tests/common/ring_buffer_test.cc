#include "common/ring_buffer.h"

#include <gtest/gtest.h>

namespace aeo {
namespace {

TEST(RingBufferTest, FillsUpToCapacity)
{
    RingBuffer<int> ring(3);
    EXPECT_TRUE(ring.empty());
    ring.Push(1);
    ring.Push(2);
    EXPECT_EQ(ring.size(), 2u);
    EXPECT_FALSE(ring.full());
    ring.Push(3);
    EXPECT_TRUE(ring.full());
}

TEST(RingBufferTest, EvictsOldestWhenFull)
{
    RingBuffer<int> ring(3);
    for (int i = 1; i <= 5; ++i) {
        ring.Push(i);
    }
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring[0], 3);
    EXPECT_EQ(ring[1], 4);
    EXPECT_EQ(ring[2], 5);
    EXPECT_EQ(ring.back(), 5);
}

TEST(RingBufferTest, ToVectorPreservesOrder)
{
    RingBuffer<int> ring(4);
    for (int i = 0; i < 10; ++i) {
        ring.Push(i);
    }
    const std::vector<int> out = ring.ToVector();
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out.front(), 6);
    EXPECT_EQ(out.back(), 9);
}

TEST(RingBufferTest, ClearEmpties)
{
    RingBuffer<int> ring(2);
    ring.Push(1);
    ring.Push(2);
    ring.Clear();
    EXPECT_TRUE(ring.empty());
    ring.Push(9);
    EXPECT_EQ(ring.back(), 9);
    EXPECT_EQ(ring[0], 9);
}

}  // namespace
}  // namespace aeo
