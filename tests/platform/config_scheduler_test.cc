#include "platform/config_scheduler.h"

#include <cstdlib>

#include <gtest/gtest.h>

#include "core/profile_table.h"
#include "device/device.h"
#include "soc/exynos5433.h"

namespace aeo {
namespace {

using platform::ActuationPlan;
using platform::ActuationRetryPolicy;
using platform::ConfigScheduler;
using platform::PlannedDwell;

ProfileTable
TwoConfigTable()
{
    std::vector<ProfileEntry> entries = {
        {SystemConfig{2, 0}, 1.0, Milliwatts(1000.0)},
        {SystemConfig{4, 4}, 1.5, Milliwatts(1500.0)},
    };
    return ProfileTable("sched-test", std::move(entries), 0.2);
}

class ConfigSchedulerTest : public ::testing::Test {
  protected:
    ConfigSchedulerTest() : scheduler_(&device_)
    {
        device_.UseUserspaceGovernors();
    }

    Device device_;
    ConfigScheduler scheduler_;
};

TEST_F(ConfigSchedulerTest, ApplyConfigNowSetsBothLevels)
{
    scheduler_.ApplyConfigNow(SystemConfig{9, 7});
    EXPECT_EQ(device_.cluster().level(), 9);
    EXPECT_EQ(device_.bus().level(), 7);
    EXPECT_EQ(scheduler_.write_count(), 2u);
}

TEST_F(ConfigSchedulerTest, CpuOnlyConfigLeavesBusAlone)
{
    device_.bus().SetLevel(5);
    scheduler_.ApplyConfigNow(SystemConfig{9, kBwDefaultGovernor});
    EXPECT_EQ(device_.cluster().level(), 9);
    EXPECT_EQ(device_.bus().level(), 5);
    EXPECT_EQ(scheduler_.write_count(), 1u);
}

TEST_F(ConfigSchedulerTest, TwoSlotScheduleSwitchesMidCycle)
{
    const ProfileTable table = TwoConfigTable();
    ActuationPlan plan;
    plan.push_back(PlannedDwell{table.entries()[0].config, 1.2});
    plan.push_back(PlannedDwell{table.entries()[1].config, 0.8});
    scheduler_.Apply(plan);

    // First slot applied immediately.
    EXPECT_EQ(device_.cluster().level(), 2);
    // Second slot applies 1.2 s into the cycle.
    device_.sim().RunUntil(SimTime::FromSecondsF(1.19));
    EXPECT_EQ(device_.cluster().level(), 2);
    device_.sim().RunUntil(SimTime::FromSecondsF(1.21));
    EXPECT_EQ(device_.cluster().level(), 4);
    EXPECT_EQ(device_.bus().level(), 4);
}

TEST_F(ConfigSchedulerTest, DwellsQuantizeToTheGrid)
{
    // 0.73 s rounds to 0.8 s on the 200 ms grid; the cycle total holds.
    const ProfileTable table = TwoConfigTable();
    ActuationPlan plan;
    plan.push_back(PlannedDwell{table.entries()[0].config, 0.73});
    plan.push_back(PlannedDwell{table.entries()[1].config, 1.27});
    scheduler_.Apply(plan);

    device_.sim().RunUntil(SimTime::FromSecondsF(0.79));
    EXPECT_EQ(device_.cluster().level(), 2);
    device_.sim().RunUntil(SimTime::FromSecondsF(0.81));
    EXPECT_EQ(device_.cluster().level(), 4);
}

TEST_F(ConfigSchedulerTest, SubDwellSlotMergesIntoTheOther)
{
    // 60 ms rounds to zero on the 200 ms grid: the whole cycle goes to the
    // other slot and no mid-cycle switch is scheduled.
    const ProfileTable table = TwoConfigTable();
    ActuationPlan plan;
    plan.push_back(PlannedDwell{table.entries()[0].config, 0.06});
    plan.push_back(PlannedDwell{table.entries()[1].config, 1.94});
    scheduler_.Apply(plan);

    EXPECT_EQ(device_.cluster().level(), 4);  // straight to the second slot
    const uint64_t transitions = device_.cluster().transition_count();
    device_.sim().RunUntil(SimTime::FromSeconds(3));
    EXPECT_EQ(device_.cluster().transition_count(), transitions);
}

TEST_F(ConfigSchedulerTest, ReapplyCancelsPendingSwitches)
{
    const ProfileTable table = TwoConfigTable();
    ActuationPlan plan;
    plan.push_back(PlannedDwell{table.entries()[0].config, 1.0});
    plan.push_back(PlannedDwell{table.entries()[1].config, 1.0});
    scheduler_.Apply(plan);
    // A new cycle arrives before the pending switch fires.
    ActuationPlan hold;
    hold.push_back(PlannedDwell{table.entries()[0].config, 2.0});
    scheduler_.Apply(hold);
    device_.sim().RunUntil(SimTime::FromSeconds(3));
    // The cancelled switch never happened.
    EXPECT_EQ(device_.cluster().level(), 2);
}

TEST_F(ConfigSchedulerTest, SingleSlotAppliesImmediately)
{
    const ProfileTable table = TwoConfigTable();
    ActuationPlan plan;
    plan.push_back(PlannedDwell{table.entries()[1].config, 2.0});
    scheduler_.Apply(plan);
    EXPECT_EQ(device_.cluster().level(), 4);
}

// --- Hardened actuation ----------------------------------------------------

DeviceConfig
FaultyDeviceConfig(FaultRule rule)
{
    DeviceConfig config;
    config.fault_rules.push_back(std::move(rule));
    return config;
}

std::string
SetspeedPath()
{
    return std::string(kCpufreqSysfsRoot) + "/scaling_setspeed";
}

TEST(ConfigSchedulerFaultTest, TransientWriteFailureIsRetriedToSuccess)
{
    FaultRule rule;
    rule.path_prefix = SetspeedPath();
    rule.fail_probability = 1.0;
    rule.errc = FaultErrc::kBusy;
    rule.max_triggers = 2;  // fail, fail, then clean
    Device device(FaultyDeviceConfig(rule));
    device.UseUserspaceGovernors();
    ConfigScheduler scheduler(&device);

    EXPECT_TRUE(scheduler.ApplyConfigNow(SystemConfig{9, kBwDefaultGovernor}));
    EXPECT_EQ(device.cluster().level(), 9);
    EXPECT_EQ(scheduler.stats().retries, 2u);
    EXPECT_EQ(scheduler.stats().failed_ops, 0u);
    EXPECT_EQ(scheduler.write_count(), 1u);
}

TEST(ConfigSchedulerFaultTest, RetryExhaustionCountsAFailedOp)
{
    FaultRule rule;
    rule.path_prefix = SetspeedPath();
    rule.fail_probability = 1.0;
    rule.errc = FaultErrc::kIo;
    Device device(FaultyDeviceConfig(rule));
    device.UseUserspaceGovernors();
    const int start_level = device.cluster().level();
    ActuationRetryPolicy policy;  // 4 retries, 12 ms backoff, 200 ms budget
    ConfigScheduler scheduler(&device, SimTime::Millis(200), policy);

    EXPECT_FALSE(scheduler.ApplyConfigNow(SystemConfig{9, kBwDefaultGovernor}));
    EXPECT_EQ(device.cluster().level(), start_level);
    EXPECT_EQ(scheduler.stats().retries, 4u);
    EXPECT_EQ(scheduler.stats().failed_ops, 1u);
    EXPECT_EQ(scheduler.write_count(), 0u);
}

TEST(ConfigSchedulerFaultTest, BackoffStaysWithinTheDwellBudget)
{
    FaultRule rule;
    rule.path_prefix = SetspeedPath();
    rule.fail_probability = 1.0;
    rule.errc = FaultErrc::kBusy;
    Device device(FaultyDeviceConfig(rule));
    device.UseUserspaceGovernors();
    // 100 permitted retries, but doubling from 50 ms only 2 fit in 200 ms
    // (50 + 100 = 150; the next 200 ms step would overrun).
    ActuationRetryPolicy policy;
    policy.max_retries = 100;
    policy.initial_backoff = SimTime::Millis(50);
    ConfigScheduler scheduler(&device, SimTime::Millis(200), policy);

    EXPECT_FALSE(scheduler.ApplyConfigNow(SystemConfig{9, kBwDefaultGovernor}));
    EXPECT_EQ(scheduler.stats().retries, 2u);
}

TEST(ConfigSchedulerFaultTest, EinvalFallsBackToTheNearestAcceptedFrequency)
{
    FaultRule rule;
    rule.path_prefix = SetspeedPath();
    rule.fail_probability = 1.0;
    rule.errc = FaultErrc::kInval;
    rule.max_triggers = 1;  // only the preferred value is rejected
    Device device(FaultyDeviceConfig(rule));
    device.UseUserspaceGovernors();
    ConfigScheduler scheduler(&device);

    EXPECT_TRUE(scheduler.ApplyConfigNow(SystemConfig{5, kBwDefaultGovernor}));
    EXPECT_EQ(scheduler.stats().inval_fallbacks, 1u);
    // The accepted value is the nearest neighbour of the rejected target.
    const int level = device.cluster().level();
    EXPECT_NE(level, 5);
    EXPECT_EQ(std::abs(level - 5), 1);
}

TEST(ConfigSchedulerFaultTest, ConsecutiveFailedAppliesTrackTheChain)
{
    FaultRule rule;
    rule.path_prefix = SetspeedPath();
    rule.fail_probability = 1.0;
    rule.errc = FaultErrc::kIo;
    rule.duration = FaultDuration::kSticky;
    Device device(FaultyDeviceConfig(rule));
    device.UseUserspaceGovernors();
    ConfigScheduler scheduler(&device);
    const ProfileTable table = TwoConfigTable();
    ActuationPlan hold;
    hold.push_back(PlannedDwell{table.entries()[0].config, 2.0});

    EXPECT_EQ(scheduler.consecutive_failed_applies(), 0);
    scheduler.Apply(hold);
    EXPECT_EQ(scheduler.consecutive_failed_applies(), 1);
    scheduler.Apply(hold);
    EXPECT_EQ(scheduler.consecutive_failed_applies(), 2);

    // Repair the node: the chain resets once a clean cycle completes.
    device.fault_injector()->RepairAll();
    device.fault_injector()->Clear();
    scheduler.Apply(hold);
    scheduler.Apply(hold);
    EXPECT_EQ(scheduler.consecutive_failed_applies(), 0);
}

class HetConfigSchedulerTest : public ::testing::Test {
  protected:
    static DeviceConfig BigLittleDevice()
    {
        DeviceConfig config;
        config.topology = MakeExynos5433Topology();
        config.power_params = MakeExynos5433PowerParams();
        return config;
    }

    HetConfigSchedulerTest() : device_(BigLittleDevice()), scheduler_(&device_)
    {
        device_.UseUserspaceGovernors();
    }

    Device device_;
    ConfigScheduler scheduler_;
};

TEST_F(HetConfigSchedulerTest, ApplyConfigNowSetsBothClustersAndPlacement)
{
    SystemConfig config{3, 2};
    config.little_level = 4;
    config.placement = kPlacementBoth;
    EXPECT_TRUE(scheduler_.ApplyConfigNow(config));

    EXPECT_EQ(device_.cluster().level(), 3);
    EXPECT_EQ(device_.little_cluster()->level(), 4);
    EXPECT_EQ(device_.bus().level(), 2);
    EXPECT_EQ(device_.thread_placement(), ThreadPlacement::kBoth);

    const platform::DwellDelivery& delivery =
        scheduler_.cycle_deliveries().back();
    EXPECT_TRUE(delivery.little.attempted);
    EXPECT_TRUE(delivery.little.write_ok);
    EXPECT_TRUE(delivery.little.verified);
    EXPECT_EQ(delivery.little.requested_level, 4);
    EXPECT_EQ(delivery.little.delivered_level, 4);
}

TEST_F(HetConfigSchedulerTest, BigOnlyConfigLeavesTheLittleClusterAlone)
{
    device_.little_cluster()->SetLevel(2);
    scheduler_.ApplyConfigNow(SystemConfig{5, 1});

    EXPECT_EQ(device_.cluster().level(), 5);
    EXPECT_EQ(device_.little_cluster()->level(), 2);
    EXPECT_FALSE(scheduler_.cycle_deliveries().back().little.attempted);
}

TEST_F(HetConfigSchedulerTest, DefaultPlacementCodeKeepsTheCurrentPlacement)
{
    device_.SetThreadPlacement(ThreadPlacement::kBigOnly);
    SystemConfig config{3, 2};
    config.little_level = 1;
    EXPECT_EQ(config.placement, kPlacementDefault);
    scheduler_.ApplyConfigNow(config);

    EXPECT_EQ(device_.little_cluster()->level(), 1);
    EXPECT_EQ(device_.thread_placement(), ThreadPlacement::kBigOnly);
}

}  // namespace
}  // namespace aeo
