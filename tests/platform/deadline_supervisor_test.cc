/**
 * DeadlineSupervisor unit tests on a hand-cranked Clock/TickScheduler
 * double: every test delivers ticks at exactly chosen times — on the
 * deadline, a little late, epochs late, or a suspend gap late — and
 * asserts the classification, the grid resync / catch-up choice, and the
 * restart-safety generation guard.
 */
#include "platform/deadline_supervisor.h"

#include <functional>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "platform/clock.h"
#include "sim/time.h"

namespace aeo::platform {
namespace {

/** A clock the test moves by hand. */
class ManualClock final : public Clock {
  public:
    SimTime Now() override { return now_; }
    void Advance(SimTime dt) { now_ = now_ + dt; }
    void Set(SimTime t) { now_ = t; }

  private:
    SimTime now_ = SimTime::Zero();
};

/** A scheduler that parks ticks for the test to deliver explicitly. */
class ManualScheduler final : public TickScheduler {
  public:
    struct Pending {
        TickHandle handle = kInvalidTickHandle;
        SimTime when = SimTime::Zero();
        std::function<void()> fn;
        bool cancelled = false;
        bool fired = false;
    };

    TickHandle ScheduleTick(SimTime when, std::function<void()> fn) override
    {
        Pending pending;
        pending.handle = next_handle_++;
        pending.when = when;
        pending.fn = std::move(fn);
        ticks_.push_back(std::move(pending));
        return ticks_.back().handle;
    }

    void CancelTick(TickHandle handle) override
    {
        for (Pending& pending : ticks_) {
            if (pending.handle == handle) {
                pending.cancelled = true;
            }
        }
    }

    /** Live (not cancelled, not fired) pending ticks. */
    size_t live_count() const
    {
        size_t n = 0;
        for (const Pending& pending : ticks_) {
            if (!pending.cancelled && !pending.fired) {
                ++n;
            }
        }
        return n;
    }

    const Pending& last_live() const
    {
        for (auto it = ticks_.rbegin(); it != ticks_.rend(); ++it) {
            if (!it->cancelled && !it->fired) {
                return *it;
            }
        }
        static const Pending none;
        return none;
    }

    /** Delivers the oldest live tick at clock time @p at. */
    void Deliver(ManualClock* clock, SimTime at)
    {
        for (Pending& pending : ticks_) {
            if (pending.cancelled || pending.fired) {
                continue;
            }
            pending.fired = true;
            clock->Set(at);
            // Copy: the callback may reschedule and grow ticks_.
            std::function<void()> fn = pending.fn;
            fn();
            return;
        }
        FAIL() << "no live tick to deliver";
    }

  private:
    std::vector<Pending> ticks_;
    TickHandle next_handle_ = 1;
};

DeadlinePolicy
OneSecondPolicy()
{
    DeadlinePolicy policy;
    policy.period = SimTime::FromSeconds(1);
    policy.jitter_tolerance = 0.25;
    policy.suspend_gap_periods = 3.0;
    return policy;
}

struct SupervisorFixture {
    ManualClock clock;
    ManualScheduler scheduler;
    std::vector<TickInfo> ticks;
    DeadlineSupervisor supervisor{
        &clock, &scheduler,
        [this](const TickInfo& info) { ticks.push_back(info); }};
};

TEST(DeadlineSupervisorTest, OnTimeTicksStayOnTheGrid)
{
    SupervisorFixture f;
    f.supervisor.Start(OneSecondPolicy());

    for (int i = 1; i <= 3; ++i) {
        ASSERT_EQ(f.scheduler.live_count(), 1u);
        const SimTime due = f.scheduler.last_live().when;
        EXPECT_EQ(due, SimTime::FromSeconds(i));
        f.scheduler.Deliver(&f.clock, due);
    }

    ASSERT_EQ(f.ticks.size(), 3u);
    for (const TickInfo& info : f.ticks) {
        EXPECT_EQ(info.kind, TickKind::kOnTime);
        EXPECT_EQ(info.lateness, SimTime::Zero());
        EXPECT_EQ(info.epochs_skipped, 0);
        EXPECT_EQ(info.consecutive_misses, 0);
    }
    EXPECT_EQ(f.supervisor.stats().ticks, 3);
    EXPECT_EQ(f.supervisor.stats().on_time, 3);
}

TEST(DeadlineSupervisorTest, JitterWithinToleranceKeepsTheGrid)
{
    SupervisorFixture f;
    f.supervisor.Start(OneSecondPolicy());

    // 200 ms late on a 1 s period: inside the 0.25 tolerance.
    f.scheduler.Deliver(&f.clock, SimTime::Millis(1200));
    ASSERT_EQ(f.ticks.size(), 1u);
    EXPECT_EQ(f.ticks[0].kind, TickKind::kJitter);
    EXPECT_EQ(f.ticks[0].lateness, SimTime::Millis(200));
    EXPECT_EQ(f.ticks[0].epochs_skipped, 0);

    // The next deadline is the undisturbed grid point, not now + period.
    EXPECT_EQ(f.scheduler.last_live().when, SimTime::FromSeconds(2));
    EXPECT_EQ(f.supervisor.stats().jitter, 1);
    EXPECT_EQ(f.supervisor.stats().max_lateness, SimTime::Millis(200));
}

TEST(DeadlineSupervisorTest, MissedTickResyncsToFirstGridPointAfterNow)
{
    SupervisorFixture f;
    f.supervisor.Start(OneSecondPolicy());

    // 1.4 s late: one whole epoch slid past, resync to t=3s (the first
    // grid point strictly after 2.4 s).
    f.scheduler.Deliver(&f.clock, SimTime::Millis(2400));
    ASSERT_EQ(f.ticks.size(), 1u);
    EXPECT_EQ(f.ticks[0].kind, TickKind::kMissed);
    EXPECT_EQ(f.ticks[0].epochs_skipped, 1);
    EXPECT_EQ(f.ticks[0].consecutive_misses, 1);
    EXPECT_EQ(f.scheduler.last_live().when, SimTime::FromSeconds(3));
    EXPECT_EQ(f.supervisor.stats().missed, 1);
    EXPECT_EQ(f.supervisor.stats().epochs_skipped, 1);
}

TEST(DeadlineSupervisorTest, ConsecutiveMissesCountAndResetOnRecovery)
{
    SupervisorFixture f;
    f.supervisor.Start(OneSecondPolicy());

    // Two misses in a row (each 0.5 s late), then an on-time tick.
    f.scheduler.Deliver(&f.clock, SimTime::Millis(1500));
    f.scheduler.Deliver(&f.clock, SimTime::Millis(2500));
    f.scheduler.Deliver(&f.clock, f.scheduler.last_live().when);

    ASSERT_EQ(f.ticks.size(), 3u);
    EXPECT_EQ(f.ticks[0].consecutive_misses, 1);
    EXPECT_EQ(f.ticks[1].consecutive_misses, 2);
    EXPECT_EQ(f.ticks[2].kind, TickKind::kOnTime);
    EXPECT_EQ(f.ticks[2].consecutive_misses, 0);
}

TEST(DeadlineSupervisorTest, SuspendGapClassifiesAndDoesNotCountAsMiss)
{
    SupervisorFixture f;
    f.supervisor.Start(OneSecondPolicy());

    // A 30 s sleep on a 1 s period: a suspend gap, not a 30-deep miss
    // storm. The miss counter stays clear.
    f.scheduler.Deliver(&f.clock, SimTime::FromSeconds(31));
    ASSERT_EQ(f.ticks.size(), 1u);
    EXPECT_EQ(f.ticks[0].kind, TickKind::kSuspendGap);
    EXPECT_EQ(f.ticks[0].epochs_skipped, 30);
    EXPECT_EQ(f.ticks[0].consecutive_misses, 0);
    EXPECT_EQ(f.supervisor.stats().suspend_gaps, 1);
    EXPECT_EQ(f.supervisor.stats().missed, 0);

    // Resynced: next deadline is the first grid point after the gap.
    EXPECT_EQ(f.scheduler.last_live().when, SimTime::FromSeconds(32));
}

TEST(DeadlineSupervisorTest, CatchUpPolicyWorksThroughTheBacklog)
{
    SupervisorFixture f;
    DeadlinePolicy policy = OneSecondPolicy();
    policy.miss_policy = DeadlineMissPolicy::kCatchUp;
    f.supervisor.Start(policy);

    // 2.5 s late: under catch-up the grid is kept, so the next deadline
    // (t=2s) is already in the past and fires as a backlog tick.
    f.scheduler.Deliver(&f.clock, SimTime::Millis(3500));
    ASSERT_EQ(f.ticks.size(), 1u);
    EXPECT_EQ(f.ticks[0].kind, TickKind::kMissed);
    EXPECT_EQ(f.ticks[0].catch_up, false);
    EXPECT_EQ(f.scheduler.last_live().when, SimTime::FromSeconds(2));

    // Deliver the backlog tick "immediately" (clock does not move).
    f.scheduler.Deliver(&f.clock, SimTime::Millis(3500));
    ASSERT_EQ(f.ticks.size(), 2u);
    EXPECT_TRUE(f.ticks[1].catch_up);
    EXPECT_EQ(f.supervisor.stats().catch_up_ticks, 1);

    // Two more backlog ticks (t=3s, t=4s) and the grid is caught up:
    // the tick due at t=4s is not late at 3.5 s... deliver at its time.
    f.scheduler.Deliver(&f.clock, SimTime::Millis(3500));
    EXPECT_EQ(f.scheduler.last_live().when, SimTime::FromSeconds(4));
    f.scheduler.Deliver(&f.clock, SimTime::FromSeconds(4));
    ASSERT_EQ(f.ticks.size(), 4u);
    EXPECT_FALSE(f.ticks[3].catch_up);
    EXPECT_EQ(f.ticks[3].kind, TickKind::kOnTime);
}

TEST(DeadlineSupervisorTest, ReschedulesBeforeDeliveringTheCallback)
{
    ManualClock clock;
    ManualScheduler scheduler;
    size_t live_during_callback = 0;
    DeadlineSupervisor supervisor(
        &clock, &scheduler, [&](const TickInfo&) {
            live_during_callback = scheduler.live_count();
        });
    supervisor.Start(OneSecondPolicy());
    scheduler.Deliver(&clock, SimTime::FromSeconds(1));
    // The next tick must already be scheduled when the callback runs —
    // the same-timestamp event-order contract PeriodicTask established.
    EXPECT_EQ(live_during_callback, 1u);
}

TEST(DeadlineSupervisorTest, StopCancelsThePendingTick)
{
    SupervisorFixture f;
    f.supervisor.Start(OneSecondPolicy());
    EXPECT_EQ(f.scheduler.live_count(), 1u);
    f.supervisor.Stop();
    EXPECT_FALSE(f.supervisor.running());
    EXPECT_EQ(f.scheduler.live_count(), 0u);
    f.supervisor.Stop();  // idempotent
}

TEST(DeadlineSupervisorTest, RestartFromCallbackNeverDoubleFires)
{
    ManualClock clock;
    ManualScheduler scheduler;
    int fires = 0;
    DeadlineSupervisor* self = nullptr;
    DeadlineSupervisor supervisor(&clock, &scheduler, [&](const TickInfo&) {
        ++fires;
        if (fires == 1) {
            // Restart mid-delivery: the already-scheduled next tick is
            // from the old generation and must be dead.
            DeadlinePolicy policy = OneSecondPolicy();
            policy.period = SimTime::FromSeconds(2);
            self->Start(policy);
        }
    });
    self = &supervisor;
    supervisor.Start(OneSecondPolicy());

    scheduler.Deliver(&clock, SimTime::FromSeconds(1));
    EXPECT_EQ(fires, 1);
    // Exactly one live tick (the restarted schedule), due at now + 2 s.
    ASSERT_EQ(scheduler.live_count(), 1u);
    EXPECT_EQ(scheduler.last_live().when, SimTime::FromSeconds(3));

    scheduler.Deliver(&clock, SimTime::FromSeconds(3));
    EXPECT_EQ(fires, 2);
}

TEST(DeadlineSupervisorTest, StaleGenerationTickIsSilentlyDropped)
{
    ManualClock clock;
    ManualScheduler scheduler;
    int fires = 0;
    DeadlineSupervisor supervisor(&clock, &scheduler,
                                  [&](const TickInfo&) { ++fires; });
    supervisor.Start(OneSecondPolicy());

    // Capture the scheduled callback, then Stop: CancelTick marks it
    // cancelled, but even a scheduler that leaked the callback past the
    // cancel (a real race on device) is neutralized by the generation.
    supervisor.Stop();
    supervisor.Start(OneSecondPolicy());
    EXPECT_EQ(scheduler.live_count(), 1u);
    scheduler.Deliver(&clock, SimTime::FromSeconds(1));
    EXPECT_EQ(fires, 1);
    EXPECT_EQ(supervisor.stats().ticks, 1);
}

}  // namespace
}  // namespace aeo::platform
