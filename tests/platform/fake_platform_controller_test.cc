/**
 * @file
 * OnlineController driven entirely through a FakePlatform: no Device, no
 * sysfs tree, no kernel models. Proves the controller's policy logic —
 * governor pinning, overhead accounting, degraded mode, clamp learning,
 * safe mode, the watchdog/probe/re-engage path — is reachable and testable
 * through the aeo::platform seam alone.
 */
#include "core/online_controller.h"

#include <gtest/gtest.h>

#include "platform/fake_platform.h"

namespace aeo {
namespace {

using platform::DwellDelivery;
using platform::FakePlatform;

ProfileTable
ThreeRowTable()
{
    std::vector<ProfileEntry> entries = {
        {SystemConfig{0, kBwDefaultGovernor}, 1.0, Milliwatts(1000.0)},
        {SystemConfig{1, kBwDefaultGovernor}, 1.3, Milliwatts(1300.0)},
        {SystemConfig{2, kBwDefaultGovernor}, 1.6, Milliwatts(1700.0)},
    };
    return ProfileTable("fake", std::move(entries), 0.1);
}

ControllerConfig
BaseConfig()
{
    ControllerConfig config;
    config.target_gips = 0.1;
    return config;
}

/** A delivery record whose CPU write silently landed on @p delivered. */
DwellDelivery
ClampedDwell(int requested, int delivered)
{
    DwellDelivery dwell;
    dwell.requested_config = SystemConfig{requested, kBwDefaultGovernor};
    dwell.seconds = 2.0;
    dwell.cpu.attempted = true;
    dwell.cpu.write_ok = true;
    dwell.cpu.verified = true;
    dwell.cpu.requested_level = requested;
    dwell.cpu.delivered_level = delivered;
    return dwell;
}

TEST(FakePlatformControllerTest, StartConfiguresThePlatform)
{
    FakePlatform plat;
    ControllerConfig config = BaseConfig();
    config.min_dwell = SimTime::Millis(400);
    OnlineController controller(&plat, ThreeRowTable(), config);

    // Construction already pushes the actuation tuning down.
    EXPECT_EQ(plat.fake_actuator().min_dwell(), SimTime::Millis(400));
    EXPECT_TRUE(plat.fake_actuator().readback_verification());

    controller.Start();
    ASSERT_EQ(plat.governor_log().size(), 1u);
    EXPECT_EQ(plat.governor_log().front(), "pin(bw=0,gpu=0)");  // CPU-only
    EXPECT_TRUE(plat.sampling());
    EXPECT_GT(plat.overhead_mw(), 0.0);
    EXPECT_EQ(plat.fake_actuator().apply_count(), 1u);  // initial schedule

    controller.Stop();
    EXPECT_FALSE(plat.sampling());
    EXPECT_EQ(plat.overhead_mw(), 0.0);
}

TEST(FakePlatformControllerTest, PlausibleWindowsKeepTheLoopNormal)
{
    FakePlatform plat;
    OnlineController controller(&plat, ThreeRowTable(), BaseConfig());
    for (int i = 0; i < 4; ++i) {
        plat.PushPerfWindow(0.1, 100);
        plat.PushPowerMw(1200.0);
    }
    controller.Start();
    plat.sim().RunUntil(SimTime::FromSeconds(9));
    controller.Stop();

    EXPECT_EQ(controller.cycle_count(), 4u);
    EXPECT_EQ(controller.degraded_cycle_count(), 0u);
    EXPECT_EQ(controller.state(), ControllerState::kNormal);
    EXPECT_EQ(controller.machine().illegal_dispatch_count(), 0u);
    // One apply at Start plus one per cycle.
    EXPECT_EQ(plat.fake_actuator().apply_count(), 5u);
    for (const ControlCycleRecord& record : controller.history()) {
        EXPECT_FALSE(record.degraded);
        EXPECT_EQ(record.perf_samples, 100u);
        EXPECT_DOUBLE_EQ(record.measured_power_mw.value(), 1200.0);
        EXPECT_DOUBLE_EQ(record.temp_c, 25.0);  // the fake's default
        EXPECT_EQ(record.cpu_cap_level, -1);    // uncapped
    }
}

TEST(FakePlatformControllerTest, EmptyWindowsRunDegradedAndHoldTheEstimate)
{
    FakePlatform plat;
    OnlineController controller(&plat, ThreeRowTable(), BaseConfig());
    controller.Start();  // perf queue left empty: every window has 0 samples
    const double estimate = controller.base_speed_estimate();
    plat.sim().RunUntil(SimTime::FromSeconds(9));
    controller.Stop();

    ASSERT_EQ(controller.cycle_count(), 4u);
    EXPECT_EQ(controller.degraded_cycle_count(), 4u);
    EXPECT_EQ(controller.state(), ControllerState::kDegraded);
    EXPECT_DOUBLE_EQ(controller.base_speed_estimate(), estimate);
    EXPECT_FALSE(controller.fallback_engaged());
}

TEST(FakePlatformControllerTest, WatchdogTripsProbesAndReengages)
{
    FakePlatform plat;
    ControllerConfig config = BaseConfig();  // K = 3, probe every 5 cycles
    OnlineController controller(&plat, ThreeRowTable(), config);
    controller.Start();
    plat.sim().RunUntil(SimTime::FromSeconds(3));

    // Three consecutive failed applies: the next cycle trips the watchdog.
    plat.fake_actuator().ScriptConsecutiveFailures(3);
    plat.sim().RunUntil(SimTime::FromSeconds(5));
    EXPECT_TRUE(controller.fallback_engaged());
    EXPECT_EQ(controller.state(), ControllerState::kProbe);
    EXPECT_EQ(plat.governor_log().back(), "restore-stock");
    EXPECT_FALSE(plat.sampling());
    EXPECT_GE(plat.fake_actuator().cancel_count(), 1u);

    // One unhealthy probe restarts the quorum; three healthy ones re-engage.
    plat.fake_actuator().ScriptConsecutiveFailures(0);
    plat.fake_actuator().PushProbeResult(false);
    const size_t cycles_at_trip = controller.cycle_count();
    plat.sim().RunUntil(SimTime::FromSeconds(5 + 4 * 10));
    EXPECT_EQ(controller.reengage_count(), 1u);
    EXPECT_FALSE(controller.fallback_engaged());
    EXPECT_EQ(controller.state(), ControllerState::kNormal);
    EXPECT_EQ(plat.fake_actuator().probe_count(), 4u);
    EXPECT_EQ(plat.fake_actuator().reset_count(), 1u);
    // Control is genuinely back: governors re-pinned, cycles accumulating.
    EXPECT_EQ(plat.governor_log().back(), "pin(bw=0,gpu=0)");
    plat.sim().RunUntil(SimTime::FromSeconds(5 + 4 * 10 + 4));
    EXPECT_GT(controller.cycle_count(), cycles_at_trip);
}

TEST(FakePlatformControllerTest, TerminalFallbackWithoutReengagement)
{
    FakePlatform plat;
    ControllerConfig config = BaseConfig();
    config.reengage = false;
    OnlineController controller(&plat, ThreeRowTable(), config);
    controller.Start();
    plat.fake_actuator().ScriptConsecutiveFailures(3);
    plat.sim().RunUntil(SimTime::FromSeconds(5));

    EXPECT_EQ(controller.state(), ControllerState::kFallbackStock);
    plat.sim().RunUntil(SimTime::FromSeconds(60));
    EXPECT_EQ(plat.fake_actuator().probe_count(), 0u);
    EXPECT_EQ(controller.reengage_count(), 0u);
    EXPECT_EQ(controller.state(), ControllerState::kFallbackStock);
}

TEST(FakePlatformControllerTest, PersistentClampMasksTheWorkingTable)
{
    FakePlatform plat;
    ControllerConfig config = BaseConfig();
    // Target the top row (speedup 1.6): once the clamp masks it away, the
    // held requirement exceeds the masked ceiling and safe mode engages.
    config.target_gips = 0.16;
    OnlineController controller(&plat, ThreeRowTable(), config);
    // Every cycle's delivery record shows level 2 silently landing on 1 —
    // the debounce (cap_confirm_cycles = 2) wants two cycles of evidence.
    plat.fake_actuator().ScriptDeliveries({ClampedDwell(2, 1)});
    controller.Start();

    plat.sim().RunUntil(SimTime::FromSeconds(3));  // 1 cycle: evidence only
    EXPECT_EQ(controller.working_table().size(), 3u);

    plat.sim().RunUntil(SimTime::FromSeconds(5));  // 2nd cycle: cap engages
    EXPECT_EQ(controller.working_table().size(), 2u);
    EXPECT_DOUBLE_EQ(controller.working_table().max_speedup(), 1.3);

    // Safe mode: the regulator wants more than the masked ceiling offers
    // (degraded cycles hold the initial required speedup of 1.6).
    EXPECT_GT(controller.safe_mode_cycle_count(), 0u);
    EXPECT_EQ(controller.state(), ControllerState::kSafeMode);

    // Clamp evidence gone: the cap expires after cap_recheck_cycles and the
    // full table returns.
    plat.fake_actuator().ScriptDeliveries({});
    plat.sim().RunUntil(SimTime::FromSeconds(5 + 2 * 6));
    EXPECT_EQ(controller.working_table().size(), 3u);
    controller.Stop();
}

TEST(FakePlatformControllerTest, PolicyCapMasksWithoutDebounce)
{
    FakePlatform plat;
    OnlineController controller(&plat, ThreeRowTable(), BaseConfig());
    // scaling_max_freq already advertises the ceiling: no debounce needed.
    plat.ScriptCpuCapLevel(0);
    controller.Start();
    plat.sim().RunUntil(SimTime::FromSeconds(3));

    EXPECT_EQ(controller.working_table().size(), 1u);
    ASSERT_FALSE(controller.history().empty());
    EXPECT_EQ(controller.history().back().cpu_cap_level, 0);
    controller.Stop();
}

TEST(FakePlatformControllerTest, ScriptedThermalsLandInTheCycleRecords)
{
    FakePlatform plat;
    OnlineController controller(&plat, ThreeRowTable(), BaseConfig());
    plat.ScriptTempC(41.5);
    controller.Start();
    plat.sim().RunUntil(SimTime::FromSeconds(3));
    controller.Stop();

    ASSERT_FALSE(controller.history().empty());
    EXPECT_DOUBLE_EQ(controller.history().back().temp_c, 41.5);
}

TEST(FakePlatformClusterScripting, ClusterZeroAliasesTheLegacyQueues)
{
    FakePlatform plat;
    plat.PushPerfWindow(3.0, 10);
    EXPECT_DOUBLE_EQ(plat.DrainClusterWindow(0).avg_gips, 3.0);

    plat.PushClusterPowerMw(0, 800.0);
    EXPECT_DOUBLE_EQ(plat.perf().DrainAveragePowerMw(), 800.0);

    plat.ScriptCpuCapLevel(5);
    EXPECT_EQ(plat.ReadClusterCapLevel(0), 5);
    EXPECT_EQ(plat.thermals().ReadCpuCapLevel(), 5);
}

TEST(FakePlatformClusterScripting, PerClusterQueuesAreIndependent)
{
    FakePlatform plat;
    EXPECT_EQ(plat.num_cpu_clusters(), 1);
    plat.PushClusterPerfWindow(1, 1.5, 4);
    EXPECT_EQ(plat.num_cpu_clusters(), 2);

    // Cluster 0 stays empty: legacy drains see nothing.
    EXPECT_EQ(plat.perf().DrainWindow().samples, 0u);
    const platform::PerfWindow window = plat.DrainClusterWindow(1);
    EXPECT_DOUBLE_EQ(window.avg_gips, 1.5);
    EXPECT_EQ(window.samples, 4u);

    plat.PushClusterPowerMw(1, 300.0);
    EXPECT_DOUBLE_EQ(plat.perf().DrainAveragePowerMw(), 0.0);
    EXPECT_DOUBLE_EQ(plat.DrainClusterPowerMw(1), 300.0);
}

TEST(FakePlatformClusterScripting, CapEventsDrainBeforeThePersistentCap)
{
    FakePlatform plat;
    plat.ScriptClusterCapLevel(1, 9);
    plat.PushClusterCapEvent(1, 3);
    plat.PushClusterCapEvent(1, 4);

    // One-shot events first (a transient clamp), then the persistent cap.
    EXPECT_EQ(plat.ReadClusterCapLevel(1), 3);
    EXPECT_EQ(plat.ReadClusterCapLevel(1), 4);
    EXPECT_EQ(plat.ReadClusterCapLevel(1), 9);
}

TEST(FakePlatformClusterScripting, TopologyIsScriptable)
{
    FakePlatform plat;
    EXPECT_EQ(plat.max_little_level(), -1);
    plat.ScriptNumCpuClusters(2);
    plat.ScriptMaxLittleLevel(5);
    EXPECT_EQ(plat.num_cpu_clusters(), 2);
    EXPECT_EQ(plat.max_little_level(), 5);
}

}  // namespace
}  // namespace aeo
