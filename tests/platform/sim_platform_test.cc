/**
 * @file
 * SimPlatform against a real simulated Device: the sysfs plumbing the
 * controller used to own — governor switches, thermal/cap read-back, perf
 * window drains — now verified at the platform seam.
 */
#include "platform/sim_platform.h"

#include <gtest/gtest.h>

#include "apps/workloads.h"
#include "soc/exynos5433.h"

namespace aeo {
namespace {

using platform::SimPlatform;

TEST(SimPlatformTest, PinForControlSwitchesTheRequestedGovernors)
{
    Device device;
    SimPlatform plat(&device);

    plat.governors().PinForControl(/*bandwidth=*/true, /*gpu=*/false);
    EXPECT_EQ(device.cpufreq().governor_name(), "userspace");
    EXPECT_EQ(device.devfreq().governor_name(), "userspace");
    EXPECT_EQ(device.gpufreq().governor_name(), "msm-adreno-tz");

    plat.governors().RestoreStock();
    EXPECT_EQ(device.cpufreq().governor_name(), "interactive");
    EXPECT_EQ(device.devfreq().governor_name(), "cpubw_hwmon");
}

TEST(SimPlatformTest, CpuOnlyPinLeavesTheBusWithHwmon)
{
    Device device;
    SimPlatform plat(&device);
    plat.governors().PinForControl(/*bandwidth=*/false, /*gpu=*/false);
    EXPECT_EQ(device.cpufreq().governor_name(), "userspace");
    EXPECT_EQ(device.devfreq().governor_name(), "cpubw_hwmon");
}

TEST(SimPlatformTest, ThermalsReadTheZoneAndTheAdvertisedCap)
{
    Device device;
    SimPlatform plat(&device);

    // No thermal model: the read falls back to the leakage reference.
    EXPECT_DOUBLE_EQ(plat.thermals().ReadZoneTempC(), kLeakageReferenceC);

    // Uncapped: scaling_max_freq advertises the top level.
    EXPECT_EQ(plat.thermals().ReadCpuCapLevel(), plat.max_cpu_level());
    EXPECT_EQ(plat.max_cpu_level(), device.cluster().table().max_level());

    // A kernel clamp shows up through the same read.
    device.cpufreq().SetThermalCapLevel(4);
    EXPECT_EQ(plat.thermals().ReadCpuCapLevel(), 4);
}

TEST(SimPlatformTest, PerfReaderDrainsTheDeviceWindows)
{
    Device device;
    SimPlatform plat(&device);
    device.UseUserspaceGovernors();
    device.LaunchApp(MakeSpotifySpec());

    plat.perf().StartSampling();
    EXPECT_TRUE(device.perf().running());
    device.RunFor(SimTime::FromSeconds(2));

    const platform::PerfWindow window = plat.perf().DrainWindow();
    EXPECT_GT(window.samples, 0u);
    EXPECT_GT(window.avg_gips, 0.0);
    EXPECT_GE(plat.perf().DrainAveragePowerMw(), 0.0);

    plat.perf().StopSampling();
    EXPECT_FALSE(device.perf().running());
}

TEST(SimPlatformTest, ActuatorIsTheConfigScheduler)
{
    Device device;
    SimPlatform plat(&device);
    device.UseUserspaceGovernors();

    platform::ActuationPlan plan;
    plan.push_back(platform::PlannedDwell{
        SystemConfig{9, kBwDefaultGovernor}, 2.0});
    plat.actuator().Apply(plan);
    EXPECT_EQ(device.cluster().level(), 9);
    EXPECT_EQ(plat.scheduler().write_count(), 1u);
    EXPECT_TRUE(plat.actuator().ProbeActuationPath());
}

TEST(SimPlatformTest, HomogeneousPlatformReportsOneCluster)
{
    Device device;
    SimPlatform plat(&device);
    EXPECT_EQ(plat.num_cpu_clusters(), 1);
    EXPECT_EQ(plat.max_little_level(), -1);
}

TEST(SimPlatformTest, BigLittlePlatformExposesBothDomains)
{
    DeviceConfig config;
    config.topology = MakeExynos5433Topology();
    config.power_params = MakeExynos5433PowerParams();
    Device device(config);
    SimPlatform plat(&device);

    EXPECT_EQ(plat.num_cpu_clusters(), 2);
    EXPECT_EQ(plat.max_cpu_level(), device.cluster().table().max_level());
    EXPECT_EQ(plat.max_little_level(),
              device.little_cluster()->table().max_level());
}

TEST(SimPlatformTest, BigLittlePinTakesBothFrequencyDomains)
{
    DeviceConfig config;
    config.topology = MakeExynos5433Topology();
    config.power_params = MakeExynos5433PowerParams();
    Device device(config);
    SimPlatform plat(&device);

    plat.governors().PinForControl(/*bandwidth=*/true, /*gpu=*/false);
    EXPECT_EQ(device.cpufreq().governor_name(), "userspace");
    EXPECT_EQ(device.little_cpufreq()->governor_name(), "userspace");

    plat.governors().RestoreStock();
    EXPECT_EQ(device.cpufreq().governor_name(), "interactive");
    EXPECT_EQ(device.little_cpufreq()->governor_name(), "interactive");
}

}  // namespace
}  // namespace aeo
