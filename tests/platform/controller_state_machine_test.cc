/**
 * @file
 * Exhaustive coverage of the ControllerStateMachine transition table: every
 * (state, event) pair is checked against an independently-written oracle,
 * so adding a state or event without extending the table (or this oracle)
 * fails loudly. Scenario tests then walk the multi-step paths the
 * controller actually takes (watchdog → probe → re-engage, degraded
 * round-trips, terminal fallback).
 */
#include "core/controller_state_machine.h"

#include <optional>
#include <vector>

#include <gtest/gtest.h>

namespace aeo {
namespace {

using S = ControllerState;
using E = ControllerEvent;

const std::vector<S> kAllStates = {S::kNormal, S::kDegraded, S::kSafeMode,
                                   S::kProbe, S::kFallbackStock};
const std::vector<E> kAllEvents = {
    E::kCycleStart,       E::kPerfReadOk,      E::kPerfReadFailed,
    E::kActuationMismatch, E::kClampConfirmed, E::kCapExpired,
    E::kDriftCorrected,   E::kTargetUnreachable, E::kFeasibleSetEmpty,
    E::kWatchdogTrip,     E::kProbeOk,         E::kProbeFailed,
    E::kControlStopped,
};

/** Independent re-statement of the intended table: nullopt = illegal. */
std::optional<S>
Oracle(S state, E event, bool reengage)
{
    const S trip = reengage ? S::kProbe : S::kFallbackStock;
    if (event == E::kControlStopped) {
        return state;  // Stop() is legal everywhere and changes nothing.
    }
    switch (state) {
        case S::kNormal:
        case S::kDegraded:
        case S::kSafeMode:
            switch (event) {
                case E::kCycleStart:
                case E::kActuationMismatch:
                case E::kClampConfirmed:
                case E::kCapExpired:
                case E::kDriftCorrected:
                    return state;
                case E::kPerfReadOk:
                    return S::kNormal;
                case E::kPerfReadFailed:
                    return S::kDegraded;
                case E::kTargetUnreachable:
                    return S::kSafeMode;
                case E::kFeasibleSetEmpty:
                case E::kWatchdogTrip:
                    return trip;
                default:
                    return std::nullopt;  // probe outcomes
            }
        case S::kProbe:
            switch (event) {
                case E::kProbeOk:
                    return S::kNormal;  // at quorum
                case E::kProbeFailed:
                    return S::kProbe;
                default:
                    return std::nullopt;
            }
        case S::kFallbackStock:
            return std::nullopt;  // terminal
    }
    return std::nullopt;
}

TEST(ControllerStateMachineTable, EveryPairMatchesTheOracle)
{
    for (const bool reengage : {true, false}) {
        StateMachineOptions options;
        options.reengage = reengage;
        for (const S state : kAllStates) {
            for (const E event : kAllEvents) {
                SCOPED_TRACE(testing::Message()
                             << ControllerStateName(state) << " x "
                             << ControllerEventName(event)
                             << " (reengage=" << reengage << ")");
                const std::optional<S> want = Oracle(state, event, reengage);
                S next = S::kNormal;
                const bool legal =
                    ControllerStateMachine::ActionFor(state, event, options,
                                                      &next);
                ASSERT_EQ(legal, want.has_value());
                if (want.has_value()) {
                    EXPECT_EQ(next, *want);
                }
            }
        }
    }
}

TEST(ControllerStateMachineTable, DispatchAgreesWithActionForOnEveryPair)
{
    // Dispatch from every state (reached via a forced initial state) must
    // land where the table says — with the one quorum-dependent exception:
    // a single ProbeOk below the quorum keeps the machine in PROBE.
    StateMachineOptions options;  // reengage on, quorum 3
    for (const S state : kAllStates) {
        for (const E event : kAllEvents) {
            SCOPED_TRACE(testing::Message() << ControllerStateName(state)
                                            << " x "
                                            << ControllerEventName(event));
            ControllerStateMachine machine(options, state);
            const StateTransition transition = machine.Dispatch(event);
            S want = state;
            const bool legal =
                ControllerStateMachine::ActionFor(state, event, options, &want);
            EXPECT_EQ(transition.legal, legal);
            if (state == S::kProbe && event == E::kProbeOk) {
                want = S::kProbe;  // 1 of 3 healthy probes: quorum not met
            }
            EXPECT_EQ(transition.state, legal ? want : state);
            EXPECT_EQ(machine.state(), transition.state);
            EXPECT_EQ(transition.changed, transition.state != state);
            EXPECT_EQ(machine.illegal_dispatch_count(), legal ? 0u : 1u);
        }
    }
}

TEST(ControllerStateMachine, IllegalDispatchStaysPutAndCounts)
{
    ControllerStateMachine machine;
    const StateTransition transition = machine.Dispatch(E::kProbeOk);
    EXPECT_FALSE(transition.legal);
    EXPECT_FALSE(transition.changed);
    EXPECT_EQ(machine.state(), S::kNormal);
    EXPECT_EQ(machine.illegal_dispatch_count(), 1u);
}

TEST(ControllerStateMachine, WatchdogTripProbesAndReengagesAtQuorum)
{
    StateMachineOptions options;
    options.reengage_successes = 3;
    ControllerStateMachine machine(options);
    EXPECT_TRUE(machine.control_engaged());

    machine.Dispatch(E::kWatchdogTrip);
    EXPECT_EQ(machine.state(), S::kProbe);
    EXPECT_TRUE(machine.fallback_engaged());

    // Two healthy probes, a failure (counter restarts), then the quorum.
    machine.Dispatch(E::kProbeOk);
    machine.Dispatch(E::kProbeOk);
    EXPECT_EQ(machine.probe_successes(), 2);
    machine.Dispatch(E::kProbeFailed);
    EXPECT_EQ(machine.probe_successes(), 0);
    machine.Dispatch(E::kProbeOk);
    machine.Dispatch(E::kProbeOk);
    EXPECT_EQ(machine.state(), S::kProbe);
    const StateTransition last = machine.Dispatch(E::kProbeOk);
    EXPECT_TRUE(last.changed);
    EXPECT_EQ(machine.state(), S::kNormal);
    EXPECT_EQ(machine.probe_successes(), 0);
    EXPECT_TRUE(machine.control_engaged());
}

TEST(ControllerStateMachine, FallbackIsTerminalWithoutReengagement)
{
    StateMachineOptions options;
    options.reengage = false;
    ControllerStateMachine machine(options);
    machine.Dispatch(E::kWatchdogTrip);
    EXPECT_EQ(machine.state(), S::kFallbackStock);
    const StateTransition transition = machine.Dispatch(E::kProbeOk);
    EXPECT_FALSE(transition.legal);
    EXPECT_EQ(machine.state(), S::kFallbackStock);
}

TEST(ControllerStateMachine, DegradedAndSafeModeRoundTrips)
{
    ControllerStateMachine machine;
    machine.Dispatch(E::kCycleStart);
    machine.Dispatch(E::kPerfReadFailed);
    EXPECT_EQ(machine.state(), S::kDegraded);

    // A degraded cycle whose target is also unreachable ends in SAFE_MODE.
    machine.Dispatch(E::kTargetUnreachable);
    EXPECT_EQ(machine.state(), S::kSafeMode);

    // The next plausible measurement lifts both.
    machine.Dispatch(E::kCycleStart);
    machine.Dispatch(E::kPerfReadOk);
    EXPECT_EQ(machine.state(), S::kNormal);
}

TEST(ControllerStateMachine, ClampLifecycleEventsDoNotChangeTheMode)
{
    ControllerStateMachine machine;
    machine.Dispatch(E::kPerfReadFailed);
    for (const E event : {E::kActuationMismatch, E::kClampConfirmed,
                          E::kDriftCorrected, E::kCapExpired}) {
        const StateTransition transition = machine.Dispatch(event);
        EXPECT_TRUE(transition.legal);
        EXPECT_FALSE(transition.changed);
        EXPECT_EQ(machine.state(), S::kDegraded);
    }
    EXPECT_EQ(machine.illegal_dispatch_count(), 0u);
}

TEST(ControllerStateMachine, FeasibleSetEmptyTripsLikeTheWatchdog)
{
    ControllerStateMachine machine;
    machine.Dispatch(E::kFeasibleSetEmpty);
    EXPECT_EQ(machine.state(), S::kProbe);
}

}  // namespace
}  // namespace aeo
