/**
 * @file
 * Read-back verification of actuation writes: the scheduler re-reads each
 * subsystem's cur_freq after an accepted write, so a write that *fails* is
 * counted apart from a write that *lies* (reports success while the device
 * runs a lower operating point — msm_thermal's clamp or an injected
 * silent-clamp fault).
 */
#include <memory>

#include <gtest/gtest.h>

#include "platform/config_scheduler.h"
#include "device/device.h"

namespace aeo {
namespace {

using platform::ActuationStats;
using platform::ConfigScheduler;
using platform::DwellDelivery;

std::unique_ptr<Device>
MakeDevice(std::vector<FaultRule> rules = {})
{
    DeviceConfig config;
    config.seed = 99;
    config.fault_rules = std::move(rules);
    auto device = std::make_unique<Device>(config);
    device->UseUserspaceGovernors();
    return device;
}

FaultRule
SilentClampOnSetspeed(double factor)
{
    FaultRule rule;
    rule.path_prefix = std::string(kCpufreqSysfsRoot) + "/scaling_setspeed";
    rule.silent_clamp_probability = 1.0;
    rule.silent_clamp_factor = factor;
    return rule;
}

TEST(ActuationReadbackTest, CleanWritesVerifyAsDelivered)
{
    auto device = MakeDevice();
    ConfigScheduler scheduler(device.get());
    EXPECT_TRUE(scheduler.ApplyConfigNow(SystemConfig{9, 7}));

    const ActuationStats& stats = scheduler.stats();
    EXPECT_EQ(stats.writes, 2u);
    EXPECT_EQ(stats.verified_writes, 2u);
    EXPECT_EQ(stats.silent_clamps, 0u);
    EXPECT_EQ(stats.readback_failures, 0u);
    EXPECT_EQ(stats.failed_ops, 0u);

    ASSERT_EQ(scheduler.cycle_deliveries().size(), 1u);
    const DwellDelivery& dwell = scheduler.cycle_deliveries().front();
    EXPECT_TRUE(dwell.cpu.attempted);
    EXPECT_TRUE(dwell.cpu.verified);
    EXPECT_EQ(dwell.cpu.requested_level, 9);
    EXPECT_EQ(dwell.cpu.delivered_level, 9);
    EXPECT_FALSE(dwell.cpu.clamped());
    EXPECT_TRUE(dwell.bw.verified);
    EXPECT_EQ(dwell.bw.delivered_level, 7);
    EXPECT_FALSE(dwell.gpu.attempted);  // GPU left to its default governor
}

TEST(ActuationReadbackTest, SilentClampIsCountedAsClampNotFailure)
{
    auto device = MakeDevice({SilentClampOnSetspeed(0.5)});
    ConfigScheduler scheduler(device.get());
    // The clamped write still *reports* success — only read-back sees it.
    EXPECT_TRUE(scheduler.ApplyConfigNow(
        SystemConfig{17, kBwDefaultGovernor}));

    const ActuationStats& stats = scheduler.stats();
    EXPECT_EQ(stats.writes, 1u);
    EXPECT_EQ(stats.silent_clamps, 1u);
    EXPECT_EQ(stats.failed_ops, 0u);  // the two failure modes stay distinct

    const DwellDelivery& dwell = scheduler.cycle_deliveries().front();
    EXPECT_TRUE(dwell.cpu.write_ok);
    EXPECT_TRUE(dwell.cpu.verified);
    EXPECT_EQ(dwell.cpu.requested_level, 17);
    EXPECT_LT(dwell.cpu.delivered_level, 17);
    EXPECT_TRUE(dwell.cpu.clamped());
}

TEST(ActuationReadbackTest, FailedWriteIsCountedAsFailureNotClamp)
{
    FaultRule sticky;
    sticky.path_prefix = std::string(kCpufreqSysfsRoot) + "/scaling_setspeed";
    sticky.fail_probability = 1.0;
    sticky.errc = FaultErrc::kIo;
    sticky.duration = FaultDuration::kSticky;
    auto device = MakeDevice({sticky});
    ConfigScheduler scheduler(device.get());
    EXPECT_FALSE(scheduler.ApplyConfigNow(
        SystemConfig{10, kBwDefaultGovernor}));

    const ActuationStats& stats = scheduler.stats();
    EXPECT_GE(stats.failed_ops, 1u);
    EXPECT_EQ(stats.silent_clamps, 0u);
    EXPECT_EQ(stats.verified_writes, 0u);  // nothing succeeded to verify

    const DwellDelivery& dwell = scheduler.cycle_deliveries().front();
    EXPECT_TRUE(dwell.cpu.attempted);
    EXPECT_FALSE(dwell.cpu.write_ok);
    EXPECT_FALSE(dwell.cpu.verified);
    EXPECT_FALSE(dwell.cpu.clamped());
}

TEST(ActuationReadbackTest, ThermalCapShowsUpAsSilentClamp)
{
    auto device = MakeDevice();
    ConfigScheduler scheduler(device.get());
    device->cpufreq().SetThermalCapLevel(4);

    EXPECT_TRUE(scheduler.ApplyConfigNow(
        SystemConfig{10, kBwDefaultGovernor}));
    EXPECT_EQ(scheduler.stats().silent_clamps, 1u);

    const DwellDelivery& dwell = scheduler.cycle_deliveries().front();
    EXPECT_EQ(dwell.cpu.requested_level, 10);
    EXPECT_EQ(dwell.cpu.delivered_level, 4);
    EXPECT_TRUE(dwell.cpu.clamped());
}

TEST(ActuationReadbackTest, EinvalFallbackIsNotMistakenForAClamp)
{
    // One EINVAL forces the fallback walk to a neighbouring frequency; the
    // verification must compare against the *accepted* candidate, not the
    // original request, or every fallback would read as a clamp.
    FaultRule reject;
    reject.path_prefix = std::string(kCpufreqSysfsRoot) + "/scaling_setspeed";
    reject.fail_probability = 1.0;
    reject.errc = FaultErrc::kInval;
    reject.max_triggers = 1;
    auto device = MakeDevice({reject});
    ConfigScheduler scheduler(device.get());

    EXPECT_TRUE(scheduler.ApplyConfigNow(
        SystemConfig{9, kBwDefaultGovernor}));
    EXPECT_GE(scheduler.stats().inval_fallbacks, 1u);
    EXPECT_EQ(scheduler.stats().silent_clamps, 0u);

    const DwellDelivery& dwell = scheduler.cycle_deliveries().front();
    EXPECT_TRUE(dwell.cpu.verified);
    EXPECT_EQ(dwell.cpu.delivered_level, dwell.cpu.requested_level);
    EXPECT_FALSE(dwell.cpu.clamped());
}

TEST(ActuationReadbackTest, VerificationCanBeDisabled)
{
    auto device = MakeDevice({SilentClampOnSetspeed(0.5)});
    ConfigScheduler scheduler(device.get());
    scheduler.SetReadbackVerification(false);

    // Pre-hardening behaviour: the lie goes unnoticed.
    EXPECT_TRUE(scheduler.ApplyConfigNow(
        SystemConfig{17, kBwDefaultGovernor}));
    EXPECT_EQ(scheduler.stats().verified_writes, 0u);
    EXPECT_EQ(scheduler.stats().silent_clamps, 0u);
    const DwellDelivery& dwell = scheduler.cycle_deliveries().front();
    EXPECT_TRUE(dwell.cpu.write_ok);
    EXPECT_FALSE(dwell.cpu.verified);
}

}  // namespace
}  // namespace aeo
