/**
 * @file
 * Controller-side deadline policy, driven through a FakePlatform whose
 * TickScheduler delivers control ticks late on request: jitter stays a
 * healthy cycle, a suspend gap quarantines the stale window (estimate
 * held, watchdog strikes forgiven), a deadline storm degrades to the
 * stock governors, and suspend_resync=false re-opens the pre-hardening
 * behaviour the chaos monitors exist to catch.
 */
#include "core/online_controller.h"

#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "platform/clock.h"
#include "platform/fake_platform.h"

namespace aeo {
namespace {

using platform::FakePlatform;

/** Forwards to the fake's scheduler, adding one scripted delay per tick. */
class DelayingScheduler final : public platform::TickScheduler {
  public:
    explicit DelayingScheduler(platform::TickScheduler* base) : base_(base) {}

    platform::TickHandle ScheduleTick(SimTime when,
                                      std::function<void()> fn) override
    {
        SimTime delay = SimTime::Zero();
        if (!delays_.empty()) {
            delay = delays_.front();
            delays_.pop_front();
        }
        return base_->ScheduleTick(when + delay, std::move(fn));
    }

    void CancelTick(platform::TickHandle handle) override
    {
        base_->CancelTick(handle);
    }

    /** Queues the delay applied to the next scheduled tick (FIFO). */
    void PushDelay(SimTime delay) { delays_.push_back(delay); }

  private:
    platform::TickScheduler* base_;
    std::deque<SimTime> delays_;
};

/** A FakePlatform whose control ticks can be delivered late. */
class JitteryPlatform final : public platform::Platform {
  public:
    JitteryPlatform() : scheduler_(&fake_.ticks()) {}

    Simulator& sim() override { return fake_.sim(); }
    platform::Clock& clock() override { return fake_.clock(); }
    platform::TickScheduler& ticks() override { return scheduler_; }
    platform::PerfReader& perf() override { return fake_.perf(); }
    platform::Actuator& actuator() override { return fake_.actuator(); }
    platform::GovernorControl& governors() override
    {
        return fake_.governors();
    }
    platform::Thermals& thermals() override { return fake_.thermals(); }
    int max_cpu_level() const override { return fake_.max_cpu_level(); }
    void SetControllerOverheadPower(double mw) override
    {
        fake_.SetControllerOverheadPower(mw);
    }
    void Sync() override { fake_.Sync(); }

    FakePlatform& fake() { return fake_; }
    DelayingScheduler& delays() { return scheduler_; }

  private:
    FakePlatform fake_;
    DelayingScheduler scheduler_;
};

ProfileTable
ThreeRowTable()
{
    std::vector<ProfileEntry> entries = {
        {SystemConfig{0, kBwDefaultGovernor}, 1.0, Milliwatts(1000.0)},
        {SystemConfig{1, kBwDefaultGovernor}, 1.3, Milliwatts(1300.0)},
        {SystemConfig{2, kBwDefaultGovernor}, 1.6, Milliwatts(1700.0)},
    };
    return ProfileTable("fake", std::move(entries), 0.1);
}

ControllerConfig
BaseConfig()
{
    ControllerConfig config;
    config.target_gips = 0.1;
    return config;
}

TEST(ControllerDeadlineTest, JitterTickStaysAHealthyCycle)
{
    JitteryPlatform plat;
    // 400 ms late on the 2 s cycle: 0.2 periods, inside the tolerance.
    plat.delays().PushDelay(SimTime::Millis(400));
    for (int i = 0; i < 3; ++i) {
        plat.fake().PushPerfWindow(0.1, 100);
    }
    OnlineController controller(&plat, ThreeRowTable(), BaseConfig());
    controller.Start();
    plat.sim().RunUntil(SimTime::FromSeconds(7));
    controller.Stop();

    ASSERT_GE(controller.cycle_count(), 2u);
    EXPECT_EQ(controller.deadline_stats().jitter, 1);
    EXPECT_EQ(controller.deadline_miss_cycle_count(), 0u);
    EXPECT_EQ(controller.degraded_cycle_count(), 0u);
    EXPECT_EQ(controller.history()[0].tick_kind, platform::TickKind::kJitter);
    EXPECT_NEAR(controller.history()[0].tick_lateness_s, 0.4, 1e-9);
    EXPECT_FALSE(controller.history()[0].stale_guard);
    EXPECT_EQ(controller.machine().illegal_dispatch_count(), 0u);
}

TEST(ControllerDeadlineTest, SuspendGapQuarantinesTheStaleWindow)
{
    JitteryPlatform plat;
    // Tick 1 on time; tick 2 sleeps 30 s past its deadline (15 epochs).
    plat.delays().PushDelay(SimTime::Zero());
    plat.delays().PushDelay(SimTime::FromSeconds(30));
    for (int i = 0; i < 3; ++i) {
        plat.fake().PushPerfWindow(0.1, 100);
    }
    OnlineController controller(&plat, ThreeRowTable(), BaseConfig());
    controller.Start();

    // Plant watchdog strikes before the sleep: the gap must forgive them.
    plat.sim().RunUntil(SimTime::FromSeconds(3));
    ASSERT_EQ(controller.cycle_count(), 1u);
    const double estimate = controller.base_speed_estimate();
    plat.fake().fake_actuator().ScriptConsecutiveFailures(3);

    plat.sim().RunUntil(SimTime::FromSeconds(35));
    controller.Stop();

    ASSERT_EQ(controller.cycle_count(), 2u);
    const ControlCycleRecord& gap = controller.history()[1];
    EXPECT_EQ(gap.tick_kind, platform::TickKind::kSuspendGap);
    EXPECT_EQ(gap.epochs_skipped, 15);
    EXPECT_TRUE(gap.stale_guard);
    EXPECT_TRUE(gap.degraded);
    EXPECT_GT(gap.perf_samples, 0u);  // the pre-suspend window did arrive

    EXPECT_EQ(controller.suspend_gap_cycle_count(), 1u);
    EXPECT_EQ(controller.stale_guard_cycle_count(), 1u);
    // The 30 s sleep neither fires the watchdog nor poisons the estimate.
    EXPECT_FALSE(controller.fallback_engaged());
    EXPECT_DOUBLE_EQ(controller.base_speed_estimate(), estimate);
    // The pre-suspend strikes were explicitly forgiven.
    EXPECT_GE(plat.fake().fake_actuator().reset_count(), 1u);
    EXPECT_EQ(plat.fake().fake_actuator().consecutive_failed_applies(), 0);
}

TEST(ControllerDeadlineTest, DeadlineStormDegradesToStockGovernors)
{
    JitteryPlatform plat;
    // Every tick 3 s late on the 2 s cycle: 1.5 periods, a missed epoch
    // each time. The second consecutive miss reaches the storm threshold.
    for (int i = 0; i < 6; ++i) {
        plat.delays().PushDelay(SimTime::FromSeconds(3));
        plat.fake().PushPerfWindow(0.1, 100);
    }
    ControllerConfig config = BaseConfig();
    config.deadline_storm_threshold = 2;
    OnlineController controller(&plat, ThreeRowTable(), config);
    controller.Start();
    plat.sim().RunUntil(SimTime::FromSeconds(20));

    EXPECT_TRUE(controller.fallback_engaged());
    EXPECT_EQ(controller.deadline_stats().missed, 2);
    // The storm cycle aborts before measuring: only the first miss
    // completed as a control cycle, but both misses are accounted.
    EXPECT_EQ(controller.cycle_count(), 1u);
    EXPECT_EQ(controller.deadline_miss_cycle_count(), 2u);
    const std::vector<std::string>& log = plat.fake().governor_log();
    ASSERT_FALSE(log.empty());
    EXPECT_EQ(log.back(), "restore-stock");
}

TEST(ControllerDeadlineTest, SuspendResyncOffReopensTheStaleActuationBug)
{
    JitteryPlatform plat;
    plat.delays().PushDelay(SimTime::Zero());
    plat.delays().PushDelay(SimTime::FromSeconds(30));
    for (int i = 0; i < 3; ++i) {
        plat.fake().PushPerfWindow(0.1, 100);
    }
    ControllerConfig config = BaseConfig();
    config.suspend_resync = false;  // pre-hardening behaviour
    OnlineController controller(&plat, ThreeRowTable(), config);
    controller.Start();
    plat.sim().RunUntil(SimTime::FromSeconds(35));
    controller.Stop();

    ASSERT_EQ(controller.cycle_count(), 2u);
    const ControlCycleRecord& gap = controller.history()[1];
    // Classification is still recorded...
    EXPECT_EQ(gap.tick_kind, platform::TickKind::kSuspendGap);
    EXPECT_EQ(controller.suspend_gap_cycle_count(), 1u);
    // ...but the stale window steers the loop: no guard, not degraded.
    EXPECT_FALSE(gap.stale_guard);
    EXPECT_FALSE(gap.degraded);
    EXPECT_EQ(controller.stale_guard_cycle_count(), 0u);
    EXPECT_EQ(plat.fake().fake_actuator().reset_count(), 0u);
}

TEST(ControllerDeadlineTest, CatchUpBacklogTicksAreQuarantined)
{
    JitteryPlatform plat;
    // One tick 5 s late (2.5 periods — missed, short of the 3-period
    // suspend threshold) under kCatchUp: the grid is kept and the backlog
    // ticks fire immediately, each with the stale-data guard engaged.
    plat.delays().PushDelay(SimTime::FromSeconds(5));
    for (int i = 0; i < 6; ++i) {
        plat.fake().PushPerfWindow(0.1, 100);
    }
    ControllerConfig config = BaseConfig();
    config.deadline_miss_policy = platform::DeadlineMissPolicy::kCatchUp;
    config.deadline_storm_threshold = 10;  // keep the storm out of the way
    OnlineController controller(&plat, ThreeRowTable(), config);
    controller.Start();
    plat.sim().RunUntil(SimTime::FromSeconds(12));
    controller.Stop();

    EXPECT_GT(controller.deadline_stats().catch_up_ticks, 0);
    EXPECT_EQ(controller.stale_guard_cycle_count(),
              static_cast<uint64_t>(controller.deadline_stats().catch_up_ticks));
    EXPECT_FALSE(controller.fallback_engaged());
}

}  // namespace
}  // namespace aeo
