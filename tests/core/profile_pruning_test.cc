/**
 * @file
 * Tests of the §V-A application-specific table pruning: rows whose speedup
 * advantage over a cheaper row is within measurement noise are dropped.
 */
#include <gtest/gtest.h>

#include "core/profile_table.h"

namespace aeo {
namespace {

ProfileTable
Table(std::vector<ProfileEntry> entries)
{
    return ProfileTable("prune-test", std::move(entries), 0.1);
}

TEST(ProfilePruningTest, DropsFlatExpensiveTail)
{
    // MX-Player-like: performance varies <0.5 % beyond the first level but
    // power keeps climbing — everything above the cheapest row goes.
    const ProfileTable table = Table({
        {SystemConfig{4, 0}, 1.000, Milliwatts(2000.0)},
        {SystemConfig{6, 0}, 1.002, Milliwatts(2200.0)},
        {SystemConfig{8, 0}, 1.003, Milliwatts(2500.0)},
        {SystemConfig{17, 0}, 1.004, Milliwatts(3700.0)},
    });
    const ProfileTable pruned = table.PruneEpsilonDominated(0.01);
    ASSERT_EQ(pruned.size(), 1u);
    EXPECT_EQ(pruned.entries()[0].config, (SystemConfig{4, 0}));
}

TEST(ProfilePruningTest, KeepsGenuineSpeedupLadder)
{
    // AngryBirds-like: real speedup per step — nothing is dropped.
    const ProfileTable table = Table({
        {SystemConfig{0, 0}, 1.00, Milliwatts(1600.0)},
        {SystemConfig{2, 0}, 1.45, Milliwatts(1900.0)},
        {SystemConfig{4, 0}, 1.84, Milliwatts(2200.0)},
    });
    const ProfileTable pruned = table.PruneEpsilonDominated(0.01);
    EXPECT_EQ(pruned.size(), 3u);
}

TEST(ProfilePruningTest, DenseLadderIsNotChainErased)
{
    // 13 bandwidth columns with tiny per-step gains but a real cumulative
    // gain: pruning must thin the ladder, not erase the cumulative speedup.
    std::vector<ProfileEntry> entries;
    for (int bw = 0; bw < 13; ++bw) {
        entries.push_back(ProfileEntry{SystemConfig{0, bw}, 1.0 + 0.01 * bw,
                                       Milliwatts(1000.0 + 30.0 * bw)});
    }
    const ProfileTable pruned = Table(entries).PruneEpsilonDominated(0.02);
    // Cumulative +12 % speedup survives...
    EXPECT_NEAR(pruned.max_speedup(), 1.12, 1e-9);
    // ...but the ladder is thinned (steps of >2 % of max).
    EXPECT_LT(pruned.size(), 13u);
    EXPECT_GE(pruned.size(), 4u);
}

TEST(ProfilePruningTest, ExpensiveSlowRowIsDominated)
{
    const ProfileTable table = Table({
        {SystemConfig{0, 0}, 1.00, Milliwatts(1000.0)},
        {SystemConfig{0, 12}, 1.001, Milliwatts(1360.0)},  // +0.1 % for +360 mW
        {SystemConfig{2, 0}, 1.40, Milliwatts(1300.0)},
    });
    const ProfileTable pruned = table.PruneEpsilonDominated(0.01);
    ASSERT_EQ(pruned.size(), 2u);
    EXPECT_EQ(pruned.entries()[0].config, (SystemConfig{0, 0}));
    EXPECT_EQ(pruned.entries()[1].config, (SystemConfig{2, 0}));
}

TEST(ProfilePruningTest, ZeroEpsilonKeepsParetoRows)
{
    const ProfileTable table = Table({
        {SystemConfig{0, 0}, 1.00, Milliwatts(1000.0)},
        {SystemConfig{1, 0}, 1.10, Milliwatts(1100.0)},
        {SystemConfig{2, 0}, 1.05, Milliwatts(1200.0)},  // strictly dominated by row 1
    });
    const ProfileTable pruned = table.PruneEpsilonDominated(0.0);
    EXPECT_EQ(pruned.size(), 2u);
    for (const ProfileEntry& entry : pruned.entries()) {
        EXPECT_NE(entry.config, (SystemConfig{2, 0}));
    }
}

TEST(ProfilePruningTest, BaseSpeedSurvivesPruning)
{
    const ProfileTable table = Table({
        {SystemConfig{0, 0}, 1.00, Milliwatts(1000.0)},
        {SystemConfig{1, 0}, 1.50, Milliwatts(1100.0)},
    });
    const ProfileTable pruned = table.PruneEpsilonDominated(0.01);
    EXPECT_DOUBLE_EQ(pruned.base_speed_gips(), table.base_speed_gips());
    EXPECT_EQ(pruned.app_name(), table.app_name());
}

TEST(ProfilePruningTest, SteepTailIsCut)
{
    // The marginal mW/speedup of the last row is ~7x the table average —
    // the §V-A "excluded because it only destabilizes the controller" case.
    const ProfileTable table = Table({
        {SystemConfig{0, 0}, 1.0, Milliwatts(1000.0)},
        {SystemConfig{2, 0}, 1.5, Milliwatts(1300.0)},
        {SystemConfig{4, 0}, 2.0, Milliwatts(1600.0)},
        {SystemConfig{8, 0}, 2.1, Milliwatts(2600.0)},
    });
    const ProfileTable pruned = table.PruneSteepTail(3.0, 0.0);
    ASSERT_EQ(pruned.size(), 3u);
    EXPECT_DOUBLE_EQ(pruned.max_speedup(), 2.0);
}

TEST(ProfilePruningTest, SteepTailCutIsAPrefixKeep)
{
    // Everything at and past the first steep edge goes, even if a later
    // edge is gentle again: the frontier above the knee is untrustworthy
    // as a whole, not row-by-row.
    const ProfileTable table = Table({
        {SystemConfig{0, 0}, 1.0, Milliwatts(1000.0)},
        {SystemConfig{2, 0}, 1.5, Milliwatts(1300.0)},
        {SystemConfig{4, 0}, 1.6, Milliwatts(2300.0)},
        {SystemConfig{8, 0}, 2.2, Milliwatts(2400.0)},
    });
    const ProfileTable pruned = table.PruneSteepTail(3.0, 0.0);
    ASSERT_EQ(pruned.size(), 2u);
    EXPECT_DOUBLE_EQ(pruned.max_speedup(), 1.5);
}

TEST(ProfilePruningTest, SteepTailNeverCutsProtectedRegion)
{
    // Same steep tail, but the target QoS needs speedup 2.05: the cut must
    // not remove the only rows that can meet the target.
    const ProfileTable table = Table({
        {SystemConfig{0, 0}, 1.0, Milliwatts(1000.0)},
        {SystemConfig{2, 0}, 1.5, Milliwatts(1300.0)},
        {SystemConfig{4, 0}, 2.0, Milliwatts(1600.0)},
        {SystemConfig{8, 0}, 2.1, Milliwatts(2600.0)},
    });
    const ProfileTable pruned = table.PruneSteepTail(3.0, 2.05);
    EXPECT_EQ(pruned.size(), 4u);
}

TEST(ProfilePruningTest, SteepTailKeepsAGentleLadderWhole)
{
    // Constant marginal slope equals the average slope — nothing is "the
    // tail", nothing is cut.
    const ProfileTable table = Table({
        {SystemConfig{0, 0}, 1.0, Milliwatts(1000.0)},
        {SystemConfig{2, 0}, 1.4, Milliwatts(1400.0)},
        {SystemConfig{4, 0}, 1.8, Milliwatts(1800.0)},
        {SystemConfig{8, 0}, 2.2, Milliwatts(2200.0)},
    });
    EXPECT_EQ(table.PruneSteepTail(3.0, 0.0).size(), 4u);
}

TEST(ProfilePruningTest, SteepTailLeavesTinyTablesAlone)
{
    const ProfileTable table = Table({
        {SystemConfig{0, 0}, 1.0, Milliwatts(1000.0)},
        {SystemConfig{8, 0}, 1.1, Milliwatts(9000.0)},
    });
    EXPECT_EQ(table.PruneSteepTail(3.0, 0.0).size(), 2u);
}

TEST(ProfilePruningTest, SteepTailPreservesTableMetadata)
{
    const ProfileTable table = Table({
        {SystemConfig{0, 0}, 1.0, Milliwatts(1000.0)},
        {SystemConfig{2, 0}, 1.5, Milliwatts(1300.0)},
        {SystemConfig{4, 0}, 2.0, Milliwatts(1600.0)},
        {SystemConfig{8, 0}, 2.1, Milliwatts(2600.0)},
    });
    const ProfileTable pruned = table.PruneSteepTail(3.0, 0.0);
    EXPECT_DOUBLE_EQ(pruned.base_speed_gips(), table.base_speed_gips());
    EXPECT_EQ(pruned.app_name(), table.app_name());
}

}  // namespace
}  // namespace aeo
