#include "core/profile_table.h"

#include <gtest/gtest.h>

#include "soc/nexus6.h"

namespace aeo {
namespace {

std::vector<ProfileMeasurement>
SampleMeasurements()
{
    return {
        {SystemConfig{0, 0}, 0.129, Milliwatts(1623.57)},
        {SystemConfig{0, 12}, 0.131, Milliwatts(1980.0)},
        {SystemConfig{4, 0}, 0.237, Milliwatts(2219.22)},
        {SystemConfig{4, 12}, 0.240, Milliwatts(2590.0)},
    };
}

TEST(ProfileTableTest, NormalizesToSlowestMeasurement)
{
    const ProfileTable table =
        ProfileTable::FromMeasurements("AngryBirds", SampleMeasurements());
    EXPECT_DOUBLE_EQ(table.base_speed_gips(), 0.129);
    EXPECT_DOUBLE_EQ(table.min_speedup(), 1.0);
    EXPECT_NEAR(table.max_speedup(), 0.240 / 0.129, 1e-12);
}

TEST(ProfileTableTest, EntriesSortedBySpeedup)
{
    const ProfileTable table =
        ProfileTable::FromMeasurements("app", SampleMeasurements());
    for (size_t i = 1; i < table.size(); ++i) {
        EXPECT_LE(table.entries()[i - 1].speedup, table.entries()[i].speedup);
    }
}

TEST(ProfileTableTest, SpeedupGipsConversions)
{
    const ProfileTable table =
        ProfileTable::FromMeasurements("app", SampleMeasurements());
    EXPECT_NEAR(table.SpeedupForGips(0.258), 2.0, 1e-12);
    EXPECT_NEAR(table.GipsForSpeedup(2.0), 0.258, 1e-12);
}

TEST(ProfileTableTest, InterpolationFillsBandwidthColumns)
{
    const BandwidthTable bw = MakeNexus6BandwidthTable();
    const ProfileTable sparse =
        ProfileTable::FromMeasurements("app", SampleMeasurements());
    const ProfileTable dense = sparse.InterpolateBandwidths(bw);
    // Two CPU levels × 13 bandwidth levels.
    EXPECT_EQ(dense.size(), 26u);
    // Interpolated values are between the endpoints and monotone in bw.
    double prev_power = 0.0;
    for (const ProfileEntry& entry : dense.entries()) {
        if (entry.config.cpu_level == 0) {
            EXPECT_GE(entry.power_mw.value(), 1623.57 - 1e-9);
            EXPECT_LE(entry.power_mw.value(), 1980.0 + 1e-9);
        }
    }
    for (int level = 0; level < 13; ++level) {
        for (const ProfileEntry& entry : dense.entries()) {
            if (entry.config.cpu_level == 0 && entry.config.bw_level == level) {
                EXPECT_GE(entry.power_mw.value(), prev_power);
                prev_power = entry.power_mw.value();
            }
        }
    }
}

TEST(ProfileTableTest, InterpolationIsExactAtMeasuredPoints)
{
    const BandwidthTable bw = MakeNexus6BandwidthTable();
    const ProfileTable dense =
        ProfileTable::FromMeasurements("app", SampleMeasurements())
            .InterpolateBandwidths(bw);
    for (const ProfileEntry& entry : dense.entries()) {
        if (entry.config == SystemConfig{0, 0}) {
            EXPECT_NEAR(entry.power_mw.value(), 1623.57, 1e-9);
            EXPECT_NEAR(entry.speedup, 1.0, 1e-12);
        }
        if (entry.config == SystemConfig{4, 12}) {
            EXPECT_NEAR(entry.power_mw.value(), 2590.0, 1e-9);
        }
    }
}

TEST(ProfileTableTest, CsvRoundTrip)
{
    const ProfileTable table =
        ProfileTable::FromMeasurements("app", SampleMeasurements());
    const ProfileTable parsed =
        ProfileTable::FromCsv("app", table.ToCsv(), table.base_speed_gips());
    ASSERT_EQ(parsed.size(), table.size());
    for (size_t i = 0; i < table.size(); ++i) {
        EXPECT_EQ(parsed.entries()[i].config, table.entries()[i].config);
        EXPECT_NEAR(parsed.entries()[i].speedup, table.entries()[i].speedup, 1e-6);
        EXPECT_NEAR(parsed.entries()[i].power_mw.value(), table.entries()[i].power_mw.value(), 1e-3);
    }
}

TEST(ProfileTableTest, ToStringRendersRows)
{
    const ProfileTable table =
        ProfileTable::FromMeasurements("AngryBirds", SampleMeasurements());
    const std::string out = table.ToString();
    EXPECT_NE(out.find("AngryBirds"), std::string::npos);
    EXPECT_NE(out.find("(1, 1)"), std::string::npos);
    EXPECT_NE(out.find("1623.57"), std::string::npos);
}

TEST(ProfileTableDeathTest, CpuOnlyTableCannotInterpolate)
{
    const std::vector<ProfileMeasurement> measurements = {
        {SystemConfig{0, kBwDefaultGovernor}, 0.1, Milliwatts(1500.0)},
        {SystemConfig{2, kBwDefaultGovernor}, 0.2, Milliwatts(1800.0)},
    };
    const ProfileTable table = ProfileTable::FromMeasurements("app", measurements);
    EXPECT_DEATH(table.InterpolateBandwidths(MakeNexus6BandwidthTable()),
                 "CPU-only");
}

}  // namespace
}  // namespace aeo
