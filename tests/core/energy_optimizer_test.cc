#include "core/energy_optimizer.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace aeo {
namespace {

ProfileTable
SimpleTable()
{
    std::vector<ProfileEntry> entries = {
        {SystemConfig{0, 0}, 1.0, Milliwatts(100.0)},  {SystemConfig{1, 0}, 1.5, Milliwatts(160.0)},
        {SystemConfig{2, 0}, 2.0, Milliwatts(250.0)},  {SystemConfig{3, 0}, 2.5, Milliwatts(380.0)},
        {SystemConfig{4, 0}, 3.0, Milliwatts(600.0)},
    };
    return ProfileTable("test", std::move(entries), 0.2);
}

TEST(EnergyOptimizerTest, ExactSpeedupUsesSingleConfig)
{
    const ProfileTable table = SimpleTable();
    const EnergyOptimizer optimizer(&table);
    const ConfigSchedule schedule = optimizer.Optimize(2.0, 2.0);
    ASSERT_EQ(schedule.slots.size(), 1u);
    EXPECT_EQ(table.entries()[schedule.slots[0].entry_index].speedup, 2.0);
    EXPECT_NEAR(schedule.slots[0].seconds, 2.0, 1e-12);
    EXPECT_NEAR(schedule.expected_speedup, 2.0, 1e-12);
}

TEST(EnergyOptimizerTest, IntermediateSpeedupBlendsNeighbors)
{
    const ProfileTable table = SimpleTable();
    const EnergyOptimizer optimizer(&table);
    const ConfigSchedule schedule = optimizer.Optimize(1.75, 2.0);
    ASSERT_EQ(schedule.slots.size(), 2u);
    const double s_low = table.entries()[schedule.slots[0].entry_index].speedup;
    const double s_high = table.entries()[schedule.slots[1].entry_index].speedup;
    EXPECT_LE(s_low, 1.75);
    EXPECT_GE(s_high, 1.75);
    EXPECT_NEAR(schedule.slots[0].seconds + schedule.slots[1].seconds, 2.0, 1e-12);
    EXPECT_NEAR(schedule.expected_speedup, 1.75, 1e-9);
}

TEST(EnergyOptimizerTest, SpeedupBelowRangeClampsToCheapestConfig)
{
    const ProfileTable table = SimpleTable();
    const EnergyOptimizer optimizer(&table);
    const ConfigSchedule schedule = optimizer.Optimize(0.2, 2.0);
    ASSERT_EQ(schedule.slots.size(), 1u);
    EXPECT_NEAR(schedule.expected_power_mw.value(), 100.0, 1e-9);
}

TEST(EnergyOptimizerTest, SpeedupAboveRangeClampsToFastestConfig)
{
    const ProfileTable table = SimpleTable();
    const EnergyOptimizer optimizer(&table);
    const ConfigSchedule schedule = optimizer.Optimize(99.0, 2.0);
    ASSERT_EQ(schedule.slots.size(), 1u);
    EXPECT_NEAR(schedule.expected_power_mw.value(), 600.0, 1e-9);
    EXPECT_NEAR(schedule.expected_speedup, 3.0, 1e-12);
}

TEST(EnergyOptimizerTest, SkipsNonHullConfigurations)
{
    // Entry at speedup 1.5 is overpriced: blending 1.0 and 2.0 is cheaper.
    std::vector<ProfileEntry> entries = {
        {SystemConfig{0, 0}, 1.0, Milliwatts(100.0)},
        {SystemConfig{1, 0}, 1.5, Milliwatts(400.0)},  // above the segment (100+250)/2=175
        {SystemConfig{2, 0}, 2.0, Milliwatts(250.0)},
    };
    const ProfileTable table("test", std::move(entries), 0.2);
    const EnergyOptimizer optimizer(&table);
    const ConfigSchedule schedule = optimizer.Optimize(1.5, 2.0);
    ASSERT_EQ(schedule.slots.size(), 2u);
    EXPECT_NEAR(schedule.expected_power_mw.value(), 175.0, 1e-9);
}

TEST(EnergyOptimizerTest, DescendingHullStillMeetsEqualityConstraint)
{
    // The slowest config is also the most power hungry (possible in
    // CPU-only tables where the default bandwidth governor misbehaves).
    // The paper's LP holds performance *at* the target (equality (5)), so
    // the required speedup is met exactly even though exceeding it would
    // be cheaper.
    std::vector<ProfileEntry> entries = {
        {SystemConfig{0, 0}, 1.0, Milliwatts(500.0)},
        {SystemConfig{1, 0}, 1.5, Milliwatts(200.0)},
        {SystemConfig{2, 0}, 2.0, Milliwatts(300.0)},
    };
    const ProfileTable table("test", std::move(entries), 0.2);
    const EnergyOptimizer optimizer(&table);
    const ConfigSchedule exact = optimizer.Optimize(1.0, 2.0);
    ASSERT_EQ(exact.slots.size(), 1u);
    EXPECT_NEAR(exact.expected_power_mw.value(), 500.0, 1e-9);
    EXPECT_NEAR(exact.expected_speedup, 1.0, 1e-12);
    // A blend on the descending segment meets 1.25 exactly with a mix.
    const ConfigSchedule blend = optimizer.Optimize(1.25, 2.0);
    ASSERT_EQ(blend.slots.size(), 2u);
    EXPECT_NEAR(blend.expected_speedup, 1.25, 1e-9);
    EXPECT_NEAR(blend.expected_power_mw.value(), 350.0, 1e-9);
}

/** Property test: all three backends agree on the optimal power across
 * random tables and required speedups. */
TEST(EnergyOptimizerTest, BackendsAgreeOnRandomTables)
{
    Rng rng(2017);
    for (int trial = 0; trial < 40; ++trial) {
        const int n = static_cast<int>(rng.UniformInt(2, 25));
        std::vector<ProfileEntry> entries;
        double speedup = 1.0;
        for (int i = 0; i < n; ++i) {
            ProfileEntry entry;
            entry.config = SystemConfig{i, 0};
            entry.speedup = speedup;
            entry.power_mw = Milliwatts(rng.Uniform(100.0, 3000.0));
            entries.push_back(entry);
            speedup += rng.Uniform(0.01, 0.5);
        }
        const ProfileTable table("random", std::move(entries), 0.3);
        const EnergyOptimizer hull(&table, OptimizerBackend::kConvexHull);
        const EnergyOptimizer pairs(&table, OptimizerBackend::kPairSearch);
        const EnergyOptimizer simplex(&table, OptimizerBackend::kSimplex);

        for (int k = 0; k < 10; ++k) {
            const double s =
                rng.Uniform(table.min_speedup() * 0.9, table.max_speedup() * 1.1);
            const ConfigSchedule a = hull.Optimize(s, 2.0);
            const ConfigSchedule b = pairs.Optimize(s, 2.0);
            const ConfigSchedule c = simplex.Optimize(s, 2.0);
            EXPECT_NEAR(a.expected_power_mw.value(), b.expected_power_mw.value(), 1e-6)
                << "trial " << trial << " speedup " << s;
            EXPECT_NEAR(a.expected_power_mw.value(), c.expected_power_mw.value(), 1e-5)
                << "trial " << trial << " speedup " << s;
            // All backends meet the (clamped) performance constraint.
            const double clamped =
                std::min(std::max(s, table.min_speedup()), table.max_speedup());
            EXPECT_NEAR(a.expected_speedup, clamped, 1e-6);
            EXPECT_NEAR(b.expected_speedup, clamped, 1e-6);
            EXPECT_NEAR(c.expected_speedup, clamped, 1e-6);
            // Paper property: at most two non-zero dwells.
            EXPECT_LE(a.slots.size(), 2u);
            EXPECT_LE(b.slots.size(), 2u);
            EXPECT_LE(c.slots.size(), 2u);
        }
    }
}

TEST(EnergyOptimizerTest, HullIndicesAreConvexAndIncreasing)
{
    const ProfileTable table = SimpleTable();
    const EnergyOptimizer optimizer(&table);
    const auto& hull = optimizer.hull_indices();
    ASSERT_GE(hull.size(), 2u);
    for (size_t i = 1; i < hull.size(); ++i) {
        EXPECT_LT(table.entries()[hull[i - 1]].speedup,
                  table.entries()[hull[i]].speedup);
        EXPECT_LT(table.entries()[hull[i - 1]].power_mw.value(),
                  table.entries()[hull[i]].power_mw.value());
    }
}

}  // namespace
}  // namespace aeo
