#include "core/config_scheduler.h"

#include <gtest/gtest.h>

#include "device/device.h"

namespace aeo {
namespace {

ProfileTable
TwoConfigTable()
{
    std::vector<ProfileEntry> entries = {
        {SystemConfig{2, 0}, 1.0, 1000.0},
        {SystemConfig{4, 4}, 1.5, 1500.0},
    };
    return ProfileTable("sched-test", std::move(entries), 0.2);
}

class ConfigSchedulerTest : public ::testing::Test {
  protected:
    ConfigSchedulerTest() : scheduler_(&device_)
    {
        device_.UseUserspaceGovernors();
    }

    Device device_;
    ConfigScheduler scheduler_;
};

TEST_F(ConfigSchedulerTest, ApplyConfigNowSetsBothLevels)
{
    scheduler_.ApplyConfigNow(SystemConfig{9, 7});
    EXPECT_EQ(device_.cluster().level(), 9);
    EXPECT_EQ(device_.bus().level(), 7);
    EXPECT_EQ(scheduler_.write_count(), 2u);
}

TEST_F(ConfigSchedulerTest, CpuOnlyConfigLeavesBusAlone)
{
    device_.bus().SetLevel(5);
    scheduler_.ApplyConfigNow(SystemConfig{9, kBwDefaultGovernor});
    EXPECT_EQ(device_.cluster().level(), 9);
    EXPECT_EQ(device_.bus().level(), 5);
    EXPECT_EQ(scheduler_.write_count(), 1u);
}

TEST_F(ConfigSchedulerTest, TwoSlotScheduleSwitchesMidCycle)
{
    const ProfileTable table = TwoConfigTable();
    ConfigSchedule schedule;
    schedule.slots = {ScheduleSlot{0, 1.2}, ScheduleSlot{1, 0.8}};
    scheduler_.Apply(schedule, table);

    // First slot applied immediately.
    EXPECT_EQ(device_.cluster().level(), 2);
    // Second slot applies 1.2 s into the cycle.
    device_.sim().RunUntil(SimTime::FromSecondsF(1.19));
    EXPECT_EQ(device_.cluster().level(), 2);
    device_.sim().RunUntil(SimTime::FromSecondsF(1.21));
    EXPECT_EQ(device_.cluster().level(), 4);
    EXPECT_EQ(device_.bus().level(), 4);
}

TEST_F(ConfigSchedulerTest, DwellsQuantizeToTheGrid)
{
    // 0.73 s rounds to 0.8 s on the 200 ms grid; the cycle total holds.
    const ProfileTable table = TwoConfigTable();
    ConfigSchedule schedule;
    schedule.slots = {ScheduleSlot{0, 0.73}, ScheduleSlot{1, 1.27}};
    scheduler_.Apply(schedule, table);

    device_.sim().RunUntil(SimTime::FromSecondsF(0.79));
    EXPECT_EQ(device_.cluster().level(), 2);
    device_.sim().RunUntil(SimTime::FromSecondsF(0.81));
    EXPECT_EQ(device_.cluster().level(), 4);
}

TEST_F(ConfigSchedulerTest, SubDwellSlotMergesIntoTheOther)
{
    // 60 ms rounds to zero on the 200 ms grid: the whole cycle goes to the
    // other slot and no mid-cycle switch is scheduled.
    const ProfileTable table = TwoConfigTable();
    ConfigSchedule schedule;
    schedule.slots = {ScheduleSlot{0, 0.06}, ScheduleSlot{1, 1.94}};
    scheduler_.Apply(schedule, table);

    EXPECT_EQ(device_.cluster().level(), 4);  // straight to the second slot
    const uint64_t transitions = device_.cluster().transition_count();
    device_.sim().RunUntil(SimTime::FromSeconds(3));
    EXPECT_EQ(device_.cluster().transition_count(), transitions);
}

TEST_F(ConfigSchedulerTest, ReapplyCancelsPendingSwitches)
{
    const ProfileTable table = TwoConfigTable();
    ConfigSchedule schedule;
    schedule.slots = {ScheduleSlot{0, 1.0}, ScheduleSlot{1, 1.0}};
    scheduler_.Apply(schedule, table);
    // A new cycle arrives before the pending switch fires.
    ConfigSchedule hold;
    hold.slots = {ScheduleSlot{0, 2.0}};
    scheduler_.Apply(hold, table);
    device_.sim().RunUntil(SimTime::FromSeconds(3));
    // The cancelled switch never happened.
    EXPECT_EQ(device_.cluster().level(), 2);
}

TEST_F(ConfigSchedulerTest, SingleSlotAppliesImmediately)
{
    const ProfileTable table = TwoConfigTable();
    ConfigSchedule schedule;
    schedule.slots = {ScheduleSlot{1, 2.0}};
    scheduler_.Apply(schedule, table);
    EXPECT_EQ(device_.cluster().level(), 4);
}

}  // namespace
}  // namespace aeo
