#include "core/performance_regulator.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace aeo {
namespace {

RegulatorConfig
Config(double target, double base, double max_speedup)
{
    RegulatorConfig config;
    config.target_gips = target;
    config.initial_base_speed = base;
    config.min_speedup = 1.0;
    config.max_speedup = max_speedup;
    return config;
}

TEST(PerformanceRegulatorTest, InitialSpeedupFromProfiledBaseSpeed)
{
    const PerformanceRegulator regulator(Config(0.2, 0.1, 5.0));
    EXPECT_DOUBLE_EQ(regulator.applied_speedup(), 2.0);
}

TEST(PerformanceRegulatorTest, ConvergesOnIdealPlant)
{
    // Plant: y = s·b, true b = 0.129, target 0.21.
    const double b = 0.129;
    const double target = 0.21;
    PerformanceRegulator regulator(Config(target, 0.15, 5.0));  // wrong b̂₀
    double s = regulator.applied_speedup();
    for (int i = 0; i < 60; ++i) {
        s = regulator.Step(s * b);
    }
    EXPECT_NEAR(s * b, target, 1e-4);
    EXPECT_NEAR(regulator.base_speed_estimate(), b, 0.01);
}

TEST(PerformanceRegulatorTest, ConvergesUnderMeasurementNoise)
{
    const double b = 0.471;  // VidCon
    const double target = 1.1;
    PerformanceRegulator regulator(Config(target, 0.471, 6.0));
    Rng rng(5);
    double s = regulator.applied_speedup();
    double sum = 0.0;
    int count = 0;
    for (int i = 0; i < 200; ++i) {
        const double y = s * b * (1.0 + rng.Gaussian(0.0, 0.02));
        s = regulator.Step(y);
        if (i >= 100) {
            sum += s * b;
            ++count;
        }
    }
    EXPECT_NEAR(sum / count, target, target * 0.02);
}

TEST(PerformanceRegulatorTest, TracksBaseSpeedChange)
{
    // The application's base speed drops mid-run (phase change): the
    // regulator must push the speedup up to compensate.
    const double target = 0.3;
    PerformanceRegulator regulator(Config(target, 0.2, 10.0));
    double s = regulator.applied_speedup();
    for (int i = 0; i < 50; ++i) {
        s = regulator.Step(s * 0.2);
    }
    const double s_before = s;
    for (int i = 0; i < 80; ++i) {
        s = regulator.Step(s * 0.1);  // base speed halved
    }
    EXPECT_GT(s, s_before * 1.5);
    EXPECT_NEAR(s * 0.1, target, target * 0.02);
    EXPECT_NEAR(regulator.base_speed_estimate(), 0.1, 0.02);
}

TEST(PerformanceRegulatorTest, OutputClampedToAchievableRange)
{
    PerformanceRegulator regulator(Config(100.0, 0.1, 3.0));  // unreachable target
    double s = regulator.applied_speedup();
    for (int i = 0; i < 20; ++i) {
        s = regulator.Step(s * 0.1);
    }
    EXPECT_DOUBLE_EQ(s, 3.0);
}

TEST(PerformanceRegulatorTest, ErrorIsReported)
{
    PerformanceRegulator regulator(Config(0.5, 0.25, 5.0));
    regulator.Step(0.4);
    EXPECT_NEAR(regulator.last_error(), 0.1, 1e-12);
}

TEST(PerformanceRegulatorTest, TargetCanChangeAtRuntime)
{
    const double b = 0.2;
    PerformanceRegulator regulator(Config(0.3, b, 10.0));
    double s = regulator.applied_speedup();
    for (int i = 0; i < 50; ++i) {
        s = regulator.Step(s * b);
    }
    regulator.set_target_gips(0.6);
    EXPECT_DOUBLE_EQ(regulator.target_gips(), 0.6);
    for (int i = 0; i < 50; ++i) {
        s = regulator.Step(s * b);
    }
    EXPECT_NEAR(s * b, 0.6, 1e-3);
}

}  // namespace
}  // namespace aeo
