#include "core/performance_regulator.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace aeo {
namespace {

RegulatorConfig
Config(double target, double base, double max_speedup)
{
    RegulatorConfig config;
    config.target_gips = target;
    config.initial_base_speed = base;
    config.min_speedup = 1.0;
    config.max_speedup = max_speedup;
    return config;
}

TEST(PerformanceRegulatorTest, InitialSpeedupFromProfiledBaseSpeed)
{
    const PerformanceRegulator regulator(Config(0.2, 0.1, 5.0));
    EXPECT_DOUBLE_EQ(regulator.applied_speedup(), 2.0);
}

TEST(PerformanceRegulatorTest, ConvergesOnIdealPlant)
{
    // Plant: y = s·b, true b = 0.129, target 0.21.
    const double b = 0.129;
    const double target = 0.21;
    PerformanceRegulator regulator(Config(target, 0.15, 5.0));  // wrong b̂₀
    double s = regulator.applied_speedup();
    for (int i = 0; i < 60; ++i) {
        s = regulator.Step(s * b);
    }
    EXPECT_NEAR(s * b, target, 1e-4);
    EXPECT_NEAR(regulator.base_speed_estimate(), b, 0.01);
}

TEST(PerformanceRegulatorTest, ConvergesUnderMeasurementNoise)
{
    const double b = 0.471;  // VidCon
    const double target = 1.1;
    PerformanceRegulator regulator(Config(target, 0.471, 6.0));
    Rng rng(5);
    double s = regulator.applied_speedup();
    double sum = 0.0;
    int count = 0;
    for (int i = 0; i < 200; ++i) {
        const double y = s * b * (1.0 + rng.Gaussian(0.0, 0.02));
        s = regulator.Step(y);
        if (i >= 100) {
            sum += s * b;
            ++count;
        }
    }
    EXPECT_NEAR(sum / count, target, target * 0.02);
}

TEST(PerformanceRegulatorTest, TracksBaseSpeedChange)
{
    // The application's base speed drops mid-run (phase change): the
    // regulator must push the speedup up to compensate.
    const double target = 0.3;
    PerformanceRegulator regulator(Config(target, 0.2, 10.0));
    double s = regulator.applied_speedup();
    for (int i = 0; i < 50; ++i) {
        s = regulator.Step(s * 0.2);
    }
    const double s_before = s;
    for (int i = 0; i < 80; ++i) {
        s = regulator.Step(s * 0.1);  // base speed halved
    }
    EXPECT_GT(s, s_before * 1.5);
    EXPECT_NEAR(s * 0.1, target, target * 0.02);
    EXPECT_NEAR(regulator.base_speed_estimate(), 0.1, 0.02);
}

TEST(PerformanceRegulatorTest, OutputClampedToAchievableRange)
{
    PerformanceRegulator regulator(Config(100.0, 0.1, 3.0));  // unreachable target
    double s = regulator.applied_speedup();
    for (int i = 0; i < 20; ++i) {
        s = regulator.Step(s * 0.1);
    }
    EXPECT_DOUBLE_EQ(s, 3.0);
}

TEST(PerformanceRegulatorTest, ErrorIsReported)
{
    PerformanceRegulator regulator(Config(0.5, 0.25, 5.0));
    regulator.Step(0.4);
    EXPECT_NEAR(regulator.last_error(), 0.1, 1e-12);
}

TEST(PerformanceRegulatorTest, TargetCanChangeAtRuntime)
{
    const double b = 0.2;
    PerformanceRegulator regulator(Config(0.3, b, 10.0));
    double s = regulator.applied_speedup();
    for (int i = 0; i < 50; ++i) {
        s = regulator.Step(s * b);
    }
    regulator.set_target_gips(0.6);
    EXPECT_DOUBLE_EQ(regulator.target_gips(), 0.6);
    for (int i = 0; i < 50; ++i) {
        s = regulator.Step(s * b);
    }
    EXPECT_NEAR(s * b, 0.6, 1e-3);
}

TEST(PerformanceRegulatorTest, SurplusBandDelaysRecoveryAfterABurst)
{
    // Two regulators on the same trajectory: a demand burst (measured far
    // above target), then normal cycles. The banked regulator spends the
    // burst credit as extra floor cycles; the plain one snaps back up.
    RegulatorConfig banked_config = Config(0.2, 0.1, 5.0);
    banked_config.surplus_band = 3.0;
    PerformanceRegulator banked(banked_config);
    PerformanceRegulator plain(Config(0.2, 0.1, 5.0));
    for (int i = 0; i < 5; ++i) {
        banked.Step(0.9);  // burst: 4.5x target
        plain.Step(0.9);
    }
    EXPECT_DOUBLE_EQ(banked.applied_speedup(), 1.0);
    EXPECT_DOUBLE_EQ(plain.applied_speedup(), 1.0);
    const double post_burst = 0.15;  // modest deficit
    banked.Step(post_burst);
    plain.Step(post_burst);
    EXPECT_GT(plain.applied_speedup(), banked.applied_speedup());
    EXPECT_DOUBLE_EQ(banked.applied_speedup(), 1.0);
}

TEST(PerformanceRegulatorTest, DownwardSlewWalksTheOutputDown)
{
    RegulatorConfig config = Config(0.6, 0.2, 5.0);
    config.max_step_down = 0.25;
    PerformanceRegulator regulator(config);
    const double s0 = regulator.applied_speedup();
    ASSERT_DOUBLE_EQ(s0, 3.0);
    // Massive surplus: unslewed output would hit the floor in one step.
    const double s1 = regulator.Step(5.0);
    EXPECT_DOUBLE_EQ(s1, s0 - 0.25);
}

TEST(PerformanceRegulatorTest, DefaultKnobsMatchLegacyBehaviour)
{
    // surplus_band = 0 and max_step_down = kUnlimitedStep must leave the
    // regulator bit-identical to one built before the knobs existed.
    RegulatorConfig explicit_config = Config(0.21, 0.129, 5.0);
    explicit_config.surplus_band = 0.0;
    explicit_config.max_step_down = kUnlimitedStep;
    PerformanceRegulator knobbed(explicit_config);
    PerformanceRegulator legacy(Config(0.21, 0.129, 5.0));
    Rng rng(11);
    double sk = knobbed.applied_speedup();
    double sl = legacy.applied_speedup();
    for (int i = 0; i < 100; ++i) {
        const double y = sl * 0.129 * (1.0 + rng.Gaussian(0.0, 0.05));
        sk = knobbed.Step(y);
        sl = legacy.Step(y);
        ASSERT_DOUBLE_EQ(sk, sl);
    }
}

}  // namespace
}  // namespace aeo
