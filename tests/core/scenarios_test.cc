#include "core/scenarios.h"

#include <gtest/gtest.h>

#include "common/logging.h"

namespace aeo {
namespace {

TEST(ScenariosTest, EvaluationSetMatchesPaper)
{
    const auto names = EvaluationAppNames();
    ASSERT_EQ(names.size(), 6u);
    EXPECT_EQ(names[0], "VidCon");
    EXPECT_EQ(names[5], "Spotify");
}

TEST(ScenariosTest, RunDurationsMatchSectionIV)
{
    EXPECT_EQ(GetAppScenario("AngryBirds").run_duration, SimTime::FromSeconds(200));
    EXPECT_EQ(GetAppScenario("WeChat").run_duration, SimTime::FromSeconds(100));
    EXPECT_EQ(GetAppScenario("MXPlayer").run_duration, SimTime::FromSeconds(137));
    EXPECT_EQ(GetAppScenario("Spotify").run_duration, SimTime::FromSeconds(100));
}

TEST(ScenariosTest, BatchFlagsMatchDeadlineCriticalApps)
{
    EXPECT_TRUE(GetAppScenario("VidCon").batch);
    EXPECT_TRUE(GetAppScenario("MobileBench").batch);
    EXPECT_FALSE(GetAppScenario("AngryBirds").batch);
    EXPECT_FALSE(GetAppScenario("Spotify").batch);
}

TEST(ScenariosTest, ProfileRestrictionsMatchSectionV)
{
    // VidCon/MobileBench: paper levels 7-18 → 0-based 6..17.
    const auto vidcon = GetAppScenario("VidCon").profile_cpu_levels;
    EXPECT_EQ(vidcon.front(), 6);
    EXPECT_EQ(vidcon.back(), 17);
    // AngryBirds: alternate levels of 1-5.
    const auto ab = GetAppScenario("AngryBirds").profile_cpu_levels;
    EXPECT_EQ(ab, (std::vector<int>{0, 2, 4}));
    // WeChat: alternate levels of 3-7 (camera fails below 3).
    const auto wechat = GetAppScenario("WeChat").profile_cpu_levels;
    EXPECT_EQ(wechat, (std::vector<int>{2, 4, 6}));
    // MX Player: levels 5-18 (stutter below 5).
    EXPECT_EQ(GetAppScenario("MXPlayer").profile_cpu_levels.front(), 4);
    // Spotify: levels 1, 3, 5 only.
    EXPECT_EQ(GetAppScenario("Spotify").profile_cpu_levels,
              (std::vector<int>{0, 2, 4}));
}

TEST(ScenariosTest, UnknownAppIsFatal)
{
    EXPECT_THROW(GetAppScenario("Fortnite"), FatalError);
}

}  // namespace
}  // namespace aeo
