/**
 * @file
 * Unit-level tests of the online controller's plumbing (closed-loop
 * behaviour is covered by the integration suite).
 */
#include "core/online_controller.h"

#include <gtest/gtest.h>

#include "apps/workloads.h"
#include "device/device.h"
#include "platform/sim_platform.h"

namespace aeo {
namespace {

ProfileTable
CoordinatedTable()
{
    std::vector<ProfileEntry> entries = {
        {SystemConfig{0, 0}, 1.0, Milliwatts(1150.0)},
        {SystemConfig{2, 0}, 1.3, Milliwatts(1300.0)},
        {SystemConfig{4, 0}, 1.6, Milliwatts(1500.0)},
    };
    return ProfileTable("unit", std::move(entries), 0.06);
}

ProfileTable
CpuOnlyTable()
{
    std::vector<ProfileEntry> entries = {
        {SystemConfig{0, kBwDefaultGovernor}, 1.0, Milliwatts(1200.0)},
        {SystemConfig{4, kBwDefaultGovernor}, 1.6, Milliwatts(1550.0)},
    };
    return ProfileTable("unit-cpu", std::move(entries), 0.06);
}

TEST(OnlineControllerTest, StartTakesOverBothGovernors)
{
    Device device;
    device.LaunchApp(MakeSpotifySpec());
    ControllerConfig config;
    config.target_gips = 0.06;
    platform::SimPlatform plat(&device);
    OnlineController controller(&plat, CoordinatedTable(), config);
    controller.Start();
    EXPECT_EQ(device.cpufreq().governor_name(), "userspace");
    EXPECT_EQ(device.devfreq().governor_name(), "userspace");
    EXPECT_TRUE(device.perf().running());
    controller.Stop();
    EXPECT_FALSE(device.perf().running());
}

TEST(OnlineControllerTest, CpuOnlyTableKeepsHwmonOnTheBus)
{
    Device device;
    device.LaunchApp(MakeSpotifySpec());
    ControllerConfig config;
    config.target_gips = 0.06;
    platform::SimPlatform plat(&device);
    OnlineController controller(&plat, CpuOnlyTable(), config);
    controller.Start();
    EXPECT_EQ(device.cpufreq().governor_name(), "userspace");
    EXPECT_EQ(device.devfreq().governor_name(), "cpubw_hwmon");
    controller.Stop();
}

TEST(OnlineControllerTest, CyclesAccumulateAtThePaperRate)
{
    Device device;
    device.LaunchApp(MakeSpotifySpec());
    ControllerConfig config;
    config.target_gips = 0.06;
    platform::SimPlatform plat(&device);
    OnlineController controller(&plat, CoordinatedTable(), config);
    controller.Start();
    device.RunFor(SimTime::FromSeconds(21));
    controller.Stop();
    // T = 2 s → 10 completed cycles in 21 s.
    EXPECT_EQ(controller.cycle_count(), 10u);
}

TEST(OnlineControllerTest, CustomCycleDurationHonoured)
{
    Device device;
    device.LaunchApp(MakeSpotifySpec());
    ControllerConfig config;
    config.target_gips = 0.06;
    config.control_cycle = SimTime::FromSeconds(4);
    platform::SimPlatform plat(&device);
    OnlineController controller(&plat, CoordinatedTable(), config);
    controller.Start();
    device.RunFor(SimTime::FromSeconds(21));
    controller.Stop();
    EXPECT_EQ(controller.cycle_count(), 5u);
}

TEST(OnlineControllerTest, OverheadPowerChargedWhileRunning)
{
    Device device;
    device.LaunchApp(MakeSpotifySpec());
    ControllerConfig config;
    config.target_gips = 0.06;
    platform::SimPlatform plat(&device);
    OnlineController controller(&plat, CoordinatedTable(), config);
    controller.Start();
    // The §V-A1 budget: compute + actuation, spread over the cycle —
    // visible as a small but non-zero overhead on the plant.
    device.RunFor(SimTime::FromSeconds(4));
    const double power_with = device.CurrentPower().value();
    controller.Stop();
    const double power_without = device.CurrentPower().value();
    EXPECT_GT(power_with, power_without);
    EXPECT_LT(power_with - power_without, 50.0);  // small: <10 ms at ~25 mW
}

TEST(OnlineControllerTest, WatchdogRevertsToStockGovernorsOnStickyFailure)
{
    // 100 % sticky EIO on the CPU speed file: every actuation attempt fails.
    FaultRule rule;
    rule.path_prefix = std::string(kCpufreqSysfsRoot) + "/scaling_setspeed";
    rule.fail_probability = 1.0;
    rule.errc = FaultErrc::kIo;
    rule.duration = FaultDuration::kSticky;
    DeviceConfig device_config;
    device_config.fault_rules.push_back(rule);
    Device device(device_config);
    device.LaunchApp(MakeSpotifySpec());

    ControllerConfig config;
    config.target_gips = 0.06;
    config.watchdog_threshold = 3;
    platform::SimPlatform plat(&device);
    OnlineController controller(&plat, CoordinatedTable(), config);
    controller.Start();
    EXPECT_FALSE(controller.fallback_engaged());

    // Start's apply is strike one; within two more control cycles (K = 3)
    // the watchdog hands the device back to the stock governors.
    device.RunFor(SimTime::FromSeconds(3 * 2));
    EXPECT_TRUE(controller.fallback_engaged());
    EXPECT_EQ(device.cpufreq().governor_name(), "interactive");
    EXPECT_EQ(device.devfreq().governor_name(), "cpubw_hwmon");
    EXPECT_FALSE(device.perf().running());
    EXPECT_GE(controller.actuator().stats().failed_ops, 3u);

    // The control cycle is dead: no further cycles accumulate.
    const size_t cycles = controller.cycle_count();
    device.RunFor(SimTime::FromSeconds(6));
    EXPECT_EQ(controller.cycle_count(), cycles);
    controller.Stop();  // idempotent after fallback
}

TEST(OnlineControllerTest, MissingPerfSamplesRunTheCycleDegraded)
{
    // Every PMU read fails: each cycle's measurement window is empty.
    FaultRule rule;
    rule.path_prefix = kPmuFaultPath;
    rule.fail_probability = 1.0;
    rule.errc = FaultErrc::kIo;
    DeviceConfig device_config;
    device_config.fault_rules.push_back(rule);
    Device device(device_config);
    device.LaunchApp(MakeSpotifySpec());

    ControllerConfig config;
    config.target_gips = 0.06;
    platform::SimPlatform plat(&device);
    OnlineController controller(&plat, CoordinatedTable(), config);
    controller.Start();
    const double estimate_before = controller.base_speed_estimate();
    device.RunFor(SimTime::FromSeconds(9));
    controller.Stop();

    ASSERT_GE(controller.cycle_count(), 4u);
    EXPECT_EQ(controller.degraded_cycle_count(), controller.cycle_count());
    for (const ControlCycleRecord& record : controller.history()) {
        EXPECT_TRUE(record.degraded);
        EXPECT_EQ(record.perf_samples, 0u);
    }
    // Degraded cycles hold the Kalman estimate instead of feeding it junk.
    EXPECT_DOUBLE_EQ(controller.base_speed_estimate(), estimate_before);
    // Actuation still works, so the watchdog stays quiet.
    EXPECT_FALSE(controller.fallback_engaged());
}

TEST(OnlineControllerTest, HealthyLoopIsNeverDegraded)
{
    Device device;
    device.LaunchApp(MakeSpotifySpec());
    ControllerConfig config;
    config.target_gips = 0.06;
    platform::SimPlatform plat(&device);
    OnlineController controller(&plat, CoordinatedTable(), config);
    controller.Start();
    device.RunFor(SimTime::FromSeconds(9));
    controller.Stop();
    EXPECT_EQ(controller.degraded_cycle_count(), 0u);
    EXPECT_FALSE(controller.fallback_engaged());
}

TEST(OnlineControllerDeathTest, MixedTableIsRejected)
{
    Device device;
    device.LaunchApp(MakeSpotifySpec());
    std::vector<ProfileEntry> entries = {
        {SystemConfig{0, 0}, 1.0, Milliwatts(1150.0)},
        {SystemConfig{4, kBwDefaultGovernor}, 1.6, Milliwatts(1550.0)},
    };
    const ProfileTable mixed("bad", std::move(entries), 0.06);
    ControllerConfig config;
    config.target_gips = 0.06;
    platform::SimPlatform plat(&device);
    EXPECT_DEATH(OnlineController(&plat, mixed, config), "mixes");
}

}  // namespace
}  // namespace aeo
