#include "core/profile_drift.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace aeo {
namespace {

DriftConfig
EnabledConfig()
{
    DriftConfig config;
    config.enabled = true;
    return config;
}

TEST(ProfileDriftTest, DisabledDetectorLearnsNothing)
{
    ProfileDriftDetector drift(4);  // default config: disabled
    for (int i = 0; i < 50; ++i) {
        drift.Observe(i, 0, 1.0, 1.5, 1.5);
    }
    EXPECT_EQ(drift.observation_count(), 0u);
    EXPECT_DOUBLE_EQ(drift.PowerCorrection(0), 1.0);
    EXPECT_DOUBLE_EQ(drift.SpeedupCorrection(0), 1.0);
    EXPECT_FALSE(drift.AnyCorrection());
}

TEST(ProfileDriftTest, ConvergesToAPersistentResidual)
{
    ProfileDriftDetector drift(4, EnabledConfig());
    for (int i = 0; i < 40; ++i) {
        drift.Observe(i, 2, 1.0, 1.3, 1.3);
    }
    EXPECT_NEAR(drift.PowerCorrection(2), 1.3, 0.01);
    EXPECT_NEAR(drift.SpeedupCorrection(2), 1.3, 0.01);
    EXPECT_TRUE(drift.AnyCorrection());
    // Unvisited rows inherit the global correction: the dominant drift
    // mechanism (leakage heating) shifts the whole table at once.
    EXPECT_NEAR(drift.GlobalPowerCorrection(), 1.3, 0.01);
    EXPECT_NEAR(drift.PowerCorrection(0), 1.3, 0.01);
    EXPECT_EQ(drift.corrected_entry_count(), 4u);
}

TEST(ProfileDriftTest, RowEvidenceOverridesTheGlobalFallback)
{
    // Row 0 drifts 50 % while row 1 measures spot-on. Row 1's own evidence
    // must win over the inflated global estimate, and a row with no
    // evidence at all (row 2) must follow the global.
    ProfileDriftDetector drift(3, EnabledConfig());
    for (int i = 0; i < 40; ++i) {
        drift.Observe(i, 0, 1.0, 1.5, 1.5);
        drift.Observe(i, 1, 1.0, 1.0, 1.0);
    }
    EXPECT_GT(drift.PowerCorrection(0), 1.3);
    EXPECT_DOUBLE_EQ(drift.PowerCorrection(1), 1.0);
    EXPECT_GT(drift.PowerCorrection(2), 1.1);
}

TEST(ProfileDriftTest, DeadZoneKeepsSmallResidualsUncorrected)
{
    // 5 % residual sits inside the 10 % threshold: measured and predicted
    // agree to within noise, so the table must not be rewritten.
    ProfileDriftDetector drift(2, EnabledConfig());
    for (int i = 0; i < 40; ++i) {
        drift.Observe(i, 0, 1.0, 1.05, 0.95);
    }
    EXPECT_DOUBLE_EQ(drift.PowerCorrection(0), 1.0);
    EXPECT_DOUBLE_EQ(drift.SpeedupCorrection(0), 1.0);
    EXPECT_FALSE(drift.AnyCorrection());
}

TEST(ProfileDriftTest, MinWeightGatesActivation)
{
    // min_weight = 3: two full-cycle observations are not yet evidence.
    ProfileDriftDetector drift(2, EnabledConfig());
    drift.Observe(0, 0, 1.0, 1.5, 1.5);
    drift.Observe(1, 0, 1.0, 1.5, 1.5);
    EXPECT_DOUBLE_EQ(drift.PowerCorrection(0), 1.0);
    drift.Observe(2, 0, 1.0, 1.5, 1.5);
    EXPECT_GT(drift.PowerCorrection(0), 1.1);
}

TEST(ProfileDriftTest, CorrectionsAreClampedIntoTheConfiguredRange)
{
    ProfileDriftDetector inflated(2, EnabledConfig());
    ProfileDriftDetector deflated(2, EnabledConfig());
    for (int i = 0; i < 60; ++i) {
        inflated.Observe(i, 0, 1.0, 6.0, 6.0);
        deflated.Observe(i, 0, 1.0, 0.05, 0.05);
    }
    EXPECT_DOUBLE_EQ(inflated.PowerCorrection(0), 2.0);
    EXPECT_DOUBLE_EQ(deflated.PowerCorrection(0), 0.5);
}

TEST(ProfileDriftTest, PartialDwellWeightBlendsProportionally)
{
    // alpha_eff = ewma_alpha · weight: a half-cycle visit moves the EWMA
    // half as far as a full cycle would.
    DriftConfig config = EnabledConfig();
    config.ewma_alpha = 0.25;
    ProfileDriftDetector drift(1, config);
    drift.Observe(0, 0, 0.5, 2.0, 1.0);
    const double alpha = 0.25 * 0.5;
    EXPECT_DOUBLE_EQ(drift.trace().back().power_ewma,
                     (1.0 - alpha) * 1.0 + alpha * 2.0);
}

TEST(ProfileDriftTest, GarbageObservationsAreIgnored)
{
    ProfileDriftDetector drift(2, EnabledConfig());
    drift.Observe(0, 0, 0.0, 1.5, 1.5);   // zero weight
    drift.Observe(1, 0, 1.0, -1.0, 1.5);  // negative residual
    drift.Observe(2, 0, 1.0, 1.5, 0.0);   // zero residual
    drift.Observe(3, 0, 1.0,
                  std::numeric_limits<double>::quiet_NaN(), 1.5);
    drift.Observe(4, 0, 1.0, 1.5,
                  std::numeric_limits<double>::infinity());
    EXPECT_EQ(drift.observation_count(), 0u);
    EXPECT_DOUBLE_EQ(drift.PowerCorrection(0), 1.0);
}

TEST(ProfileDriftTest, TraceRecordsEveryObservation)
{
    ProfileDriftDetector drift(3, EnabledConfig());
    drift.Observe(12.5, 1, 0.75, 1.2, 0.9);
    ASSERT_EQ(drift.trace().size(), 1u);
    const DriftRecord& record = drift.trace().front();
    EXPECT_DOUBLE_EQ(record.time_s, 12.5);
    EXPECT_EQ(record.entry_index, 1u);
    EXPECT_DOUBLE_EQ(record.weight, 0.75);
    EXPECT_DOUBLE_EQ(record.power_residual, 1.2);
    EXPECT_DOUBLE_EQ(record.speedup_residual, 0.9);
    EXPECT_GT(record.power_ewma, 1.0);
    EXPECT_LT(record.speedup_ewma, 1.0);
}

}  // namespace
}  // namespace aeo
