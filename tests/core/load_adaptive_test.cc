#include "core/load_adaptive.h"

#include <gtest/gtest.h>

namespace aeo {
namespace {

ProfileTable
Table(double power)
{
    return ProfileTable("x", {{SystemConfig{0, 0}, 1.0, Milliwatts(power)}}, 0.1);
}

LoadAdaptiveProfile
ThreeLoads()
{
    // The paper's free-memory signatures: NL 1 GB, BL 500 MB, HL 134 MB.
    std::vector<LoadConditionProfile> conditions;
    conditions.push_back(LoadConditionProfile{1024.0, Table(1000.0), 0.5});
    conditions.push_back(LoadConditionProfile{500.0, Table(1100.0), 0.45});
    conditions.push_back(LoadConditionProfile{134.0, Table(1250.0), 0.4});
    return LoadAdaptiveProfile(std::move(conditions));
}

TEST(LoadAdaptiveProfileTest, ExactSignaturesSelectThemselves)
{
    const LoadAdaptiveProfile adaptive = ThreeLoads();
    EXPECT_DOUBLE_EQ(adaptive.SelectFor(1024.0).default_gips, 0.5);
    EXPECT_DOUBLE_EQ(adaptive.SelectFor(500.0).default_gips, 0.45);
    EXPECT_DOUBLE_EQ(adaptive.SelectFor(134.0).default_gips, 0.4);
}

TEST(LoadAdaptiveProfileTest, NearestSignatureWinsOnLogScale)
{
    const LoadAdaptiveProfile adaptive = ThreeLoads();
    // 700 MB: log-nearest to 500 MB (ratio 1.4) vs 1024 (1.46).
    EXPECT_DOUBLE_EQ(adaptive.SelectFor(700.0).default_gips, 0.45);
    // 300 MB: ratio 1.67 to 500 vs 2.24 to 134 → BL.
    EXPECT_DOUBLE_EQ(adaptive.SelectFor(300.0).default_gips, 0.45);
    // 150 MB → HL; 2 GB → NL.
    EXPECT_DOUBLE_EQ(adaptive.SelectFor(150.0).default_gips, 0.4);
    EXPECT_DOUBLE_EQ(adaptive.SelectFor(2048.0).default_gips, 0.5);
}

TEST(LoadAdaptiveProfileTest, SingleConditionAlwaysSelected)
{
    std::vector<LoadConditionProfile> one;
    one.push_back(LoadConditionProfile{500.0, Table(1000.0), 0.3});
    const LoadAdaptiveProfile adaptive(std::move(one));
    EXPECT_DOUBLE_EQ(adaptive.SelectFor(50.0).default_gips, 0.3);
    EXPECT_DOUBLE_EQ(adaptive.SelectFor(5000.0).default_gips, 0.3);
}

TEST(LoadAdaptiveProfileDeathTest, RejectsEmptyAndInvalid)
{
    EXPECT_DEATH(LoadAdaptiveProfile({}), "at least one");
}

}  // namespace
}  // namespace aeo
