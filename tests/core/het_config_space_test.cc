/**
 * @file
 * The heterogeneous configuration space and its convexity pruner.
 *
 * The load-bearing guarantee is the oracle property test: on 1000 seeded
 * random per-cluster frequency/power tables, the energy optimizer run over
 * the hull-pruned cross-product returns *bit-identical* schedules to the
 * brute-force pair search over the exhaustive cross-product. The pruner may
 * only drop configurations that can never appear in an optimal time-mix.
 */
#include "core/het_config_space.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/energy_optimizer.h"
#include "power/power_model.h"
#include "soc/exynos5433.h"
#include "soc/nexus6.h"

namespace aeo {
namespace {

TEST(ConvexHullLevelsTest, StrictlyConvexCurveKeepsEveryLevel)
{
    // P(f) = f² is strictly convex: every point lies on the lower hull.
    const std::vector<double> freqs = {1.0, 2.0, 3.0, 4.0};
    const std::vector<double> powers = {1.0, 4.0, 9.0, 16.0};
    EXPECT_EQ(ConvexHullLevels(4, freqs, powers),
              (std::vector<int>{0, 1, 2, 3}));
}

TEST(ConvexHullLevelsTest, PointAboveTheChordIsPruned)
{
    // Level 1 costs more than the 0–2 time-mix delivering the same average
    // frequency: 0.5·(1+9) = 5 < 7.
    const std::vector<double> freqs = {1.0, 2.0, 3.0};
    const std::vector<double> powers = {1.0, 7.0, 9.0};
    EXPECT_EQ(ConvexHullLevels(3, freqs, powers), (std::vector<int>{0, 2}));
}

TEST(ConvexHullLevelsTest, CollinearInteriorPointIsRedundant)
{
    const std::vector<double> freqs = {1.0, 2.0, 3.0};
    const std::vector<double> powers = {1.0, 2.0, 3.0};
    EXPECT_EQ(ConvexHullLevels(3, freqs, powers), (std::vector<int>{0, 2}));
}

TEST(ConvexHullLevelsTest, EndpointsAlwaysSurvive)
{
    Rng rng(99);
    for (int trial = 0; trial < 50; ++trial) {
        const int n = static_cast<int>(rng.UniformInt(1, 12));
        std::vector<double> freqs;
        std::vector<double> powers;
        double f = rng.Uniform(0.2, 0.5);
        double p = rng.Uniform(50.0, 200.0);
        for (int i = 0; i < n; ++i) {
            freqs.push_back(f);
            powers.push_back(p);
            f += rng.Uniform(0.05, 0.3);
            p += rng.Uniform(10.0, 400.0);
        }
        const std::vector<int> hull = ConvexHullLevels(n, freqs, powers);
        ASSERT_FALSE(hull.empty());
        EXPECT_EQ(hull.front(), 0);
        EXPECT_EQ(hull.back(), n - 1);
        EXPECT_LE(hull.size(), static_cast<size_t>(n));
        EXPECT_TRUE(std::is_sorted(hull.begin(), hull.end()));
    }
}

TEST(HetConfigSpaceTest, ClusterPowerCurveIsIncreasing)
{
    const PowerModel model(MakeExynos5433PowerParams());
    const ClusterTopology topology = MakeExynos5433Topology();
    for (const ClusterSpec* cluster :
         {&topology.primary(), &topology.little()}) {
        const std::vector<double> curve = ClusterPowerCurve(model, *cluster);
        ASSERT_EQ(curve.size(), static_cast<size_t>(cluster->table.size()));
        for (size_t i = 1; i < curve.size(); ++i) {
            EXPECT_GT(curve[i], curve[i - 1]) << cluster->name << " level " << i;
        }
    }
}

TEST(HetConfigSpaceTest, HomogeneousEnumerationMatchesTheLegacyGrid)
{
    const PowerModel model(MakeNexus6PowerParams());
    const ClusterTopology topology = MakeNexus6Topology();
    HetSpaceOptions options;
    options.prune_convex = false;
    const std::vector<SystemConfig> grid =
        EnumerateHetConfigs(topology, model, options);

    const int cpu_levels = topology.primary().table.size();
    const int bw_levels = topology.bandwidth_table().size();
    ASSERT_EQ(grid.size(), static_cast<size_t>(cpu_levels * bw_levels));
    for (const SystemConfig& config : grid) {
        EXPECT_FALSE(config.controls_little());
        EXPECT_EQ(config.placement, kPlacementDefault);
    }
    EXPECT_EQ(grid.front(), (SystemConfig{0, 0}));
    EXPECT_EQ(grid.back(), (SystemConfig{cpu_levels - 1, bw_levels - 1}));
}

TEST(HetConfigSpaceTest, ExhaustiveBigLittleGridIsTheFullCrossProduct)
{
    const PowerModel model(MakeExynos5433PowerParams());
    const ClusterTopology topology = MakeExynos5433Topology();
    HetSpaceOptions options;
    options.prune_convex = false;
    const std::vector<SystemConfig> grid =
        EnumerateHetConfigs(topology, model, options);
    EXPECT_EQ(grid.size(),
              static_cast<size_t>(kExynos5433BigLevels * kExynos5433LittleLevels *
                                  kExynos5433BwLevels * kNumThreadPlacements));
    for (const SystemConfig& config : grid) {
        EXPECT_TRUE(config.controls_little());
        EXPECT_NE(config.placement, kPlacementDefault);
    }
}

TEST(HetConfigSpaceTest, PrunedGridIsASubsetOfTheExhaustiveGrid)
{
    const PowerModel model(MakeExynos5433PowerParams());
    const ClusterTopology topology = MakeExynos5433Topology();
    const std::vector<SystemConfig> pruned =
        EnumerateHetConfigs(topology, model);
    HetSpaceOptions exhaustive;
    exhaustive.prune_convex = false;
    const std::vector<SystemConfig> full =
        EnumerateHetConfigs(topology, model, exhaustive);

    EXPECT_LE(pruned.size(), full.size());
    for (const SystemConfig& config : pruned) {
        EXPECT_NE(std::find(full.begin(), full.end(), config), full.end());
    }
    // Both endpoint frequencies survive per cluster.
    const auto big_hull = ConvexPrunedLevels(model, topology.primary());
    const auto little_hull = ConvexPrunedLevels(model, topology.little());
    EXPECT_EQ(big_hull.front(), 0);
    EXPECT_EQ(big_hull.back(), kExynos5433BigLevels - 1);
    EXPECT_EQ(little_hull.front(), 0);
    EXPECT_EQ(little_hull.back(), kExynos5433LittleLevels - 1);
    EXPECT_EQ(pruned.size(), big_hull.size() * little_hull.size() *
                                 kExynos5433BwLevels * kNumThreadPlacements);
}

/** One random per-cluster curve: strictly increasing frequency and power.
 * Power is *not* convexified, so interior levels genuinely get pruned. */
struct RandomCluster {
    std::vector<double> freqs;
    std::vector<double> powers;
};

RandomCluster
MakeRandomCluster(Rng* rng, int levels)
{
    RandomCluster cluster;
    double f = rng->Uniform(0.3, 0.7);
    double p = rng->Uniform(80.0, 300.0);
    for (int i = 0; i < levels; ++i) {
        cluster.freqs.push_back(f);
        cluster.powers.push_back(p);
        f += rng->Uniform(0.1, 0.4);
        p += rng->Uniform(20.0, 900.0);
    }
    return cluster;
}

/**
 * The oracle property (satellite of the big.LITTLE tentpole): pruning each
 * cluster's ladder to its (f, P) lower hull never changes the optimizer's
 * answer, because the workload speedup is affine in each cluster's
 * frequency and the schedule LP may time-mix configurations — an off-hull
 * level is strictly dominated by the mix of its hull neighbours. 1000
 * seeded tables, bit-identical expected power/speedup and slot configs,
 * and the pruned search visits at most O(hull_big × hull_little) pairs
 * instead of O(n_big × n_little).
 */
TEST(HetConfigSpaceTest, PrunedOptimizerIsBitIdenticalToBruteForceOn1kTables)
{
    Rng rng(20170218);  // HPCA'17 vintage.
    size_t total_full = 0;
    size_t total_pruned = 0;

    for (int trial = 0; trial < 1000; ++trial) {
        const int n_big = static_cast<int>(rng.UniformInt(3, 9));
        const int n_little = static_cast<int>(rng.UniformInt(3, 8));
        const RandomCluster big = MakeRandomCluster(&rng, n_big);
        const RandomCluster little = MakeRandomCluster(&rng, n_little);

        // Speedup affine in each cluster's clock (each cluster contributes
        // throughput proportional to frequency × silicon weight).
        const double w_big = rng.Uniform(0.6, 1.4);
        const double w_little = rng.Uniform(0.2, 0.8);
        const double norm = w_big * big.freqs[0] + w_little * little.freqs[0];

        const auto make_entries = [&](const std::vector<int>& big_levels,
                                      const std::vector<int>& little_levels) {
            std::vector<ProfileEntry> entries;
            for (const int b : big_levels) {
                for (const int l : little_levels) {
                    SystemConfig config{b, 0};
                    config.little_level = l;
                    config.placement = kPlacementBoth;
                    ProfileEntry entry;
                    entry.config = config;
                    entry.speedup =
                        (w_big * big.freqs[static_cast<size_t>(b)] +
                         w_little * little.freqs[static_cast<size_t>(l)]) /
                        norm;
                    entry.power_mw =
                        Milliwatts(big.powers[static_cast<size_t>(b)] +
                                   little.powers[static_cast<size_t>(l)]);
                    entries.push_back(entry);
                }
            }
            return entries;
        };

        std::vector<int> all_big(static_cast<size_t>(n_big));
        std::vector<int> all_little(static_cast<size_t>(n_little));
        for (int i = 0; i < n_big; ++i) {
            all_big[static_cast<size_t>(i)] = i;
        }
        for (int i = 0; i < n_little; ++i) {
            all_little[static_cast<size_t>(i)] = i;
        }
        const std::vector<int> hull_big =
            ConvexHullLevels(n_big, big.freqs, big.powers);
        const std::vector<int> hull_little =
            ConvexHullLevels(n_little, little.freqs, little.powers);
        ASSERT_LE(hull_big.size(), static_cast<size_t>(n_big));
        ASSERT_LE(hull_little.size(), static_cast<size_t>(n_little));

        const ProfileTable full("full", make_entries(all_big, all_little), 1.0);
        const ProfileTable pruned("pruned", make_entries(hull_big, hull_little),
                                  1.0);
        total_full += full.size();
        total_pruned += pruned.size();

        // Oracle: the paper's O(N²) pair enumeration over the exhaustive
        // cross-product. Candidate: the hull walk over the pruned one.
        const EnergyOptimizer oracle(&full, OptimizerBackend::kPairSearch);
        const EnergyOptimizer candidate(&pruned, OptimizerBackend::kConvexHull);

        for (int k = 0; k < 5; ++k) {
            const double s =
                rng.Uniform(full.min_speedup() * 0.95, full.max_speedup() * 1.05);
            const ConfigSchedule want = oracle.Optimize(s, 2.0);
            const ConfigSchedule got = candidate.Optimize(s, 2.0);

            // Bit-identical, not approximately equal: both backends must
            // select the same rows and run the same dwell arithmetic.
            ASSERT_EQ(got.expected_power_mw.value(),
                      want.expected_power_mw.value())
                << "trial " << trial << " speedup " << s;
            ASSERT_EQ(got.expected_speedup, want.expected_speedup)
                << "trial " << trial << " speedup " << s;
            ASSERT_EQ(got.slots.size(), want.slots.size());
            for (size_t i = 0; i < got.slots.size(); ++i) {
                EXPECT_EQ(
                    pruned.entries()[got.slots[i].entry_index].config,
                    full.entries()[want.slots[i].entry_index].config)
                    << "trial " << trial << " slot " << i;
                EXPECT_EQ(got.slots[i].seconds, want.slots[i].seconds);
            }
        }
    }

    // The pruning must have actually bitten across the campaign — a
    // vacuous pass (nothing ever pruned) would prove nothing.
    EXPECT_LT(total_pruned, total_full / 2);
}

}  // namespace
}  // namespace aeo
