/**
 * @file
 * The batch layer's determinism contract: parallelism changes wall-clock
 * time and nothing else. RunOrdered returns submission-order results at any
 * worker count, and an offline profile is bit-identical (down to the CSV
 * text) whether it runs serially or fanned out across workers.
 */
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "apps/app_registry.h"
#include "core/batch_runner.h"
#include "core/experiment.h"
#include "core/offline_profiler.h"

namespace aeo {
namespace {

TEST(BatchRunnerTest, ResolveJobsDefaultsToHardware)
{
    EXPECT_GE(ResolveJobs(BatchOptions{}), 1);
    EXPECT_EQ(ResolveJobs(BatchOptions{1}), 1);
    EXPECT_EQ(ResolveJobs(BatchOptions{6}), 6);
}

TEST(BatchRunnerTest, ReturnsResultsInSubmissionOrder)
{
    const BatchRunner runner(BatchOptions{4});
    std::vector<std::function<int()>> tasks;
    for (int i = 0; i < 64; ++i) {
        tasks.push_back([i] { return 1000 + i; });
    }
    const std::vector<int> results = runner.RunOrdered(std::move(tasks));
    ASSERT_EQ(results.size(), 64u);
    for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(results[static_cast<size_t>(i)], 1000 + i);
    }
}

TEST(BatchRunnerTest, InlineAndParallelAgree)
{
    const auto build = [] {
        std::vector<std::function<double()>> tasks;
        for (int i = 1; i <= 40; ++i) {
            tasks.push_back([i] { return 1.0 / i; });
        }
        return tasks;
    };
    const std::vector<double> serial =
        BatchRunner(BatchOptions{1}).RunOrdered(build());
    const std::vector<double> parallel =
        BatchRunner(BatchOptions{4}).RunOrdered(build());
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i], parallel[i]);  // bitwise, not approximate
    }
}

TEST(BatchRunnerTest, TaskExceptionRethrownToCaller)
{
    const BatchRunner runner(BatchOptions{2});
    std::vector<std::function<int()>> tasks;
    tasks.push_back([] { return 1; });
    tasks.push_back([]() -> int { throw std::runtime_error("job died"); });
    tasks.push_back([] { return 3; });
    EXPECT_THROW(runner.RunOrdered(std::move(tasks)), std::runtime_error);
}

/** A profile grid big enough to keep several workers busy, small enough for
 * a ctest: 3 CPU levels × 13 dense bandwidths × 2 runs = 78 device runs. */
ProfilerOptions
GridOptions(int jobs)
{
    ProfilerOptions options;
    options.sparse = false;
    options.cpu_levels = {0, 8, 17};
    options.runs = 2;
    options.measure_duration = SimTime::FromSeconds(2);
    options.seed = 4242;
    options.batch.jobs = jobs;
    return options;
}

TEST(BatchDeterminismTest, ProfileBitIdenticalAcrossWorkerCounts)
{
    const OfflineProfiler profiler;
    const AppSpec app = MakeAppSpecByName("AngryBirds");
    const std::string serial = profiler.Profile(app, GridOptions(1)).ToCsv();

    const unsigned hw = std::thread::hardware_concurrency();
    const std::vector<int> counts = {4, hw > 0 ? static_cast<int>(hw) : 2};
    for (const int jobs : counts) {
        EXPECT_EQ(profiler.Profile(app, GridOptions(jobs)).ToCsv(), serial)
            << "profile at jobs=" << jobs << " diverged from serial";
    }
}

TEST(BatchDeterminismTest, RunComparisonsMatchesSerialComparisons)
{
    ExperimentHarness harness;
    ExperimentOptions options;
    options.profile_runs = 1;
    options.profile_duration = SimTime::FromSeconds(5);
    options.seed = 99;

    std::vector<ComparisonJob> jobs;
    jobs.push_back(ComparisonJob{"AngryBirds", options});
    jobs.push_back(ComparisonJob{"Spotify", options});

    const std::vector<ExperimentOutcome> batched =
        harness.RunComparisons(jobs, BatchOptions{2});
    ASSERT_EQ(batched.size(), 2u);
    size_t i = 0;
    for (const ComparisonJob& job : jobs) {
        const ExperimentOutcome serial =
            harness.RunComparison(job.app_name, job.options);
        EXPECT_EQ(batched[i].perf_delta_pct, serial.perf_delta_pct);
        EXPECT_EQ(batched[i].energy_savings_pct, serial.energy_savings_pct);
        EXPECT_EQ(batched[i].table.ToCsv(), serial.table.ToCsv());
        ++i;
    }
}

}  // namespace
}  // namespace aeo
