/**
 * End-to-end chaos campaigns: clean runs hold every invariant, a planted
 * feasible-set-mask off-by-one is caught by a seeded campaign, the failing
 * scenario shrinks to a minimal fault list, and the crash bundle replays
 * to the same first-violation cycle at any batch worker count.
 */
#include "chaos/campaign.h"

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "apps/app_registry.h"
#include "chaos/crash_bundle.h"
#include "chaos/platform_decorator.h"
#include "chaos/scenario_shrinker.h"
#include "core/batch_runner.h"
#include "core/offline_profiler.h"
#include "core/scenarios.h"
#include "gtest/gtest.h"

namespace aeo::chaos {
namespace {

constexpr const char kApp[] = "AngryBirds";
constexpr uint64_t kSeed = 4242;

/**
 * THE PLANTED BUG: a thermals seam whose cap read-back is off by one
 * level. The controller masks its feasible set one row too high and keeps
 * planning rows the throttled device silently clamps away — its believed
 * cap sits above the kernel's advertised cap for the whole throttled
 * window, exactly the belief-divergence defect the actuation-consistency
 * monitor exists to catch.
 */
class OffByOneThermals : public platform::Thermals {
  public:
    explicit OffByOneThermals(platform::Thermals* inner) : inner_(inner) {}
    double ReadZoneTempC() override { return inner_->ReadZoneTempC(); }
    int ReadCpuCapLevel() override
    {
        const int cap = inner_->ReadCpuCapLevel();
        return cap == platform::kNoCapLevel ? cap : cap + 1;
    }

  private:
    platform::Thermals* inner_;
};

class CapOffByOnePlatform : public ForwardingPlatform {
  public:
    explicit CapOffByOnePlatform(platform::Platform* inner)
        : ForwardingPlatform(inner), thermals_(&inner->thermals())
    {
    }
    platform::Thermals& thermals() override { return thermals_; }

  private:
    OffByOneThermals thermals_;
};

/** A shared clean profile (profiling is the slow part of a campaign). */
const ProfileTable&
SharedTable()
{
    static const ProfileTable table = [] {
        const AppScenario scenario = GetAppScenario(kApp);
        ProfilerOptions options;
        options.runs = 1;
        options.cpu_levels = scenario.profile_cpu_levels;
        options.measure_duration = scenario.profile_duration;
        options.seed = kSeed + 1000;
        return OfflineProfiler().Profile(MakeAppSpecByName(kApp), options);
    }();
    return table;
}

/** Campaign options for the planted-bug fixture (see test comments). */
CampaignOptions
FixtureOptions(bool plant_bug)
{
    CampaignOptions options;
    options.app = kApp;
    options.table = &SharedTable();
    options.target_gips = 0.22;
    options.spec.duration_s = 60.0;
    // Park the staged cap one level below AngryBirds' top profiled row
    // (levels {0, 2, 4}): the correct read masks row 4 away, while the
    // off-by-one read believes cap 4 and keeps the full table feasible —
    // a sustained believed-above-advertised divergence.
    options.msm_thermal.min_cap_level = 3;
    options.msm_thermal.levels_per_step = 4;
    // Neuter mismatch self-healing: read-back clamp learning would lower
    // the believed cap onto the advertised one within a couple of cycles,
    // hiding the defect. A huge confirm horizon is a legitimate (if
    // unwise) tuning, not a test-only backdoor.
    options.controller.cap_confirm_cycles = 1 << 20;
    if (plant_bug) {
        options.decorate_platform = [](platform::Platform* inner) {
            return std::unique_ptr<platform::Platform>(
                new CapOffByOnePlatform(inner));
        };
    }
    return options;
}

/** The seeded compound scenario the campaign drives at the fixture. */
ChaosScenario
FixtureScenario()
{
    ChaosScenario scenario;
    scenario.seed = kSeed;
    scenario.actions = {
        {FaultClass::kActuationBusy, 4.0, 3.0, 0.3},
        {FaultClass::kPmuDrop, 8.0, 2.0, 0.3},
        {FaultClass::kThermalCap, 12.0, 44.0, 1.0},
        {FaultClass::kMeterDrop, 20.0, 2.0, 0.3},
        {FaultClass::kActuationBusy, 30.0, 3.0, 0.2},
    };
    return scenario;
}

TEST(ChaosCampaignTest, CleanCampaignHoldsEveryInvariant)
{
    CampaignOptions options;
    options.app = kApp;
    options.table = &SharedTable();
    options.target_gips = 0.20;
    options.spec.duration_s = 40.0;
    ChaosScenario empty;
    empty.seed = 1;
    const CampaignReport report = RunCampaign(options, empty);
    EXPECT_TRUE(report.clean()) << report.first_violation_monitor;
    EXPECT_GT(report.cycles, 0u);
    EXPECT_EQ(report.fault_events, 0u);
    EXPECT_EQ(report.verdicts.size(), 7u);
}

TEST(ChaosCampaignTest, ReportsAreDeterministic)
{
    const CampaignOptions options = FixtureOptions(false);
    const ChaosScenario scenario = FixtureScenario();
    const CampaignReport a = RunCampaign(options, scenario);
    const CampaignReport b = RunCampaign(options, scenario);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.energy_j, b.energy_j);  // bit-identical, not just close
    EXPECT_EQ(a.avg_gips, b.avg_gips);
    EXPECT_EQ(a.fault_events, b.fault_events);
    EXPECT_EQ(a.first_violation_cycle, b.first_violation_cycle);
}

TEST(ChaosCampaignTest, PlantedCapMaskBugIsCaughtByCampaign)
{
    const CampaignReport buggy =
        RunCampaign(FixtureOptions(true), FixtureScenario());
    ASSERT_FALSE(buggy.clean());
    EXPECT_EQ(buggy.first_violation_monitor, "actuation-consistency");
    EXPECT_GE(buggy.first_violation_cycle, 0);

    // Same campaign on the correct platform: every invariant holds, so the
    // verdict is attributable to the planted defect alone.
    const CampaignReport correct =
        RunCampaign(FixtureOptions(false), FixtureScenario());
    EXPECT_TRUE(correct.clean()) << correct.first_violation_monitor;
}

TEST(ChaosCampaignTest, FailureShrinksToMinimalFaultListAndReplays)
{
    const CampaignOptions buggy = FixtureOptions(true);
    const ScenarioOracle oracle = [&buggy](const ChaosScenario& candidate) {
        return !RunCampaign(buggy, candidate).clean();
    };
    const ShrinkResult shrunk = ShrinkScenario(FixtureScenario(), oracle);
    ASSERT_TRUE(shrunk.failed_initially);
    // The acceptance bar: a minimal reproducer of at most 3 fault rules.
    ASSERT_LE(shrunk.scenario.actions.size(), 3u);
    bool has_thermal_cap = false;
    for (const ScenarioAction& action : shrunk.scenario.actions) {
        has_thermal_cap |= action.cls == FaultClass::kThermalCap;
    }
    EXPECT_TRUE(has_thermal_cap);

    // Capture the crash bundle, round-trip it through disk...
    const CampaignReport minimal = RunCampaign(buggy, shrunk.scenario);
    ASSERT_FALSE(minimal.clean());
    CrashBundle bundle;
    bundle.app = kApp;
    bundle.target_gips = buggy.target_gips;
    bundle.profile_seed = kSeed + 1000;
    bundle.profile_runs = 1;
    bundle.device_seed = shrunk.scenario.seed ^ 0x5eedc0de5eedc0deull;
    bundle.cap_confirm_cycles = buggy.controller.cap_confirm_cycles;
    bundle.spec = buggy.spec;
    bundle.scenario = shrunk.scenario;
    bundle.report = minimal;
    const std::string path = "chaos_campaign_test_bundle.json";
    ASSERT_TRUE(WriteCrashBundle(path, bundle));
    const CrashBundleReadResult read = ReadCrashBundle(path);
    std::remove(path.c_str());
    ASSERT_TRUE(read.ok) << read.error;
    ASSERT_EQ(read.bundle.scenario.actions.size(),
              shrunk.scenario.actions.size());
    EXPECT_EQ(read.bundle.report.first_violation_cycle,
              minimal.first_violation_cycle);

    // ...and replay it at --jobs=1 and --jobs=4: the first-violation cycle
    // reproduces bit-identically at any worker count.
    CampaignOptions replay = FixtureOptions(true);
    replay.target_gips = read.bundle.target_gips;
    replay.device_seed = read.bundle.device_seed;
    replay.controller.cap_confirm_cycles = read.bundle.cap_confirm_cycles;
    for (const int jobs : {1, 4}) {
        BatchOptions batch;
        batch.jobs = jobs;
        std::vector<std::function<CampaignReport()>> tasks;
        for (int i = 0; i < 3; ++i) {
            tasks.push_back([&replay, &read] {
                return RunCampaign(replay, read.bundle.scenario);
            });
        }
        const std::vector<CampaignReport> replays =
            BatchRunner(batch).RunOrdered(std::move(tasks));
        for (const CampaignReport& report : replays) {
            EXPECT_EQ(report.first_violation_cycle,
                      minimal.first_violation_cycle)
                << "jobs=" << jobs;
            EXPECT_EQ(report.first_violation_monitor,
                      minimal.first_violation_monitor);
            EXPECT_EQ(report.energy_j, minimal.energy_j);
        }
    }
}

TEST(ChaosCampaignTest, ReportJsonCarriesVerdictsAndTail)
{
    const CampaignReport report =
        RunCampaign(FixtureOptions(true), FixtureScenario());
    const JsonValue json = CampaignReportToJson(report);
    EXPECT_TRUE(json.is_object());
    EXPECT_EQ(SeedFromJson(json.At("seed")), report.seed);
    EXPECT_EQ(json.At("verdicts").items().size(), 7u);
    EXPECT_FALSE(json.At("cycle_tail").items().empty());
    EXPECT_EQ(json.GetString("first_violation_monitor", ""),
              "actuation-consistency");
}

TEST(ChaosCampaignTest, BundleParserRejectsGarbage)
{
    EXPECT_FALSE(ParseCrashBundle("not json").ok);
    EXPECT_FALSE(ParseCrashBundle("{}").ok);
    EXPECT_FALSE(
        ParseCrashBundle("{\"version\": 999, \"app\": \"X\"}").ok);
}

}  // namespace
}  // namespace aeo::chaos
