/**
 * Timing fault injection end to end: the decorator's plan extraction, the
 * determinism of perturbed campaigns, and the headline acceptance fixture —
 * a planted stale-actuation bug (suspend_resync off: the controller steers
 * on the pre-suspend perf window after a 20 s sleep) caught by the
 * stale-actuation monitor in a seeded campaign, ddmin-shrunk to a minimal
 * reproducer, and replayed bit-identically at any worker count.
 */
#include "chaos/timing_fault.h"

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "apps/app_registry.h"
#include "chaos/campaign.h"
#include "chaos/crash_bundle.h"
#include "chaos/scenario_shrinker.h"
#include "core/batch_runner.h"
#include "core/offline_profiler.h"
#include "core/scenarios.h"
#include "gtest/gtest.h"

namespace aeo::chaos {
namespace {

constexpr const char kApp[] = "AngryBirds";
constexpr uint64_t kSeed = 8642;

const ProfileTable&
SharedTable()
{
    static const ProfileTable table = [] {
        const AppScenario scenario = GetAppScenario(kApp);
        ProfilerOptions options;
        options.runs = 1;
        options.cpu_levels = scenario.profile_cpu_levels;
        options.measure_duration = scenario.profile_duration;
        options.seed = kSeed + 1000;
        return OfflineProfiler().Profile(MakeAppSpecByName(kApp), options);
    }();
    return table;
}

/**
 * Campaign options for the stale-actuation fixture. The planted bug is the
 * pre-hardening controller itself: suspend_resync=false consumes the perf
 * window that accumulated before a suspend as if it were one epoch and
 * actuates on it — data stale by the whole sleep.
 */
CampaignOptions
FixtureOptions(bool plant_bug)
{
    CampaignOptions options;
    options.app = kApp;
    options.table = &SharedTable();
    options.target_gips = 0.22;
    options.spec.duration_s = 60.0;
    options.controller.suspend_resync = !plant_bug;
    return options;
}

/**
 * A compound scenario whose essential action is one 20 s suspend window;
 * the rest is decoy noise for the shrinker to strip away.
 */
ChaosScenario
FixtureScenario()
{
    ChaosScenario scenario;
    scenario.seed = kSeed;
    scenario.actions = {
        {FaultClass::kPmuDrop, 4.0, 2.0, 0.3},
        {FaultClass::kSuspendResume, 10.0, 20.0, 1.0},
        {FaultClass::kMeterDrop, 36.0, 2.0, 0.3},
        {FaultClass::kTickJitterStorm, 42.0, 4.0, 0.2},
        {FaultClass::kActuationBusy, 50.0, 3.0, 0.2},
    };
    return scenario;
}

TEST(TimingFaultTest, ExtractTimingPlanKeepsOnlyTimingActions)
{
    const TimingFaultPlan plan = ExtractTimingPlan(FixtureScenario(), 2.0);
    EXPECT_EQ(plan.seed, kSeed);
    EXPECT_DOUBLE_EQ(plan.period_hint_s, 2.0);
    ASSERT_EQ(plan.actions.size(), 2u);
    EXPECT_EQ(plan.actions[0].cls, FaultClass::kSuspendResume);
    EXPECT_EQ(plan.actions[1].cls, FaultClass::kTickJitterStorm);

    ChaosScenario no_timing;
    no_timing.seed = 7;
    no_timing.actions = {{FaultClass::kPmuDrop, 1.0, 1.0, 0.5}};
    EXPECT_TRUE(ExtractTimingPlan(no_timing, 2.0).empty());
}

TEST(TimingFaultTest, IsTimingClassCoversExactlyTheTimingClasses)
{
    EXPECT_TRUE(IsTimingClass(FaultClass::kTickJitterStorm));
    EXPECT_TRUE(IsTimingClass(FaultClass::kTickOverrun));
    EXPECT_TRUE(IsTimingClass(FaultClass::kSuspendResume));
    EXPECT_TRUE(IsTimingClass(FaultClass::kClockSkew));
    EXPECT_FALSE(IsTimingClass(FaultClass::kPmuDrop));
    EXPECT_FALSE(IsTimingClass(FaultClass::kThermalCap));
    EXPECT_FALSE(IsTimingClass(FaultClass::kActuationBusy));
}

TEST(TimingFaultTest, PerturbedCampaignsAreDeterministic)
{
    const CampaignOptions options = FixtureOptions(false);
    const ChaosScenario scenario = FixtureScenario();
    const CampaignReport a = RunCampaign(options, scenario);
    const CampaignReport b = RunCampaign(options, scenario);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.energy_j, b.energy_j);  // bit-identical, not just close
    EXPECT_EQ(a.avg_gips, b.avg_gips);
    EXPECT_EQ(a.suspend_gap_ticks, b.suspend_gap_ticks);
    EXPECT_EQ(a.jitter_ticks, b.jitter_ticks);
    EXPECT_EQ(a.stale_guard_cycles, b.stale_guard_cycles);
}

TEST(TimingFaultTest, HardenedControllerSurvivesTheSuspendScenario)
{
    const CampaignReport report =
        RunCampaign(FixtureOptions(false), FixtureScenario());
    EXPECT_TRUE(report.clean()) << report.first_violation_monitor << ": "
                                << report.first_violation_cycle;
    // The suspend window actually hit the loop...
    EXPECT_GT(report.suspend_gap_ticks, 0u);
    // ...and the stale-data guard quarantined the straddling window.
    EXPECT_GT(report.stale_guard_cycles, 0u);
    EXPECT_FALSE(report.fallback);
}

TEST(TimingFaultTest, PlantedStaleActuationBugIsCaughtShrunkAndReplayed)
{
    // THE PLANTED BUG: suspend_resync off. The campaign must fail on the
    // stale-actuation monitor — the controller actuated on perf data that
    // accumulated before the sleep.
    const CampaignOptions buggy = FixtureOptions(true);
    const CampaignReport report = RunCampaign(buggy, FixtureScenario());
    ASSERT_FALSE(report.clean());
    EXPECT_EQ(report.first_violation_monitor, "stale-actuation");
    EXPECT_GE(report.first_violation_cycle, 0);

    // The hardened controller on the identical scenario holds every
    // invariant, so the verdict is attributable to the planted bug alone.
    const CampaignReport fixed =
        RunCampaign(FixtureOptions(false), FixtureScenario());
    EXPECT_TRUE(fixed.clean()) << fixed.first_violation_monitor;

    // ddmin the five-action scenario against the campaign oracle: the
    // acceptance bar is a reproducer of at most 3 actions (the suspend
    // window alone should survive).
    const ScenarioOracle oracle = [&buggy](const ChaosScenario& candidate) {
        return !RunCampaign(buggy, candidate).clean();
    };
    const ShrinkResult shrunk = ShrinkScenario(FixtureScenario(), oracle);
    ASSERT_TRUE(shrunk.failed_initially);
    ASSERT_LE(shrunk.scenario.actions.size(), 3u);
    bool has_suspend = false;
    for (const ScenarioAction& action : shrunk.scenario.actions) {
        has_suspend |= action.cls == FaultClass::kSuspendResume;
    }
    EXPECT_TRUE(has_suspend);

    // Round-trip the crash bundle through disk...
    const CampaignReport minimal = RunCampaign(buggy, shrunk.scenario);
    ASSERT_FALSE(minimal.clean());
    CrashBundle bundle;
    bundle.app = kApp;
    bundle.target_gips = buggy.target_gips;
    bundle.profile_seed = kSeed + 1000;
    bundle.profile_runs = 1;
    bundle.device_seed = shrunk.scenario.seed ^ 0x5eedc0de5eedc0deull;
    bundle.spec = buggy.spec;
    bundle.scenario = shrunk.scenario;
    bundle.report = minimal;
    const std::string path = "timing_fault_test_bundle.json";
    ASSERT_TRUE(WriteCrashBundle(path, bundle));
    const CrashBundleReadResult read = ReadCrashBundle(path);
    std::remove(path.c_str());
    ASSERT_TRUE(read.ok) << read.error;
    ASSERT_EQ(read.bundle.scenario.actions.size(),
              shrunk.scenario.actions.size());

    // ...and replay it at --jobs=1 and --jobs=4: the first-violation
    // cycle reproduces bit-identically at any worker count.
    CampaignOptions replay = FixtureOptions(true);
    replay.target_gips = read.bundle.target_gips;
    replay.device_seed = read.bundle.device_seed;
    for (const int jobs : {1, 4}) {
        BatchOptions batch;
        batch.jobs = jobs;
        std::vector<std::function<CampaignReport()>> tasks;
        for (int i = 0; i < 3; ++i) {
            tasks.push_back([&replay, &read] {
                return RunCampaign(replay, read.bundle.scenario);
            });
        }
        const std::vector<CampaignReport> replays =
            BatchRunner(batch).RunOrdered(std::move(tasks));
        for (const CampaignReport& run : replays) {
            EXPECT_EQ(run.first_violation_cycle,
                      minimal.first_violation_cycle)
                << "jobs=" << jobs;
            EXPECT_EQ(run.first_violation_monitor,
                      minimal.first_violation_monitor);
            EXPECT_EQ(run.energy_j, minimal.energy_j);
        }
    }
}

}  // namespace
}  // namespace aeo::chaos
