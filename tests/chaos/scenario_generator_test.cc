/** Scenario generation: determinism, spec conformance, JSON round-trips. */
#include "chaos/scenario_generator.h"

#include <cmath>
#include <set>

#include "chaos/scenario.h"
#include "gtest/gtest.h"

namespace aeo::chaos {
namespace {

bool
SameActions(const ChaosScenario& a, const ChaosScenario& b)
{
    if (a.seed != b.seed || a.actions.size() != b.actions.size()) {
        return false;
    }
    for (size_t i = 0; i < a.actions.size(); ++i) {
        if (a.actions[i].cls != b.actions[i].cls ||
            a.actions[i].start_s != b.actions[i].start_s ||
            a.actions[i].duration_s != b.actions[i].duration_s ||
            a.actions[i].intensity != b.actions[i].intensity) {
            return false;
        }
    }
    return true;
}

TEST(ScenarioGeneratorTest, SameSeedSameScenarioBitForBit)
{
    const CampaignSpec spec;
    const ChaosScenario a = GenerateScenario(spec, 42);
    const ChaosScenario b = GenerateScenario(spec, 42);
    EXPECT_TRUE(SameActions(a, b));
    EXPECT_FALSE(a.actions.empty());
}

TEST(ScenarioGeneratorTest, DifferentSeedsDiffer)
{
    const CampaignSpec spec;
    const ChaosScenario a = GenerateScenario(spec, 1);
    const ChaosScenario b = GenerateScenario(spec, 2);
    EXPECT_FALSE(SameActions(a, b));
}

TEST(ScenarioGeneratorTest, RespectsSpecBounds)
{
    CampaignSpec spec;
    spec.duration_s = 90.0;
    spec.max_actions = 12;
    for (uint64_t seed = 1; seed <= 20; ++seed) {
        const ChaosScenario scenario = GenerateScenario(spec, seed);
        EXPECT_LE(scenario.actions.size(),
                  static_cast<size_t>(spec.max_actions));
        double last_start = 0.0;
        for (const ScenarioAction& action : scenario.actions) {
            EXPECT_GE(action.start_s, 0.0);
            EXPECT_LT(action.start_s, spec.duration_s);
            EXPECT_GE(action.duration_s, 0.0);
            EXPECT_GE(action.intensity, 0.0);
            EXPECT_LE(action.intensity, 1.0);
            EXPECT_GE(action.start_s, last_start);  // sorted
            last_start = action.start_s;
        }
    }
}

TEST(ScenarioGeneratorTest, ZeroWeightDisablesClass)
{
    CampaignSpec spec;
    spec.class_weights.assign(kFaultClassCount, 1.0);
    spec.class_weights[static_cast<int>(FaultClass::kThermalCap)] = 0.0;
    spec.class_weights[static_cast<int>(FaultClass::kPathDisappear)] = 0.0;
    for (uint64_t seed = 1; seed <= 20; ++seed) {
        const ChaosScenario scenario = GenerateScenario(spec, seed);
        for (const ScenarioAction& action : scenario.actions) {
            EXPECT_NE(action.cls, FaultClass::kThermalCap);
            EXPECT_NE(action.cls, FaultClass::kPathDisappear);
        }
    }
}

TEST(ScenarioGeneratorTest, AnchoringSnapsBurstsToPhaseBoundaries)
{
    CampaignSpec spec;
    spec.phase_anchor_period_s = 10.0;
    spec.anchor_probability = 1.0;  // every burst anchors
    spec.storm_probability = 0.0;   // storms stagger members off the anchor
    const ChaosScenario scenario = GenerateScenario(spec, 7);
    ASSERT_FALSE(scenario.actions.empty());
    for (const ScenarioAction& action : scenario.actions) {
        const double remainder =
            std::fmod(action.start_s, spec.phase_anchor_period_s);
        EXPECT_NEAR(std::min(remainder,
                             spec.phase_anchor_period_s - remainder),
                    0.0, 1e-9);
    }
}

TEST(ScenarioGeneratorTest, IntensityRampRaisesLateIntensities)
{
    CampaignSpec spec;
    spec.base_intensity = 0.1;
    spec.intensity_ramp = 0.8;
    spec.duration_s = 300.0;
    double early_sum = 0.0, late_sum = 0.0;
    int early_n = 0, late_n = 0;
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        for (const ScenarioAction& action :
             GenerateScenario(spec, seed).actions) {
            if (action.start_s < spec.duration_s / 3.0) {
                early_sum += action.intensity;
                ++early_n;
            } else if (action.start_s > 2.0 * spec.duration_s / 3.0) {
                late_sum += action.intensity;
                ++late_n;
            }
        }
    }
    ASSERT_GT(early_n, 0);
    ASSERT_GT(late_n, 0);
    EXPECT_GT(late_sum / late_n, early_sum / early_n + 0.2);
}

TEST(ScenarioGeneratorTest, ScenarioJsonRoundTrips)
{
    const ChaosScenario scenario = GenerateScenario(CampaignSpec{}, 99);
    const JsonValue json = ScenarioToJson(scenario);
    ChaosScenario decoded;
    std::string error;
    ASSERT_TRUE(ScenarioFromJson(json, &decoded, &error)) << error;
    EXPECT_TRUE(SameActions(scenario, decoded));
    // And byte-identical re-serialization (the crash-bundle property).
    EXPECT_EQ(json.Dump(2), ScenarioToJson(decoded).Dump(2));
}

TEST(ScenarioGeneratorTest, CampaignSpecJsonRoundTrips)
{
    CampaignSpec spec;
    spec.duration_s = 77.0;
    spec.class_weights[2] = 0.25;
    spec.storm_probability = 0.5;
    spec.phase_anchor_period_s = 5.0;
    const JsonValue json = CampaignSpecToJson(spec);
    CampaignSpec decoded;
    std::string error;
    ASSERT_TRUE(CampaignSpecFromJson(json, &decoded, &error)) << error;
    EXPECT_EQ(json.Dump(2), CampaignSpecToJson(decoded).Dump(2));
    EXPECT_EQ(decoded.duration_s, 77.0);
    EXPECT_EQ(decoded.class_weights[2], 0.25);
}

TEST(ScenarioGeneratorTest, RejectsMalformedScenarioJson)
{
    JsonValue bad = JsonValue::MakeObject();
    bad.Set("seed", 1);
    JsonValue actions = JsonValue::MakeArray();
    JsonValue action = JsonValue::MakeObject();
    action.Set("class", "no-such-fault");
    actions.Append(std::move(action));
    bad.Set("actions", std::move(actions));
    ChaosScenario decoded;
    std::string error;
    EXPECT_FALSE(ScenarioFromJson(bad, &decoded, &error));
    EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace aeo::chaos
