/** ddmin shrinking: minimality, determinism, non-failing inputs. */
#include "chaos/scenario_shrinker.h"

#include <algorithm>

#include "gtest/gtest.h"

namespace aeo::chaos {
namespace {

ChaosScenario
ScenarioOf(std::initializer_list<FaultClass> classes)
{
    ChaosScenario scenario;
    scenario.seed = 17;
    double start = 0.0;
    for (const FaultClass cls : classes) {
        ScenarioAction action;
        action.cls = cls;
        action.start_s = start;
        start += 5.0;
        scenario.actions.push_back(action);
    }
    return scenario;
}

size_t
CountOf(const ChaosScenario& scenario, FaultClass cls)
{
    return static_cast<size_t>(
        std::count_if(scenario.actions.begin(), scenario.actions.end(),
                      [cls](const ScenarioAction& action) {
                          return action.cls == cls;
                      }));
}

TEST(ScenarioShrinkerTest, ShrinksToSingleCulpritAction)
{
    const ChaosScenario scenario = ScenarioOf(
        {FaultClass::kActuationBusy, FaultClass::kPmuDrop,
         FaultClass::kMeterDrop, FaultClass::kThermalCap,
         FaultClass::kSilentClamp, FaultClass::kActuationSticky,
         FaultClass::kPathDisappear, FaultClass::kActuationBusy});
    // "Fails" iff a thermal-cap action survives.
    const auto oracle = [](const ChaosScenario& candidate) {
        return CountOf(candidate, FaultClass::kThermalCap) > 0;
    };
    const ShrinkResult result = ShrinkScenario(scenario, oracle);
    EXPECT_TRUE(result.failed_initially);
    ASSERT_EQ(result.scenario.actions.size(), 1u);
    EXPECT_EQ(result.scenario.actions[0].cls, FaultClass::kThermalCap);
    EXPECT_EQ(result.scenario.seed, scenario.seed);
}

TEST(ScenarioShrinkerTest, KeepsInteractingPair)
{
    const ChaosScenario scenario = ScenarioOf(
        {FaultClass::kActuationBusy, FaultClass::kPmuDrop,
         FaultClass::kMeterDrop, FaultClass::kThermalCap,
         FaultClass::kSilentClamp, FaultClass::kActuationSticky});
    // Fails only when BOTH the pmu-drop and the meter-drop survive.
    const auto oracle = [](const ChaosScenario& candidate) {
        return CountOf(candidate, FaultClass::kPmuDrop) > 0 &&
               CountOf(candidate, FaultClass::kMeterDrop) > 0;
    };
    const ShrinkResult result = ShrinkScenario(scenario, oracle);
    EXPECT_TRUE(result.failed_initially);
    ASSERT_EQ(result.scenario.actions.size(), 2u);
    EXPECT_EQ(CountOf(result.scenario, FaultClass::kPmuDrop), 1u);
    EXPECT_EQ(CountOf(result.scenario, FaultClass::kMeterDrop), 1u);
}

TEST(ScenarioShrinkerTest, NonFailingInputReturnsUntouched)
{
    const ChaosScenario scenario =
        ScenarioOf({FaultClass::kActuationBusy, FaultClass::kPmuDrop});
    const ShrinkResult result = ShrinkScenario(
        scenario, [](const ChaosScenario&) { return false; });
    EXPECT_FALSE(result.failed_initially);
    EXPECT_EQ(result.scenario.actions.size(), 2u);
    EXPECT_EQ(result.probes, 1u);  // only the initial check
}

TEST(ScenarioShrinkerTest, DeterministicProbeCount)
{
    const ChaosScenario scenario = ScenarioOf(
        {FaultClass::kActuationBusy, FaultClass::kPmuDrop,
         FaultClass::kMeterDrop, FaultClass::kThermalCap,
         FaultClass::kSilentClamp, FaultClass::kActuationSticky,
         FaultClass::kPathDisappear});
    const auto oracle = [](const ChaosScenario& candidate) {
        return CountOf(candidate, FaultClass::kSilentClamp) > 0;
    };
    const ShrinkResult a = ShrinkScenario(scenario, oracle);
    const ShrinkResult b = ShrinkScenario(scenario, oracle);
    EXPECT_EQ(a.probes, b.probes);
    EXPECT_EQ(a.scenario.actions.size(), b.scenario.actions.size());
    ASSERT_EQ(a.scenario.actions.size(), 1u);
}

TEST(ScenarioShrinkerTest, PreservesActionOrderOfSurvivors)
{
    const ChaosScenario scenario = ScenarioOf(
        {FaultClass::kMeterDrop, FaultClass::kActuationBusy,
         FaultClass::kPmuDrop, FaultClass::kThermalCap});
    const auto oracle = [](const ChaosScenario& candidate) {
        return CountOf(candidate, FaultClass::kMeterDrop) > 0 &&
               CountOf(candidate, FaultClass::kThermalCap) > 0;
    };
    const ShrinkResult result = ShrinkScenario(scenario, oracle);
    ASSERT_EQ(result.scenario.actions.size(), 2u);
    EXPECT_EQ(result.scenario.actions[0].cls, FaultClass::kMeterDrop);
    EXPECT_EQ(result.scenario.actions[1].cls, FaultClass::kThermalCap);
    EXPECT_LT(result.scenario.actions[0].start_s,
              result.scenario.actions[1].start_s);
}

}  // namespace
}  // namespace aeo::chaos
