/**
 * Property tests over seeded suspend/resume interleavings: for dozens of
 * randomized gap schedules, the hardened controller quarantines every
 * suspend-gap cycle, never lets a sleep trip the watchdog or poison the
 * Kalman/drift estimators, and the watchdog re-engagement path still
 * completes with gaps interleaved through the probe phase.
 */
#include "core/online_controller.h"

#include <cmath>
#include <cstdint>
#include <deque>
#include <functional>
#include <random>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "platform/clock.h"
#include "platform/fake_platform.h"

namespace aeo {
namespace {

using platform::FakePlatform;

/** Forwards to the fake's scheduler, adding one scripted delay per tick. */
class DelayingScheduler final : public platform::TickScheduler {
  public:
    explicit DelayingScheduler(platform::TickScheduler* base) : base_(base) {}

    platform::TickHandle ScheduleTick(SimTime when,
                                      std::function<void()> fn) override
    {
        SimTime delay = SimTime::Zero();
        if (!delays_.empty()) {
            delay = delays_.front();
            delays_.pop_front();
        }
        return base_->ScheduleTick(when + delay, std::move(fn));
    }

    void CancelTick(platform::TickHandle handle) override
    {
        base_->CancelTick(handle);
    }

    void PushDelay(SimTime delay) { delays_.push_back(delay); }

  private:
    platform::TickScheduler* base_;
    std::deque<SimTime> delays_;
};

class GappyPlatform final : public platform::Platform {
  public:
    GappyPlatform() : scheduler_(&fake_.ticks()) {}

    Simulator& sim() override { return fake_.sim(); }
    platform::Clock& clock() override { return fake_.clock(); }
    platform::TickScheduler& ticks() override { return scheduler_; }
    platform::PerfReader& perf() override { return fake_.perf(); }
    platform::Actuator& actuator() override { return fake_.actuator(); }
    platform::GovernorControl& governors() override
    {
        return fake_.governors();
    }
    platform::Thermals& thermals() override { return fake_.thermals(); }
    int max_cpu_level() const override { return fake_.max_cpu_level(); }
    void SetControllerOverheadPower(double mw) override
    {
        fake_.SetControllerOverheadPower(mw);
    }
    void Sync() override { fake_.Sync(); }

    FakePlatform& fake() { return fake_; }
    DelayingScheduler& delays() { return scheduler_; }

  private:
    FakePlatform fake_;
    DelayingScheduler scheduler_;
};

ProfileTable
ThreeRowTable()
{
    std::vector<ProfileEntry> entries = {
        {SystemConfig{0, kBwDefaultGovernor}, 1.0, Milliwatts(1000.0)},
        {SystemConfig{1, kBwDefaultGovernor}, 1.3, Milliwatts(1300.0)},
        {SystemConfig{2, kBwDefaultGovernor}, 1.6, Milliwatts(1700.0)},
    };
    return ProfileTable("fake", std::move(entries), 0.1);
}

TEST(SuspendResumePropertyTest, RandomGapSchedulesNeverPoisonTheLoop)
{
    std::mt19937_64 rng(0xdead5eed2026ull);
    std::uniform_real_distribution<double> gap_s(6.5, 60.0);
    std::uniform_real_distribution<double> coin(0.0, 1.0);

    for (int trial = 0; trial < 24; ++trial) {
        GappyPlatform plat;
        constexpr int kTicks = 14;
        int gap_count = 0;
        for (int i = 0; i < kTicks; ++i) {
            // ~1 in 3 ticks sleeps through; the rest are on time. On the
            // 2 s cycle any delay >= 6 s is a suspend gap.
            if (coin(rng) < 0.35) {
                ++gap_count;
                plat.delays().PushDelay(SimTime::FromSecondsF(gap_s(rng)));
            } else {
                plat.delays().PushDelay(SimTime::Zero());
            }
            plat.fake().PushPerfWindow(0.1, 100);
        }
        ControllerConfig config;
        config.target_gips = 0.1;
        OnlineController controller(&plat, ThreeRowTable(), config);
        controller.Start();
        plat.sim().RunUntil(SimTime::FromSeconds(20 * 60));
        controller.Stop();

        // Every suspend-gap cycle was quarantined: stale guard up, cycle
        // degraded, estimate held; and sleeps alone never tripped the
        // watchdog or the storm fallback.
        SCOPED_TRACE(trial);
        EXPECT_FALSE(controller.fallback_engaged());
        EXPECT_EQ(controller.suspend_gap_cycle_count(),
                  static_cast<uint64_t>(gap_count));
        uint64_t stale = 0;
        for (const ControlCycleRecord& record : controller.history()) {
            if (record.tick_kind == platform::TickKind::kSuspendGap) {
                EXPECT_TRUE(record.stale_guard);
                EXPECT_TRUE(record.degraded);
                ++stale;
            }
            EXPECT_TRUE(std::isfinite(record.base_speed_estimate));
            EXPECT_GT(record.base_speed_estimate, 0.0);
        }
        EXPECT_EQ(controller.stale_guard_cycle_count(), stale);
        // Drift corrections stay sane: gap-straddling residuals were
        // quarantined, so no correction can have run away.
        for (size_t row = 0; row < controller.table().entries().size();
             ++row) {
            EXPECT_TRUE(
                std::isfinite(controller.drift().PowerCorrection(row)));
            EXPECT_TRUE(
                std::isfinite(controller.drift().SpeedupCorrection(row)));
            EXPECT_GT(controller.drift().PowerCorrection(row), 0.0);
            EXPECT_GT(controller.drift().SpeedupCorrection(row), 0.0);
        }
    }
}

TEST(SuspendResumePropertyTest, ReengagementCompletesAcrossGapSchedules)
{
    std::mt19937_64 rng(0xbadc0ffee5eedull);
    std::uniform_real_distribution<double> gap_s(6.5, 30.0);
    std::uniform_real_distribution<double> coin(0.0, 1.0);

    for (int trial = 0; trial < 12; ++trial) {
        GappyPlatform plat;
        // A healthy first cycle, then the watchdog trips on consecutive
        // failed applies; the probe phase runs under a random gap schedule.
        // The first two ticks are on time so the trip itself is
        // deterministic — the randomness exercises the probes after it.
        plat.delays().PushDelay(SimTime::Zero());
        plat.delays().PushDelay(SimTime::Zero());
        for (int i = 0; i < 38; ++i) {
            plat.fake().PushPerfWindow(0.1, 100);
            if (coin(rng) < 0.3) {
                plat.delays().PushDelay(SimTime::FromSecondsF(gap_s(rng)));
            } else {
                plat.delays().PushDelay(SimTime::Zero());
            }
        }
        ControllerConfig config;
        config.target_gips = 0.1;
        config.watchdog_threshold = 2;
        config.reengage_probe_cycles = 2;
        config.reengage_successes = 2;
        OnlineController controller(&plat, ThreeRowTable(), config);
        controller.Start();

        // Trip the watchdog after the first healthy cycle. Re-engagement
        // later resets the failure tracking, so the trip happens once and
        // the rest of the run exercises probing under the gap schedule.
        plat.sim().RunUntil(SimTime::FromSeconds(3));
        plat.fake().fake_actuator().ScriptConsecutiveFailures(2);
        plat.sim().RunUntil(SimTime::FromSeconds(20 * 60));
        controller.Stop();

        // Degraded mode is never a silent grave, gaps or not: the probes
        // eventually re-engage control (reengage_count >= 1 also proves
        // the fallback actually happened).
        SCOPED_TRACE(trial);
        EXPECT_GE(controller.reengage_count(), 1u);
        EXPECT_FALSE(controller.fallback_engaged());
    }
}

}  // namespace
}  // namespace aeo
