/**
 * The invariant-monitor catalogue test. Every InvariantMonitor subclass
 * must be exercised here BY CLASS NAME — the aeo-lint `monitor-catalogue`
 * rule fails the build when a subclass in src/ never appears in this file,
 * so a new monitor cannot ship without a behavioural test.
 */
#include "chaos/invariant_monitor.h"

#include <memory>
#include <vector>

#include "gtest/gtest.h"

namespace aeo::chaos {
namespace {

/** A healthy cycle: on-target, verified consistent deliveries, NORMAL. */
struct CycleFixture {
    ControlCycleRecord record;
    std::vector<platform::DwellDelivery> deliveries;
    CycleContext context;

    CycleFixture()
    {
        record.time_s = 2.0;
        record.measured_gips = 1.0;
        record.temp_c = 40.0;
        platform::DwellDelivery dwell;
        dwell.cpu.attempted = true;
        dwell.cpu.write_ok = true;
        dwell.cpu.verified = true;
        dwell.cpu.requested_level = 10;
        dwell.cpu.delivered_level = 10;
        deliveries.push_back(dwell);
        context.cycle_index = 3;
        context.record = &record;
        context.deliveries = &deliveries;
        context.state = ControllerState::kNormal;
        context.target_gips = 1.0;
        context.max_cpu_level = 17;
    }
};

TEST(InvariantMonitorTest, CatalogueHasExactlyTheDocumentedMonitors)
{
    const auto monitors = MakeDefaultMonitors(MonitorConfig{});
    ASSERT_EQ(monitors.size(), 7u);
    EXPECT_EQ(monitors[0]->name(), "thermal-envelope");
    EXPECT_EQ(monitors[1]->name(), "qos-violation-run");
    EXPECT_EQ(monitors[2]->name(), "actuation-consistency");
    EXPECT_EQ(monitors[3]->name(), "state-legality");
    EXPECT_EQ(monitors[4]->name(), "watchdog-liveness");
    EXPECT_EQ(monitors[5]->name(), "deadline-miss-run");
    EXPECT_EQ(monitors[6]->name(), "stale-actuation");
}

TEST(InvariantMonitorTest, ThermalEnvelopeMonitorFiresAboveLimitOnly)
{
    MonitorConfig config;
    config.thermal_limit_c = 55.0;
    ThermalEnvelopeMonitor monitor(config);
    CycleFixture fixture;
    monitor.OnCycle(fixture.context);
    EXPECT_TRUE(monitor.ok());

    fixture.record.temp_c = 55.1;
    monitor.OnCycle(fixture.context);
    EXPECT_FALSE(monitor.ok());
    EXPECT_EQ(monitor.first_violation_cycle(), 3);
    EXPECT_EQ(monitor.violations().size(), 1u);
}

TEST(InvariantMonitorTest, QosViolationRunMonitorBoundsHealthyShortfallRuns)
{
    MonitorConfig config;
    config.max_qos_violation_run = 3;
    config.qos_tolerance_frac = 0.25;
    QosViolationRunMonitor monitor(config);
    CycleFixture fixture;
    fixture.record.measured_gips = 0.5;  // 50% under a 1.0 target

    // Three consecutive shortfall cycles: at the bound, not over it.
    for (uint64_t i = 0; i < 3; ++i) {
        fixture.context.cycle_index = i;
        monitor.OnCycle(fixture.context);
    }
    EXPECT_TRUE(monitor.ok());

    // The fourth breaks the bound; one report per run, not per cycle.
    for (uint64_t i = 3; i < 8; ++i) {
        fixture.context.cycle_index = i;
        monitor.OnCycle(fixture.context);
    }
    EXPECT_EQ(monitor.violations().size(), 1u);
    EXPECT_EQ(monitor.first_violation_cycle(), 3);
}

TEST(InvariantMonitorTest, QosViolationRunMonitorSkipsDegradedAndSafeMode)
{
    MonitorConfig config;
    config.max_qos_violation_run = 2;
    QosViolationRunMonitor monitor(config);
    CycleFixture fixture;
    fixture.record.measured_gips = 0.1;

    fixture.record.safe_mode = true;  // declared unreachable: not a lie
    for (uint64_t i = 0; i < 10; ++i) {
        fixture.context.cycle_index = i;
        monitor.OnCycle(fixture.context);
    }
    EXPECT_TRUE(monitor.ok());

    fixture.record.safe_mode = false;
    fixture.record.degraded = true;  // no trustworthy measurement
    for (uint64_t i = 10; i < 20; ++i) {
        fixture.context.cycle_index = i;
        monitor.OnCycle(fixture.context);
    }
    EXPECT_TRUE(monitor.ok());
}

TEST(InvariantMonitorTest, ActuationConsistencyMonitorCatchesIncoherence)
{
    ActuationConsistencyMonitor monitor;
    CycleFixture fixture;
    monitor.OnCycle(fixture.context);
    EXPECT_TRUE(monitor.ok());

    // Delivered above requested: read-back and actuation disagree upward.
    fixture.deliveries[0].cpu.delivered_level = 12;
    fixture.context.cycle_index = 4;
    monitor.OnCycle(fixture.context);
    EXPECT_EQ(monitor.violations().size(), 1u);
    EXPECT_EQ(monitor.first_violation_cycle(), 4);

    // Verified although the write failed.
    fixture.deliveries[0].cpu.delivered_level = 10;
    fixture.deliveries[0].cpu.write_ok = false;
    monitor.OnCycle(fixture.context);
    EXPECT_EQ(monitor.violations().size(), 2u);

    // A request above the platform ceiling.
    fixture.deliveries[0].cpu.write_ok = true;
    fixture.deliveries[0].cpu.requested_level = 18;
    fixture.deliveries[0].cpu.delivered_level = 17;
    monitor.OnCycle(fixture.context);
    EXPECT_GE(monitor.violations().size(), 3u);
}

TEST(InvariantMonitorTest, ActuationConsistencyMonitorFlagsCapBeliefDrift)
{
    MonitorConfig config;
    config.cap_belief_grace_cycles = 2;
    ActuationConsistencyMonitor monitor(config);
    CycleFixture fixture;
    fixture.record.cpu_cap_level = 4;       // controller's belief...
    fixture.context.true_cpu_cap_level = 3; // ...vs the kernel's cap

    // Two divergent cycles are a tolerated read/poll race.
    for (uint64_t i = 0; i < 2; ++i) {
        fixture.context.cycle_index = i;
        monitor.OnCycle(fixture.context);
    }
    EXPECT_TRUE(monitor.ok());

    // The third makes it a mask bug; one report per divergence episode.
    for (uint64_t i = 2; i < 6; ++i) {
        fixture.context.cycle_index = i;
        monitor.OnCycle(fixture.context);
    }
    EXPECT_EQ(monitor.violations().size(), 1u);
    EXPECT_EQ(monitor.first_violation_cycle(), 2);
}

TEST(InvariantMonitorTest, ActuationConsistencyMonitorToleratesBenignCaps)
{
    ActuationConsistencyMonitor monitor{MonitorConfig{}};
    CycleFixture fixture;

    // Believed below advertised: conservative clamp learning, not a bug.
    fixture.record.cpu_cap_level = 2;
    fixture.context.true_cpu_cap_level = 5;
    for (uint64_t i = 0; i < 10; ++i) {
        fixture.context.cycle_index = i;
        monitor.OnCycle(fixture.context);
    }
    EXPECT_TRUE(monitor.ok());

    // Uncapped belief (-1) while ground truth is absent (kNoCapLevel):
    // both normalize to the platform ceiling and agree.
    fixture.record.cpu_cap_level = -1;
    fixture.context.true_cpu_cap_level = platform::kNoCapLevel;
    monitor.OnCycle(fixture.context);
    EXPECT_TRUE(monitor.ok());

    // A one-cycle stale-high read during a staged descent resets cleanly.
    fixture.record.cpu_cap_level = 9;
    fixture.context.true_cpu_cap_level = 5;
    monitor.OnCycle(fixture.context);
    fixture.record.cpu_cap_level = 5;
    monitor.OnCycle(fixture.context);
    fixture.record.cpu_cap_level = 9;
    fixture.context.true_cpu_cap_level = 5;
    monitor.OnCycle(fixture.context);
    EXPECT_TRUE(monitor.ok());
}

TEST(InvariantMonitorTest, StateLegalityMonitorTracksIllegalDispatches)
{
    StateLegalityMonitor monitor;
    CycleFixture fixture;
    monitor.OnCycle(fixture.context);
    EXPECT_TRUE(monitor.ok());

    fixture.context.illegal_dispatches = 1;
    fixture.context.cycle_index = 5;
    monitor.OnCycle(fixture.context);
    EXPECT_EQ(monitor.violations().size(), 1u);

    // Counter steady again: no new report.
    fixture.context.cycle_index = 6;
    monitor.OnCycle(fixture.context);
    EXPECT_EQ(monitor.violations().size(), 1u);
}

TEST(InvariantMonitorTest, StateLegalityMonitorChecksFallbackFlagAgreement)
{
    StateLegalityMonitor monitor;
    CycleFixture fixture;
    fixture.context.state = ControllerState::kProbe;
    fixture.context.fallback_engaged = false;  // flag disagrees with state
    monitor.OnCycle(fixture.context);
    EXPECT_FALSE(monitor.ok());

    StateLegalityMonitor agree;
    fixture.context.fallback_engaged = true;
    agree.OnCycle(fixture.context);
    EXPECT_TRUE(agree.ok());
}

TEST(InvariantMonitorTest, WatchdogLivenessMonitorWantsProbesAfterFallback)
{
    MonitorConfig config;
    config.liveness_grace_periods = 2.0;
    WatchdogLivenessMonitor monitor(config);
    CycleFixture fixture;
    fixture.context.fallback_engaged = true;
    fixture.context.cycle_index = 10;
    fixture.record.time_s = 20.0;
    monitor.OnCycle(fixture.context);

    FinishContext finish;
    finish.fallback_engaged = true;
    finish.reengage_enabled = true;
    finish.elapsed_s = 120.0;     // 100 s in fallback...
    finish.probe_period_s = 10.0; // ...10 probe periods due...
    finish.probes = 0;            // ...and not one probe: a silent grave.
    monitor.OnFinish(finish);
    EXPECT_FALSE(monitor.ok());
    EXPECT_EQ(monitor.first_violation_cycle(), 10);
}

TEST(InvariantMonitorTest, WatchdogLivenessMonitorToleratesProbedFallback)
{
    WatchdogLivenessMonitor monitor{MonitorConfig{}};
    CycleFixture fixture;
    fixture.context.fallback_engaged = true;
    monitor.OnCycle(fixture.context);

    FinishContext finish;
    finish.fallback_engaged = true;
    finish.reengage_enabled = true;
    finish.elapsed_s = 120.0;
    finish.probe_period_s = 10.0;
    finish.probes = 9;
    monitor.OnFinish(finish);
    EXPECT_TRUE(monitor.ok());

    // With re-engagement configured off, a terminal fallback is fine too.
    WatchdogLivenessMonitor terminal{MonitorConfig{}};
    terminal.OnCycle(fixture.context);
    FinishContext no_reengage = finish;
    no_reengage.reengage_enabled = false;
    no_reengage.probes = 0;
    terminal.OnFinish(no_reengage);
    EXPECT_TRUE(terminal.ok());
}

TEST(InvariantMonitorTest, DeadlineMissRunMonitorBoundsMissStorms)
{
    MonitorConfig config;
    config.max_deadline_miss_run = 3;
    DeadlineMissRunMonitor monitor(config);
    CycleFixture fixture;
    fixture.record.tick_kind = platform::TickKind::kMissed;
    fixture.record.tick_lateness_s = 1.5;

    // Three consecutive missed cycles: at the bound, not over it.
    for (uint64_t i = 0; i < 3; ++i) {
        fixture.context.cycle_index = i;
        monitor.OnCycle(fixture.context);
    }
    EXPECT_TRUE(monitor.ok());

    // The fourth breaks the bound; one report per storm, not per cycle.
    for (uint64_t i = 3; i < 8; ++i) {
        fixture.context.cycle_index = i;
        monitor.OnCycle(fixture.context);
    }
    EXPECT_EQ(monitor.violations().size(), 1u);
    EXPECT_EQ(monitor.first_violation_cycle(), 3);
}

TEST(InvariantMonitorTest, DeadlineMissRunMonitorResetsOnFallbackOrOnTime)
{
    MonitorConfig config;
    config.max_deadline_miss_run = 2;
    DeadlineMissRunMonitor monitor(config);
    CycleFixture fixture;
    fixture.record.tick_kind = platform::TickKind::kMissed;

    // Two misses, then a fallback: the controller reacted inside the
    // bound, which is exactly the behaviour the invariant demands.
    monitor.OnCycle(fixture.context);
    monitor.OnCycle(fixture.context);
    fixture.context.fallback_engaged = true;
    monitor.OnCycle(fixture.context);
    fixture.context.fallback_engaged = false;

    // Two more misses separated by an on-time tick: runs never exceed 2.
    monitor.OnCycle(fixture.context);
    monitor.OnCycle(fixture.context);
    fixture.record.tick_kind = platform::TickKind::kOnTime;
    monitor.OnCycle(fixture.context);
    fixture.record.tick_kind = platform::TickKind::kMissed;
    monitor.OnCycle(fixture.context);
    EXPECT_TRUE(monitor.ok());
}

TEST(InvariantMonitorTest, StaleActuationMonitorCatchesPostSuspendSteering)
{
    StaleActuationMonitor monitor;
    CycleFixture fixture;
    fixture.record.tick_kind = platform::TickKind::kSuspendGap;
    fixture.record.tick_lateness_s = 30.0;
    fixture.record.epochs_skipped = 15;
    fixture.record.perf_samples = 40;

    // Quarantined resume: stale guard engaged, measurement not steered on.
    fixture.record.stale_guard = true;
    fixture.record.degraded = true;
    monitor.OnCycle(fixture.context);
    EXPECT_TRUE(monitor.ok());

    // The bug: the pre-suspend perf window steered the actuation.
    fixture.record.stale_guard = false;
    fixture.record.degraded = false;
    fixture.context.cycle_index = 7;
    monitor.OnCycle(fixture.context);
    EXPECT_FALSE(monitor.ok());
    EXPECT_EQ(monitor.first_violation_cycle(), 7);
}

TEST(InvariantMonitorTest, StaleActuationMonitorIgnoresOrdinaryCycles)
{
    StaleActuationMonitor monitor;
    CycleFixture fixture;
    fixture.record.perf_samples = 40;

    // On-time and merely-late cycles are not suspend gaps.
    fixture.record.tick_kind = platform::TickKind::kOnTime;
    monitor.OnCycle(fixture.context);
    fixture.record.tick_kind = platform::TickKind::kMissed;
    monitor.OnCycle(fixture.context);

    // A suspend-gap resume with an empty perf window has nothing stale.
    fixture.record.tick_kind = platform::TickKind::kSuspendGap;
    fixture.record.perf_samples = 0;
    monitor.OnCycle(fixture.context);

    // Fallback cycles do not actuate at all.
    fixture.record.perf_samples = 40;
    fixture.context.fallback_engaged = true;
    monitor.OnCycle(fixture.context);
    EXPECT_TRUE(monitor.ok());
}

}  // namespace
}  // namespace aeo::chaos
