/**
 * Property test: the controller mode machine under chaos-shaped event
 * storms. Every storm step is drawn from the events the transition table
 * declares legal in the current state, so a correct machine must accept
 * the whole walk without a single illegal-dispatch increment, and its
 * fallback flag must agree with PROBE/FALLBACK_STOCK at every step.
 */
#include <vector>

#include "chaos/scenario_generator.h"
#include "core/controller_state_machine.h"
#include "gtest/gtest.h"

namespace aeo::chaos {
namespace {

constexpr int kStormLength = 400;
constexpr uint64_t kSeeds = 50;

TEST(StateMachineStormTest, LegalStormsNeverCountIllegalDispatches)
{
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
        const StateMachineOptions options;
        const std::vector<ControllerEvent> storm =
            GenerateControllerEventStorm(seed, options, kStormLength);
        ASSERT_EQ(storm.size(), static_cast<size_t>(kStormLength));
        ControllerStateMachine machine(options);
        for (const ControllerEvent event : storm) {
            const StateTransition transition = machine.Dispatch(event);
            EXPECT_TRUE(transition.legal)
                << "seed " << seed << ": "
                << ControllerEventName(event) << " illegal in "
                << ControllerStateName(machine.state());
        }
        EXPECT_EQ(machine.illegal_dispatch_count(), 0u) << "seed " << seed;
    }
}

TEST(StateMachineStormTest, FallbackFlagAlwaysMatchesState)
{
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
        const StateMachineOptions options;
        ControllerStateMachine machine(options);
        for (const ControllerEvent event :
             GenerateControllerEventStorm(seed, options, kStormLength)) {
            machine.Dispatch(event);
            const bool fallback_state =
                machine.state() == ControllerState::kProbe ||
                machine.state() == ControllerState::kFallbackStock;
            EXPECT_EQ(machine.fallback_engaged(), fallback_state);
        }
    }
}

TEST(StateMachineStormTest, StormsAreDeterministicInSeed)
{
    const StateMachineOptions options;
    const std::vector<ControllerEvent> a =
        GenerateControllerEventStorm(7, options, kStormLength);
    const std::vector<ControllerEvent> b =
        GenerateControllerEventStorm(7, options, kStormLength);
    EXPECT_EQ(a, b);
    const std::vector<ControllerEvent> c =
        GenerateControllerEventStorm(8, options, kStormLength);
    EXPECT_NE(a, c);
}

TEST(StateMachineStormTest, StormsWithoutReengagementStayLegal)
{
    StateMachineOptions options;
    options.reengage = false;  // PROBE unreachable; trips land terminal
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        ControllerStateMachine machine(options);
        for (const ControllerEvent event :
             GenerateControllerEventStorm(seed, options, kStormLength)) {
            machine.Dispatch(event);
        }
        EXPECT_EQ(machine.illegal_dispatch_count(), 0u) << "seed " << seed;
    }
}

TEST(StateMachineStormTest, StormsVisitTheAdversarialStates)
{
    // The bias toward mismatch/watchdog/probe events must actually drive
    // the walk through the fallback-and-recovery cycle, or the property
    // tests above would only ever exercise the happy path.
    bool saw_probe = false;
    bool saw_normal_again = false;
    const StateMachineOptions options;
    for (uint64_t seed = 1; seed <= kSeeds && !saw_normal_again; ++seed) {
        ControllerStateMachine machine(options);
        for (const ControllerEvent event :
             GenerateControllerEventStorm(seed, options, kStormLength)) {
            machine.Dispatch(event);
            if (machine.state() == ControllerState::kProbe) {
                saw_probe = true;
            } else if (saw_probe &&
                       machine.state() == ControllerState::kNormal) {
                saw_normal_again = true;
            }
        }
    }
    EXPECT_TRUE(saw_probe);
    EXPECT_TRUE(saw_normal_again);
}

}  // namespace
}  // namespace aeo::chaos
