#include <gtest/gtest.h>

#include "common/logging.h"

int
main(int argc, char** argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    // Keep test output clean: only warnings and worse.
    aeo::SetLogLevel(aeo::LogLevel::kWarn);
    return RUN_ALL_TESTS();
}
