/**
 * @file
 * Pins the FaultInjector edge cases the chaos engine leans on: rule
 * lifecycle (handles, removal, prefix repair), the max_triggers budget
 * surviving RepairAll, and overlapping rules on one sysfs node applying
 * in registration order once earlier rules are spent or removed.
 */
#include "fault/fault_injector.h"

#include <gtest/gtest.h>

namespace aeo {
namespace {

FaultRule
AlwaysRule(const std::string& prefix, FaultErrc errc)
{
    FaultRule rule;
    rule.path_prefix = prefix;
    rule.fail_probability = 1.0;
    rule.errc = errc;
    return rule;
}

TEST(FaultRuleEdgeTest, AddRuleReturnsSequentialHandles)
{
    FaultInjector injector(1);
    EXPECT_EQ(injector.AddRule(AlwaysRule("/sys/a", FaultErrc::kBusy)), 0);
    EXPECT_EQ(injector.AddRule(AlwaysRule("/sys/b", FaultErrc::kIo)), 1);
    injector.Clear();
    EXPECT_EQ(injector.AddRule(AlwaysRule("/sys/c", FaultErrc::kBusy)), 0);
}

TEST(FaultRuleEdgeTest, RepairAllDoesNotResurrectSpentTriggers)
{
    FaultInjector injector(3);
    FaultRule rule = AlwaysRule("/sys/flaky", FaultErrc::kBusy);
    rule.duration = FaultDuration::kSticky;
    rule.max_triggers = 1;
    injector.AddRule(rule);

    // The single budgeted trigger fires and latches the node.
    EXPECT_EQ(injector.OnWrite("/sys/flaky/node").errc, FaultErrc::kBusy);
    EXPECT_EQ(injector.OnWrite("/sys/flaky/node").errc, FaultErrc::kBusy);

    // Repair heals the node but must not refill the rule's budget.
    injector.RepairAll();
    for (int i = 0; i < 50; ++i) {
        EXPECT_TRUE(injector.OnWrite("/sys/flaky/node").ok()) << i;
    }
}

TEST(FaultRuleEdgeTest, OverlappingRulesApplyInRegistrationOrder)
{
    FaultInjector injector(5);
    injector.AddRule(AlwaysRule("/sys/node", FaultErrc::kBusy));
    injector.AddRule(AlwaysRule("/sys/node", FaultErrc::kIo));
    // Both rules cover the path; the earlier registration wins.
    EXPECT_EQ(injector.OnWrite("/sys/node/x").errc, FaultErrc::kBusy);
}

TEST(FaultRuleEdgeTest, SpentRuleDoesNotShadowLaterOverlappingRule)
{
    FaultInjector injector(7);
    FaultRule first = AlwaysRule("/sys/node", FaultErrc::kBusy);
    first.max_triggers = 1;
    injector.AddRule(first);
    injector.AddRule(AlwaysRule("/sys/node", FaultErrc::kIo));

    // First op consumes the first rule's budget...
    EXPECT_EQ(injector.OnWrite("/sys/node/x").errc, FaultErrc::kBusy);
    // ...after which the second rule takes over instead of the spent rule
    // swallowing the match and reporting a clean node.
    EXPECT_EQ(injector.OnWrite("/sys/node/x").errc, FaultErrc::kIo);
    EXPECT_EQ(injector.OnRead("/sys/node/x").errc, FaultErrc::kIo);
}

TEST(FaultRuleEdgeTest, RemovedRuleStopsFiringButKeepsLatchedState)
{
    FaultInjector injector(11);
    FaultRule rule = AlwaysRule("/sys/node", FaultErrc::kPerm);
    rule.duration = FaultDuration::kSticky;
    const int handle = injector.AddRule(rule);

    EXPECT_EQ(injector.OnWrite("/sys/node/x").errc, FaultErrc::kPerm);
    injector.RemoveRule(handle);

    // The latch made by the rule survives its removal...
    EXPECT_EQ(injector.OnWrite("/sys/node/x").errc, FaultErrc::kPerm);
    // ...but un-latched paths under the prefix are clean again.
    EXPECT_TRUE(injector.OnWrite("/sys/node/y").ok());

    injector.Repair("/sys/node/x");
    EXPECT_TRUE(injector.OnWrite("/sys/node/x").ok());
    // Stale handles are ignored rather than hitting a neighbour.
    injector.RemoveRule(99);
    injector.RemoveRule(-1);
}

TEST(FaultRuleEdgeTest, RemovedRuleUnmasksLaterOverlappingRule)
{
    FaultInjector injector(13);
    const int busy = injector.AddRule(AlwaysRule("/sys/node", FaultErrc::kBusy));
    injector.AddRule(AlwaysRule("/sys/node", FaultErrc::kIo));

    EXPECT_EQ(injector.OnWrite("/sys/node/x").errc, FaultErrc::kBusy);
    injector.RemoveRule(busy);
    EXPECT_EQ(injector.OnWrite("/sys/node/x").errc, FaultErrc::kIo);
}

TEST(FaultRuleEdgeTest, RepairPrefixHealsOnlyMatchingPaths)
{
    FaultInjector injector(17);
    FaultRule cpu = AlwaysRule("/sys/cpu", FaultErrc::kBusy);
    cpu.duration = FaultDuration::kSticky;
    cpu.max_triggers = 1;
    injector.AddRule(cpu);
    FaultRule gpu;
    gpu.path_prefix = "/sys/gpu";
    gpu.disappear_probability = 1.0;
    gpu.max_triggers = 1;
    injector.AddRule(gpu);

    EXPECT_EQ(injector.OnWrite("/sys/cpu/freq").errc, FaultErrc::kBusy);
    EXPECT_EQ(injector.OnRead("/sys/gpu/clk").errc, FaultErrc::kNoEnt);
    EXPECT_TRUE(injector.IsGone("/sys/gpu/clk"));

    injector.RepairPrefix("/sys/cpu");
    EXPECT_TRUE(injector.OnWrite("/sys/cpu/freq").ok());
    // The gpu latch is outside the repaired prefix and stays down.
    EXPECT_EQ(injector.OnRead("/sys/gpu/clk").errc, FaultErrc::kNoEnt);

    injector.RepairPrefix("/sys/gpu");
    EXPECT_FALSE(injector.IsGone("/sys/gpu/clk"));
    EXPECT_TRUE(injector.OnRead("/sys/gpu/clk").ok());
}

}  // namespace
}  // namespace aeo
