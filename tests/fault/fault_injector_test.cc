#include "fault/fault_injector.h"

#include <gtest/gtest.h>

namespace aeo {
namespace {

FaultRule
BusyRule(const std::string& prefix, double probability)
{
    FaultRule rule;
    rule.path_prefix = prefix;
    rule.fail_probability = probability;
    rule.errc = FaultErrc::kBusy;
    return rule;
}

TEST(FaultInjectorTest, CleanWithoutRules)
{
    FaultInjector injector(1);
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(injector.OnRead("/sys/anything").ok());
        EXPECT_TRUE(injector.OnWrite("/sys/anything").ok());
    }
    EXPECT_EQ(injector.op_count(), 200u);
    EXPECT_TRUE(injector.trace().empty());
}

TEST(FaultInjectorTest, OnlyMatchingPrefixIsAffected)
{
    FaultInjector injector(1);
    injector.AddRule(BusyRule("/sys/flaky", 1.0));
    EXPECT_EQ(injector.OnWrite("/sys/flaky/node").errc, FaultErrc::kBusy);
    EXPECT_TRUE(injector.OnWrite("/sys/solid/node").ok());
}

TEST(FaultInjectorTest, SameSeedSameOpsGiveIdenticalTraces)
{
    const auto run = [](uint64_t seed) {
        FaultInjector injector(seed);
        FaultRule rule = BusyRule("/sys/a", 0.3);
        rule.stale_probability = 0.2;
        rule.latency_spike_probability = 0.1;
        injector.AddRule(rule);
        injector.AddRule(BusyRule("/sys/b", 0.5));
        for (int i = 0; i < 500; ++i) {
            injector.OnRead(i % 2 == 0 ? "/sys/a/x" : "/sys/b/y");
            injector.OnWrite(i % 3 == 0 ? "/sys/a/x" : "/sys/b/y");
        }
        return injector.trace();
    };
    const std::vector<FaultEvent> first = run(42);
    const std::vector<FaultEvent> second = run(42);
    ASSERT_FALSE(first.empty());
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i], second[i]) << "trace diverges at event " << i;
    }
    // A different seed produces a different trace (overwhelmingly likely
    // over 1000 operations at these probabilities).
    EXPECT_FALSE(run(43) == first);
}

TEST(FaultInjectorTest, TransientFaultsClearOnTheirOwn)
{
    FaultInjector injector(7);
    FaultRule rule = BusyRule("/sys/flaky", 0.5);
    rule.max_triggers = 1;
    injector.AddRule(rule);
    // After the single allowed trigger, every operation is clean again.
    int failures = 0;
    for (int i = 0; i < 200; ++i) {
        if (!injector.OnWrite("/sys/flaky/node").ok()) {
            ++failures;
        }
    }
    EXPECT_EQ(failures, 1);
}

TEST(FaultInjectorTest, StickyFaultLatchesUntilRepair)
{
    FaultInjector injector(7);
    FaultRule rule = BusyRule("/sys/flaky", 1.0);
    rule.errc = FaultErrc::kIo;
    rule.duration = FaultDuration::kSticky;
    rule.max_triggers = 1;  // One roll latches; the latch needs no budget.
    injector.AddRule(rule);

    EXPECT_EQ(injector.OnWrite("/sys/flaky/node").errc, FaultErrc::kIo);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(injector.OnWrite("/sys/flaky/node").errc, FaultErrc::kIo);
    }
    // Another path under the same prefix has not latched (and the rule's
    // trigger budget is spent), so it stays clean.
    EXPECT_TRUE(injector.OnWrite("/sys/flaky/other").ok());

    injector.Repair("/sys/flaky/node");
    EXPECT_TRUE(injector.OnWrite("/sys/flaky/node").ok());
}

TEST(FaultInjectorTest, DisappearanceIsStickyEnoent)
{
    FaultInjector injector(3);
    FaultRule rule;
    rule.path_prefix = "/sys/hotplug";
    rule.disappear_probability = 1.0;
    rule.max_triggers = 1;
    injector.AddRule(rule);

    EXPECT_EQ(injector.OnRead("/sys/hotplug/cpu1").errc, FaultErrc::kNoEnt);
    EXPECT_TRUE(injector.IsGone("/sys/hotplug/cpu1"));
    EXPECT_EQ(injector.OnWrite("/sys/hotplug/cpu1").errc, FaultErrc::kNoEnt);
    EXPECT_FALSE(injector.IsGone("/sys/hotplug/cpu2"));

    injector.RepairAll();
    EXPECT_FALSE(injector.IsGone("/sys/hotplug/cpu1"));
    EXPECT_TRUE(injector.OnRead("/sys/hotplug/cpu1").ok());
}

TEST(FaultInjectorTest, LatencySpikeReportsTheRuleDelay)
{
    FaultInjector injector(11);
    FaultRule rule;
    rule.path_prefix = "/sys/slow";
    rule.latency_spike_probability = 1.0;
    rule.latency_spike = SimTime::Millis(80);
    injector.AddRule(rule);

    const FaultDecision decision = injector.OnWrite("/sys/slow/node");
    EXPECT_TRUE(decision.ok());  // late, not failed
    EXPECT_EQ(decision.latency, SimTime::Millis(80));
}

TEST(FaultInjectorTest, StaleAppliesToReadsOnly)
{
    FaultInjector injector(13);
    FaultRule rule;
    rule.path_prefix = "/sys/stale";
    rule.stale_probability = 1.0;
    injector.AddRule(rule);

    EXPECT_TRUE(injector.OnRead("/sys/stale/node").stale);
    EXPECT_FALSE(injector.OnWrite("/sys/stale/node").stale);
}

TEST(FaultInjectorTest, FirstMatchingRuleWins)
{
    FaultInjector injector(17);
    FaultRule specific = BusyRule("/sys/devfreq/node", 1.0);
    specific.errc = FaultErrc::kInval;
    injector.AddRule(specific);
    injector.AddRule(BusyRule("/sys/devfreq", 1.0));

    EXPECT_EQ(injector.OnWrite("/sys/devfreq/node").errc, FaultErrc::kInval);
    EXPECT_EQ(injector.OnWrite("/sys/devfreq/other").errc, FaultErrc::kBusy);
}

TEST(FaultInjectorTest, TraceRecordsOpIndexAndKind)
{
    FaultInjector injector(19);
    injector.AddRule(BusyRule("/sys/x", 1.0));
    injector.OnRead("/sys/clean");   // op index 0, clean: not recorded
    injector.OnWrite("/sys/x/n");    // op index 1, recorded
    ASSERT_EQ(injector.trace().size(), 1u);
    const FaultEvent& event = injector.trace().front();
    EXPECT_EQ(event.op_index, 1u);
    EXPECT_TRUE(event.is_write);
    EXPECT_EQ(event.errc, FaultErrc::kBusy);
    EXPECT_EQ(event.path, "/sys/x/n");
}

TEST(FaultInjectorTest, ClearDropsRulesAndLatchedState)
{
    FaultInjector injector(23);
    FaultRule rule = BusyRule("/sys/x", 1.0);
    rule.duration = FaultDuration::kSticky;
    injector.AddRule(rule);
    EXPECT_FALSE(injector.OnWrite("/sys/x/n").ok());
    injector.Clear();
    EXPECT_TRUE(injector.OnWrite("/sys/x/n").ok());
}

TEST(FaultInjectorTest, ErrcNamesAreErrnoStyle)
{
    EXPECT_STREQ(FaultErrcName(FaultErrc::kOk), "OK");
    EXPECT_STREQ(FaultErrcName(FaultErrc::kNoEnt), "ENOENT");
    EXPECT_STREQ(FaultErrcName(FaultErrc::kBusy), "EBUSY");
    EXPECT_STREQ(FaultErrcName(FaultErrc::kInval), "EINVAL");
    EXPECT_STREQ(FaultErrcName(FaultErrc::kPerm), "EACCES");
    EXPECT_STREQ(FaultErrcName(FaultErrc::kIo), "EIO");
}

}  // namespace
}  // namespace aeo
