#include "sim/periodic_task.h"

#include <vector>

#include <gtest/gtest.h>

namespace aeo {
namespace {

TEST(PeriodicTaskTest, FiresAtEveryPeriod)
{
    Simulator sim;
    int fires = 0;
    PeriodicTask task(&sim, [&] { ++fires; });
    task.Start(SimTime::Millis(100));
    sim.RunUntil(SimTime::FromSeconds(1));
    EXPECT_EQ(fires, 10);
}

TEST(PeriodicTaskTest, StopHaltsFiring)
{
    Simulator sim;
    int fires = 0;
    PeriodicTask task(&sim, [&] { ++fires; });
    task.Start(SimTime::Millis(100));
    sim.RunUntil(SimTime::Millis(350));
    task.Stop();
    sim.RunUntil(SimTime::FromSeconds(10));
    EXPECT_EQ(fires, 3);
    EXPECT_FALSE(task.running());
}

TEST(PeriodicTaskTest, RestartChangesPeriod)
{
    Simulator sim;
    int fires = 0;
    PeriodicTask task(&sim, [&] { ++fires; });
    task.Start(SimTime::Millis(100));
    sim.RunUntil(SimTime::Millis(250));
    EXPECT_EQ(fires, 2);
    task.Start(SimTime::Millis(500));  // restart with a longer period
    sim.RunUntil(SimTime::Millis(1250));
    EXPECT_EQ(fires, 4);
    EXPECT_EQ(task.period(), SimTime::Millis(500));
}

TEST(PeriodicTaskTest, CallbackMayStopItsOwnTask)
{
    Simulator sim;
    int fires = 0;
    PeriodicTask task(&sim, [&] {
        ++fires;
        if (fires == 3) {
            task.Stop();
        }
    });
    task.Start(SimTime::Millis(10));
    sim.RunUntil(SimTime::FromSeconds(1));
    EXPECT_EQ(fires, 3);
}

TEST(PeriodicTaskTest, CallbackMayRestartItsOwnTask)
{
    Simulator sim;
    std::vector<SimTime> fires;
    PeriodicTask task(&sim, [&] {
        fires.push_back(sim.Now());
        if (fires.size() == 1) {
            task.Start(SimTime::Millis(300));
        }
    });
    task.Start(SimTime::Millis(100));
    sim.RunUntil(SimTime::Millis(1050));

    // The first firing restarts the task with a longer period. The old
    // series' occurrence (due at 200 ms) must never fire: only the new
    // 300 ms series exists after the restart.
    ASSERT_EQ(fires.size(), 4u);
    EXPECT_EQ(fires[0], SimTime::Millis(100));
    EXPECT_EQ(fires[1], SimTime::Millis(400));
    EXPECT_EQ(fires[2], SimTime::Millis(700));
    EXPECT_EQ(fires[3], SimTime::Millis(1000));
    EXPECT_EQ(task.period(), SimTime::Millis(300));
}

TEST(PeriodicTaskTest, CallbackMayStopAndRestartItsOwnTask)
{
    Simulator sim;
    int fires = 0;
    PeriodicTask task(&sim, [&] {
        ++fires;
        if (fires == 1) {
            task.Stop();
            task.Start(SimTime::Millis(50));
        }
    });
    task.Start(SimTime::Millis(100));
    sim.RunUntil(SimTime::Millis(305));
    // 100 ms (restart), then 150/200/250/300: exactly one live series.
    EXPECT_EQ(fires, 5);
}

TEST(PeriodicTaskTest, DestructionCancelsCleanly)
{
    Simulator sim;
    int fires = 0;
    {
        PeriodicTask task(&sim, [&] { ++fires; });
        task.Start(SimTime::Millis(10));
        sim.RunUntil(SimTime::Millis(25));
    }
    sim.RunUntil(SimTime::FromSeconds(1));
    EXPECT_EQ(fires, 2);
}

}  // namespace
}  // namespace aeo
