#include "sim/periodic_task.h"

#include <gtest/gtest.h>

namespace aeo {
namespace {

TEST(PeriodicTaskTest, FiresAtEveryPeriod)
{
    Simulator sim;
    int fires = 0;
    PeriodicTask task(&sim, [&] { ++fires; });
    task.Start(SimTime::Millis(100));
    sim.RunUntil(SimTime::FromSeconds(1));
    EXPECT_EQ(fires, 10);
}

TEST(PeriodicTaskTest, StopHaltsFiring)
{
    Simulator sim;
    int fires = 0;
    PeriodicTask task(&sim, [&] { ++fires; });
    task.Start(SimTime::Millis(100));
    sim.RunUntil(SimTime::Millis(350));
    task.Stop();
    sim.RunUntil(SimTime::FromSeconds(10));
    EXPECT_EQ(fires, 3);
    EXPECT_FALSE(task.running());
}

TEST(PeriodicTaskTest, RestartChangesPeriod)
{
    Simulator sim;
    int fires = 0;
    PeriodicTask task(&sim, [&] { ++fires; });
    task.Start(SimTime::Millis(100));
    sim.RunUntil(SimTime::Millis(250));
    EXPECT_EQ(fires, 2);
    task.Start(SimTime::Millis(500));  // restart with a longer period
    sim.RunUntil(SimTime::Millis(1250));
    EXPECT_EQ(fires, 4);
    EXPECT_EQ(task.period(), SimTime::Millis(500));
}

TEST(PeriodicTaskTest, CallbackMayStopItsOwnTask)
{
    Simulator sim;
    int fires = 0;
    PeriodicTask task(&sim, [&] {
        ++fires;
        if (fires == 3) {
            task.Stop();
        }
    });
    task.Start(SimTime::Millis(10));
    sim.RunUntil(SimTime::FromSeconds(1));
    EXPECT_EQ(fires, 3);
}

TEST(PeriodicTaskTest, DestructionCancelsCleanly)
{
    Simulator sim;
    int fires = 0;
    {
        PeriodicTask task(&sim, [&] { ++fires; });
        task.Start(SimTime::Millis(10));
        sim.RunUntil(SimTime::Millis(25));
    }
    sim.RunUntil(SimTime::FromSeconds(1));
    EXPECT_EQ(fires, 2);
}

}  // namespace
}  // namespace aeo
