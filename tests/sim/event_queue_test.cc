#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace aeo {
namespace {

TEST(EventQueueTest, RunsInTimeOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.Schedule(SimTime::Millis(30), [&] { order.push_back(3); });
    queue.Schedule(SimTime::Millis(10), [&] { order.push_back(1); });
    queue.Schedule(SimTime::Millis(20), [&] { order.push_back(2); });
    while (!queue.Empty()) {
        queue.RunNext();
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByInsertionOrder)
{
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) {
        queue.Schedule(SimTime::Millis(7), [&order, i] { order.push_back(i); });
    }
    while (!queue.Empty()) {
        queue.RunNext();
    }
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancelPreventsExecution)
{
    EventQueue queue;
    bool ran = false;
    const EventId id = queue.Schedule(SimTime::Millis(5), [&] { ran = true; });
    EXPECT_TRUE(queue.Cancel(id));
    EXPECT_TRUE(queue.Empty());
    EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelTwiceReturnsFalse)
{
    EventQueue queue;
    const EventId id = queue.Schedule(SimTime::Millis(5), [] {});
    EXPECT_TRUE(queue.Cancel(id));
    EXPECT_FALSE(queue.Cancel(id));
    EXPECT_FALSE(queue.Cancel(99999));
}

TEST(EventQueueTest, NextTimeSkipsCancelled)
{
    EventQueue queue;
    const EventId early = queue.Schedule(SimTime::Millis(1), [] {});
    queue.Schedule(SimTime::Millis(9), [] {});
    queue.Cancel(early);
    EXPECT_EQ(queue.NextTime(), SimTime::Millis(9));
}

TEST(EventQueueTest, RunNextReturnsEventTime)
{
    EventQueue queue;
    queue.Schedule(SimTime::Millis(42), [] {});
    EXPECT_EQ(queue.RunNext(), SimTime::Millis(42));
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents)
{
    EventQueue queue;
    std::vector<int> order;
    queue.Schedule(SimTime::Millis(1), [&] {
        order.push_back(1);
        queue.Schedule(SimTime::Millis(2), [&] { order.push_back(2); });
    });
    while (!queue.Empty()) {
        queue.RunNext();
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueueTest, PendingCountTracksState)
{
    EventQueue queue;
    const EventId a = queue.Schedule(SimTime::Millis(1), [] {});
    queue.Schedule(SimTime::Millis(2), [] {});
    EXPECT_EQ(queue.PendingCount(), 2u);
    queue.Cancel(a);
    EXPECT_EQ(queue.PendingCount(), 1u);
    queue.RunNext();
    EXPECT_EQ(queue.PendingCount(), 0u);
    EXPECT_EQ(queue.executed_count(), 1u);
}

}  // namespace
}  // namespace aeo
