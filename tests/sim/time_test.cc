#include "sim/time.h"

#include <gtest/gtest.h>

namespace aeo {
namespace {

TEST(SimTimeTest, Constructors)
{
    EXPECT_EQ(SimTime::Micros(1500).micros(), 1500);
    EXPECT_EQ(SimTime::Millis(3).micros(), 3000);
    EXPECT_EQ(SimTime::FromSeconds(2).micros(), 2000000);
    EXPECT_EQ(SimTime::FromSecondsF(0.0005).micros(), 500);
    EXPECT_EQ(SimTime::Zero().micros(), 0);
}

TEST(SimTimeTest, RoundsToNearestMicrosecond)
{
    EXPECT_EQ(SimTime::FromSecondsF(1e-6 * 0.4).micros(), 0);
    EXPECT_EQ(SimTime::FromSecondsF(1e-6 * 0.6).micros(), 1);
}

TEST(SimTimeTest, Arithmetic)
{
    const SimTime a = SimTime::Millis(500);
    const SimTime b = SimTime::Millis(200);
    EXPECT_EQ((a + b).micros(), 700000);
    EXPECT_EQ((a - b).micros(), 300000);
    EXPECT_EQ((b * 3).micros(), 600000);
    SimTime c = a;
    c += b;
    EXPECT_EQ(c.millis(), 700.0);
    c -= a;
    EXPECT_EQ(c, b);
}

TEST(SimTimeTest, Comparisons)
{
    EXPECT_LT(SimTime::Millis(1), SimTime::Millis(2));
    EXPECT_GE(SimTime::FromSeconds(1), SimTime::Millis(1000));
}

TEST(SimTimeTest, Conversions)
{
    const SimTime t = SimTime::Millis(2500);
    EXPECT_DOUBLE_EQ(t.seconds(), 2.5);
    EXPECT_DOUBLE_EQ(t.millis(), 2500.0);
    EXPECT_DOUBLE_EQ(t.ToSeconds().value(), 2.5);
}

}  // namespace
}  // namespace aeo
