/**
 * @file
 * Property tests for the slab-backed EventQueue (DESIGN.md §14), checked
 * against a deliberately naive reference model, plus the zero-allocation
 * steady-state contract measured through a counting operator-new hook.
 *
 * The reference model is a flat vector scanned linearly for the earliest
 * (when, seq) pair — quadratic and allocation-happy, but obviously correct.
 * Random interleavings of schedule / cancel / stale-cancel / ScheduleEvery /
 * RunNext must produce the identical firing log and identical Cancel()
 * return values on both implementations, across generations of slot reuse.
 *
 * This binary runs under the unit suite and, via its robustness and
 * concurrency labels, under the ASan/UBSan and TSan CI jobs — the slab's
 * deferred-free and generation-reuse paths are exactly where lifetime bugs
 * would hide.
 */
#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <utility>
#include <vector>

#include "common/random.h"

// GCC pairs the inlined allocator calls with this TU's replacement
// operator new (malloc-backed) and flags the free() in the replacement
// delete as mismatched — a false positive for a conforming global
// replacement pair, so the check is off for this file only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {

/** Heap operations observed by the counting hook below. */
std::atomic<uint64_t> g_alloc_count{0};

}  // namespace

// Counting allocator hook: every heap allocation in this test binary passes
// through here, so the zero-allocation dispatch contract is measured, not
// inferred. Per-binary only — the library under test is unchanged.
void*
operator new(std::size_t size)
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) {
        return p;
    }
    throw std::bad_alloc();
}

void*
operator new[](std::size_t size)
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) {
        return p;
    }
    throw std::bad_alloc();
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

namespace aeo {
namespace {

/**
 * The naive reference: entries in a vector, earliest (when, seq) found by
 * linear scan. Repeating entries consume a fresh seq at each re-arm, before
 * delivery — the same order the real queue guarantees.
 */
class ReferenceQueue {
  public:
    /** Returns an opaque id; @p period zero means one-shot. */
    uint64_t
    Schedule(SimTime when, SimTime period, int tag)
    {
        entries_.push_back(Entry{next_id_++, next_seq_++, when, period, tag});
        return entries_.back().id;
    }

    bool
    Cancel(uint64_t id)
    {
        for (size_t i = 0; i < entries_.size(); ++i) {
            if (entries_[i].id == id) {
                entries_.erase(entries_.begin() +
                               static_cast<std::ptrdiff_t>(i));
                return true;
            }
        }
        return false;
    }

    bool Empty() const { return entries_.empty(); }

    /** Fires the earliest entry; returns its (tag, when). */
    std::pair<int, SimTime>
    RunNext()
    {
        size_t best = 0;
        for (size_t i = 1; i < entries_.size(); ++i) {
            const Entry& e = entries_[i];
            const Entry& b = entries_[best];
            if (e.when < b.when || (e.when == b.when && e.seq < b.seq)) {
                best = i;
            }
        }
        Entry& chosen = entries_[best];
        const std::pair<int, SimTime> fired{chosen.tag, chosen.when};
        if (chosen.period > SimTime::Zero()) {
            chosen.seq = next_seq_++;
            chosen.when = chosen.when + chosen.period;
        } else {
            entries_.erase(entries_.begin() +
                           static_cast<std::ptrdiff_t>(best));
        }
        return fired;
    }

  private:
    struct Entry {
        uint64_t id;
        uint64_t seq;
        SimTime when;
        SimTime period;
        int tag;
    };
    std::vector<Entry> entries_;
    uint64_t next_id_ = 1;
    uint64_t next_seq_ = 1;
};

/** One randomized interleaving driven by @p seed; the real queue and the
 * reference must agree on every firing and every Cancel() result. */
void
RunInterleaving(uint64_t seed, int ops)
{
    Rng rng(seed);
    EventQueue queue;
    ReferenceQueue ref;

    std::vector<std::pair<int, SimTime>> real_log;
    std::vector<std::pair<int, SimTime>> ref_log;
    // Ids handed out so far, real and reference side by side. Never pruned:
    // picking an already-dead pair is exactly the stale-cancel case.
    std::vector<std::pair<EventId, uint64_t>> ids;
    SimTime now = SimTime::Zero();
    int next_tag = 0;

    for (int op = 0; op < ops; ++op) {
        const int64_t roll = rng.UniformInt(0, 99);
        if (roll < 35) {
            // One-shot at now + [0, 50] us; ties with pending events are
            // frequent by construction.
            const SimTime when =
                now + SimTime::Micros(rng.UniformInt(0, 50));
            const int tag = next_tag++;
            const EventId real = queue.Schedule(
                when, [tag, &real_log, when] {
                    real_log.emplace_back(tag, when);
                });
            ids.emplace_back(real, ref.Schedule(when, SimTime::Zero(), tag));
        } else if (roll < 50) {
            // Repeating series; short periods so several firings land
            // inside the run window.
            const SimTime first =
                now + SimTime::Micros(rng.UniformInt(0, 30));
            const SimTime period =
                SimTime::Micros(rng.UniformInt(1, 20));
            const int tag = next_tag++;
            // The real callback cannot know its own `when`, so both logs
            // record the queue-reported firing time instead.
            const EventId real =
                queue.ScheduleEvery(first, period, [tag, &real_log] {
                    real_log.emplace_back(tag, SimTime::Zero());
                });
            ids.emplace_back(real, ref.Schedule(first, period, tag));
        } else if (roll < 75 && !ids.empty()) {
            // Cancel a random id — live, already-fired, already-cancelled
            // or since-reused slot; both sides must agree on the result.
            const auto& pick = ids[static_cast<size_t>(
                rng.UniformInt(0, static_cast<int64_t>(ids.size()) - 1))];
            EXPECT_EQ(queue.Cancel(pick.first), ref.Cancel(pick.second))
                << "seed " << seed << " op " << op;
        } else {
            // Drain a few events from both sides.
            const int64_t burst = rng.UniformInt(1, 8);
            for (int64_t i = 0; i < burst && !queue.Empty(); ++i) {
                ASSERT_FALSE(ref.Empty()) << "seed " << seed << " op " << op;
                const SimTime fired_at = queue.RunNext();
                now = fired_at;
                auto fired_ref = ref.RunNext();
                ASSERT_FALSE(real_log.empty());
                real_log.back().second = fired_at;
                ASSERT_EQ(real_log.back().first, fired_ref.first)
                    << "seed " << seed << " op " << op;
                ASSERT_EQ(fired_at, fired_ref.second)
                    << "seed " << seed << " op " << op;
                ref_log.push_back(fired_ref);
            }
            EXPECT_EQ(queue.Empty(), ref.Empty())
                << "seed " << seed << " op " << op;
        }
    }

    // Drain the remainder (repeating series would run forever; stop once
    // every one-shot difference is settled — a bounded number of steps).
    int remaining = 4096;
    while (!queue.Empty() && remaining-- > 0) {
        ASSERT_FALSE(ref.Empty());
        const SimTime fired_at = queue.RunNext();
        auto fired_ref = ref.RunNext();
        ASSERT_FALSE(real_log.empty());
        real_log.back().second = fired_at;
        ASSERT_EQ(real_log.back().first, fired_ref.first);
        ASSERT_EQ(fired_at, fired_ref.second);
        ref_log.push_back(fired_ref);
    }
    EXPECT_EQ(real_log, ref_log) << "seed " << seed;
}

TEST(EventQueuePropertyTest, MatchesReferenceModelAcrossSeeds)
{
    for (uint64_t seed = 1; seed <= 40; ++seed) {
        RunInterleaving(seed, 400);
    }
}

TEST(EventQueuePropertyTest, GenerationTagsSurviveHeavySlotReuse)
{
    // Hammer one slot through many generations; every stale id must keep
    // reporting false without disturbing the live registration.
    EventQueue queue;
    std::vector<EventId> stale;
    for (int round = 0; round < 1000; ++round) {
        const EventId id = queue.Schedule(SimTime::Micros(round), [] {});
        ASSERT_TRUE(queue.Cancel(id));
        stale.push_back(id);
    }
    int fired = 0;
    const EventId live =
        queue.Schedule(SimTime::Micros(5), [&fired] { ++fired; });
    for (const EventId id : stale) {
        EXPECT_FALSE(queue.Cancel(id));
    }
    EXPECT_EQ(queue.PendingCount(), 1u);
    queue.RunNext();
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(queue.Cancel(live));
    // Churn never grew the slab past peak concurrency.
    EXPECT_LE(queue.SlabSize(), 2u);
}

TEST(EventQueuePropertyTest, RepeatingReArmOrdersBeforeCallbackSchedules)
{
    // The series re-arms (consuming a seq) before its callback runs, so a
    // one-shot the callback schedules at the exact next-occurrence time
    // must fire *after* that occurrence — the PeriodicTask-era contract.
    EventQueue queue;
    std::vector<int> order;
    bool armed = false;
    const EventId series = queue.ScheduleEvery(
        SimTime::Millis(1), SimTime::Millis(1), [&] {
            order.push_back(0);
            if (!armed) {
                armed = true;
                queue.Schedule(SimTime::Millis(2), [&] { order.push_back(1); });
            }
        });
    queue.RunNext();  // t=1ms: series fires, schedules one-shot at t=2ms
    queue.RunNext();  // t=2ms: series again (earlier seq)
    queue.RunNext();  // t=2ms: the one-shot
    EXPECT_EQ(order, (std::vector<int>{0, 0, 1}));
    EXPECT_TRUE(queue.Cancel(series));
    EXPECT_TRUE(queue.Empty());
}

TEST(EventQueuePropertyTest, CancelOwnSeriesMidFireDefersSlotFree)
{
    // A repeating callback cancelling itself exercises the deferred-free
    // path: the slot must stay live for the rest of the call, then return
    // to the free list and be safely reusable.
    EventQueue queue;
    int fires = 0;
    EventId self = kInvalidEventId;
    self = queue.ScheduleEvery(SimTime::Millis(1), SimTime::Millis(1), [&] {
        ++fires;
        EXPECT_TRUE(queue.Cancel(self));
        EXPECT_FALSE(queue.Cancel(self));  // immediately stale
    });
    queue.RunNext();
    EXPECT_EQ(fires, 1);
    EXPECT_TRUE(queue.Empty());
    EXPECT_EQ(queue.PendingCount(), 0u);
    // The freed slot is reusable and fires normally.
    queue.Schedule(SimTime::Millis(5), [&fires] { ++fires; });
    queue.RunNext();
    EXPECT_EQ(fires, 2);
}

TEST(EventQueuePropertyTest, SteadyStateDispatchDoesNotAllocate)
{
    // The tentpole contract: after warmup, periodic dispatch and one-shot
    // churn touch the heap zero times per event.
    EventQueue queue;
    uint64_t fired = 0;
    for (int i = 0; i < 8; ++i) {
        queue.ScheduleEvery(SimTime::Micros(100 + i),
                            SimTime::Micros(191 + 2 * i),
                            [&fired] { ++fired; });
    }
    struct Chain {
        EventQueue* queue;
        SimTime at;
        uint64_t* fired;
        void
        Fire()
        {
            *fired += 1;
            at = at + SimTime::Micros(197);
            queue->Schedule(at, [this] { Fire(); });
        }
    };
    Chain chain{&queue, SimTime::Micros(50), &fired};
    queue.Schedule(chain.at, [&chain] { chain.Fire(); });

    // Warmup: grow the slab, the heap vector and any lazy library state.
    for (int i = 0; i < 10'000; ++i) {
        queue.RunNext();
    }

    const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
    const uint64_t fired_before = fired;
    for (int i = 0; i < 100'000; ++i) {
        queue.RunNext();
    }
    const uint64_t allocs =
        g_alloc_count.load(std::memory_order_relaxed) - before;
    EXPECT_EQ(allocs, 0u) << "steady-state dispatch must not allocate";
    EXPECT_EQ(fired - fired_before, 100'000u);
}

}  // namespace
}  // namespace aeo
