#include "sim/simulator.h"

#include <gtest/gtest.h>

namespace aeo {
namespace {

TEST(SimulatorTest, ClockAdvancesToDeadline)
{
    Simulator sim;
    sim.RunUntil(SimTime::FromSeconds(5));
    EXPECT_EQ(sim.Now(), SimTime::FromSeconds(5));
}

TEST(SimulatorTest, EventsSeeTheirOwnTime)
{
    Simulator sim;
    SimTime seen;
    sim.ScheduleAfter(SimTime::Millis(250), [&] { seen = sim.Now(); });
    sim.RunUntil(SimTime::FromSeconds(1));
    EXPECT_EQ(seen, SimTime::Millis(250));
}

TEST(SimulatorTest, EventsBeyondDeadlineDoNotRun)
{
    Simulator sim;
    bool ran = false;
    sim.ScheduleAfter(SimTime::FromSeconds(10), [&] { ran = true; });
    sim.RunUntil(SimTime::FromSeconds(1));
    EXPECT_FALSE(ran);
    EXPECT_EQ(sim.Now(), SimTime::FromSeconds(1));
    // A later run picks the event up.
    sim.RunUntil(SimTime::FromSeconds(20));
    EXPECT_TRUE(ran);
}

TEST(SimulatorTest, StopEndsRunEarly)
{
    Simulator sim;
    sim.ScheduleAfter(SimTime::Millis(100), [&] { sim.Stop(); });
    bool later_ran = false;
    sim.ScheduleAfter(SimTime::Millis(200), [&] { later_ran = true; });
    sim.RunUntil(SimTime::FromSeconds(1));
    EXPECT_TRUE(sim.stopped());
    EXPECT_FALSE(later_ran);
    EXPECT_EQ(sim.Now(), SimTime::Millis(100));
}

TEST(SimulatorTest, RunForIsRelative)
{
    Simulator sim;
    sim.RunFor(SimTime::FromSeconds(2));
    sim.RunFor(SimTime::FromSeconds(3));
    EXPECT_EQ(sim.Now(), SimTime::FromSeconds(5));
}

TEST(SimulatorTest, CancelWorksThroughSimulator)
{
    Simulator sim;
    bool ran = false;
    const EventId id = sim.ScheduleAfter(SimTime::Millis(10), [&] { ran = true; });
    EXPECT_TRUE(sim.Cancel(id));
    sim.RunUntil(SimTime::FromSeconds(1));
    EXPECT_FALSE(ran);
}

TEST(SimulatorTest, ScheduleAtAbsoluteTime)
{
    Simulator sim;
    SimTime seen;
    sim.ScheduleAt(SimTime::FromSeconds(3), [&] { seen = sim.Now(); });
    sim.RunUntil(SimTime::FromSeconds(4));
    EXPECT_EQ(seen, SimTime::FromSeconds(3));
}

}  // namespace
}  // namespace aeo
