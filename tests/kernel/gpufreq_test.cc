#include "kernel/gpufreq.h"

#include <gtest/gtest.h>

namespace aeo {
namespace {

class GpuFreqTest : public ::testing::Test {
  protected:
    GpuFreqTest()
        : gpu_(MakeAdreno420()),
          policy_(&sim_, &gpu_, &meter_, &sysfs_, "/sys/kgsl")
    {
        policy_.RegisterGovernor("msm-adreno-tz", MakeAdrenoTzFactory());
        policy_.RegisterGovernor("userspace", MakeGpuUserspaceFactory());
        policy_.RegisterGovernor("performance", MakeGpuPerformanceFactory());
    }

    /** Feeds a constant busy fraction and runs the clock. */
    void
    Drive(SimTime duration, double busy)
    {
        const SimTime slice = SimTime::Millis(5);
        SimTime done;
        while (done < duration) {
            meter_.Advance(busy, slice);
            sim_.RunFor(slice);
            done += slice;
        }
    }

    Simulator sim_;
    GpuDomain gpu_;
    GpuBusyMeter meter_;
    Sysfs sysfs_;
    GpuFreqPolicy policy_;
};

TEST_F(GpuFreqTest, GovernorSwitchThroughSysfs)
{
    EXPECT_TRUE(sysfs_.Write("/sys/kgsl/governor", "performance"));
    EXPECT_EQ(gpu_.level(), 4);
    EXPECT_EQ(sysfs_.Read("/sys/kgsl/governor"), "performance");
    EXPECT_FALSE(sysfs_.Write("/sys/kgsl/governor", "bogus"));
}

TEST_F(GpuFreqTest, UserspaceSetFreq)
{
    sysfs_.Write("/sys/kgsl/governor", "userspace");
    EXPECT_TRUE(sysfs_.Write("/sys/kgsl/userspace/set_freq", "500"));
    EXPECT_EQ(gpu_.level(), 3);
    EXPECT_EQ(sysfs_.Read("/sys/kgsl/cur_freq"), "500");
}

TEST_F(GpuFreqTest, AdrenoTzStepsUpUnderLoad)
{
    sysfs_.Write("/sys/kgsl/governor", "msm-adreno-tz");
    Drive(SimTime::Millis(300), 1.0);
    EXPECT_EQ(gpu_.level(), 4);  // one step per 50 ms sample → max in 200 ms
}

TEST_F(GpuFreqTest, AdrenoTzStepsDownWhenIdle)
{
    sysfs_.Write("/sys/kgsl/governor", "msm-adreno-tz");
    Drive(SimTime::Millis(300), 1.0);
    ASSERT_EQ(gpu_.level(), 4);
    Drive(SimTime::Millis(400), 0.05);
    EXPECT_EQ(gpu_.level(), 0);
}

TEST_F(GpuFreqTest, AdrenoTzHoldsInTheDeadBand)
{
    sysfs_.Write("/sys/kgsl/governor", "msm-adreno-tz");
    Drive(SimTime::Millis(100), 1.0);
    const int level = gpu_.level();
    ASSERT_GT(level, 0);
    Drive(SimTime::Millis(400), 0.5);  // between the thresholds
    EXPECT_EQ(gpu_.level(), level);
}

TEST_F(GpuFreqTest, BusyMeterIntegrates)
{
    meter_.Advance(0.5, SimTime::FromSeconds(2));
    meter_.Advance(1.0, SimTime::FromSeconds(1));
    EXPECT_DOUBLE_EQ(meter_.busy_seconds(), 2.0);
    EXPECT_EQ(meter_.elapsed(), SimTime::FromSeconds(3));
}

}  // namespace
}  // namespace aeo
