#include "kernel/loadavg.h"

#include <gtest/gtest.h>

namespace aeo {
namespace {

TEST(LoadAvgTest, StartsAtResidentPressure)
{
    const LoadAvg load(6.3);
    EXPECT_DOUBLE_EQ(load.value(), 6.3);
}

TEST(LoadAvgTest, ConvergesTowardRunnableCount)
{
    LoadAvg load(6.0);
    for (int i = 0; i < 600; ++i) {
        load.Advance(2.0, SimTime::FromSeconds(1));  // target 8.0
    }
    EXPECT_NEAR(load.value(), 8.0, 0.01);
}

TEST(LoadAvgTest, OneMinuteTimeConstant)
{
    LoadAvg load(0.0);
    load.Advance(1.0, SimTime::FromSeconds(60));
    // After one time constant: 1 − e⁻¹ ≈ 0.632.
    EXPECT_NEAR(load.value(), 0.632, 0.001);
}

TEST(LoadAvgTest, ResidentChangeShiftsTarget)
{
    LoadAvg load(6.0);
    load.set_resident_tasks(7.0);
    for (int i = 0; i < 600; ++i) {
        load.Advance(0.0, SimTime::FromSeconds(1));
    }
    EXPECT_NEAR(load.value(), 7.0, 0.01);
}

}  // namespace
}  // namespace aeo
