/**
 * @file
 * Behavioural tests for the decision-making governors: ondemand,
 * interactive and cpubw_hwmon — the algorithms whose weaknesses motivate
 * the paper (§II).
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "kernel/cpufreq.h"
#include "kernel/devfreq.h"
#include "kernel/governors/cpufreq_interactive.h"
#include "kernel/governors/cpufreq_conservative.h"
#include "kernel/governors/cpufreq_lulzactive.h"
#include "kernel/governors/cpufreq_ondemand.h"
#include "kernel/governors/devfreq_cpubw_hwmon.h"
#include "kernel/mpdecision.h"
#include "soc/nexus6.h"

namespace aeo {
namespace {

/** Drives synthetic load into the meter while the simulator runs. */
class LoadDriver {
  public:
    LoadDriver(Simulator* sim, CpuLoadMeter* meter) : sim_(sim), meter_(meter) {}

    /**
     * Runs for @p duration with a constant busy-core count; the busiest-core
     * load is modelled as busy/4 (a balanced spread over the four cores).
     */
    void
    Run(SimTime duration, double busy_cores)
    {
        // Feed the meter in 5 ms slices so governor windows see it smoothly.
        const SimTime slice = SimTime::Millis(5);
        SimTime done;
        while (done < duration) {
            meter_->Advance(busy_cores, std::min(1.0, busy_cores / 4.0), slice);
            sim_->RunFor(slice);
            done += slice;
        }
    }

  private:
    Simulator* sim_;
    CpuLoadMeter* meter_;
};

class OndemandTest : public ::testing::Test {
  protected:
    OndemandTest()
        : cluster_(MakeNexus6FrequencyTable(), 4),
          policy_(&sim_, &cluster_, &meter_, &sysfs_, "/sys/cpufreq"),
          driver_(&sim_, &meter_)
    {
        policy_.RegisterGovernor("ondemand", MakeCpufreqOndemandFactory());
        policy_.SetGovernor("ondemand");
    }

    Simulator sim_;
    CpuCluster cluster_;
    CpuLoadMeter meter_;
    Sysfs sysfs_;
    CpufreqPolicy policy_;
    LoadDriver driver_;
};

TEST_F(OndemandTest, HighLoadJumpsToMaxFrequency)
{
    driver_.Run(SimTime::Millis(200), 4.0);
    EXPECT_EQ(cluster_.level(), 17);
}

TEST_F(OndemandTest, ModerateLoadDecaysProportionally)
{
    driver_.Run(SimTime::Millis(200), 4.0);
    ASSERT_EQ(cluster_.level(), 17);
    // Load 0.45: ondemand steps down toward f·load/target, not to the floor.
    driver_.Run(SimTime::Millis(60), 1.8);
    EXPECT_LT(cluster_.level(), 17);
    EXPECT_GT(cluster_.level(), 0);
    // Near-idle load eventually settles at the bottom.
    driver_.Run(SimTime::FromSeconds(1), 0.05);
    EXPECT_EQ(cluster_.level(), 0);
}

TEST_F(OndemandTest, IdleSettlesAtMinimum)
{
    driver_.Run(SimTime::FromSeconds(1), 0.0);
    EXPECT_EQ(cluster_.level(), 0);
}

class InteractiveTest : public ::testing::Test {
  protected:
    InteractiveTest()
        : cluster_(MakeNexus6FrequencyTable(), 4),
          policy_(&sim_, &cluster_, &meter_, &sysfs_, "/sys/cpufreq"),
          driver_(&sim_, &meter_)
    {
        policy_.RegisterGovernor("interactive", MakeCpufreqInteractiveFactory());
        policy_.SetGovernor("interactive");
    }

    Simulator sim_;
    CpuCluster cluster_;
    CpuLoadMeter meter_;
    Sysfs sysfs_;
    CpufreqPolicy policy_;
    LoadDriver driver_;
};

TEST_F(InteractiveTest, BurstJumpsToHispeedFreqFirst)
{
    // One sampling window of saturated load: jump to hispeed (level 10,
    // 1.4976 GHz), not directly to max.
    driver_.Run(SimTime::Millis(25), 4.0);
    EXPECT_EQ(cluster_.level(), 9);
}

TEST_F(InteractiveTest, SustainedLoadClimbsAboveHispeed)
{
    driver_.Run(SimTime::Millis(300), 4.0);
    EXPECT_EQ(cluster_.level(), 17);
}

TEST_F(InteractiveTest, MinSampleTimeHoldsRaisedFrequency)
{
    driver_.Run(SimTime::Millis(25), 4.0);
    ASSERT_EQ(cluster_.level(), 9);
    // Load vanishes: within min_sample_time (80 ms) the frequency must hold.
    driver_.Run(SimTime::Millis(40), 0.0);
    EXPECT_EQ(cluster_.level(), 9);
    // After the hold expires it drops.
    driver_.Run(SimTime::Millis(200), 0.0);
    EXPECT_EQ(cluster_.level(), 0);
}

TEST_F(InteractiveTest, ProportionalDownstepsPassThroughMidLevels)
{
    // A burst raises the frequency; when the load settles low, the governor
    // steps toward f·load/target_load — with a constant synthetic load the
    // target cascades downward, but each step must be proportional (through
    // mid levels), not a cliff to the floor.
    driver_.Run(SimTime::Millis(300), 4.0);
    ASSERT_EQ(cluster_.level(), 17);
    std::vector<int> visited;
    cluster_.SetPostChangeListener([&] { visited.push_back(cluster_.level()); });
    driver_.Run(SimTime::Millis(500), 1.4);
    cluster_.SetPostChangeListener(nullptr);
    ASSERT_FALSE(visited.empty());
    // First drop from the top lands at a mid level (load 0.35 of 2.65 GHz
    // → ≈1.03 GHz → level 7), not at the bottom.
    EXPECT_GT(visited.front(), 0);
    EXPECT_LT(visited.front(), 9);
    EXPECT_EQ(cluster_.level(), 0);  // constant load cascades to the floor
}

class ConservativeTest : public ::testing::Test {
  protected:
    ConservativeTest()
        : cluster_(MakeNexus6FrequencyTable(), 4),
          policy_(&sim_, &cluster_, &meter_, &sysfs_, "/sys/cpufreq"),
          driver_(&sim_, &meter_)
    {
        policy_.RegisterGovernor("conservative", MakeCpufreqConservativeFactory());
        policy_.SetGovernor("conservative");
    }

    Simulator sim_;
    CpuCluster cluster_;
    CpuLoadMeter meter_;
    Sysfs sysfs_;
    CpufreqPolicy policy_;
    LoadDriver driver_;
};

TEST_F(ConservativeTest, ClimbsOneStepPerSample)
{
    // 4 samples of saturated load: exactly 4 levels up — no jump to max.
    driver_.Run(SimTime::Millis(200), 4.0);
    EXPECT_EQ(cluster_.level(), 4);
}

TEST_F(ConservativeTest, DescendsGraduallyWhenIdle)
{
    driver_.Run(SimTime::Millis(500), 4.0);
    const int top = cluster_.level();
    ASSERT_GE(top, 9);
    driver_.Run(SimTime::Millis(200), 0.0);
    EXPECT_EQ(cluster_.level(), top - 4);
    driver_.Run(SimTime::FromSeconds(1), 0.0);
    EXPECT_EQ(cluster_.level(), 0);
}

TEST_F(ConservativeTest, HoldsBetweenThresholds)
{
    driver_.Run(SimTime::Millis(300), 4.0);
    const int level = cluster_.level();
    driver_.Run(SimTime::Millis(500), 2.0);  // load 0.5: in the dead band
    EXPECT_EQ(cluster_.level(), level);
}

class CpubwHwmonTest : public ::testing::Test {
  protected:
    CpubwHwmonTest()
        : bus_(MakeNexus6BandwidthTable()),
          policy_(&sim_, &bus_, &meter_, &sysfs_, "/sys/devfreq")
    {
        policy_.RegisterGovernor("cpubw_hwmon", MakeDevfreqCpubwHwmonFactory());
        policy_.SetGovernor("cpubw_hwmon");
    }

    /** Feeds traffic and runs the clock. */
    void
    Drive(SimTime duration, double gbps)
    {
        const SimTime slice = SimTime::Millis(5);
        SimTime done;
        while (done < duration) {
            meter_.Advance(gbps, slice);
            sim_.RunFor(slice);
            done += slice;
        }
    }

    Simulator sim_;
    MemoryBus bus_;
    BusTrafficMeter meter_;
    Sysfs sysfs_;
    DevfreqPolicy policy_;
};

TEST_F(CpubwHwmonTest, TrafficBurstRaisesBandwidthImmediately)
{
    // 2 GB/s of traffic on a 762 MBps bus: next sample must provision
    // 2000 × 1.6 = 3200 MBps → level 6 (3952).
    Drive(SimTime::Millis(60), 2.0);
    EXPECT_GE(bus_.level(), 5);
}

TEST_F(CpubwHwmonTest, ReductionUsesExponentialBackoff)
{
    Drive(SimTime::Millis(60), 2.0);
    const int raised = bus_.level();
    ASSERT_GE(raised, 5);
    // Traffic stops. The first down-step needs few samples, later ones
    // exponentially more — so the decay is much slower than the rise.
    Drive(SimTime::Millis(200), 0.0);
    const int after_200ms = bus_.level();
    EXPECT_LT(after_200ms, raised);
    EXPECT_GT(after_200ms, 0);  // still elevated: back-off in action
    // Eventually it floors.
    Drive(SimTime::FromSeconds(30), 0.0);
    EXPECT_EQ(bus_.level(), 0);
}

TEST_F(CpubwHwmonTest, SteadyTrafficHoldsLevel)
{
    Drive(SimTime::Millis(300), 1.0);  // needs 1600 MBps → level 3 (2288)
    const int level = bus_.level();
    EXPECT_GE(level, 3);
    Drive(SimTime::FromSeconds(2), 1.0);
    EXPECT_EQ(bus_.level(), level);
}

class LulzactiveTest : public ::testing::Test {
  protected:
    LulzactiveTest()
        : cluster_(MakeNexus6FrequencyTable(), 4),
          policy_(&sim_, &cluster_, &meter_, &sysfs_, "/sys/cpufreq"),
          driver_(&sim_, &meter_)
    {
        policy_.RegisterGovernor("lulzactive", MakeCpufreqLulzactiveFactory());
        policy_.SetGovernor("lulzactive");
    }

    Simulator sim_;
    CpuCluster cluster_;
    CpuLoadMeter meter_;
    Sysfs sysfs_;
    CpufreqPolicy policy_;
    LoadDriver driver_;
};

TEST_F(LulzactiveTest, FullLoadRampsThroughTheStagesNotAJump)
{
    // Unlike interactive's hispeed jump, lulzactive climbs pump_up_step (2)
    // levels per decision, and up_sample_time (20 ms) gates decisions: after
    // 35 ms of saturation exactly one change fits, so the level is still far
    // from the top of the 18-entry table.
    driver_.Run(SimTime::Millis(35), 4.0);
    EXPECT_GT(cluster_.level(), 0);
    EXPECT_LE(cluster_.level(), 4);
    // Sustained saturation walks the remaining stages to the ceiling.
    driver_.Run(SimTime::Millis(250), 4.0);
    EXPECT_EQ(cluster_.level(), 17);
}

TEST_F(LulzactiveTest, DescentIsDwellGatedAndSlowerThanTheClimb)
{
    driver_.Run(SimTime::Millis(250), 4.0);
    ASSERT_EQ(cluster_.level(), 17);
    // down_sample_time (40 ms) with pump_down_step 1: roughly one level per
    // 40 ms, a 4x slower ramp than the climb (2 levels per 20 ms).
    driver_.Run(SimTime::Millis(210), 0.0);
    EXPECT_GE(cluster_.level(), 11);
    EXPECT_LT(cluster_.level(), 17);
    driver_.Run(SimTime::FromSeconds(1), 0.0);
    EXPECT_EQ(cluster_.level(), 0);
}

TEST_F(LulzactiveTest, ModerateLoadDescendsBecauseThereIsNoHoldBand)
{
    driver_.Run(SimTime::Millis(250), 4.0);
    ASSERT_EQ(cluster_.level(), 17);
    // Load 0.5 sits below inc_cpu_load (0.70); conservative would hold in
    // its dead band, lulzactive pumps all the way down to the floor.
    driver_.Run(SimTime::FromSeconds(1), 2.0);
    EXPECT_EQ(cluster_.level(), 0);
}

TEST_F(LulzactiveTest, RespectsTheMinLevelLimit)
{
    policy_.SetLevelLimits(5, 17);
    driver_.Run(SimTime::Millis(250), 4.0);
    ASSERT_EQ(cluster_.level(), 17);
    driver_.Run(SimTime::FromSeconds(2), 0.0);
    EXPECT_EQ(cluster_.level(), 5);
}

/**
 * Lulzactive alongside the mpdecision hotplug daemon — the configuration a
 * community kernel actually ships. The two sample different signals: the
 * governor keys on the busiest core, the daemon on total busy per online
 * core, so a single-threaded pegged task splits them: frequency saturates
 * while cores are taken offline.
 */
TEST(LulzactiveWithMpdecisionTest, PeggedSingleThreadMaxesFreqWhileCoresOffline)
{
    Simulator sim;
    CpuCluster cluster(MakeNexus6FrequencyTable(), 4);
    CpuLoadMeter meter;
    Sysfs sysfs;
    CpufreqPolicy policy(&sim, &cluster, &meter, &sysfs, "/sys/cpufreq");
    policy.RegisterGovernor("lulzactive", MakeCpufreqLulzactiveFactory());
    policy.SetGovernor("lulzactive");
    Mpdecision hotplug(&sim, &cluster, &meter);
    hotplug.Start();

    // One core pegged at 100%: total busy 1.0, busiest-core load 1.0.
    const SimTime slice = SimTime::Millis(5);
    SimTime done;
    while (done < SimTime::FromSeconds(2)) {
        meter.Advance(1.0, 1.0, slice);
        sim.RunFor(slice);
        done += slice;
    }

    // Governor: busiest core saturated → ceiling.
    EXPECT_EQ(cluster.level(), 17);
    // Daemon: 1.0/4 = 0.25 busy per core offlines one; 1.0/3 ≈ 0.33 sits
    // between the thresholds (0.30, 0.80) and holds.
    EXPECT_EQ(cluster.online_cores(), 3);

    // Stopping the daemon restores the full core count (the paper's §IV-A
    // experimental setup) without disturbing the governor's frequency.
    hotplug.Stop();
    EXPECT_EQ(cluster.online_cores(), 4);
    EXPECT_EQ(cluster.level(), 17);
}

}  // namespace
}  // namespace aeo
