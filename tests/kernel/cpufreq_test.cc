#include "kernel/cpufreq.h"

#include <gtest/gtest.h>

#include "kernel/governors/cpufreq_performance.h"
#include "kernel/governors/cpufreq_powersave.h"
#include "kernel/governors/cpufreq_userspace.h"
#include "soc/nexus6.h"

namespace aeo {
namespace {

class CpufreqTest : public ::testing::Test {
  protected:
    CpufreqTest()
        : cluster_(MakeNexus6FrequencyTable(), 4),
          policy_(&sim_, &cluster_, &meter_, &sysfs_, "/sys/cpufreq")
    {
        policy_.RegisterGovernor("userspace", MakeCpufreqUserspaceFactory());
        policy_.RegisterGovernor("performance", MakeCpufreqPerformanceFactory());
        policy_.RegisterGovernor("powersave", MakeCpufreqPowersaveFactory());
    }

    Simulator sim_;
    CpuCluster cluster_;
    CpuLoadMeter meter_;
    Sysfs sysfs_;
    CpufreqPolicy policy_;
};

TEST_F(CpufreqTest, GovernorSwitchingThroughSysfs)
{
    EXPECT_EQ(sysfs_.Read("/sys/cpufreq/scaling_governor"), "none");
    EXPECT_TRUE(sysfs_.Write("/sys/cpufreq/scaling_governor", "performance"));
    EXPECT_EQ(sysfs_.Read("/sys/cpufreq/scaling_governor"), "performance");
    EXPECT_EQ(cluster_.level(), 17);
    EXPECT_TRUE(sysfs_.Write("/sys/cpufreq/scaling_governor", "powersave"));
    EXPECT_EQ(cluster_.level(), 0);
}

TEST_F(CpufreqTest, UnknownGovernorRejected)
{
    EXPECT_FALSE(sysfs_.Write("/sys/cpufreq/scaling_governor", "bogus"));
    EXPECT_EQ(policy_.governor_name(), "none");
}

TEST_F(CpufreqTest, AvailableGovernorsListsAll)
{
    const std::string avail = sysfs_.Read("/sys/cpufreq/scaling_available_governors");
    EXPECT_NE(avail.find("userspace"), std::string::npos);
    EXPECT_NE(avail.find("performance"), std::string::npos);
    EXPECT_NE(avail.find("powersave"), std::string::npos);
}

TEST_F(CpufreqTest, UserspaceSetspeedSetsFrequency)
{
    sysfs_.Write("/sys/cpufreq/scaling_governor", "userspace");
    // 1.4976 GHz = 1497600 kHz (level 10).
    EXPECT_TRUE(sysfs_.Write("/sys/cpufreq/scaling_setspeed", "1497600"));
    EXPECT_EQ(cluster_.level(), 9);
    EXPECT_EQ(sysfs_.Read("/sys/cpufreq/scaling_cur_freq"), "1497600");
}

TEST_F(CpufreqTest, SetspeedRejectedUnderNonUserspaceGovernor)
{
    sysfs_.Write("/sys/cpufreq/scaling_governor", "performance");
    EXPECT_FALSE(sysfs_.Write("/sys/cpufreq/scaling_setspeed", "300000"));
    EXPECT_EQ(cluster_.level(), 17);
}

TEST_F(CpufreqTest, SetspeedRejectsGarbage)
{
    sysfs_.Write("/sys/cpufreq/scaling_governor", "userspace");
    EXPECT_FALSE(sysfs_.Write("/sys/cpufreq/scaling_setspeed", "not-a-number"));
    EXPECT_FALSE(sysfs_.Write("/sys/cpufreq/scaling_setspeed", "-5"));
}

TEST_F(CpufreqTest, ScalingLimitsClampRequests)
{
    policy_.SetLevelLimits(2, 10);
    policy_.RequestLevel(0);
    EXPECT_EQ(cluster_.level(), 2);
    policy_.RequestLevel(17);
    EXPECT_EQ(cluster_.level(), 10);
}

TEST_F(CpufreqTest, MinMaxFreqFilesWork)
{
    // scaling_min_freq to level 3 (729600 kHz).
    EXPECT_TRUE(sysfs_.Write("/sys/cpufreq/scaling_min_freq", "729600"));
    EXPECT_EQ(policy_.min_level_limit(), 3);
    EXPECT_EQ(sysfs_.Read("/sys/cpufreq/scaling_min_freq"), "729600");
    // Current level is re-clamped upward.
    EXPECT_EQ(cluster_.level(), 3);
    // scaling_max_freq below min is rejected.
    EXPECT_FALSE(sysfs_.Write("/sys/cpufreq/scaling_max_freq", "300000"));
}

TEST_F(CpufreqTest, AvailableFrequenciesMatchesTableII)
{
    const std::string freqs = sysfs_.Read("/sys/cpufreq/scaling_available_frequencies");
    EXPECT_NE(freqs.find("300000"), std::string::npos);
    EXPECT_NE(freqs.find("2649600"), std::string::npos);
}

TEST_F(CpufreqTest, RequestFrequencyAtOrAbove)
{
    sysfs_.Write("/sys/cpufreq/scaling_governor", "userspace");
    policy_.RequestFrequencyAtOrAbove(Gigahertz(1.0));
    EXPECT_EQ(cluster_.level(), 6);  // 1.0368 GHz is the first ≥ 1.0
}

}  // namespace
}  // namespace aeo
