#include "kernel/pmu.h"

#include <gtest/gtest.h>

namespace aeo {
namespace {

TEST(PmuTest, CountersStartAtZero)
{
    const Pmu pmu;
    EXPECT_DOUBLE_EQ(pmu.giga_instructions(), 0.0);
    EXPECT_DOUBLE_EQ(pmu.giga_cycles(), 0.0);
    EXPECT_DOUBLE_EQ(pmu.traffic_gb(), 0.0);
}

TEST(PmuTest, AdvanceAccumulatesAllCounters)
{
    Pmu pmu;
    pmu.Advance(/*gips=*/0.5, /*freq_ghz=*/1.0, /*busy_cores=*/2.0, /*gbps=*/0.25,
                SimTime::FromSeconds(4));
    EXPECT_DOUBLE_EQ(pmu.giga_instructions(), 2.0);
    EXPECT_DOUBLE_EQ(pmu.giga_cycles(), 8.0);  // 1 GHz × 2 cores × 4 s
    EXPECT_DOUBLE_EQ(pmu.traffic_gb(), 1.0);
}

TEST(PmuTest, CountersAreMonotonic)
{
    Pmu pmu;
    double last = 0.0;
    for (int i = 0; i < 10; ++i) {
        pmu.Advance(0.1, 0.3, 1.0, 0.01, SimTime::Millis(100));
        EXPECT_GE(pmu.giga_instructions(), last);
        last = pmu.giga_instructions();
    }
    EXPECT_NEAR(last, 0.1, 1e-12);
}

}  // namespace
}  // namespace aeo
