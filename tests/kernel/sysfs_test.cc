#include "kernel/sysfs.h"

#include <gtest/gtest.h>

#include "common/logging.h"

namespace aeo {
namespace {

TEST(SysfsTest, RegisterAndRead)
{
    Sysfs sysfs;
    sysfs.Register("/sys/test/value", SysfsFile{[] { return "42"; }, nullptr});
    EXPECT_TRUE(sysfs.Exists("/sys/test/value"));
    EXPECT_EQ(sysfs.Read("/sys/test/value"), "42");
}

TEST(SysfsTest, WritableFileInvokesWriter)
{
    Sysfs sysfs;
    std::string stored = "initial";
    sysfs.Register("/sys/knob",
                   SysfsFile{[&] { return stored; },
                             [&](const std::string& value) {
                                 if (value == "bad") {
                                     return false;
                                 }
                                 stored = value;
                                 return true;
                             }});
    EXPECT_TRUE(sysfs.Write("/sys/knob", "hello"));
    EXPECT_EQ(sysfs.Read("/sys/knob"), "hello");
    EXPECT_FALSE(sysfs.Write("/sys/knob", "bad"));
    EXPECT_EQ(sysfs.Read("/sys/knob"), "hello");
}

TEST(SysfsTest, ReadMissingFileIsFatal)
{
    Sysfs sysfs;
    EXPECT_THROW(sysfs.Read("/nope"), FatalError);
}

TEST(SysfsTest, WriteToReadOnlyFileIsFatal)
{
    Sysfs sysfs;
    sysfs.Register("/sys/ro", SysfsFile{[] { return "x"; }, nullptr});
    EXPECT_THROW(sysfs.Write("/sys/ro", "y"), FatalError);
}

TEST(SysfsTest, ListReturnsSortedMatchingPaths)
{
    Sysfs sysfs;
    sysfs.Register("/sys/b", SysfsFile{[] { return ""; }, nullptr});
    sysfs.Register("/sys/a", SysfsFile{[] { return ""; }, nullptr});
    sysfs.Register("/proc/x", SysfsFile{[] { return ""; }, nullptr});
    const auto paths = sysfs.List("/sys");
    ASSERT_EQ(paths.size(), 2u);
    EXPECT_EQ(paths[0], "/sys/a");
    EXPECT_EQ(paths[1], "/sys/b");
}

TEST(SysfsTest, UnregisterRemoves)
{
    Sysfs sysfs;
    sysfs.Register("/sys/tmp", SysfsFile{[] { return ""; }, nullptr});
    sysfs.Unregister("/sys/tmp");
    EXPECT_FALSE(sysfs.Exists("/sys/tmp"));
}

TEST(SysfsTest, TryReadReportsErrorsAsValues)
{
    Sysfs sysfs;
    sysfs.Register("/sys/test/value", SysfsFile{[] { return "42"; }, nullptr});

    const SysfsReadResult hit = sysfs.TryRead("/sys/test/value");
    EXPECT_TRUE(hit.ok());
    EXPECT_EQ(hit.value, "42");

    const SysfsReadResult miss = sysfs.TryRead("/nope");
    EXPECT_EQ(miss.errc, FaultErrc::kNoEnt);
}

TEST(SysfsTest, TryWriteReportsReadOnlyAndRejection)
{
    Sysfs sysfs;
    sysfs.Register("/sys/ro", SysfsFile{[] { return "x"; }, nullptr});
    sysfs.Register("/sys/knob",
                   SysfsFile{[] { return ""; },
                             [](const std::string& value) { return value != "bad"; }});

    EXPECT_EQ(sysfs.TryWrite("/sys/ro", "y"), FaultErrc::kPerm);
    EXPECT_EQ(sysfs.TryWrite("/nope", "y"), FaultErrc::kNoEnt);
    EXPECT_EQ(sysfs.TryWrite("/sys/knob", "bad"), FaultErrc::kInval);
    EXPECT_EQ(sysfs.TryWrite("/sys/knob", "good"), FaultErrc::kOk);
}

TEST(SysfsTest, ReadOrDefaultFallsBackOnAnyFailure)
{
    Sysfs sysfs;
    sysfs.Register("/sys/present", SysfsFile{[] { return "1497600"; }, nullptr});
    EXPECT_EQ(sysfs.ReadOrDefault("/sys/present", "0"), "1497600");
    EXPECT_EQ(sysfs.ReadOrDefault("/sys/absent", "fallback"), "fallback");
}

TEST(SysfsTest, InjectedWriteErrorPropagatesThroughTryWrite)
{
    Sysfs sysfs;
    std::string stored;
    sysfs.Register("/sys/knob", SysfsFile{[&] { return stored; },
                                          [&](const std::string& value) {
                                              stored = value;
                                              return true;
                                          }});
    FaultInjector injector(5);
    FaultRule rule;
    rule.path_prefix = "/sys/knob";
    rule.fail_probability = 1.0;
    rule.errc = FaultErrc::kBusy;
    rule.max_triggers = 1;
    injector.AddRule(rule);
    sysfs.SetFaultInjector(&injector);

    EXPECT_EQ(sysfs.TryWrite("/sys/knob", "v1"), FaultErrc::kBusy);
    EXPECT_TRUE(stored.empty());  // the failed write never reached the file
    EXPECT_EQ(sysfs.TryWrite("/sys/knob", "v2"), FaultErrc::kOk);
    EXPECT_EQ(stored, "v2");
}

TEST(SysfsTest, StaleReadServesThePreviousContents)
{
    Sysfs sysfs;
    std::string stored = "old";
    sysfs.Register("/sys/counter", SysfsFile{[&] { return stored; }, nullptr});

    FaultInjector injector(5);
    FaultRule rule;
    rule.path_prefix = "/sys/counter";
    rule.stale_probability = 1.0;
    rule.max_triggers = 1;
    injector.AddRule(rule);
    sysfs.SetFaultInjector(&injector);

    // The first read has nothing cached, so the stale fault (whose trigger
    // this consumes) degrades to a genuine read — which primes the cache.
    EXPECT_EQ(sysfs.TryRead("/sys/counter").value, "old");
    injector.Clear();
    injector.AddRule(rule);

    stored = "new";
    const SysfsReadResult stale = sysfs.TryRead("/sys/counter");
    EXPECT_TRUE(stale.ok());
    EXPECT_EQ(stale.value, "old");  // served from the cache, not the file
    EXPECT_EQ(sysfs.TryRead("/sys/counter").value, "new");
}

TEST(SysfsTest, DisappearedPathReportsEnoentAndNotExists)
{
    Sysfs sysfs;
    sysfs.Register("/sys/cpu1/online", SysfsFile{[] { return "1"; }, nullptr});

    FaultInjector injector(5);
    FaultRule rule;
    rule.path_prefix = "/sys/cpu1";
    rule.disappear_probability = 1.0;
    rule.max_triggers = 1;
    injector.AddRule(rule);
    sysfs.SetFaultInjector(&injector);

    EXPECT_EQ(sysfs.TryRead("/sys/cpu1/online").errc, FaultErrc::kNoEnt);
    EXPECT_FALSE(sysfs.Exists("/sys/cpu1/online"));
    injector.RepairAll();
    EXPECT_TRUE(sysfs.Exists("/sys/cpu1/online"));
}

TEST(SysfsTest, InjectedLatencyIsReportedToTheCaller)
{
    Sysfs sysfs;
    sysfs.Register("/sys/slow", SysfsFile{[] { return ""; },
                                          [](const std::string&) { return true; }});
    FaultInjector injector(5);
    FaultRule rule;
    rule.path_prefix = "/sys/slow";
    rule.latency_spike_probability = 1.0;
    rule.latency_spike = SimTime::Millis(30);
    rule.max_triggers = 1;
    injector.AddRule(rule);
    sysfs.SetFaultInjector(&injector);

    EXPECT_EQ(sysfs.TryWrite("/sys/slow", "x"), FaultErrc::kOk);
    EXPECT_EQ(sysfs.last_injected_latency(), SimTime::Millis(30));
    EXPECT_EQ(sysfs.TryWrite("/sys/slow", "x"), FaultErrc::kOk);
    EXPECT_EQ(sysfs.last_injected_latency(), SimTime::Zero());
}

TEST(SysfsTest, LegacyShimsSurfaceInjectedFaultsAsFatal)
{
    Sysfs sysfs;
    sysfs.Register("/sys/knob", SysfsFile{[] { return "v"; },
                                          [](const std::string&) { return true; }});
    FaultInjector injector(5);
    FaultRule rule;
    rule.path_prefix = "/sys/knob";
    rule.fail_probability = 1.0;
    rule.errc = FaultErrc::kIo;
    injector.AddRule(rule);
    sysfs.SetFaultInjector(&injector);

    EXPECT_THROW(sysfs.Read("/sys/knob"), FatalError);
    EXPECT_THROW(sysfs.Write("/sys/knob", "x"), FatalError);
}

TEST(SysfsDeathTest, DuplicateRegistrationPanics)
{
    Sysfs sysfs;
    sysfs.Register("/sys/dup", SysfsFile{[] { return ""; }, nullptr});
    // The panic names the conflicting path so the colliding component is
    // identifiable from the message alone.
    EXPECT_DEATH(sysfs.Register("/sys/dup", SysfsFile{[] { return ""; }, nullptr}),
                 "'/sys/dup' registered twice");
}

TEST(SysfsDeathTest, RelativePathPanics)
{
    Sysfs sysfs;
    EXPECT_DEATH(sysfs.Register("relative", SysfsFile{[] { return ""; }, nullptr}),
                 "absolute");
}

}  // namespace
}  // namespace aeo
