#include "kernel/sysfs.h"

#include <gtest/gtest.h>

#include "common/logging.h"

namespace aeo {
namespace {

TEST(SysfsTest, RegisterAndRead)
{
    Sysfs sysfs;
    sysfs.Register("/sys/test/value", SysfsFile{[] { return "42"; }, nullptr});
    EXPECT_TRUE(sysfs.Exists("/sys/test/value"));
    EXPECT_EQ(sysfs.Read("/sys/test/value"), "42");
}

TEST(SysfsTest, WritableFileInvokesWriter)
{
    Sysfs sysfs;
    std::string stored = "initial";
    sysfs.Register("/sys/knob",
                   SysfsFile{[&] { return stored; },
                             [&](const std::string& value) {
                                 if (value == "bad") {
                                     return false;
                                 }
                                 stored = value;
                                 return true;
                             }});
    EXPECT_TRUE(sysfs.Write("/sys/knob", "hello"));
    EXPECT_EQ(sysfs.Read("/sys/knob"), "hello");
    EXPECT_FALSE(sysfs.Write("/sys/knob", "bad"));
    EXPECT_EQ(sysfs.Read("/sys/knob"), "hello");
}

TEST(SysfsTest, ReadMissingFileIsFatal)
{
    Sysfs sysfs;
    EXPECT_THROW(sysfs.Read("/nope"), FatalError);
}

TEST(SysfsTest, WriteToReadOnlyFileIsFatal)
{
    Sysfs sysfs;
    sysfs.Register("/sys/ro", SysfsFile{[] { return "x"; }, nullptr});
    EXPECT_THROW(sysfs.Write("/sys/ro", "y"), FatalError);
}

TEST(SysfsTest, ListReturnsSortedMatchingPaths)
{
    Sysfs sysfs;
    sysfs.Register("/sys/b", SysfsFile{[] { return ""; }, nullptr});
    sysfs.Register("/sys/a", SysfsFile{[] { return ""; }, nullptr});
    sysfs.Register("/proc/x", SysfsFile{[] { return ""; }, nullptr});
    const auto paths = sysfs.List("/sys");
    ASSERT_EQ(paths.size(), 2u);
    EXPECT_EQ(paths[0], "/sys/a");
    EXPECT_EQ(paths[1], "/sys/b");
}

TEST(SysfsTest, UnregisterRemoves)
{
    Sysfs sysfs;
    sysfs.Register("/sys/tmp", SysfsFile{[] { return ""; }, nullptr});
    sysfs.Unregister("/sys/tmp");
    EXPECT_FALSE(sysfs.Exists("/sys/tmp"));
}

TEST(SysfsDeathTest, DuplicateRegistrationPanics)
{
    Sysfs sysfs;
    sysfs.Register("/sys/dup", SysfsFile{[] { return ""; }, nullptr});
    EXPECT_DEATH(sysfs.Register("/sys/dup", SysfsFile{[] { return ""; }, nullptr}),
                 "registered twice");
}

TEST(SysfsDeathTest, RelativePathPanics)
{
    Sysfs sysfs;
    EXPECT_DEATH(sysfs.Register("relative", SysfsFile{[] { return ""; }, nullptr}),
                 "absolute");
}

}  // namespace
}  // namespace aeo
