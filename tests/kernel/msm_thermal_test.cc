#include "kernel/msm_thermal.h"

#include <gtest/gtest.h>

#include "common/strings.h"
#include "kernel/governors/cpufreq_userspace.h"
#include "soc/nexus6.h"

namespace aeo {
namespace {

/** Aggressive tuning so tests exercise several stages in a few polls. */
MsmThermalParams
TestParams()
{
    MsmThermalParams params;
    params.trigger_temp_c = 42.0;
    params.hysteresis_c = 3.0;
    params.levels_per_step = 4;
    params.min_cap_level = 4;
    return params;
}

class MsmThermalTest : public ::testing::Test {
  protected:
    MsmThermalTest()
        : cluster_(MakeNexus6FrequencyTable(), 4),
          policy_(&sim_, &cluster_, &meter_, &sysfs_, "/sys/cpufreq"),
          thermal_(&sim_, &policy_, &model_, &sysfs_, TestParams())
    {
        policy_.RegisterGovernor("userspace", MakeCpufreqUserspaceFactory());
        sysfs_.Write("/sys/cpufreq/scaling_governor", "userspace");
        thermal_.Start();
    }

    /** Runs enough polls for the driver to act @p n times. */
    void Polls(int n) { sim_.RunFor(thermal_.params().poll_period * n); }

    Simulator sim_;
    CpuCluster cluster_;
    CpuLoadMeter meter_;
    Sysfs sysfs_;
    CpufreqPolicy policy_;
    ThermalModel model_;
    MsmThermal thermal_;
};

TEST_F(MsmThermalTest, StaysUnthrottledWhileCool)
{
    Polls(10);
    EXPECT_EQ(thermal_.cap_level(), cluster_.table().max_level());
    EXPECT_EQ(thermal_.stage(), 0);
    EXPECT_EQ(thermal_.clamp_event_count(), 0u);
}

TEST_F(MsmThermalTest, StepsTheCapDownInStagesWhenHot)
{
    model_.Reset(50.0);
    Polls(1);
    EXPECT_EQ(thermal_.cap_level(), cluster_.table().max_level() - 4);
    EXPECT_EQ(thermal_.stage(), 1);
    Polls(1);
    EXPECT_EQ(thermal_.cap_level(), cluster_.table().max_level() - 8);
    EXPECT_EQ(thermal_.stage(), 2);
    EXPECT_EQ(thermal_.clamp_event_count(), 2u);
    EXPECT_EQ(thermal_.max_stage_reached(), 2);
}

TEST_F(MsmThermalTest, CapNeverDropsBelowTheFloor)
{
    model_.Reset(60.0);
    Polls(20);
    EXPECT_EQ(thermal_.cap_level(), TestParams().min_cap_level);
}

TEST_F(MsmThermalTest, ClampIsSilentFromUserspace)
{
    model_.Reset(50.0);
    Polls(20);  // cap is pinned at the floor (level 4)

    // The userspace governor write still reports success...
    EXPECT_TRUE(sysfs_.Write("/sys/cpufreq/scaling_setspeed", "2649600"));
    // ...but the delivered frequency is the capped one; only read-back of
    // scaling_cur_freq / scaling_max_freq exposes the substitution.
    const Gigahertz capped = cluster_.table().FrequencyAt(4);
    const std::string khz =
        StrFormat("%lld", static_cast<long long>(capped.value() * 1e6 + 0.5));
    EXPECT_EQ(sysfs_.Read("/sys/cpufreq/scaling_cur_freq"), khz);
    EXPECT_EQ(sysfs_.Read("/sys/cpufreq/scaling_max_freq"), khz);
    EXPECT_EQ(cluster_.level(), 4);
}

TEST_F(MsmThermalTest, UnwindsOnlyBelowTheHysteresisBand)
{
    model_.Reset(50.0);
    Polls(2);
    const int capped = thermal_.cap_level();

    // Inside the band (trigger − hysteresis < T < trigger): hold.
    model_.Reset(40.0);
    Polls(5);
    EXPECT_EQ(thermal_.cap_level(), capped);

    // Below the band: stage back up to the unthrottled ceiling.
    model_.Reset(38.0);
    Polls(5);
    EXPECT_EQ(thermal_.cap_level(), cluster_.table().max_level());
    EXPECT_GE(thermal_.unclamp_event_count(), 2u);
}

TEST_F(MsmThermalTest, ZoneTempNodeReadsMillidegrees)
{
    model_.Reset(43.5);
    EXPECT_EQ(sysfs_.Read(std::string(kThermalZoneSysfsRoot) + "/temp"),
              "43500");
}

TEST_F(MsmThermalTest, EnabledNodeDisablesAndRestoresThrottling)
{
    const std::string node = std::string(kMsmThermalSysfsRoot) + "/enabled";
    model_.Reset(50.0);
    Polls(2);
    EXPECT_LT(thermal_.cap_level(), cluster_.table().max_level());

    EXPECT_TRUE(sysfs_.Write(node, "N"));
    Polls(1);  // disabled: the next poll restores the full table
    EXPECT_EQ(thermal_.cap_level(), cluster_.table().max_level());
    EXPECT_EQ(sysfs_.Read(node), "N");

    EXPECT_TRUE(sysfs_.Write(node, "Y"));
    Polls(1);  // still hot: throttling resumes
    EXPECT_LT(thermal_.cap_level(), cluster_.table().max_level());
    EXPECT_FALSE(sysfs_.Write(node, "maybe"));
}

TEST_F(MsmThermalTest, TempThresholdNodeRetunesTheTrigger)
{
    const std::string node =
        std::string(kMsmThermalSysfsRoot) + "/temp_threshold";
    EXPECT_EQ(sysfs_.Read(node), "42");
    EXPECT_TRUE(sysfs_.Write(node, "60"));
    model_.Reset(50.0);  // hot for the default trigger, cool for the new one
    Polls(5);
    EXPECT_EQ(thermal_.cap_level(), cluster_.table().max_level());
    EXPECT_FALSE(sysfs_.Write(node, "-5"));
    EXPECT_FALSE(sysfs_.Write(node, "warm"));
}

TEST_F(MsmThermalTest, StopRestoresTheUnthrottledCeiling)
{
    model_.Reset(55.0);
    Polls(3);
    EXPECT_LT(thermal_.cap_level(), cluster_.table().max_level());
    thermal_.Stop();
    EXPECT_EQ(thermal_.cap_level(), cluster_.table().max_level());
    EXPECT_EQ(policy_.effective_max_level(), cluster_.table().max_level());
}

}  // namespace
}  // namespace aeo
