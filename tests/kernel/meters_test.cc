#include "kernel/meters.h"

#include <gtest/gtest.h>

namespace aeo {
namespace {

TEST(CpuLoadMeterTest, AccumulatesBusyTime)
{
    CpuLoadMeter meter;
    meter.Advance(2.0, 0.5, SimTime::FromSeconds(1));
    meter.Advance(4.0, 1.0, SimTime::FromSeconds(1));
    EXPECT_DOUBLE_EQ(meter.busy_core_seconds(), 6.0);
    EXPECT_EQ(meter.elapsed(), SimTime::FromSeconds(2));
}

TEST(CpuLoadWindowTest, ComputesWindowedLoad)
{
    CpuLoadMeter meter;
    CpuLoadWindow window(&meter);
    meter.Advance(2.0, 0.5, SimTime::FromSeconds(1));  // 2 busy cores of 4 → 0.5
    EXPECT_DOUBLE_EQ(window.SampleLoad(4), 0.5);
    meter.Advance(4.0, 1.0, SimTime::FromSeconds(1));  // full load
    EXPECT_DOUBLE_EQ(window.SampleLoad(4), 1.0);
}

TEST(CpuLoadWindowTest, WindowRestartsAfterSample)
{
    CpuLoadMeter meter;
    CpuLoadWindow window(&meter);
    meter.Advance(4.0, 1.0, SimTime::FromSeconds(1));
    window.SampleLoad(4);
    meter.Advance(0.0, 0.0, SimTime::FromSeconds(1));
    EXPECT_DOUBLE_EQ(window.SampleLoad(4), 0.0);
}

TEST(CpuLoadWindowTest, NoElapsedTimeGivesZero)
{
    CpuLoadMeter meter;
    CpuLoadWindow window(&meter);
    EXPECT_DOUBLE_EQ(window.SampleLoad(4), 0.0);
}

TEST(CpuLoadWindowTest, LoadIsClampedToOne)
{
    CpuLoadMeter meter;
    CpuLoadWindow window(&meter);
    meter.Advance(8.0, 1.0, SimTime::FromSeconds(1));  // more than 4 cores' worth
    EXPECT_DOUBLE_EQ(window.SampleLoad(4), 1.0);
}

TEST(CpuLoadWindowTest, CoreLoadTracksBusiestCore)
{
    CpuLoadMeter meter;
    CpuLoadWindow window(&meter);
    // A 2-thread burst: 2 busy cores, busiest pegged at 1.0. The 4-core
    // average is 0.5 but the core load — what interactive samples — is 1.0.
    meter.Advance(2.0, 1.0, SimTime::FromSeconds(1));
    EXPECT_DOUBLE_EQ(window.SampleCoreLoad(), 1.0);
    meter.Advance(1.2, 0.6, SimTime::FromSeconds(1));
    EXPECT_DOUBLE_EQ(window.SampleCoreLoad(), 0.6);
}

TEST(CpuLoadWindowTest, CoreLoadWindowRestartsAndMixes)
{
    CpuLoadMeter meter;
    CpuLoadWindow window(&meter);
    meter.Advance(2.0, 1.0, SimTime::FromSeconds(1));
    meter.Advance(0.0, 0.0, SimTime::FromSeconds(1));
    EXPECT_DOUBLE_EQ(window.SampleCoreLoad(), 0.5);  // 1 s at 1.0, 1 s at 0
    meter.Advance(1.0, 0.25, SimTime::FromSeconds(2));
    EXPECT_DOUBLE_EQ(window.SampleCoreLoad(), 0.25);
}

TEST(BusTrafficMeterTest, AccumulatesGigabytes)
{
    BusTrafficMeter meter;
    meter.Advance(2.0, SimTime::FromSeconds(3));
    EXPECT_DOUBLE_EQ(meter.gigabytes(), 6.0);
}

TEST(BusTrafficWindowTest, ComputesWindowedMbps)
{
    BusTrafficMeter meter;
    BusTrafficWindow window(&meter, SimTime::Zero());
    meter.Advance(1.0, SimTime::FromSeconds(2));  // 1 GB/s for 2 s
    EXPECT_NEAR(window.SampleMbps(SimTime::FromSeconds(2)), 1000.0, 1e-9);
    meter.Advance(0.5, SimTime::FromSeconds(2));
    EXPECT_NEAR(window.SampleMbps(SimTime::FromSeconds(4)), 500.0, 1e-9);
}

TEST(BusTrafficWindowTest, ZeroWindowGivesZero)
{
    BusTrafficMeter meter;
    BusTrafficWindow window(&meter, SimTime::Zero());
    EXPECT_DOUBLE_EQ(window.SampleMbps(SimTime::Zero()), 0.0);
}

}  // namespace
}  // namespace aeo
