#include "kernel/devfreq.h"

#include <gtest/gtest.h>

#include "kernel/governors/devfreq_simple.h"
#include "soc/nexus6.h"

namespace aeo {
namespace {

class DevfreqTest : public ::testing::Test {
  protected:
    DevfreqTest()
        : bus_(MakeNexus6BandwidthTable()),
          policy_(&sim_, &bus_, &meter_, &sysfs_, "/sys/devfreq")
    {
        policy_.RegisterGovernor("userspace", MakeDevfreqUserspaceFactory());
        policy_.RegisterGovernor("performance", MakeDevfreqPerformanceFactory());
        policy_.RegisterGovernor("powersave", MakeDevfreqPowersaveFactory());
    }

    Simulator sim_;
    MemoryBus bus_;
    BusTrafficMeter meter_;
    Sysfs sysfs_;
    DevfreqPolicy policy_;
};

TEST_F(DevfreqTest, GovernorSwitchingThroughSysfs)
{
    EXPECT_TRUE(sysfs_.Write("/sys/devfreq/governor", "performance"));
    EXPECT_EQ(bus_.level(), 12);
    EXPECT_TRUE(sysfs_.Write("/sys/devfreq/governor", "powersave"));
    EXPECT_EQ(bus_.level(), 0);
}

TEST_F(DevfreqTest, UserspaceSetFreq)
{
    sysfs_.Write("/sys/devfreq/governor", "userspace");
    EXPECT_TRUE(sysfs_.Write("/sys/devfreq/userspace/set_freq", "3051"));
    EXPECT_EQ(bus_.level(), 4);
    EXPECT_EQ(sysfs_.Read("/sys/devfreq/cur_freq"), "3051");
}

TEST_F(DevfreqTest, SetFreqRejectedUnderOtherGovernors)
{
    sysfs_.Write("/sys/devfreq/governor", "performance");
    EXPECT_FALSE(sysfs_.Write("/sys/devfreq/userspace/set_freq", "762"));
    EXPECT_EQ(bus_.level(), 12);
}

TEST_F(DevfreqTest, LimitsClampRequests)
{
    policy_.SetLevelLimits(2, 8);
    policy_.RequestLevel(0);
    EXPECT_EQ(bus_.level(), 2);
    policy_.RequestLevel(12);
    EXPECT_EQ(bus_.level(), 8);
}

TEST_F(DevfreqTest, RequestBandwidthAtOrAbove)
{
    policy_.RequestBandwidthAtOrAbove(MegabytesPerSecond(5000.0));
    EXPECT_EQ(bus_.level(), 7);  // 5996 is the first ≥ 5000
}

TEST_F(DevfreqTest, MinMaxFreqFiles)
{
    EXPECT_TRUE(sysfs_.Write("/sys/devfreq/min_freq", "1525"));
    EXPECT_EQ(policy_.min_level_limit(), 2);
    EXPECT_EQ(bus_.level(), 2);
    EXPECT_TRUE(sysfs_.Write("/sys/devfreq/max_freq", "8056"));
    EXPECT_EQ(policy_.max_level_limit(), 9);
}

TEST_F(DevfreqTest, AvailableFrequenciesListsTable)
{
    const std::string freqs = sysfs_.Read("/sys/devfreq/available_frequencies");
    EXPECT_NE(freqs.find("762"), std::string::npos);
    EXPECT_NE(freqs.find("16250"), std::string::npos);
}

}  // namespace
}  // namespace aeo
