#include "kernel/input_boost.h"

#include <gtest/gtest.h>

#include "kernel/governors/cpufreq_userspace.h"
#include "soc/nexus6.h"

namespace aeo {
namespace {

class InputBoostTest : public ::testing::Test {
  protected:
    InputBoostTest()
        : cluster_(MakeNexus6FrequencyTable(), 4),
          policy_(&sim_, &cluster_, &meter_, &sysfs_, "/sys/cpufreq"),
          boost_(&sim_, &policy_)
    {
        policy_.RegisterGovernor("userspace", MakeCpufreqUserspaceFactory());
        policy_.SetGovernor("userspace");
    }

    Simulator sim_;
    CpuCluster cluster_;
    CpuLoadMeter meter_;
    Sysfs sysfs_;
    CpufreqPolicy policy_;
    InputBoost boost_;
};

TEST_F(InputBoostTest, TouchRaisesTheFrequencyFloor)
{
    ASSERT_EQ(cluster_.level(), 0);
    boost_.OnTouch();
    EXPECT_TRUE(boost_.boosted());
    // The floor jumps to the boost frequency (1.4976 GHz = level 10).
    EXPECT_EQ(policy_.min_level_limit(), 9);
    EXPECT_EQ(cluster_.level(), 9);  // current level re-clamped upward
}

TEST_F(InputBoostTest, BoostExpiresAfterTheWindow)
{
    boost_.OnTouch();
    sim_.RunUntil(SimTime::Millis(1400));
    EXPECT_TRUE(boost_.boosted());
    sim_.RunUntil(SimTime::Millis(1600));
    EXPECT_FALSE(boost_.boosted());
    EXPECT_EQ(policy_.min_level_limit(), 0);
}

TEST_F(InputBoostTest, RepeatedTouchesExtendTheWindow)
{
    boost_.OnTouch();
    sim_.RunUntil(SimTime::Millis(1000));
    boost_.OnTouch();  // extends to t = 2.5 s
    sim_.RunUntil(SimTime::Millis(2400));
    EXPECT_TRUE(boost_.boosted());
    sim_.RunUntil(SimTime::Millis(2600));
    EXPECT_FALSE(boost_.boosted());
    EXPECT_EQ(boost_.touch_count(), 2u);
}

TEST_F(InputBoostTest, GovernorMinLimitRestoredExactly)
{
    policy_.SetLevelLimits(2, 17);
    boost_.OnTouch();
    sim_.RunUntil(SimTime::FromSeconds(2));
    EXPECT_EQ(policy_.min_level_limit(), 2);
}

}  // namespace
}  // namespace aeo
