#include "kernel/mpdecision.h"

#include <gtest/gtest.h>

#include "soc/nexus6.h"

namespace aeo {
namespace {

class MpdecisionTest : public ::testing::Test {
  protected:
    MpdecisionTest()
        : cluster_(MakeNexus6FrequencyTable(), 4), hotplug_(&sim_, &cluster_, &meter_)
    {
    }

    void
    Drive(SimTime duration, double busy_per_online)
    {
        const SimTime slice = SimTime::Millis(10);
        SimTime done;
        while (done < duration) {
            const double busy =
                busy_per_online * static_cast<double>(cluster_.online_cores());
            meter_.Advance(busy, busy_per_online, slice);
            sim_.RunFor(slice);
            done += slice;
        }
    }

    Simulator sim_;
    CpuCluster cluster_;
    CpuLoadMeter meter_;
    Mpdecision hotplug_;
};

TEST_F(MpdecisionTest, OfflinesCoresWhenIdle)
{
    hotplug_.Start();
    Drive(SimTime::FromSeconds(1), 0.05);
    EXPECT_EQ(cluster_.online_cores(), 1);
    EXPECT_GE(hotplug_.transition_count(), 3u);
}

TEST_F(MpdecisionTest, OnlinesCoresUnderLoad)
{
    hotplug_.Start();
    Drive(SimTime::FromSeconds(1), 0.05);
    ASSERT_EQ(cluster_.online_cores(), 1);
    Drive(SimTime::FromSeconds(1), 0.95);
    EXPECT_EQ(cluster_.online_cores(), 4);
}

TEST_F(MpdecisionTest, HoldsInTheDeadBand)
{
    hotplug_.Start();
    Drive(SimTime::Millis(500), 0.5);
    const int online = cluster_.online_cores();
    Drive(SimTime::FromSeconds(1), 0.5);
    EXPECT_EQ(cluster_.online_cores(), online);
}

TEST_F(MpdecisionTest, StopRestoresAllCores)
{
    hotplug_.Start();
    Drive(SimTime::FromSeconds(1), 0.05);
    ASSERT_LT(cluster_.online_cores(), 4);
    hotplug_.Stop();
    EXPECT_EQ(cluster_.online_cores(), 4);
    EXPECT_FALSE(hotplug_.running());
}

}  // namespace
}  // namespace aeo
