#include "kernel/perf_tool.h"

#include <gtest/gtest.h>

namespace aeo {
namespace {

class PerfToolTest : public ::testing::Test {
  protected:
    /** Feeds the PMU at a constant rate while the simulator runs. */
    void
    Drive(SimTime duration, double gips)
    {
        const SimTime slice = SimTime::Millis(10);
        SimTime done;
        while (done < duration) {
            pmu_.Advance(gips, 1.0, 1.0, 0.0, slice);
            sim_.RunFor(slice);
            done += slice;
        }
    }

    Simulator sim_;
    Pmu pmu_;
};

TEST_F(PerfToolTest, MeasuresSteadyRate)
{
    PerfToolConfig config;
    config.noise_rel_stddev = 0.0;
    PerfTool perf(&sim_, &pmu_, 1, config);
    perf.Start();
    Drive(SimTime::FromSeconds(3), 0.5);
    EXPECT_NEAR(perf.LastSample().gips, 0.5, 1e-9);
    EXPECT_EQ(perf.sample_count(), 3u);
}

TEST_F(PerfToolTest, PeriodClampedToFloor)
{
    PerfToolConfig config;
    config.sampling_period = SimTime::Millis(10);  // below the 100 ms floor
    PerfTool perf(&sim_, &pmu_, 1, config);
    EXPECT_EQ(perf.effective_period(), PerfTool::kMinSamplingPeriod);
}

TEST_F(PerfToolTest, OverheadScalesInverselyWithPeriod)
{
    PerfToolConfig at_1s;
    at_1s.sampling_period = SimTime::FromSeconds(1);
    PerfTool slow(&sim_, &pmu_, 1, at_1s);
    slow.Start();
    // §V-A1: 4 % at 1 s, 40 % at 100 ms, 15 mW at 1 s.
    EXPECT_NEAR(slow.cpu_overhead_fraction(), 0.04, 1e-12);
    EXPECT_NEAR(slow.power_overhead_mw(), 15.0, 1e-12);
    slow.Stop();

    PerfToolConfig at_100ms;
    at_100ms.sampling_period = SimTime::Millis(100);
    PerfTool fast(&sim_, &pmu_, 1, at_100ms);
    fast.Start();
    EXPECT_NEAR(fast.cpu_overhead_fraction(), 0.40, 1e-12);
    fast.Stop();
}

TEST_F(PerfToolTest, NoOverheadWhenStopped)
{
    PerfTool perf(&sim_, &pmu_, 1);
    EXPECT_DOUBLE_EQ(perf.cpu_overhead_fraction(), 0.0);
    EXPECT_DOUBLE_EQ(perf.power_overhead_mw(), 0.0);
}

TEST_F(PerfToolTest, WindowAverageDrains)
{
    PerfToolConfig config;
    config.noise_rel_stddev = 0.0;
    PerfTool perf(&sim_, &pmu_, 1, config);
    perf.Start();
    Drive(SimTime::FromSeconds(2), 1.0);
    EXPECT_NEAR(perf.DrainWindowAverage(), 1.0, 1e-9);
    // Window drained: with no new samples it falls back to the last sample.
    EXPECT_NEAR(perf.DrainWindowAverage(), 1.0, 1e-9);
    Drive(SimTime::FromSeconds(2), 0.2);
    EXPECT_NEAR(perf.DrainWindowAverage(), 0.2, 1e-9);
}

TEST_F(PerfToolTest, NoisyMeasurementsVaryButAverageOut)
{
    PerfToolConfig config;
    config.noise_rel_stddev = 0.05;
    config.sampling_period = SimTime::Millis(100);
    PerfTool perf(&sim_, &pmu_, 99, config);
    perf.Start();
    Drive(SimTime::FromSeconds(20), 0.5);  // 200 samples
    EXPECT_NEAR(perf.DrainWindowAverage(), 0.5, 0.01);
}

TEST_F(PerfToolTest, ZeroBeforeFirstSample)
{
    PerfTool perf(&sim_, &pmu_, 1);
    perf.Start();
    EXPECT_DOUBLE_EQ(perf.DrainWindowAverage(), 0.0);
}

}  // namespace
}  // namespace aeo
