# Empty dependencies file for aeo_lp.
# This may be replaced when dependencies are built.
