file(REMOVE_RECURSE
  "libaeo_lp.a"
)
