file(REMOVE_RECURSE
  "CMakeFiles/aeo_lp.dir/schedule_lp.cc.o"
  "CMakeFiles/aeo_lp.dir/schedule_lp.cc.o.d"
  "CMakeFiles/aeo_lp.dir/simplex.cc.o"
  "CMakeFiles/aeo_lp.dir/simplex.cc.o.d"
  "libaeo_lp.a"
  "libaeo_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeo_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
