file(REMOVE_RECURSE
  "CMakeFiles/aeo_apps.dir/app_model.cc.o"
  "CMakeFiles/aeo_apps.dir/app_model.cc.o.d"
  "CMakeFiles/aeo_apps.dir/app_registry.cc.o"
  "CMakeFiles/aeo_apps.dir/app_registry.cc.o.d"
  "CMakeFiles/aeo_apps.dir/background_load.cc.o"
  "CMakeFiles/aeo_apps.dir/background_load.cc.o.d"
  "CMakeFiles/aeo_apps.dir/workloads.cc.o"
  "CMakeFiles/aeo_apps.dir/workloads.cc.o.d"
  "libaeo_apps.a"
  "libaeo_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeo_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
