# Empty compiler generated dependencies file for aeo_apps.
# This may be replaced when dependencies are built.
