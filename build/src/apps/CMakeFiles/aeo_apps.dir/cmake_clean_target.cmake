file(REMOVE_RECURSE
  "libaeo_apps.a"
)
