
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app_model.cc" "src/apps/CMakeFiles/aeo_apps.dir/app_model.cc.o" "gcc" "src/apps/CMakeFiles/aeo_apps.dir/app_model.cc.o.d"
  "/root/repo/src/apps/app_registry.cc" "src/apps/CMakeFiles/aeo_apps.dir/app_registry.cc.o" "gcc" "src/apps/CMakeFiles/aeo_apps.dir/app_registry.cc.o.d"
  "/root/repo/src/apps/background_load.cc" "src/apps/CMakeFiles/aeo_apps.dir/background_load.cc.o" "gcc" "src/apps/CMakeFiles/aeo_apps.dir/background_load.cc.o.d"
  "/root/repo/src/apps/workloads.cc" "src/apps/CMakeFiles/aeo_apps.dir/workloads.cc.o" "gcc" "src/apps/CMakeFiles/aeo_apps.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aeo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aeo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/aeo_soc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
