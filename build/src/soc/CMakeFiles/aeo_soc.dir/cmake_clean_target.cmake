file(REMOVE_RECURSE
  "libaeo_soc.a"
)
