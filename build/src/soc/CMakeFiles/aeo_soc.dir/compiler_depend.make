# Empty compiler generated dependencies file for aeo_soc.
# This may be replaced when dependencies are built.
