file(REMOVE_RECURSE
  "CMakeFiles/aeo_soc.dir/bandwidth_table.cc.o"
  "CMakeFiles/aeo_soc.dir/bandwidth_table.cc.o.d"
  "CMakeFiles/aeo_soc.dir/cpu_cluster.cc.o"
  "CMakeFiles/aeo_soc.dir/cpu_cluster.cc.o.d"
  "CMakeFiles/aeo_soc.dir/execution_engine.cc.o"
  "CMakeFiles/aeo_soc.dir/execution_engine.cc.o.d"
  "CMakeFiles/aeo_soc.dir/frequency_table.cc.o"
  "CMakeFiles/aeo_soc.dir/frequency_table.cc.o.d"
  "CMakeFiles/aeo_soc.dir/gpu_domain.cc.o"
  "CMakeFiles/aeo_soc.dir/gpu_domain.cc.o.d"
  "CMakeFiles/aeo_soc.dir/memory_bus.cc.o"
  "CMakeFiles/aeo_soc.dir/memory_bus.cc.o.d"
  "CMakeFiles/aeo_soc.dir/nexus6.cc.o"
  "CMakeFiles/aeo_soc.dir/nexus6.cc.o.d"
  "libaeo_soc.a"
  "libaeo_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeo_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
