
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soc/bandwidth_table.cc" "src/soc/CMakeFiles/aeo_soc.dir/bandwidth_table.cc.o" "gcc" "src/soc/CMakeFiles/aeo_soc.dir/bandwidth_table.cc.o.d"
  "/root/repo/src/soc/cpu_cluster.cc" "src/soc/CMakeFiles/aeo_soc.dir/cpu_cluster.cc.o" "gcc" "src/soc/CMakeFiles/aeo_soc.dir/cpu_cluster.cc.o.d"
  "/root/repo/src/soc/execution_engine.cc" "src/soc/CMakeFiles/aeo_soc.dir/execution_engine.cc.o" "gcc" "src/soc/CMakeFiles/aeo_soc.dir/execution_engine.cc.o.d"
  "/root/repo/src/soc/frequency_table.cc" "src/soc/CMakeFiles/aeo_soc.dir/frequency_table.cc.o" "gcc" "src/soc/CMakeFiles/aeo_soc.dir/frequency_table.cc.o.d"
  "/root/repo/src/soc/gpu_domain.cc" "src/soc/CMakeFiles/aeo_soc.dir/gpu_domain.cc.o" "gcc" "src/soc/CMakeFiles/aeo_soc.dir/gpu_domain.cc.o.d"
  "/root/repo/src/soc/memory_bus.cc" "src/soc/CMakeFiles/aeo_soc.dir/memory_bus.cc.o" "gcc" "src/soc/CMakeFiles/aeo_soc.dir/memory_bus.cc.o.d"
  "/root/repo/src/soc/nexus6.cc" "src/soc/CMakeFiles/aeo_soc.dir/nexus6.cc.o" "gcc" "src/soc/CMakeFiles/aeo_soc.dir/nexus6.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aeo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aeo_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
