file(REMOVE_RECURSE
  "libaeo_sim.a"
)
