# Empty compiler generated dependencies file for aeo_sim.
# This may be replaced when dependencies are built.
