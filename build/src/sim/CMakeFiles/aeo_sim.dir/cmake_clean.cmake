file(REMOVE_RECURSE
  "CMakeFiles/aeo_sim.dir/event_queue.cc.o"
  "CMakeFiles/aeo_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/aeo_sim.dir/periodic_task.cc.o"
  "CMakeFiles/aeo_sim.dir/periodic_task.cc.o.d"
  "CMakeFiles/aeo_sim.dir/simulator.cc.o"
  "CMakeFiles/aeo_sim.dir/simulator.cc.o.d"
  "libaeo_sim.a"
  "libaeo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
