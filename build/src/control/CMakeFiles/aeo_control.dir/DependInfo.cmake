
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/integral_controller.cc" "src/control/CMakeFiles/aeo_control.dir/integral_controller.cc.o" "gcc" "src/control/CMakeFiles/aeo_control.dir/integral_controller.cc.o.d"
  "/root/repo/src/control/kalman_filter.cc" "src/control/CMakeFiles/aeo_control.dir/kalman_filter.cc.o" "gcc" "src/control/CMakeFiles/aeo_control.dir/kalman_filter.cc.o.d"
  "/root/repo/src/control/phase_detector.cc" "src/control/CMakeFiles/aeo_control.dir/phase_detector.cc.o" "gcc" "src/control/CMakeFiles/aeo_control.dir/phase_detector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aeo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
