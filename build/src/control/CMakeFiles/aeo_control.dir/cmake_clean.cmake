file(REMOVE_RECURSE
  "CMakeFiles/aeo_control.dir/integral_controller.cc.o"
  "CMakeFiles/aeo_control.dir/integral_controller.cc.o.d"
  "CMakeFiles/aeo_control.dir/kalman_filter.cc.o"
  "CMakeFiles/aeo_control.dir/kalman_filter.cc.o.d"
  "CMakeFiles/aeo_control.dir/phase_detector.cc.o"
  "CMakeFiles/aeo_control.dir/phase_detector.cc.o.d"
  "libaeo_control.a"
  "libaeo_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeo_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
