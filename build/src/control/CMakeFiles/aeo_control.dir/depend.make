# Empty dependencies file for aeo_control.
# This may be replaced when dependencies are built.
