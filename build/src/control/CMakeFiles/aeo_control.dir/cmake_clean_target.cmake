file(REMOVE_RECURSE
  "libaeo_control.a"
)
