file(REMOVE_RECURSE
  "libaeo_power.a"
)
