
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/battery.cc" "src/power/CMakeFiles/aeo_power.dir/battery.cc.o" "gcc" "src/power/CMakeFiles/aeo_power.dir/battery.cc.o.d"
  "/root/repo/src/power/energy_meter.cc" "src/power/CMakeFiles/aeo_power.dir/energy_meter.cc.o" "gcc" "src/power/CMakeFiles/aeo_power.dir/energy_meter.cc.o.d"
  "/root/repo/src/power/monsoon.cc" "src/power/CMakeFiles/aeo_power.dir/monsoon.cc.o" "gcc" "src/power/CMakeFiles/aeo_power.dir/monsoon.cc.o.d"
  "/root/repo/src/power/power_model.cc" "src/power/CMakeFiles/aeo_power.dir/power_model.cc.o" "gcc" "src/power/CMakeFiles/aeo_power.dir/power_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aeo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aeo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/aeo_soc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
