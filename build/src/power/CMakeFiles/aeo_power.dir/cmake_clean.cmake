file(REMOVE_RECURSE
  "CMakeFiles/aeo_power.dir/battery.cc.o"
  "CMakeFiles/aeo_power.dir/battery.cc.o.d"
  "CMakeFiles/aeo_power.dir/energy_meter.cc.o"
  "CMakeFiles/aeo_power.dir/energy_meter.cc.o.d"
  "CMakeFiles/aeo_power.dir/monsoon.cc.o"
  "CMakeFiles/aeo_power.dir/monsoon.cc.o.d"
  "CMakeFiles/aeo_power.dir/power_model.cc.o"
  "CMakeFiles/aeo_power.dir/power_model.cc.o.d"
  "libaeo_power.a"
  "libaeo_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeo_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
