# Empty compiler generated dependencies file for aeo_power.
# This may be replaced when dependencies are built.
