file(REMOVE_RECURSE
  "libaeo_core.a"
)
