file(REMOVE_RECURSE
  "CMakeFiles/aeo_core.dir/config_scheduler.cc.o"
  "CMakeFiles/aeo_core.dir/config_scheduler.cc.o.d"
  "CMakeFiles/aeo_core.dir/energy_optimizer.cc.o"
  "CMakeFiles/aeo_core.dir/energy_optimizer.cc.o.d"
  "CMakeFiles/aeo_core.dir/experiment.cc.o"
  "CMakeFiles/aeo_core.dir/experiment.cc.o.d"
  "CMakeFiles/aeo_core.dir/load_adaptive.cc.o"
  "CMakeFiles/aeo_core.dir/load_adaptive.cc.o.d"
  "CMakeFiles/aeo_core.dir/offline_profiler.cc.o"
  "CMakeFiles/aeo_core.dir/offline_profiler.cc.o.d"
  "CMakeFiles/aeo_core.dir/online_controller.cc.o"
  "CMakeFiles/aeo_core.dir/online_controller.cc.o.d"
  "CMakeFiles/aeo_core.dir/performance_regulator.cc.o"
  "CMakeFiles/aeo_core.dir/performance_regulator.cc.o.d"
  "CMakeFiles/aeo_core.dir/profile_table.cc.o"
  "CMakeFiles/aeo_core.dir/profile_table.cc.o.d"
  "CMakeFiles/aeo_core.dir/scenarios.cc.o"
  "CMakeFiles/aeo_core.dir/scenarios.cc.o.d"
  "CMakeFiles/aeo_core.dir/system_config.cc.o"
  "CMakeFiles/aeo_core.dir/system_config.cc.o.d"
  "libaeo_core.a"
  "libaeo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
