# Empty dependencies file for aeo_core.
# This may be replaced when dependencies are built.
