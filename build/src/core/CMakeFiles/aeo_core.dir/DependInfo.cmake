
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config_scheduler.cc" "src/core/CMakeFiles/aeo_core.dir/config_scheduler.cc.o" "gcc" "src/core/CMakeFiles/aeo_core.dir/config_scheduler.cc.o.d"
  "/root/repo/src/core/energy_optimizer.cc" "src/core/CMakeFiles/aeo_core.dir/energy_optimizer.cc.o" "gcc" "src/core/CMakeFiles/aeo_core.dir/energy_optimizer.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/core/CMakeFiles/aeo_core.dir/experiment.cc.o" "gcc" "src/core/CMakeFiles/aeo_core.dir/experiment.cc.o.d"
  "/root/repo/src/core/load_adaptive.cc" "src/core/CMakeFiles/aeo_core.dir/load_adaptive.cc.o" "gcc" "src/core/CMakeFiles/aeo_core.dir/load_adaptive.cc.o.d"
  "/root/repo/src/core/offline_profiler.cc" "src/core/CMakeFiles/aeo_core.dir/offline_profiler.cc.o" "gcc" "src/core/CMakeFiles/aeo_core.dir/offline_profiler.cc.o.d"
  "/root/repo/src/core/online_controller.cc" "src/core/CMakeFiles/aeo_core.dir/online_controller.cc.o" "gcc" "src/core/CMakeFiles/aeo_core.dir/online_controller.cc.o.d"
  "/root/repo/src/core/performance_regulator.cc" "src/core/CMakeFiles/aeo_core.dir/performance_regulator.cc.o" "gcc" "src/core/CMakeFiles/aeo_core.dir/performance_regulator.cc.o.d"
  "/root/repo/src/core/profile_table.cc" "src/core/CMakeFiles/aeo_core.dir/profile_table.cc.o" "gcc" "src/core/CMakeFiles/aeo_core.dir/profile_table.cc.o.d"
  "/root/repo/src/core/scenarios.cc" "src/core/CMakeFiles/aeo_core.dir/scenarios.cc.o" "gcc" "src/core/CMakeFiles/aeo_core.dir/scenarios.cc.o.d"
  "/root/repo/src/core/system_config.cc" "src/core/CMakeFiles/aeo_core.dir/system_config.cc.o" "gcc" "src/core/CMakeFiles/aeo_core.dir/system_config.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aeo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aeo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/aeo_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/aeo_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/aeo_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/aeo_control.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/aeo_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/aeo_device.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/aeo_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/aeo_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
