file(REMOVE_RECURSE
  "CMakeFiles/aeo_device.dir/device.cc.o"
  "CMakeFiles/aeo_device.dir/device.cc.o.d"
  "CMakeFiles/aeo_device.dir/run_result.cc.o"
  "CMakeFiles/aeo_device.dir/run_result.cc.o.d"
  "libaeo_device.a"
  "libaeo_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeo_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
