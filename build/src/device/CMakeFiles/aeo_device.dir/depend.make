# Empty dependencies file for aeo_device.
# This may be replaced when dependencies are built.
