file(REMOVE_RECURSE
  "libaeo_device.a"
)
