file(REMOVE_RECURSE
  "libaeo_stats.a"
)
