# Empty compiler generated dependencies file for aeo_stats.
# This may be replaced when dependencies are built.
