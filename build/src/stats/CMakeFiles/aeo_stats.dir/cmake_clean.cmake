file(REMOVE_RECURSE
  "CMakeFiles/aeo_stats.dir/comparison.cc.o"
  "CMakeFiles/aeo_stats.dir/comparison.cc.o.d"
  "CMakeFiles/aeo_stats.dir/histogram.cc.o"
  "CMakeFiles/aeo_stats.dir/histogram.cc.o.d"
  "libaeo_stats.a"
  "libaeo_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeo_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
