# Empty compiler generated dependencies file for aeo_kernel.
# This may be replaced when dependencies are built.
