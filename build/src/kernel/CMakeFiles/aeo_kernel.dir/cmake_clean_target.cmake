file(REMOVE_RECURSE
  "libaeo_kernel.a"
)
