
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/cpufreq.cc" "src/kernel/CMakeFiles/aeo_kernel.dir/cpufreq.cc.o" "gcc" "src/kernel/CMakeFiles/aeo_kernel.dir/cpufreq.cc.o.d"
  "/root/repo/src/kernel/devfreq.cc" "src/kernel/CMakeFiles/aeo_kernel.dir/devfreq.cc.o" "gcc" "src/kernel/CMakeFiles/aeo_kernel.dir/devfreq.cc.o.d"
  "/root/repo/src/kernel/governors/cpufreq_conservative.cc" "src/kernel/CMakeFiles/aeo_kernel.dir/governors/cpufreq_conservative.cc.o" "gcc" "src/kernel/CMakeFiles/aeo_kernel.dir/governors/cpufreq_conservative.cc.o.d"
  "/root/repo/src/kernel/governors/cpufreq_interactive.cc" "src/kernel/CMakeFiles/aeo_kernel.dir/governors/cpufreq_interactive.cc.o" "gcc" "src/kernel/CMakeFiles/aeo_kernel.dir/governors/cpufreq_interactive.cc.o.d"
  "/root/repo/src/kernel/governors/cpufreq_ondemand.cc" "src/kernel/CMakeFiles/aeo_kernel.dir/governors/cpufreq_ondemand.cc.o" "gcc" "src/kernel/CMakeFiles/aeo_kernel.dir/governors/cpufreq_ondemand.cc.o.d"
  "/root/repo/src/kernel/governors/cpufreq_performance.cc" "src/kernel/CMakeFiles/aeo_kernel.dir/governors/cpufreq_performance.cc.o" "gcc" "src/kernel/CMakeFiles/aeo_kernel.dir/governors/cpufreq_performance.cc.o.d"
  "/root/repo/src/kernel/governors/cpufreq_powersave.cc" "src/kernel/CMakeFiles/aeo_kernel.dir/governors/cpufreq_powersave.cc.o" "gcc" "src/kernel/CMakeFiles/aeo_kernel.dir/governors/cpufreq_powersave.cc.o.d"
  "/root/repo/src/kernel/governors/cpufreq_userspace.cc" "src/kernel/CMakeFiles/aeo_kernel.dir/governors/cpufreq_userspace.cc.o" "gcc" "src/kernel/CMakeFiles/aeo_kernel.dir/governors/cpufreq_userspace.cc.o.d"
  "/root/repo/src/kernel/governors/devfreq_cpubw_hwmon.cc" "src/kernel/CMakeFiles/aeo_kernel.dir/governors/devfreq_cpubw_hwmon.cc.o" "gcc" "src/kernel/CMakeFiles/aeo_kernel.dir/governors/devfreq_cpubw_hwmon.cc.o.d"
  "/root/repo/src/kernel/governors/devfreq_simple.cc" "src/kernel/CMakeFiles/aeo_kernel.dir/governors/devfreq_simple.cc.o" "gcc" "src/kernel/CMakeFiles/aeo_kernel.dir/governors/devfreq_simple.cc.o.d"
  "/root/repo/src/kernel/gpufreq.cc" "src/kernel/CMakeFiles/aeo_kernel.dir/gpufreq.cc.o" "gcc" "src/kernel/CMakeFiles/aeo_kernel.dir/gpufreq.cc.o.d"
  "/root/repo/src/kernel/input_boost.cc" "src/kernel/CMakeFiles/aeo_kernel.dir/input_boost.cc.o" "gcc" "src/kernel/CMakeFiles/aeo_kernel.dir/input_boost.cc.o.d"
  "/root/repo/src/kernel/loadavg.cc" "src/kernel/CMakeFiles/aeo_kernel.dir/loadavg.cc.o" "gcc" "src/kernel/CMakeFiles/aeo_kernel.dir/loadavg.cc.o.d"
  "/root/repo/src/kernel/meters.cc" "src/kernel/CMakeFiles/aeo_kernel.dir/meters.cc.o" "gcc" "src/kernel/CMakeFiles/aeo_kernel.dir/meters.cc.o.d"
  "/root/repo/src/kernel/mpdecision.cc" "src/kernel/CMakeFiles/aeo_kernel.dir/mpdecision.cc.o" "gcc" "src/kernel/CMakeFiles/aeo_kernel.dir/mpdecision.cc.o.d"
  "/root/repo/src/kernel/perf_tool.cc" "src/kernel/CMakeFiles/aeo_kernel.dir/perf_tool.cc.o" "gcc" "src/kernel/CMakeFiles/aeo_kernel.dir/perf_tool.cc.o.d"
  "/root/repo/src/kernel/pmu.cc" "src/kernel/CMakeFiles/aeo_kernel.dir/pmu.cc.o" "gcc" "src/kernel/CMakeFiles/aeo_kernel.dir/pmu.cc.o.d"
  "/root/repo/src/kernel/sysfs.cc" "src/kernel/CMakeFiles/aeo_kernel.dir/sysfs.cc.o" "gcc" "src/kernel/CMakeFiles/aeo_kernel.dir/sysfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aeo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aeo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/aeo_soc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
