# Empty dependencies file for aeo_common.
# This may be replaced when dependencies are built.
