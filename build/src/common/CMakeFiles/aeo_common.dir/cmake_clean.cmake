file(REMOVE_RECURSE
  "CMakeFiles/aeo_common.dir/csv.cc.o"
  "CMakeFiles/aeo_common.dir/csv.cc.o.d"
  "CMakeFiles/aeo_common.dir/interpolate.cc.o"
  "CMakeFiles/aeo_common.dir/interpolate.cc.o.d"
  "CMakeFiles/aeo_common.dir/logging.cc.o"
  "CMakeFiles/aeo_common.dir/logging.cc.o.d"
  "CMakeFiles/aeo_common.dir/math_util.cc.o"
  "CMakeFiles/aeo_common.dir/math_util.cc.o.d"
  "CMakeFiles/aeo_common.dir/random.cc.o"
  "CMakeFiles/aeo_common.dir/random.cc.o.d"
  "CMakeFiles/aeo_common.dir/strings.cc.o"
  "CMakeFiles/aeo_common.dir/strings.cc.o.d"
  "CMakeFiles/aeo_common.dir/text_table.cc.o"
  "CMakeFiles/aeo_common.dir/text_table.cc.o.d"
  "libaeo_common.a"
  "libaeo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
