file(REMOVE_RECURSE
  "libaeo_common.a"
)
