# Empty dependencies file for overhead_analysis.
# This may be replaced when dependencies are built.
