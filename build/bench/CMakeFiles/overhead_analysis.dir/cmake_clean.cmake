file(REMOVE_RECURSE
  "CMakeFiles/overhead_analysis.dir/overhead_analysis.cc.o"
  "CMakeFiles/overhead_analysis.dir/overhead_analysis.cc.o.d"
  "overhead_analysis"
  "overhead_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
