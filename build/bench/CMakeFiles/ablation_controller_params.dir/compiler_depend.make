# Empty compiler generated dependencies file for ablation_controller_params.
# This may be replaced when dependencies are built.
