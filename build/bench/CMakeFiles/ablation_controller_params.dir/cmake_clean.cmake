file(REMOVE_RECURSE
  "CMakeFiles/ablation_controller_params.dir/ablation_controller_params.cc.o"
  "CMakeFiles/ablation_controller_params.dir/ablation_controller_params.cc.o.d"
  "ablation_controller_params"
  "ablation_controller_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_controller_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
