file(REMOVE_RECURSE
  "CMakeFiles/extension_gpu_control.dir/extension_gpu_control.cc.o"
  "CMakeFiles/extension_gpu_control.dir/extension_gpu_control.cc.o.d"
  "extension_gpu_control"
  "extension_gpu_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_gpu_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
