# Empty compiler generated dependencies file for extension_gpu_control.
# This may be replaced when dependencies are built.
