# Empty dependencies file for ablation_mpdecision.
# This may be replaced when dependencies are built.
