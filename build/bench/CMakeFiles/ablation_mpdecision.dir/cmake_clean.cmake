file(REMOVE_RECURSE
  "CMakeFiles/ablation_mpdecision.dir/ablation_mpdecision.cc.o"
  "CMakeFiles/ablation_mpdecision.dir/ablation_mpdecision.cc.o.d"
  "ablation_mpdecision"
  "ablation_mpdecision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mpdecision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
