# Empty dependencies file for table1_profile_angrybirds.
# This may be replaced when dependencies are built.
