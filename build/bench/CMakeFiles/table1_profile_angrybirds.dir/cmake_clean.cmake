file(REMOVE_RECURSE
  "CMakeFiles/table1_profile_angrybirds.dir/table1_profile_angrybirds.cc.o"
  "CMakeFiles/table1_profile_angrybirds.dir/table1_profile_angrybirds.cc.o.d"
  "table1_profile_angrybirds"
  "table1_profile_angrybirds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_profile_angrybirds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
