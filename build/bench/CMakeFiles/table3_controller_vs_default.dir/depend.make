# Empty dependencies file for table3_controller_vs_default.
# This may be replaced when dependencies are built.
