file(REMOVE_RECURSE
  "CMakeFiles/table3_controller_vs_default.dir/table3_controller_vs_default.cc.o"
  "CMakeFiles/table3_controller_vs_default.dir/table3_controller_vs_default.cc.o.d"
  "table3_controller_vs_default"
  "table3_controller_vs_default.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_controller_vs_default.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
