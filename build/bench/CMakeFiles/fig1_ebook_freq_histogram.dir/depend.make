# Empty dependencies file for fig1_ebook_freq_histogram.
# This may be replaced when dependencies are built.
