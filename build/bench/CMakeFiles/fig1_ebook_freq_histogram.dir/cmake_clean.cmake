file(REMOVE_RECURSE
  "CMakeFiles/fig1_ebook_freq_histogram.dir/fig1_ebook_freq_histogram.cc.o"
  "CMakeFiles/fig1_ebook_freq_histogram.dir/fig1_ebook_freq_histogram.cc.o.d"
  "fig1_ebook_freq_histogram"
  "fig1_ebook_freq_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_ebook_freq_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
