file(REMOVE_RECURSE
  "libaeo_bench_common.a"
)
