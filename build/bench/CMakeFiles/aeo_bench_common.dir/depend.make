# Empty dependencies file for aeo_bench_common.
# This may be replaced when dependencies are built.
