file(REMOVE_RECURSE
  "CMakeFiles/aeo_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/aeo_bench_common.dir/bench_common.cc.o.d"
  "CMakeFiles/aeo_bench_common.dir/paper_data.cc.o"
  "CMakeFiles/aeo_bench_common.dir/paper_data.cc.o.d"
  "libaeo_bench_common.a"
  "libaeo_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeo_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
