file(REMOVE_RECURSE
  "CMakeFiles/table4_background_loads.dir/table4_background_loads.cc.o"
  "CMakeFiles/table4_background_loads.dir/table4_background_loads.cc.o.d"
  "table4_background_loads"
  "table4_background_loads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_background_loads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
