# Empty dependencies file for table4_background_loads.
# This may be replaced when dependencies are built.
