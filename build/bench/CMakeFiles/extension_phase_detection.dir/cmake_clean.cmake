file(REMOVE_RECURSE
  "CMakeFiles/extension_phase_detection.dir/extension_phase_detection.cc.o"
  "CMakeFiles/extension_phase_detection.dir/extension_phase_detection.cc.o.d"
  "extension_phase_detection"
  "extension_phase_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_phase_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
