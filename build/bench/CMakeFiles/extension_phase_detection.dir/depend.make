# Empty dependencies file for extension_phase_detection.
# This may be replaced when dependencies are built.
