file(REMOVE_RECURSE
  "CMakeFiles/fig4_cpu_residency.dir/fig4_cpu_residency.cc.o"
  "CMakeFiles/fig4_cpu_residency.dir/fig4_cpu_residency.cc.o.d"
  "fig4_cpu_residency"
  "fig4_cpu_residency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cpu_residency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
