# Empty compiler generated dependencies file for fig4_cpu_residency.
# This may be replaced when dependencies are built.
