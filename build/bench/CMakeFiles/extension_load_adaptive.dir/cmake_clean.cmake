file(REMOVE_RECURSE
  "CMakeFiles/extension_load_adaptive.dir/extension_load_adaptive.cc.o"
  "CMakeFiles/extension_load_adaptive.dir/extension_load_adaptive.cc.o.d"
  "extension_load_adaptive"
  "extension_load_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_load_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
