# Empty dependencies file for extension_load_adaptive.
# This may be replaced when dependencies are built.
