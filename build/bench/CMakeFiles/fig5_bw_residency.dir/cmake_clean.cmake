file(REMOVE_RECURSE
  "CMakeFiles/fig5_bw_residency.dir/fig5_bw_residency.cc.o"
  "CMakeFiles/fig5_bw_residency.dir/fig5_bw_residency.cc.o.d"
  "fig5_bw_residency"
  "fig5_bw_residency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_bw_residency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
