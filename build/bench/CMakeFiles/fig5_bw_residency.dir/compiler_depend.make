# Empty compiler generated dependencies file for fig5_bw_residency.
# This may be replaced when dependencies are built.
