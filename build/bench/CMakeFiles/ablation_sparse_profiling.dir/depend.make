# Empty dependencies file for ablation_sparse_profiling.
# This may be replaced when dependencies are built.
