
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_sparse_profiling.cc" "bench/CMakeFiles/ablation_sparse_profiling.dir/ablation_sparse_profiling.cc.o" "gcc" "bench/CMakeFiles/ablation_sparse_profiling.dir/ablation_sparse_profiling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/aeo_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/aeo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/aeo_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/aeo_control.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/aeo_device.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/aeo_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/aeo_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/aeo_power.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/aeo_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aeo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/aeo_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aeo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
