file(REMOVE_RECURSE
  "CMakeFiles/ablation_sparse_profiling.dir/ablation_sparse_profiling.cc.o"
  "CMakeFiles/ablation_sparse_profiling.dir/ablation_sparse_profiling.cc.o.d"
  "ablation_sparse_profiling"
  "ablation_sparse_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sparse_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
