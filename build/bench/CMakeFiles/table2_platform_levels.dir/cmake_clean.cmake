file(REMOVE_RECURSE
  "CMakeFiles/table2_platform_levels.dir/table2_platform_levels.cc.o"
  "CMakeFiles/table2_platform_levels.dir/table2_platform_levels.cc.o.d"
  "table2_platform_levels"
  "table2_platform_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_platform_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
