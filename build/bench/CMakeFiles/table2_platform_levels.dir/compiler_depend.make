# Empty compiler generated dependencies file for table2_platform_levels.
# This may be replaced when dependencies are built.
