file(REMOVE_RECURSE
  "CMakeFiles/table5_cpu_only_dvfs.dir/table5_cpu_only_dvfs.cc.o"
  "CMakeFiles/table5_cpu_only_dvfs.dir/table5_cpu_only_dvfs.cc.o.d"
  "table5_cpu_only_dvfs"
  "table5_cpu_only_dvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_cpu_only_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
