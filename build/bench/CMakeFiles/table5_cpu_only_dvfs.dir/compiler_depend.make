# Empty compiler generated dependencies file for table5_cpu_only_dvfs.
# This may be replaced when dependencies are built.
