
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/csv_test.cc" "tests/CMakeFiles/common_test.dir/common/csv_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common/csv_test.cc.o.d"
  "/root/repo/tests/common/interpolate_test.cc" "tests/CMakeFiles/common_test.dir/common/interpolate_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common/interpolate_test.cc.o.d"
  "/root/repo/tests/common/logging_test.cc" "tests/CMakeFiles/common_test.dir/common/logging_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common/logging_test.cc.o.d"
  "/root/repo/tests/common/math_util_test.cc" "tests/CMakeFiles/common_test.dir/common/math_util_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common/math_util_test.cc.o.d"
  "/root/repo/tests/common/random_test.cc" "tests/CMakeFiles/common_test.dir/common/random_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common/random_test.cc.o.d"
  "/root/repo/tests/common/ring_buffer_test.cc" "tests/CMakeFiles/common_test.dir/common/ring_buffer_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common/ring_buffer_test.cc.o.d"
  "/root/repo/tests/common/strings_test.cc" "tests/CMakeFiles/common_test.dir/common/strings_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common/strings_test.cc.o.d"
  "/root/repo/tests/common/text_table_test.cc" "tests/CMakeFiles/common_test.dir/common/text_table_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common/text_table_test.cc.o.d"
  "/root/repo/tests/common/units_test.cc" "tests/CMakeFiles/common_test.dir/common/units_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common/units_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/aeo_test_main.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aeo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
