file(REMOVE_RECURSE
  "CMakeFiles/common_test.dir/common/csv_test.cc.o"
  "CMakeFiles/common_test.dir/common/csv_test.cc.o.d"
  "CMakeFiles/common_test.dir/common/interpolate_test.cc.o"
  "CMakeFiles/common_test.dir/common/interpolate_test.cc.o.d"
  "CMakeFiles/common_test.dir/common/logging_test.cc.o"
  "CMakeFiles/common_test.dir/common/logging_test.cc.o.d"
  "CMakeFiles/common_test.dir/common/math_util_test.cc.o"
  "CMakeFiles/common_test.dir/common/math_util_test.cc.o.d"
  "CMakeFiles/common_test.dir/common/random_test.cc.o"
  "CMakeFiles/common_test.dir/common/random_test.cc.o.d"
  "CMakeFiles/common_test.dir/common/ring_buffer_test.cc.o"
  "CMakeFiles/common_test.dir/common/ring_buffer_test.cc.o.d"
  "CMakeFiles/common_test.dir/common/strings_test.cc.o"
  "CMakeFiles/common_test.dir/common/strings_test.cc.o.d"
  "CMakeFiles/common_test.dir/common/text_table_test.cc.o"
  "CMakeFiles/common_test.dir/common/text_table_test.cc.o.d"
  "CMakeFiles/common_test.dir/common/units_test.cc.o"
  "CMakeFiles/common_test.dir/common/units_test.cc.o.d"
  "common_test"
  "common_test.pdb"
  "common_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
