
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lp/schedule_lp_test.cc" "tests/CMakeFiles/lp_test.dir/lp/schedule_lp_test.cc.o" "gcc" "tests/CMakeFiles/lp_test.dir/lp/schedule_lp_test.cc.o.d"
  "/root/repo/tests/lp/simplex_test.cc" "tests/CMakeFiles/lp_test.dir/lp/simplex_test.cc.o" "gcc" "tests/CMakeFiles/lp_test.dir/lp/simplex_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/aeo_test_main.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/aeo_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aeo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
