file(REMOVE_RECURSE
  "CMakeFiles/control_test.dir/control/integral_controller_test.cc.o"
  "CMakeFiles/control_test.dir/control/integral_controller_test.cc.o.d"
  "CMakeFiles/control_test.dir/control/kalman_filter_test.cc.o"
  "CMakeFiles/control_test.dir/control/kalman_filter_test.cc.o.d"
  "CMakeFiles/control_test.dir/control/phase_detector_test.cc.o"
  "CMakeFiles/control_test.dir/control/phase_detector_test.cc.o.d"
  "control_test"
  "control_test.pdb"
  "control_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/control_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
