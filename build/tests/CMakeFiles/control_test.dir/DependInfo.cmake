
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/control/integral_controller_test.cc" "tests/CMakeFiles/control_test.dir/control/integral_controller_test.cc.o" "gcc" "tests/CMakeFiles/control_test.dir/control/integral_controller_test.cc.o.d"
  "/root/repo/tests/control/kalman_filter_test.cc" "tests/CMakeFiles/control_test.dir/control/kalman_filter_test.cc.o" "gcc" "tests/CMakeFiles/control_test.dir/control/kalman_filter_test.cc.o.d"
  "/root/repo/tests/control/phase_detector_test.cc" "tests/CMakeFiles/control_test.dir/control/phase_detector_test.cc.o" "gcc" "tests/CMakeFiles/control_test.dir/control/phase_detector_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/aeo_test_main.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/aeo_control.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aeo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
