
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps/app_model_test.cc" "tests/CMakeFiles/apps_test.dir/apps/app_model_test.cc.o" "gcc" "tests/CMakeFiles/apps_test.dir/apps/app_model_test.cc.o.d"
  "/root/repo/tests/apps/app_registry_test.cc" "tests/CMakeFiles/apps_test.dir/apps/app_registry_test.cc.o" "gcc" "tests/CMakeFiles/apps_test.dir/apps/app_registry_test.cc.o.d"
  "/root/repo/tests/apps/background_load_test.cc" "tests/CMakeFiles/apps_test.dir/apps/background_load_test.cc.o" "gcc" "tests/CMakeFiles/apps_test.dir/apps/background_load_test.cc.o.d"
  "/root/repo/tests/apps/workloads_test.cc" "tests/CMakeFiles/apps_test.dir/apps/workloads_test.cc.o" "gcc" "tests/CMakeFiles/apps_test.dir/apps/workloads_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/aeo_test_main.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/aeo_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/aeo_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aeo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aeo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
