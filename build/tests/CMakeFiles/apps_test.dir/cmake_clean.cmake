file(REMOVE_RECURSE
  "CMakeFiles/apps_test.dir/apps/app_model_test.cc.o"
  "CMakeFiles/apps_test.dir/apps/app_model_test.cc.o.d"
  "CMakeFiles/apps_test.dir/apps/app_registry_test.cc.o"
  "CMakeFiles/apps_test.dir/apps/app_registry_test.cc.o.d"
  "CMakeFiles/apps_test.dir/apps/background_load_test.cc.o"
  "CMakeFiles/apps_test.dir/apps/background_load_test.cc.o.d"
  "CMakeFiles/apps_test.dir/apps/workloads_test.cc.o"
  "CMakeFiles/apps_test.dir/apps/workloads_test.cc.o.d"
  "apps_test"
  "apps_test.pdb"
  "apps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
