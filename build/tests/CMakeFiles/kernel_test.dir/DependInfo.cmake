
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/kernel/cpufreq_test.cc" "tests/CMakeFiles/kernel_test.dir/kernel/cpufreq_test.cc.o" "gcc" "tests/CMakeFiles/kernel_test.dir/kernel/cpufreq_test.cc.o.d"
  "/root/repo/tests/kernel/devfreq_test.cc" "tests/CMakeFiles/kernel_test.dir/kernel/devfreq_test.cc.o" "gcc" "tests/CMakeFiles/kernel_test.dir/kernel/devfreq_test.cc.o.d"
  "/root/repo/tests/kernel/governors_test.cc" "tests/CMakeFiles/kernel_test.dir/kernel/governors_test.cc.o" "gcc" "tests/CMakeFiles/kernel_test.dir/kernel/governors_test.cc.o.d"
  "/root/repo/tests/kernel/gpufreq_test.cc" "tests/CMakeFiles/kernel_test.dir/kernel/gpufreq_test.cc.o" "gcc" "tests/CMakeFiles/kernel_test.dir/kernel/gpufreq_test.cc.o.d"
  "/root/repo/tests/kernel/input_boost_test.cc" "tests/CMakeFiles/kernel_test.dir/kernel/input_boost_test.cc.o" "gcc" "tests/CMakeFiles/kernel_test.dir/kernel/input_boost_test.cc.o.d"
  "/root/repo/tests/kernel/loadavg_test.cc" "tests/CMakeFiles/kernel_test.dir/kernel/loadavg_test.cc.o" "gcc" "tests/CMakeFiles/kernel_test.dir/kernel/loadavg_test.cc.o.d"
  "/root/repo/tests/kernel/meters_test.cc" "tests/CMakeFiles/kernel_test.dir/kernel/meters_test.cc.o" "gcc" "tests/CMakeFiles/kernel_test.dir/kernel/meters_test.cc.o.d"
  "/root/repo/tests/kernel/mpdecision_test.cc" "tests/CMakeFiles/kernel_test.dir/kernel/mpdecision_test.cc.o" "gcc" "tests/CMakeFiles/kernel_test.dir/kernel/mpdecision_test.cc.o.d"
  "/root/repo/tests/kernel/perf_tool_test.cc" "tests/CMakeFiles/kernel_test.dir/kernel/perf_tool_test.cc.o" "gcc" "tests/CMakeFiles/kernel_test.dir/kernel/perf_tool_test.cc.o.d"
  "/root/repo/tests/kernel/pmu_test.cc" "tests/CMakeFiles/kernel_test.dir/kernel/pmu_test.cc.o" "gcc" "tests/CMakeFiles/kernel_test.dir/kernel/pmu_test.cc.o.d"
  "/root/repo/tests/kernel/sysfs_test.cc" "tests/CMakeFiles/kernel_test.dir/kernel/sysfs_test.cc.o" "gcc" "tests/CMakeFiles/kernel_test.dir/kernel/sysfs_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/aeo_test_main.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/aeo_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/aeo_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aeo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aeo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
