file(REMOVE_RECURSE
  "CMakeFiles/kernel_test.dir/kernel/cpufreq_test.cc.o"
  "CMakeFiles/kernel_test.dir/kernel/cpufreq_test.cc.o.d"
  "CMakeFiles/kernel_test.dir/kernel/devfreq_test.cc.o"
  "CMakeFiles/kernel_test.dir/kernel/devfreq_test.cc.o.d"
  "CMakeFiles/kernel_test.dir/kernel/governors_test.cc.o"
  "CMakeFiles/kernel_test.dir/kernel/governors_test.cc.o.d"
  "CMakeFiles/kernel_test.dir/kernel/gpufreq_test.cc.o"
  "CMakeFiles/kernel_test.dir/kernel/gpufreq_test.cc.o.d"
  "CMakeFiles/kernel_test.dir/kernel/input_boost_test.cc.o"
  "CMakeFiles/kernel_test.dir/kernel/input_boost_test.cc.o.d"
  "CMakeFiles/kernel_test.dir/kernel/loadavg_test.cc.o"
  "CMakeFiles/kernel_test.dir/kernel/loadavg_test.cc.o.d"
  "CMakeFiles/kernel_test.dir/kernel/meters_test.cc.o"
  "CMakeFiles/kernel_test.dir/kernel/meters_test.cc.o.d"
  "CMakeFiles/kernel_test.dir/kernel/mpdecision_test.cc.o"
  "CMakeFiles/kernel_test.dir/kernel/mpdecision_test.cc.o.d"
  "CMakeFiles/kernel_test.dir/kernel/perf_tool_test.cc.o"
  "CMakeFiles/kernel_test.dir/kernel/perf_tool_test.cc.o.d"
  "CMakeFiles/kernel_test.dir/kernel/pmu_test.cc.o"
  "CMakeFiles/kernel_test.dir/kernel/pmu_test.cc.o.d"
  "CMakeFiles/kernel_test.dir/kernel/sysfs_test.cc.o"
  "CMakeFiles/kernel_test.dir/kernel/sysfs_test.cc.o.d"
  "kernel_test"
  "kernel_test.pdb"
  "kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
