
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/soc/bandwidth_table_test.cc" "tests/CMakeFiles/soc_test.dir/soc/bandwidth_table_test.cc.o" "gcc" "tests/CMakeFiles/soc_test.dir/soc/bandwidth_table_test.cc.o.d"
  "/root/repo/tests/soc/cpu_cluster_test.cc" "tests/CMakeFiles/soc_test.dir/soc/cpu_cluster_test.cc.o" "gcc" "tests/CMakeFiles/soc_test.dir/soc/cpu_cluster_test.cc.o.d"
  "/root/repo/tests/soc/execution_engine_test.cc" "tests/CMakeFiles/soc_test.dir/soc/execution_engine_test.cc.o" "gcc" "tests/CMakeFiles/soc_test.dir/soc/execution_engine_test.cc.o.d"
  "/root/repo/tests/soc/frequency_table_test.cc" "tests/CMakeFiles/soc_test.dir/soc/frequency_table_test.cc.o" "gcc" "tests/CMakeFiles/soc_test.dir/soc/frequency_table_test.cc.o.d"
  "/root/repo/tests/soc/gpu_domain_test.cc" "tests/CMakeFiles/soc_test.dir/soc/gpu_domain_test.cc.o" "gcc" "tests/CMakeFiles/soc_test.dir/soc/gpu_domain_test.cc.o.d"
  "/root/repo/tests/soc/memory_bus_test.cc" "tests/CMakeFiles/soc_test.dir/soc/memory_bus_test.cc.o" "gcc" "tests/CMakeFiles/soc_test.dir/soc/memory_bus_test.cc.o.d"
  "/root/repo/tests/soc/nexus6_calibration_test.cc" "tests/CMakeFiles/soc_test.dir/soc/nexus6_calibration_test.cc.o" "gcc" "tests/CMakeFiles/soc_test.dir/soc/nexus6_calibration_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/aeo_test_main.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/aeo_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/aeo_power.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/aeo_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/aeo_device.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/aeo_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aeo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/aeo_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aeo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
