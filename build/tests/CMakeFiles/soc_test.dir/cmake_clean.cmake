file(REMOVE_RECURSE
  "CMakeFiles/soc_test.dir/soc/bandwidth_table_test.cc.o"
  "CMakeFiles/soc_test.dir/soc/bandwidth_table_test.cc.o.d"
  "CMakeFiles/soc_test.dir/soc/cpu_cluster_test.cc.o"
  "CMakeFiles/soc_test.dir/soc/cpu_cluster_test.cc.o.d"
  "CMakeFiles/soc_test.dir/soc/execution_engine_test.cc.o"
  "CMakeFiles/soc_test.dir/soc/execution_engine_test.cc.o.d"
  "CMakeFiles/soc_test.dir/soc/frequency_table_test.cc.o"
  "CMakeFiles/soc_test.dir/soc/frequency_table_test.cc.o.d"
  "CMakeFiles/soc_test.dir/soc/gpu_domain_test.cc.o"
  "CMakeFiles/soc_test.dir/soc/gpu_domain_test.cc.o.d"
  "CMakeFiles/soc_test.dir/soc/memory_bus_test.cc.o"
  "CMakeFiles/soc_test.dir/soc/memory_bus_test.cc.o.d"
  "CMakeFiles/soc_test.dir/soc/nexus6_calibration_test.cc.o"
  "CMakeFiles/soc_test.dir/soc/nexus6_calibration_test.cc.o.d"
  "soc_test"
  "soc_test.pdb"
  "soc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
