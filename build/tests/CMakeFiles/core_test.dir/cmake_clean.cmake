file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/config_scheduler_test.cc.o"
  "CMakeFiles/core_test.dir/core/config_scheduler_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/energy_optimizer_test.cc.o"
  "CMakeFiles/core_test.dir/core/energy_optimizer_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/load_adaptive_test.cc.o"
  "CMakeFiles/core_test.dir/core/load_adaptive_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/online_controller_test.cc.o"
  "CMakeFiles/core_test.dir/core/online_controller_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/performance_regulator_test.cc.o"
  "CMakeFiles/core_test.dir/core/performance_regulator_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/profile_pruning_test.cc.o"
  "CMakeFiles/core_test.dir/core/profile_pruning_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/profile_table_test.cc.o"
  "CMakeFiles/core_test.dir/core/profile_table_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/scenarios_test.cc.o"
  "CMakeFiles/core_test.dir/core/scenarios_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/system_config_test.cc.o"
  "CMakeFiles/core_test.dir/core/system_config_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
