file(REMOVE_RECURSE
  "CMakeFiles/aeo_test_main.dir/test_main.cc.o"
  "CMakeFiles/aeo_test_main.dir/test_main.cc.o.d"
  "libaeo_test_main.a"
  "libaeo_test_main.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aeo_test_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
