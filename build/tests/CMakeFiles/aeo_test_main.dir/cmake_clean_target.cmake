file(REMOVE_RECURSE
  "libaeo_test_main.a"
)
