# Empty dependencies file for aeo_test_main.
# This may be replaced when dependencies are built.
