
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/power/battery_test.cc" "tests/CMakeFiles/power_test.dir/power/battery_test.cc.o" "gcc" "tests/CMakeFiles/power_test.dir/power/battery_test.cc.o.d"
  "/root/repo/tests/power/energy_meter_test.cc" "tests/CMakeFiles/power_test.dir/power/energy_meter_test.cc.o" "gcc" "tests/CMakeFiles/power_test.dir/power/energy_meter_test.cc.o.d"
  "/root/repo/tests/power/monsoon_test.cc" "tests/CMakeFiles/power_test.dir/power/monsoon_test.cc.o" "gcc" "tests/CMakeFiles/power_test.dir/power/monsoon_test.cc.o.d"
  "/root/repo/tests/power/power_model_test.cc" "tests/CMakeFiles/power_test.dir/power/power_model_test.cc.o" "gcc" "tests/CMakeFiles/power_test.dir/power/power_model_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/aeo_test_main.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/aeo_power.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/aeo_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aeo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aeo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
