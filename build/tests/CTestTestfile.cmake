# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/soc_test[1]_include.cmake")
include("/root/repo/build/tests/power_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/lp_test[1]_include.cmake")
include("/root/repo/build/tests/control_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/device_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
