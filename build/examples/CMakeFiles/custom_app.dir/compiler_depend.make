# Empty compiler generated dependencies file for custom_app.
# This may be replaced when dependencies are built.
