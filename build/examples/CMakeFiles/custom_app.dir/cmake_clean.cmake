file(REMOVE_RECURSE
  "CMakeFiles/custom_app.dir/custom_app.cpp.o"
  "CMakeFiles/custom_app.dir/custom_app.cpp.o.d"
  "custom_app"
  "custom_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
