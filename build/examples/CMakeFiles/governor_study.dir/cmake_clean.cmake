file(REMOVE_RECURSE
  "CMakeFiles/governor_study.dir/governor_study.cpp.o"
  "CMakeFiles/governor_study.dir/governor_study.cpp.o.d"
  "governor_study"
  "governor_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/governor_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
