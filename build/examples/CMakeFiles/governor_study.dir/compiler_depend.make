# Empty compiler generated dependencies file for governor_study.
# This may be replaced when dependencies are built.
