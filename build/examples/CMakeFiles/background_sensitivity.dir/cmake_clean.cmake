file(REMOVE_RECURSE
  "CMakeFiles/background_sensitivity.dir/background_sensitivity.cpp.o"
  "CMakeFiles/background_sensitivity.dir/background_sensitivity.cpp.o.d"
  "background_sensitivity"
  "background_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/background_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
