# Empty compiler generated dependencies file for background_sensitivity.
# This may be replaced when dependencies are built.
