file(REMOVE_RECURSE
  "CMakeFiles/battery_life.dir/battery_life.cpp.o"
  "CMakeFiles/battery_life.dir/battery_life.cpp.o.d"
  "battery_life"
  "battery_life.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battery_life.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
