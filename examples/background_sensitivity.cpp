/**
 * @file
 * Example: how background load affects the controller (§V-C in miniature).
 *
 * Profiles AngryBirds once under the baseline load, then evaluates the
 * controller under all three load scenarios — the situation a deployed
 * controller actually faces, since profiling cannot anticipate the user's
 * runtime environment.
 */
#include <cstdio>

#include "common/logging.h"
#include "common/strings.h"
#include "common/text_table.h"
#include "core/experiment.h"

using namespace aeo;

int
main()
{
    SetLogLevel(LogLevel::kWarn);
    std::printf("Background-load sensitivity: AngryBirds, profile from BL\n\n");

    ExperimentHarness harness;
    TextTable table({"run load", "free mem (MB)", "perf delta", "energy savings"});

    for (const BackgroundKind kind :
         {BackgroundKind::kBaseline, BackgroundKind::kNoLoad, BackgroundKind::kHeavy}) {
        ExperimentOptions options;
        options.profile_runs = 3;
        options.profile_load = BackgroundKind::kBaseline;  // never re-profiled
        options.run_load = kind;
        options.seed = 5;
        const ExperimentOutcome outcome =
            harness.RunComparison("AngryBirds", options);
        const BackgroundEnv env = MakeBackgroundEnv(kind);
        table.AddRow({ToString(kind), StrFormat("%.0f", env.free_memory_mb),
                      StrFormat("%+.1f%%", outcome.perf_delta_pct),
                      StrFormat("%.1f%%", outcome.energy_savings_pct)});
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf("The feedback loop absorbs moderate load mismatch (the paper's\n"
                "§V-C conclusion); re-profiling under the actual load recovers\n"
                "the rest.\n");
    return 0;
}
