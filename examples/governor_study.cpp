/**
 * @file
 * Example: comparing every stock governor on one application.
 *
 * Reproduces the motivating §II observation in miniature: the general-
 * purpose governors each land somewhere different on the power/performance
 * plane, and none of them is energy-optimal for the application at hand.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "apps/app_registry.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/text_table.h"
#include "device/device.h"

using namespace aeo;

namespace {

RunResult
RunWithGovernors(const std::string& app, const std::string& cpu_governor,
                 const std::string& bus_governor, uint64_t seed)
{
    DeviceConfig config;
    config.seed = seed;
    Device device(config);
    device.sysfs().Write(std::string(kCpufreqSysfsRoot) + "/scaling_governor",
                         cpu_governor);
    device.sysfs().Write(std::string(kDevfreqSysfsRoot) + "/governor", bus_governor);
    device.LaunchApp(MakeAppSpecByName(app));
    device.RunFor(SimTime::FromSeconds(60));
    return device.CollectResult(cpu_governor + "+" + bus_governor);
}

}  // namespace

int
main(int argc, char** argv)
{
    SetLogLevel(LogLevel::kWarn);
    const std::string app = argc > 1 ? argv[1] : "AngryBirds";
    if (!IsBuiltinApp(app)) {
        std::fprintf(stderr, "unknown app '%s'\n", app.c_str());
        return 1;
    }
    std::printf("Stock governors on %s (60 s runs, baseline load)\n\n", app.c_str());

    const std::vector<std::pair<std::string, std::string>> combos = {
        {"interactive", "cpubw_hwmon"},  // the Android default pair
        {"ondemand", "cpubw_hwmon"},
        {"performance", "performance"},
        {"powersave", "powersave"},
    };

    TextTable table({"governors (cpu + bus)", "GIPS", "avg power (mW)",
                     "energy (J)", "CPU switches"});
    for (const auto& [cpu, bus] : combos) {
        const RunResult result = RunWithGovernors(app, cpu, bus, 21);
        table.AddRow({cpu + " + " + bus, StrFormat("%.3f", result.avg_gips),
                      StrFormat("%.0f", result.measured_avg_power_mw.value()),
                      StrFormat("%.1f", result.measured_energy_j),
                      StrFormat("%llu", static_cast<unsigned long long>(
                                            result.cpu_transitions))});
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf("performance wastes energy on paced apps; powersave drops\n"
                "frames; the load-tracking governors sit in between — and an\n"
                "application-specific controller can beat all of them (§II-C).\n");
    return 0;
}
