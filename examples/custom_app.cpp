/**
 * @file
 * Example: controlling *your own* application.
 *
 * The library is application-specific but not application-limited: anything
 * expressible as an AppSpec (phases of timed, work-quantum or frame-loop
 * demand) can be profiled and controlled. This example models a
 * hypothetical on-device speech transcriber — a steady rate-paced decode
 * loop with heavier stretches during fast speech — builds its profile
 * table, and runs it under the controller.
 */
#include <cstdio>

#include "common/logging.h"
#include "core/experiment.h"
#include "core/offline_profiler.h"
#include "core/online_controller.h"
#include "platform/sim_platform.h"

using namespace aeo;

/**
 * A speech-transcription service: continuous on-device speech-to-text at a
 * steady ~0.33 GIPS (100 ms audio frames), with heavier decode bursts when
 * the speaker talks fast. Steady, rate-paced work is exactly the shape the
 * paper's approach targets (§V-B).
 */
AppSpec
MakeTranscriberSpec()
{
    AppSpec spec;
    spec.name = "Transcriber";
    spec.loop = true;
    spec.jitter_rel = 0.03;

    AppPhase listen;
    listen.name = "transcribe";
    listen.kind = PhaseKind::kFrame;
    listen.demand.ipc = 0.5;
    listen.demand.parallelism = 2.0;
    listen.demand.mem_bytes_per_instr = 0.15;
    listen.duration = SimTime::FromSeconds(12);
    listen.frame_work_gi = 0.033;
    listen.frame_period = SimTime::Millis(100);
    listen.slack_demand.demand_gips = 0.002;
    listen.component_mw = 220.0;  // microphone + DSP front-end
    spec.phases.push_back(listen);

    AppPhase fast_speech = listen;
    fast_speech.name = "fast-speech";
    fast_speech.duration = SimTime::FromSeconds(4);
    fast_speech.frame_work_gi = 0.037;
    spec.phases.push_back(fast_speech);
    return spec;
}

int
main()
{
    std::printf("Controlling a custom application on the simulated Nexus 6\n\n");

    // 1. Baseline under the Android default governors.
    DeviceConfig device_config;
    device_config.seed = 11;
    Device baseline_device(device_config);
    baseline_device.UseDefaultGovernors();
    baseline_device.LaunchApp(MakeTranscriberSpec());
    baseline_device.RunFor(SimTime::FromSeconds(120));
    const RunResult baseline = baseline_device.CollectResult("default");
    std::printf("default:    %s\n", baseline.Summary().c_str());

    // 2. Offline profiling. The puzzle game works fine at mid frequencies,
    //    so we admit levels 1..13 (every other) like the paper prunes its
    //    apps' ranges.
    OfflineProfiler profiler;
    ProfilerOptions options;
    options.cpu_levels = {0, 2, 4, 6, 8, 10, 12};
    options.runs = 3;
    options.measure_duration = SimTime::FromSeconds(20);
    options.seed = 12;
    ProfileTable table = profiler.Profile(MakeTranscriberSpec(), options);
    table = table.PruneEpsilonDominated(0.01);
    std::printf("\n%s\n", table.ToString().c_str());

    // 3. Controlled run targeting the default performance.
    DeviceConfig controlled_config;
    controlled_config.seed = 13;
    Device controlled_device(controlled_config);
    controlled_device.LaunchApp(MakeTranscriberSpec());
    ControllerConfig controller_config;
    controller_config.target_gips = baseline.avg_gips;
    platform::SimPlatform controlled_platform(&controlled_device);
    OnlineController controller(&controlled_platform, table, controller_config);
    controller.Start();
    controlled_device.RunFor(SimTime::FromSeconds(120));
    controller.Stop();
    const RunResult controlled = controlled_device.CollectResult("controller");
    std::printf("controller: %s\n\n", controlled.Summary().c_str());

    std::printf("energy savings:    %+.1f%%\n",
                controlled.EnergySavingsPercent(baseline));
    std::printf("performance delta: %+.1f%%\n",
                controlled.PerformanceDeltaPercent(baseline));
    std::printf("control cycles:    %zu (base speed estimate %.3f GIPS)\n",
                controller.cycle_count(), controller.base_speed_estimate());
    return 0;
}
