/**
 * @file
 * Example: what the controller's savings mean in battery life — the
 * end-user metric the paper motivates with ("battery life is one of the top
 * concerns of end users", §I).
 *
 * Runs Spotify under the default governors and under the controller, then
 * projects both average powers onto the Nexus 6 battery (3220 mAh, 3.8 V).
 */
#include <cstdio>

#include "common/logging.h"
#include "core/experiment.h"
#include "power/battery.h"

using namespace aeo;

int
main()
{
    SetLogLevel(LogLevel::kWarn);
    std::printf("Battery-life projection: Spotify playback on the Nexus 6\n\n");

    ExperimentHarness harness;
    ExperimentOptions options;
    options.profile_runs = 3;
    options.seed = 5;
    const ExperimentOutcome outcome = harness.RunComparison("Spotify", options);

    std::printf("default:    %s\n", outcome.default_run.Summary().c_str());
    std::printf("controller: %s\n\n", outcome.controller_run.Summary().c_str());

    const Battery battery;  // stock Nexus 6 pack
    const SimTime default_life = battery.TimeToEmpty(
        Milliwatts(outcome.default_run.measured_avg_power_mw.value()));
    const SimTime controlled_life = battery.TimeToEmpty(
        Milliwatts(outcome.controller_run.measured_avg_power_mw.value()));

    std::printf("full-battery playback time, default governors: %.1f h\n",
                default_life.seconds() / 3600.0);
    std::printf("full-battery playback time, controller:        %.1f h\n",
                controlled_life.seconds() / 3600.0);
    std::printf("extra listening time: %+.1f h (%+.1f%% energy)\n",
                (controlled_life - default_life).seconds() / 3600.0,
                outcome.energy_savings_pct);
    return 0;
}
