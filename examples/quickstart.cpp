/**
 * @file
 * Quickstart: the complete two-stage workflow of the paper in ~40 lines.
 *
 *  1. Run an application under the Android default governors to establish
 *     the baseline energy and the performance target.
 *  2. Profile the application offline over the sparse configuration grid.
 *  3. Run it again under the application-specific controller and compare.
 *
 * Build and run:  ./build/examples/quickstart
 */
#include <cstdio>

#include "core/experiment.h"

int
main()
{
    using namespace aeo;
    std::printf("AEO quickstart: controlling Spotify on a simulated Nexus 6\n\n");

    // The harness bundles the three steps; here we spell them out.
    const ExperimentHarness harness;
    ExperimentOptions options;
    options.profile_runs = 3;                          // like the paper
    options.profile_duration = SimTime::FromSeconds(15);
    options.seed = 1;

    // Step 1 — baseline under interactive + cpubw_hwmon.
    const RunResult baseline =
        harness.RunDefault("Spotify", BackgroundKind::kBaseline, options.seed);
    std::printf("default:    %s\n", baseline.Summary().c_str());

    // Step 2 — offline profiling (sparse grid + interpolation).
    const ProfileTable table = harness.ProfileApp("Spotify", options);
    std::printf("\nprofile table: %zu rows after SV-A pruning, base speed %.3f "
                "GIPS\n\n",
                table.size(), table.base_speed_gips());

    // Step 3 — controlled run targeting the default performance.
    const RunResult controlled = harness.RunWithController(
        "Spotify", table, baseline.avg_gips, options, options.seed + 2000);
    std::printf("controller: %s\n\n", controlled.Summary().c_str());

    std::printf("energy savings:    %+.1f%%\n",
                controlled.EnergySavingsPercent(baseline));
    std::printf("performance delta: %+.1f%%\n",
                controlled.PerformanceDeltaPercent(baseline));
    return 0;
}
