/**
 * @file
 * Stage 2 of the aeo-lint analyzer (DESIGN.md §16): a lightweight semantic
 * model per translation unit, built from the token stream alone — no
 * preprocessing, no type checking.
 *
 * The model indexes:
 *
 *  - function definitions: name, enclosing class (from an explicit
 *    `X::f` qualifier or the surrounding `class X { ... }` scope), the
 *    line of the name token, and the token range of the body;
 *  - call sites inside each body: callee name, explicit qualifier when
 *    spelled (`X::f(...)`), member-access flag (`obj.f(...)`), line;
 *  - variable names declared with growth-capable standard containers
 *    (`std::vector`, `std::string`, `std::deque`, `std::map`, `std::set`
 *    and their unordered/multi cousins) and, as a subset, names declared
 *    with unordered containers — the determinism and hot-path rule
 *    families key their receiver checks on these name sets;
 *  - hot-path annotations attached to the next function definition, plus
 *    annotation lines that attach to nothing (a finding: a dangling
 *    annotation protects nothing).
 *
 * Known unsoundness (deliberate, documented in DESIGN.md §16): matching is
 * name-based. Two functions sharing a name are merged conservatively by
 * the call-graph layer; a variable's declared type is only visible when
 * the declaration is spelled in the same file; typedefs and aliases are
 * invisible. The rules that consume the model over-approximate reachability
 * and under-approximate receiver types accordingly.
 */
#ifndef AEO_TOOLS_AEO_LINT_MODEL_H_
#define AEO_TOOLS_AEO_LINT_MODEL_H_

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace aeo::lint {

/** One call site inside a function body. */
struct CallSite {
    /** Callee name as spelled (last identifier before the `(`). */
    std::string name;
    /** Receiver class: from an explicit `Qualifier::name(...)` spelling, or
     * inferred from the receiver variable's declared type when the
     * declaration is visible in the same file (`app_->Advance()` with
     * `AppModel* app_;` yields "AppModel"). Empty when unknown. */
    std::string qualifier;
    /** True when spelled as a member access (`obj.f(...)`, `p->f(...)`). */
    bool member_access = false;
    int line = 0;
};

/** One function definition (a declaration with a body). */
struct FunctionDef {
    std::string name;
    /** Enclosing class/struct, or the explicit out-of-line qualifier. */
    std::string class_name;
    /** Line of the function's name token. */
    int line = 0;
    /** Token index range of the body, excluding the braces: [begin, end). */
    size_t body_begin = 0;
    size_t body_end = 0;
    /** True when a hot-path annotation comment precedes the definition. */
    bool hot_path = false;
    /** True when a hot-path-stop annotation precedes the definition: the
     * allocation analysis treats this function as a barrier. */
    bool hot_path_stop = false;
    std::vector<CallSite> calls;
};

/** The per-file semantic model. */
struct TranslationUnit {
    std::string rel_path;
    LexedSource lexed;
    std::vector<FunctionDef> functions;
    /** Names declared with a growth-capable std container in this file. */
    std::set<std::string> growable_vars;
    /** Names declared with an unordered container in this file. */
    std::set<std::string> unordered_vars;
    /** Local callables: names bound to lambdas (`auto pad = [...]`). Calls
     * through them are not indexed — the lambda body is inside the
     * enclosing function's token range and is scanned there. */
    std::set<std::string> local_callables;
    /** Hot-path annotation lines with no function definition to attach to
     * (the next definition starts more than two lines below, or the file
     * ends first). */
    std::vector<int> dangling_hot_annotations;
};

/** Builds the model for one lexed file. */
TranslationUnit BuildTranslationUnit(std::string rel_path,
                                     LexedSource lexed);

}  // namespace aeo::lint

#endif  // AEO_TOOLS_AEO_LINT_MODEL_H_
