/**
 * @file
 * aeo-lint CLI. Usage:
 *
 *     aeo_lint [--root=PATH]
 *
 * Lints the tree at PATH (default: the current directory) and prints one
 * `file:line: [rule] message` per finding. Exit status: 0 clean, 1 findings,
 * 2 bad invocation. CI runs this as a blocking job; see DESIGN.md §11 for
 * the rules and the suppression mechanism.
 */
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "lint.h"

int
main(int argc, char** argv)
{
    std::string root = ".";
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strncmp(arg, "--root=", 7) == 0) {
            root = arg + 7;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            std::printf("usage: aeo_lint [--root=PATH]\n");
            return 0;
        } else {
            std::fprintf(stderr, "aeo-lint: unknown argument '%s'\n", arg);
            return 2;
        }
    }
    if (!std::filesystem::exists(std::filesystem::path(root) / "src") &&
        !std::filesystem::exists(std::filesystem::path(root) / "tests")) {
        std::fprintf(stderr,
                     "aeo-lint: '%s' has neither src/ nor tests/; pass the "
                     "repo root via --root=PATH\n",
                     root.c_str());
        return 2;
    }

    const std::vector<aeo::lint::Finding> findings =
        aeo::lint::RunLint({.root = root});
    if (findings.empty()) {
        std::printf("aeo-lint: clean\n");
        return 0;
    }
    std::fputs(aeo::lint::FormatFindings(findings).c_str(), stdout);
    std::fprintf(stderr, "aeo-lint: %zu finding(s)\n", findings.size());
    return 1;
}
