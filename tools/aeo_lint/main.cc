/**
 * @file
 * aeo-lint CLI. Usage:
 *
 *     aeo_lint [--root=PATH] [--format=text|json] [--github-annotations]
 *              [--jobs=N] [--out=PATH] [--perf-out=PATH]
 *
 * Lints the tree at PATH (default: the current directory). The default
 * output is one `file:line: [rule] message` per finding; `--format=json`
 * emits the machine-readable findings document instead. `--out=PATH` writes
 * the JSON findings document to PATH regardless of the stdout format (the
 * CI artifact), `--github-annotations` additionally prints GitHub workflow
 * problem annotations, and `--perf-out=PATH` writes a BENCH_lint.json-style
 * perf record (wall time, files, functions, worker count). `--jobs=N` sets
 * the per-file analysis worker count (0 = hardware concurrency).
 *
 * Exit status: 0 clean, 1 findings, 2 bad invocation. CI runs this as a
 * blocking job; see DESIGN.md §11/§16 for the rules and the suppression
 * mechanism.
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/json.h"
#include "lint.h"

namespace {

/** Monotonic wall time for the perf record. This is tooling, not product:
 * the determinism rule bans raw clocks in src/ and bench/ only, and the
 * lint's own timing is exactly the kind of machine-dependent perf record
 * the bench allowlist models. */
double
MonotonicSecondsNow()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

bool
WriteTextFile(const std::string& path, const std::string& contents)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) return false;
    out << contents;
    return static_cast<bool>(out);
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string root = ".";
    std::string format = "text";
    std::string out_path;
    std::string perf_out_path;
    bool github_annotations = false;
    int jobs = 0;
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strncmp(arg, "--root=", 7) == 0) {
            root = arg + 7;
        } else if (std::strncmp(arg, "--format=", 9) == 0) {
            format = arg + 9;
            if (format != "text" && format != "json") {
                std::fprintf(stderr,
                             "aeo-lint: --format must be text or json\n");
                return 2;
            }
        } else if (std::strcmp(arg, "--github-annotations") == 0) {
            github_annotations = true;
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            jobs = std::atoi(arg + 7);
            if (jobs < 0) {
                std::fprintf(stderr, "aeo-lint: --jobs must be >= 0\n");
                return 2;
            }
        } else if (std::strncmp(arg, "--out=", 6) == 0) {
            out_path = arg + 6;
        } else if (std::strncmp(arg, "--perf-out=", 11) == 0) {
            perf_out_path = arg + 11;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            std::printf(
                "usage: aeo_lint [--root=PATH] [--format=text|json] "
                "[--github-annotations] [--jobs=N] [--out=PATH] "
                "[--perf-out=PATH]\n");
            return 0;
        } else {
            std::fprintf(stderr, "aeo-lint: unknown argument '%s'\n", arg);
            return 2;
        }
    }
    if (!std::filesystem::exists(std::filesystem::path(root) / "src") &&
        !std::filesystem::exists(std::filesystem::path(root) / "tests")) {
        std::fprintf(stderr,
                     "aeo-lint: '%s' has neither src/ nor tests/; pass the "
                     "repo root via --root=PATH\n",
                     root.c_str());
        return 2;
    }

    const double t0 = MonotonicSecondsNow();
    aeo::lint::LintStats stats;
    const std::vector<aeo::lint::Finding> findings =
        aeo::lint::RunLint({.root = root, .jobs = jobs}, &stats);
    const double wall_s = MonotonicSecondsNow() - t0;

    if (!out_path.empty() &&
        !WriteTextFile(out_path,
                       aeo::lint::FormatFindingsJson(findings))) {
        std::fprintf(stderr, "aeo-lint: cannot write --out=%s\n",
                     out_path.c_str());
        return 2;
    }
    if (!perf_out_path.empty()) {
        aeo::JsonValue perf = aeo::JsonValue::MakeObject();
        perf.Set("bench", "aeo_lint");
        perf.Set("kind", "perf_record");
        perf.Set("wall_s", wall_s);
        perf.Set("files_analyzed",
                 static_cast<int64_t>(stats.files_analyzed));
        perf.Set("functions_indexed",
                 static_cast<int64_t>(stats.functions_indexed));
        perf.Set("findings", static_cast<int64_t>(stats.findings));
        perf.Set("jobs", jobs);
        if (!WriteTextFile(perf_out_path, perf.Dump(2) + "\n")) {
            std::fprintf(stderr, "aeo-lint: cannot write --perf-out=%s\n",
                         perf_out_path.c_str());
            return 2;
        }
    }
    if (github_annotations) {
        std::fputs(aeo::lint::FormatGitHubAnnotations(findings).c_str(),
                   stdout);
    }

    if (format == "json") {
        std::fputs(aeo::lint::FormatFindingsJson(findings).c_str(), stdout);
        return findings.empty() ? 0 : 1;
    }
    if (findings.empty()) {
        std::printf("aeo-lint: clean (%zu files, %zu functions, %.2fs)\n",
                    stats.files_analyzed, stats.functions_indexed, wall_s);
        return 0;
    }
    std::fputs(aeo::lint::FormatFindings(findings).c_str(), stdout);
    std::fprintf(stderr, "aeo-lint: %zu finding(s)\n", findings.size());
    return 1;
}
