/**
 * @file
 * aeo-lint: the repo's domain-invariant checker (DESIGN.md §11).
 *
 * A deliberately small, text-level static-analysis pass over the tree that
 * machine-checks the architectural contracts PR 4 established by review
 * convention:
 *
 *  - `layering`          — the include DAG between src/ layers is one-way
 *                          (common → sim → … → platform → core → chaos),
 *                          src/core never includes src/kernel, nothing
 *                          below src/chaos includes it, and the `Device`
 *                          seam is only named by the profiling/experiment
 *                          files.
 *  - `time-seam`         — the policy layers (src/core, src/control)
 *                          consume time only through the aeo::platform
 *                          seam (Clock, TickScheduler, DeadlineSupervisor,
 *                          DESIGN.md §13); naming `Simulator` or
 *                          `PeriodicTask`, or calling a raw `sim()`, is a
 *                          finding there.
 *  - `sysfs-literal`     — inline "/sys/..." string literals appear only in
 *                          src/kernel and src/platform; everyone else goes
 *                          through the interned SysfsHandles seam.
 *  - `test-registration` — every *_test.cc under tests/ is registered in an
 *                          aeo_add_test() call in tests/CMakeLists.txt and
 *                          that call carries at least one ctest label.
 *  - `unit-literal`      — a non-zero numeric literal never flows directly
 *                          into a khz/mbps/mw/ms-suffixed variable or field;
 *                          it must pass through the tagged constructors in
 *                          src/common/units.h (KHz, MBps, Milliwatts,
 *                          Millis) or SimTime's named constructors.
 *  - `suppression`       — `// aeo-lint: allow(<rule>)` comments must carry
 *                          a justification (`-- <why>`); a bare allow is
 *                          itself a finding.
 *  - `monitor-catalogue` — every `class X : public InvariantMonitor` under
 *                          src/ appears by class name (in code, not a
 *                          comment) in tests/chaos/invariant_monitor_test.cc,
 *                          so a runtime monitor cannot ship untested.
 *  - `bench-snapshot`    — every bench source naming a `BENCH_<x>.json`
 *                          snapshot has a committed bench/snapshots/
 *                          counterpart for CI's byte-for-byte gate to diff
 *                          against. Perf records (machine-dependent timing
 *                          outputs) are exempt via an explicit allowlist in
 *                          the rule.
 *
 * The checks are line-oriented on a comment- and string-stripped view of
 * each file: fast, dependency-free, and precise enough for CI to block on.
 */
#ifndef AEO_TOOLS_AEO_LINT_LINT_H_
#define AEO_TOOLS_AEO_LINT_LINT_H_

#include <string>
#include <vector>

namespace aeo::lint {

/** One rule violation at a source location. */
struct Finding {
    /** Rule identifier (see file comment). */
    std::string rule;
    /** Path relative to the linted root. */
    std::string file;
    /** 1-based line number. */
    int line = 0;
    /** Human-readable explanation. */
    std::string message;
};

/** What to lint. */
struct LintOptions {
    /** Tree root: the directory holding src/, tests/ and bench/. */
    std::string root;
};

/** Runs every rule over @p options.root and returns the findings, sorted by
 * (file, line, rule). An empty result means the tree is clean. */
std::vector<Finding> RunLint(const LintOptions& options);

/** Renders findings as "file:line: [rule] message" lines. */
std::string FormatFindings(const std::vector<Finding>& findings);

namespace internal {

/**
 * A source file preprocessed for rule matching: `code` mirrors the original
 * byte-for-byte except that comment bodies and string/char literal contents
 * are blanked (newlines preserved), so token scans cannot match inside
 * either. String literals are collected separately for the sysfs rule, and
 * `aeo-lint:` control comments are parsed out before blanking.
 */
struct StrippedSource {
    std::string code;
    /** (line, literal contents) for every "..." literal. */
    std::vector<std::pair<int, std::string>> string_literals;
    /** Lines carrying a well-formed `// aeo-lint: allow(<rule>) -- why`,
     * as (line, rule). */
    std::vector<std::pair<int, std::string>> allows;
    /** Lines carrying a malformed allow (missing rule or justification). */
    std::vector<int> malformed_allows;
};

/** Strips @p text (see StrippedSource). Exposed for unit tests. */
StrippedSource StripSource(const std::string& text);

}  // namespace internal

}  // namespace aeo::lint

#endif  // AEO_TOOLS_AEO_LINT_LINT_H_
