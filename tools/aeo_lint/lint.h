/**
 * @file
 * aeo-lint: the repo's domain-invariant checker (DESIGN.md §11, §16).
 *
 * A three-stage semantic analyzer over the tree: a C++ lexer (lexer.h), a
 * per-file semantic model with a name-based call graph across src/, tools/
 * and bench/ (model.h), and the rule families below running over tokens +
 * model. Rule catalogue:
 *
 *  - `layering`          — the include DAG between src/ layers is one-way
 *                          (common → sim → … → platform → core → chaos),
 *                          src/core never includes src/kernel, nothing
 *                          below src/chaos includes it, and the `Device`
 *                          seam is only named by the profiling/experiment
 *                          files.
 *  - `time-seam`         — the policy layers (src/core, src/control)
 *                          consume time only through the aeo::platform
 *                          seam (Clock, TickScheduler, DeadlineSupervisor,
 *                          DESIGN.md §13); naming `Simulator` or
 *                          `PeriodicTask`, or calling a raw `sim()`, is a
 *                          finding there.
 *  - `sysfs-literal`     — inline "/sys/..." string literals appear only in
 *                          src/kernel and src/platform; everyone else goes
 *                          through the interned SysfsHandles seam.
 *  - `cluster-literal`   — hard-coded `cpu<N>`/`policy<N>` string literals
 *                          are confined to src/kernel and src/platform;
 *                          policy code addresses clusters through
 *                          ClusterTopology.
 *  - `test-registration` — every *_test.cc under tests/ is registered in an
 *                          aeo_add_test() call in tests/CMakeLists.txt and
 *                          that call carries at least one ctest label.
 *  - `unit-literal`      — a non-zero numeric literal never flows directly
 *                          into a khz/mbps/mw/ms-suffixed variable or field;
 *                          it must pass through the tagged constructors in
 *                          src/common/units.h.
 *  - `suppression`       — a malformed suppression comment (missing rule or
 *                          justification) is itself a finding.
 *  - `stale-suppression` — a well-formed suppression whose rule no longer
 *                          fires within its window is a finding: dead
 *                          allows rot into blanket permissions.
 *  - `monitor-catalogue` — every `class X : public InvariantMonitor` under
 *                          src/ appears by class name (in code, not a
 *                          comment) in tests/chaos/invariant_monitor_test.cc.
 *  - `bench-snapshot`    — every bench source naming a `BENCH_<x>.json`
 *                          snapshot has a committed bench/snapshots/
 *                          counterpart (perf records exempt via allowlist).
 *  - `determinism`       — reproducibility bans in src/ and bench/:
 *                          std::random_device, rand()/srand(), wall clocks
 *                          (system_clock/steady_clock/high_resolution_clock
 *                          outside the src/platform clock seam), time()/
 *                          clock(), pointer hashing, and unordered-container
 *                          iteration in any function reachable from a
 *                          serialization sink (WriteCsv / *ToJson /
 *                          Serialize / snapshot emitters).
 *  - `hot-path-alloc`    — functions annotated as hot-path entry points
 *                          (and everything reachable from them through the
 *                          call graph) must not allocate: `new`,
 *                          make_unique/make_shared, std::function
 *                          construction, growth calls on std containers,
 *                          and calls into unknown external functions off
 *                          the allowlist are findings. A dangling
 *                          annotation (attached to no function) is too.
 *
 * The call graph is name-based and documented-unsound (DESIGN.md §16):
 * reachability over-approximates by merging same-named functions (scoped
 * to the caller's class when the class defines the name) and stops at the
 * `hot-path-stop` escape annotation; receiver types for growth calls are
 * known only when the declaration is visible somewhere in the tree.
 */
#ifndef AEO_TOOLS_AEO_LINT_LINT_H_
#define AEO_TOOLS_AEO_LINT_LINT_H_

#include <string>
#include <vector>

namespace aeo::lint {

/** One rule violation at a source location. */
struct Finding {
    /** Rule identifier (see file comment). */
    std::string rule;
    /** Path relative to the linted root. */
    std::string file;
    /** 1-based line number. */
    int line = 0;
    /** Human-readable explanation. */
    std::string message;
    /** Actionable remediation, for the JSON artifact and annotations. */
    std::string fix_hint;
};

/** What to lint and how. */
struct LintOptions {
    /** Tree root: the directory holding src/, tests/ and bench/. */
    std::string root;
    /** Worker threads for per-file analysis; 0 = hardware concurrency.
     * Findings are deterministic at any value. */
    int jobs = 0;
};

/** Per-run statistics, for the perf record. */
struct LintStats {
    size_t files_analyzed = 0;
    size_t functions_indexed = 0;
    size_t findings = 0;
};

/** Runs every rule over @p options.root and returns the findings, sorted by
 * (file, line, rule). An empty result means the tree is clean. */
std::vector<Finding> RunLint(const LintOptions& options,
                             LintStats* stats = nullptr);

/** Renders findings as "file:line: [rule] message" lines. */
std::string FormatFindings(const std::vector<Finding>& findings);

/** Renders findings as a deterministic JSON document (the CI artifact):
 * {"schema":1,"findings":[{"rule","file","line","message","fix_hint"}]}. */
std::string FormatFindingsJson(const std::vector<Finding>& findings);

/** Renders findings as GitHub workflow problem annotations, one
 * `::error file=...,line=...,title=...::message` per finding. */
std::string FormatGitHubAnnotations(const std::vector<Finding>& findings);

}  // namespace aeo::lint

#endif  // AEO_TOOLS_AEO_LINT_LINT_H_
