#include "lint.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace aeo::lint {

namespace fs = std::filesystem;

namespace {

bool
IsIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

namespace internal {

namespace {

/** Parses one comment body for `aeo-lint: allow(<rule>) -- <why>` and files
 * it into @p out at @p line. A comment that mentions aeo-lint but does not
 * parse (or lacks a justification) is recorded as malformed. */
void
ParseControlComment(const std::string& comment, int line, StrippedSource* out)
{
    const size_t tag = comment.find("aeo-lint:");
    if (tag == std::string::npos) return;
    size_t pos = comment.find("allow(", tag);
    if (pos == std::string::npos) {
        out->malformed_allows.push_back(line);
        return;
    }
    pos += 6;
    const size_t close = comment.find(')', pos);
    if (close == std::string::npos) {
        out->malformed_allows.push_back(line);
        return;
    }
    const std::string rule = comment.substr(pos, close - pos);
    // The justification separator is mandatory and must be followed by text.
    const size_t dashes = comment.find("--", close);
    bool justified = false;
    if (dashes != std::string::npos) {
        for (size_t i = dashes + 2; i < comment.size(); ++i) {
            if (std::isspace(static_cast<unsigned char>(comment[i])) == 0) {
                justified = true;
                break;
            }
        }
    }
    if (rule.empty() || !justified) {
        out->malformed_allows.push_back(line);
        return;
    }
    out->allows.emplace_back(line, rule);
}

}  // namespace

StrippedSource
StripSource(const std::string& text)
{
    StrippedSource out;
    out.code.reserve(text.size());

    enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
    State state = State::kCode;
    int line = 1;
    int token_start_line = 1;  // line the current comment/string began on
    std::string pending;       // accumulated comment or literal contents

    for (size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        switch (state) {
            case State::kCode:
                if (c == '/' && next == '/') {
                    state = State::kLineComment;
                    token_start_line = line;
                    pending.clear();
                    out.code += "  ";
                    ++i;
                } else if (c == '/' && next == '*') {
                    state = State::kBlockComment;
                    token_start_line = line;
                    pending.clear();
                    out.code += "  ";
                    ++i;
                } else if (c == '"') {
                    state = State::kString;
                    token_start_line = line;
                    pending.clear();
                    out.code += '"';
                } else if (c == '\'') {
                    state = State::kChar;
                    out.code += '\'';
                } else {
                    out.code += c;
                }
                break;
            case State::kLineComment:
                if (c == '\n') {
                    ParseControlComment(pending, token_start_line, &out);
                    state = State::kCode;
                    out.code += '\n';
                } else {
                    pending += c;
                    out.code += ' ';
                }
                break;
            case State::kBlockComment:
                if (c == '*' && next == '/') {
                    ParseControlComment(pending, token_start_line, &out);
                    state = State::kCode;
                    out.code += "  ";
                    ++i;
                } else {
                    pending += c;
                    out.code += c == '\n' ? '\n' : ' ';
                }
                break;
            case State::kString:
                if (c == '\\' && next != '\0') {
                    pending += c;
                    pending += next;
                    out.code += "  ";
                    ++i;
                } else if (c == '"') {
                    out.string_literals.emplace_back(token_start_line, pending);
                    state = State::kCode;
                    out.code += '"';
                } else {
                    pending += c;
                    out.code += c == '\n' ? '\n' : ' ';
                }
                break;
            case State::kChar:
                if (c == '\\' && next != '\0') {
                    out.code += "  ";
                    ++i;
                } else if (c == '\'') {
                    state = State::kCode;
                    out.code += '\'';
                } else {
                    out.code += c == '\n' ? '\n' : ' ';
                }
                break;
        }
        if (c == '\n') ++line;
    }
    if (state == State::kLineComment || state == State::kBlockComment) {
        ParseControlComment(pending, token_start_line, &out);
    }
    return out;
}

}  // namespace internal

namespace {

/** One scanned file, ready for rule matching. */
struct SourceFile {
    /** Root-relative path with '/' separators, e.g. "src/core/foo.cc". */
    std::string rel_path;
    internal::StrippedSource stripped;
    /** stripped.code split into lines (index 0 == line 1). */
    std::vector<std::string> lines;
};

/**
 * The include-layering contract (DESIGN.md §11): each src/ directory may
 * include only from the listed directories. This is the one-way DAG
 * common → {sim,stats,lp,control} → {fault,soc} → {power,kernel,apps}
 * → device → platform → core → chaos, with core's device access further
 * restricted to the profiling-harness seam files below. The chaos layer
 * sits on top and may see everything; nothing below it may include it —
 * the product must not know its chaos harness exists.
 */
const std::map<std::string, std::set<std::string>>&
AllowedIncludes()
{
    static const std::map<std::string, std::set<std::string>> kAllowed = {
        {"common", {"common"}},
        {"sim", {"common", "sim"}},
        {"stats", {"common", "stats"}},
        {"lp", {"common", "lp"}},
        {"control", {"common", "control"}},
        {"fault", {"common", "sim", "fault"}},
        {"soc", {"common", "sim", "soc"}},
        {"power", {"common", "sim", "fault", "power"}},
        {"kernel", {"common", "sim", "soc", "fault", "kernel"}},
        {"apps", {"common", "sim", "soc", "apps"}},
        {"device",
         {"common", "sim", "stats", "soc", "fault", "power", "kernel", "apps",
          "device"}},
        {"platform",
         {"common", "sim", "stats", "soc", "fault", "power", "kernel", "apps",
          "device", "platform"}},
        {"core",
         {"common", "sim", "stats", "lp", "control", "soc", "fault", "power",
          "apps", "platform", "core"}},
        {"chaos",
         {"common", "sim", "stats", "lp", "control", "soc", "fault", "power",
          "kernel", "apps", "device", "platform", "core", "chaos"}},
    };
    return kAllowed;
}

/** src/core files allowed to include src/device and name `Device`: the
 * offline-profiling / experiment harness seam (PR 4 contract). */
bool
IsCoreDeviceSeam(const std::string& rel_path)
{
    static const std::set<std::string> kSeams = {
        "src/core/experiment.h",       "src/core/experiment.cc",
        "src/core/offline_profiler.h", "src/core/offline_profiler.cc",
        "src/core/batch_runner.h",     "src/core/batch_runner.cc",
    };
    return kSeams.count(rel_path) > 0;
}

/** Directories where the unit-literal rule is enforced (the hot-path layers
 * that have adopted the tagged unit types in common/units.h). */
bool
UnitRuleApplies(const std::string& layer)
{
    static const std::set<std::string> kLayers = {
        "common", "soc", "core", "device", "platform", "chaos"};
    return kLayers.count(layer) > 0;
}

/** Second path component of "src/<layer>/...", or "" if not under src/. */
std::string
LayerOf(const std::string& rel_path)
{
    if (rel_path.rfind("src/", 0) != 0) return "";
    const size_t start = 4;
    const size_t slash = rel_path.find('/', start);
    if (slash == std::string::npos) return "";
    return rel_path.substr(start, slash - start);
}

/** True when an `aeo-lint: allow(<rule>)` comment covers @p line (the line
 * itself or up to two lines above, to reach multi-line declarations). */
bool
IsSuppressed(const SourceFile& file, int line, const std::string& rule)
{
    for (const auto& [allow_line, allow_rule] : file.stripped.allows) {
        if (allow_rule != rule) continue;
        if (allow_line <= line && line - allow_line <= 2) return true;
    }
    return false;
}

void
AddFinding(std::vector<Finding>* findings, const SourceFile& file, int line,
           const std::string& rule, const std::string& message)
{
    if (IsSuppressed(file, line, rule)) return;
    findings->push_back(Finding{rule, file.rel_path, line, message});
}

/** Rule `suppression`: malformed allow comments are findings themselves, so
 * a typo'd rule name or a missing justification cannot silently disable a
 * check. */
void
CheckSuppressions(const SourceFile& file, std::vector<Finding>* findings)
{
    for (const int line : file.stripped.malformed_allows) {
        findings->push_back(Finding{
            "suppression", file.rel_path, line,
            "malformed aeo-lint comment; use "
            "`// aeo-lint: allow(<rule>) -- <justification>`"});
    }
}

/** Rule `layering`: project-relative includes must follow the DAG, and only
 * the harness seam files in src/core may touch src/device. */
void
CheckLayering(const SourceFile& file, std::vector<Finding>* findings)
{
    const std::string layer = LayerOf(file.rel_path);
    const auto it = AllowedIncludes().find(layer);
    if (it == AllowedIncludes().end()) return;
    const std::set<std::string>& allowed = it->second;

    for (const auto& [line, literal] : file.stripped.string_literals) {
        // Only literals on #include lines are include paths.
        const std::string& code = file.lines[static_cast<size_t>(line - 1)];
        const size_t hash = code.find_first_not_of(" \t");
        if (hash == std::string::npos || code[hash] != '#') continue;
        if (code.find("include", hash) == std::string::npos) continue;
        const size_t slash = literal.find('/');
        if (slash == std::string::npos) continue;
        const std::string target = literal.substr(0, slash);
        if (AllowedIncludes().count(target) == 0) continue;  // not a layer
        if (layer == "core" && target == "device") {
            if (!IsCoreDeviceSeam(file.rel_path)) {
                AddFinding(findings, file, line, "layering",
                           "src/core may include src/device only from the "
                           "profiling-harness seam (experiment, "
                           "offline_profiler, batch_runner); route hardware "
                           "access through aeo::platform instead");
            }
            continue;
        }
        if (allowed.count(target) == 0) {
            AddFinding(findings, file, line, "layering",
                       "src/" + layer + " must not include src/" + target +
                           " (include DAG: common -> sim/stats/lp/control -> "
                           "fault/soc -> power/kernel/apps -> device -> "
                           "platform -> core -> chaos)");
        }
    }

    // The `Device` seam type may only be named by the harness seam files.
    if (layer == "core" && !IsCoreDeviceSeam(file.rel_path)) {
        const std::string& code = file.stripped.code;
        static const std::string kToken = "Device";
        size_t pos = 0;
        int line = 1;
        size_t line_start_scan = 0;
        while ((pos = code.find(kToken, pos)) != std::string::npos) {
            const bool bounded_left =
                pos == 0 || !IsIdentChar(code[pos - 1]);
            const size_t end = pos + kToken.size();
            const bool bounded_right =
                end >= code.size() || !IsIdentChar(code[end]);
            if (bounded_left && bounded_right) {
                line += static_cast<int>(std::count(
                    code.begin() + static_cast<ptrdiff_t>(line_start_scan),
                    code.begin() + static_cast<ptrdiff_t>(pos), '\n'));
                line_start_scan = pos;
                AddFinding(findings, file, line, "layering",
                           "src/core may name `Device` only in the "
                           "profiling-harness seam files; the controller "
                           "talks to hardware through aeo::platform");
            }
            pos = end;
        }
    }
}

/** Rule `time-seam`: the policy layers (src/core, src/control) consume time
 * only through the aeo::platform seam — Clock, TickScheduler and
 * DeadlineSupervisor (DESIGN.md §13). Naming the raw `Simulator` or
 * `PeriodicTask` machinery there, or calling a bare `sim()` accessor, pins
 * policy code to the simulation backend and bypasses the deadline
 * classification every control tick must pass through. */
void
CheckTimeSeam(const SourceFile& file, std::vector<Finding>* findings)
{
    const std::string layer = LayerOf(file.rel_path);
    if (layer != "core" && layer != "control") return;
    const std::string& code = file.stripped.code;
    static const std::vector<std::string> kTokens = {"Simulator",
                                                     "PeriodicTask", "sim"};
    for (const std::string& token : kTokens) {
        size_t pos = 0;
        int line = 1;
        size_t line_start_scan = 0;
        while ((pos = code.find(token, pos)) != std::string::npos) {
            const bool bounded_left =
                pos == 0 || !IsIdentChar(code[pos - 1]);
            const size_t end = pos + token.size();
            const bool bounded_right =
                end >= code.size() || !IsIdentChar(code[end]);
            bool hit = bounded_left && bounded_right;
            if (hit && token == "sim") {
                // Only the call form `sim(...)` is raw time access; the
                // bare word is unremarkable inside other identifiers.
                size_t after = end;
                while (after < code.size() &&
                       (code[after] == ' ' || code[after] == '\t')) {
                    ++after;
                }
                hit = after < code.size() && code[after] == '(';
            }
            if (hit) {
                line += static_cast<int>(std::count(
                    code.begin() + static_cast<ptrdiff_t>(line_start_scan),
                    code.begin() + static_cast<ptrdiff_t>(pos), '\n'));
                line_start_scan = pos;
                AddFinding(findings, file, line, "time-seam",
                           "src/" + layer +
                               " consumes time only through the "
                               "aeo::platform seam (Clock, TickScheduler, "
                               "DeadlineSupervisor); do not name Simulator/"
                               "PeriodicTask or call a raw sim() here "
                               "(DESIGN.md §13)");
            }
            pos = end;
        }
    }
}

/** Rule `sysfs-literal`: inline "/sys..." strings belong to src/kernel and
 * src/platform; everything else must use the interned constants. */
void
CheckSysfsLiterals(const SourceFile& file, std::vector<Finding>* findings)
{
    const std::string layer = LayerOf(file.rel_path);
    if (layer.empty() || layer == "kernel" || layer == "platform") return;
    for (const auto& [line, literal] : file.stripped.string_literals) {
        if (literal.rfind("/sys", 0) == 0) {
            AddFinding(findings, file, line, "sysfs-literal",
                       "inline sysfs path literal outside src/kernel and "
                       "src/platform; use the interned node constants or the "
                       "Sysfs seam");
        }
    }
}

/** Rule `cluster-literal`: a hard-coded per-core or per-cluster index in a
 * string literal — `cpu0`, `cpu4`, `policy0` — bakes the single-cluster
 * assumption into policy code and silently breaks on a big.LITTLE topology
 * where the second cluster's domain lives at policy4. Cluster-relative
 * paths are composed only by src/kernel (which owns the per-cluster cpufreq
 * policy directories) and src/platform (which interns per-cluster
 * SysfsHandles); every other layer must address clusters through
 * ClusterTopology indices. */
void
CheckClusterLiterals(const SourceFile& file, std::vector<Finding>* findings)
{
    const std::string layer = LayerOf(file.rel_path);
    if (layer.empty() || layer == "kernel" || layer == "platform") return;
    static const std::vector<std::string> kPrefixes = {"cpu", "policy"};
    for (const auto& [line, literal] : file.stripped.string_literals) {
        bool hit = false;
        for (const std::string& prefix : kPrefixes) {
            size_t pos = 0;
            while (!hit &&
                   (pos = literal.find(prefix, pos)) != std::string::npos) {
                const size_t end = pos + prefix.size();
                // `cpu7`/`policy4` as a path component, not `cpuinfo...` or
                // `percpu` — the prefix must start a word and carry an index.
                const bool bounded_left =
                    pos == 0 || !IsIdentChar(literal[pos - 1]);
                const bool indexed =
                    end < literal.size() &&
                    std::isdigit(static_cast<unsigned char>(literal[end])) !=
                        0;
                hit = bounded_left && indexed;
                pos = end;
            }
            if (hit) break;
        }
        if (hit) {
            AddFinding(findings, file, line, "cluster-literal",
                       "hard-coded cpu<N>/policy<N> index in a string "
                       "literal outside src/kernel and src/platform; "
                       "address clusters through ClusterTopology and let "
                       "the kernel/platform seams compose per-cluster "
                       "paths");
        }
    }
}

/** Rule `unit-literal`: in the adopted layers, a non-zero numeric literal
 * must not be assigned or brace-fed into a khz/mbps/mw/ms-suffixed name —
 * it has to pass through KHz()/MBps()/Milliwatts()/Millis() (or SimTime's
 * named constructors) so the scale is part of the type. Zero is exempt:
 * it is the same quantity at every scale. */
void
CheckUnitLiterals(const SourceFile& file, std::vector<Finding>* findings)
{
    if (!UnitRuleApplies(LayerOf(file.rel_path))) return;
    static const std::vector<std::string> kSuffixes = {"khz", "mbps", "mw",
                                                       "ms"};
    for (size_t li = 0; li < file.lines.size(); ++li) {
        const std::string& code = file.lines[li];
        for (size_t i = 0; i < code.size();) {
            if (!IsIdentChar(code[i]) ||
                std::isdigit(static_cast<unsigned char>(code[i])) != 0) {
                ++i;
                continue;
            }
            size_t end = i;
            while (end < code.size() && IsIdentChar(code[end])) ++end;
            const std::string ident = code.substr(i, end - i);
            bool suffixed = false;
            for (const std::string& suffix : kSuffixes) {
                if (ident == suffix ||
                    (ident.size() > suffix.size() + 1 &&
                     ident.compare(ident.size() - suffix.size(), suffix.size(),
                                   suffix) == 0 &&
                     ident[ident.size() - suffix.size() - 1] == '_')) {
                    suffixed = true;
                    break;
                }
            }
            i = end;
            if (!suffixed) continue;

            // Accept `=`, `+=`, `-=` or `{`, then require a numeric literal.
            size_t j = end;
            while (j < code.size() && (code[j] == ' ' || code[j] == '\t')) ++j;
            if (j < code.size() && (code[j] == '+' || code[j] == '-')) ++j;
            if (j >= code.size() || (code[j] != '=' && code[j] != '{')) {
                continue;
            }
            if (code[j] == '=' && j + 1 < code.size() && code[j + 1] == '=') {
                continue;  // comparison, not assignment
            }
            ++j;
            while (j < code.size() && (code[j] == ' ' || code[j] == '\t')) ++j;
            size_t lit = j;
            if (lit < code.size() && (code[lit] == '+' || code[lit] == '-')) {
                ++lit;
            }
            const bool numeric =
                lit < code.size() &&
                (std::isdigit(static_cast<unsigned char>(code[lit])) != 0 ||
                 (code[lit] == '.' && lit + 1 < code.size() &&
                  std::isdigit(static_cast<unsigned char>(code[lit + 1])) !=
                      0));
            if (!numeric) continue;
            const double value = std::strtod(code.c_str() + j, nullptr);
            if (value == 0.0) continue;
            AddFinding(findings, file, static_cast<int>(li + 1), "unit-literal",
                       "raw numeric literal flows into `" + ident +
                           "`; wrap it in the tagged unit constructor "
                           "(KHz/MBps/Milliwatts/Millis) from "
                           "common/units.h");
        }
    }
}

/** The behavioural catalogue suite the monitor-catalogue rule checks
 * against: every runtime invariant monitor must be exercised here. */
constexpr const char kMonitorCataloguePath[] =
    "tests/chaos/invariant_monitor_test.cc";

/** Finds `class <Name> ... : public InvariantMonitor` declarations in the
 * stripped code of @p file, as (name, line of the class head). */
std::vector<std::pair<std::string, int>>
FindMonitorSubclasses(const SourceFile& file)
{
    std::vector<std::pair<std::string, int>> found;
    const std::string& code = file.stripped.code;
    static const std::string kBase = "InvariantMonitor";
    size_t pos = 0;
    while ((pos = code.find(kBase, pos)) != std::string::npos) {
        const size_t end = pos + kBase.size();
        const bool bounded =
            (pos == 0 || !IsIdentChar(code[pos - 1])) &&
            (end >= code.size() || !IsIdentChar(code[end]));
        if (!bounded) {
            pos = end;
            continue;
        }
        // A base-specifier: the previous token must be `public`.
        size_t p = pos;
        while (p > 0 &&
               std::isspace(static_cast<unsigned char>(code[p - 1])) != 0) {
            --p;
        }
        if (p < 6 || code.compare(p - 6, 6, "public") != 0 ||
            (p > 6 && IsIdentChar(code[p - 7]))) {
            pos = end;
            continue;
        }
        // Walk back to the class head; a brace or semicolon in between
        // means `public InvariantMonitor` was something else entirely.
        const size_t head = code.rfind("class", p - 6);
        bool is_decl = head != std::string::npos &&
                       (head == 0 || !IsIdentChar(code[head - 1]));
        for (size_t i = head + 5; is_decl && i < p - 6; ++i) {
            if (code[i] == '{' || code[i] == '}' || code[i] == ';') {
                is_decl = false;
            }
        }
        if (!is_decl) {
            pos = end;
            continue;
        }
        size_t name_begin = head + 5;
        while (name_begin < code.size() &&
               std::isspace(static_cast<unsigned char>(code[name_begin])) !=
                   0) {
            ++name_begin;
        }
        size_t name_end = name_begin;
        while (name_end < code.size() && IsIdentChar(code[name_end])) {
            ++name_end;
        }
        const std::string name =
            code.substr(name_begin, name_end - name_begin);
        if (!name.empty() && name != kBase) {
            const int line = 1 + static_cast<int>(std::count(
                                     code.begin(),
                                     code.begin() +
                                         static_cast<ptrdiff_t>(head),
                                     '\n'));
            found.emplace_back(name, line);
        }
        pos = end;
    }
    return found;
}

/** Rule `monitor-catalogue`: every InvariantMonitor subclass declared under
 * src/ must appear — by class name, in code, not comments — in the
 * catalogue suite, so a new runtime monitor cannot ship without a
 * behavioural test. */
void
CheckMonitorCatalogue(const SourceFile& file,
                      const std::string& catalogue_code,
                      std::vector<Finding>* findings)
{
    for (const auto& [name, line] : FindMonitorSubclasses(file)) {
        bool tested = false;
        size_t pos = 0;
        while ((pos = catalogue_code.find(name, pos)) != std::string::npos) {
            const size_t end = pos + name.size();
            if ((pos == 0 || !IsIdentChar(catalogue_code[pos - 1])) &&
                (end >= catalogue_code.size() ||
                 !IsIdentChar(catalogue_code[end]))) {
                tested = true;
                break;
            }
            pos = end;
        }
        if (!tested) {
            AddFinding(findings, file, line, "monitor-catalogue",
                       "InvariantMonitor subclass `" + name +
                           "` is never exercised in " +
                           std::string(kMonitorCataloguePath) +
                           "; every runtime monitor needs a behavioural "
                           "test in the catalogue suite");
        }
    }
}

bool HasSuffix(const std::string& s, const std::string& suffix);

/** Benches whose BENCH_*.json outputs are perf records — wall time,
 * events/sec, allocation counts — and therefore machine-dependent: there is
 * no meaningful byte-for-byte snapshot to gate them against. Everything
 * else writing a BENCH_*.json is presumed deterministic and must commit a
 * bench/snapshots/ counterpart. */
bool
IsPerfRecordBench(const std::string& rel_path)
{
    static const std::set<std::string> kAllowlist = {
        "bench/bench_batch_scaling.cc",
        "bench/bench_event_hotpath.cc",
    };
    return kAllowlist.count(rel_path) > 0;
}

/** Rule `bench-snapshot`: a bench naming a `BENCH_*.json` artifact (its
 * default snapshot path) must have the committed bench/snapshots/ copy the
 * CI determinism gate diffs against — a new gated bench cannot ship without
 * its baseline. */
void
CheckBenchSnapshots(const fs::path& root, const SourceFile& file,
                    std::vector<Finding>* findings)
{
    if (file.rel_path.rfind("bench/", 0) != 0 ||
        IsPerfRecordBench(file.rel_path)) {
        return;
    }
    for (const auto& [line, literal] : file.stripped.string_literals) {
        if (literal.rfind("BENCH_", 0) != 0 || !HasSuffix(literal, ".json") ||
            literal.find('/') != std::string::npos) {
            continue;
        }
        if (!fs::exists(root / "bench" / "snapshots" / literal)) {
            AddFinding(findings, file, line, "bench-snapshot",
                       "bench writes snapshot `" + literal +
                           "` but bench/snapshots/" + literal +
                           " is not committed; generate it (--fast, any "
                           "--jobs) so CI's byte-for-byte gate has a "
                           "baseline, or allowlist the bench as a perf "
                           "record in aeo-lint");
        }
    }
}

/** One aeo_add_test() registration parsed out of tests/CMakeLists.txt. */
struct TestTarget {
    std::string name;
    int line = 0;
    std::vector<std::string> sources;
    std::vector<std::string> labels;
};

std::vector<TestTarget>
ParseTestRegistrations(const std::string& cmake_text)
{
    // Strip CMake comments, preserving line structure.
    std::string text;
    text.reserve(cmake_text.size());
    bool in_comment = false;
    for (const char c : cmake_text) {
        if (c == '\n') {
            in_comment = false;
            text += '\n';
        } else if (c == '#') {
            in_comment = true;
            text += ' ';
        } else {
            text += in_comment ? ' ' : c;
        }
    }

    std::vector<TestTarget> targets;
    static const std::string kCall = "aeo_add_test(";
    size_t pos = 0;
    while ((pos = text.find(kCall, pos)) != std::string::npos) {
        TestTarget target;
        target.line = 1 + static_cast<int>(std::count(
                              text.begin(),
                              text.begin() + static_cast<ptrdiff_t>(pos),
                              '\n'));
        const size_t open = pos + kCall.size();
        const size_t close = text.find(')', open);
        if (close == std::string::npos) break;
        std::istringstream args(text.substr(open, close - open));
        std::string token;
        enum class Section { kName, kSources, kLibs, kLabels };
        Section section = Section::kName;
        while (args >> token) {
            if (token == "LIBS") {
                section = Section::kLibs;
            } else if (token == "LABELS") {
                section = Section::kLabels;
            } else if (section == Section::kName) {
                target.name = token;
                section = Section::kSources;
            } else if (section == Section::kSources) {
                target.sources.push_back(token);
            } else if (section == Section::kLabels) {
                // Quoted multi-labels: "thermal;robustness".
                std::string cleaned;
                for (const char c : token) {
                    if (c != '"') cleaned += c;
                }
                size_t start = 0;
                while (start <= cleaned.size()) {
                    const size_t semi = cleaned.find(';', start);
                    const std::string label = cleaned.substr(
                        start, semi == std::string::npos ? std::string::npos
                                                         : semi - start);
                    if (!label.empty()) target.labels.push_back(label);
                    if (semi == std::string::npos) break;
                    start = semi + 1;
                }
            }
        }
        targets.push_back(std::move(target));
        pos = close;
    }
    return targets;
}

/** Rule `test-registration`: every *_test.cc under tests/ must be a source of
 * an aeo_add_test() call in tests/CMakeLists.txt, and every such call must
 * carry at least one ctest LABELS entry. */
void
CheckTestRegistration(const fs::path& root,
                      const std::vector<std::string>& test_files,
                      std::vector<Finding>* findings)
{
    if (test_files.empty()) return;
    const fs::path cmake_path = root / "tests" / "CMakeLists.txt";
    std::vector<TestTarget> targets;
    std::ifstream in(cmake_path);
    if (in) {
        std::stringstream buffer;
        buffer << in.rdbuf();
        targets = ParseTestRegistrations(buffer.str());
    }

    std::set<std::string> registered;  // paths relative to tests/
    for (const TestTarget& target : targets) {
        for (const std::string& source : target.sources) {
            registered.insert(source);
        }
        if (!target.sources.empty() && target.labels.empty()) {
            findings->push_back(Finding{
                "test-registration", "tests/CMakeLists.txt", target.line,
                "aeo_add_test(" + target.name +
                    ") has no LABELS; every suite needs at least one ctest "
                    "label so CI can slice it"});
        }
    }
    for (const std::string& rel : test_files) {
        // rel is root-relative ("tests/core/foo_test.cc"); registrations
        // are tests/-relative.
        const std::string in_tests = rel.substr(std::string("tests/").size());
        if (registered.count(in_tests) == 0) {
            findings->push_back(Finding{
                "test-registration", rel, 1,
                "test file is not registered in tests/CMakeLists.txt via "
                "aeo_add_test(), so ctest never runs it"});
        }
    }
}

bool
HasSuffix(const std::string& s, const std::string& suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/** Collects root-relative paths ('/'-separated) of sources under @p subdir,
 * skipping lint-fixture trees (they seed violations on purpose). */
std::vector<std::string>
CollectSources(const fs::path& root, const std::string& subdir)
{
    std::vector<std::string> files;
    const fs::path base = root / subdir;
    if (!fs::exists(base)) return files;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext != ".h" && ext != ".cc" && ext != ".cpp") continue;
        std::string rel =
            fs::relative(entry.path(), root).generic_string();
        if (rel.find("/fixtures/") != std::string::npos) continue;
        files.push_back(std::move(rel));
    }
    std::sort(files.begin(), files.end());
    return files;
}

SourceFile
LoadSource(const fs::path& root, const std::string& rel)
{
    SourceFile file;
    file.rel_path = rel;
    std::ifstream in(root / fs::path(rel));
    std::stringstream buffer;
    buffer << in.rdbuf();
    file.stripped = internal::StripSource(buffer.str());
    std::istringstream lines(file.stripped.code);
    std::string line;
    while (std::getline(lines, line)) {
        file.lines.push_back(line);
    }
    return file;
}

}  // namespace

std::vector<Finding>
RunLint(const LintOptions& options)
{
    const fs::path root(options.root);
    std::vector<Finding> findings;

    // The monitor-catalogue rule compares src/ declarations against the
    // catalogue suite; when the suite is absent every subclass is untested.
    std::string catalogue_code;
    if (fs::exists(root / fs::path(kMonitorCataloguePath))) {
        catalogue_code =
            LoadSource(root, kMonitorCataloguePath).stripped.code;
    }

    for (const std::string& rel : CollectSources(root, "src")) {
        const SourceFile file = LoadSource(root, rel);
        CheckSuppressions(file, &findings);
        CheckLayering(file, &findings);
        CheckTimeSeam(file, &findings);
        CheckSysfsLiterals(file, &findings);
        CheckClusterLiterals(file, &findings);
        CheckUnitLiterals(file, &findings);
        CheckMonitorCatalogue(file, catalogue_code, &findings);
    }

    std::vector<std::string> test_files;
    for (const std::string& rel : CollectSources(root, "tests")) {
        const SourceFile file = LoadSource(root, rel);
        CheckSuppressions(file, &findings);
        if (HasSuffix(rel, "_test.cc")) test_files.push_back(rel);
    }
    CheckTestRegistration(root, test_files, &findings);

    for (const std::string& rel : CollectSources(root, "bench")) {
        const SourceFile file = LoadSource(root, rel);
        CheckSuppressions(file, &findings);
        CheckBenchSnapshots(root, file, &findings);
    }

    std::sort(findings.begin(), findings.end(),
              [](const Finding& a, const Finding& b) {
                  return std::tie(a.file, a.line, a.rule) <
                         std::tie(b.file, b.line, b.rule);
              });
    return findings;
}

std::string
FormatFindings(const std::vector<Finding>& findings)
{
    std::string out;
    for (const Finding& finding : findings) {
        out += finding.file + ":" + std::to_string(finding.line) + ": [" +
               finding.rule + "] " + finding.message + "\n";
    }
    return out;
}

}  // namespace aeo::lint
