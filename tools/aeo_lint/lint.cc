#include "lint.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <tuple>

#include "common/json.h"
#include "common/thread_pool.h"
#include "lexer.h"
#include "model.h"

namespace aeo::lint {

namespace fs = std::filesystem;

namespace {

bool
IsIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool
HasSuffix(const std::string& s, const std::string& suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool
IsPunct(const Token& t, const char* text)
{
    return t.kind == TokKind::kPunct && t.text == text;
}

/** One analyzed file: the semantic model plus its per-file findings (raw,
 * before suppression filtering). */
struct AnalyzedFile {
    TranslationUnit tu;
    std::vector<Finding> findings;
};

/**
 * The include-layering contract (DESIGN.md §11): each src/ directory may
 * include only from the listed directories. This is the one-way DAG
 * common → {sim,stats,lp,control} → {fault,soc} → {power,kernel,apps}
 * → device → platform → core → chaos, with core's device access further
 * restricted to the profiling-harness seam files below. The chaos layer
 * sits on top and may see everything; nothing below it may include it —
 * the product must not know its chaos harness exists.
 */
const std::map<std::string, std::set<std::string>>&
AllowedIncludes()
{
    static const std::map<std::string, std::set<std::string>> kAllowed = {
        {"common", {"common"}},
        {"sim", {"common", "sim"}},
        {"stats", {"common", "stats"}},
        {"lp", {"common", "lp"}},
        {"control", {"common", "control"}},
        {"fault", {"common", "sim", "fault"}},
        {"soc", {"common", "sim", "soc"}},
        {"power", {"common", "sim", "fault", "power"}},
        {"kernel", {"common", "sim", "soc", "fault", "kernel"}},
        {"apps", {"common", "sim", "soc", "apps"}},
        {"device",
         {"common", "sim", "stats", "soc", "fault", "power", "kernel", "apps",
          "device"}},
        {"platform",
         {"common", "sim", "stats", "soc", "fault", "power", "kernel", "apps",
          "device", "platform"}},
        {"core",
         {"common", "sim", "stats", "lp", "control", "soc", "fault", "power",
          "apps", "platform", "core"}},
        {"chaos",
         {"common", "sim", "stats", "lp", "control", "soc", "fault", "power",
          "kernel", "apps", "device", "platform", "core", "chaos"}},
    };
    return kAllowed;
}

/** src/core files allowed to include src/device and name `Device`: the
 * offline-profiling / experiment harness seam (PR 4 contract). */
bool
IsCoreDeviceSeam(const std::string& rel_path)
{
    static const std::set<std::string> kSeams = {
        "src/core/experiment.h",       "src/core/experiment.cc",
        "src/core/offline_profiler.h", "src/core/offline_profiler.cc",
        "src/core/batch_runner.h",     "src/core/batch_runner.cc",
    };
    return kSeams.count(rel_path) > 0;
}

/** Directories where the unit-literal rule is enforced (the hot-path layers
 * that have adopted the tagged unit types in common/units.h). */
bool
UnitRuleApplies(const std::string& layer)
{
    static const std::set<std::string> kLayers = {
        "common", "soc", "core", "device", "platform", "chaos"};
    return kLayers.count(layer) > 0;
}

/** Second path component of "src/<layer>/...", or "" if not under src/. */
std::string
LayerOf(const std::string& rel_path)
{
    if (rel_path.rfind("src/", 0) != 0) return "";
    const size_t start = 4;
    const size_t slash = rel_path.find('/', start);
    if (slash == std::string::npos) return "";
    return rel_path.substr(start, slash - start);
}

void
AddFinding(AnalyzedFile* file, int line, const std::string& rule,
           const std::string& message, const std::string& fix_hint)
{
    file->findings.push_back(
        Finding{rule, file->tu.rel_path, line, message, fix_hint});
}

/** Rule `suppression`: malformed control comments are findings themselves,
 * so a typo'd rule name or a missing justification cannot silently disable
 * a check. */
void
CheckSuppressions(AnalyzedFile* file)
{
    for (const int line : file->tu.lexed.malformed_allows) {
        AddFinding(file, line, "suppression",
                   "malformed aeo control comment",
                   "use `// aeo-lint: allow(<rule>) -- <justification>` (or "
                   "a justified hot-path-stop annotation)");
    }
}

/** Quoted #include paths as (line, path) pairs. */
std::vector<std::pair<int, std::string>>
QuotedIncludes(const TranslationUnit& tu)
{
    std::vector<std::pair<int, std::string>> out;
    const std::vector<Token>& toks = tu.lexed.tokens;
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!toks[i].preprocessor || !IsPunct(toks[i], "#")) continue;
        if (toks[i + 1].kind != TokKind::kIdent ||
            toks[i + 1].text != "include") {
            continue;
        }
        if (toks[i + 2].kind == TokKind::kString) {
            out.emplace_back(toks[i + 2].line, toks[i + 2].text);
        }
    }
    return out;
}

/** Rule `layering`: project-relative includes must follow the DAG, and only
 * the harness seam files in src/core may touch src/device. */
void
CheckLayering(AnalyzedFile* file)
{
    const TranslationUnit& tu = file->tu;
    const std::string layer = LayerOf(tu.rel_path);
    const auto it = AllowedIncludes().find(layer);
    if (it == AllowedIncludes().end()) return;
    const std::set<std::string>& allowed = it->second;

    for (const auto& [line, literal] : QuotedIncludes(tu)) {
        const size_t slash = literal.find('/');
        if (slash == std::string::npos) continue;
        const std::string target = literal.substr(0, slash);
        if (AllowedIncludes().count(target) == 0) continue;  // not a layer
        if (layer == "core" && target == "device") {
            if (!IsCoreDeviceSeam(tu.rel_path)) {
                AddFinding(file, line, "layering",
                           "src/core may include src/device only from the "
                           "profiling-harness seam (experiment, "
                           "offline_profiler, batch_runner)",
                           "route hardware access through aeo::platform "
                           "instead");
            }
            continue;
        }
        if (allowed.count(target) == 0) {
            AddFinding(file, line, "layering",
                       "src/" + layer + " must not include src/" + target,
                       "respect the include DAG: common -> sim/stats/lp/"
                       "control -> fault/soc -> power/kernel/apps -> device "
                       "-> platform -> core -> chaos");
        }
    }

    // The `Device` seam type may only be named by the harness seam files.
    if (layer == "core" && !IsCoreDeviceSeam(tu.rel_path)) {
        for (const Token& t : tu.lexed.tokens) {
            if (t.kind == TokKind::kIdent && t.text == "Device") {
                AddFinding(file, t.line, "layering",
                           "src/core may name `Device` only in the "
                           "profiling-harness seam files",
                           "the controller talks to hardware through "
                           "aeo::platform");
            }
        }
    }
}

/** Rule `time-seam`: the policy layers (src/core, src/control) consume time
 * only through the aeo::platform seam — Clock, TickScheduler and
 * DeadlineSupervisor (DESIGN.md §13). */
void
CheckTimeSeam(AnalyzedFile* file)
{
    const TranslationUnit& tu = file->tu;
    const std::string layer = LayerOf(tu.rel_path);
    if (layer != "core" && layer != "control") return;
    const std::vector<Token>& toks = tu.lexed.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
        const Token& t = toks[i];
        if (t.kind != TokKind::kIdent) continue;
        bool hit = t.text == "Simulator" || t.text == "PeriodicTask";
        // Only the call form `sim(...)` is raw time access.
        if (t.text == "sim" && i + 1 < toks.size() &&
            IsPunct(toks[i + 1], "(")) {
            hit = true;
        }
        if (hit) {
            AddFinding(file, t.line, "time-seam",
                       "src/" + layer +
                           " consumes time only through the aeo::platform "
                           "seam (Clock, TickScheduler, DeadlineSupervisor)",
                       "do not name Simulator/PeriodicTask or call a raw "
                       "sim() here (DESIGN.md §13)");
        }
    }
}

/** Rule `sysfs-literal`: inline "/sys..." strings belong to src/kernel and
 * src/platform; everything else must use the interned constants. */
void
CheckSysfsLiterals(AnalyzedFile* file)
{
    const TranslationUnit& tu = file->tu;
    const std::string layer = LayerOf(tu.rel_path);
    if (layer.empty() || layer == "kernel" || layer == "platform") return;
    for (const Token& t : tu.lexed.tokens) {
        if (t.kind == TokKind::kString && t.text.rfind("/sys", 0) == 0) {
            AddFinding(file, t.line, "sysfs-literal",
                       "inline sysfs path literal outside src/kernel and "
                       "src/platform",
                       "use the interned node constants or the Sysfs seam");
        }
    }
}

/** Rule `cluster-literal`: a hard-coded per-core or per-cluster index in a
 * string literal — `cpu0`, `cpu4`, `policy0` — bakes the single-cluster
 * assumption into policy code. Cluster-relative paths are composed only by
 * src/kernel and src/platform; every other layer must address clusters
 * through ClusterTopology indices. */
void
CheckClusterLiterals(AnalyzedFile* file)
{
    const TranslationUnit& tu = file->tu;
    const std::string layer = LayerOf(tu.rel_path);
    if (layer.empty() || layer == "kernel" || layer == "platform") return;
    static const std::vector<std::string> kPrefixes = {"cpu", "policy"};
    for (const Token& t : tu.lexed.tokens) {
        if (t.kind != TokKind::kString) continue;
        const std::string& literal = t.text;
        bool hit = false;
        for (const std::string& prefix : kPrefixes) {
            size_t pos = 0;
            while (!hit &&
                   (pos = literal.find(prefix, pos)) != std::string::npos) {
                const size_t end = pos + prefix.size();
                // `cpu7`/`policy4` as a path component, not `cpuinfo...` or
                // `percpu` — the prefix must start a word and carry an index.
                const bool bounded_left =
                    pos == 0 || !IsIdentChar(literal[pos - 1]);
                const bool indexed =
                    end < literal.size() &&
                    std::isdigit(static_cast<unsigned char>(literal[end])) !=
                        0;
                hit = bounded_left && indexed;
                pos = end;
            }
            if (hit) break;
        }
        if (hit) {
            AddFinding(file, t.line, "cluster-literal",
                       "hard-coded cpu<N>/policy<N> index in a string "
                       "literal outside src/kernel and src/platform",
                       "address clusters through ClusterTopology and let "
                       "the kernel/platform seams compose per-cluster "
                       "paths");
        }
    }
}

/** Rule `unit-literal`: in the adopted layers, a non-zero numeric literal
 * must not be assigned or brace-fed into a khz/mbps/mw/ms-suffixed name —
 * it has to pass through KHz()/MBps()/Milliwatts()/Millis() (or SimTime's
 * named constructors) so the scale is part of the type. Zero is exempt:
 * it is the same quantity at every scale. */
void
CheckUnitLiterals(AnalyzedFile* file)
{
    const TranslationUnit& tu = file->tu;
    if (!UnitRuleApplies(LayerOf(tu.rel_path))) return;
    static const std::vector<std::string> kSuffixes = {"khz", "mbps", "mw",
                                                       "ms"};
    const std::vector<Token>& toks = tu.lexed.tokens;
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
        const Token& t = toks[i];
        if (t.kind != TokKind::kIdent) continue;
        bool suffixed = false;
        for (const std::string& suffix : kSuffixes) {
            if (t.text == suffix ||
                (t.text.size() > suffix.size() + 1 &&
                 HasSuffix(t.text, suffix) &&
                 t.text[t.text.size() - suffix.size() - 1] == '_')) {
                suffixed = true;
                break;
            }
        }
        if (!suffixed) continue;
        const Token& op = toks[i + 1];
        if (!(IsPunct(op, "=") || IsPunct(op, "+=") || IsPunct(op, "-=") ||
              IsPunct(op, "{"))) {
            continue;
        }
        size_t j = i + 2;
        if (j < toks.size() &&
            (IsPunct(toks[j], "+") || IsPunct(toks[j], "-"))) {
            ++j;
        }
        if (j >= toks.size() || toks[j].kind != TokKind::kNumber) continue;
        std::string digits = toks[j].text;
        digits.erase(std::remove(digits.begin(), digits.end(), '\''),
                     digits.end());
        if (std::strtod(digits.c_str(), nullptr) == 0.0) continue;
        AddFinding(file, t.line, "unit-literal",
                   "raw numeric literal flows into `" + t.text + "`",
                   "wrap it in the tagged unit constructor "
                   "(KHz/MBps/Milliwatts/Millis) from common/units.h");
    }
}

/** The behavioural catalogue suite the monitor-catalogue rule checks
 * against: every runtime invariant monitor must be exercised here. */
constexpr const char kMonitorCataloguePath[] =
    "tests/chaos/invariant_monitor_test.cc";

/** Finds `class <Name> ... : public InvariantMonitor` declarations in
 * @p tu, as (name, line of the class keyword). */
std::vector<std::pair<std::string, int>>
FindMonitorSubclasses(const TranslationUnit& tu)
{
    std::vector<std::pair<std::string, int>> found;
    const std::vector<Token>& toks = tu.lexed.tokens;
    for (size_t i = 1; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::kIdent ||
            toks[i].text != "InvariantMonitor") {
            continue;
        }
        if (toks[i - 1].kind != TokKind::kIdent ||
            toks[i - 1].text != "public") {
            continue;
        }
        // Walk back to the class head; a brace or semicolon in between
        // means `public InvariantMonitor` was something else entirely.
        size_t head = std::string::npos;
        for (size_t j = i - 1; j-- > 0;) {
            if (IsPunct(toks[j], "{") || IsPunct(toks[j], "}") ||
                IsPunct(toks[j], ";")) {
                break;
            }
            if (toks[j].kind == TokKind::kIdent &&
                (toks[j].text == "class" || toks[j].text == "struct")) {
                head = j;
                break;
            }
        }
        if (head == std::string::npos || head + 1 >= toks.size()) continue;
        const Token& name = toks[head + 1];
        if (name.kind == TokKind::kIdent && name.text != "InvariantMonitor") {
            found.emplace_back(name.text, toks[head].line);
        }
    }
    return found;
}

/** Rule `monitor-catalogue`: every InvariantMonitor subclass declared under
 * src/ must appear — by identifier token, so never in a comment or string —
 * in the catalogue suite. */
void
CheckMonitorCatalogue(AnalyzedFile* file,
                      const std::set<std::string>& catalogue_idents)
{
    if (LayerOf(file->tu.rel_path).empty()) return;
    for (const auto& [name, line] : FindMonitorSubclasses(file->tu)) {
        if (catalogue_idents.count(name) > 0) continue;
        AddFinding(file, line, "monitor-catalogue",
                   "InvariantMonitor subclass `" + name +
                       "` is never exercised in " +
                       std::string(kMonitorCataloguePath),
                   "every runtime monitor needs a behavioural test in the "
                   "catalogue suite");
    }
}

/** Benches whose BENCH_*.json outputs are perf records — wall time,
 * events/sec, allocation counts — and therefore machine-dependent: there is
 * no meaningful byte-for-byte snapshot to gate them against. Everything
 * else writing a BENCH_*.json is presumed deterministic and must commit a
 * bench/snapshots/ counterpart. */
bool
IsPerfRecordBench(const std::string& rel_path)
{
    static const std::set<std::string> kAllowlist = {
        "bench/bench_batch_scaling.cc",
        "bench/bench_event_hotpath.cc",
    };
    return kAllowlist.count(rel_path) > 0;
}

/** Rule `bench-snapshot`: a bench naming a `BENCH_*.json` artifact (its
 * default snapshot path) must have the committed bench/snapshots/ copy the
 * CI determinism gate diffs against. */
void
CheckBenchSnapshots(const fs::path& root, AnalyzedFile* file)
{
    if (file->tu.rel_path.rfind("bench/", 0) != 0 ||
        IsPerfRecordBench(file->tu.rel_path)) {
        return;
    }
    for (const Token& t : file->tu.lexed.tokens) {
        if (t.kind != TokKind::kString) continue;
        const std::string& literal = t.text;
        if (literal.rfind("BENCH_", 0) != 0 || !HasSuffix(literal, ".json") ||
            literal.find('/') != std::string::npos) {
            continue;
        }
        if (!fs::exists(root / "bench" / "snapshots" / literal)) {
            AddFinding(file, t.line, "bench-snapshot",
                       "bench writes snapshot `" + literal +
                           "` but bench/snapshots/" + literal +
                           " is not committed",
                       "generate it (--fast, any --jobs) so CI's "
                       "byte-for-byte gate has a baseline, or allowlist the "
                       "bench as a perf record in aeo-lint");
        }
    }
}

/** One aeo_add_test() registration parsed out of tests/CMakeLists.txt. */
struct TestTarget {
    std::string name;
    int line = 0;
    std::vector<std::string> sources;
    std::vector<std::string> labels;
};

std::vector<TestTarget>
ParseTestRegistrations(const std::string& cmake_text)
{
    // Strip CMake comments, preserving line structure.
    std::string text;
    text.reserve(cmake_text.size());
    bool in_comment = false;
    for (const char c : cmake_text) {
        if (c == '\n') {
            in_comment = false;
            text += '\n';
        } else if (c == '#') {
            in_comment = true;
            text += ' ';
        } else {
            text += in_comment ? ' ' : c;
        }
    }

    std::vector<TestTarget> targets;
    static const std::string kCall = "aeo_add_test(";
    size_t pos = 0;
    while ((pos = text.find(kCall, pos)) != std::string::npos) {
        TestTarget target;
        target.line = 1 + static_cast<int>(std::count(
                              text.begin(),
                              text.begin() + static_cast<ptrdiff_t>(pos),
                              '\n'));
        const size_t open = pos + kCall.size();
        const size_t close = text.find(')', open);
        if (close == std::string::npos) break;
        std::istringstream args(text.substr(open, close - open));
        std::string token;
        enum class Section { kName, kSources, kLibs, kLabels };
        Section section = Section::kName;
        while (args >> token) {
            if (token == "LIBS") {
                section = Section::kLibs;
            } else if (token == "LABELS") {
                section = Section::kLabels;
            } else if (section == Section::kName) {
                target.name = token;
                section = Section::kSources;
            } else if (section == Section::kSources) {
                target.sources.push_back(token);
            } else if (section == Section::kLabels) {
                // Quoted multi-labels: "thermal;robustness".
                std::string cleaned;
                for (const char c : token) {
                    if (c != '"') cleaned += c;
                }
                size_t start = 0;
                while (start <= cleaned.size()) {
                    const size_t semi = cleaned.find(';', start);
                    const std::string label = cleaned.substr(
                        start, semi == std::string::npos ? std::string::npos
                                                         : semi - start);
                    if (!label.empty()) target.labels.push_back(label);
                    if (semi == std::string::npos) break;
                    start = semi + 1;
                }
            }
        }
        targets.push_back(std::move(target));
        pos = close;
    }
    return targets;
}

/** Rule `test-registration`: every *_test.cc under tests/ must be a source of
 * an aeo_add_test() call in tests/CMakeLists.txt, and every such call must
 * carry at least one ctest LABELS entry. */
void
CheckTestRegistration(const fs::path& root,
                      const std::vector<std::string>& test_files,
                      std::vector<Finding>* findings)
{
    if (test_files.empty()) return;
    const fs::path cmake_path = root / "tests" / "CMakeLists.txt";
    std::vector<TestTarget> targets;
    std::ifstream in(cmake_path);
    if (in) {
        std::stringstream buffer;
        buffer << in.rdbuf();
        targets = ParseTestRegistrations(buffer.str());
    }

    std::set<std::string> registered;  // paths relative to tests/
    for (const TestTarget& target : targets) {
        for (const std::string& source : target.sources) {
            registered.insert(source);
        }
        if (!target.sources.empty() && target.labels.empty()) {
            findings->push_back(Finding{
                "test-registration", "tests/CMakeLists.txt", target.line,
                "aeo_add_test(" + target.name + ") has no LABELS",
                "every suite needs at least one ctest label so CI can "
                "slice it"});
        }
    }
    for (const std::string& rel : test_files) {
        // rel is root-relative ("tests/core/foo_test.cc"); registrations
        // are tests/-relative.
        const std::string in_tests = rel.substr(std::string("tests/").size());
        if (registered.count(in_tests) == 0) {
            findings->push_back(Finding{
                "test-registration", rel, 1,
                "test file is not registered in tests/CMakeLists.txt via "
                "aeo_add_test(), so ctest never runs it",
                "add an aeo_add_test() call with at least one LABELS "
                "entry"});
        }
    }
}

// ---------------------------------------------------------------------------
// Determinism rule family (token-level part).
// ---------------------------------------------------------------------------

/** Layers under src/ where raw wall clocks are allowed: the platform layer
 * owns the Clock seam, so a future RealClock backend lives there. */
bool
IsClockSeam(const std::string& rel_path)
{
    return LayerOf(rel_path) == "platform";
}

/** Rule `determinism` (per-file part): reproducibility bans in src/ and
 * bench/ — ambient entropy and wall clocks make snapshots flaky, so all
 * randomness flows through the seeded aeo::Rng and all time through the
 * aeo::platform Clock seam (DESIGN.md §16). */
void
CheckDeterminismTokens(AnalyzedFile* file)
{
    const TranslationUnit& tu = file->tu;
    const bool in_src = tu.rel_path.rfind("src/", 0) == 0;
    const bool in_bench = tu.rel_path.rfind("bench/", 0) == 0;
    if (!in_src && !in_bench) return;
    const std::vector<Token>& toks = tu.lexed.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
        const Token& t = toks[i];
        if (t.kind != TokKind::kIdent) continue;
        if (t.text == "random_device") {
            AddFinding(file, t.line, "determinism",
                       "std::random_device draws ambient entropy",
                       "seed a deterministic aeo::Rng (common/random.h) "
                       "from the experiment's root seed");
            continue;
        }
        if ((t.text == "system_clock" || t.text == "steady_clock" ||
             t.text == "high_resolution_clock") &&
            !IsClockSeam(tu.rel_path)) {
            AddFinding(file, t.line, "determinism",
                       "raw std::chrono clock outside the aeo::platform "
                       "Clock seam",
                       "simulated components read time through "
                       "platform::Clock; benches measure wall time through "
                       "bench::MonotonicSeconds()");
            continue;
        }
        // Call form: `name(` not preceded by member access, a qualifier
        // other than std::, a declaration's return type (`Clock& clock()`)
        // or another identifier (`int time(`). `return time(0)` still
        // counts — control keywords are not excluders.
        bool call_form = i + 1 < toks.size() && IsPunct(toks[i + 1], "(");
        if (call_form && i > 0) {
            const Token& prev = toks[i - 1];
            if (IsPunct(prev, ".") || IsPunct(prev, "->") ||
                IsPunct(prev, "&") || IsPunct(prev, "*") ||
                IsPunct(prev, "&&")) {
                call_form = false;
            } else if (IsPunct(prev, "::")) {
                call_form = i >= 2 && toks[i - 2].kind == TokKind::kIdent &&
                            toks[i - 2].text == "std";
            } else if (prev.kind == TokKind::kIdent &&
                       !IsControlKeyword(prev.text)) {
                call_form = false;
            }
        }
        if (call_form && (t.text == "rand" || t.text == "srand")) {
            AddFinding(file, t.line, "determinism",
                       "libc rand()/srand() is hidden global state",
                       "use the explicitly seeded aeo::Rng instead");
            continue;
        }
        if (call_form && (t.text == "time" || t.text == "clock")) {
            AddFinding(file, t.line, "determinism",
                       "libc time()/clock() reads the wall clock",
                       "simulated time comes from platform::Clock; bench "
                       "wall time from bench::MonotonicSeconds()");
            continue;
        }
        // Pointer hashing: hash<T*> feeds address-dependent (run-to-run
        // unstable) values into whatever consumes it.
        if (t.text == "hash" && i + 1 < toks.size() &&
            IsPunct(toks[i + 1], "<")) {
            int depth = 0;
            for (size_t j = i + 1; j < toks.size() && j < i + 64; ++j) {
                if (IsPunct(toks[j], "<")) ++depth;
                if (IsPunct(toks[j], ">")) {
                    if (--depth == 0) break;
                }
                if (IsPunct(toks[j], ">>")) {
                    depth -= 2;
                    if (depth <= 0) break;
                }
                if (IsPunct(toks[j], "*")) {
                    AddFinding(file, t.line, "determinism",
                               "hashing a pointer produces run-to-run "
                               "unstable values",
                               "hash a stable id (name, index, interned "
                               "handle) instead of an address");
                    break;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Call graph (shared by the determinism sink analysis and the hot-path
// allocation analysis).
// ---------------------------------------------------------------------------

/** A function reference into the analyzed set. */
struct FnRef {
    size_t file = 0;  // index into the AnalyzedFile vector
    size_t fn = 0;    // index into that file's tu.functions
};

struct CallGraph {
    /** Unqualified name -> definitions. */
    std::map<std::string, std::vector<FnRef>> by_name;
    /** (class, name) -> definitions. */
    std::map<std::pair<std::string, std::string>, std::vector<FnRef>>
        by_qualified;
};

const FunctionDef&
Deref(const std::vector<AnalyzedFile>& files, const FnRef& ref)
{
    return files[ref.file].tu.functions[ref.fn];
}

/** True for files whose functions join the call graph: the product tree,
 * the tools and the benches — not tests (a test helper sharing a product
 * function's name must not poison product reachability). */
bool
InCallGraph(const std::string& rel_path)
{
    return rel_path.rfind("src/", 0) == 0 ||
           rel_path.rfind("tools/", 0) == 0 ||
           rel_path.rfind("bench/", 0) == 0;
}

CallGraph
BuildCallGraph(const std::vector<AnalyzedFile>& files)
{
    CallGraph graph;
    for (size_t f = 0; f < files.size(); ++f) {
        if (!InCallGraph(files[f].tu.rel_path)) continue;
        const std::vector<FunctionDef>& fns = files[f].tu.functions;
        for (size_t k = 0; k < fns.size(); ++k) {
            graph.by_name[fns[k].name].push_back(FnRef{f, k});
            if (!fns[k].class_name.empty()) {
                graph.by_qualified[{fns[k].class_name, fns[k].name}]
                    .push_back(FnRef{f, k});
            }
        }
    }
    return graph;
}

/** Resolves a call site to candidate definitions. Resolution is scoped:
 *
 *  - a qualifier (explicit `X::f` or a typed receiver) binds to X's `f`
 *    when X defines one, falling back to free functions sharing the name
 *    (namespace-qualified calls); a qualified call that resolves to
 *    neither is external — it never merges into unrelated classes;
 *  - an unqualified member call binds to the caller's own class first,
 *    then merges across all *methods* sharing the name;
 *  - a plain call binds to the caller's class first, then merges across
 *    every definition sharing the name (the documented
 *    over-approximation).
 *
 * Returns an empty list for external functions. */
std::vector<FnRef>
Resolve(const std::vector<AnalyzedFile>& files, const CallGraph& graph,
        const CallSite& call, const FunctionDef& caller)
{
    auto name_matches = [&](bool methods, bool free_fns) {
        std::vector<FnRef> out;
        const auto it = graph.by_name.find(call.name);
        if (it == graph.by_name.end()) return out;
        for (const FnRef& ref : it->second) {
            const bool is_method = !Deref(files, ref).class_name.empty();
            if ((is_method && methods) || (!is_method && free_fns)) {
                out.push_back(ref);
            }
        }
        return out;
    };
    // Constructor calls: `Milliwatts(x)` resolves to Milliwatts's ctor.
    {
        const auto it = graph.by_qualified.find({call.name, call.name});
        if (it != graph.by_qualified.end()) return it->second;
    }
    if (!call.qualifier.empty()) {
        const auto it = graph.by_qualified.find({call.qualifier, call.name});
        if (it != graph.by_qualified.end()) return it->second;
    } else if (!caller.class_name.empty()) {
        const auto it =
            graph.by_qualified.find({caller.class_name, call.name});
        if (it != graph.by_qualified.end()) return it->second;
    }
    // Fallback merge. A member call (`obj.f()`, or a typed receiver whose
    // class lacks a body for f — virtual dispatch through an interface)
    // merges across every *method* named f; a plain call merges across
    // free functions only. Neither crosses into the other shape.
    return name_matches(/*methods=*/call.member_access,
                        /*free_fns=*/!call.member_access);
}

/** BFS over the call graph from @p roots; returns fn -> root-description
 * for every reached function (including the roots themselves). Traversal
 * stops at hot-path-stop barriers. */
std::map<std::pair<size_t, size_t>, std::string>
Reachable(const std::vector<AnalyzedFile>& files, const CallGraph& graph,
          const std::vector<FnRef>& roots)
{
    std::map<std::pair<size_t, size_t>, std::string> reached;
    std::deque<FnRef> queue;
    for (const FnRef& root : roots) {
        const FunctionDef& fn = Deref(files, root);
        const std::string label = fn.class_name.empty()
                                      ? fn.name
                                      : fn.class_name + "::" + fn.name;
        if (reached.emplace(std::make_pair(root.file, root.fn), label)
                .second) {
            queue.push_back(root);
        }
    }
    while (!queue.empty()) {
        const FnRef cur = queue.front();
        queue.pop_front();
        const FunctionDef& fn = Deref(files, cur);
        const std::string& root_label =
            reached.at(std::make_pair(cur.file, cur.fn));
        for (const CallSite& call : fn.calls) {
            for (const FnRef& target : Resolve(files, graph, call, fn)) {
                const FunctionDef& callee = Deref(files, target);
                if (callee.hot_path_stop) continue;
                if (reached
                        .emplace(std::make_pair(target.file, target.fn),
                                 root_label)
                        .second) {
                    queue.push_back(target);
                }
            }
        }
    }
    return reached;
}

// ---------------------------------------------------------------------------
// Determinism rule family (sink-reachability part).
// ---------------------------------------------------------------------------

/** Serialization/snapshot sinks: functions that produce the deterministic
 * artifacts (CSV rows, JSON snapshots) CI gates byte-for-byte. */
bool
IsSerializationSink(const FunctionDef& fn)
{
    static const std::set<std::string> kNames = {
        "WriteCsv", "WriteJson", "Serialize", "WriteSnapshotFile"};
    return kNames.count(fn.name) > 0 || HasSuffix(fn.name, "ToJson");
}

/** Finds range-for statements over unordered containers inside the body of
 * @p fn, reporting at the `for` keyword's line. */
void
CheckUnorderedIteration(const std::vector<AnalyzedFile>& files,
                        const FnRef& ref, const std::string& root_label,
                        const std::set<std::string>& unordered_vars,
                        std::vector<Finding>* findings)
{
    const AnalyzedFile& file = files[ref.file];
    const FunctionDef& fn = file.tu.functions[ref.fn];
    const std::vector<Token>& toks = file.tu.lexed.tokens;
    for (size_t i = fn.body_begin; i + 1 < fn.body_end; ++i) {
        if (toks[i].kind != TokKind::kIdent || toks[i].text != "for") {
            continue;
        }
        if (!IsPunct(toks[i + 1], "(")) continue;
        // Find the matching close and the top-level `:` of a range-for.
        int depth = 0;
        size_t close = std::string::npos;
        size_t colon = std::string::npos;
        for (size_t j = i + 1; j < fn.body_end; ++j) {
            if (IsPunct(toks[j], "(")) ++depth;
            if (IsPunct(toks[j], ")")) {
                if (--depth == 0) {
                    close = j;
                    break;
                }
            }
            if (depth == 1 && IsPunct(toks[j], ":")) colon = j;
            if (depth == 1 && IsPunct(toks[j], ";")) break;  // classic for
        }
        if (close == std::string::npos || colon == std::string::npos) {
            continue;
        }
        // The range expression's last identifier names the container.
        std::string range_var;
        for (size_t j = colon + 1; j < close; ++j) {
            if (toks[j].kind == TokKind::kIdent &&
                !IsControlKeyword(toks[j].text)) {
                range_var = toks[j].text;
            }
        }
        if (range_var.empty() || unordered_vars.count(range_var) == 0) {
            continue;
        }
        findings->push_back(Finding{
            "determinism", file.tu.rel_path, toks[i].line,
            "iteration over unordered container `" + range_var +
                "` in a function reachable from serialization sink `" +
                root_label + "`",
            "unordered iteration order is run-to-run unstable; sort keys "
            "first or use an ordered container on the output path"});
    }
}

// ---------------------------------------------------------------------------
// Hot-path allocation rule family.
// ---------------------------------------------------------------------------

/** External functions (no definition in the tree) that hot paths may call:
 * allocation-free std utilities, atomics and container accessors. Growth
 * methods (push_back & co) are deliberately absent — they are judged by
 * the receiver check instead. */
bool
IsAllocFreeExternal(const std::string& name)
{
    static const std::set<std::string> kAllowlist = {
        // <algorithm>/<cmath>/<utility> value helpers.
        "min", "max", "abs", "fabs", "clamp", "floor", "ceil", "round",
        "lround", "llround", "sqrt", "pow", "exp", "exp2", "log", "log2",
        "log10", "isnan", "isinf", "isfinite", "fmod", "trunc", "hypot",
        "move", "swap", "forward", "get", "tie", "exchange", "distance",
        "lower_bound", "upper_bound", "sort", "nth_element", "fill",
        "copy", "count_if", "any_of", "all_of", "none_of", "accumulate",
        // Container/string accessors that never grow their receiver.
        "size", "empty", "data", "begin", "end", "cbegin", "cend", "rbegin",
        "rend", "front", "back", "top", "at", "count", "find", "contains",
        "c_str", "length", "capacity", "first", "second", "clear", "pop",
        "pop_back", "pop_front", "erase",
        // optional/variant/smart-pointer accessors.
        "value", "has_value", "value_or", "reset", "release", "operator",
        // Atomics.
        "load", "store", "fetch_add", "fetch_sub", "exchange_weak",
        "compare_exchange_weak", "compare_exchange_strong",
        // C library, allocation-free.
        "memcpy", "memset", "memmove", "strlen", "strcmp", "strncmp",
        "isspace", "isdigit", "isalpha", "isalnum", "tolower", "toupper",
        "va_start", "va_end", "va_copy", "vsnprintf", "snprintf",
        // <cmath>/<cstdlib> numeric parsing and trig.
        "sin", "cos", "tan", "atan2", "strtod", "strtoll", "strtoull",
        // numeric_limits constants.
        "infinity", "quiet_NaN", "lowest", "epsilon",
        // string_view construction and slicing never allocate; ambiguous
        // `substr` is dominated by string_view use in this codebase.
        "string_view", "substr",
        // AEO_ASSERT/AEO_PANIC only format on their failure paths, which
        // abort.
        "AEO_ASSERT", "AEO_PANIC",
        // Strong unit value types (common/units.h, sim/time.h): each wraps
        // a double (or integer tick count) with inherited constructors the
        // indexer cannot see; constructing one never allocates.
        "Gigahertz", "Kilohertz", "MegabytesPerSecond", "Volts",
        "Milliwatts", "Joules", "Gips", "Seconds", "Milliseconds",
        "SimTime",
        // EventCallback's bound-function template parameter invocation.
        "Fn", "fn",
    };
    return kAllowlist.count(name) > 0;
}

/** Methods that may grow a std container or string. */
bool
IsGrowthMethod(const std::string& name)
{
    static const std::set<std::string> kGrowth = {
        "push_back",     "emplace_back",  "push_front", "emplace_front",
        "append",        "resize",        "reserve",    "insert",
        "emplace",       "emplace_hint",  "assign",     "push",
    };
    return kGrowth.count(name) > 0;
}

/** Scans one reachable function for allocation constructs. */
void
CheckHotFunction(const std::vector<AnalyzedFile>& files,
                 const CallGraph& graph, const FnRef& ref,
                 const std::string& root_label,
                 const std::set<std::string>& growable_vars,
                 std::vector<Finding>* findings)
{
    const AnalyzedFile& file = files[ref.file];
    const FunctionDef& fn = file.tu.functions[ref.fn];
    const std::vector<Token>& toks = file.tu.lexed.tokens;
    const std::string where =
        (fn.class_name.empty() ? fn.name
                               : fn.class_name + "::" + fn.name) +
        " (reachable from hot-path entry `" + root_label + "`)";

    for (size_t i = fn.body_begin; i < fn.body_end; ++i) {
        const Token& t = toks[i];
        if (t.kind != TokKind::kIdent) continue;
        if (t.text == "new") {
            // Placement new constructs in existing storage; `operator new`
            // declarations are not expressions.
            const bool placement =
                i + 1 < fn.body_end && IsPunct(toks[i + 1], "(");
            const bool operator_decl =
                i > 0 && toks[i - 1].kind == TokKind::kIdent &&
                toks[i - 1].text == "operator";
            if (!placement && !operator_decl) {
                findings->push_back(Finding{
                    "hot-path-alloc", file.tu.rel_path, t.line,
                    "`new` in " + where,
                    "hot paths must not heap-allocate; use inline/slab "
                    "storage (StaticVector, EventQueue slab, "
                    "EventCallback)"});
            }
            continue;
        }
        if ((t.text == "make_unique" || t.text == "make_shared") &&
            i + 1 < fn.body_end &&
            (IsPunct(toks[i + 1], "(") || IsPunct(toks[i + 1], "<"))) {
            findings->push_back(Finding{
                "hot-path-alloc", file.tu.rel_path, t.line,
                "`std::" + t.text + "` in " + where,
                "hot paths must not heap-allocate; hoist the allocation "
                "out of the per-cycle path"});
            continue;
        }
        if (t.text == "function" && i >= 2 && IsPunct(toks[i - 1], "::") &&
            toks[i - 2].kind == TokKind::kIdent &&
            toks[i - 2].text == "std") {
            findings->push_back(Finding{
                "hot-path-alloc", file.tu.rel_path, t.line,
                "std::function in " + where,
                "std::function may allocate for captures; use the "
                "fixed-capacity EventCallback or a template parameter"});
            continue;
        }
        // Growth calls on known std containers: `recv.push_back(...)`.
        if (i + 1 < fn.body_end && IsPunct(toks[i + 1], "(") && i >= 2 &&
            (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->")) &&
            IsGrowthMethod(t.text) &&
            toks[i - 2].kind == TokKind::kIdent &&
            growable_vars.count(toks[i - 2].text) > 0) {
            findings->push_back(Finding{
                "hot-path-alloc", file.tu.rel_path, t.line,
                "`" + toks[i - 2].text + "." + t.text + "()` may grow a "
                "std container in " + where,
                "growth can reallocate; reserve out of the hot path or use "
                "fixed-capacity storage"});
            continue;
        }
        // String growth via `+=` on a receiver declared growable in this
        // file (same-file scope keeps common names from cross-matching).
        if (i + 1 < fn.body_end && IsPunct(toks[i + 1], "+=") &&
            file.tu.growable_vars.count(t.text) > 0) {
            findings->push_back(Finding{
                "hot-path-alloc", file.tu.rel_path, t.line,
                "`" + t.text + " += ...` may grow a std container in " +
                    where,
                "growth can reallocate; build output outside the hot path"});
            continue;
        }
    }

    // External calls: a call that resolves to nothing in the tree must be
    // on the alloc-free allowlist.
    for (const CallSite& call : fn.calls) {
        if (!Resolve(files, graph, call, fn).empty()) continue;
        if (IsAllocFreeExternal(call.name)) continue;
        if (call.name == "make_unique" || call.name == "make_shared") {
            continue;  // already reported above
        }
        // Growth methods are judged by the receiver check above, local
        // lambdas are scanned inline where they are defined, and invoking
        // a stored member callable (`hook_()`) does not allocate.
        if (IsGrowthMethod(call.name) ||
            file.tu.local_callables.count(call.name) > 0 ||
            (!call.name.empty() && call.name.back() == '_')) {
            continue;
        }
        findings->push_back(Finding{
            "hot-path-alloc", file.tu.rel_path, call.line,
            "call to unanalyzed external function `" + call.name + "` in " +
                where,
            "add it to the aeo-lint alloc-free allowlist if it cannot "
            "allocate, or restructure the hot path"});
    }
}

// ---------------------------------------------------------------------------
// Suppression filtering.
// ---------------------------------------------------------------------------

/** Applies `allow(<rule>)` suppressions: a finding is dropped when a
 * matching allow sits on its line or up to two lines above. Returns the
 * surviving findings and marks used allows in @p used (parallel to each
 * file's allows vector). */
std::vector<Finding>
FilterSuppressed(const std::vector<AnalyzedFile>& files,
                 const std::map<std::string, size_t>& file_index,
                 std::vector<Finding> findings,
                 std::vector<std::vector<bool>>* used)
{
    std::vector<Finding> kept;
    kept.reserve(findings.size());
    for (Finding& finding : findings) {
        // Malformed-control-comment findings are never suppressible: a
        // broken comment must not silence itself.
        bool suppressed = false;
        if (finding.rule != "suppression") {
            const auto it = file_index.find(finding.file);
            if (it != file_index.end()) {
                const std::vector<AllowComment>& allows =
                    files[it->second].tu.lexed.allows;
                for (size_t a = 0; a < allows.size(); ++a) {
                    if (allows[a].rule != finding.rule) continue;
                    if (allows[a].line <= finding.line &&
                        finding.line - allows[a].line <= 2) {
                        suppressed = true;
                        (*used)[it->second][a] = true;
                        break;
                    }
                }
            }
        }
        if (!suppressed) kept.push_back(std::move(finding));
    }
    return kept;
}

/** Collects root-relative paths ('/'-separated) of sources under @p subdir,
 * skipping lint-fixture trees (they seed violations on purpose). */
std::vector<std::string>
CollectSources(const fs::path& root, const std::string& subdir)
{
    std::vector<std::string> files;
    const fs::path base = root / subdir;
    if (!fs::exists(base)) return files;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext != ".h" && ext != ".cc" && ext != ".cpp") continue;
        std::string rel =
            fs::relative(entry.path(), root).generic_string();
        if (rel.find("/fixtures/") != std::string::npos) continue;
        files.push_back(std::move(rel));
    }
    std::sort(files.begin(), files.end());
    return files;
}

AnalyzedFile
AnalyzeFile(const fs::path& root, const std::string& rel)
{
    AnalyzedFile file;
    std::ifstream in(root / fs::path(rel));
    std::stringstream buffer;
    buffer << in.rdbuf();
    file.tu = BuildTranslationUnit(rel, Lex(buffer.str()));

    CheckSuppressions(&file);
    CheckLayering(&file);
    CheckTimeSeam(&file);
    CheckSysfsLiterals(&file);
    CheckClusterLiterals(&file);
    CheckUnitLiterals(&file);
    CheckDeterminismTokens(&file);
    CheckBenchSnapshots(root, &file);
    return file;
}

}  // namespace

std::vector<Finding>
RunLint(const LintOptions& options, LintStats* stats)
{
    const fs::path root(options.root);

    std::vector<std::string> paths;
    for (const char* subdir : {"src", "tests", "bench", "tools"}) {
        for (std::string& rel : CollectSources(root, subdir)) {
            paths.push_back(std::move(rel));
        }
    }

    // Stage 1+2 and the per-file rules are embarrassingly parallel; the
    // PR-3 ThreadPool fans them out. Results land in path order, so the
    // output is deterministic at any worker count.
    std::vector<AnalyzedFile> files(paths.size());
    size_t jobs = options.jobs > 0
                      ? static_cast<size_t>(options.jobs)
                      : std::max<size_t>(1, std::thread::hardware_concurrency());
    jobs = std::min(jobs, std::max<size_t>(1, paths.size()));
    if (jobs <= 1) {
        for (size_t i = 0; i < paths.size(); ++i) {
            files[i] = AnalyzeFile(root, paths[i]);
        }
    } else {
        ThreadPool pool(jobs);
        std::vector<std::future<AnalyzedFile>> futures;
        futures.reserve(paths.size());
        for (size_t i = 0; i < paths.size(); ++i) {
            futures.push_back(pool.Submit(
                [&root, &paths, i] { return AnalyzeFile(root, paths[i]); }));
        }
        for (size_t i = 0; i < paths.size(); ++i) {
            files[i] = futures[i].get();
        }
    }

    std::map<std::string, size_t> file_index;
    for (size_t i = 0; i < files.size(); ++i) {
        file_index[files[i].tu.rel_path] = i;
    }

    std::vector<Finding> findings;
    for (AnalyzedFile& file : files) {
        for (Finding& finding : file.findings) {
            findings.push_back(std::move(finding));
        }
        file.findings.clear();
    }

    // Monitor catalogue: identifier tokens of the catalogue suite.
    std::set<std::string> catalogue_idents;
    if (const auto it = file_index.find(kMonitorCataloguePath);
        it != file_index.end()) {
        for (const Token& t : files[it->second].tu.lexed.tokens) {
            if (t.kind == TokKind::kIdent) catalogue_idents.insert(t.text);
        }
    }
    for (AnalyzedFile& file : files) {
        CheckMonitorCatalogue(&file, catalogue_idents);
        for (Finding& finding : file.findings) {
            findings.push_back(std::move(finding));
        }
        file.findings.clear();
    }

    // Test registration.
    std::vector<std::string> test_files;
    for (const AnalyzedFile& file : files) {
        if (file.tu.rel_path.rfind("tests/", 0) == 0 &&
            HasSuffix(file.tu.rel_path, "_test.cc")) {
            test_files.push_back(file.tu.rel_path);
        }
    }
    CheckTestRegistration(root, test_files, &findings);

    // Global semantic passes over the call graph.
    const CallGraph graph = BuildCallGraph(files);

    // Determinism: unordered iteration reachable from serialization sinks.
    std::set<std::string> unordered_vars;
    for (const AnalyzedFile& file : files) {
        if (!InCallGraph(file.tu.rel_path)) continue;
        unordered_vars.insert(file.tu.unordered_vars.begin(),
                              file.tu.unordered_vars.end());
    }
    std::vector<FnRef> sink_roots;
    for (size_t f = 0; f < files.size(); ++f) {
        if (!InCallGraph(files[f].tu.rel_path)) continue;
        for (size_t k = 0; k < files[f].tu.functions.size(); ++k) {
            if (IsSerializationSink(files[f].tu.functions[k])) {
                sink_roots.push_back(FnRef{f, k});
            }
        }
    }
    for (const auto& [key, root_label] : Reachable(files, graph, sink_roots)) {
        CheckUnorderedIteration(files, FnRef{key.first, key.second},
                                root_label, unordered_vars, &findings);
    }

    // Hot-path allocation analysis. Annotations are honored under src/
    // only: the product's per-cycle entry points, not tests or harnesses.
    std::set<std::string> growable_vars;
    for (const AnalyzedFile& file : files) {
        if (!InCallGraph(file.tu.rel_path)) continue;
        growable_vars.insert(file.tu.growable_vars.begin(),
                             file.tu.growable_vars.end());
    }
    std::vector<FnRef> hot_roots;
    for (size_t f = 0; f < files.size(); ++f) {
        const AnalyzedFile& file = files[f];
        if (LayerOf(file.tu.rel_path).empty()) continue;
        for (size_t k = 0; k < file.tu.functions.size(); ++k) {
            if (file.tu.functions[k].hot_path) {
                hot_roots.push_back(FnRef{f, k});
            }
        }
        for (const int line : file.tu.dangling_hot_annotations) {
            findings.push_back(Finding{
                "hot-path-alloc", file.tu.rel_path, line,
                "hot-path annotation attaches to no function definition",
                "place the annotation directly above the function it "
                "protects (within six lines)"});
        }
    }
    for (const auto& [key, root_label] : Reachable(files, graph, hot_roots)) {
        CheckHotFunction(files, graph, FnRef{key.first, key.second},
                         root_label, growable_vars, &findings);
    }

    // Suppression filtering, then stale-suppression over unused allows.
    std::vector<std::vector<bool>> used(files.size());
    for (size_t i = 0; i < files.size(); ++i) {
        used[i].assign(files[i].tu.lexed.allows.size(), false);
    }
    findings =
        FilterSuppressed(files, file_index, std::move(findings), &used);
    std::vector<Finding> stale;
    for (size_t i = 0; i < files.size(); ++i) {
        const std::vector<AllowComment>& allows = files[i].tu.lexed.allows;
        for (size_t a = 0; a < allows.size(); ++a) {
            if (used[i][a]) continue;
            stale.push_back(Finding{
                "stale-suppression", files[i].tu.rel_path, allows[a].line,
                "allow(" + allows[a].rule +
                    ") suppresses nothing: the rule no longer fires within "
                    "its three-line window",
                "delete the stale allow so it cannot rot into a blanket "
                "permission"});
        }
    }
    // Stale findings are themselves suppressible (allow(stale-suppression)
    // for the rare deliberate case).
    stale = FilterSuppressed(files, file_index, std::move(stale), &used);
    for (Finding& finding : stale) {
        findings.push_back(std::move(finding));
    }

    std::sort(findings.begin(), findings.end(),
              [](const Finding& a, const Finding& b) {
                  return std::tie(a.file, a.line, a.rule, a.message) <
                         std::tie(b.file, b.line, b.rule, b.message);
              });
    findings.erase(std::unique(findings.begin(), findings.end(),
                               [](const Finding& a, const Finding& b) {
                                   return a.file == b.file &&
                                          a.line == b.line &&
                                          a.rule == b.rule &&
                                          a.message == b.message;
                               }),
                   findings.end());

    if (stats != nullptr) {
        stats->files_analyzed = files.size();
        stats->functions_indexed = 0;
        for (const AnalyzedFile& file : files) {
            stats->functions_indexed += file.tu.functions.size();
        }
        stats->findings = findings.size();
    }
    return findings;
}

std::string
FormatFindings(const std::vector<Finding>& findings)
{
    std::string out;
    for (const Finding& finding : findings) {
        out += finding.file + ":" + std::to_string(finding.line) + ": [" +
               finding.rule + "] " + finding.message;
        if (!finding.fix_hint.empty()) {
            out += "; " + finding.fix_hint;
        }
        out += "\n";
    }
    return out;
}

std::string
FormatFindingsJson(const std::vector<Finding>& findings)
{
    JsonValue doc = JsonValue::MakeObject();
    doc.Set("schema", 1);
    doc.Set("tool", "aeo-lint");
    JsonValue list = JsonValue::MakeArray();
    for (const Finding& finding : findings) {
        JsonValue f = JsonValue::MakeObject();
        f.Set("rule", finding.rule);
        f.Set("file", finding.file);
        f.Set("line", finding.line);
        f.Set("message", finding.message);
        f.Set("fix_hint", finding.fix_hint);
        list.Append(std::move(f));
    }
    doc.Set("findings", std::move(list));
    return doc.Dump(2) + "\n";
}

std::string
FormatGitHubAnnotations(const std::vector<Finding>& findings)
{
    // https://docs.github.com/actions: workflow commands. Message text must
    // keep to one line; %, \r, \n are escaped per the command protocol.
    auto escape = [](const std::string& text) {
        std::string out;
        for (const char c : text) {
            if (c == '%') {
                out += "%25";
            } else if (c == '\r') {
                out += "%0D";
            } else if (c == '\n') {
                out += "%0A";
            } else {
                out += c;
            }
        }
        return out;
    };
    std::string out;
    for (const Finding& finding : findings) {
        std::string message = finding.message;
        if (!finding.fix_hint.empty()) {
            message += "; " + finding.fix_hint;
        }
        out += "::error file=" + escape(finding.file) +
               ",line=" + std::to_string(finding.line) +
               ",title=aeo-lint " + escape(finding.rule) +
               "::" + escape(message) + "\n";
    }
    return out;
}

}  // namespace aeo::lint
