/**
 * @file
 * Stage 1 of the aeo-lint analyzer (DESIGN.md §16): a real C++ lexer.
 *
 * The old engine matched regex-ish patterns against a comment-stripped line
 * view; every rule had to re-solve "is this inside a string?" on its own.
 * The lexer solves it once: it produces a flat token stream where every
 * token carries its 1-based source line, string/char literal contents are
 * separate token kinds (so identifier scans can never match inside them),
 * raw strings (`R"delim(...)delim"`, with encoding prefixes) are handled,
 * line continuations (backslash-newline splices) are folded while line
 * numbers keep tracking the original text, and tokens on preprocessor
 * directive lines are flagged so `#include` paths are distinguishable from
 * expression strings.
 *
 * Control comments are parsed here as well, because only the lexer knows
 * where comments are:
 *
 *  - suppressions: a comment whose body starts with the `aeo-lint:` tag
 *    and carries a justified allow — rule name in parens, then `--` and a
 *    non-empty reason. A comment that starts with the tag but does not
 *    parse is recorded as malformed (the `suppression` rule reports it).
 *  - annotations: a comment whose body starts with the `aeo:` tag, e.g.
 *    the hot-path marker that declares the next function definition a
 *    per-cycle entry point for the allocation rule family. Tags are only
 *    honored at the start of the comment body, so prose like this header
 *    mentioning a tag mid-sentence never parses as a control comment.
 */
#ifndef AEO_TOOLS_AEO_LINT_LEXER_H_
#define AEO_TOOLS_AEO_LINT_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace aeo::lint {

enum class TokKind : uint8_t {
    /** Identifier or keyword (keywords are classified by the consumer). */
    kIdent,
    /** Numeric literal; `text` is the spelling (digit separators kept). */
    kNumber,
    /** String literal; `text` is the contents without quotes/delimiters. */
    kString,
    /** Character literal; `text` is the contents without quotes. */
    kChar,
    /** Punctuation; multi-character operators (`::`, `->`, `==`, `+=`,
     * `<<`, ...) are single tokens. */
    kPunct,
};

/** One lexed token. */
struct Token {
    TokKind kind;
    std::string text;
    /** 1-based line of the token's first character in the original text. */
    int line = 0;
    /** True when the token sits on a preprocessor directive (including its
     * spliced continuation lines). */
    bool preprocessor = false;
};

/** A well-formed `allow(<rule>) -- <why>` suppression comment. */
struct AllowComment {
    int line = 0;
    std::string rule;
};

/** The token stream plus the control comments extracted along the way. */
struct LexedSource {
    std::vector<Token> tokens;
    /** Justified suppressions, in source order. */
    std::vector<AllowComment> allows;
    /** Lines of comments that start with the suppression tag but do not
     * parse (missing rule or justification). */
    std::vector<int> malformed_allows;
    /** Lines of hot-path annotation comments (the `aeo:` tag followed by
     * the hot-path directive). The semantic model attaches each to the
     * next function definition. */
    std::vector<int> hot_path_annotations;
    /** Lines of justified hot-path-stop annotations: the next function is
     * a reachability barrier the allocation analysis neither enters nor
     * traverses (test doubles, cold branches). Justification mandatory. */
    std::vector<int> hot_path_stops;
};

/** Lexes @p text. Never fails: unterminated constructs are closed at EOF. */
LexedSource Lex(const std::string& text);

/** True for C++ keywords that can precede `(` without being a call or a
 * function name (`if`, `for`, `while`, `switch`, `sizeof`, ...). */
bool IsControlKeyword(const std::string& ident);

}  // namespace aeo::lint

#endif  // AEO_TOOLS_AEO_LINT_LEXER_H_
