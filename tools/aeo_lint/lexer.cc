#include "lexer.h"

#include <cctype>
#include <set>

namespace aeo::lint {

namespace {

bool
IsIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool
IsIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool
IsDigit(char c)
{
    return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

/** Encoding prefixes that may precede a string or character literal. */
bool
IsLiteralPrefix(const std::string& ident)
{
    return ident == "u8" || ident == "u" || ident == "U" || ident == "L";
}

/** Multi-character punctuation, longest-match-first per leading char. The
 * set is the operators the rules care to see whole: assignment/comparison
 * (`==` vs `=`, `+=`, `-=`), scope/member (`::`, `->`), and the shift/
 * logical pairs so they cannot be half-matched. */
const char* const kPuncts[] = {
    "<<=", ">>=", "...", "::", "->", "==", "!=", "<=", ">=", "+=", "-=",
    "*=", "/=",  "%=",  "&=", "|=", "^=", "&&", "||", "<<", ">>", "++",
    "--",
};

/** The suppression tag and the annotation tag. Tags are honored only at
 * the start of a comment body so prose references never parse. */
constexpr const char kAllowTag[] = "aeo-lint:";
constexpr const char kAnnotationTag[] = "aeo:";

/** Parses one comment body (text between the comment markers). */
void
ParseControlComment(const std::string& comment, int line, LexedSource* out)
{
    size_t start = 0;
    while (start < comment.size() &&
           (std::isspace(static_cast<unsigned char>(comment[start])) != 0 ||
            comment[start] == '*')) {
        ++start;
    }
    if (comment.compare(start, sizeof(kAllowTag) - 1, kAllowTag) == 0) {
        const size_t tag_end = start + sizeof(kAllowTag) - 1;
        size_t pos = comment.find("allow(", tag_end);
        if (pos == std::string::npos) {
            out->malformed_allows.push_back(line);
            return;
        }
        pos += 6;
        const size_t close = comment.find(')', pos);
        if (close == std::string::npos) {
            out->malformed_allows.push_back(line);
            return;
        }
        const std::string rule = comment.substr(pos, close - pos);
        // The justification separator is mandatory and must carry text.
        const size_t dashes = comment.find("--", close);
        bool justified = false;
        if (dashes != std::string::npos) {
            for (size_t i = dashes + 2; i < comment.size(); ++i) {
                if (std::isspace(static_cast<unsigned char>(comment[i])) ==
                    0) {
                    justified = true;
                    break;
                }
            }
        }
        if (rule.empty() || !justified) {
            out->malformed_allows.push_back(line);
            return;
        }
        out->allows.push_back(AllowComment{line, rule});
        return;
    }
    if (comment.compare(start, sizeof(kAnnotationTag) - 1, kAnnotationTag) ==
        0) {
        size_t pos = start + sizeof(kAnnotationTag) - 1;
        while (pos < comment.size() &&
               std::isspace(static_cast<unsigned char>(comment[pos])) != 0) {
            ++pos;
        }
        size_t word_end = pos;
        while (word_end < comment.size() &&
               (std::isalpha(static_cast<unsigned char>(comment[word_end])) !=
                    0 ||
                comment[word_end] == '-')) {
            ++word_end;
        }
        const std::string directive = comment.substr(pos, word_end - pos);
        if (directive == "hot-path") {
            out->hot_path_annotations.push_back(line);
        } else if (directive == "hot-path-stop") {
            // The escape hatch cuts the allocation analysis short, so it
            // must carry a justification like a suppression does.
            const size_t dashes = comment.find("--", word_end);
            bool justified = false;
            if (dashes != std::string::npos) {
                for (size_t i = dashes + 2; i < comment.size(); ++i) {
                    if (std::isspace(
                            static_cast<unsigned char>(comment[i])) == 0) {
                        justified = true;
                        break;
                    }
                }
            }
            if (justified) {
                out->hot_path_stops.push_back(line);
            } else {
                out->malformed_allows.push_back(line);
            }
        }
    }
}

/**
 * Cursor over the raw text that folds backslash-newline splices (translation
 * phase 2) transparently — except inside raw string literals, which revert
 * splices per the standard and are scanned verbatim by the caller.
 */
class Cursor {
  public:
    explicit Cursor(const std::string& text) : text_(text) { SkipSplices(); }

    bool AtEnd() const { return i_ >= text_.size(); }
    char Cur() const { return i_ < text_.size() ? text_[i_] : '\0'; }
    int line() const { return line_; }
    size_t index() const { return i_; }

    /** The character after Cur(), looking through any splice. */
    char
    Next() const
    {
        size_t j = i_ + 1;
        int ignored = 0;
        SkipSplicesAt(&j, &ignored);
        return j < text_.size() ? text_[j] : '\0';
    }

    /** Advances one significant character (plus any following splices). */
    void
    Advance()
    {
        if (i_ >= text_.size()) return;
        if (text_[i_] == '\n') ++line_;
        ++i_;
        SkipSplices();
    }

    /** Advances one raw character — no splice folding (raw strings). */
    void
    AdvanceRaw()
    {
        if (i_ >= text_.size()) return;
        if (text_[i_] == '\n') ++line_;
        ++i_;
    }

    /** Re-enables splice folding after a raw scan. */
    void ResyncSplices() { SkipSplices(); }

  private:
    void SkipSplices() { SkipSplicesAt(&i_, &line_); }

    void
    SkipSplicesAt(size_t* i, int* line) const
    {
        while (*i + 1 < text_.size() && text_[*i] == '\\') {
            if (text_[*i + 1] == '\n') {
                *i += 2;
                ++*line;
            } else if (text_[*i + 1] == '\r' && *i + 2 < text_.size() &&
                       text_[*i + 2] == '\n') {
                *i += 3;
                ++*line;
            } else {
                break;
            }
        }
    }

    const std::string& text_;
    size_t i_ = 0;
    int line_ = 1;
};

}  // namespace

bool
IsControlKeyword(const std::string& ident)
{
    static const std::set<std::string> kKeywords = {
        "if",       "for",           "while",    "switch",    "catch",
        "return",   "sizeof",        "alignof",  "alignas",   "decltype",
        "noexcept", "static_assert", "typeid",   "throw",     "do",
        "else",     "case",          "default",  "goto",      "new",
        "delete",   "co_await",      "co_yield", "co_return", "constexpr",
        "consteval", "constinit",    "requires", "assert"};
    return kKeywords.count(ident) > 0;
}

LexedSource
Lex(const std::string& text)
{
    LexedSource out;
    Cursor cur(text);
    bool in_preprocessor = false;
    bool line_has_token = false;  // any token yet on the current line

    auto push = [&](TokKind kind, std::string tok_text, int line) {
        out.tokens.push_back(
            Token{kind, std::move(tok_text), line, in_preprocessor});
        line_has_token = true;
    };

    while (!cur.AtEnd()) {
        const char c = cur.Cur();
        if (c == '\n') {
            in_preprocessor = false;
            line_has_token = false;
            cur.Advance();
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c)) != 0) {
            cur.Advance();
            continue;
        }
        if (c == '/' && cur.Next() == '/') {
            const int start_line = cur.line();
            cur.Advance();
            cur.Advance();
            std::string body;
            while (!cur.AtEnd() && cur.Cur() != '\n') {
                body += cur.Cur();
                cur.Advance();  // splices extend the comment, per phase 2
            }
            ParseControlComment(body, start_line, &out);
            continue;
        }
        if (c == '/' && cur.Next() == '*') {
            const int start_line = cur.line();
            cur.Advance();
            cur.Advance();
            std::string body;
            while (!cur.AtEnd() &&
                   !(cur.Cur() == '*' && cur.Next() == '/')) {
                body += cur.Cur();
                cur.Advance();
            }
            cur.Advance();
            cur.Advance();
            ParseControlComment(body, start_line, &out);
            continue;
        }
        if (c == '#' && !line_has_token) {
            in_preprocessor = true;
            push(TokKind::kPunct, "#", cur.line());
            cur.Advance();
            continue;
        }
        if (IsIdentStart(c)) {
            const int start_line = cur.line();
            std::string ident;
            while (!cur.AtEnd() && IsIdentChar(cur.Cur())) {
                ident += cur.Cur();
                cur.Advance();
            }
            // String/char literal prefixes and raw strings: `R"`, `u8R"`,
            // `L"`, `u'`...
            const bool raw = !ident.empty() && ident.back() == 'R' &&
                             (ident == "R" ||
                              IsLiteralPrefix(
                                  ident.substr(0, ident.size() - 1)));
            if (raw && cur.Cur() == '"') {
                cur.AdvanceRaw();  // opening quote; no splices from here on
                std::string delim;
                while (!cur.AtEnd() && cur.Cur() != '(' &&
                       cur.Cur() != '\n') {
                    delim += cur.Cur();
                    cur.AdvanceRaw();
                }
                cur.AdvanceRaw();  // '('
                const std::string closer = ")" + delim + "\"";
                std::string contents;
                while (!cur.AtEnd()) {
                    if (cur.Cur() == ')' &&
                        text.compare(cur.index(), closer.size(), closer) ==
                            0) {
                        for (size_t k = 0; k < closer.size(); ++k) {
                            cur.AdvanceRaw();
                        }
                        break;
                    }
                    contents += cur.Cur();
                    cur.AdvanceRaw();
                }
                cur.ResyncSplices();
                push(TokKind::kString, std::move(contents), start_line);
                continue;
            }
            if (IsLiteralPrefix(ident) &&
                (cur.Cur() == '"' || cur.Cur() == '\'')) {
                // Fall through to the quoted-literal scan below by not
                // emitting the prefix as an identifier.
            } else {
                push(TokKind::kIdent, std::move(ident), start_line);
                continue;
            }
        }
        if (cur.Cur() == '"' || cur.Cur() == '\'') {
            const char quote = cur.Cur();
            const int start_line = cur.line();
            cur.Advance();
            std::string contents;
            while (!cur.AtEnd() && cur.Cur() != quote) {
                if (cur.Cur() == '\\') {
                    contents += cur.Cur();
                    cur.Advance();
                    if (cur.AtEnd()) break;
                }
                contents += cur.Cur();
                cur.Advance();
            }
            cur.Advance();  // closing quote
            push(quote == '"' ? TokKind::kString : TokKind::kChar,
                 std::move(contents), start_line);
            continue;
        }
        if (IsDigit(c) || (c == '.' && IsDigit(cur.Next()))) {
            const int start_line = cur.line();
            std::string num;
            while (!cur.AtEnd()) {
                const char d = cur.Cur();
                if (IsIdentChar(d) || d == '.' || d == '\'') {
                    num += d;
                    cur.Advance();
                    // Exponent signs: 1e+3, 0x1p-4.
                    if ((d == 'e' || d == 'E' || d == 'p' || d == 'P') &&
                        num.size() > 1 &&
                        (cur.Cur() == '+' || cur.Cur() == '-')) {
                        num += cur.Cur();
                        cur.Advance();
                    }
                } else {
                    break;
                }
            }
            push(TokKind::kNumber, std::move(num), start_line);
            continue;
        }
        // Punctuation: longest multi-char match, else a single char.
        {
            const int start_line = cur.line();
            std::string punct(1, cur.Cur());
            for (const char* multi : kPuncts) {
                const size_t len = std::char_traits<char>::length(multi);
                bool match = true;
                // Peek through splices character by character.
                Cursor probe = cur;
                for (size_t k = 0; k < len && match; ++k) {
                    if (probe.AtEnd() || probe.Cur() != multi[k]) {
                        match = false;
                    } else {
                        probe.Advance();
                    }
                }
                if (match) {
                    punct = multi;
                    break;
                }
            }
            for (size_t k = 0; k < punct.size(); ++k) {
                cur.Advance();
            }
            push(TokKind::kPunct, std::move(punct), start_line);
            continue;
        }
    }
    return out;
}

}  // namespace aeo::lint
