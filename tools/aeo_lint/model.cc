#include "model.h"

#include <algorithm>
#include <cctype>
#include <map>

namespace aeo::lint {

namespace {

bool
IsPunct(const Token& t, const char* text)
{
    return t.kind == TokKind::kPunct && t.text == text;
}

bool
IsIdent(const Token& t, const char* text)
{
    return t.kind == TokKind::kIdent && t.text == text;
}

/** Built-in types: `double(x)` is a cast, not a call worth indexing. */
bool
IsBuiltinType(const std::string& ident)
{
    static const std::set<std::string> kTypes = {
        "int",      "double",   "float",    "char",     "bool",
        "long",     "short",    "unsigned", "signed",   "void",
        "auto",     "size_t",   "ssize_t",  "ptrdiff_t","wchar_t",
        "int8_t",   "int16_t",  "int32_t",  "int64_t",  "uint8_t",
        "uint16_t", "uint32_t", "uint64_t", "uintptr_t","intptr_t"};
    return kTypes.count(ident) > 0;
}

/** Growth-capable standard containers whose declared variable names the
 * receiver checks key on. */
bool
IsContainerName(const std::string& ident, bool* unordered)
{
    static const std::set<std::string> kGrowable = {
        "vector", "string", "basic_string", "deque", "list",
        "map",    "set",    "multimap",     "multiset"};
    static const std::set<std::string> kUnordered = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    if (kUnordered.count(ident) > 0) {
        *unordered = true;
        return true;
    }
    *unordered = false;
    return kGrowable.count(ident) > 0;
}

/** Skips a balanced token group starting at @p i (which must hold @p open);
 * returns the index just past the matching close, or @p n on imbalance. */
size_t
SkipBalanced(const std::vector<Token>& toks, size_t i, const char* open,
             const char* close)
{
    int depth = 0;
    const size_t n = toks.size();
    for (; i < n; ++i) {
        if (IsPunct(toks[i], open)) {
            ++depth;
        } else if (IsPunct(toks[i], close)) {
            if (--depth == 0) return i + 1;
        }
    }
    return n;
}

/** Skips a balanced template argument list starting at the `<` at @p i;
 * `>>` closes two levels. Returns the index past the closing token, or
 * @p i + 1 when the angle never balances (a less-than expression). */
size_t
SkipAngles(const std::vector<Token>& toks, size_t i)
{
    int depth = 0;
    const size_t n = toks.size();
    const size_t limit = std::min(n, i + 256);  // expressions, not templates
    for (size_t j = i; j < limit; ++j) {
        const Token& t = toks[j];
        if (IsPunct(t, "<")) {
            ++depth;
        } else if (IsPunct(t, ">")) {
            if (--depth == 0) return j + 1;
        } else if (IsPunct(t, ">>")) {
            depth -= 2;
            if (depth <= 0) return j + 1;
        } else if (IsPunct(t, ";") || IsPunct(t, "{") || IsPunct(t, "}")) {
            break;  // statement boundary: this was a comparison
        }
    }
    return i + 1;
}

/** Pass A: collect variable names declared with std containers. */
void
ScanVarDecls(const std::vector<Token>& toks, TranslationUnit* tu)
{
    const size_t n = toks.size();
    for (size_t i = 0; i < n; ++i) {
        if (toks[i].kind != TokKind::kIdent || toks[i].preprocessor) {
            continue;
        }
        bool unordered = false;
        if (!IsContainerName(toks[i].text, &unordered)) continue;
        size_t j = i + 1;
        if (j < n && IsPunct(toks[j], "<")) {
            j = SkipAngles(toks, j);
        } else if (toks[i].text != "string") {
            // Template containers without arguments are not declarations.
            continue;
        }
        while (j < n && (IsPunct(toks[j], "*") || IsPunct(toks[j], "&") ||
                         IsPunct(toks[j], "&&") || IsIdent(toks[j], "const"))) {
            ++j;
        }
        if (j >= n || toks[j].kind != TokKind::kIdent ||
            IsControlKeyword(toks[j].text)) {
            continue;
        }
        // `std::vector<int> Name(` declares a function, not a variable.
        if (j + 1 < n && IsPunct(toks[j + 1], "(")) continue;
        tu->growable_vars.insert(toks[j].text);
        if (unordered) tu->unordered_vars.insert(toks[j].text);
    }
}

/**
 * Pass B: approximate receiver types. A declaration spelled
 * `TypeName [<...>] [*&const]* varname` with an uppercase-initial TypeName
 * maps varname -> TypeName, so member calls through the variable resolve to
 * that class's methods instead of name-merging across every class. Only
 * same-file declarations are visible — the documented under-approximation.
 */
void
ScanReceiverTypes(const std::vector<Token>& toks,
                  std::map<std::string, std::string>* var_types)
{
    const size_t n = toks.size();
    for (size_t i = 0; i + 1 < n; ++i) {
        const Token& t = toks[i];
        if (t.kind != TokKind::kIdent || t.preprocessor ||
            std::isupper(static_cast<unsigned char>(t.text[0])) == 0) {
            continue;
        }
        size_t j = i + 1;
        if (IsPunct(toks[j], "<")) j = SkipAngles(toks, j);
        while (j < n && (IsPunct(toks[j], "*") || IsPunct(toks[j], "&") ||
                         IsPunct(toks[j], "&&") || IsIdent(toks[j], "const"))) {
            ++j;
        }
        if (j >= n || toks[j].kind != TokKind::kIdent ||
            IsControlKeyword(toks[j].text)) {
            continue;
        }
        // `Type Name(` is a function declaration, `Type Name::` an
        // out-of-line definition's return type.
        if (j + 1 < n &&
            (IsPunct(toks[j + 1], "(") || IsPunct(toks[j + 1], "::"))) {
            continue;
        }
        (*var_types)[toks[j].text] = t.text;
    }
}

/** Pass C: names bound to lambdas (`auto pad = [&](...) {...};`). */
void
ScanLocalCallables(const std::vector<Token>& toks, TranslationUnit* tu)
{
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
        if (toks[i].kind == TokKind::kIdent && IsPunct(toks[i + 1], "=") &&
            IsPunct(toks[i + 2], "[")) {
            tu->local_callables.insert(toks[i].text);
        }
    }
}

/** Scans a ctor init list starting at the `:` at @p i; returns the index of
 * the body `{`, or npos when this was not an init list after all. */
size_t
FindBodyAfterInitList(const std::vector<Token>& toks, size_t i)
{
    const size_t n = toks.size();
    size_t j = i + 1;
    while (j < n) {
        // Member-or-base name tokens up to the initializer group.
        while (j < n && (toks[j].kind == TokKind::kIdent ||
                         IsPunct(toks[j], "::") || IsPunct(toks[j], "<") ||
                         IsPunct(toks[j], ">") || IsPunct(toks[j], ","))) {
            ++j;
        }
        if (j >= n) return std::string::npos;
        if (IsPunct(toks[j], "(")) {
            j = SkipBalanced(toks, j, "(", ")");
        } else if (IsPunct(toks[j], "{")) {
            // Either a member brace-init or the body itself: the body is
            // the `{` that follows a completed init group (`)`/`}`), a
            // distinction the previous loop already consumed. A `{` right
            // after name tokens is a brace-init; skip it.
            j = SkipBalanced(toks, j, "{", "}");
        } else {
            return std::string::npos;
        }
        if (j >= n) return std::string::npos;
        if (IsPunct(toks[j], ",")) {
            ++j;
            continue;
        }
        if (IsPunct(toks[j], "{")) return j;
        return std::string::npos;
    }
    return std::string::npos;
}

/** From the token after a candidate's closing `)`, finds the body `{` of a
 * function definition, or npos when the candidate is a declaration, call,
 * or expression. */
size_t
FindBody(const std::vector<Token>& toks, size_t i)
{
    const size_t n = toks.size();
    size_t j = i;
    while (j < n) {
        const Token& t = toks[j];
        if (t.preprocessor) {
            ++j;
            continue;
        }
        if (t.kind == TokKind::kPunct) {
            if (t.text == "{") return j;
            if (t.text == ";" || t.text == "," || t.text == ")" ||
                t.text == "}" || t.text == "=") {
                return std::string::npos;  // declaration / `= default` / expr
            }
            if (t.text == ":") return FindBodyAfterInitList(toks, j);
            if (t.text == "(") {
                j = SkipBalanced(toks, j, "(", ")");  // noexcept(...)
                continue;
            }
            if (t.text == "[") {
                j = SkipBalanced(toks, j, "[", "]");  // [[attributes]]
                continue;
            }
            if (t.text == "<") {
                // Trailing-return template args may contain commas; skip
                // the whole balanced list so they don't read as a comma
                // terminator.
                j = SkipAngles(toks, j);
                continue;
            }
            if (t.text == "&" || t.text == "&&" || t.text == "*" ||
                t.text == "->" || t.text == "::" || t.text == ">" ||
                t.text == ">>" || t.text == "...") {
                ++j;
                continue;
            }
            return std::string::npos;
        }
        ++j;  // idents of trailing return types, const, noexcept, ...
    }
    return std::string::npos;
}

/** Collects call sites in the body token range [begin, end). */
void
CollectCalls(const std::vector<Token>& toks, size_t begin, size_t end,
             const std::map<std::string, std::string>& var_types,
             FunctionDef* fn)
{
    for (size_t j = begin; j + 1 < end; ++j) {
        const Token& t = toks[j];
        if (t.kind != TokKind::kIdent || t.preprocessor) continue;
        if (!IsPunct(toks[j + 1], "(")) continue;
        if (IsControlKeyword(t.text) || IsBuiltinType(t.text) ||
            t.text == "operator") {
            continue;
        }
        // `Type name(args)` is a parenthesized variable declaration, not a
        // call: a real call site never has two adjacent identifiers.
        if (j >= 1 && toks[j - 1].kind == TokKind::kIdent &&
            !IsControlKeyword(toks[j - 1].text)) {
            continue;
        }
        CallSite call;
        call.name = t.text;
        call.line = t.line;
        if (j >= 1) {
            const Token& prev = toks[j - 1];
            call.member_access = IsPunct(prev, ".") || IsPunct(prev, "->");
            if (IsPunct(prev, "::") && j >= 2 &&
                toks[j - 2].kind == TokKind::kIdent) {
                call.qualifier = toks[j - 2].text;
            } else if (call.member_access && j >= 2 &&
                       toks[j - 2].kind == TokKind::kIdent) {
                // Typed receiver: `app_->Advance()` with a visible
                // `AppModel* app_;` declaration resolves to AppModel.
                const auto it = var_types.find(toks[j - 2].text);
                if (it != var_types.end()) call.qualifier = it->second;
            }
        }
        fn->calls.push_back(std::move(call));
    }
}

struct Scope {
    std::string name;
    bool is_class = false;
    int depth = 0;  // brace depth just before the scope's `{`
};

}  // namespace

TranslationUnit
BuildTranslationUnit(std::string rel_path, LexedSource lexed)
{
    TranslationUnit tu;
    tu.rel_path = std::move(rel_path);
    tu.lexed = std::move(lexed);
    const std::vector<Token>& toks = tu.lexed.tokens;
    const size_t n = toks.size();

    ScanVarDecls(toks, &tu);
    std::map<std::string, std::string> var_types;
    ScanReceiverTypes(toks, &var_types);
    ScanLocalCallables(toks, &tu);

    int depth = 0;
    std::vector<Scope> scopes;
    size_t i = 0;
    while (i < n) {
        const Token& t = toks[i];
        if (t.preprocessor) {
            ++i;
            continue;
        }
        if (IsPunct(t, "{")) {
            ++depth;
            ++i;
            continue;
        }
        if (IsPunct(t, "}")) {
            depth = std::max(0, depth - 1);
            while (!scopes.empty() && scopes.back().depth == depth) {
                scopes.pop_back();
            }
            ++i;
            continue;
        }
        // Class/struct scope tracking (skipping `enum class`).
        if ((IsIdent(t, "class") || IsIdent(t, "struct")) &&
            !(i >= 1 && IsIdent(toks[i - 1], "enum"))) {
            std::vector<std::string> idents;
            size_t j = i + 1;
            while (j < n) {
                const Token& u = toks[j];
                if (u.kind == TokKind::kIdent) {
                    idents.push_back(u.text);
                    ++j;
                } else if (IsPunct(u, "[")) {
                    j = SkipBalanced(toks, j, "[", "]");
                } else {
                    break;
                }
            }
            if (!idents.empty() && idents.back() == "final") {
                idents.pop_back();
            }
            if (j < n && IsPunct(toks[j], ":")) {
                // Base clause: scan to the class body `{` (or a `;`).
                int angles = 0;
                while (j < n) {
                    const Token& u = toks[j];
                    if (IsPunct(u, "<")) ++angles;
                    if (IsPunct(u, ">")) angles = std::max(0, angles - 1);
                    if (IsPunct(u, ">>")) angles = std::max(0, angles - 2);
                    if (angles == 0 &&
                        (IsPunct(u, "{") || IsPunct(u, ";"))) {
                        break;
                    }
                    ++j;
                }
            }
            if (j < n && IsPunct(toks[j], "{") && !idents.empty()) {
                scopes.push_back(Scope{idents.back(), true, depth});
            }
            i = j < n ? j : n;  // the `{`/`;` handler advances from here
            continue;
        }
        // Function definition candidate: ident followed by `(`.
        if (t.kind == TokKind::kIdent && !IsControlKeyword(t.text) &&
            i + 1 < n && IsPunct(toks[i + 1], "(")) {
            const size_t after_params = SkipBalanced(toks, i + 1, "(", ")");
            const size_t body = FindBody(toks, after_params);
            if (body != std::string::npos) {
                const size_t body_end = SkipBalanced(toks, body, "{", "}");
                FunctionDef fn;
                fn.name = t.text;
                fn.line = t.line;
                if (i >= 2 && IsPunct(toks[i - 1], "::") &&
                    toks[i - 2].kind == TokKind::kIdent) {
                    fn.class_name = toks[i - 2].text;
                } else {
                    for (auto it = scopes.rbegin(); it != scopes.rend();
                         ++it) {
                        if (it->is_class) {
                            fn.class_name = it->name;
                            break;
                        }
                    }
                }
                fn.body_begin = body + 1;
                fn.body_end = body_end > body ? body_end - 1 : body;
                CollectCalls(toks, fn.body_begin, fn.body_end, var_types,
                             &fn);
                tu.functions.push_back(std::move(fn));
                i = body_end;
                continue;
            }
        }
        ++i;
    }

    // Attach hot-path (and stop) annotations to the next function
    // definition within six lines — room for a multi-line justification
    // plus a return type on its own line; anything further dangles (a
    // finding in the rule family).
    auto attach = [&tu](int line, bool stop) {
        FunctionDef* best = nullptr;
        for (FunctionDef& fn : tu.functions) {
            if (fn.line >= line && fn.line - line <= 6 &&
                (best == nullptr || fn.line < best->line)) {
                best = &fn;
            }
        }
        if (best == nullptr) {
            tu.dangling_hot_annotations.push_back(line);
        } else if (stop) {
            best->hot_path_stop = true;
        } else {
            best->hot_path = true;
        }
    };
    for (const int line : tu.lexed.hot_path_annotations) {
        attach(line, /*stop=*/false);
    }
    for (const int line : tu.lexed.hot_path_stops) {
        attach(line, /*stop=*/true);
    }
    return tu;
}

}  // namespace aeo::lint
