#include "sim/event_queue.h"

#include <utility>

#include "common/logging.h"

namespace aeo {

EventId
EventQueue::Schedule(SimTime when, std::function<void()> fn)
{
    AEO_ASSERT(fn != nullptr, "scheduling a null callback");
    const EventId id = next_id_++;
    heap_.push(Entry{when, next_seq_++, id});
    callbacks_.emplace(id, std::move(fn));
    ++pending_count_;
    return id;
}

bool
EventQueue::Cancel(EventId id)
{
    const auto it = callbacks_.find(id);
    if (it == callbacks_.end()) {
        return false;
    }
    callbacks_.erase(it);
    --pending_count_;
    return true;
}

void
EventQueue::DropCancelledHead() const
{
    while (!heap_.empty() &&
           callbacks_.find(heap_.top().id) == callbacks_.end()) {
        heap_.pop();
    }
}

bool
EventQueue::Empty() const
{
    DropCancelledHead();
    return heap_.empty();
}

SimTime
EventQueue::NextTime() const
{
    DropCancelledHead();
    AEO_ASSERT(!heap_.empty(), "NextTime() on empty event queue");
    return heap_.top().when;
}

SimTime
EventQueue::RunNext()
{
    DropCancelledHead();
    AEO_ASSERT(!heap_.empty(), "RunNext() on empty event queue");
    const Entry entry = heap_.top();
    heap_.pop();
    auto it = callbacks_.find(entry.id);
    AEO_ASSERT(it != callbacks_.end(), "head event lost its callback");
    std::function<void()> fn = std::move(it->second);
    callbacks_.erase(it);
    --pending_count_;
    ++executed_count_;
    fn();
    return entry.when;
}

}  // namespace aeo
