#include "sim/event_queue.h"

#include <atomic>

namespace aeo {

namespace {

/** Destroyed queues fold their counts in here (see TotalExecutedEvents). */
std::atomic<uint64_t> g_total_executed_events{0};

}  // namespace

uint64_t
TotalExecutedEvents()
{
    return g_total_executed_events.load(std::memory_order_relaxed);
}

EventQueue::~EventQueue()
{
    g_total_executed_events.fetch_add(executed_count_,
                                      std::memory_order_relaxed);
}

}  // namespace aeo
