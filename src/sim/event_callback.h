/**
 * @file
 * EventCallback: the event queue's fixed-capacity, small-buffer callable.
 *
 * Every event callback in the simulator is stored directly inside its slab
 * record (see event_queue.h) instead of behind a heap-allocated
 * std::function, so scheduling an event performs zero allocations. The
 * trade-off is a hard capture budget: a lambda whose captures exceed
 * kEventCallbackCapacity fails to compile (static_assert) rather than
 * silently spilling to the heap. Oversized cold-path captures should move
 * their bulk behind a shared_ptr (the chaos campaign wiring does this).
 */
#ifndef AEO_SIM_EVENT_CALLBACK_H_
#define AEO_SIM_EVENT_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace aeo {

/**
 * Capture budget, bytes. Sized so that a std::function<void()> (the
 * TickScheduler seam hands one through) and every kernel/device/chaos
 * lambda in the tree fit; the dominant hot-path captures (PeriodicTask's
 * [this], Device boundary events) are a single pointer.
 */
inline constexpr size_t kEventCallbackCapacity = 112;

/** Move-only inplace `void()` callable with a fixed capture budget. */
class EventCallback {
  public:
    EventCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback>>>
    // NOLINTNEXTLINE(bugprone-forwarding-reference-overload)
    EventCallback(F&& fn)  // NOLINT(google-explicit-constructor)
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= kEventCallbackCapacity,
                      "event callback captures exceed kEventCallbackCapacity; "
                      "move the bulk behind a shared_ptr");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "over-aligned event callback capture");
        // Moves happen at arm time and one-shot dispatch only. A capture
        // whose move degrades to a copy (e.g. a const std::string member)
        // is tolerated: its copy can only throw on OOM, which terminates
        // under the noexcept move path — the repo's panic policy anyway.
        static_assert(std::is_move_constructible_v<Fn>,
                      "event callback captures must be movable");
        ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
        invoke_ = [](void* storage) { (*static_cast<Fn*>(storage))(); };
        manage_ = [](void* dst, void* src) {
            if (src != nullptr) {
                Fn* from = static_cast<Fn*>(src);
                ::new (dst) Fn(std::move(*from));
                from->~Fn();
            } else {
                static_cast<Fn*>(dst)->~Fn();
            }
        };
    }

    EventCallback(EventCallback&& other) noexcept { MoveFrom(other); }

    EventCallback&
    operator=(EventCallback&& other) noexcept
    {
        if (this != &other) {
            Reset();
            MoveFrom(other);
        }
        return *this;
    }

    EventCallback(const EventCallback&) = delete;
    EventCallback& operator=(const EventCallback&) = delete;

    ~EventCallback() { Reset(); }

    /** Invokes the stored callable; undefined when empty. */
    void operator()() { invoke_(storage_); }

    /** True when a callable is stored. */
    explicit operator bool() const { return invoke_ != nullptr; }

    /** Destroys the stored callable (no-op when empty). */
    void
    Reset()
    {
        if (invoke_ != nullptr) {
            manage_(storage_, nullptr);
            invoke_ = nullptr;
            manage_ = nullptr;
        }
    }

  private:
    using InvokeFn = void (*)(void*);
    /** src != nullptr: move-construct dst from src and destroy src;
     * src == nullptr: destroy dst. */
    using ManageFn = void (*)(void* dst, void* src);

    void
    MoveFrom(EventCallback& other) noexcept
    {
        invoke_ = other.invoke_;
        manage_ = other.manage_;
        if (invoke_ != nullptr) {
            manage_(storage_, other.storage_);
            other.invoke_ = nullptr;
            other.manage_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[kEventCallbackCapacity];
    InvokeFn invoke_ = nullptr;
    ManageFn manage_ = nullptr;
};

}  // namespace aeo

#endif  // AEO_SIM_EVENT_CALLBACK_H_
