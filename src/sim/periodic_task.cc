#include "sim/periodic_task.h"

#include <utility>

#include "common/logging.h"

namespace aeo {

PeriodicTask::PeriodicTask(Simulator* sim, std::function<void()> fn)
    : sim_(sim), fn_(std::move(fn))
{
    AEO_ASSERT(sim_ != nullptr, "PeriodicTask needs a simulator");
    AEO_ASSERT(fn_ != nullptr, "PeriodicTask needs a callback");
}

PeriodicTask::~PeriodicTask()
{
    Stop();
}

void
PeriodicTask::Start(SimTime period)
{
    AEO_ASSERT(period > SimTime::Zero(), "period must be positive");
    Stop();
    period_ = period;
    running_ = true;
    pending_ = sim_->ScheduleAfter(period_, [this] { Fire(); });
}

void
PeriodicTask::Stop()
{
    if (pending_ != kInvalidEventId) {
        sim_->Cancel(pending_);
        pending_ = kInvalidEventId;
    }
    running_ = false;
}

void
PeriodicTask::Fire()
{
    pending_ = kInvalidEventId;
    // Reschedule before running so the callback can Stop() us.
    pending_ = sim_->ScheduleAfter(period_, [this] { Fire(); });
    fn_();
}

}  // namespace aeo
