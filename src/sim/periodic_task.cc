#include "sim/periodic_task.h"

#include <utility>

#include "common/logging.h"

namespace aeo {

PeriodicTask::PeriodicTask(Simulator* sim, std::function<void()> fn)
    : sim_(sim), fn_(std::move(fn))
{
    AEO_ASSERT(sim_ != nullptr, "PeriodicTask needs a simulator");
    AEO_ASSERT(fn_ != nullptr, "PeriodicTask needs a callback");
}

PeriodicTask::~PeriodicTask()
{
    Stop();
}

void
PeriodicTask::Start(SimTime period)
{
    AEO_ASSERT(period > SimTime::Zero(), "period must be positive");
    Stop();
    period_ = period;
    running_ = true;
    // The queue re-arms the series before delivering each occurrence, so a
    // callback that Stop()s or restarts its own task cancels the already-
    // armed next occurrence — the behaviour the old generation counter
    // provided, now enforced by the queue's generation-tagged ids.
    series_ = sim_->ScheduleEvery(period_, [this] { fn_(); });
}

void
PeriodicTask::Stop()
{
    if (series_ != kInvalidEventId) {
        sim_->Cancel(series_);
        series_ = kInvalidEventId;
    }
    running_ = false;
}

}  // namespace aeo
