#include "sim/periodic_task.h"

#include <utility>

#include "common/logging.h"

namespace aeo {

PeriodicTask::PeriodicTask(Simulator* sim, std::function<void()> fn)
    : sim_(sim), fn_(std::move(fn))
{
    AEO_ASSERT(sim_ != nullptr, "PeriodicTask needs a simulator");
    AEO_ASSERT(fn_ != nullptr, "PeriodicTask needs a callback");
}

PeriodicTask::~PeriodicTask()
{
    Stop();
}

void
PeriodicTask::Start(SimTime period)
{
    AEO_ASSERT(period > SimTime::Zero(), "period must be positive");
    Stop();
    period_ = period;
    running_ = true;
    pending_ =
        sim_->ScheduleAfter(period_, [this, gen = generation_] { Fire(gen); });
}

void
PeriodicTask::Stop()
{
    if (pending_ != kInvalidEventId) {
        sim_->Cancel(pending_);
        pending_ = kInvalidEventId;
    }
    running_ = false;
    // Invalidate occurrences already mid-delivery: a Start() from inside
    // the callback must not leave the pre-rescheduled event of the old
    // series live alongside the new one.
    ++generation_;
}

void
PeriodicTask::Fire(uint64_t generation)
{
    if (generation != generation_ || !running_) {
        return;
    }
    pending_ = kInvalidEventId;
    // Reschedule before running so the callback can Stop() us.
    pending_ =
        sim_->ScheduleAfter(period_, [this, gen = generation_] { Fire(gen); });
    fn_();
}

}  // namespace aeo
