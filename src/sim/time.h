/**
 * @file
 * Simulation time: a 64-bit count of microseconds.
 *
 * Microsecond resolution is exact for every interval the models use (the
 * finest is the 5 kHz power-monitor sample, 200 µs) while 2^63 µs covers
 * ~292 k years of simulated time.
 */
#ifndef AEO_SIM_TIME_H_
#define AEO_SIM_TIME_H_

#include <compare>
#include <cstdint>

#include "common/units.h"

namespace aeo {

/** A point in (or duration of) simulated time, in integer microseconds. */
class SimTime {
  public:
    constexpr SimTime() = default;

    /** Constructs from raw microseconds. */
    static constexpr SimTime Micros(int64_t us) { return SimTime(us); }
    /** Constructs from milliseconds. */
    static constexpr SimTime Millis(int64_t ms) { return SimTime(ms * 1000); }
    /** Constructs from whole seconds. */
    static constexpr SimTime FromSeconds(int64_t s) { return SimTime(s * 1000000); }
    /** Constructs from fractional seconds (rounded to the nearest µs). */
    static constexpr SimTime
    FromSecondsF(double s)
    {
        return SimTime(static_cast<int64_t>(s * 1e6 + (s >= 0 ? 0.5 : -0.5)));
    }
    /** The zero time. */
    static constexpr SimTime Zero() { return SimTime(0); }

    /** Raw microsecond count. */
    constexpr int64_t micros() const { return us_; }
    /** Value as fractional milliseconds. */
    constexpr double millis() const { return static_cast<double>(us_) / 1e3; }
    /** Value as fractional seconds. */
    constexpr double seconds() const { return static_cast<double>(us_) / 1e6; }
    /** Value as a continuous Seconds quantity. */
    constexpr Seconds ToSeconds() const { return Seconds(seconds()); }

    constexpr SimTime operator+(SimTime rhs) const { return SimTime(us_ + rhs.us_); }
    constexpr SimTime operator-(SimTime rhs) const { return SimTime(us_ - rhs.us_); }
    constexpr SimTime
    operator*(int64_t k) const
    {
        return SimTime(us_ * k);
    }
    SimTime& operator+=(SimTime rhs)
    {
        us_ += rhs.us_;
        return *this;
    }
    SimTime& operator-=(SimTime rhs)
    {
        us_ -= rhs.us_;
        return *this;
    }

    constexpr auto operator<=>(const SimTime&) const = default;

  private:
    constexpr explicit SimTime(int64_t us) : us_(us) {}
    int64_t us_ = 0;
};

}  // namespace aeo

#endif  // AEO_SIM_TIME_H_
