/**
 * @file
 * A periodic callback bound to a Simulator — used for governor sampling
 * timers, the power monitor, and thermal polling.
 *
 * Since the event core grew first-class repeating events (DESIGN.md §14)
 * this is a thin veneer over Simulator::ScheduleEvery: the series re-arms
 * its own slab record in place, so steady-state firing allocates nothing.
 * The old restart-while-firing guarantees are now provided by the queue's
 * generation-tagged ids — cancelling the series from inside the callback
 * (Stop(), or Start() to change the period) invalidates the already-armed
 * next occurrence exactly.
 */
#ifndef AEO_SIM_PERIODIC_TASK_H_
#define AEO_SIM_PERIODIC_TASK_H_

#include <functional>

#include "sim/simulator.h"
#include "sim/time.h"

namespace aeo {

/**
 * Invokes a callback every @c period once started; restartable with a new
 * period. The callback may call Stop() on its own task.
 */
class PeriodicTask {
  public:
    /**
     * @param sim The owning simulator; must outlive this task.
     * @param fn  The callback to run each period.
     */
    PeriodicTask(Simulator* sim, std::function<void()> fn);

    ~PeriodicTask();

    PeriodicTask(const PeriodicTask&) = delete;
    PeriodicTask& operator=(const PeriodicTask&) = delete;

    /**
     * Starts (or restarts) firing every @p period; the first firing happens
     * one period from now.
     */
    void Start(SimTime period);

    /** Stops firing; a pending occurrence is cancelled. */
    void Stop();

    /** True while the task is scheduled. */
    bool running() const { return running_; }

    /** Current period (valid while running). */
    SimTime period() const { return period_; }

  private:
    Simulator* sim_;
    std::function<void()> fn_;
    SimTime period_;
    EventId series_ = kInvalidEventId;
    bool running_ = false;
};

}  // namespace aeo

#endif  // AEO_SIM_PERIODIC_TASK_H_
