/**
 * @file
 * A periodic callback bound to a Simulator — used for governor sampling
 * timers, the power monitor, and the controller's control cycle.
 */
#ifndef AEO_SIM_PERIODIC_TASK_H_
#define AEO_SIM_PERIODIC_TASK_H_

#include <cstdint>
#include <functional>

#include "sim/simulator.h"
#include "sim/time.h"

namespace aeo {

/**
 * Invokes a callback every @c period once started; restartable with a new
 * period. The callback may call Stop() on its own task.
 */
class PeriodicTask {
  public:
    /**
     * @param sim The owning simulator; must outlive this task.
     * @param fn  The callback to run each period.
     */
    PeriodicTask(Simulator* sim, std::function<void()> fn);

    ~PeriodicTask();

    PeriodicTask(const PeriodicTask&) = delete;
    PeriodicTask& operator=(const PeriodicTask&) = delete;

    /**
     * Starts (or restarts) firing every @p period; the first firing happens
     * one period from now.
     */
    void Start(SimTime period);

    /** Stops firing; a pending occurrence is cancelled. */
    void Stop();

    /** True while the task is scheduled. */
    bool running() const { return running_; }

    /** Current period (valid while running). */
    SimTime period() const { return period_; }

  private:
    void Fire(uint64_t generation);

    Simulator* sim_;
    std::function<void()> fn_;
    SimTime period_;
    EventId pending_ = kInvalidEventId;
    bool running_ = false;
    /** Bumped by Start/Stop so an occurrence scheduled before a restart
     * can never fire after it, even if its cancellation was missed (the
     * callback itself may Start() this task while Fire is mid-delivery). */
    uint64_t generation_ = 0;
};

}  // namespace aeo

#endif  // AEO_SIM_PERIODIC_TASK_H_
