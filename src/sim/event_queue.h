/**
 * @file
 * The discrete-event queue at the heart of the device simulator.
 *
 * Events are callbacks scheduled at absolute simulated times. Ties are
 * broken by insertion order so runs are deterministic. Events can be
 * cancelled through the id returned at scheduling time.
 */
#ifndef AEO_SIM_EVENT_QUEUE_H_
#define AEO_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.h"

namespace aeo {

/** Opaque handle identifying a scheduled event. */
using EventId = uint64_t;

/** Sentinel returned for "no event". */
inline constexpr EventId kInvalidEventId = 0;

/** Time-ordered queue of callbacks with stable tie-breaking. */
class EventQueue {
  public:
    EventQueue() = default;

    /** Schedules @p fn at absolute time @p when; returns a cancellable id. */
    EventId Schedule(SimTime when, std::function<void()> fn);

    /**
     * Cancels a previously scheduled event.
     *
     * @return true if the event was pending and is now cancelled; false if it
     *         already ran, was already cancelled, or the id is unknown.
     */
    bool Cancel(EventId id);

    /** True when no runnable events remain. */
    bool Empty() const;

    /** Time of the earliest pending event; panics if empty. */
    SimTime NextTime() const;

    /**
     * Removes and runs the earliest pending event.
     *
     * @return the time of the event that ran; panics if empty.
     */
    SimTime RunNext();

    /** Number of pending (non-cancelled) events. */
    size_t PendingCount() const { return pending_count_; }

    /** Total events executed so far (for instrumentation). */
    uint64_t executed_count() const { return executed_count_; }

  private:
    struct Entry {
        SimTime when;
        uint64_t seq;
        EventId id;
        // Heap entries hold an index into callbacks_ to keep the heap POD-ish;
        // the callback itself lives in the map below.
    };

    struct EntryLater {
        bool
        operator()(const Entry& a, const Entry& b) const
        {
            if (a.when != b.when) {
                return a.when > b.when;
            }
            return a.seq > b.seq;
        }
    };

    void DropCancelledHead() const;

    mutable std::priority_queue<Entry, std::vector<Entry>, EntryLater> heap_;
    std::unordered_map<EventId, std::function<void()>> callbacks_;
    uint64_t next_seq_ = 1;
    EventId next_id_ = 1;
    size_t pending_count_ = 0;
    uint64_t executed_count_ = 0;
};

}  // namespace aeo

#endif  // AEO_SIM_EVENT_QUEUE_H_
