/**
 * @file
 * The discrete-event queue at the heart of the device simulator.
 *
 * Events are callbacks scheduled at absolute simulated times. Ties are
 * broken by insertion order so runs are deterministic. Events can be
 * cancelled through the id returned at scheduling time.
 *
 * Storage model (DESIGN.md §14): callbacks live in a slab of event records
 * threaded on a free list — no per-event heap allocation and no hash
 * operations anywhere on the dispatch path. Heap entries index the slab
 * directly; ids carry a generation tag so Cancel() of a stale id (already
 * ran, already cancelled, slot since reused) is detected exactly. A
 * repeating event (ScheduleEvery) re-arms its own slab record in place, so
 * steady-state periodic firing — the 5 kHz power monitor, governor timers,
 * thermal polling — allocates nothing at all.
 *
 * The dispatch order contract is unchanged from the original
 * unordered_map-backed queue: strictly increasing (when, seq), seq assigned
 * per schedule *and* per repeating re-arm in the same order the old
 * PeriodicTask consumed them, so bench outputs are byte-identical.
 */
#ifndef AEO_SIM_EVENT_QUEUE_H_
#define AEO_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "sim/event_callback.h"
#include "sim/time.h"

namespace aeo {

/** Opaque handle identifying a scheduled event: a slab index plus the
 * slot's generation at allocation time (see EventQueue). */
using EventId = uint64_t;

/** Sentinel returned for "no event". */
inline constexpr EventId kInvalidEventId = 0;

/**
 * Process-wide count of executed events, aggregated as queues are
 * destroyed (each run's Device owns one). Benches report it as events/sec;
 * the dispatch path itself touches only the queue-local counter.
 */
uint64_t TotalExecutedEvents();

/** Time-ordered queue of callbacks with stable tie-breaking. */
class EventQueue {
  public:
    EventQueue() = default;
    ~EventQueue();

    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Schedules @p fn at absolute time @p when; returns a cancellable id. */
    template <typename F>
    EventId
    Schedule(SimTime when, F&& fn)
    {
        return Arm(when, SimTime::Zero(), std::forward<F>(fn));
    }

    /**
     * Schedules a repeating event: first fires at @p first, then every
     * @p period (> 0) until cancelled. The next occurrence is re-armed in
     * the same slab record *before* the callback runs — same seq
     * consumption as a self-rescheduling one-shot, zero allocations per
     * fire. The returned id cancels the whole series.
     */
    template <typename F>
    EventId
    ScheduleEvery(SimTime first, SimTime period, F&& fn)
    {
        AEO_ASSERT(period > SimTime::Zero(), "repeat period must be positive");
        return Arm(first, period, std::forward<F>(fn));
    }

    /**
     * Cancels a previously scheduled event (or repeating series).
     *
     * @return true if the event was pending and is now cancelled; false if it
     *         already ran, was already cancelled, or the id is unknown.
     */
    bool
    Cancel(EventId id)
    {
        const uint64_t raw_slot = (id & 0xffffffffULL);
        if (raw_slot == 0 || raw_slot > slots_.size()) {
            return false;
        }
        const auto slot = static_cast<uint32_t>(raw_slot - 1);
        Slot& s = slots_[slot];
        if (!s.armed || s.generation != static_cast<uint32_t>(id >> 32)) {
            return false;
        }
        s.armed = false;
        BumpGeneration(s);  // invalidates the slot's heap entry lazily
        --pending_count_;
        if (s.firing) {
            // Mid-dispatch of this repeating event: its storage is live on
            // the call stack, so the slot returns to the free list only
            // after the callback finishes (see RunNext).
            s.free_deferred = true;
        } else {
            Release(slot);
        }
        return true;
    }

    /** True when no runnable events remain. */
    bool
    Empty() const
    {
        DropStaleHead();
        return heap_.empty();
    }

    /** Time of the earliest pending event; panics if empty. */
    SimTime
    NextTime() const
    {
        DropStaleHead();
        AEO_ASSERT(!heap_.empty(), "NextTime() on empty event queue");
        return heap_.front().when;
    }

    /** Stores the earliest pending time and returns true, or returns false
     * when no runnable events remain (the run loop's fused check). */
    bool
    NextTimeIfAny(SimTime* when) const
    {
        DropStaleHead();
        if (heap_.empty()) {
            return false;
        }
        *when = heap_.front().when;
        return true;
    }

    /**
     * Removes and runs the earliest pending event.
     *
     * @return the time of the event that ran; panics if empty.
     */
    // aeo: hot-path
    SimTime
    RunNext()
    {
        DropStaleHead();
        AEO_ASSERT(!heap_.empty(), "RunNext() on empty event queue");
        const HeapEntry entry = heap_.front();
        Slot& s = slots_[entry.slot];
        ++executed_count_;
        if (s.period > SimTime::Zero()) {
            // Repeating: re-arm the same record before delivering, so a
            // callback that schedules events sees the same seq order as the
            // old reschedule-before-deliver PeriodicTask. The next
            // occurrence replaces the extracted top in one sift instead of
            // a pop + push pair — extraction order is governed solely by
            // the total order on (when, seq), so this is unobservable.
            heap_.front() = HeapEntry{entry.when + s.period, next_seq_++,
                                      entry.slot, s.generation};
            SiftDown(0);
            s.firing = true;
            s.fn();
            s.firing = false;
            if (s.free_deferred) {
                s.free_deferred = false;
                Release(entry.slot);
            }
        } else {
            PopTop();
            // One-shot: move the callback out and free the slot first, so
            // the callback can schedule into (and Cancel() ids of) a fully
            // consistent queue — matching the old erase-before-invoke order.
            EventCallback fn = std::move(s.fn);
            s.armed = false;
            BumpGeneration(s);
            --pending_count_;
            Release(entry.slot);
            fn();
        }
        return entry.when;
    }

    /** Number of pending (non-cancelled) events; a repeating series counts
     * as one while armed. */
    size_t PendingCount() const { return pending_count_; }

    /** Total events executed so far (for instrumentation). */
    uint64_t executed_count() const { return executed_count_; }

    /** Slab capacity (for tests: bounded by peak concurrency, not churn). */
    size_t SlabSize() const { return slots_.size(); }

  private:
    /**
     * One slab record. Lives in a deque so addresses are stable: a
     * repeating callback is invoked in place while the callback itself may
     * grow the slab by scheduling.
     */
    struct Slot {
        EventCallback fn;
        /** Zero for one-shots; the re-arm interval for repeating events. */
        SimTime period;
        /** Tag carried by ids and heap entries; bumped whenever the slot's
         * current registration dies, so stale references never match. */
        uint32_t generation = 1;
        /** Free-list link, valid while the slot is free. */
        uint32_t next_free = 0;
        /** A live registration occupies this slot. */
        bool armed = false;
        /** The repeating callback is executing right now. */
        bool firing = false;
        /** Cancelled mid-fire: release after the callback returns. */
        bool free_deferred = false;
    };

    struct HeapEntry {
        SimTime when;
        uint64_t seq;
        uint32_t slot;
        uint32_t generation;
    };

    /** Heap priority: earliest (when, seq) on top. Seqs are unique, so this
     * is a strict total order — heap layout never leaks into run order. */
    static bool
    Earlier(const HeapEntry& a, const HeapEntry& b)
    {
        if (a.when != b.when) {
            return a.when < b.when;
        }
        return a.seq < b.seq;
    }

    static constexpr uint32_t kNoFreeSlot = 0xffffffffu;

    /** Restores the min-heap invariant upward from @p i (after push_back). */
    void
    SiftUp(size_t i) const
    {
        HeapEntry moving = heap_[i];
        while (i > 0) {
            const size_t parent = (i - 1) / 2;
            if (!Earlier(moving, heap_[parent])) {
                break;
            }
            heap_[i] = heap_[parent];
            i = parent;
        }
        heap_[i] = moving;
    }

    /** Restores the min-heap invariant downward from @p i (after a
     * replace-top or pop). */
    void
    SiftDown(size_t i) const
    {
        const size_t n = heap_.size();
        HeapEntry moving = heap_[i];
        for (;;) {
            size_t child = 2 * i + 1;
            if (child >= n) {
                break;
            }
            if (child + 1 < n && Earlier(heap_[child + 1], heap_[child])) {
                ++child;
            }
            if (!Earlier(heap_[child], moving)) {
                break;
            }
            heap_[i] = heap_[child];
            i = child;
        }
        heap_[i] = moving;
    }

    /** Removes the heap's top entry. */
    void
    PopTop() const
    {
        heap_.front() = heap_.back();
        heap_.pop_back();
        if (!heap_.empty()) {
            SiftDown(0);
        }
    }

    template <typename F>
    EventId
    Arm(SimTime when, SimTime period, F&& fn)
    {
        if constexpr (requires { static_cast<bool>(fn); }) {
            AEO_ASSERT(static_cast<bool>(fn), "scheduling a null callback");
        }
        const uint32_t slot = Acquire();
        Slot& s = slots_[slot];
        s.fn = EventCallback(std::forward<F>(fn));
        s.period = period;
        s.armed = true;
        s.firing = false;
        s.free_deferred = false;
        // aeo-lint: allow(hot-path-alloc) -- the heap reuses its capacity;
        // it grows only past the armed-timer high-water mark.
        heap_.push_back(HeapEntry{when, next_seq_++, slot, s.generation});
        SiftUp(heap_.size() - 1);
        ++pending_count_;
        return (static_cast<uint64_t>(s.generation) << 32) |
               static_cast<uint64_t>(slot + 1);
    }

    uint32_t
    Acquire()
    {
        if (free_head_ != kNoFreeSlot) {
            const uint32_t slot = free_head_;
            free_head_ = slots_[slot].next_free;
            return slot;
        }
        // aeo-lint: allow(hot-path-alloc) -- pool growth: taken only when
        // the free list is empty; the steady state recycles slots.
        slots_.emplace_back();
        return static_cast<uint32_t>(slots_.size() - 1);
    }

    /** Destroys the slot's callback and returns it to the free list. The
     * generation was already bumped when the registration died. */
    void
    Release(uint32_t slot)
    {
        Slot& s = slots_[slot];
        s.fn.Reset();
        s.next_free = free_head_;
        free_head_ = slot;
    }

    static void
    BumpGeneration(Slot& s)
    {
        if (++s.generation == 0) {
            s.generation = 1;  // 0 is reserved so decoded ids never match
        }
    }

    /** Pops heap entries whose registration died (cancelled or re-armed
     * under a new generation); amortized O(1) per cancelled event. */
    void
    DropStaleHead() const
    {
        while (!heap_.empty()) {
            const HeapEntry& top = heap_.front();
            const Slot& s = slots_[top.slot];
            if (s.armed && s.generation == top.generation) {
                return;
            }
            PopTop();
        }
    }

    /** Stable-address slab of event records. */
    std::deque<Slot> slots_;
    /** Binary heap over live (and lazily-dropped stale) entries. */
    mutable std::vector<HeapEntry> heap_;
    uint32_t free_head_ = kNoFreeSlot;
    uint64_t next_seq_ = 1;
    size_t pending_count_ = 0;
    uint64_t executed_count_ = 0;
};

}  // namespace aeo

#endif  // AEO_SIM_EVENT_QUEUE_H_
