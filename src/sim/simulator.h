/**
 * @file
 * The simulation executive: owns the clock and the event queue and runs
 * events in time order until a stop condition.
 */
#ifndef AEO_SIM_SIMULATOR_H_
#define AEO_SIM_SIMULATOR_H_

#include <utility>

#include "common/logging.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace aeo {

/** Event-driven simulation executive. */
class Simulator {
  public:
    Simulator() = default;

    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    /** Current simulated time. */
    SimTime Now() const { return now_; }

    /** Schedules @p fn after @p delay (≥ 0) from now. */
    template <typename F>
    EventId
    ScheduleAfter(SimTime delay, F&& fn)
    {
        AEO_ASSERT(delay >= SimTime::Zero(), "negative delay %lld us",
                   static_cast<long long>(delay.micros()));
        return queue_.Schedule(now_ + delay, std::forward<F>(fn));
    }

    /** Schedules @p fn at absolute time @p when (≥ now). */
    template <typename F>
    EventId
    ScheduleAt(SimTime when, F&& fn)
    {
        AEO_ASSERT(when >= now_, "scheduling in the past: %lld < %lld",
                   static_cast<long long>(when.micros()),
                   static_cast<long long>(now_.micros()));
        return queue_.Schedule(when, std::forward<F>(fn));
    }

    /**
     * Schedules @p fn to fire every @p period (> 0), first one period from
     * now, until the returned id is cancelled. The series occupies one slab
     * record that re-arms in place: steady-state firing performs zero heap
     * allocations and zero hash operations (DESIGN.md §14).
     */
    template <typename F>
    EventId
    ScheduleEvery(SimTime period, F&& fn)
    {
        AEO_ASSERT(period > SimTime::Zero(), "period must be positive");
        return queue_.ScheduleEvery(now_ + period, period,
                                    std::forward<F>(fn));
    }

    /** Cancels a pending event or repeating series; see EventQueue::Cancel. */
    bool Cancel(EventId id) { return queue_.Cancel(id); }

    /**
     * Runs events until simulated time reaches @p deadline, Stop() is called,
     * or the queue drains. The clock is left at min(deadline, stop time).
     */
    void RunUntil(SimTime deadline);

    /** Runs for @p duration from the current time. */
    void RunFor(SimTime duration) { RunUntil(now_ + duration); }

    /** Requests that the run loop return after the current event. */
    void Stop() { stop_requested_ = true; }

    /** True if Stop() ended the last run before its deadline. */
    bool stopped() const { return stop_requested_; }

    /** Events executed since construction. */
    uint64_t executed_events() const { return queue_.executed_count(); }

  private:
    EventQueue queue_;
    SimTime now_;
    bool stop_requested_ = false;
};

}  // namespace aeo

#endif  // AEO_SIM_SIMULATOR_H_
