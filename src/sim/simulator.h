/**
 * @file
 * The simulation executive: owns the clock and the event queue and runs
 * events in time order until a stop condition.
 */
#ifndef AEO_SIM_SIMULATOR_H_
#define AEO_SIM_SIMULATOR_H_

#include <functional>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace aeo {

/** Event-driven simulation executive. */
class Simulator {
  public:
    Simulator() = default;

    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    /** Current simulated time. */
    SimTime Now() const { return now_; }

    /** Schedules @p fn after @p delay (≥ 0) from now. */
    EventId ScheduleAfter(SimTime delay, std::function<void()> fn);

    /** Schedules @p fn at absolute time @p when (≥ now). */
    EventId ScheduleAt(SimTime when, std::function<void()> fn);

    /** Cancels a pending event; see EventQueue::Cancel. */
    bool Cancel(EventId id) { return queue_.Cancel(id); }

    /**
     * Runs events until simulated time reaches @p deadline, Stop() is called,
     * or the queue drains. The clock is left at min(deadline, stop time).
     */
    void RunUntil(SimTime deadline);

    /** Runs for @p duration from the current time. */
    void RunFor(SimTime duration) { RunUntil(now_ + duration); }

    /** Requests that the run loop return after the current event. */
    void Stop() { stop_requested_ = true; }

    /** True if Stop() ended the last run before its deadline. */
    bool stopped() const { return stop_requested_; }

    /** Events executed since construction. */
    uint64_t executed_events() const { return queue_.executed_count(); }

  private:
    EventQueue queue_;
    SimTime now_;
    bool stop_requested_ = false;
};

}  // namespace aeo

#endif  // AEO_SIM_SIMULATOR_H_
