#include "sim/simulator.h"

#include <utility>

#include "common/logging.h"

namespace aeo {

EventId
Simulator::ScheduleAfter(SimTime delay, std::function<void()> fn)
{
    AEO_ASSERT(delay >= SimTime::Zero(), "negative delay %lld us",
               static_cast<long long>(delay.micros()));
    return queue_.Schedule(now_ + delay, std::move(fn));
}

EventId
Simulator::ScheduleAt(SimTime when, std::function<void()> fn)
{
    AEO_ASSERT(when >= now_, "scheduling in the past: %lld < %lld",
               static_cast<long long>(when.micros()),
               static_cast<long long>(now_.micros()));
    return queue_.Schedule(when, std::move(fn));
}

void
Simulator::RunUntil(SimTime deadline)
{
    AEO_ASSERT(deadline >= now_, "deadline in the past");
    stop_requested_ = false;
    while (!stop_requested_ && !queue_.Empty() && queue_.NextTime() <= deadline) {
        now_ = queue_.NextTime();
        queue_.RunNext();
    }
    if (!stop_requested_) {
        now_ = deadline;
    }
}

}  // namespace aeo
