#include "sim/simulator.h"

#include "common/logging.h"

namespace aeo {

void
Simulator::RunUntil(SimTime deadline)
{
    AEO_ASSERT(deadline >= now_, "deadline in the past");
    stop_requested_ = false;
    SimTime next;
    while (!stop_requested_ && queue_.NextTimeIfAny(&next) &&
           next <= deadline) {
        now_ = next;
        queue_.RunNext();
    }
    if (!stop_requested_) {
        now_ = deadline;
    }
}

}  // namespace aeo
