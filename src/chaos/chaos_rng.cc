#include "chaos/chaos_rng.h"

#include "common/logging.h"

namespace aeo::chaos {

namespace {

/** splitmix64: decorrelates related seeds before they reach the engine. */
uint64_t
SplitMix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

}  // namespace

ChaosRng::ChaosRng(uint64_t seed) : seed_(seed), engine_(SplitMix64(seed)) {}

uint64_t
ChaosRng::NextU64()
{
    return engine_();
}

double
ChaosRng::NextDouble()
{
    // Top 53 bits scaled by 2^-53: every double in [0, 1) is reachable and
    // the mapping involves no platform-dependent rounding.
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double
ChaosRng::Uniform(double lo, double hi)
{
    AEO_ASSERT(lo <= hi, "empty uniform range");
    return lo + (hi - lo) * NextDouble();
}

int
ChaosRng::UniformInt(int lo, int hi)
{
    AEO_ASSERT(lo <= hi, "empty integer range");
    const uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
    // Rejection sampling over the largest multiple of span below 2^64.
    const uint64_t limit = ~0ull - (~0ull % span);
    uint64_t draw = NextU64();
    while (draw >= limit) {
        draw = NextU64();
    }
    return lo + static_cast<int>(draw % span);
}

bool
ChaosRng::Bernoulli(double p)
{
    if (p <= 0.0) {
        return false;
    }
    if (p >= 1.0) {
        return true;
    }
    return NextDouble() < p;
}

size_t
ChaosRng::WeightedIndex(const std::vector<double>& weights)
{
    double total = 0.0;
    for (const double w : weights) {
        AEO_ASSERT(w >= 0.0, "negative weight");
        total += w;
    }
    AEO_ASSERT(total > 0.0, "weights sum to zero");
    double point = NextDouble() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
        point -= weights[i];
        if (point < 0.0) {
            return i;
        }
    }
    return weights.size() - 1;  // Float summation edge: the last non-zero bin.
}

ChaosRng
ChaosRng::Fork(uint64_t stream) const
{
    return ChaosRng(SplitMix64(seed_ ^ SplitMix64(stream + 1)));
}

}  // namespace aeo::chaos
