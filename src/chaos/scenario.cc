#include "chaos/scenario.h"

#include <cstdlib>
#include <cstring>

#include "common/strings.h"

namespace aeo::chaos {

namespace {

constexpr const char* kFaultClassNames[kFaultClassCount] = {
    "actuation-busy", "actuation-sticky", "silent-clamp",   "pmu-drop",
    "meter-drop",     "path-disappear",   "thermal-cap",    "tick-jitter",
    "tick-overrun",   "suspend-resume",   "clock-skew",
};

}  // namespace

const char*
FaultClassName(FaultClass cls)
{
    const int index = static_cast<int>(cls);
    if (index < 0 || index >= kFaultClassCount) {
        return "?";
    }
    return kFaultClassNames[index];
}

bool
FaultClassFromName(const std::string& name, FaultClass* cls)
{
    for (int i = 0; i < kFaultClassCount; ++i) {
        if (name == kFaultClassNames[i]) {
            *cls = static_cast<FaultClass>(i);
            return true;
        }
    }
    return false;
}

JsonValue
SeedToJson(uint64_t seed)
{
    return JsonValue(StrFormat("%llu", static_cast<unsigned long long>(seed)));
}

uint64_t
SeedFromJson(const JsonValue& value)
{
    if (value.is_string()) {
        return std::strtoull(value.AsString().c_str(), nullptr, 10);
    }
    return value.AsUint64();
}

JsonValue
ScenarioToJson(const ChaosScenario& scenario)
{
    JsonValue doc = JsonValue::MakeObject();
    doc.Set("seed", SeedToJson(scenario.seed));
    JsonValue actions = JsonValue::MakeArray();
    for (const ScenarioAction& action : scenario.actions) {
        JsonValue entry = JsonValue::MakeObject();
        entry.Set("class", FaultClassName(action.cls));
        entry.Set("start_s", action.start_s);
        entry.Set("duration_s", action.duration_s);
        entry.Set("intensity", action.intensity);
        actions.Append(std::move(entry));
    }
    doc.Set("actions", std::move(actions));
    return doc;
}

bool
ScenarioFromJson(const JsonValue& json, ChaosScenario* scenario,
                 std::string* error)
{
    if (!json.is_object() || !json.Has("actions") ||
        !json.At("actions").is_array()) {
        *error = "scenario JSON must be an object with an 'actions' array";
        return false;
    }
    ChaosScenario out;
    out.seed = json.Has("seed") ? SeedFromJson(json.At("seed")) : 0;
    for (const JsonValue& entry : json.At("actions").items()) {
        if (!entry.is_object()) {
            *error = "scenario action must be an object";
            return false;
        }
        ScenarioAction action;
        if (!FaultClassFromName(entry.GetString("class", ""), &action.cls)) {
            *error = "unknown fault class '" + entry.GetString("class", "") +
                     "'";
            return false;
        }
        action.start_s = entry.GetDouble("start_s", 0.0);
        action.duration_s = entry.GetDouble("duration_s", 1.0);
        action.intensity = entry.GetDouble("intensity", 0.5);
        if (action.start_s < 0.0 || action.duration_s <= 0.0 ||
            action.intensity < 0.0 || action.intensity > 1.0) {
            *error = "scenario action out of range (start >= 0, "
                     "duration > 0, intensity in [0, 1])";
            return false;
        }
        out.actions.push_back(action);
    }
    *scenario = std::move(out);
    return true;
}

JsonValue
CampaignSpecToJson(const CampaignSpec& spec)
{
    JsonValue doc = JsonValue::MakeObject();
    doc.Set("duration_s", spec.duration_s);
    JsonValue weights = JsonValue::MakeArray();
    for (const double w : spec.class_weights) {
        weights.Append(w);
    }
    doc.Set("class_weights", std::move(weights));
    doc.Set("base_intensity", spec.base_intensity);
    doc.Set("intensity_ramp", spec.intensity_ramp);
    doc.Set("bursts_per_minute", spec.bursts_per_minute);
    doc.Set("min_duration_s", spec.min_duration_s);
    doc.Set("max_duration_s", spec.max_duration_s);
    doc.Set("max_actions", spec.max_actions);
    doc.Set("phase_anchor_period_s", spec.phase_anchor_period_s);
    doc.Set("anchor_probability", spec.anchor_probability);
    doc.Set("storm_probability", spec.storm_probability);
    doc.Set("storm_size", spec.storm_size);
    return doc;
}

bool
CampaignSpecFromJson(const JsonValue& json, CampaignSpec* spec,
                     std::string* error)
{
    if (!json.is_object()) {
        *error = "campaign spec JSON must be an object";
        return false;
    }
    CampaignSpec out;
    out.duration_s = json.GetDouble("duration_s", out.duration_s);
    if (json.Has("class_weights")) {
        const JsonValue& weights = json.At("class_weights");
        if (!weights.is_array() ||
            weights.items().size() != kFaultClassCount) {
            *error = "class_weights must be an array of 7 numbers";
            return false;
        }
        for (size_t i = 0; i < weights.items().size(); ++i) {
            out.class_weights[i] = weights.items()[i].AsDouble();
        }
    }
    out.base_intensity = json.GetDouble("base_intensity", out.base_intensity);
    out.intensity_ramp = json.GetDouble("intensity_ramp", out.intensity_ramp);
    out.bursts_per_minute =
        json.GetDouble("bursts_per_minute", out.bursts_per_minute);
    out.min_duration_s = json.GetDouble("min_duration_s", out.min_duration_s);
    out.max_duration_s = json.GetDouble("max_duration_s", out.max_duration_s);
    out.max_actions =
        static_cast<int>(json.GetDouble("max_actions", out.max_actions));
    out.phase_anchor_period_s =
        json.GetDouble("phase_anchor_period_s", out.phase_anchor_period_s);
    out.anchor_probability =
        json.GetDouble("anchor_probability", out.anchor_probability);
    out.storm_probability =
        json.GetDouble("storm_probability", out.storm_probability);
    out.storm_size =
        static_cast<int>(json.GetDouble("storm_size", out.storm_size));
    if (out.duration_s <= 0.0 || out.max_actions <= 0 ||
        out.min_duration_s <= 0.0 ||
        out.max_duration_s < out.min_duration_s || out.storm_size < 1) {
        *error = "campaign spec out of range";
        return false;
    }
    *spec = std::move(out);
    return true;
}

}  // namespace aeo::chaos
