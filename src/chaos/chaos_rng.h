/**
 * @file
 * The chaos engine's PRNG: std::mt19937_64 — whose output sequence is
 * pinned bit-for-bit by the C++ standard — behind hand-rolled
 * distributions, because the std::*_distribution adaptors are expressly
 * NOT portable across standard libraries. A campaign seed must generate
 * the identical scenario on libstdc++, libc++ and MSVC, so every mapping
 * from raw engine output to a usable value lives here, written once.
 */
#ifndef AEO_CHAOS_CHAOS_RNG_H_
#define AEO_CHAOS_CHAOS_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace aeo::chaos {

/** Seeded, platform-stable random source for scenario generation. */
class ChaosRng {
  public:
    explicit ChaosRng(uint64_t seed);

    /** Next raw engine word. */
    uint64_t NextU64();

    /** Uniform double in [0, 1) with 53 bits of resolution. */
    double NextDouble();

    /** Uniform double in [lo, hi). */
    double Uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive), by rejection — modulo
     * reduction would bias and tie the result to the range's divisors. */
    int UniformInt(int lo, int hi);

    /** True with probability @p p. */
    bool Bernoulli(double p);

    /** Index into @p weights proportional to its value; weights must be
     * non-negative with a positive sum. */
    size_t WeightedIndex(const std::vector<double>& weights);

    /**
     * An independent child stream for substream @p stream: campaigns fork
     * one child per scenario so adding a scenario never perturbs the
     * others' draws.
     */
    ChaosRng Fork(uint64_t stream) const;

  private:
    uint64_t seed_;
    std::mt19937_64 engine_;
};

}  // namespace aeo::chaos

#endif  // AEO_CHAOS_CHAOS_RNG_H_
