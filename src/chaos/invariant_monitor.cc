#include "chaos/invariant_monitor.h"

#include "common/logging.h"
#include "common/strings.h"

namespace aeo::chaos {

namespace {

constexpr size_t kViolationCap = 64;

}  // namespace

void
InvariantMonitor::Report(uint64_t cycle, double time_s, std::string message)
{
    if (violations_.size() >= kViolationCap) {
        return;
    }
    violations_.push_back(Violation{cycle, time_s, std::move(message)});
}

// --- thermal-envelope -------------------------------------------------------

ThermalEnvelopeMonitor::ThermalEnvelopeMonitor(const MonitorConfig& config)
    : InvariantMonitor("thermal-envelope"), limit_c_(config.thermal_limit_c)
{
}

void
ThermalEnvelopeMonitor::OnCycle(const CycleContext& context)
{
    if (context.record->temp_c > limit_c_) {
        Report(context.cycle_index, context.record->time_s,
               StrFormat("zone temperature %.1f C exceeds the %.1f C "
                         "never-exceed envelope",
                         context.record->temp_c, limit_c_));
    }
}

// --- qos-violation-run ------------------------------------------------------

QosViolationRunMonitor::QosViolationRunMonitor(const MonitorConfig& config)
    : InvariantMonitor("qos-violation-run"),
      max_run_(config.max_qos_violation_run),
      tolerance_frac_(config.qos_tolerance_frac)
{
    AEO_ASSERT(max_run_ > 0, "QoS run bound must be positive");
}

void
QosViolationRunMonitor::OnCycle(const CycleContext& context)
{
    const ControlCycleRecord& record = *context.record;
    // Only cycles where the controller *believes* it is meeting the target
    // count: degraded cycles have no trustworthy measurement, safe-mode
    // cycles have declared the target unreachable, and fallback cycles do
    // not control at all. A long shortfall run outside those modes means
    // the loop is silently failing its contract.
    if (record.degraded || record.safe_mode || context.fallback_engaged) {
        run_ = 0;
        reported_this_run_ = false;
        return;
    }
    const bool shortfall =
        record.measured_gips <
        (1.0 - tolerance_frac_) * context.target_gips;
    if (!shortfall) {
        run_ = 0;
        reported_this_run_ = false;
        return;
    }
    ++run_;
    if (run_ > max_run_ && !reported_this_run_) {
        reported_this_run_ = true;
        Report(context.cycle_index, record.time_s,
               StrFormat("measured %.2f GIPS stayed >%.0f%% under the "
                         "%.2f GIPS target for %d consecutive healthy "
                         "cycles (bound %d)",
                         record.measured_gips, tolerance_frac_ * 100.0,
                         context.target_gips, run_, max_run_));
    }
}

// --- actuation-consistency --------------------------------------------------

ActuationConsistencyMonitor::ActuationConsistencyMonitor(
    const MonitorConfig& config)
    : InvariantMonitor("actuation-consistency"),
      grace_cycles_(config.cap_belief_grace_cycles)
{
    AEO_ASSERT(grace_cycles_ >= 0, "cap-belief grace must be non-negative");
}

void
ActuationConsistencyMonitor::OnCycle(const CycleContext& context)
{
    const auto check = [&](const platform::ActuationDelivery& delivery,
                           const char* subsystem) {
        if (delivery.verified && !delivery.attempted) {
            Report(context.cycle_index, context.record->time_s,
                   StrFormat("%s delivery verified without being attempted",
                             subsystem));
        }
        if (delivery.verified && !delivery.write_ok) {
            Report(context.cycle_index, context.record->time_s,
                   StrFormat("%s delivery verified although the write "
                             "failed",
                             subsystem));
        }
        if (delivery.verified &&
            delivery.delivered_level > delivery.requested_level) {
            Report(context.cycle_index, context.record->time_s,
                   StrFormat("%s delivered level %d above the requested "
                             "level %d — read-back and actuation disagree "
                             "upward",
                             subsystem, delivery.delivered_level,
                             delivery.requested_level));
        }
    };
    for (const platform::DwellDelivery& dwell : *context.deliveries) {
        check(dwell.cpu, "cpu");
        check(dwell.bw, "bw");
        check(dwell.gpu, "gpu");
        if (dwell.cpu.attempted &&
            dwell.cpu.requested_level > context.max_cpu_level) {
            Report(context.cycle_index, context.record->time_s,
                   StrFormat("cpu request level %d above the platform "
                             "ceiling %d",
                             dwell.cpu.requested_level,
                             context.max_cpu_level));
        }
    }

    // Belief vs ground truth: the cap the controller planned this cycle's
    // feasible set against must track the cap the kernel advertises. The
    // believed-below-advertised direction is benign (read-back learning is
    // deliberately conservative); believed-above-advertised beyond the
    // poll-race grace means the mask admits rows the device cannot run.
    const int ceiling = context.max_cpu_level;
    const int believed = context.record->cpu_cap_level < 0
                             ? ceiling
                             : context.record->cpu_cap_level;
    const int advertised = context.true_cpu_cap_level >= ceiling
                               ? ceiling
                               : context.true_cpu_cap_level;
    if (believed > advertised) {
        ++divergence_run_;
        if (divergence_run_ > grace_cycles_ && !reported_divergence_) {
            reported_divergence_ = true;
            Report(context.cycle_index, context.record->time_s,
                   StrFormat("controller believes cpu cap level %d while "
                             "the kernel advertises %d — the feasible-set "
                             "mask admits unreachable rows (%d consecutive "
                             "cycles, grace %d)",
                             believed, advertised, divergence_run_,
                             grace_cycles_));
        }
    } else {
        divergence_run_ = 0;
        reported_divergence_ = false;
    }
}

// --- state-legality ---------------------------------------------------------

StateLegalityMonitor::StateLegalityMonitor()
    : InvariantMonitor("state-legality")
{
}

void
StateLegalityMonitor::OnCycle(const CycleContext& context)
{
    if (context.illegal_dispatches > last_illegal_) {
        Report(context.cycle_index, context.record->time_s,
               StrFormat("illegal-dispatch counter rose to %llu",
                         static_cast<unsigned long long>(
                             context.illegal_dispatches)));
    }
    last_illegal_ = context.illegal_dispatches;

    const bool fallback_state =
        context.state == ControllerState::kProbe ||
        context.state == ControllerState::kFallbackStock;
    if (context.fallback_engaged != fallback_state) {
        Report(context.cycle_index, context.record->time_s,
               StrFormat("fallback flag %d disagrees with state %s",
                         context.fallback_engaged ? 1 : 0,
                         ControllerStateName(context.state)));
    }
}

// --- watchdog-liveness ------------------------------------------------------

WatchdogLivenessMonitor::WatchdogLivenessMonitor(const MonitorConfig& config)
    : InvariantMonitor("watchdog-liveness"),
      grace_periods_(config.liveness_grace_periods)
{
}

void
WatchdogLivenessMonitor::OnCycle(const CycleContext& context)
{
    if (context.fallback_engaged && !saw_fallback_) {
        saw_fallback_ = true;
        fallback_cycle_ = context.cycle_index;
        fallback_time_s_ = context.record->time_s;
    }
}

void
WatchdogLivenessMonitor::OnFinish(const FinishContext& context)
{
    if (!saw_fallback_ && !context.fallback_engaged) {
        return;
    }
    if (!context.reengage_enabled) {
        return;  // Terminal fallback is the configured behaviour.
    }
    // Prefer the controller's own engagement clock: a storm-triggered
    // fallback aborts its cycle before the observer hook runs, so OnCycle
    // can miss the engagement entirely (and the cycle hook only sees it a
    // cycle late even when control keeps running).
    double fallback_at_s = saw_fallback_ ? fallback_time_s_ : 0.0;
    if (context.fallback_time_s >= 0.0) {
        fallback_at_s = context.fallback_time_s;
        fallback_time_s_ = context.fallback_time_s;
    }
    const double fallback_span_s = context.elapsed_s - fallback_at_s;
    if (context.probe_period_s <= 0.0 ||
        fallback_span_s < grace_periods_ * context.probe_period_s) {
        return;  // The run ended before a probe was due.
    }
    if (context.probes == 0) {
        Report(fallback_cycle_, fallback_time_s_,
               StrFormat("watchdog fallback at cycle %llu never re-probed "
                         "the actuation path in %.0f s (probe period "
                         "%.0f s) — degraded mode must not be a silent "
                         "grave",
                         static_cast<unsigned long long>(fallback_cycle_),
                         fallback_span_s, context.probe_period_s));
    }
}

// --- deadline-miss-run ------------------------------------------------------

DeadlineMissRunMonitor::DeadlineMissRunMonitor(const MonitorConfig& config)
    : InvariantMonitor("deadline-miss-run"),
      max_run_(config.max_deadline_miss_run)
{
    AEO_ASSERT(max_run_ > 0, "deadline-miss run bound must be positive");
}

void
DeadlineMissRunMonitor::OnCycle(const CycleContext& context)
{
    const ControlCycleRecord& record = *context.record;
    // A fallback is the controller *reacting* to the storm — exactly the
    // bounded behaviour the invariant demands — so it resets the run.
    if (context.fallback_engaged ||
        record.tick_kind != platform::TickKind::kMissed) {
        run_ = 0;
        reported_this_run_ = false;
        return;
    }
    ++run_;
    if (run_ > max_run_ && !reported_this_run_) {
        reported_this_run_ = true;
        Report(context.cycle_index, record.time_s,
               StrFormat("control tick missed its deadline %d cycles in a "
                         "row (bound %d, last lateness %.2f s) without "
                         "degrading to the stock governors",
                         run_, max_run_, record.tick_lateness_s));
    }
}

// --- stale-actuation --------------------------------------------------------

StaleActuationMonitor::StaleActuationMonitor()
    : InvariantMonitor("stale-actuation")
{
}

void
StaleActuationMonitor::OnCycle(const CycleContext& context)
{
    const ControlCycleRecord& record = *context.record;
    // A cycle resuming after a suspend gap drained a perf window that
    // accumulated before the sleep — data epochs_skipped epochs old. The
    // controller must quarantine it (stale guard engaged, cycle degraded);
    // steering the actuation on it is the stale-actuation bug.
    if (record.tick_kind != platform::TickKind::kSuspendGap ||
        context.fallback_engaged) {
        return;
    }
    if (record.perf_samples > 0 && !record.stale_guard && !record.degraded) {
        Report(context.cycle_index, record.time_s,
               StrFormat("cycle resumed from a %.0f-epoch suspend gap "
                         "(lateness %.1f s) and actuated on the pre-suspend "
                         "perf window (%llu samples) — stale data older "
                         "than one epoch steered the loop",
                         static_cast<double>(record.epochs_skipped),
                         record.tick_lateness_s,
                         static_cast<unsigned long long>(
                             record.perf_samples)));
    }
}

std::vector<std::unique_ptr<InvariantMonitor>>
MakeDefaultMonitors(const MonitorConfig& config)
{
    std::vector<std::unique_ptr<InvariantMonitor>> monitors;
    monitors.push_back(std::make_unique<ThermalEnvelopeMonitor>(config));
    monitors.push_back(std::make_unique<QosViolationRunMonitor>(config));
    monitors.push_back(std::make_unique<ActuationConsistencyMonitor>(config));
    monitors.push_back(std::make_unique<StateLegalityMonitor>());
    monitors.push_back(std::make_unique<WatchdogLivenessMonitor>(config));
    monitors.push_back(std::make_unique<DeadlineMissRunMonitor>(config));
    monitors.push_back(std::make_unique<StaleActuationMonitor>());
    return monitors;
}

}  // namespace aeo::chaos
