#include "chaos/scenario_shrinker.h"

#include <algorithm>

#include "common/logging.h"

namespace aeo::chaos {

namespace {

/** The scenario with the actions at [begin, end) removed. */
ChaosScenario
WithoutRange(const ChaosScenario& scenario, size_t begin, size_t end)
{
    ChaosScenario candidate;
    candidate.seed = scenario.seed;
    candidate.actions.reserve(scenario.actions.size() - (end - begin));
    for (size_t i = 0; i < scenario.actions.size(); ++i) {
        if (i < begin || i >= end) {
            candidate.actions.push_back(scenario.actions[i]);
        }
    }
    return candidate;
}

}  // namespace

ShrinkResult
ShrinkScenario(const ChaosScenario& scenario, const ScenarioOracle& oracle)
{
    AEO_ASSERT(static_cast<bool>(oracle), "shrinker needs an oracle");

    ShrinkResult result;
    result.scenario = scenario;
    ++result.probes;
    result.failed_initially = oracle(scenario);
    if (!result.failed_initially) {
        return result;
    }

    // ddmin: remove chunks of size(current)/n while the failure survives;
    // refine the granularity when no chunk removal reproduces it.
    size_t n = 2;
    while (result.scenario.actions.size() >= 2) {
        const size_t size = result.scenario.actions.size();
        const size_t chunk = (size + n - 1) / n;
        bool reduced = false;
        for (size_t begin = 0; begin < size; begin += chunk) {
            const size_t end = std::min(begin + chunk, size);
            ChaosScenario candidate =
                WithoutRange(result.scenario, begin, end);
            ++result.probes;
            if (oracle(candidate)) {
                result.scenario = std::move(candidate);
                n = std::max<size_t>(n - 1, 2);
                reduced = true;
                break;
            }
        }
        if (!reduced) {
            if (n >= size) {
                break;  // 1-minimal: no single action is removable.
            }
            n = std::min(n * 2, size);
        }
    }
    return result;
}

}  // namespace aeo::chaos
