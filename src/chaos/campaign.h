/**
 * @file
 * The campaign runner: one seeded chaos campaign end to end.
 *
 * RunCampaign() builds a fresh simulated Nexus 6, launches the app,
 * attaches the online controller through the Platform seam, installs the
 * scenario's fault actions as timed events (FaultInjector rules appearing
 * and being repaired at their windows; msm_thermal threshold drops for
 * thermal-cap actions), wires the invariant-monitor catalogue into the
 * controller's cycle-observer hook, runs the campaign, and returns a
 * CampaignReport with per-monitor verdicts and the control-cycle tail.
 *
 * Everything is deterministic in (scenario, options): campaigns fan out
 * over BatchRunner workers and produce bit-identical reports at any
 * worker count.
 */
#ifndef AEO_CHAOS_CAMPAIGN_H_
#define AEO_CHAOS_CAMPAIGN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "chaos/invariant_monitor.h"
#include "chaos/scenario.h"
#include "core/online_controller.h"
#include "core/profile_table.h"
#include "kernel/msm_thermal.h"
#include "platform/platform.h"
#include "soc/thermal_model.h"

namespace aeo::chaos {

/** Everything a campaign run needs besides the scenario itself. */
struct CampaignOptions {
    /** Application under control (AppRegistry name). */
    std::string app = "AngryBirds";
    /** Clean offline profile of @p app (required; not owned). */
    const ProfileTable* table = nullptr;
    /** Performance target r (required, > 0). */
    double target_gips = 0.0;
    /** Device seed; 0 derives one from the scenario seed. */
    uint64_t device_seed = 0;
    /** Spec the scenario was generated under (campaign duration). */
    CampaignSpec spec;
    /** Invariant-monitor tuning. */
    MonitorConfig monitors;
    /** Controller tuning; target_gips is overridden from above. */
    ControllerConfig controller;
    /** Enable the thermal subsystem (required for kThermalCap actions). */
    bool enable_thermal = true;
    /** Thermal package and msm_thermal tuning used when enabled. */
    ThermalParams thermal;
    MsmThermalParams msm_thermal;
    /** Control-cycle records kept in the report (the crash-bundle tail). */
    size_t history_tail = 32;
    /**
     * Optional platform decorator for planted-bug fixtures: receives the
     * real SimPlatform and returns the platform the controller sees (see
     * platform_decorator.h). The returned object is kept alive for the
     * run. Null = the controller runs on the real platform.
     */
    std::function<std::unique_ptr<platform::Platform>(platform::Platform*)>
        decorate_platform;
};

/** One monitor's verdict over a campaign. */
struct MonitorVerdict {
    std::string monitor;
    uint64_t violations = 0;
    /** Cycle index of the first violation; -1 when clean. */
    int64_t first_violation_cycle = -1;
    double first_violation_time_s = 0.0;
    std::string first_message;
};

/** The outcome of one campaign run. */
struct CampaignReport {
    uint64_t seed = 0;
    uint64_t cycles = 0;
    bool fallback = false;
    uint64_t degraded_cycles = 0;
    uint64_t safe_mode_cycles = 0;
    uint64_t reengage_count = 0;
    uint64_t fault_events = 0;
    double energy_j = 0.0;
    double avg_gips = 0.0;
    /** Deadline accounting of the control tick (DESIGN.md §13). */
    uint64_t jitter_ticks = 0;
    uint64_t missed_ticks = 0;
    uint64_t suspend_gap_ticks = 0;
    /** Cycles whose measurement the stale-data guard quarantined. */
    uint64_t stale_guard_cycles = 0;
    /** One verdict per catalogue monitor, in catalogue order. */
    std::vector<MonitorVerdict> verdicts;
    uint64_t total_violations = 0;
    /** Earliest first-violation cycle across monitors; -1 when clean. */
    int64_t first_violation_cycle = -1;
    std::string first_violation_monitor;
    /** Last history_tail control-cycle records. */
    std::vector<ControlCycleRecord> cycle_tail;

    bool clean() const { return total_violations == 0; }
};

/** Verdict summary <-> JSON (shared with the crash bundle). */
JsonValue CampaignReportToJson(const CampaignReport& report);

/** Runs @p scenario under @p options. Deterministic. */
CampaignReport RunCampaign(const CampaignOptions& options,
                           const ChaosScenario& scenario);

}  // namespace aeo::chaos

#endif  // AEO_CHAOS_CAMPAIGN_H_
