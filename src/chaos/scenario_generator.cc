#include "chaos/scenario_generator.h"

#include <algorithm>
#include <cmath>

#include "chaos/chaos_rng.h"
#include "common/logging.h"

namespace aeo::chaos {

namespace {

double
Clamp01(double value)
{
    return std::min(1.0, std::max(0.0, value));
}

}  // namespace

ChaosScenario
GenerateScenario(const CampaignSpec& spec, uint64_t seed)
{
    AEO_ASSERT(spec.class_weights.size() ==
                   static_cast<size_t>(kFaultClassCount),
               "campaign spec needs one weight per fault class");
    ChaosRng rng(seed);
    ChaosScenario scenario;
    scenario.seed = seed;

    const double rate_per_s = spec.bursts_per_minute / 60.0;
    if (rate_per_s <= 0.0) {
        return scenario;
    }
    const double mean_gap_s = 1.0 / rate_per_s;

    double t = 0.0;
    while (static_cast<int>(scenario.actions.size()) < spec.max_actions) {
        // Burst arrival: jittered gaps with the configured mean. A textbook
        // exponential would call log(), whose last-ulp behaviour varies
        // across libms; bounded uniform jitter keeps the arithmetic exact
        // (mul/div only) so scenarios are bit-identical everywhere.
        t += (0.25 + 1.5 * rng.NextDouble()) * mean_gap_s;
        if (t >= spec.duration_s) {
            break;
        }

        double start = t;
        if (spec.phase_anchor_period_s > 0.0 &&
            rng.Bernoulli(spec.anchor_probability)) {
            // Snap to the nearest phase boundary: faults on real devices
            // arrive coupled to workload transitions, not uniformly.
            start = std::round(start / spec.phase_anchor_period_s) *
                    spec.phase_anchor_period_s;
            start = std::min(std::max(start, 0.0),
                             spec.duration_s - spec.min_duration_s);
        }

        const int count = rng.Bernoulli(spec.storm_probability)
                              ? spec.storm_size
                              : 1;
        for (int i = 0; i < count &&
                        static_cast<int>(scenario.actions.size()) <
                            spec.max_actions;
             ++i) {
            ScenarioAction action;
            action.cls = static_cast<FaultClass>(
                rng.WeightedIndex(spec.class_weights));
            // Storm members stagger slightly so their windows overlap but
            // their injector installs interleave.
            action.start_s =
                i == 0 ? start : start + rng.Uniform(0.0, 1.0);
            const double span = spec.duration_s - action.start_s;
            action.duration_s = std::min(
                rng.Uniform(spec.min_duration_s, spec.max_duration_s), span);
            if (action.duration_s <= 0.0) {
                continue;
            }
            const double ramp =
                spec.intensity_ramp * (action.start_s / spec.duration_s);
            action.intensity = Clamp01(spec.base_intensity + ramp +
                                       rng.Uniform(-0.05, 0.05));
            scenario.actions.push_back(action);
        }
    }

    std::stable_sort(scenario.actions.begin(), scenario.actions.end(),
                     [](const ScenarioAction& a, const ScenarioAction& b) {
                         return a.start_s < b.start_s;
                     });
    return scenario;
}

std::vector<ControllerEvent>
GenerateControllerEventStorm(uint64_t seed,
                             const StateMachineOptions& options, int length)
{
    ChaosRng rng(seed);
    ControllerStateMachine machine(options);
    std::vector<ControllerEvent> events;
    events.reserve(static_cast<size_t>(length));

    std::vector<ControllerEvent> legal;
    legal.reserve(kControllerEventCount);
    while (static_cast<int>(events.size()) < length) {
        legal.clear();
        for (int e = 0; e < kControllerEventCount; ++e) {
            const auto event = static_cast<ControllerEvent>(e);
            ControllerState next;
            if (ControllerStateMachine::ActionFor(machine.state(), event,
                                                  options, &next)) {
                legal.push_back(event);
            }
        }
        AEO_ASSERT(!legal.empty(), "state machine has a dead state");
        ControllerEvent pick =
            legal[static_cast<size_t>(rng.UniformInt(
                0, static_cast<int>(legal.size()) - 1))];
        // Bias toward the adversarial spine (mismatch/watchdog/probe): a
        // second draw replaces a tame pick half the time, when available.
        if (rng.Bernoulli(0.5)) {
            for (const ControllerEvent candidate :
                 {ControllerEvent::kActuationMismatch,
                  ControllerEvent::kWatchdogTrip,
                  ControllerEvent::kProbeFailed, ControllerEvent::kProbeOk}) {
                if (std::find(legal.begin(), legal.end(), candidate) !=
                        legal.end() &&
                    rng.Bernoulli(0.5)) {
                    pick = candidate;
                    break;
                }
            }
        }
        // kControlStopped parks the machine in the terminal state and the
        // storm would flatline; keep the walk alive unless it is the only
        // legal move.
        if (pick == ControllerEvent::kControlStopped && legal.size() > 1) {
            continue;
        }
        machine.Dispatch(pick);
        events.push_back(pick);
    }
    return events;
}

}  // namespace aeo::chaos
