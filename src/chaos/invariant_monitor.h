/**
 * @file
 * Runtime invariant monitors for chaos campaigns.
 *
 * A monitor is a passive observer of the control loop: the campaign runner
 * feeds it one CycleContext per completed control cycle (via the
 * controller's cycle-observer seam) and one FinishContext when the
 * campaign ends. A monitor never influences the run — it only records
 * violations, each with the cycle index and a human-readable context
 * message, so a failing campaign pinpoints *when* the property first broke
 * and the shrinker has a yes/no oracle to minimize against.
 *
 * The catalogue (DESIGN.md §12):
 *
 *  - thermal-envelope   — zone temperature never exceeds the configured
 *                         never-exceed limit.
 *  - qos-violation-run  — while the controller *believes* it is meeting the
 *                         target (not degraded/safe-mode/fallback), the
 *                         measured shortfall never persists longer than a
 *                         bounded run of cycles.
 *  - actuation-consistency — delivery read-backs are internally coherent:
 *                         never verified without a successful write, never
 *                         delivered *above* the requested level — and the
 *                         cap the controller planned against never stays
 *                         *above* the cap the kernel advertises for longer
 *                         than a short read/poll race.
 *  - state-legality     — the mode machine never counts an illegal
 *                         dispatch, and fallback_engaged() agrees with the
 *                         state being PROBE/FALLBACK_STOCK.
 *  - watchdog-liveness  — a watchdog fallback always eventually re-probes
 *                         the actuation path (degraded mode is never a
 *                         silent grave).
 *  - deadline-miss-run  — consecutive deadline-missed cycles stay bounded:
 *                         past the bound the controller must have degraded
 *                         to the stock governors instead of limping on.
 *  - stale-actuation    — no actuation is computed from performance data
 *                         older than one epoch: a cycle that resumed after
 *                         a suspend gap must quarantine its measurement
 *                         (stale guard / degraded), never steer on it.
 *
 * Every InvariantMonitor subclass must be registered in the monitor
 * catalogue test (tests/chaos/invariant_monitor_test.cc) — enforced by the
 * aeo-lint `monitor-catalogue` rule.
 */
#ifndef AEO_CHAOS_INVARIANT_MONITOR_H_
#define AEO_CHAOS_INVARIANT_MONITOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/controller_state_machine.h"
#include "core/online_controller.h"
#include "platform/actuation_types.h"
#include "platform/platform.h"

namespace aeo::chaos {

/** Everything a monitor may inspect about one completed control cycle. */
struct CycleContext {
    /** 0-based index of the completed cycle. */
    uint64_t cycle_index = 0;
    /** The cycle's record (non-null). */
    const ControlCycleRecord* record = nullptr;
    /** Delivery read-backs the cycle consumed (non-null, may be empty). */
    const std::vector<platform::DwellDelivery>* deliveries = nullptr;
    /** Mode machine state after the cycle. */
    ControllerState state = ControllerState::kNormal;
    /** Illegal-dispatch counter after the cycle. */
    uint64_t illegal_dispatches = 0;
    /** Controller's fallback flag after the cycle. */
    bool fallback_engaged = false;
    /** The performance target the controller regulates to. */
    double target_gips = 0.0;
    /** The platform's highest CPU level (cap sanity bound). */
    int max_cpu_level = 0;
    /**
     * Ground truth: the CPU cap the kernel actually advertises this cycle
     * (msm_thermal's staged cap), read by the harness outside the
     * controller's — possibly lying — platform seam. kNoCapLevel when the
     * device is thermally unconstrained or the harness has no independent
     * cap source (then the belief-divergence check stays quiet).
     */
    int true_cpu_cap_level = platform::kNoCapLevel;
    /** Configured control period, seconds (for lateness-derived checks). */
    double control_period_s = 0.0;
};

/** End-of-campaign summary for liveness-style invariants. */
struct FinishContext {
    uint64_t cycles = 0;
    bool fallback_engaged = false;
    bool reengage_enabled = false;
    /** Recovery probes of the actuation path over the whole run. */
    uint64_t probes = 0;
    uint64_t reengage_count = 0;
    /** Campaign length, seconds of simulated time. */
    double elapsed_s = 0.0;
    /** Configured probe period, seconds. */
    double probe_period_s = 0.0;
    /** Clock time the last fallback engaged, seconds; -1 when none. A
     * storm-triggered fallback aborts its cycle before the observer hook,
     * so OnCycle may never witness the engagement. */
    double fallback_time_s = -1.0;
};

/** One recorded invariant violation. */
struct Violation {
    uint64_t cycle = 0;
    double time_s = 0.0;
    std::string message;
};

/** Base class: violation bookkeeping shared by every monitor. */
class InvariantMonitor {
  public:
    explicit InvariantMonitor(std::string name) : name_(std::move(name)) {}
    virtual ~InvariantMonitor() = default;

    InvariantMonitor(const InvariantMonitor&) = delete;
    InvariantMonitor& operator=(const InvariantMonitor&) = delete;

    /** Stable monitor name (the catalogue key). */
    const std::string& name() const { return name_; }

    /** Inspects one completed control cycle. */
    virtual void OnCycle(const CycleContext& context) = 0;

    /** Inspects the finished campaign (liveness checks). */
    virtual void OnFinish(const FinishContext& context) { (void)context; }

    /** All recorded violations, in cycle order (capped at 64). */
    const std::vector<Violation>& violations() const { return violations_; }

    bool ok() const { return violations_.empty(); }

    /** Cycle of the first violation, or -1 when clean. */
    int64_t first_violation_cycle() const
    {
        return violations_.empty()
                   ? -1
                   : static_cast<int64_t>(violations_.front().cycle);
    }

  protected:
    /** Records a violation (silently dropped once the cap is reached). */
    void Report(uint64_t cycle, double time_s, std::string message);

  private:
    std::string name_;
    std::vector<Violation> violations_;
};

/** Tuning for the default monitor set. */
struct MonitorConfig {
    /** Never-exceed zone temperature, °C. */
    double thermal_limit_c = 55.0;
    /** Longest tolerated run of consecutive under-target cycles while the
     * controller believes it is meeting the target. */
    int max_qos_violation_run = 15;
    /** Relative shortfall below target counting as a QoS violation. */
    double qos_tolerance_frac = 0.25;
    /** Grace period (in probe periods) before a fallback with zero probes
     * counts as a liveness violation. */
    double liveness_grace_periods = 2.0;
    /**
     * Consecutive cycles the controller's believed CPU cap may sit above
     * the kernel's advertised cap before it counts as a feasible-set-mask
     * violation. The cap is polled mid-cycle and the ground truth read at
     * cycle end, so a staged descent legitimately diverges for a cycle or
     * two; a mask bug diverges for the whole throttled window.
     */
    int cap_belief_grace_cycles = 2;
    /**
     * Longest tolerated run of consecutive deadline-missed cycles without
     * the controller degrading to the stock governors. Must sit above the
     * controller's deadline_storm_threshold or healthy storms would be
     * flagged before the controller is allowed to react.
     */
    int max_deadline_miss_run = 6;
};

/** temp_c <= thermal_limit_c on every cycle. */
class ThermalEnvelopeMonitor final : public InvariantMonitor {
  public:
    explicit ThermalEnvelopeMonitor(const MonitorConfig& config);
    void OnCycle(const CycleContext& context) override;

  private:
    double limit_c_;
};

/** Bounded runs of measured shortfall while control claims to be healthy. */
class QosViolationRunMonitor final : public InvariantMonitor {
  public:
    explicit QosViolationRunMonitor(const MonitorConfig& config);
    void OnCycle(const CycleContext& context) override;

  private:
    int max_run_;
    double tolerance_frac_;
    int run_ = 0;
    bool reported_this_run_ = false;
};

/** Delivery read-backs are coherent; believed cap tracks the kernel's. */
class ActuationConsistencyMonitor final : public InvariantMonitor {
  public:
    explicit ActuationConsistencyMonitor(const MonitorConfig& config = {});
    void OnCycle(const CycleContext& context) override;

  private:
    int grace_cycles_;
    int divergence_run_ = 0;
    bool reported_divergence_ = false;
};

/** No illegal dispatches; fallback flag <=> PROBE/FALLBACK_STOCK. */
class StateLegalityMonitor final : public InvariantMonitor {
  public:
    StateLegalityMonitor();
    void OnCycle(const CycleContext& context) override;

  private:
    uint64_t last_illegal_ = 0;
};

/** A watchdog fallback always eventually re-probes. */
class WatchdogLivenessMonitor final : public InvariantMonitor {
  public:
    explicit WatchdogLivenessMonitor(const MonitorConfig& config);
    void OnCycle(const CycleContext& context) override;
    void OnFinish(const FinishContext& context) override;

  private:
    double grace_periods_;
    bool saw_fallback_ = false;
    uint64_t fallback_cycle_ = 0;
    double fallback_time_s_ = 0.0;
};

/** Bounded runs of missed deadlines: past the bound, control must yield. */
class DeadlineMissRunMonitor final : public InvariantMonitor {
  public:
    explicit DeadlineMissRunMonitor(const MonitorConfig& config);
    void OnCycle(const CycleContext& context) override;

  private:
    int max_run_;
    int run_ = 0;
    bool reported_this_run_ = false;
};

/** No actuation computed from perf data older than one epoch. */
class StaleActuationMonitor final : public InvariantMonitor {
  public:
    StaleActuationMonitor();
    void OnCycle(const CycleContext& context) override;
};

/** The full catalogue, one instance of each monitor. */
std::vector<std::unique_ptr<InvariantMonitor>> MakeDefaultMonitors(
    const MonitorConfig& config);

}  // namespace aeo::chaos

#endif  // AEO_CHAOS_INVARIANT_MONITOR_H_
