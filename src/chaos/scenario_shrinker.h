/**
 * @file
 * Automatic failure minimization: delta-debugs a failing chaos scenario
 * down to a minimal reproducing fault list.
 *
 * The shrinker is oracle-driven: the caller supplies a predicate that runs
 * a candidate scenario (typically RunCampaign + "any monitor violated?")
 * and the shrinker applies the classic ddmin strategy over the action
 * list — removing ever-finer chunks while the failure reproduces. The
 * result is 1-minimal per chunk granularity: removing any single surviving
 * action makes the failure disappear.
 *
 * Shrinking is fully deterministic: candidate order is a pure function of
 * the input scenario, so the same failing campaign always minimizes to the
 * same fault list with the same number of oracle probes.
 */
#ifndef AEO_CHAOS_SCENARIO_SHRINKER_H_
#define AEO_CHAOS_SCENARIO_SHRINKER_H_

#include <cstdint>
#include <functional>

#include "chaos/scenario.h"

namespace aeo::chaos {

/** Returns true when @p scenario still reproduces the failure. */
using ScenarioOracle = std::function<bool(const ChaosScenario&)>;

/** Outcome of a shrink run. */
struct ShrinkResult {
    /** The minimized scenario (== input when the input did not fail). */
    ChaosScenario scenario;
    /** Whether the *input* scenario failed the oracle at all. */
    bool failed_initially = false;
    /** Oracle invocations spent (including the initial check). */
    uint64_t probes = 0;
};

/**
 * Minimizes @p scenario against @p oracle with ddmin over the action list.
 *
 * The oracle must be deterministic; it is first consulted on the unmodified
 * scenario, and if that does not fail the input is returned untouched with
 * failed_initially = false.
 */
ShrinkResult ShrinkScenario(const ChaosScenario& scenario,
                            const ScenarioOracle& oracle);

}  // namespace aeo::chaos

#endif  // AEO_CHAOS_SCENARIO_SHRINKER_H_
