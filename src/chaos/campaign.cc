#include "chaos/campaign.h"

#include <algorithm>
#include <utility>

#include "apps/app_registry.h"
#include "chaos/timing_fault.h"
#include "common/logging.h"
#include "common/strings.h"
#include "device/device.h"
#include "kernel/msm_thermal.h"
#include "kernel/perf_tool.h"
#include "power/monsoon.h"
#include "platform/sim_platform.h"
#include "sim/simulator.h"

namespace aeo::chaos {

namespace {

/** What installing one ScenarioAction means at the injector level. */
struct ActionRules {
    std::vector<FaultRule> rules;
    /** Prefixes whose latched state the action's end heals. */
    std::vector<std::string> repair_prefixes;
};

ActionRules
RulesFor(FaultClass cls, double intensity)
{
    ActionRules out;
    switch (cls) {
    case FaultClass::kActuationBusy: {
        FaultRule busy;
        busy.path_prefix = kCpufreqSysfsRoot;
        busy.fail_probability = 0.6 * intensity;
        busy.errc = FaultErrc::kBusy;
        busy.latency_spike_probability = 0.3 * intensity;
        out.rules.push_back(busy);
        busy.path_prefix = kDevfreqSysfsRoot;
        out.rules.push_back(busy);
        break;
    }
    case FaultClass::kActuationSticky: {
        FaultRule sticky;
        sticky.path_prefix =
            std::string(kCpufreqSysfsRoot) + "/scaling_setspeed";
        sticky.fail_probability = 0.5 * intensity;
        sticky.errc = FaultErrc::kIo;
        sticky.duration = FaultDuration::kSticky;
        out.repair_prefixes.push_back(sticky.path_prefix);
        out.rules.push_back(std::move(sticky));
        break;
    }
    case FaultClass::kSilentClamp: {
        FaultRule clamp;
        clamp.path_prefix = kCpufreqSysfsRoot;
        clamp.silent_clamp_probability = 0.7 * intensity;
        clamp.silent_clamp_factor = 0.5;
        out.rules.push_back(std::move(clamp));
        break;
    }
    case FaultClass::kPmuDrop: {
        FaultRule pmu;
        pmu.path_prefix = kPmuFaultPath;
        pmu.fail_probability = 0.8 * intensity;
        pmu.errc = FaultErrc::kIo;
        pmu.stale_probability = 0.4 * intensity;
        out.rules.push_back(std::move(pmu));
        break;
    }
    case FaultClass::kMeterDrop: {
        FaultRule meter;
        meter.path_prefix = kMonsoonFaultPath;
        meter.fail_probability = 0.8 * intensity;
        meter.errc = FaultErrc::kIo;
        out.rules.push_back(std::move(meter));
        break;
    }
    case FaultClass::kPathDisappear: {
        FaultRule gone;
        gone.path_prefix = kDevfreqSysfsRoot;
        gone.disappear_probability = 0.2 * intensity;
        gone.max_triggers = 1;
        out.repair_prefixes.push_back(gone.path_prefix);
        out.rules.push_back(std::move(gone));
        break;
    }
    case FaultClass::kThermalCap:
        // Handled by a temp_threshold write, not injector rules.
        break;
    case FaultClass::kTickJitterStorm:
    case FaultClass::kTickOverrun:
    case FaultClass::kSuspendResume:
    case FaultClass::kClockSkew:
        // Timing classes act on the platform time seam, not the injector
        // (see timing_fault.h); the campaign wires them separately.
        break;
    }
    return out;
}

JsonValue
CycleRecordToJson(const ControlCycleRecord& record)
{
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("time_s", record.time_s);
    entry.Set("measured_gips", record.measured_gips);
    entry.Set("required_speedup", record.required_speedup);
    entry.Set("base_speed_estimate", record.base_speed_estimate);
    entry.Set("temp_c", record.temp_c);
    entry.Set("cpu_cap_level", record.cpu_cap_level);
    entry.Set("degraded", record.degraded);
    entry.Set("safe_mode", record.safe_mode);
    entry.Set("measured_power_mw", record.measured_power_mw.value());
    entry.Set("perf_samples", record.perf_samples);
    entry.Set("tick_kind", platform::TickKindName(record.tick_kind));
    entry.Set("tick_lateness_s", record.tick_lateness_s);
    entry.Set("epochs_skipped", record.epochs_skipped);
    entry.Set("stale_guard", record.stale_guard);
    return entry;
}

}  // namespace

JsonValue
CampaignReportToJson(const CampaignReport& report)
{
    JsonValue doc = JsonValue::MakeObject();
    doc.Set("seed", SeedToJson(report.seed));
    doc.Set("cycles", report.cycles);
    doc.Set("fallback", report.fallback);
    doc.Set("degraded_cycles", report.degraded_cycles);
    doc.Set("safe_mode_cycles", report.safe_mode_cycles);
    doc.Set("reengage_count", report.reengage_count);
    doc.Set("fault_events", report.fault_events);
    doc.Set("energy_j", report.energy_j);
    doc.Set("avg_gips", report.avg_gips);
    doc.Set("jitter_ticks", report.jitter_ticks);
    doc.Set("missed_ticks", report.missed_ticks);
    doc.Set("suspend_gap_ticks", report.suspend_gap_ticks);
    doc.Set("stale_guard_cycles", report.stale_guard_cycles);
    JsonValue verdicts = JsonValue::MakeArray();
    for (const MonitorVerdict& verdict : report.verdicts) {
        JsonValue entry = JsonValue::MakeObject();
        entry.Set("monitor", verdict.monitor);
        entry.Set("violations", verdict.violations);
        entry.Set("first_violation_cycle", verdict.first_violation_cycle);
        entry.Set("first_violation_time_s", verdict.first_violation_time_s);
        entry.Set("first_message", verdict.first_message);
        verdicts.Append(std::move(entry));
    }
    doc.Set("verdicts", std::move(verdicts));
    doc.Set("total_violations", report.total_violations);
    doc.Set("first_violation_cycle", report.first_violation_cycle);
    doc.Set("first_violation_monitor", report.first_violation_monitor);
    JsonValue tail = JsonValue::MakeArray();
    for (const ControlCycleRecord& record : report.cycle_tail) {
        tail.Append(CycleRecordToJson(record));
    }
    doc.Set("cycle_tail", std::move(tail));
    return doc;
}

CampaignReport
RunCampaign(const CampaignOptions& options, const ChaosScenario& scenario)
{
    AEO_ASSERT(options.table != nullptr, "campaign needs a profile table");
    AEO_ASSERT(options.target_gips > 0.0, "campaign needs a target");

    // The device carries one benign sentinel rule so the fault injector
    // exists for runtime rule installation; it matches no real path and
    // draws nothing, keeping the action-free campaign bit-identical to a
    // fault-free run.
    DeviceConfig device_config;
    device_config.seed = options.device_seed != 0
                             ? options.device_seed
                             : scenario.seed ^ 0x5eedc0de5eedc0deull;
    FaultRule sentinel;
    sentinel.path_prefix = "/chaos/sentinel";
    device_config.fault_rules = {sentinel};
    Device device(device_config);
    device.LaunchApp(MakeAppSpecByName(options.app));
    if (options.enable_thermal) {
        device.EnableThermal(options.thermal, options.msm_thermal);
    }

    platform::SimPlatform sim_platform(&device);
    std::unique_ptr<platform::Platform> decorated;
    platform::Platform* plat = &sim_platform;
    if (options.decorate_platform) {
        decorated = options.decorate_platform(&sim_platform);
        AEO_ASSERT(decorated != nullptr, "platform decorator returned null");
        plat = decorated.get();
    }

    ControllerConfig controller_config = options.controller;
    controller_config.target_gips = options.target_gips;

    // Timing-class actions wrap the platform's time seam, outermost so a
    // planted-bug fixture decorator underneath still sees perturbed time.
    TimingFaultPlan timing_plan = ExtractTimingPlan(
        scenario, controller_config.control_cycle.seconds());
    std::unique_ptr<TimingFaultPlatform> timing_platform;
    if (!timing_plan.empty()) {
        timing_platform = std::make_unique<TimingFaultPlatform>(
            plat, std::move(timing_plan));
        plat = timing_platform.get();
    }

    OnlineController controller(plat, *options.table, controller_config);

    // --- Monitors on the cycle-observer seam ------------------------------
    std::vector<std::unique_ptr<InvariantMonitor>> monitors =
        MakeDefaultMonitors(options.monitors);
    uint64_t cycle_index = 0;
    controller.AddCycleObserver(
        [&](const ControlCycleRecord& record,
            const std::vector<platform::DwellDelivery>& deliveries) {
            CycleContext context;
            context.cycle_index = cycle_index++;
            context.record = &record;
            context.deliveries = &deliveries;
            context.state = controller.state();
            context.illegal_dispatches =
                controller.machine().illegal_dispatch_count();
            context.fallback_engaged = controller.fallback_engaged();
            context.target_gips = options.target_gips;
            context.max_cpu_level = plat->max_cpu_level();
            context.control_period_s =
                controller_config.control_cycle.seconds();
            // Ground-truth cap, read from the driver itself rather than
            // through the (decoratable, possibly lying) platform seam. Only
            // meaningful when the controller reads caps at all.
            if (controller_config.readback_verification &&
                device.msm_thermal() != nullptr) {
                context.true_cpu_cap_level = device.msm_thermal()->cap_level();
            }
            for (const auto& monitor : monitors) {
                monitor->OnCycle(context);
            }
        });

    // --- Scenario actions as timed events ---------------------------------
    FaultInjector* injector = device.fault_injector();
    AEO_ASSERT(injector != nullptr, "sentinel rule must attach the injector");
    const std::string threshold_path =
        std::string(kMsmThermalSysfsRoot) + "/temp_threshold";
    // Rule handles installed per action, consumed by the removal event.
    // shared_ptr: both scheduled closures outlive this frame.
    for (const ScenarioAction& action : scenario.actions) {
        if (IsTimingClass(action.cls)) {
            continue;  // Installed through the TimingFaultPlatform above.
        }
        if (action.cls == FaultClass::kThermalCap) {
            if (!options.enable_thermal) {
                continue;
            }
            auto saved = std::make_shared<std::string>();
            device.sim().ScheduleAt(
                SimTime::FromSecondsF(action.start_s), [&device, saved,
                                                       threshold_path,
                                                       action] {
                    const SysfsReadResult original =
                        device.sysfs().TryRead(threshold_path);
                    *saved = original.ok() ? Trim(original.value) : "";
                    // Drop the trip point below the idle die temperature so
                    // the driver stages a genuine frequency cap.
                    const int threshold_c =
                        static_cast<int>(40.0 - 20.0 * action.intensity);
                    device.sysfs().TryWrite(threshold_path,
                                            StrFormat("%d", threshold_c));
                });
            device.sim().ScheduleAt(
                SimTime::FromSecondsF(action.start_s + action.duration_s),
                [&device, saved, threshold_path] {
                    if (!saved->empty()) {
                        device.sysfs().TryWrite(threshold_path, *saved);
                    }
                });
            continue;
        }
        ActionRules rules = RulesFor(action.cls, action.intensity);
        if (rules.rules.empty()) {
            continue;
        }
        auto handles = std::make_shared<std::vector<int>>();
        auto shared_rules =
            std::make_shared<std::vector<FaultRule>>(std::move(rules.rules));
        auto repair = std::make_shared<std::vector<std::string>>(
            std::move(rules.repair_prefixes));
        device.sim().ScheduleAt(SimTime::FromSecondsF(action.start_s),
                                [injector, handles, shared_rules] {
                                    for (const FaultRule& rule :
                                         *shared_rules) {
                                        handles->push_back(
                                            injector->AddRule(rule));
                                    }
                                });
        device.sim().ScheduleAt(
            SimTime::FromSecondsF(action.start_s + action.duration_s),
            [injector, handles, repair] {
                for (const int handle : *handles) {
                    injector->RemoveRule(handle);
                }
                for (const std::string& prefix : *repair) {
                    injector->RepairPrefix(prefix);
                }
            });
    }

    // --- Run ---------------------------------------------------------------
    controller.Start();
    device.RunFor(SimTime::FromSecondsF(options.spec.duration_s));
    controller.Stop();

    FinishContext finish;
    finish.cycles = controller.cycle_count();
    finish.fallback_engaged = controller.fallback_engaged();
    finish.reengage_enabled = controller_config.reengage;
    finish.probes = controller.actuator().stats().probes;
    finish.reengage_count = controller.reengage_count();
    finish.elapsed_s = options.spec.duration_s;
    finish.probe_period_s = controller_config.control_cycle.seconds() *
                            controller_config.reengage_probe_cycles;
    finish.fallback_time_s = controller.last_fallback_time_s();
    for (const auto& monitor : monitors) {
        monitor->OnFinish(finish);
    }

    // --- Report ------------------------------------------------------------
    const RunResult result = device.CollectResult("chaos");
    CampaignReport report;
    report.seed = scenario.seed;
    report.cycles = controller.cycle_count();
    report.fallback = controller.fallback_engaged();
    report.degraded_cycles = controller.degraded_cycle_count();
    report.safe_mode_cycles = controller.safe_mode_cycle_count();
    report.reengage_count = controller.reengage_count();
    report.fault_events = injector->trace().size();
    report.energy_j = result.energy_j;
    report.avg_gips = result.avg_gips;
    report.jitter_ticks =
        static_cast<uint64_t>(controller.deadline_stats().jitter);
    report.missed_ticks =
        static_cast<uint64_t>(controller.deadline_stats().missed);
    report.suspend_gap_ticks =
        static_cast<uint64_t>(controller.deadline_stats().suspend_gaps);
    report.stale_guard_cycles = controller.stale_guard_cycle_count();
    for (const auto& monitor : monitors) {
        MonitorVerdict verdict;
        verdict.monitor = monitor->name();
        verdict.violations = monitor->violations().size();
        verdict.first_violation_cycle = monitor->first_violation_cycle();
        if (!monitor->violations().empty()) {
            verdict.first_violation_time_s =
                monitor->violations().front().time_s;
            verdict.first_message = monitor->violations().front().message;
        }
        report.total_violations += verdict.violations;
        if (verdict.first_violation_cycle >= 0 &&
            (report.first_violation_cycle < 0 ||
             verdict.first_violation_cycle < report.first_violation_cycle)) {
            report.first_violation_cycle = verdict.first_violation_cycle;
            report.first_violation_monitor = verdict.monitor;
        }
        report.verdicts.push_back(std::move(verdict));
    }
    const std::vector<ControlCycleRecord>& history = controller.history();
    const size_t tail =
        std::min(options.history_tail, history.size());
    report.cycle_tail.assign(history.end() - static_cast<long>(tail),
                             history.end());
    return report;
}

}  // namespace aeo::chaos
