#include "chaos/timing_fault.h"

#include <algorithm>
#include <utility>

namespace aeo::chaos {

namespace {

/** How far the clock can drift forward across one full skew window, in
 * control periods at intensity 1. */
constexpr double kSkewPeriodsPerWindow = 2.0;
/** Worst-case jitter delay at intensity 1, in control periods. */
constexpr double kJitterPeriods = 1.5;
/** Fixed overrun delay at intensity 1, in control periods. */
constexpr double kOverrunPeriods = 0.8;

/** splitmix64: cheap, stdlib-free, identical everywhere. */
uint64_t
Mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** 53-bit uniform in [0, 1) from a hash. */
double
U01(uint64_t x)
{
    return static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0);
}

/** Fraction of the action's window elapsed at time @p t_s, in [0, 1]. */
double
WindowProgress(const ScenarioAction& action, double t_s)
{
    if (action.duration_s <= 0.0) {
        return t_s >= action.start_s ? 1.0 : 0.0;
    }
    const double raw = (t_s - action.start_s) / action.duration_s;
    return std::clamp(raw, 0.0, 1.0);
}

bool
InWindow(const ScenarioAction& action, double t_s)
{
    return t_s >= action.start_s && t_s < action.start_s + action.duration_s;
}

}  // namespace

bool
IsTimingClass(FaultClass cls)
{
    switch (cls) {
    case FaultClass::kTickJitterStorm:
    case FaultClass::kTickOverrun:
    case FaultClass::kSuspendResume:
    case FaultClass::kClockSkew:
        return true;
    default:
        return false;
    }
}

TimingFaultPlan
ExtractTimingPlan(const ChaosScenario& scenario, double period_hint_s)
{
    TimingFaultPlan plan;
    plan.seed = scenario.seed;
    plan.period_hint_s = period_hint_s;
    for (const ScenarioAction& action : scenario.actions) {
        if (IsTimingClass(action.cls)) {
            plan.actions.push_back(action);
        }
    }
    return plan;
}

TimingFaultPlatform::TimingFaultPlatform(platform::Platform* inner,
                                         TimingFaultPlan plan)
    : ForwardingPlatform(inner),
      plan_(std::move(plan)),
      clock_(&inner->clock(), &plan_),
      scheduler_(&inner->ticks(), &plan_)
{
}

SimTime
TimingFaultPlatform::SkewedClock::Now()
{
    const SimTime base = base_->Now();
    const double t_s = base.seconds();
    double skew_s = 0.0;
    for (const ScenarioAction& action : plan_->actions) {
        if (action.cls != FaultClass::kClockSkew) {
            continue;
        }
        skew_s += action.intensity * kSkewPeriodsPerWindow *
                  plan_->period_hint_s * WindowProgress(action, t_s);
    }
    const SimTime candidate = base + SimTime::FromSecondsF(skew_s);
    last_ = std::max(last_, candidate);
    return last_;
}

platform::TickHandle
TimingFaultPlatform::PerturbedScheduler::ScheduleTick(SimTime when,
                                                      std::function<void()> fn)
{
    const double t_s = when.seconds();
    const double period_s = plan_->period_hint_s;
    double delay_s = 0.0;
    double suspend_floor_s = 0.0;
    for (size_t i = 0; i < plan_->actions.size(); ++i) {
        const ScenarioAction& action = plan_->actions[i];
        if (!InWindow(action, t_s)) {
            continue;
        }
        switch (action.cls) {
        case FaultClass::kTickJitterStorm: {
            // Per-tick uniform delay, keyed to (seed, deadline, action) so a
            // replay — at any worker count — draws the same lateness.
            const uint64_t h = Mix64(plan_->seed ^
                                     Mix64(static_cast<uint64_t>(when.micros())
                                           << 8 |
                                           static_cast<uint64_t>(i)));
            delay_s += U01(h) * action.intensity * kJitterPeriods * period_s;
            break;
        }
        case FaultClass::kTickOverrun:
            delay_s += action.intensity * kOverrunPeriods * period_s;
            break;
        case FaultClass::kSuspendResume:
            // The SoC sleeps through the rest of the window; the tick is
            // delivered at resume.
            suspend_floor_s = std::max(suspend_floor_s,
                                       action.start_s + action.duration_s);
            break;
        case FaultClass::kClockSkew:
            break;  // Acts on the clock, not tick delivery.
        default:
            break;
        }
    }
    SimTime deliver = when + SimTime::FromSecondsF(delay_s);
    deliver = std::max(deliver, SimTime::FromSecondsF(suspend_floor_s));
    return base_->ScheduleTick(deliver, std::move(fn));
}

}  // namespace aeo::chaos
