/**
 * @file
 * Timing fault injection over the platform time seam. The four timing
 * fault classes perturb *when* the control loop runs rather than *what*
 * the platform reports: TimingFaultPlatform wraps an inner platform and
 * substitutes a skewed Clock and a tick scheduler that delivers ticks
 * late (jitter storms, handler overruns) or defers them wholesale past a
 * suspend window. Everything is a pure function of (plan, tick deadline),
 * hashed with a hand-rolled splitmix64 — no libc RNG — so a scenario
 * replays bit-identically across processes and worker counts.
 */
#ifndef AEO_CHAOS_TIMING_FAULT_H_
#define AEO_CHAOS_TIMING_FAULT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "chaos/platform_decorator.h"
#include "chaos/scenario.h"
#include "platform/clock.h"
#include "sim/time.h"

namespace aeo::chaos {

/** True for the fault classes that act on the time seam. */
bool IsTimingClass(FaultClass cls);

/** The timing-class slice of a scenario, with the scale its delays use. */
struct TimingFaultPlan {
    /** Scenario seed; salts the per-tick jitter hash. */
    uint64_t seed = 0;
    /** Control period the delay magnitudes scale with, seconds. */
    double period_hint_s = 2.0;
    /** Timing-class actions only, in scenario order. */
    std::vector<ScenarioAction> actions;

    bool empty() const { return actions.empty(); }
};

/** Extracts the timing-class actions of @p scenario. */
TimingFaultPlan ExtractTimingPlan(const ChaosScenario& scenario,
                                  double period_hint_s);

/**
 * Platform decorator applying a TimingFaultPlan. Non-timing seams forward
 * untouched; clock() gains a forward-only skew inside kClockSkew windows
 * and ticks() delivers late inside jitter/overrun/suspend windows. An
 * empty plan forwards everything verbatim.
 */
class TimingFaultPlatform final : public ForwardingPlatform {
  public:
    TimingFaultPlatform(platform::Platform* inner, TimingFaultPlan plan);

    platform::Clock& clock() override { return clock_; }
    platform::TickScheduler& ticks() override { return scheduler_; }

  private:
    /** Inner clock plus the plan's accumulated forward skew; monotonic by
     * construction (the skew only grows with inner time) and clamped to be
     * safe against a perturbed inner clock. */
    class SkewedClock final : public platform::Clock {
      public:
        SkewedClock(platform::Clock* base, const TimingFaultPlan* plan)
            : base_(base), plan_(plan)
        {
        }
        SimTime Now() override;

      private:
        platform::Clock* base_;
        const TimingFaultPlan* plan_;
        SimTime last_ = SimTime::Zero();
    };

    /** Delays each tick by the plan's verdict for its deadline. */
    class PerturbedScheduler final : public platform::TickScheduler {
      public:
        PerturbedScheduler(platform::TickScheduler* base,
                           const TimingFaultPlan* plan)
            : base_(base), plan_(plan)
        {
        }
        platform::TickHandle ScheduleTick(SimTime when,
                                          std::function<void()> fn) override;
        void CancelTick(platform::TickHandle handle) override
        {
            base_->CancelTick(handle);
        }

      private:
        platform::TickScheduler* base_;
        const TimingFaultPlan* plan_;
    };

    TimingFaultPlan plan_;
    SkewedClock clock_;
    PerturbedScheduler scheduler_;
};

}  // namespace aeo::chaos

#endif  // AEO_CHAOS_TIMING_FAULT_H_
