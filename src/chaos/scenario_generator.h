/**
 * @file
 * Deterministic scenario generation: (CampaignSpec, seed) -> ChaosScenario.
 *
 * The generator models how real devices actually fail (correlated, not
 * i.i.d.): faults arrive in bursts whose times follow a seeded Poisson-ish
 * process, a burst may be a *storm* of several distinct classes sharing one
 * window, burst starts can snap to application phase boundaries, and the
 * overall intensity ramps over the campaign to model slow degradation.
 * Identical (spec, seed) pairs produce byte-identical scenarios on every
 * platform — the property the whole chaos pipeline (shrinking, crash
 * bundles, CI smoke) rests on.
 */
#ifndef AEO_CHAOS_SCENARIO_GENERATOR_H_
#define AEO_CHAOS_SCENARIO_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "chaos/scenario.h"
#include "core/controller_state_machine.h"

namespace aeo::chaos {

/** Generates the scenario @p seed implies under @p spec. Deterministic. */
ChaosScenario GenerateScenario(const CampaignSpec& spec, uint64_t seed);

/**
 * A chaos-shaped event sequence for ControllerStateMachine property tests:
 * a seeded random walk of @p length events where each step is drawn from
 * the events ActionFor() declares legal in the current state (so a correct
 * machine must accept every step), biased toward the adversarial cycle of
 * mismatch -> clamp -> watchdog -> probe. Deterministic in @p seed.
 */
std::vector<ControllerEvent> GenerateControllerEventStorm(
    uint64_t seed, const StateMachineOptions& options, int length);

}  // namespace aeo::chaos

#endif  // AEO_CHAOS_SCENARIO_GENERATOR_H_
