#include "chaos/crash_bundle.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "chaos/scenario.h"
#include "common/strings.h"

namespace aeo::chaos {

namespace {

/**
 * Parses the verdict summary back out of a bundle. The cycle tail is kept
 * for humans and is not re-materialized: a replay recomputes its own tail
 * and compares verdicts, not history.
 */
CampaignReport
ReportFromJson(const JsonValue& json)
{
    CampaignReport report;
    report.seed =
        json.Has("seed") ? SeedFromJson(json.At("seed")) : 0;
    report.cycles = static_cast<uint64_t>(json.GetDouble("cycles", 0.0));
    report.fallback = json.GetBool("fallback", false);
    report.degraded_cycles =
        static_cast<uint64_t>(json.GetDouble("degraded_cycles", 0.0));
    report.safe_mode_cycles =
        static_cast<uint64_t>(json.GetDouble("safe_mode_cycles", 0.0));
    report.reengage_count =
        static_cast<uint64_t>(json.GetDouble("reengage_count", 0.0));
    report.fault_events =
        static_cast<uint64_t>(json.GetDouble("fault_events", 0.0));
    report.energy_j = json.GetDouble("energy_j", 0.0);
    report.avg_gips = json.GetDouble("avg_gips", 0.0);
    report.total_violations =
        static_cast<uint64_t>(json.GetDouble("total_violations", 0.0));
    report.first_violation_cycle =
        static_cast<int64_t>(json.GetDouble("first_violation_cycle", -1.0));
    report.first_violation_monitor =
        json.GetString("first_violation_monitor", "");
    if (json.Has("verdicts") && json.At("verdicts").is_array()) {
        for (const JsonValue& entry : json.At("verdicts").items()) {
            MonitorVerdict verdict;
            verdict.monitor = entry.GetString("monitor", "");
            verdict.violations =
                static_cast<uint64_t>(entry.GetDouble("violations", 0.0));
            verdict.first_violation_cycle = static_cast<int64_t>(
                entry.GetDouble("first_violation_cycle", -1.0));
            verdict.first_violation_time_s =
                entry.GetDouble("first_violation_time_s", 0.0);
            verdict.first_message = entry.GetString("first_message", "");
            report.verdicts.push_back(std::move(verdict));
        }
    }
    return report;
}

}  // namespace

JsonValue
CrashBundleToJson(const CrashBundle& bundle)
{
    JsonValue doc = JsonValue::MakeObject();
    doc.Set("version", bundle.version);
    doc.Set("app", bundle.app);
    doc.Set("target_gips", bundle.target_gips);
    doc.Set("profile_seed", SeedToJson(bundle.profile_seed));
    doc.Set("profile_runs", bundle.profile_runs);
    doc.Set("device_seed", SeedToJson(bundle.device_seed));
    doc.Set("enable_thermal", bundle.enable_thermal);
    doc.Set("readback_verification", bundle.readback_verification);
    doc.Set("cap_confirm_cycles", bundle.cap_confirm_cycles);
    doc.Set("reengage", bundle.reengage);
    doc.Set("spec", CampaignSpecToJson(bundle.spec));
    doc.Set("scenario", ScenarioToJson(bundle.scenario));
    doc.Set("report", CampaignReportToJson(bundle.report));
    return doc;
}

CrashBundleReadResult
ParseCrashBundle(const std::string& text)
{
    CrashBundleReadResult result;
    const JsonParseResult parsed = ParseJson(text);
    if (!parsed.ok) {
        result.error = "bundle JSON: " + parsed.error;
        return result;
    }
    const JsonValue& doc = parsed.value;
    if (!doc.is_object()) {
        result.error = "bundle root is not an object";
        return result;
    }
    const int version =
        static_cast<int>(doc.GetDouble("version", 0.0));
    if (version != kCrashBundleVersion) {
        result.error = StrFormat("unsupported bundle version %d (want %d)",
                                 version, kCrashBundleVersion);
        return result;
    }
    CrashBundle& bundle = result.bundle;
    bundle.version = version;
    bundle.app = doc.GetString("app", "");
    if (bundle.app.empty()) {
        result.error = "bundle has no app";
        return result;
    }
    bundle.target_gips = doc.GetDouble("target_gips", 0.0);
    if (bundle.target_gips <= 0.0) {
        result.error = "bundle target_gips must be positive";
        return result;
    }
    bundle.profile_seed =
        doc.Has("profile_seed") ? SeedFromJson(doc.At("profile_seed")) : 0;
    bundle.profile_runs =
        static_cast<int>(doc.GetDouble("profile_runs", 1.0));
    bundle.device_seed =
        doc.Has("device_seed") ? SeedFromJson(doc.At("device_seed")) : 0;
    if (bundle.device_seed == 0) {
        result.error = "bundle device_seed must be non-zero";
        return result;
    }
    bundle.enable_thermal = doc.GetBool("enable_thermal", true);
    bundle.readback_verification =
        doc.GetBool("readback_verification", true);
    bundle.cap_confirm_cycles =
        static_cast<int>(doc.GetDouble("cap_confirm_cycles", 2.0));
    bundle.reengage = doc.GetBool("reengage", true);
    std::string error;
    if (!doc.Has("spec") ||
        !CampaignSpecFromJson(doc.At("spec"), &bundle.spec, &error)) {
        result.error = "bundle spec: " + (error.empty() ? "missing" : error);
        return result;
    }
    if (!doc.Has("scenario") ||
        !ScenarioFromJson(doc.At("scenario"), &bundle.scenario, &error)) {
        result.error =
            "bundle scenario: " + (error.empty() ? "missing" : error);
        return result;
    }
    if (doc.Has("report")) {
        bundle.report = ReportFromJson(doc.At("report"));
    }
    result.ok = true;
    return result;
}

bool
WriteCrashBundle(const std::string& path, const CrashBundle& bundle)
{
    std::ofstream out(path);
    if (!out) {
        return false;
    }
    out << CrashBundleToJson(bundle).Dump(2) << "\n";
    return static_cast<bool>(out);
}

CrashBundleReadResult
ReadCrashBundle(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        CrashBundleReadResult result;
        result.error = "cannot open " + path;
        return result;
    }
    std::ostringstream text;
    text << in.rdbuf();
    return ParseCrashBundle(text.str());
}

}  // namespace aeo::chaos
