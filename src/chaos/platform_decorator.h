/**
 * @file
 * A forwarding Platform decorator: passes every interface call through to
 * an inner Platform untouched. Chaos tests subclass it to plant a bug in
 * exactly one seam — e.g. a Thermals wrapper whose ReadCpuCapLevel()
 * off-by-ones the feasible-set mask — while everything else behaves like
 * the real platform, which is what makes a campaign's verdict attributable
 * to the planted defect alone.
 */
#ifndef AEO_CHAOS_PLATFORM_DECORATOR_H_
#define AEO_CHAOS_PLATFORM_DECORATOR_H_

#include "platform/clock.h"
#include "platform/platform.h"

namespace aeo::chaos {

/** Forwards everything to @p inner (which must outlive the decorator). */
class ForwardingPlatform : public platform::Platform {
  public:
    explicit ForwardingPlatform(platform::Platform* inner) : inner_(inner) {}

    Simulator& sim() override { return inner_->sim(); }
    platform::Clock& clock() override { return inner_->clock(); }
    platform::TickScheduler& ticks() override { return inner_->ticks(); }
    platform::PerfReader& perf() override { return inner_->perf(); }
    platform::Actuator& actuator() override { return inner_->actuator(); }
    platform::GovernorControl& governors() override
    {
        return inner_->governors();
    }
    platform::Thermals& thermals() override { return inner_->thermals(); }
    int max_cpu_level() const override { return inner_->max_cpu_level(); }
    void SetControllerOverheadPower(double mw) override
    {
        inner_->SetControllerOverheadPower(mw);
    }
    void Sync() override { inner_->Sync(); }

  protected:
    platform::Platform* inner() { return inner_; }

  private:
    platform::Platform* inner_;
};

}  // namespace aeo::chaos

#endif  // AEO_CHAOS_PLATFORM_DECORATOR_H_
