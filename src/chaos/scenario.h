/**
 * @file
 * The chaos scenario model: what a campaign injects, as plain data.
 *
 * A ChaosScenario is a list of timed ScenarioActions, each one fault class
 * active over [start_s, start_s + duration_s) at a given intensity. The
 * classes map onto the repo's real failure seams — FaultInjector rules on
 * the sysfs/PMU/meter paths and the msm_thermal temperature threshold — so
 * a scenario perturbs the device exactly the way the hand-written
 * robustness benches do, but compositionally and under generator control.
 *
 * Scenarios and campaign specs round-trip through JSON (common/json.h) so
 * a failing scenario can be shrunk, written into a crash bundle, and
 * replayed bit-identically in another process.
 */
#ifndef AEO_CHAOS_SCENARIO_H_
#define AEO_CHAOS_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"

namespace aeo::chaos {

/** One family of injected failure, keyed to a platform seam. */
enum class FaultClass {
    /** Transient EBUSY + latency spikes on cpufreq/devfreq writes. */
    kActuationBusy,
    /** Sticky EIO latching the cpufreq setspeed node until repaired. */
    kActuationSticky,
    /** Writes that report success but apply a clamped-down frequency. */
    kSilentClamp,
    /** Dropped and stale PMU (instruction counter) reads. */
    kPmuDrop,
    /** Missed power-meter sample windows. */
    kMeterDrop,
    /** Hotplug-style disappearance of the devfreq node (sticky ENOENT). */
    kPathDisappear,
    /** msm_thermal threshold lowered so the driver stages a frequency cap. */
    kThermalCap,
    /** Control ticks delivered late by a random fraction of the period. */
    kTickJitterStorm,
    /** Handler overruns: every tick in the window lands a fixed slice
     * late, as if the previous handler ran long under CPU contention. */
    kTickOverrun,
    /** Suspend/resume: ticks due inside the window are deferred to its
     * end, modelling the SoC sleeping through the epoch. */
    kSuspendResume,
    /** Monotonic-clock step/skew: the platform clock jumps forward inside
     * the window (never backwards — the seam is monotonic). */
    kClockSkew,
};

inline constexpr int kFaultClassCount = 11;

/** Stable wire name ("actuation-busy", ...) used in scenario JSON. */
const char* FaultClassName(FaultClass cls);

/** Inverse of FaultClassName; false when @p name is unknown. */
bool FaultClassFromName(const std::string& name, FaultClass* cls);

/** One fault class active over a time window. */
struct ScenarioAction {
    FaultClass cls = FaultClass::kActuationBusy;
    /** Window start, seconds from campaign start. */
    double start_s = 0.0;
    /** Window length, seconds. */
    double duration_s = 1.0;
    /** Severity in [0, 1]; maps to the class's fault probabilities. */
    double intensity = 0.5;
};

/** A generated (or shrunk) compound fault scenario. */
struct ChaosScenario {
    /** The seed the generator derived this scenario from. */
    uint64_t seed = 0;
    /** Injected actions, sorted by start_s. */
    std::vector<ScenarioAction> actions;
};

/** Generator tuning: what kind of adversity a campaign applies. */
struct CampaignSpec {
    /** Campaign length, seconds of simulated time. */
    double duration_s = 120.0;
    /** Relative weight of each FaultClass (index = enum value; zero
     * disables the class). */
    std::vector<double> class_weights =
        std::vector<double>(kFaultClassCount, 1.0);
    /** Intensity at campaign start, in [0, 1]. */
    double base_intensity = 0.3;
    /** Added to the intensity linearly by campaign end (a slow
     * degradation drift); may be negative. */
    double intensity_ramp = 0.2;
    /** Expected fault bursts per minute of campaign time. */
    double bursts_per_minute = 3.0;
    /** Burst window length bounds, seconds. */
    double min_duration_s = 2.0;
    double max_duration_s = 20.0;
    /** Hard cap on generated actions (generator stops early at the cap). */
    int max_actions = 32;
    /**
     * Phase anchoring: with this probability a burst's start snaps to the
     * nearest multiple of phase_anchor_period_s, modelling faults arriving
     * correlated with application phase boundaries rather than uniformly.
     * A period of 0 disables anchoring.
     */
    double phase_anchor_period_s = 0.0;
    double anchor_probability = 0.5;
    /** With this probability a burst is a correlated storm of storm_size
     * actions sharing one window (distinct classes where possible). */
    double storm_probability = 0.2;
    int storm_size = 3;
};

/**
 * 64-bit seeds travel as decimal strings: JSON numbers are doubles and
 * silently drop the low bits of values above 2^53 — enough to break a
 * bit-exact replay. Parsing also accepts a plain number for hand-written
 * inputs whose seeds are small.
 */
JsonValue SeedToJson(uint64_t seed);
uint64_t SeedFromJson(const JsonValue& value);

/** Scenario <-> JSON (see DESIGN.md §12 for the schema). */
JsonValue ScenarioToJson(const ChaosScenario& scenario);
bool ScenarioFromJson(const JsonValue& json, ChaosScenario* scenario,
                      std::string* error);

/** CampaignSpec <-> JSON. */
JsonValue CampaignSpecToJson(const CampaignSpec& spec);
bool CampaignSpecFromJson(const JsonValue& json, CampaignSpec* spec,
                          std::string* error);

}  // namespace aeo::chaos

#endif  // AEO_CHAOS_SCENARIO_H_
