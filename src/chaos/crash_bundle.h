/**
 * @file
 * The replayable crash bundle a failing chaos campaign leaves behind.
 *
 * A bundle is one JSON document holding everything needed to reproduce a
 * first violation bit-for-bit on another machine: the campaign seed, the
 * (shrunk) scenario, the deterministic run parameters (app, target,
 * profile seed/runs, device seed, the controller knobs that affect the
 * trace), the monitor verdicts observed at capture time, and the last N
 * control-cycle records for post-mortem reading.
 *
 * `robustness_chaos_campaign --replay=<bundle.json>` re-runs the bundle and
 * checks the replay reproduces the recorded first-violation cycle.
 */
#ifndef AEO_CHAOS_CRASH_BUNDLE_H_
#define AEO_CHAOS_CRASH_BUNDLE_H_

#include <cstdint>
#include <string>

#include "chaos/campaign.h"
#include "chaos/scenario.h"

namespace aeo::chaos {

/** Bundle schema version (bump on incompatible layout changes). */
inline constexpr int kCrashBundleVersion = 1;

/** A replayable failure capsule. */
struct CrashBundle {
    int version = kCrashBundleVersion;
    /** Application under control. */
    std::string app;
    /** Performance target r, GIPS. */
    double target_gips = 0.0;
    /** Offline-profiler seed and averaging runs (to rebuild the table). */
    uint64_t profile_seed = 0;
    int profile_runs = 1;
    /** Device seed the campaign ran with (post-derivation, never 0). */
    uint64_t device_seed = 0;
    bool enable_thermal = true;
    /** Controller knobs that shape the trace (defaults otherwise). */
    bool readback_verification = true;
    int cap_confirm_cycles = 2;
    bool reengage = true;
    /** Spec the scenario was generated under. */
    CampaignSpec spec;
    /** The failing (typically shrunk) scenario. */
    ChaosScenario scenario;
    /** Verdicts and cycle tail observed when the bundle was captured. */
    CampaignReport report;
};

/** Bundle <-> JSON. */
JsonValue CrashBundleToJson(const CrashBundle& bundle);

/** Outcome of ReadCrashBundle(). */
struct CrashBundleReadResult {
    bool ok = false;
    CrashBundle bundle;
    std::string error;
};

/** Parses a bundle from JSON text (validates version and scenario). */
CrashBundleReadResult ParseCrashBundle(const std::string& text);

/** Writes @p bundle to @p path as indented JSON. False on I/O failure. */
bool WriteCrashBundle(const std::string& path, const CrashBundle& bundle);

/** Reads and parses a bundle file. */
CrashBundleReadResult ReadCrashBundle(const std::string& path);

}  // namespace aeo::chaos

#endif  // AEO_CHAOS_CRASH_BUNDLE_H_
