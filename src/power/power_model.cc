#include "power/power_model.h"

#include <algorithm>

#include "common/logging.h"

namespace aeo {

PowerModel::PowerModel(PowerModelParams params) : params_(params)
{
    AEO_ASSERT(params_.base_mw >= 0.0, "negative base power");
    AEO_ASSERT(params_.cpu_dyn_mw_per_ghz_v2 > 0.0, "dynamic coefficient must be positive");
    AEO_ASSERT(params_.cpu_idle_residue >= 0.0 && params_.cpu_idle_residue < 1.0,
               "idle residue %f out of [0, 1)", params_.cpu_idle_residue);
}

double
PowerModel::ClusterCpuPower(Gigahertz freq, Volts voltage, int online_cores,
                            double busy_cores, double dyn_scale,
                            double leak_scale, double leak_temp_scale) const
{
    const double v = voltage.value();
    const double f = freq.value();
    const double cores = static_cast<double>(online_cores);
    const double busy = std::min(busy_cores, cores);
    const double idle = cores - busy;
    const double dyn_unit = params_.cpu_dyn_mw_per_ghz_v2 * dyn_scale * f * v * v;
    return dyn_unit * (busy + params_.cpu_idle_residue * idle) +
           params_.cpu_leak_mw_per_v3 * leak_scale * v * v * v * cores *
               leak_temp_scale;
}

PowerBreakdown
PowerModel::Compute(const PowerInputs& inputs) const
{
    AEO_ASSERT(inputs.online_cores >= 1, "no cores online");
    AEO_ASSERT(inputs.busy_cores >= 0.0, "negative busy cores");
    AEO_ASSERT(inputs.bw_level >= 0, "negative bandwidth level");

    PowerBreakdown out;

    // Leakage scales with die temperature when the coefficient is enabled;
    // the factor never drops below zero for (unphysical) sub-ambient dies.
    const double leak_scale = std::max(
        0.0, 1.0 + params_.leak_temp_coeff_per_c * (inputs.temp_c - kLeakageReferenceC));

    out.cpu_mw = ClusterCpuPower(inputs.cpu_freq, inputs.cpu_voltage,
                                 inputs.online_cores, inputs.busy_cores,
                                 inputs.cpu_dyn_scale, inputs.cpu_leak_scale,
                                 leak_scale);
    if (inputs.has_little) {
        AEO_ASSERT(inputs.little_online >= 0, "negative LITTLE cores");
        out.little_cpu_mw = ClusterCpuPower(
            inputs.little_freq, inputs.little_voltage, inputs.little_online,
            inputs.little_busy, inputs.little_dyn_scale,
            inputs.little_leak_scale, leak_scale);
    }

    const double gv = inputs.gpu_voltage.value();
    out.gpu_mw = params_.gpu_dyn_mw_per_mhz_v2 * inputs.gpu_mhz * gv * gv *
                     inputs.gpu_busy +
                 params_.gpu_leak_mw_per_v3 * gv * gv * gv * leak_scale;

    out.mem_mw = params_.mem_static_mw +
                 params_.mem_mw_per_level * static_cast<double>(inputs.bw_level) +
                 params_.mem_mw_per_gbps * inputs.mem_gbps;

    out.base_mw = params_.base_mw;
    out.app_component_mw = inputs.app_component_mw;
    out.overhead_mw = inputs.overhead_mw;
    return out;
}

Milliwatts
PowerModel::TotalPower(const PowerInputs& inputs) const
{
    return Milliwatts(Compute(inputs).total_mw());
}

PowerModelParams
MakeNexus6PowerParams()
{
    // Calibrated against the paper's Table I (AngryBirds):
    //   (0.3 GHz, 762 MBps)  → ~1623 mW
    //   (0.3 GHz, 3051 MBps) → ~1742 mW   (≈29.6 mW per bandwidth level)
    //   (0.8832 GHz, 762)    → ~2219 mW at speedup 1.837
    // See tests/soc/nexus6_calibration_test.cc for the locked anchors.
    PowerModelParams params;
    params.base_mw = 472.0;  // the idle GPU rail carries ~15 mW of leakage
    params.cpu_dyn_mw_per_ghz_v2 = 953.0;
    params.cpu_idle_residue = 0.14;
    params.cpu_leak_mw_per_v3 = 110.0;
    params.mem_static_mw = 120.0;
    params.mem_mw_per_level = 29.6;
    params.mem_mw_per_gbps = 60.0;
    return params;
}

PowerModelParams
MakeExynos5433PowerParams()
{
    // The A57 cluster is the reference rail: a 20nm out-of-order core is
    // hungrier per GHz·V² than the Krait and leaks more at the top of its
    // wider voltage range. LPDDR4 at up to 13.2 GBps moves the bus
    // coefficients accordingly. The A53 rail is priced via the topology's
    // dyn/leak power scales, not separate coefficients.
    PowerModelParams params;
    params.base_mw = 455.0;
    params.cpu_dyn_mw_per_ghz_v2 = 1180.0;
    params.cpu_idle_residue = 0.10;
    params.cpu_leak_mw_per_v3 = 160.0;
    params.mem_static_mw = 135.0;
    params.mem_mw_per_level = 34.0;
    params.mem_mw_per_gbps = 48.0;
    return params;
}

}  // namespace aeo
