/**
 * @file
 * Simple battery model: a charge reservoir drained by device energy. Used by
 * examples to translate the controller's energy savings into battery life,
 * the end-user metric the paper motivates with (§I).
 */
#ifndef AEO_POWER_BATTERY_H_
#define AEO_POWER_BATTERY_H_

#include "common/units.h"
#include "sim/time.h"

namespace aeo {

/** Battery parameters (Nexus 6 ships a 3220 mAh, 3.8 V nominal pack). */
struct BatteryParams {
    double capacity_mah = 3220.0;
    double nominal_volts = 3.8;
};

/** A charge reservoir with state-of-charge tracking. */
class Battery {
  public:
    explicit Battery(BatteryParams params = {});

    /** Full-charge energy content. */
    Joules FullEnergy() const;

    /** Drains @p energy; charge floors at zero. */
    void Drain(Joules energy);

    /** Remaining energy. */
    Joules RemainingEnergy() const;

    /** State of charge in [0, 1]. */
    double StateOfCharge() const;

    /** True once the battery is exhausted. */
    bool Empty() const { return drained_.value() >= FullEnergy().value(); }

    /**
     * Time to empty at a constant draw of @p power from the current state
     * of charge.
     */
    SimTime TimeToEmpty(Milliwatts power) const;

  private:
    BatteryParams params_;
    Joules drained_;
};

}  // namespace aeo

#endif  // AEO_POWER_BATTERY_H_
