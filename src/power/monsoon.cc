#include "power/monsoon.h"

#include <utility>

#include "common/logging.h"

namespace aeo {

MonsoonMonitor::MonsoonMonitor(Simulator* sim,
                               std::function<Milliwatts()> power_source,
                               uint64_t rng_seed, MonsoonConfig config)
    : sim_(sim),
      power_source_(std::move(power_source)),
      rng_(rng_seed),
      config_(config)
{
    AEO_ASSERT(sim_ != nullptr, "monitor needs a simulator");
    AEO_ASSERT(power_source_ != nullptr, "monitor needs a power source");
    AEO_ASSERT(config_.sample_hz > 0.0, "sample rate must be positive");
    AEO_ASSERT(config_.noise_rel_stddev >= 0.0, "negative noise level");
}

MonsoonMonitor::~MonsoonMonitor()
{
    Stop();
}

void
MonsoonMonitor::Start()
{
    Stop();
    start_time_ = sim_->Now();
    last_sample_time_ = start_time_;
    series_ = sim_->ScheduleEvery(SimTime::FromSecondsF(1.0 / config_.sample_hz),
                                  [this] { TakeSample(); });
}

void
MonsoonMonitor::Stop()
{
    if (series_ != kInvalidEventId) {
        sim_->Cancel(series_);
        series_ = kInvalidEventId;
    }
}

void
MonsoonMonitor::TakeSample()
{
    if (injector_ != nullptr && !injector_->OnRead(fault_query_).ok()) {
        ++dropped_sample_count_;
        return;
    }
    const double true_mw = power_source_().value();
    const double measured_mw =
        true_mw * (1.0 + rng_.Gaussian(0.0, config_.noise_rel_stddev));
    power_sum_mw_ += measured_mw;
    ++sample_count_;
    window_sum_mw_ += measured_mw;
    ++window_count_;
    last_sample_time_ = sim_->Now();
    if (config_.trace_decimation > 0 &&
        sample_count_ % static_cast<uint64_t>(config_.trace_decimation) == 0) {
        // aeo-lint: allow(hot-path-alloc) -- the decimated power trace is
        // the meter's output artifact; growth here IS the product.
        trace_.push_back(PowerSample{sim_->Now(), Milliwatts(measured_mw)});
    }
}

Milliwatts
MonsoonMonitor::MeasuredAveragePower() const
{
    if (sample_count_ == 0) {
        return Milliwatts(0.0);
    }
    return Milliwatts(power_sum_mw_ / static_cast<double>(sample_count_));
}

Milliwatts
MonsoonMonitor::DrainWindowAveragePower()
{
    if (window_count_ == 0) {
        return MeasuredAveragePower();
    }
    const Milliwatts avg(window_sum_mw_ / static_cast<double>(window_count_));
    window_sum_mw_ = 0.0;
    window_count_ = 0;
    return avg;
}

Joules
MonsoonMonitor::MeasuredEnergy() const
{
    return MeasuredAveragePower() * ObservedDuration().ToSeconds();
}

SimTime
MonsoonMonitor::ObservedDuration() const
{
    return last_sample_time_ - start_time_;
}

void
MonsoonMonitor::Reset()
{
    power_sum_mw_ = 0.0;
    sample_count_ = 0;
    window_sum_mw_ = 0.0;
    window_count_ = 0;
    trace_.clear();
    start_time_ = sim_->Now();
    last_sample_time_ = start_time_;
}

}  // namespace aeo
