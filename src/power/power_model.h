/**
 * @file
 * The whole-device power model.
 *
 * The paper measures the *entire device* with a Monsoon power monitor
 * (§III-A) — the controller never sees a per-rail breakdown and relies on
 * feedback robustness to tolerate that (§IV-B). We therefore model total
 * device power as:
 *
 *   P = P_base(screen @ lowest brightness, WiFi on, rest-of-device)
 *     + Σ_cores [ c_dyn · V(f)² · f · busy + idle residue ] + c_leak · V(f) · online
 *     + P_mem(bandwidth level) + c_traffic · actual GB/s
 *     + P_app_components (GPU render, HW decoder, camera, radio bursts)
 *     + P_overheads (perf tool, controller computation, DVFS transitions)
 *
 * Constants are calibrated against the paper's Table I anchors
 * (see MakeNexus6PowerParams and tests/soc/nexus6_calibration_test.cc).
 */
#ifndef AEO_POWER_POWER_MODEL_H_
#define AEO_POWER_POWER_MODEL_H_

#include "common/units.h"

namespace aeo {

/** Tunable coefficients of the device power model. */
struct PowerModelParams {
    /** Screen (lowest brightness) + WiFi idle + rest-of-device, mW. */
    double base_mw = 626.0;
    /** Dynamic CPU coefficient, mW per (GHz · V² · busy-core). */
    double cpu_dyn_mw_per_ghz_v2 = 800.0;
    /** Fraction of dynamic power burned by an idle-but-clocked core. */
    double cpu_idle_residue = 0.06;
    /**
     * Leakage per online core, mW per V³. Sub-threshold leakage grows
     * super-linearly with the rail voltage, which is what makes *holding* a
     * high frequency expensive even when cores idle — the waste the paper's
     * Figs. 4(f)/1 expose in the interactive governor.
     */
    double cpu_leak_mw_per_v3 = 110.0;
    /** Memory controller + DRAM background power at the lowest level, mW. */
    double mem_static_mw = 120.0;
    /** Incremental bus power per bandwidth level step, mW. */
    double mem_mw_per_level = 29.6;
    /** Traffic-proportional DRAM activity power, mW per GB/s. */
    double mem_mw_per_gbps = 60.0;
    /** GPU dynamic coefficient, mW per (MHz · V² · busy). */
    double gpu_dyn_mw_per_mhz_v2 = 2.2;
    /** GPU leakage, mW per V³ (single rail). */
    double gpu_leak_mw_per_v3 = 30.0;
    /**
     * Relative growth of CPU/GPU leakage per °C above the 25 °C calibration
     * point (sub-threshold leakage rises steeply with die temperature).
     * Zero — the default — reproduces the temperature-independent model the
     * profile tables were calibrated against; thermal experiments set it to
     * make the (speedup, power) surface drift as the package heats, the
     * effect the online drift detector corrects for.
     */
    double leak_temp_coeff_per_c = 0.0;
};

/** Die temperature at which the leakage coefficients were calibrated, °C. */
inline constexpr double kLeakageReferenceC = 25.0;

/** Instantaneous operating state fed to the model. */
struct PowerInputs {
    Gigahertz cpu_freq;
    Volts cpu_voltage;
    int online_cores = 4;
    /** Busy core-seconds per second (foreground + background), 0..cores. */
    double busy_cores = 0.0;
    /** Primary-cluster silicon power scales (ClusterSpec::*_power_scale).
     * Exactly 1.0 on the reference cluster — an IEEE-exact no-op. */
    double cpu_dyn_scale = 1.0;
    double cpu_leak_scale = 1.0;
    /** Second (LITTLE) frequency domain; absent on homogeneous SoCs. */
    bool has_little = false;
    Gigahertz little_freq{0.3};
    Volts little_voltage{0.80};
    int little_online = 0;
    double little_busy = 0.0;
    double little_dyn_scale = 1.0;
    double little_leak_scale = 1.0;
    /** Current 0-based bandwidth level. */
    int bw_level = 0;
    /** Actual bus traffic, GB/s. */
    double mem_gbps = 0.0;
    /** App-specific component power (decoder, camera, radio), mW. */
    double app_component_mw = 0.0;
    /** GPU clock, MHz. */
    double gpu_mhz = 200.0;
    /** GPU rail voltage. */
    Volts gpu_voltage{0.80};
    /** GPU busy fraction in [0, 1]. */
    double gpu_busy = 0.0;
    /** Instrumentation/controller overhead power, mW. */
    double overhead_mw = 0.0;
    /** Die temperature, °C (scales leakage when the model enables it). */
    double temp_c = kLeakageReferenceC;
};

/** Per-rail decomposition of device power. */
struct PowerBreakdown {
    /** Primary (big/unified) CPU cluster rail. */
    double cpu_mw = 0.0;
    /** LITTLE cluster rail; 0 on homogeneous SoCs. */
    double little_cpu_mw = 0.0;
    double gpu_mw = 0.0;
    double mem_mw = 0.0;
    double base_mw = 0.0;
    double app_component_mw = 0.0;
    double overhead_mw = 0.0;

    /** Whole-device power. */
    double
    total_mw() const
    {
        return cpu_mw + little_cpu_mw + gpu_mw + mem_mw + base_mw +
               app_component_mw + overhead_mw;
    }
};

/** Evaluates device power from operating state. Stateless and copyable. */
class PowerModel {
  public:
    explicit PowerModel(PowerModelParams params = {});

    /** Computes the per-rail power breakdown for the given state. */
    PowerBreakdown Compute(const PowerInputs& inputs) const;

    /** Convenience: total device power. */
    Milliwatts TotalPower(const PowerInputs& inputs) const;

    /**
     * One CPU cluster's rail power: dynamic + leakage, scaled by the
     * cluster's silicon coefficients. @p leak_temp_scale is the
     * temperature-dependent leakage multiplier (1.0 at the calibration
     * temperature). The optimizer prices per-cluster energy with this.
     */
    double ClusterCpuPower(Gigahertz freq, Volts voltage, int online_cores,
                           double busy_cores, double dyn_scale,
                           double leak_scale, double leak_temp_scale) const;

    const PowerModelParams& params() const { return params_; }

  private:
    PowerModelParams params_;
};

/** Power coefficients calibrated for the Nexus 6 against Table I. */
PowerModelParams MakeNexus6PowerParams();

/**
 * Power coefficients for the Exynos 5433-style big.LITTLE preset. The
 * reference cluster is the A57; the A53 rail is priced through the
 * topology's dyn/leak power scales (soc/exynos5433.h).
 */
PowerModelParams MakeExynos5433PowerParams();

}  // namespace aeo

#endif  // AEO_POWER_POWER_MODEL_H_
