#include "power/energy_meter.h"

#include "common/logging.h"

namespace aeo {

void
EnergyMeter::Accumulate(Milliwatts power, SimTime duration)
{
    AEO_ASSERT(duration >= SimTime::Zero(), "negative accumulation interval");
    AEO_ASSERT(power.value() >= 0.0, "negative power %f mW", power.value());
    energy_ += power * duration.ToSeconds();
    elapsed_ += duration;
}

Milliwatts
EnergyMeter::AveragePower() const
{
    if (elapsed_ == SimTime::Zero()) {
        return Milliwatts(0.0);
    }
    return ::aeo::AveragePower(energy_, elapsed_.ToSeconds());
}

void
EnergyMeter::Reset()
{
    energy_ = Joules(0.0);
    elapsed_ = SimTime::Zero();
}

}  // namespace aeo
