#include "power/battery.h"

#include <algorithm>

#include "common/logging.h"

namespace aeo {

Battery::Battery(BatteryParams params) : params_(params)
{
    AEO_ASSERT(params_.capacity_mah > 0.0, "battery capacity must be positive");
    AEO_ASSERT(params_.nominal_volts > 0.0, "battery voltage must be positive");
}

Joules
Battery::FullEnergy() const
{
    // mAh → C: ×3.6; C × V → J.
    return Joules(params_.capacity_mah * 3.6 * params_.nominal_volts);
}

void
Battery::Drain(Joules energy)
{
    AEO_ASSERT(energy.value() >= 0.0, "cannot drain negative energy");
    drained_ += energy;
    drained_ = Joules(std::min(drained_.value(), FullEnergy().value()));
}

Joules
Battery::RemainingEnergy() const
{
    return FullEnergy() - drained_;
}

double
Battery::StateOfCharge() const
{
    return RemainingEnergy().value() / FullEnergy().value();
}

SimTime
Battery::TimeToEmpty(Milliwatts power) const
{
    AEO_ASSERT(power.value() > 0.0, "draw must be positive");
    return SimTime::FromSecondsF(RemainingEnergy().value() / power.watts());
}

}  // namespace aeo
