/**
 * @file
 * Simulated Monsoon power monitor.
 *
 * The paper measures whole-device power with a Monsoon monitor sampling at
 * 5 kHz (§IV-A). This model samples the device's instantaneous power at the
 * same rate, applies Gaussian measurement noise, and reports the running
 * average and an optional decimated trace. Experiments read their "measured"
 * power from here — exactly as the authors did — while the exact EnergyMeter
 * integral remains available for validation.
 */
#ifndef AEO_POWER_MONSOON_H_
#define AEO_POWER_MONSOON_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/units.h"
#include "fault/fault_injector.h"
#include "sim/simulator.h"

namespace aeo {

/** Injector path guarding power-meter samples. */
inline constexpr const char kMonsoonFaultPath[] = "/dev/monsoon/sample";

/** Configuration of the simulated power monitor. */
struct MonsoonConfig {
    /** Sampling frequency, Hz (the real instrument samples at 5 kHz). */
    double sample_hz = 5000.0;
    /** Relative standard deviation of per-sample measurement noise. */
    double noise_rel_stddev = 0.004;
    /** Keep every Nth sample in the trace; 0 disables the trace. */
    int trace_decimation = 0;
};

/** One retained trace sample. */
struct PowerSample {
    SimTime when;
    Milliwatts power;
};

/** Samples a power source periodically and accumulates statistics. */
class MonsoonMonitor {
  public:
    /**
     * @param sim          The simulator driving time; must outlive this.
     * @param power_source Returns the device's instantaneous true power.
     * @param rng_seed     Seed for the measurement-noise stream.
     * @param config       Sampling parameters.
     */
    MonsoonMonitor(Simulator* sim, std::function<Milliwatts()> power_source,
                   uint64_t rng_seed, MonsoonConfig config = {});

    ~MonsoonMonitor();

    MonsoonMonitor(const MonsoonMonitor&) = delete;
    MonsoonMonitor& operator=(const MonsoonMonitor&) = delete;

    /** Starts sampling. */
    void Start();

    /** Stops sampling. */
    void Stop();

    /** Number of samples taken. */
    uint64_t sample_count() const { return sample_count_; }

    /** Samples lost to injected meter failures (USB glitches etc.). The
     * running average simply spans fewer samples — as with the real
     * instrument, a dropped window biases nothing, it only thins the data. */
    uint64_t dropped_sample_count() const { return dropped_sample_count_; }

    /** Hooks an injector into the sampling path; nullptr disables. */
    void
    SetFaultInjector(FaultInjector* injector)
    {
        injector_ = injector;
        // Memoized against the previous injector's topology versions.
        fault_query_ = FaultInjector::PathQuery(kMonsoonFaultPath);
    }

    /** Average of all measured samples. */
    Milliwatts MeasuredAveragePower() const;

    /**
     * Average power over the samples taken since the previous drain, then
     * resets the window. Gives the controller a per-control-cycle power
     * measurement (for profile-drift detection) without disturbing the
     * cumulative statistics above. Falls back to the running average when
     * the window is empty (e.g. total meter dropout).
     */
    Milliwatts DrainWindowAveragePower();

    /** Samples currently accumulated in the drain window. */
    uint64_t window_sample_count() const { return window_count_; }

    /** Measured energy: average power × observed duration. */
    Joules MeasuredEnergy() const;

    /** Wall time spanned by the measurement (start → last sample). */
    SimTime ObservedDuration() const;

    /** Decimated sample trace (empty unless enabled in the config). */
    const std::vector<PowerSample>& trace() const { return trace_; }

    /** Clears statistics and the trace (does not stop sampling). */
    void Reset();

  private:
    void TakeSample();

    Simulator* sim_;
    std::function<Milliwatts()> power_source_;
    Rng rng_;
    MonsoonConfig config_;
    /** The 5 kHz sampling series: scheduled directly on the event core so
     * each sample costs one slab dispatch, no std::function hop. */
    EventId series_ = kInvalidEventId;
    FaultInjector* injector_ = nullptr;
    /** Memoized injector lookup for the per-sample guard. */
    FaultInjector::PathQuery fault_query_{kMonsoonFaultPath};
    SimTime start_time_;
    SimTime last_sample_time_;
    double power_sum_mw_ = 0.0;
    uint64_t sample_count_ = 0;
    double window_sum_mw_ = 0.0;
    uint64_t window_count_ = 0;
    uint64_t dropped_sample_count_ = 0;
    std::vector<PowerSample> trace_;
};

}  // namespace aeo

#endif  // AEO_POWER_MONSOON_H_
