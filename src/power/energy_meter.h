/**
 * @file
 * Exact energy integration. The device calls Accumulate() whenever any
 * state affecting power changes, so energy is the exact integral of the
 * piecewise-constant power signal (no sampling error).
 */
#ifndef AEO_POWER_ENERGY_METER_H_
#define AEO_POWER_ENERGY_METER_H_

#include "common/units.h"
#include "sim/time.h"

namespace aeo {

/** Accumulates energy as Σ power·Δt over piecewise-constant segments. */
class EnergyMeter {
  public:
    EnergyMeter() = default;

    /** Adds a segment of @p duration at constant @p power. */
    void Accumulate(Milliwatts power, SimTime duration);

    /** Total accumulated energy. */
    Joules energy() const { return energy_; }

    /** Total accumulated time. */
    SimTime elapsed() const { return elapsed_; }

    /** Average power over the accumulated time (0 if no time elapsed). */
    Milliwatts AveragePower() const;

    /** Resets to zero. */
    void Reset();

  private:
    Joules energy_;
    SimTime elapsed_;
};

}  // namespace aeo

#endif  // AEO_POWER_ENERGY_METER_H_
