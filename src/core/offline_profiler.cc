#include "core/offline_profiler.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"
#include "soc/nexus6.h"

namespace aeo {

DeviceFactory
MakeDefaultDeviceFactory()
{
    return [](uint64_t seed) {
        DeviceConfig config;
        config.seed = seed;
        return std::make_unique<Device>(config);
    };
}

OfflineProfiler::OfflineProfiler(DeviceFactory factory) : factory_(std::move(factory))
{
    AEO_ASSERT(factory_ != nullptr, "profiler needs a device factory");
}

ProfileMeasurement
OfflineProfiler::MeasureConfig(const AppSpec& app, const SystemConfig& config,
                               const ProfilerOptions& options) const
{
    AEO_ASSERT(options.runs >= 1, "need at least one run");
    double gips_sum = 0.0;
    double power_sum = 0.0;
    for (int run = 0; run < options.runs; ++run) {
        const uint64_t seed =
            options.seed + 7919ULL * static_cast<uint64_t>(run) +
            131071ULL * static_cast<uint64_t>(config.cpu_level * 512 +
                                              (config.gpu_level + 1) * 64 +
                                              config.bw_level + 1);
        std::unique_ptr<Device> device = factory_(seed);
        device->SetBackground(MakeBackgroundEnv(options.load));
        if (config.controls_gpu()) {
            device->sysfs().Write(std::string(kGpuSysfsRoot) + "/governor",
                                  "userspace");
            device->sysfs().Write(
                std::string(kGpuSysfsRoot) + "/userspace/set_freq",
                StrFormat("%lld", static_cast<long long>(
                                      device->gpu().MhzAt(config.gpu_level) + 0.5)));
        } else {
            // Everything outside the configuration tuple runs under its
            // default governor during profiling, as on the paper's phone.
            device->sysfs().Write(std::string(kGpuSysfsRoot) + "/governor",
                                  "msm-adreno-tz");
        }
        if (config.controls_bandwidth()) {
            device->PinConfiguration(config.cpu_level, config.bw_level);
        } else {
            // CPU-only: pin the CPU, leave the bus with its default governor.
            device->sysfs().Write(
                std::string(kDevfreqSysfsRoot) + "/governor", "cpubw_hwmon");
            device->sysfs().Write(
                std::string(kCpufreqSysfsRoot) + "/scaling_governor", "userspace");
            const long long khz = static_cast<long long>(
                device->cluster().table().FrequencyAt(config.cpu_level).megahertz() *
                    1000.0 +
                0.5);
            device->sysfs().Write(
                std::string(kCpufreqSysfsRoot) + "/scaling_setspeed",
                StrFormat("%lld", khz));
        }
        device->LaunchApp(app);
        device->RunFor(options.measure_duration);
        const RunResult result = device->CollectResult("profiling");
        gips_sum += result.avg_gips;
        power_sum += result.measured_avg_power_mw;
    }
    ProfileMeasurement measurement;
    measurement.config = config;
    measurement.gips = gips_sum / options.runs;
    measurement.power_mw = power_sum / options.runs;
    return measurement;
}

ProfileTable
OfflineProfiler::Profile(const AppSpec& app, const ProfilerOptions& options) const
{
    // CPU levels to measure: the caller's exact pruned list (§V-A), or —
    // when none is given — the paper's "each alternate CPU frequency" over
    // the full range in sparse mode.
    std::vector<int> cpu_grid = options.cpu_levels;
    if (cpu_grid.empty()) {
        const int step = options.sparse ? 2 : 1;
        for (int level = 0; level < kNexus6CpuLevels; level += step) {
            cpu_grid.push_back(level);
        }
    }
    std::sort(cpu_grid.begin(), cpu_grid.end());

    std::vector<ProfileMeasurement> measurements;
    if (options.cpu_only) {
        for (const int cpu : cpu_grid) {
            measurements.push_back(
                MeasureConfig(app, SystemConfig{cpu, kBwDefaultGovernor}, options));
        }
        return ProfileTable::FromMeasurements(app.name, measurements);
    }

    const int bw_max = kNexus6BwLevels - 1;
    std::vector<int> bw_grid;
    if (options.sparse) {
        bw_grid = {0, bw_max};
    } else {
        for (int bw = 0; bw <= bw_max; ++bw) {
            bw_grid.push_back(bw);
        }
    }

    std::vector<int> gpu_grid = options.gpu_levels;
    if (gpu_grid.empty()) {
        gpu_grid.push_back(kGpuDefaultGovernor);
    }
    for (const int cpu : cpu_grid) {
        for (const int bw : bw_grid) {
            for (const int gpu : gpu_grid) {
                measurements.push_back(
                    MeasureConfig(app, SystemConfig{cpu, bw, gpu}, options));
            }
        }
    }
    ProfileTable table = ProfileTable::FromMeasurements(app.name, measurements);
    if (options.sparse) {
        table = table.InterpolateBandwidths(MakeNexus6BandwidthTable());
    }
    return table;
}

}  // namespace aeo
