#include "core/offline_profiler.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"
#include "soc/nexus6.h"

namespace aeo {

namespace {

/** One measurement run's averages (the unit of batch parallelism). */
struct RunSample {
    double gips = 0.0;
    Milliwatts power_mw;
};

/**
 * One pinned run on a fresh device. Self-contained: the device is built
 * from a seed derived only from (options.seed, config, run), so the sample
 * is identical whether the run executes serially or on a pool worker.
 */
RunSample
MeasureOneRun(const DeviceFactory& factory, const AppSpec& app,
              const SystemConfig& config, const ProfilerOptions& options, int run)
{
    uint64_t seed =
        options.seed + 7919ULL * static_cast<uint64_t>(run) +
        131071ULL * static_cast<uint64_t>(config.cpu_level * 512 +
                                          (config.gpu_level + 1) * 64 +
                                          config.bw_level + 1);
    if (config.controls_little()) {
        // Extra key axes fold in only on big.LITTLE grids, leaving every
        // historical homogeneous seed untouched.
        seed += 524287ULL * static_cast<uint64_t>(config.little_level * 8 +
                                                  config.placement + 2);
    }
    // Shared-immutable setup, hoisted out of the per-run path: every run
    // opens the same sysfs nodes, so the path strings are built once per
    // process, not once per (config, run) job.
    static const std::string kGpuGovernorPath =
        std::string(kGpuSysfsRoot) + "/governor";
    static const std::string kGpuSetFreqPath =
        std::string(kGpuSysfsRoot) + "/userspace/set_freq";
    static const std::string kBwGovernorPath =
        std::string(kDevfreqSysfsRoot) + "/governor";
    static const std::string kCpuGovernorPath =
        std::string(kCpufreqSysfsRoot) + "/scaling_governor";
    static const std::string kCpuSetSpeedPath =
        std::string(kCpufreqSysfsRoot) + "/scaling_setspeed";

    std::unique_ptr<Device> device = factory(seed);
    device->SetBackground(MakeBackgroundEnv(options.load));
    Sysfs& sysfs = device->sysfs();
    const SysfsHandle gpu_governor = sysfs.Open(kGpuGovernorPath);
    if (config.controls_gpu()) {
        sysfs.Write(gpu_governor, "userspace");
        sysfs.Write(sysfs.Open(kGpuSetFreqPath),
                    StrFormat("%lld", static_cast<long long>(
                                          device->gpu().MhzAt(config.gpu_level) + 0.5)));
    } else {
        // Everything outside the configuration tuple runs under its
        // default governor during profiling, as on the paper's phone.
        sysfs.Write(gpu_governor, "msm-adreno-tz");
    }
    if (config.controls_little()) {
        // big.LITTLE grid point: both frequency domains, the bus and the
        // thread placement are pinned through the userspace governors.
        AEO_ASSERT(config.controls_bandwidth(),
                   "het profiling grids control the bandwidth");
        device->PinHetConfiguration(
            HetConfig{config.cpu_level, config.little_level, config.bw_level,
                      static_cast<ThreadPlacement>(
                          config.placement == kPlacementDefault
                              ? kPlacementBigOnly
                              : config.placement)});
    } else if (config.controls_bandwidth()) {
        device->PinConfiguration(config.cpu_level, config.bw_level);
    } else {
        // CPU-only: pin the CPU, leave the bus with its default governor.
        sysfs.Write(sysfs.Open(kBwGovernorPath), "cpubw_hwmon");
        sysfs.Write(sysfs.Open(kCpuGovernorPath), "userspace");
        const long long khz = static_cast<long long>(
            device->cluster().table().FrequencyAt(config.cpu_level).kilohertz() +
            0.5);
        sysfs.Write(sysfs.Open(kCpuSetSpeedPath), StrFormat("%lld", khz));
    }
    device->LaunchApp(app);
    device->RunFor(options.measure_duration);
    const RunResult result = device->CollectResult("profiling");
    return RunSample{result.avg_gips, result.measured_avg_power_mw};
}

/** Reduces @p runs consecutive samples starting at @p first into one
 * measurement, accumulating in run order (the serial summation order). */
ProfileMeasurement
ReduceRuns(const SystemConfig& config, const RunSample* first, int runs)
{
    double gips_sum = 0.0;
    double power_sum = 0.0;
    for (int run = 0; run < runs; ++run) {
        gips_sum += first[run].gips;
        power_sum += first[run].power_mw.value();
    }
    ProfileMeasurement measurement;
    measurement.config = config;
    measurement.gips = gips_sum / runs;
    measurement.power_mw = Milliwatts(power_sum / runs);
    return measurement;
}

}  // namespace

DeviceFactory
MakeDefaultDeviceFactory()
{
    return [](uint64_t seed) {
        DeviceConfig config;
        config.seed = seed;
        return std::make_unique<Device>(config);
    };
}

OfflineProfiler::OfflineProfiler(DeviceFactory factory) : factory_(std::move(factory))
{
    AEO_ASSERT(factory_ != nullptr, "profiler needs a device factory");
}

ProfileMeasurement
OfflineProfiler::MeasureConfig(const AppSpec& app, const SystemConfig& config,
                               const ProfilerOptions& options) const
{
    AEO_ASSERT(options.runs >= 1, "need at least one run");
    std::vector<RunSample> samples;
    samples.reserve(static_cast<size_t>(options.runs));
    for (int run = 0; run < options.runs; ++run) {
        samples.push_back(MeasureOneRun(factory_, app, config, options, run));
    }
    return ReduceRuns(config, samples.data(), options.runs);
}

ProfileTable
OfflineProfiler::Profile(const AppSpec& app, const ProfilerOptions& options) const
{
    AEO_ASSERT(options.runs >= 1, "need at least one run");

    // CPU levels to measure: the caller's exact pruned list (§V-A), or —
    // when none is given — the paper's "each alternate CPU frequency" over
    // the full range in sparse mode.
    std::vector<int> cpu_grid = options.cpu_levels;
    if (cpu_grid.empty()) {
        const int step = options.sparse ? 2 : 1;
        for (int level = 0; level < kNexus6CpuLevels; level += step) {
            cpu_grid.push_back(level);
        }
    }
    std::sort(cpu_grid.begin(), cpu_grid.end());

    // The measurement grid, in the same order the serial loops visited it.
    std::vector<SystemConfig> grid;
    if (!options.configs.empty()) {
        // Explicit (big.LITTLE) grid: measure exactly what the caller
        // enumerated, in the caller's order.
        grid = options.configs;
    } else if (options.cpu_only) {
        grid.reserve(cpu_grid.size());
        for (const int cpu : cpu_grid) {
            grid.push_back(SystemConfig{cpu, kBwDefaultGovernor});
        }
    } else {
        const int bw_max = kNexus6BwLevels - 1;
        std::vector<int> bw_grid;
        if (options.sparse) {
            bw_grid = {0, bw_max};
        } else {
            for (int bw = 0; bw <= bw_max; ++bw) {
                bw_grid.push_back(bw);
            }
        }
        std::vector<int> gpu_grid = options.gpu_levels;
        if (gpu_grid.empty()) {
            gpu_grid.push_back(kGpuDefaultGovernor);
        }
        grid.reserve(cpu_grid.size() * bw_grid.size() * gpu_grid.size());
        for (const int cpu : cpu_grid) {
            for (const int bw : bw_grid) {
                for (const int gpu : gpu_grid) {
                    grid.push_back(SystemConfig{cpu, bw, gpu});
                }
            }
        }
    }

    // Fan the (configuration, run) grid across the batch layer — every run
    // is one job on its own seeded device, indexed as i = config * runs +
    // run — then reduce each configuration's runs in index order, so the
    // table is bit-identical to a serial profile at any worker count. The
    // indexed fan-out keeps the serial fraction flat: no per-job closures
    // or futures are materialized for the profiling grid.
    const auto runs = static_cast<size_t>(options.runs);
    const BatchRunner runner(options.batch);
    const std::vector<RunSample> samples = runner.RunIndexed<RunSample>(
        grid.size() * runs, [&](size_t i) {
            return MeasureOneRun(factory_, app, grid[i / runs], options,
                                 static_cast<int>(i % runs));
        });

    std::vector<ProfileMeasurement> measurements;
    measurements.reserve(grid.size());
    for (size_t i = 0; i < grid.size(); ++i) {
        measurements.push_back(ReduceRuns(
            grid[i], &samples[i * static_cast<size_t>(options.runs)], options.runs));
    }

    ProfileTable table = ProfileTable::FromMeasurements(app.name, measurements);
    if (options.configs.empty() && !options.cpu_only && options.sparse) {
        table = table.InterpolateBandwidths(MakeNexus6BandwidthTable());
    }
    return table;
}

}  // namespace aeo
