#include "core/profile_table.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/csv.h"
#include "common/interpolate.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "common/strings.h"

namespace aeo {

ProfileTable::ProfileTable(std::string app_name, std::vector<ProfileEntry> entries,
                           double base_speed_gips)
    : app_name_(std::move(app_name)),
      entries_(std::move(entries)),
      base_speed_gips_(base_speed_gips)
{
    std::sort(entries_.begin(), entries_.end(),
              [](const ProfileEntry& a, const ProfileEntry& b) {
                  if (a.speedup != b.speedup) {
                      return a.speedup < b.speedup;
                  }
                  return a.config < b.config;
              });
    Validate();
}

void
ProfileTable::Validate() const
{
    AEO_ASSERT(!entries_.empty(), "profile table for '%s' is empty", app_name_.c_str());
    AEO_ASSERT(base_speed_gips_ > 0.0, "base speed must be positive, got %f",
               base_speed_gips_);
    for (const ProfileEntry& entry : entries_) {
        AEO_ASSERT(entry.speedup > 0.0, "non-positive speedup %f at %s", entry.speedup,
                   entry.config.ToString().c_str());
        AEO_ASSERT(entry.power_mw.value() > 0.0, "non-positive power %f at %s",
                   entry.power_mw.value(), entry.config.ToString().c_str());
    }
}

ProfileTable
ProfileTable::FromMeasurements(const std::string& app_name,
                               const std::vector<ProfileMeasurement>& measurements)
{
    AEO_ASSERT(!measurements.empty(), "no measurements for '%s'", app_name.c_str());
    // §III-A: speedups are normalized to the *lowest system configuration*
    // (lowest CPU frequency and bandwidth among those profiled) — not to
    // the minimum measured rate, which would bias the reference low for
    // applications whose GIPS is nearly configuration-independent.
    const ProfileMeasurement* reference = &measurements.front();
    for (const ProfileMeasurement& m : measurements) {
        AEO_ASSERT(m.gips > 0.0, "non-positive GIPS at %s", m.config.ToString().c_str());
        if (m.config < reference->config) {
            reference = &m;
        }
    }
    const double base_gips = reference->gips;
    std::vector<ProfileEntry> entries;
    entries.reserve(measurements.size());
    for (const ProfileMeasurement& m : measurements) {
        entries.push_back(ProfileEntry{m.config, m.gips / base_gips, m.power_mw});
    }
    return ProfileTable(app_name, std::move(entries), base_gips);
}

ProfileTable
ProfileTable::InterpolateBandwidths(const BandwidthTable& bw_table) const
{
    // Group rows by (CPU level, GPU level) so extended tables interpolate
    // within each GPU setting.
    std::map<std::pair<int, int>, std::vector<ProfileEntry>> by_cpu;
    for (const ProfileEntry& entry : entries_) {
        AEO_ASSERT(entry.config.controls_bandwidth(),
                   "cannot interpolate a CPU-only profile table");
        by_cpu[{entry.config.cpu_level, entry.config.gpu_level}].push_back(entry);
    }

    std::vector<ProfileEntry> dense;
    for (auto& [key, rows] : by_cpu) {
        const auto [cpu_level, gpu_level] = key;
        AEO_ASSERT(rows.size() >= 2,
                   "CPU level %d has %zu bandwidth points; need at least 2 to "
                   "interpolate",
                   cpu_level, rows.size());
        std::sort(rows.begin(), rows.end(),
                  [](const ProfileEntry& a, const ProfileEntry& b) {
                      return a.config.bw_level < b.config.bw_level;
                  });
        std::vector<double> xs;
        std::vector<double> speedups;
        std::vector<double> powers;
        for (const ProfileEntry& row : rows) {
            xs.push_back(bw_table.BandwidthAt(row.config.bw_level).value());
            speedups.push_back(row.speedup);
            powers.push_back(row.power_mw.value());
        }
        const PiecewiseLinear speedup_fn(xs, speedups);
        const PiecewiseLinear power_fn(xs, powers);

        const int lo = rows.front().config.bw_level;
        const int hi = rows.back().config.bw_level;
        for (int bw = lo; bw <= hi; ++bw) {
            const double mbps = bw_table.BandwidthAt(bw).value();
            dense.push_back(ProfileEntry{SystemConfig{cpu_level, bw, gpu_level},
                                         speedup_fn(mbps), Milliwatts(power_fn(mbps))});
        }
    }
    return ProfileTable(app_name_, std::move(dense), base_speed_gips_);
}

ProfileTable
ProfileTable::PruneEpsilonDominated(double epsilon_rel) const
{
    AEO_ASSERT(epsilon_rel >= 0.0, "negative pruning epsilon");
    const double epsilon = epsilon_rel * max_speedup();

    // Greedy ε-staircase by ascending power: a row earns its (higher) power
    // only by adding more than ε of speedup over everything cheaper. This
    // is deliberately non-chaining: dense ladders of tiny steps (e.g. the 13
    // interpolated bandwidth columns) are thinned without erasing their
    // cumulative speedup.
    std::vector<ProfileEntry> by_power = entries_;
    std::sort(by_power.begin(), by_power.end(),
              [](const ProfileEntry& a, const ProfileEntry& b) {
                  if (a.power_mw != b.power_mw) {
                      return a.power_mw < b.power_mw;
                  }
                  return a.speedup > b.speedup;
              });

    std::vector<ProfileEntry> kept;
    double kept_max_speedup = -1.0;
    for (const ProfileEntry& row : by_power) {
        if (kept.empty() || row.speedup > kept_max_speedup + epsilon) {
            kept.push_back(row);
            kept_max_speedup = std::max(kept_max_speedup, row.speedup);
        }
    }
    AEO_ASSERT(!kept.empty(), "pruning removed every row");
    return ProfileTable(app_name_, std::move(kept), base_speed_gips_);
}

ProfileTable
ProfileTable::PruneSteepTail(double slope_factor,
                             double protect_below_speedup) const
{
    AEO_ASSERT(slope_factor > 0.0, "slope factor must be positive");
    const double speedup_range = max_speedup() - min_speedup();
    if (speedup_range <= 0.0 || entries_.size() < 3) {
        return *this;
    }
    double power_min = entries_.front().power_mw.value();
    double power_max = power_min;
    for (const ProfileEntry& row : entries_) {
        power_min = std::min(power_min, row.power_mw.value());
        power_max = std::max(power_max, row.power_mw.value());
    }
    const double average_slope = (power_max - power_min) / speedup_range;
    if (average_slope <= 0.0) {
        return *this;
    }
    const double threshold = slope_factor * average_slope;

    // entries_ ascend in speedup; scan marginal slopes between consecutive
    // rows and cut at the first edge that is both past the protected region
    // and steeper than the threshold. Power need not be monotone over the
    // raw grid, but a cheaper faster row yields a negative (never steep)
    // slope, so only genuinely expensive speedup triggers the cut.
    size_t cut = entries_.size();
    for (size_t i = 1; i < entries_.size(); ++i) {
        const ProfileEntry& prev = entries_[i - 1];
        const ProfileEntry& row = entries_[i];
        if (prev.speedup < protect_below_speedup) {
            continue;
        }
        const double ds = row.speedup - prev.speedup;
        if (ds <= 0.0) {
            continue;
        }
        const double slope = (row.power_mw.value() - prev.power_mw.value()) / ds;
        if (slope > threshold) {
            cut = i;
            break;
        }
    }
    if (cut >= entries_.size()) {
        return *this;
    }
    std::vector<ProfileEntry> kept(entries_.begin(),
                                   entries_.begin() + static_cast<long>(cut));
    return ProfileTable(app_name_, std::move(kept), base_speed_gips_);
}

std::string
ProfileTable::ToCsv() const
{
    // Heterogeneous tables carry two extra key columns; tables without a
    // LITTLE level keep the historical 5-column format byte-for-byte.
    bool het = false;
    for (const ProfileEntry& entry : entries_) {
        het = het || entry.config.controls_little();
    }
    if (het) {
        CsvWriter writer({"cpu_level", "bw_level", "gpu_level", "little_level",
                          "placement", "speedup", "power_mw"});
        for (const ProfileEntry& entry : entries_) {
            writer.AddRow({StrFormat("%d", entry.config.cpu_level),
                           StrFormat("%d", entry.config.bw_level),
                           StrFormat("%d", entry.config.gpu_level),
                           StrFormat("%d", entry.config.little_level),
                           StrFormat("%d", entry.config.placement),
                           StrFormat("%.9g", entry.speedup),
                           StrFormat("%.9g", entry.power_mw.value())});
        }
        return writer.ToString();
    }
    CsvWriter writer({"cpu_level", "bw_level", "gpu_level", "speedup", "power_mw"});
    for (const ProfileEntry& entry : entries_) {
        writer.AddRow({StrFormat("%d", entry.config.cpu_level),
                       StrFormat("%d", entry.config.bw_level),
                       StrFormat("%d", entry.config.gpu_level),
                       StrFormat("%.9g", entry.speedup),
                       StrFormat("%.9g", entry.power_mw.value())});
    }
    return writer.ToString();
}

ProfileTable
ProfileTable::FromCsv(const std::string& app_name, const std::string& csv,
                      double base_speed_gips)
{
    const auto rows = ParseCsv(csv);
    if (rows.size() < 2) {
        Fatal("profile CSV for '%s' has no data rows", app_name.c_str());
    }
    std::vector<ProfileEntry> entries;
    for (size_t i = 1; i < rows.size(); ++i) {
        const auto& row = rows[i];
        // 5 columns: the historical homogeneous format. 7 columns: the
        // big.LITTLE format with little_level and placement key columns.
        if (row.size() != 5 && row.size() != 7) {
            Fatal("profile CSV row %zu has %zu fields, want 5 or 7", i,
                  row.size());
        }
        const bool het = row.size() == 7;
        long long cpu = 0;
        long long bw = 0;
        long long gpu = 0;
        long long little = kNoLittleCluster;
        long long placement = kPlacementDefault;
        double speedup = 0.0;
        double power = 0.0;
        bool ok = ParseInt64(row[0], &cpu) && ParseInt64(row[1], &bw) &&
                  ParseInt64(row[2], &gpu);
        if (het) {
            ok = ok && ParseInt64(row[3], &little) &&
                 ParseInt64(row[4], &placement) &&
                 ParseDouble(row[5], &speedup) && ParseDouble(row[6], &power);
        } else {
            ok = ok && ParseDouble(row[3], &speedup) && ParseDouble(row[4], &power);
        }
        if (!ok) {
            Fatal("profile CSV row %zu is malformed", i);
        }
        SystemConfig config{static_cast<int>(cpu), static_cast<int>(bw),
                            static_cast<int>(gpu)};
        config.little_level = static_cast<int>(little);
        config.placement = static_cast<int>(placement);
        entries.push_back(ProfileEntry{config, speedup, Milliwatts(power)});
    }
    return ProfileTable(app_name, std::move(entries), base_speed_gips);
}

std::string
ProfileTable::ToString() const
{
    std::ostringstream out;
    out << StrFormat("Profile table for %s (base speed %.4f GIPS, %zu configs)\n",
                     app_name_.c_str(), base_speed_gips_, entries_.size());
    out << StrFormat("  %-4s %-14s %10s %12s\n", "#", "config", "speedup",
                     "power (mW)");
    for (size_t i = 0; i < entries_.size(); ++i) {
        const ProfileEntry& entry = entries_[i];
        out << StrFormat("  %-4zu %-14s %10.4f %12.2f\n", i + 1,
                         entry.config.ToString().c_str(), entry.speedup,
                         entry.power_mw.value());
    }
    return out.str();
}

}  // namespace aeo
