#include "core/het_config_space.h"

#include <cstddef>

#include "common/logging.h"

namespace aeo {

std::vector<int>
ConvexHullLevels(int size, const std::vector<double>& freq_at,
                 const std::vector<double>& power_at)
{
    AEO_ASSERT(size >= 1, "empty level range");
    AEO_ASSERT(freq_at.size() == static_cast<size_t>(size) &&
                   power_at.size() == static_cast<size_t>(size),
               "curve arrays must match the level count");
    for (int i = 1; i < size; ++i) {
        AEO_ASSERT(freq_at[static_cast<size_t>(i)] >
                       freq_at[static_cast<size_t>(i - 1)],
                   "frequencies must be strictly increasing");
    }

    // Andrew monotone chain, lower hull only: levels are already sorted by
    // frequency, so one forward walk suffices. A point is popped when it
    // lies on or above the segment joining its neighbours — on-segment
    // (collinear) points are redundant for time-mixing and dropping them
    // keeps the hull minimal.
    std::vector<int> hull;
    hull.reserve(static_cast<size_t>(size));
    for (int i = 0; i < size; ++i) {
        const auto above_or_on = [&]() {
            if (hull.size() < 2) {
                return false;
            }
            const auto a = static_cast<size_t>(hull[hull.size() - 2]);
            const auto b = static_cast<size_t>(hull[hull.size() - 1]);
            const auto c = static_cast<size_t>(i);
            const double cross =
                (freq_at[b] - freq_at[a]) * (power_at[c] - power_at[a]) -
                (power_at[b] - power_at[a]) * (freq_at[c] - freq_at[a]);
            return cross <= 0.0;
        };
        while (above_or_on()) {
            hull.pop_back();
        }
        hull.push_back(i);
    }
    return hull;
}

std::vector<double>
ClusterPowerCurve(const PowerModel& model, const ClusterSpec& cluster)
{
    const FrequencyTable& table = cluster.table;
    std::vector<double> curve;
    curve.reserve(static_cast<size_t>(table.size()));
    for (int level = 0; level < table.size(); ++level) {
        curve.push_back(model.ClusterCpuPower(
            table.FrequencyAt(level), table.VoltageAt(level), cluster.num_cores,
            /*busy_cores=*/static_cast<double>(cluster.num_cores),
            cluster.dyn_power_scale, cluster.leak_power_scale,
            /*leak_temp_scale=*/1.0));
    }
    return curve;
}

std::vector<int>
ConvexPrunedLevels(const PowerModel& model, const ClusterSpec& cluster)
{
    const FrequencyTable& table = cluster.table;
    std::vector<double> freqs;
    freqs.reserve(static_cast<size_t>(table.size()));
    for (int level = 0; level < table.size(); ++level) {
        freqs.push_back(table.FrequencyAt(level).value());
    }
    return ConvexHullLevels(table.size(), freqs, ClusterPowerCurve(model, cluster));
}

std::vector<SystemConfig>
EnumerateHetConfigs(const ClusterTopology& topology, const PowerModel& model,
                    const HetSpaceOptions& options)
{
    std::vector<int> bw_levels = options.bw_levels;
    if (bw_levels.empty()) {
        for (int bw = 0; bw < topology.bandwidth_table().size(); ++bw) {
            bw_levels.push_back(bw);
        }
    }

    const auto primary_levels =
        options.prune_convex
            ? ConvexPrunedLevels(model, topology.primary())
            : [&] {
                  std::vector<int> all;
                  for (int i = 0; i < topology.primary().table.size(); ++i) {
                      all.push_back(i);
                  }
                  return all;
              }();

    std::vector<SystemConfig> grid;
    if (!topology.is_heterogeneous()) {
        // Legacy (cpu, bw) grid: sentinels untouched, byte-compatible with
        // the historical enumeration.
        grid.reserve(primary_levels.size() * bw_levels.size());
        for (const int cpu : primary_levels) {
            for (const int bw : bw_levels) {
                grid.push_back(SystemConfig{cpu, bw});
            }
        }
        return grid;
    }

    const auto little_levels =
        options.prune_convex
            ? ConvexPrunedLevels(model, topology.little())
            : [&] {
                  std::vector<int> all;
                  for (int i = 0; i < topology.little().table.size(); ++i) {
                      all.push_back(i);
                  }
                  return all;
              }();

    std::vector<ThreadPlacement> placements = options.placements;
    if (placements.empty()) {
        placements = topology.AdmissiblePlacements();
    }

    grid.reserve(primary_levels.size() * little_levels.size() *
                 bw_levels.size() * placements.size());
    for (const int big : primary_levels) {
        for (const int little : little_levels) {
            for (const int bw : bw_levels) {
                for (const ThreadPlacement placement : placements) {
                    SystemConfig config{big, bw};
                    config.little_level = little;
                    config.placement = static_cast<int>(placement);
                    grid.push_back(config);
                }
            }
        }
    }
    return grid;
}

}  // namespace aeo
