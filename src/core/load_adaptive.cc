#include "core/load_adaptive.h"

#include <cmath>

#include "common/logging.h"

namespace aeo {

LoadAdaptiveProfile::LoadAdaptiveProfile(std::vector<LoadConditionProfile> conditions)
    : conditions_(std::move(conditions))
{
    AEO_ASSERT(!conditions_.empty(), "need at least one profiled condition");
    for (const LoadConditionProfile& condition : conditions_) {
        AEO_ASSERT(condition.free_memory_mb > 0.0,
                   "non-positive free-memory signature");
        AEO_ASSERT(condition.default_gips > 0.0, "non-positive target");
    }
}

const LoadConditionProfile&
LoadAdaptiveProfile::SelectFor(double runtime_free_memory_mb) const
{
    AEO_ASSERT(runtime_free_memory_mb > 0.0, "non-positive runtime free memory");
    const LoadConditionProfile* best = &conditions_.front();
    double best_dist = std::fabs(std::log(runtime_free_memory_mb) -
                                 std::log(best->free_memory_mb));
    for (const LoadConditionProfile& condition : conditions_) {
        const double dist = std::fabs(std::log(runtime_free_memory_mb) -
                                      std::log(condition.free_memory_mb));
        if (dist < best_dist) {
            best = &condition;
            best_dist = dist;
        }
    }
    return *best;
}

}  // namespace aeo
