#include "core/profile_drift.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace aeo {

ProfileDriftDetector::ProfileDriftDetector(size_t table_size, DriftConfig config)
    : config_(config), states_(table_size)
{
    AEO_ASSERT(table_size > 0, "drift detector over an empty table");
    AEO_ASSERT(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0,
               "drift EWMA alpha out of (0, 1]");
    AEO_ASSERT(config_.threshold >= 0.0, "negative drift threshold");
    AEO_ASSERT(config_.min_weight >= 0.0, "negative drift min weight");
    AEO_ASSERT(config_.min_correction > 0.0 &&
                   config_.min_correction <= 1.0 &&
                   config_.max_correction >= 1.0,
               "drift correction bounds must bracket 1");
}

void
ProfileDriftDetector::Observe(double time_s, size_t entry_index, double weight,
                              double power_residual, double speedup_residual)
{
    if (!config_.enabled) {
        return;
    }
    AEO_ASSERT(entry_index < states_.size(), "drift index %zu out of range",
               entry_index);
    if (weight <= 0.0 || !std::isfinite(power_residual) ||
        !std::isfinite(speedup_residual) || power_residual <= 0.0 ||
        speedup_residual <= 0.0) {
        return;  // Unattributable or garbage cycle: learn nothing.
    }
    EntryState& state = states_[entry_index];
    state.weight += weight;
    // The EWMA starts at 1 (no drift) and blends proportionally to the dwell
    // weight, so a 10 % visit moves the estimate a tenth as far as a full
    // cycle would.
    const double alpha = std::min(1.0, config_.ewma_alpha * weight);
    state.power_ewma =
        (1.0 - alpha) * state.power_ewma + alpha * power_residual;
    state.speedup_ewma =
        (1.0 - alpha) * state.speedup_ewma + alpha * speedup_residual;

    // Every observation also feeds the table-wide state backing the
    // global-fallback correction for rows not yet visited.
    global_.weight += weight;
    global_.power_ewma =
        (1.0 - alpha) * global_.power_ewma + alpha * power_residual;
    global_.speedup_ewma =
        (1.0 - alpha) * global_.speedup_ewma + alpha * speedup_residual;

    DriftRecord record;
    record.time_s = time_s;
    record.entry_index = entry_index;
    record.weight = weight;
    record.power_residual = power_residual;
    record.speedup_residual = speedup_residual;
    record.power_ewma = state.power_ewma;
    record.speedup_ewma = state.speedup_ewma;
    // aeo-lint: allow(hot-path-alloc) -- the drift trace is the
    // detector's output artifact; growth here IS the product.
    trace_.push_back(record);
}

double
ProfileDriftDetector::CorrectionFrom(const EntryState& state, double ewma) const
{
    if (!config_.enabled || state.weight < config_.min_weight ||
        std::abs(ewma - 1.0) <= config_.threshold) {
        return 1.0;
    }
    return std::clamp(ewma, config_.min_correction, config_.max_correction);
}

double
ProfileDriftDetector::PowerCorrection(size_t entry_index) const
{
    AEO_ASSERT(entry_index < states_.size(), "drift index %zu out of range",
               entry_index);
    const EntryState& state = states_[entry_index];
    if (state.weight < config_.min_weight) {
        return GlobalPowerCorrection();
    }
    return CorrectionFrom(state, state.power_ewma);
}

double
ProfileDriftDetector::SpeedupCorrection(size_t entry_index) const
{
    AEO_ASSERT(entry_index < states_.size(), "drift index %zu out of range",
               entry_index);
    const EntryState& state = states_[entry_index];
    if (state.weight < config_.min_weight) {
        return GlobalSpeedupCorrection();
    }
    return CorrectionFrom(state, state.speedup_ewma);
}

double
ProfileDriftDetector::GlobalPowerCorrection() const
{
    return CorrectionFrom(global_, global_.power_ewma);
}

double
ProfileDriftDetector::GlobalSpeedupCorrection() const
{
    return CorrectionFrom(global_, global_.speedup_ewma);
}

bool
ProfileDriftDetector::AnyCorrection() const
{
    return corrected_entry_count() > 0;
}

size_t
ProfileDriftDetector::corrected_entry_count() const
{
    size_t count = 0;
    for (size_t i = 0; i < states_.size(); ++i) {
        if (PowerCorrection(i) != 1.0 || SpeedupCorrection(i) != 1.0) {
            ++count;
        }
    }
    return count;
}

}  // namespace aeo
