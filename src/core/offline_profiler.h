/**
 * @file
 * Stage 1 of the solution: offline profiling (§III-A).
 *
 * The profiler pins each candidate system configuration through the
 * userspace governors, runs the application under a chosen background load,
 * measures speedup and Monsoon power (averaged over three runs, like the
 * paper) and assembles the profile table. In the sparse mode it measures
 * every other admitted CPU level at only the lowest and highest memory
 * bandwidths (≤ 9×2 = 18 configurations on the Nexus 6) and linearly
 * interpolates the remaining bandwidth columns.
 */
#ifndef AEO_CORE_OFFLINE_PROFILER_H_
#define AEO_CORE_OFFLINE_PROFILER_H_

#include <functional>
#include <memory>
#include <vector>

#include "apps/app_model.h"
#include "apps/background_load.h"
#include "core/batch_runner.h"
#include "core/profile_table.h"
#include "device/device.h"

namespace aeo {

/** Builds a fresh device for one measurement run. */
using DeviceFactory = std::function<std::unique_ptr<Device>(uint64_t seed)>;

/** The default factory: a stock Nexus 6. */
DeviceFactory MakeDefaultDeviceFactory();

/** Profiling options. */
struct ProfilerOptions {
    /** Sparse grid (extreme bandwidths + interpolation; and, when no
     * explicit level list is given, every other CPU level). */
    bool sparse = true;
    /** Build a CPU-only table (bandwidth left to cpubw_hwmon; §V-D). */
    bool cpu_only = false;
    /**
     * Exact 0-based CPU levels to measure — the paper's per-application
     * pruned lists (§V-A), which are already "alternate" selections (e.g.
     * Spotify profiles exactly levels 1, 3, 5). Empty = every other level
     * of the full range in sparse mode, all 18 otherwise.
     */
    std::vector<int> cpu_levels;
    /**
     * GPU levels to include (§VII extension). Empty = leave the GPU to its
     * default governor (the paper's configuration).
     */
    std::vector<int> gpu_levels;
    /**
     * Explicit measurement grid. Non-empty overrides every grid knob above
     * and disables bandwidth interpolation — the big.LITTLE path, where the
     * caller enumerates the (big, little, bw, placement) cross-product with
     * EnumerateHetConfigs() and hands the pruned candidate list straight to
     * the profiler.
     */
    std::vector<SystemConfig> configs;
    /** Runs averaged per configuration (the paper uses 3). */
    int runs = 3;
    /** Measurement window per run. */
    SimTime measure_duration = SimTime::FromSeconds(20);
    /** Background load during profiling (the paper profiles under BL). */
    BackgroundKind load = BackgroundKind::kBaseline;
    /** Seed for the profiling runs. */
    uint64_t seed = 1000;
    /**
     * Parallel fan-out of the (configuration, run) grid. Every run builds
     * its own seeded Device, so the measurements are independent; results
     * are reduced in submission order, making the table bit-identical to a
     * serial profile at any worker count. jobs = 1 forces the historical
     * serial path.
     */
    BatchOptions batch;
};

/** The offline profiling stage. */
class OfflineProfiler {
  public:
    explicit OfflineProfiler(DeviceFactory factory = MakeDefaultDeviceFactory());

    /** Profiles @p app and returns its table. */
    ProfileTable Profile(const AppSpec& app, const ProfilerOptions& options) const;

    /**
     * Measures one pinned configuration (averaged over options.runs).
     * @p config may carry kBwDefaultGovernor for CPU-only profiling.
     */
    ProfileMeasurement MeasureConfig(const AppSpec& app, const SystemConfig& config,
                                     const ProfilerOptions& options) const;

  private:
    DeviceFactory factory_;
};

}  // namespace aeo

#endif  // AEO_CORE_OFFLINE_PROFILER_H_
