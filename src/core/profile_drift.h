/**
 * @file
 * Online profile-drift detection. The offline profile table (§III-A) is
 * measured on a cool, healthy device; at run time the plant drifts away
 * from it — temperature-dependent leakage inflates power, contention or
 * aging erodes speedup. The controller compares what it *measured* each
 * cycle against what the table *predicted* for the configurations actually
 * delivered (per read-back verification), maintains a per-configuration
 * EWMA of the multiplicative residual, and exposes bounded correction
 * factors once the residual is both well-observed and beyond a noise
 * threshold. Corrections multiply the working copy of the table, so the
 * LP re-optimizes against reality rather than the stale profile.
 *
 * Alongside the per-row states the detector keeps one *global* residual
 * EWMA fed by every observation; rows without enough evidence of their own
 * inherit the global correction. The dominant drift mechanism (temperature-
 * dependent leakage) shifts the whole power surface at once, and without
 * the global fallback the optimizer plays whack-a-mole: corrected rows look
 * expensive, so the LP flees to not-yet-visited rows whose stale entries
 * look artificially cheap.
 */
#ifndef AEO_CORE_PROFILE_DRIFT_H_
#define AEO_CORE_PROFILE_DRIFT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aeo {

/** Drift-detector tuning. */
struct DriftConfig {
    /**
     * Master switch; disabled, all corrections are exactly 1. Off by
     * default: corrections react to genuinely persistent residuals, but a
     * phase-heavy application passes through transients (the Kalman base-
     * speed estimate catching up to a phase change) that can momentarily
     * look like drift — a controller run must opt in deliberately, keeping
     * default runs bit-identical to the uncorrected controller.
     */
    bool enabled = false;
    /** EWMA smoothing factor per unit of dwell weight. */
    double ewma_alpha = 0.25;
    /**
     * Dead zone: corrections activate only once |EWMA − 1| exceeds this.
     * Fault-free residuals sit within a few percent (measurement noise,
     * quantization), so the default keeps healthy runs untouched.
     */
    double threshold = 0.10;
    /**
     * Minimum accumulated dwell weight (in control cycles' worth of
     * residency) before an entry's correction may activate — a few noisy
     * cycles must not rewrite the table.
     */
    double min_weight = 3.0;
    /** Correction factors are clamped into [min, max]. */
    double min_correction = 0.5;
    double max_correction = 2.0;
};

/** One drift observation, kept for analysis. */
struct DriftRecord {
    double time_s = 0.0;
    /** Profile-table row the observation attributes to. */
    size_t entry_index = 0;
    /** Dwell weight of the attribution (fraction of the cycle). */
    double weight = 0.0;
    /** measured/predicted power this cycle. */
    double power_residual = 1.0;
    /** measured/predicted speedup this cycle. */
    double speedup_residual = 1.0;
    /** Smoothed residuals after this observation. */
    double power_ewma = 1.0;
    double speedup_ewma = 1.0;
};

/** Per-configuration EWMA drift state over a profile table's rows. */
class ProfileDriftDetector {
  public:
    /**
     * @param table_size Number of rows in the profile table tracked.
     * @param config     Tuning.
     */
    explicit ProfileDriftDetector(size_t table_size, DriftConfig config = {});

    /**
     * Feeds one cycle's residuals for a visited row.
     *
     * @param time_s           Simulation time of the observation.
     * @param entry_index      Row visited (by *delivered* configuration).
     * @param weight           Fraction of the cycle spent on the row.
     * @param power_residual   measured/predicted power.
     * @param speedup_residual measured/predicted speedup.
     */
    void Observe(double time_s, size_t entry_index, double weight,
                 double power_residual, double speedup_residual);

    /**
     * Multiplicative power correction for a row (1 = no correction). Rows
     * whose own accumulated weight is below min_weight inherit the global
     * correction instead.
     */
    double PowerCorrection(size_t entry_index) const;

    /** Multiplicative speedup correction for a row (1 = no correction);
     * falls back to the global correction like PowerCorrection. */
    double SpeedupCorrection(size_t entry_index) const;

    /** Table-wide power correction from the global residual EWMA. */
    double GlobalPowerCorrection() const;

    /** Table-wide speedup correction from the global residual EWMA. */
    double GlobalSpeedupCorrection() const;

    /** True when any row currently has an active correction. */
    bool AnyCorrection() const;

    /** Rows whose correction is currently active. */
    size_t corrected_entry_count() const;

    /** All observations so far. */
    const std::vector<DriftRecord>& trace() const { return trace_; }

    /** Total observations fed. */
    uint64_t observation_count() const { return trace_.size(); }

    const DriftConfig& config() const { return config_; }

  private:
    struct EntryState {
        double weight = 0.0;
        double power_ewma = 1.0;
        double speedup_ewma = 1.0;
    };

    double CorrectionFrom(const EntryState& state, double ewma) const;

    DriftConfig config_;
    std::vector<EntryState> states_;
    /** Table-wide residual state, fed by every observation. */
    EntryState global_;
    std::vector<DriftRecord> trace_;
};

}  // namespace aeo

#endif  // AEO_CORE_PROFILE_DRIFT_H_
