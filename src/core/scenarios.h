/**
 * @file
 * Per-application experiment scenarios: run lengths, how performance is
 * judged, and which CPU levels enter the profile table — the application-
 * specific pruning the paper applies (§V-A):
 *
 *  - VidCon / MobileBench: levels below 7 cost >30–50 % performance, so
 *    only 7–18 are profiled;
 *  - AngryBirds: GIPS saturates by level 5, so only 1–5 are profiled;
 *  - WeChat: the camera fails below level 3 and nothing improves past 7;
 *  - MX Player: playback stutters below level 5;
 *  - Spotify: audio is fine even at the bottom — only levels 1, 3, 5.
 *
 * Levels here are 0-based (the paper's numbering minus one).
 */
#ifndef AEO_CORE_SCENARIOS_H_
#define AEO_CORE_SCENARIOS_H_

#include <string>
#include <vector>

#include "sim/time.h"

namespace aeo {

/** How an application's run is driven and judged. */
struct AppScenario {
    std::string app_name;
    /** True: runs to completion (execution time matters). */
    bool batch = false;
    /** Paced apps: run length. Batch apps: completion-time cap. */
    SimTime run_duration;
    /**
     * Measurement window per profiling run — long enough to cover the
     * app's full phase cycle (e.g. Spotify's 20 s song cadence), or the
     * profiled base speed misrepresents the long-run rate.
     */
    SimTime profile_duration = SimTime::FromSeconds(20);
    /** 0-based CPU levels admitted to the profile table. */
    std::vector<int> profile_cpu_levels;
};

/** Scenario for one of the built-in applications; Fatal() if unknown. */
AppScenario GetAppScenario(const std::string& app_name);

/** All apps evaluated in the paper's Tables III–V, in order. */
std::vector<std::string> EvaluationAppNames();

}  // namespace aeo

#endif  // AEO_CORE_SCENARIOS_H_
