/**
 * @file
 * The deterministic parallel batch-execution layer. The paper's entire
 * evaluation (§V) is a grid of independent device simulations — offline
 * profiling alone is up to 18×13 configurations × 3 runs — and each run
 * constructs its own Device from a seed, so runs share no mutable state.
 * BatchRunner fans a vector of such self-contained jobs across a fixed-size
 * ThreadPool and returns the results **in submission order**:
 *
 *  - with jobs == 1 no thread machinery is touched at all — the tasks run
 *    inline, in order, on the calling thread, reproducing the historical
 *    serial path byte-for-byte;
 *  - with jobs == N the tasks run concurrently, but because every task is
 *    seeded and self-contained, and results are collected through futures
 *    in submission order, the output vector is bit-identical to jobs == 1
 *    regardless of worker count or completion order.
 *
 * The determinism contract therefore is: parallelism changes wall-clock
 * time and nothing else. A ctest (batch_determinism_test) asserts it.
 */
#ifndef AEO_CORE_BATCH_RUNNER_H_
#define AEO_CORE_BATCH_RUNNER_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <functional>
#include <future>
#include <optional>
#include <utility>
#include <vector>

#include "common/thread_pool.h"

namespace aeo {

/** Fan-out tuning for the batch layer. */
struct BatchOptions {
    /** Worker count; <= 0 means hardware_concurrency(). 1 = inline/serial. */
    int jobs = 0;
};

/** @p options.jobs with the <=0 default resolved to the hardware. */
int ResolveJobs(const BatchOptions& options);

/** Runs vectors of self-contained jobs with submission-order results. */
class BatchRunner {
  public:
    explicit BatchRunner(BatchOptions options = {});

    /** Resolved worker count this runner fans out to. */
    int jobs() const { return jobs_; }

    /**
     * Runs every task and returns their results in submission order. A task
     * that throws has its exception rethrown here (after which remaining
     * tasks may or may not have run). Tasks must be self-contained: no
     * shared mutable state, all inputs captured by value or const ref.
     */
    template <typename R>
    std::vector<R>
    RunOrdered(std::vector<std::function<R()>> tasks) const
    {
        std::vector<R> results;
        results.reserve(tasks.size());
        if (jobs_ == 1 || tasks.size() <= 1) {
            // The serial path: inline, in order, no threads — bit-identical
            // to the code this layer replaced.
            for (auto& task : tasks) {
                results.push_back(task());
            }
            return results;
        }
        const size_t workers =
            std::min(static_cast<size_t>(jobs_), tasks.size());
        ThreadPool pool(workers);
        std::vector<std::future<R>> futures;
        futures.reserve(tasks.size());
        // Submit() blocks when the bounded queue fills; workers drain it, so
        // this loop cannot deadlock.
        for (auto& task : tasks) {
            futures.push_back(pool.Submit(std::move(task)));
        }
        for (auto& future : futures) {
            results.push_back(future.get());
        }
        return results;
    }

    /**
     * Indexed parallel-for: runs @p fn(0) … fn(count - 1) and returns the
     * results by index. Same determinism contract as RunOrdered — results
     * are placed by index, so the output is bit-identical at any worker
     * count — but the serial fraction is a single atomic fetch_add per job
     * instead of a per-job closure + packaged_task + future + bounded-queue
     * handoff: the coordination cost no longer grows with the grid. This is
     * the fan-out path for homogeneous grids (offline profiling, sweeps);
     * RunOrdered remains for heterogeneous task vectors.
     *
     * @p fn must be safe to invoke concurrently from multiple threads for
     * distinct indices. If any invocation throws, one such exception is
     * rethrown after all workers stop pulling new indices (remaining
     * indices may or may not have run).
     */
    template <typename R, typename Fn>
    std::vector<R>
    RunIndexed(size_t count, Fn&& fn) const
    {
        std::vector<R> results;
        results.reserve(count);
        if (jobs_ == 1 || count <= 1) {
            // The serial path: inline, in order, no threads.
            for (size_t i = 0; i < count; ++i) {
                results.push_back(fn(i));
            }
            return results;
        }
        const size_t workers = std::min(static_cast<size_t>(jobs_), count);
        std::vector<std::optional<R>> slots(count);
        std::atomic<size_t> next{0};
        {
            ThreadPool pool(workers);
            std::vector<std::future<void>> futures;
            futures.reserve(workers);
            for (size_t w = 0; w < workers; ++w) {
                futures.push_back(pool.Submit([&slots, &next, &fn, count] {
                    for (size_t i = next.fetch_add(1); i < count;
                         i = next.fetch_add(1)) {
                        slots[i].emplace(fn(i));
                    }
                }));
            }
            for (auto& future : futures) {
                future.get();
            }
        }
        for (auto& slot : slots) {
            results.push_back(std::move(*slot));
        }
        return results;
    }

  private:
    int jobs_;
};

}  // namespace aeo

#endif  // AEO_CORE_BATCH_RUNNER_H_
