#include "core/performance_regulator.h"

#include <algorithm>

#include "common/logging.h"
#include "common/math_util.h"

namespace aeo {

PerformanceRegulator::PerformanceRegulator(const RegulatorConfig& config)
    : target_gips_(config.target_gips),
      integrator_(/*initial_output=*/
                  Clamp(config.initial_base_speed > 0.0
                            ? config.target_gips / config.initial_base_speed
                            : config.min_speedup,
                        config.min_speedup, config.max_speedup),
                  config.min_speedup, config.max_speedup),
      kalman_(config.initial_base_speed, /*initial_variance=*/
              config.initial_base_speed * config.initial_base_speed * 0.25,
              config.kalman_process_var, config.kalman_measurement_var)
{
    AEO_ASSERT(config.target_gips > 0.0, "target performance must be positive");
    AEO_ASSERT(config.initial_base_speed > 0.0, "initial base speed must be positive");
    AEO_ASSERT(config.min_speedup <= config.max_speedup, "bad speedup range");
    integrator_.set_surplus_band(config.surplus_band);
    integrator_.set_max_step_down(config.max_step_down);
}

double
PerformanceRegulator::Step(double measured_gips)
{
    AEO_ASSERT(measured_gips >= 0.0, "negative measured performance");

    // The measurement was produced while the integrator's current output
    // s_{n−1} was applied: y_n = s_{n−1} · b_n + v.
    const double h = integrator_.output();
    double base = kalman_.Update(measured_gips, h);
    // Guard: a wildly wrong transient estimate must not flip the loop sign.
    base = std::max(base, 1e-4);

    last_error_ = target_gips_ - measured_gips;
    return integrator_.Step(last_error_, base);
}

}  // namespace aeo
