#include "core/config_scheduler.h"

#include <cmath>

#include "common/logging.h"
#include "common/strings.h"

namespace aeo {

ConfigScheduler::ConfigScheduler(Device* device, SimTime min_dwell)
    : device_(device), min_dwell_(min_dwell)
{
    AEO_ASSERT(device_ != nullptr, "scheduler needs a device");
    AEO_ASSERT(min_dwell_ > SimTime::Zero(), "minimum dwell must be positive");
}

void
ConfigScheduler::ApplyConfigNow(const SystemConfig& config)
{
    Sysfs& sysfs = device_->sysfs();
    const long long khz = std::llround(
        device_->cluster().table().FrequencyAt(config.cpu_level).megahertz() *
        1000.0);
    sysfs.Write(std::string(kCpufreqSysfsRoot) + "/scaling_setspeed",
                StrFormat("%lld", khz));
    ++write_count_;
    if (config.controls_bandwidth()) {
        const long long mbps = std::llround(
            device_->bus().table().BandwidthAt(config.bw_level).value());
        sysfs.Write(std::string(kDevfreqSysfsRoot) + "/userspace/set_freq",
                    StrFormat("%lld", mbps));
        ++write_count_;
    }
    if (config.controls_gpu()) {
        const long long mhz =
            std::llround(device_->gpu().MhzAt(config.gpu_level));
        sysfs.Write(std::string(kGpuSysfsRoot) + "/userspace/set_freq",
                    StrFormat("%lld", mhz));
        ++write_count_;
    }
}

void
ConfigScheduler::Apply(const ConfigSchedule& schedule, const ProfileTable& table)
{
    AEO_ASSERT(!schedule.slots.empty(), "empty schedule");

    // Cancel configuration switches still pending from the previous cycle.
    for (const EventId id : pending_) {
        device_->sim().Cancel(id);
    }
    pending_.clear();

    // Quantize each dwell to the min-dwell grid. With at most two slots,
    // rounding the first and giving the remainder to the second preserves
    // the cycle budget; a slot shorter than half the minimum dwell merges
    // into the other.
    const double grid = min_dwell_.seconds();
    double total = 0.0;
    for (const ScheduleSlot& slot : schedule.slots) {
        total += slot.seconds;
    }

    std::vector<ScheduleSlot> quantized;
    if (schedule.slots.size() == 1) {
        quantized.push_back(schedule.slots.front());
    } else {
        const ScheduleSlot& first = schedule.slots.front();
        const double rounded = std::round(first.seconds / grid) * grid;
        if (rounded <= 0.0) {
            quantized.push_back(ScheduleSlot{schedule.slots.back().entry_index, total});
        } else if (rounded >= total) {
            quantized.push_back(ScheduleSlot{first.entry_index, total});
        } else {
            quantized.push_back(ScheduleSlot{first.entry_index, rounded});
            quantized.push_back(
                ScheduleSlot{schedule.slots.back().entry_index, total - rounded});
        }
    }

    // Apply the first slot now; schedule the rest.
    SimTime offset = SimTime::Zero();
    for (size_t i = 0; i < quantized.size(); ++i) {
        const SystemConfig config = table.entries()[quantized[i].entry_index].config;
        if (i == 0) {
            ApplyConfigNow(config);
        } else {
            pending_.push_back(device_->sim().ScheduleAfter(
                offset, [this, config] { ApplyConfigNow(config); }));
        }
        offset += SimTime::FromSecondsF(quantized[i].seconds);
    }
}

}  // namespace aeo
