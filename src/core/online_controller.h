/**
 * @file
 * The online controller K (§III-B, Fig. 2): each control cycle it
 *
 *  1. reads the measured performance y_n from the perf tool,
 *  2. runs the performance regulator (adaptive integrator + Kalman base-
 *     speed estimator) to obtain the required speedup s_n,
 *  3. runs the energy optimizer (the LP of equations (4)–(7)) to obtain the
 *     dwell-time schedule u_n, and
 *  4. hands u_n to the scheduler S, which actuates the userspace governors
 *     through sysfs.
 *
 * The controller works for both coordinated (CPU + bandwidth) and CPU-only
 * control — the difference is entirely in the profile table it is given
 * (CPU-only tables carry the kBwDefaultGovernor sentinel and leave the bus
 * with cpubw_hwmon, reproducing the §V-D ablation).
 *
 * The loop degrades gracefully under failure (see DESIGN.md §"Failure
 * model"): a missing or implausible performance measurement holds the
 * Kalman estimate and reuses the previous schedule, and a watchdog hands
 * the device back to the stock governors after K consecutive control
 * cycles whose actuation failed.
 */
#ifndef AEO_CORE_ONLINE_CONTROLLER_H_
#define AEO_CORE_ONLINE_CONTROLLER_H_

#include <memory>
#include <vector>

#include "core/config_scheduler.h"
#include "core/energy_optimizer.h"
#include "core/performance_regulator.h"
#include "core/profile_table.h"
#include "device/device.h"
#include "sim/periodic_task.h"

namespace aeo {

/** Controller tuning (paper values as defaults). */
struct ControllerConfig {
    /** Target performance r, GIPS. Must be set. */
    double target_gips = 0.0;
    /** Control cycle duration T (§IV-B chooses 2 s). */
    SimTime control_cycle = SimTime::FromSeconds(2);
    /** Minimum dwell per configuration (§V-A: 200 ms). */
    SimTime min_dwell = SimTime::Millis(200);
    /** Optimizer backend. */
    OptimizerBackend backend = OptimizerBackend::kConvexHull;
    /** Kalman tuning. */
    double kalman_process_var = 1e-5;
    double kalman_measurement_var = 1e-4;
    /** Disable the Kalman filter (ablation): hold b̂ at the profiled value. */
    bool use_kalman = true;
    /** Regulator+optimizer computation cost (§V-A1: <10 ms at ~25 mW). */
    double compute_power_mw = 25.0;
    double compute_seconds = 0.010;
    /** Cost per sysfs actuation write (§V-A1: ~14 mW during transitions). */
    double actuation_power_mw = 14.0;
    double actuation_seconds = 0.0002;
    /** Retry/backoff policy handed to the config scheduler. */
    ActuationRetryPolicy retry = {};
    /**
     * Watchdog threshold K: after this many consecutive control cycles whose
     * actuation failed, the controller abandons userspace control and hands
     * the device back to the stock governors.
     */
    int watchdog_threshold = 3;
    /**
     * Plausibility ceiling for a measured performance sample, as a multiple
     * of (base-speed estimate × max profiled speedup). A window average
     * above this is treated as garbage and the cycle runs degraded.
     */
    double plausibility_factor = 4.0;
};

/** One per-cycle record for analysis. */
struct ControlCycleRecord {
    double time_s = 0.0;
    double measured_gips = 0.0;
    double required_speedup = 0.0;
    double base_speed_estimate = 0.0;
    double expected_power_mw = 0.0;
    SystemConfig low_config;
    SystemConfig high_config;
    /** Perf samples the measurement averaged over (0 = all dropped). */
    uint64_t perf_samples = 0;
    /** True if this cycle ran in degraded mode (held estimate, reused the
     * previous schedule) because the measurement was missing or garbage. */
    bool degraded = false;
};

/** The feedback controller driving one device. */
class OnlineController {
  public:
    /**
     * @param device Plant; must outlive the controller.
     * @param table  Offline profile of the controlled application (copied).
     * @param config Tuning; target_gips must be positive.
     */
    OnlineController(Device* device, ProfileTable table, ControllerConfig config);

    /**
     * Takes over the device: switches the governors to userspace (bandwidth
     * only when the table controls it), starts perf sampling, applies the
     * initial schedule and begins the control cycle.
     */
    void Start();

    /** Stops the control cycle and perf sampling. */
    void Stop();

    /** Number of completed control cycles. */
    size_t cycle_count() const { return history_.size(); }

    /** Per-cycle trace. */
    const std::vector<ControlCycleRecord>& history() const { return history_; }

    /** The profile table in use. */
    const ProfileTable& table() const { return table_; }

    /** Current base-speed estimate, GIPS. */
    double base_speed_estimate() const;

    /** The regulator (for tests). */
    const PerformanceRegulator& regulator() const { return regulator_; }

    /** The scheduler (actuation health counters, for tests and benches). */
    const ConfigScheduler& scheduler() const { return scheduler_; }

    /** True once the watchdog has handed the device back to the stock
     * governors; the control cycle no longer runs. */
    bool fallback_engaged() const { return fallback_engaged_; }

    /** Cycles that ran in degraded mode (missing/garbage measurement). */
    uint64_t degraded_cycle_count() const { return degraded_cycle_count_; }

  private:
    void RunCycle();

    /** Watchdog action: revert to the stock governors and stop actuating. */
    void EngageFallback();

    Device* device_;
    ProfileTable table_;
    ControllerConfig config_;
    EnergyOptimizer optimizer_;
    PerformanceRegulator regulator_;
    ConfigScheduler scheduler_;
    PeriodicTask cycle_task_;
    std::vector<ControlCycleRecord> history_;
    bool controls_bandwidth_;
    bool controls_gpu_;
    ConfigSchedule last_schedule_;
    bool has_last_schedule_ = false;
    bool fallback_engaged_ = false;
    uint64_t degraded_cycle_count_ = 0;
};

}  // namespace aeo

#endif  // AEO_CORE_ONLINE_CONTROLLER_H_
