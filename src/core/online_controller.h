/**
 * @file
 * The online controller K (§III-B, Fig. 2): each control cycle it
 *
 *  1. reads the measured performance y_n from the perf tool,
 *  2. runs the performance regulator (adaptive integrator + Kalman base-
 *     speed estimator) to obtain the required speedup s_n,
 *  3. runs the energy optimizer (the LP of equations (4)–(7)) to obtain the
 *     dwell-time schedule u_n, and
 *  4. hands u_n to the platform's actuator, which drives the userspace
 *     governors through sysfs.
 *
 * The controller talks to hardware exclusively through the narrow
 * aeo::platform interfaces (perf sampling, actuation, governor pinning,
 * thermal read-back); it never touches sysfs or the device model itself,
 * so it runs unchanged against the simulated Nexus 6 (SimPlatform) or a
 * scripted test double (FakePlatform).
 *
 * The controller works for both coordinated (CPU + bandwidth) and CPU-only
 * control — the difference is entirely in the profile table it is given
 * (CPU-only tables carry the kBwDefaultGovernor sentinel and leave the bus
 * with cpubw_hwmon, reproducing the §V-D ablation).
 *
 * Operating modes are tracked by one explicit ControllerStateMachine (see
 * controller_state_machine.h and DESIGN.md §10): a missing or implausible
 * measurement moves the loop to DEGRADED (hold the Kalman estimate, reuse
 * the previous schedule), an unreachable target to SAFE_MODE (dwell at the
 * best feasible point), and a watchdog trip after K consecutive failed
 * actuation cycles to PROBE or FALLBACK_STOCK (stock governors rule;
 * periodic probes re-engage control once the device has healed).
 *
 * Beyond erroring writes, the loop defends against writes that *lie*:
 * every dwell is verified by read-back, clamped-away configurations
 * (thermal throttling, injected silent clamps) are masked out of the
 * feasible set and the LP re-solved over the reachable subset. A profile-
 * drift detector compares measured (speedup, power) against the table's
 * predictions for the configurations actually delivered and applies
 * bounded multiplicative corrections once the residual is persistent.
 */
#ifndef AEO_CORE_ONLINE_CONTROLLER_H_
#define AEO_CORE_ONLINE_CONTROLLER_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/controller_state_machine.h"
#include "core/energy_optimizer.h"
#include "core/performance_regulator.h"
#include "core/profile_drift.h"
#include "core/profile_table.h"
#include "platform/deadline_supervisor.h"
#include "platform/platform.h"
#include "power/power_model.h"

namespace aeo {

/** Controller tuning (paper values as defaults). */
struct ControllerConfig {
    /** Target performance r, GIPS. Must be set. */
    double target_gips = 0.0;
    /** Control cycle duration T (§IV-B chooses 2 s). */
    SimTime control_cycle = SimTime::FromSeconds(2);
    /** Minimum dwell per configuration (§V-A: 200 ms). */
    SimTime min_dwell = SimTime::Millis(200);
    /** Optimizer backend. */
    OptimizerBackend backend = OptimizerBackend::kConvexHull;
    /** Kalman tuning. */
    double kalman_process_var = 1e-5;
    double kalman_measurement_var = 1e-4;
    /** Disable the Kalman filter (ablation): hold b̂ at the profiled value. */
    bool use_kalman = true;
    /**
     * Regulator surplus-banking band, in speedup units (see
     * RegulatorConfig::surplus_band). On phase-heterogeneous applications
     * whose demand bursts dwarf one cycle's speedup swing, banking turns
     * each burst into credit spent as extra low-speedup cycles — the
     * race-to-idle behaviour stock governors get reactively. 0 (the
     * default) keeps the paper's plain clamped integrator, bit-identical.
     */
    double regulator_surplus_band = 0.0;
    /**
     * Downward slew limit of the regulator output, speedup units per cycle
     * (see RegulatorConfig::max_step_down). Pairs with the surplus band:
     * the band decides how much burst credit is remembered, the slew
     * decides how efficiently it is spent. kUnlimitedStep (the default)
     * keeps the paper's regulator, bit-identical.
     */
    double regulator_max_step_down = kUnlimitedStep;
    /** Regulator+optimizer computation cost (§V-A1: <10 ms at ~25 mW). */
    Milliwatts compute_power_mw = Milliwatts(25.0);
    Seconds compute_seconds = Seconds(0.010);
    /** Cost per sysfs actuation write (§V-A1: ~14 mW during transitions). */
    Milliwatts actuation_power_mw = Milliwatts(14.0);
    Seconds actuation_seconds = Seconds(0.0002);
    /** Retry/backoff policy handed to the platform's actuator. */
    platform::ActuationRetryPolicy retry = {};
    /**
     * Watchdog threshold K: after this many consecutive control cycles whose
     * actuation failed, the controller abandons userspace control and hands
     * the device back to the stock governors.
     */
    int watchdog_threshold = 3;
    /**
     * Plausibility ceiling for a measured performance sample, as a multiple
     * of (base-speed estimate × max profiled speedup). A window average
     * above this is treated as garbage and the cycle runs degraded.
     */
    double plausibility_factor = 4.0;
    /**
     * Read-back verification of every actuation write (see the Actuator
     * interface). Clamped configurations discovered this way are masked out
     * of the feasible set and the LP re-solved over what the device can
     * actually reach. Off, the controller trusts writes blindly
     * (pre-hardening behaviour).
     */
    bool readback_verification = true;
    /**
     * A clamp learned from read-back mismatches expires after this many
     * cycles without re-confirmation, letting the controller re-probe the
     * full table once the device has cooled. (The policy-limit cap read
     * from scaling_max_freq refreshes every cycle and needs no expiry.)
     */
    int cap_recheck_cycles = 5;
    /**
     * A mismatch cap only engages after clamp evidence in this many
     * consecutive control cycles. A genuine silent clamp (thermal ceiling,
     * firmware limit) re-confirms every cycle and is trusted after one
     * extra cycle; an isolated lying write — a transient fault — never
     * repeats back-to-back and is ignored rather than allowed to mask the
     * feasible set. 1 restores engage-on-first-sight.
     */
    int cap_confirm_cycles = 2;
    /** Online profile-drift detection and correction. */
    DriftConfig drift;
    /**
     * Watchdog re-engagement: after the fallback to stock governors, probe
     * the actuation path every reengage_probe_cycles control cycles and
     * resume control after reengage_successes consecutive healthy probes.
     * Off, the fallback is terminal (pre-hardening behaviour).
     */
    bool reengage = true;
    int reengage_probe_cycles = 5;
    int reengage_successes = 3;
    /**
     * Deadline policy for the control tick (DESIGN.md §13). Lateness up to
     * tick_jitter_tolerance × T is jitter (same epoch, data usable); at
     * least suspend_gap_periods × T is a suspend gap; in between the epoch
     * slipped (a deadline miss), handled per deadline_miss_policy.
     */
    double tick_jitter_tolerance = 0.25;
    double suspend_gap_periods = 3.0;
    platform::DeadlineMissPolicy deadline_miss_policy =
        platform::DeadlineMissPolicy::kSkipAndResync;
    /**
     * Deadline storm: after this many consecutive missed ticks the loop
     * cannot hold its epoch and degrades to the stock governors (temporal
     * analogue of the actuation watchdog).
     */
    int deadline_storm_threshold = 4;
    /**
     * Suspend/catch-up hardening: quarantine perf data that straddles a
     * suspend gap (hold the estimate, reuse the schedule, skip delivery
     * accounting) and forgive pre-suspend watchdog strikes. Off, the
     * controller consumes the stretched window as if it were one epoch —
     * the pre-hardening stale-actuation bug the chaos monitors catch.
     */
    bool suspend_resync = true;
};

/** One per-cycle record for analysis. */
struct ControlCycleRecord {
    double time_s = 0.0;
    double measured_gips = 0.0;
    double required_speedup = 0.0;
    double base_speed_estimate = 0.0;
    Milliwatts expected_power_mw;
    SystemConfig low_config;
    SystemConfig high_config;
    /** Perf samples the measurement averaged over (0 = all dropped). */
    uint64_t perf_samples = 0;
    /** True if this cycle ran in degraded mode (held estimate, reused the
     * previous schedule) because the measurement was missing or garbage. */
    bool degraded = false;
    /** Zone temperature at the cycle boundary, °C (reference temperature
     * when no thermal zone is exposed). */
    double temp_c = kLeakageReferenceC;
    /** CPU cap the cycle planned under, as a level (-1 = uncapped). */
    int cpu_cap_level = -1;
    /** True when the reachable set could not meet the performance target
     * and the controller ran inside the safe-mode envelope. */
    bool safe_mode = false;
    /** Average power the monitor measured over the elapsed cycle. */
    Milliwatts measured_power_mw;
    /** How late the tick that opened this cycle was (always recorded, even
     * with suspend_resync off — classification is free, only handling is
     * gated). */
    platform::TickKind tick_kind = platform::TickKind::kOnTime;
    double tick_lateness_s = 0.0;
    /** Whole control epochs the lateness spans (suspend gap length). */
    int64_t epochs_skipped = 0;
    /** True when the stale-data guard quarantined this cycle's measurement
     * (suspend gap or catch-up backlog tick under suspend_resync). */
    bool stale_guard = false;
};

/** The feedback controller driving one device, through its platform. */
class OnlineController {
  public:
    /**
     * @param platform Hardware access; must outlive the controller.
     * @param table    Offline profile of the controlled application (copied).
     * @param config   Tuning; target_gips must be positive.
     */
    OnlineController(platform::Platform* platform, ProfileTable table,
                     ControllerConfig config);

    /**
     * Observer invoked at the end of every completed control cycle with the
     * cycle's record and the delivery read-backs it was derived from. The
     * seam external harnesses (e.g. chaos invariant monitors) watch the
     * loop through without widening the controller API; observers must not
     * reentrantly drive the controller.
     */
    using CycleObserver = std::function<void(
        const ControlCycleRecord& record,
        const std::vector<platform::DwellDelivery>& deliveries)>;

    /** Attaches @p observer; observers run in attachment order. */
    void AddCycleObserver(CycleObserver observer);

    /**
     * Takes over the device: switches the governors to userspace (bandwidth
     * only when the table controls it), starts perf sampling, applies the
     * initial schedule and begins the control cycle.
     */
    void Start();

    /** Stops the control cycle and perf sampling. */
    void Stop();

    /** Number of completed control cycles. */
    size_t cycle_count() const { return history_.size(); }

    /** Per-cycle trace. */
    const std::vector<ControlCycleRecord>& history() const { return history_; }

    /** The profile table in use. */
    const ProfileTable& table() const { return table_; }

    /** Current base-speed estimate, GIPS. */
    double base_speed_estimate() const;

    /** The regulator (for tests). */
    const PerformanceRegulator& regulator() const { return regulator_; }

    /** The actuator (actuation health counters, for tests and benches). */
    const platform::Actuator& actuator() const
    {
        return platform_->actuator();
    }

    /** Current operating mode. */
    ControllerState state() const { return machine_.state(); }

    /** The mode tracker (for tests). */
    const ControllerStateMachine& machine() const { return machine_; }

    /** True once the watchdog has handed the device back to the stock
     * governors; the control cycle no longer runs (but recovery probing
     * may re-engage it — see reengage_count()). */
    bool fallback_engaged() const { return machine_.fallback_engaged(); }

    /** Cycles that ran in degraded mode (missing/garbage measurement). */
    uint64_t degraded_cycle_count() const { return degraded_cycle_count_; }

    /** Times the watchdog re-engaged control after a fallback. */
    uint64_t reengage_count() const { return reengage_count_; }

    /** Clock time of the most recent fallback engagement, seconds; -1
     * before any fallback. A storm-triggered fallback aborts its cycle
     * before the observer hook runs, so this is the only place liveness
     * checks can learn when degraded mode actually began. */
    double last_fallback_time_s() const { return last_fallback_time_s_; }

    /** Cycles spent in the safe-mode envelope (target unreachable). */
    uint64_t safe_mode_cycle_count() const { return safe_mode_cycle_count_; }

    /** Cycles whose tick missed its deadline (lateness past tolerance). */
    uint64_t deadline_miss_cycle_count() const
    {
        return deadline_miss_cycle_count_;
    }

    /** Cycles that resumed after a suspend-length gap. */
    uint64_t suspend_gap_cycle_count() const
    {
        return suspend_gap_cycle_count_;
    }

    /** Cycles whose measurement the stale-data guard quarantined. */
    uint64_t stale_guard_cycle_count() const
    {
        return stale_guard_cycle_count_;
    }

    /** Deadline accounting of the control tick (for tests and benches). */
    const platform::DeadlineStats& deadline_stats() const
    {
        return cycle_tick_.stats();
    }

    /** The drift detector (trace and corrections, for tests and benches). */
    const ProfileDriftDetector& drift() const { return drift_; }

    /**
     * The table the optimizer currently plans over: the offline profile
     * with clamped-away rows masked out and drift corrections applied.
     * Identical to table() while the device is healthy.
     */
    const ProfileTable& working_table() const { return *active_table_; }

  private:
    void RunCycle(const platform::TickInfo& tick);

    /** Deadline policy of the control tick, from the config. */
    platform::DeadlinePolicy CyclePolicy() const;

    /** Resolves @p schedule's slots against the active table and hands the
     * dwell plan to the platform's actuator. */
    void Actuate(const ConfigSchedule& schedule);

    /** Watchdog action on @p trigger: revert to the stock governors and
     * stop actuating (then probe for recovery when re-engagement is on). */
    void EngageFallback(ControllerEvent trigger);

    /** Stops the control cycle and sampling without touching probe state. */
    void StopControl();

    /** One recovery probe of the actuation path after a fallback. */
    void ProbeRecovery();

    /** Resumes control after enough healthy probes. */
    void Reengage();

    /** Consumes the elapsed cycle's delivery records: learns caps from
     * read-back mismatches and feeds the drift detector. */
    void ConsumeDeliveries(
        const std::vector<platform::DwellDelivery>& deliveries,
        double measured_gips, Milliwatts measured_power_mw,
        bool measurement_plausible);

    /** Rebuilds (or retires) the masked + drift-corrected working table
     * under the given caps. Returns false when the reachable set is empty. */
    bool RefreshWorkingTable(int cpu_cap, int bw_cap);

    platform::Platform* platform_;
    ProfileTable table_;
    ControllerConfig config_;
    EnergyOptimizer optimizer_;
    PerformanceRegulator regulator_;
    ProfileDriftDetector drift_;
    ControllerStateMachine machine_;
    platform::DeadlineSupervisor cycle_tick_;
    platform::DeadlineSupervisor probe_tick_;
    std::vector<ControlCycleRecord> history_;
    std::vector<CycleObserver> cycle_observers_;
    bool controls_bandwidth_;
    bool controls_gpu_;
    /** Original row index per configuration (for drift attribution). */
    std::map<SystemConfig, size_t> config_index_;
    ConfigSchedule last_schedule_;
    bool has_last_schedule_ = false;
    /** Bumped on every working-table change; a remembered schedule's slot
     * indices are only valid while the version matches. */
    uint64_t table_version_ = 0;
    uint64_t last_schedule_version_ = 0;
    uint64_t degraded_cycle_count_ = 0;
    uint64_t reengage_count_ = 0;
    uint64_t safe_mode_cycle_count_ = 0;
    uint64_t deadline_miss_cycle_count_ = 0;
    uint64_t suspend_gap_cycle_count_ = 0;
    uint64_t stale_guard_cycle_count_ = 0;
    double last_fallback_time_s_ = -1.0;

    /** Caps learned from read-back mismatches (sentinels = none). */
    int mismatch_cpu_cap_ = platform::kNoCapLevel;
    int mismatch_bw_cap_ = platform::kNoCapLevel;
    int mismatch_cap_age_ = 0;
    /** Consecutive cycles with clamp evidence (debounce counter). */
    int mismatch_streak_ = 0;

    /** The masked/corrected table when active; the originals otherwise. */
    std::unique_ptr<ProfileTable> working_table_;
    std::unique_ptr<EnergyOptimizer> working_optimizer_;
    const ProfileTable* active_table_;
    const EnergyOptimizer* active_optimizer_;
};

}  // namespace aeo

#endif  // AEO_CORE_ONLINE_CONTROLLER_H_
