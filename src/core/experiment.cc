#include "core/experiment.h"

#include "apps/app_registry.h"
#include "common/logging.h"
#include "platform/sim_platform.h"

namespace aeo {

ExperimentHarness::ExperimentHarness(DeviceFactory factory)
    : factory_(std::move(factory))
{
    AEO_ASSERT(factory_ != nullptr, "harness needs a device factory");
}

void
ExperimentHarness::DriveRun(Device* device, const AppScenario& scenario) const
{
    if (scenario.batch) {
        device->RunUntilAppFinishes(scenario.run_duration);
    } else {
        device->RunFor(scenario.run_duration);
    }
}

RunResult
ExperimentHarness::RunDefault(const std::string& app_name, BackgroundKind load,
                              uint64_t seed,
                              const std::string& cpu_governor) const
{
    const AppScenario scenario = GetAppScenario(app_name);
    std::unique_ptr<Device> device = factory_(seed);
    device->SetBackground(MakeBackgroundEnv(load));
    device->UseDefaultGovernors();
    if (!cpu_governor.empty() && cpu_governor != "interactive") {
        // Alternative stock baseline (e.g. lulzactive): only the CPU
        // governor changes; bus and GPU stay with their Android defaults.
        AEO_ASSERT(device->cpufreq().SetGovernor(cpu_governor),
                   "unknown baseline CPU governor '%s'", cpu_governor.c_str());
        if (CpufreqPolicy* little = device->little_cpufreq()) {
            AEO_ASSERT(little->SetGovernor(cpu_governor),
                       "unknown baseline LITTLE governor '%s'",
                       cpu_governor.c_str());
        }
    }
    device->LaunchApp(MakeAppSpecByName(app_name));
    DriveRun(device.get(), scenario);
    return device->CollectResult(cpu_governor.empty() ? "default"
                                                      : cpu_governor);
}

ProfileTable
ExperimentHarness::ProfileApp(const std::string& app_name,
                              const ExperimentOptions& options) const
{
    const AppScenario scenario = GetAppScenario(app_name);
    ProfilerOptions profiler_options;
    profiler_options.sparse = options.sparse_profiling;
    profiler_options.cpu_only = options.cpu_only;
    profiler_options.cpu_levels = scenario.profile_cpu_levels;
    profiler_options.runs = options.profile_runs;
    profiler_options.measure_duration = options.profile_duration > SimTime::Zero()
                                            ? options.profile_duration
                                            : scenario.profile_duration;
    profiler_options.load = options.profile_load;
    profiler_options.seed = options.seed + 1000;
    profiler_options.batch = options.batch;
    const OfflineProfiler profiler(factory_);
    ProfileTable table = profiler.Profile(MakeAppSpecByName(app_name), profiler_options);
    if (options.prune_epsilon > 0.0) {
        table = table.PruneEpsilonDominated(options.prune_epsilon);
    }
    return table;
}

RunResult
ExperimentHarness::RunWithController(const std::string& app_name,
                                     const ProfileTable& table, double target_gips,
                                     const ExperimentOptions& options,
                                     uint64_t seed) const
{
    const AppScenario scenario = GetAppScenario(app_name);
    std::unique_ptr<Device> device = factory_(seed);
    device->SetBackground(MakeBackgroundEnv(options.run_load));
    device->LaunchApp(MakeAppSpecByName(app_name));

    ControllerConfig config = options.controller;
    config.target_gips = target_gips;
    platform::SimPlatform platform(device.get());
    OnlineController controller(&platform, table, config);
    controller.Start();
    DriveRun(device.get(), scenario);
    controller.Stop();
    return device->CollectResult(options.cpu_only ? "controller-cpu-only"
                                                  : "controller");
}

ExperimentOutcome
ExperimentHarness::RunComparison(const std::string& app_name,
                                 const ExperimentOptions& options) const
{
    // (1) Default governors: establishes E_def and the performance target
    //     R_def (§III-A).
    RunResult default_run = RunDefault(app_name, options.run_load, options.seed,
                                       options.baseline_cpu_governor);
    AEO_ASSERT(default_run.avg_gips > 0.0, "default run produced no work");

    // (2) Offline profiling (always under the profiling load).
    ProfileTable table = ProfileApp(app_name, options);

    // (3) Controller run targeting the default performance.
    RunResult controller_run = RunWithController(
        app_name, table, default_run.avg_gips, options, options.seed + 2000);

    ExperimentOutcome outcome{std::move(default_run), std::move(controller_run),
                              std::move(table)};
    outcome.perf_delta_pct =
        outcome.controller_run.PerformanceDeltaPercent(outcome.default_run);
    outcome.energy_savings_pct =
        outcome.controller_run.EnergySavingsPercent(outcome.default_run);
    return outcome;
}

std::vector<ExperimentOutcome>
ExperimentHarness::RunComparisons(std::vector<ComparisonJob> jobs,
                                  const BatchOptions& batch) const
{
    const BatchRunner runner(batch);
    if (runner.jobs() > 1) {
        // The comparison is the unit of parallelism; its inner profiling
        // runs serially so pools never nest (and the worker count never
        // multiplies).
        for (ComparisonJob& job : jobs) {
            job.options.batch.jobs = 1;
        }
    }
    return runner.RunIndexed<ExperimentOutcome>(
        jobs.size(), [this, &jobs](size_t i) {
            const ComparisonJob& job = jobs[i];
            return RunComparison(job.app_name, job.options);
        });
}

}  // namespace aeo
