#include "core/online_controller.h"

#include <cmath>

#include "common/logging.h"

namespace aeo {

namespace {

RegulatorConfig
MakeRegulatorConfig(const ProfileTable& table, const ControllerConfig& config)
{
    RegulatorConfig reg;
    reg.target_gips = config.target_gips;
    reg.initial_base_speed = table.base_speed_gips();
    reg.min_speedup = table.min_speedup();
    reg.max_speedup = table.max_speedup();
    reg.kalman_process_var =
        config.use_kalman ? config.kalman_process_var : 0.0;
    // With the Kalman filter disabled, a huge measurement variance freezes
    // the estimate at the profiled base speed (gain → 0).
    reg.kalman_measurement_var =
        config.use_kalman ? config.kalman_measurement_var : 1e12;
    return reg;
}

/** Best-effort governor switch: transient errors get a few immediate
 * retries, and a write that still fails is survivable (the watchdog covers
 * persistent actuation failure), so warn instead of aborting. */
void
TrySetGovernor(Sysfs& sysfs, const std::string& path, const std::string& value)
{
    FaultErrc errc = FaultErrc::kOk;
    for (int attempt = 0; attempt < 3; ++attempt) {
        errc = sysfs.TryWrite(path, value);
        const bool retryable = errc == FaultErrc::kBusy ||
                               errc == FaultErrc::kIo ||
                               errc == FaultErrc::kNoEnt;
        if (!retryable) {
            break;
        }
    }
    if (errc != FaultErrc::kOk) {
        Warn("governor switch '%s' <- '%s' failed: %s", path.c_str(),
             value.c_str(), FaultErrcName(errc));
    }
}

}  // namespace

OnlineController::OnlineController(Device* device, ProfileTable table,
                                   ControllerConfig config)
    : device_(device),
      table_(std::move(table)),
      config_(config),
      optimizer_(&table_, config.backend),
      regulator_(MakeRegulatorConfig(table_, config)),
      scheduler_(device, config.min_dwell, config.retry),
      cycle_task_(&device->sim(), [this] { RunCycle(); }),
      controls_bandwidth_(table_.entries().front().config.controls_bandwidth()),
      controls_gpu_(table_.entries().front().config.controls_gpu())
{
    AEO_ASSERT(device_ != nullptr, "controller needs a device");
    AEO_ASSERT(config_.target_gips > 0.0, "controller needs a performance target");
    AEO_ASSERT(config_.watchdog_threshold > 0, "watchdog threshold must be positive");
    AEO_ASSERT(config_.plausibility_factor > 0.0, "plausibility factor must be positive");
    for (const ProfileEntry& entry : table_.entries()) {
        AEO_ASSERT(entry.config.controls_bandwidth() == controls_bandwidth_,
                   "profile table mixes coordinated and CPU-only rows");
        AEO_ASSERT(entry.config.controls_gpu() == controls_gpu_,
                   "profile table mixes GPU-controlled and default-GPU rows");
    }
}

void
OnlineController::Start()
{
    Sysfs& sysfs = device_->sysfs();
    TrySetGovernor(sysfs, std::string(kCpufreqSysfsRoot) + "/scaling_governor",
                   "userspace");
    if (controls_bandwidth_) {
        TrySetGovernor(sysfs, std::string(kDevfreqSysfsRoot) + "/governor",
                       "userspace");
    } else {
        // CPU-only controller (§V-D): the bus stays with the default
        // governor, taking decisions in an independent, isolated manner.
        TrySetGovernor(sysfs, std::string(kDevfreqSysfsRoot) + "/governor",
                       "cpubw_hwmon");
    }
    if (controls_gpu_) {
        // §VII extension: GPU frequency joins the coordinated configuration.
        TrySetGovernor(sysfs, std::string(kGpuSysfsRoot) + "/governor",
                       "userspace");
    } else {
        TrySetGovernor(sysfs, std::string(kGpuSysfsRoot) + "/governor",
                       "msm-adreno-tz");
    }

    // Charge the controller's own computation and actuation to the plant
    // (§V-A1): <10 ms at ~25 mW per cycle plus ~14 mW during transitions.
    const double writes_per_cycle =
        2.0 * (1.0 + (controls_bandwidth_ ? 1.0 : 0.0) + (controls_gpu_ ? 1.0 : 0.0));
    const double overhead_mw =
        (config_.compute_seconds * config_.compute_power_mw +
         writes_per_cycle * config_.actuation_seconds * config_.actuation_power_mw) /
        config_.control_cycle.seconds();
    device_->SetControllerOverheadPower(overhead_mw);

    device_->perf().Start();
    device_->Sync();

    // Apply the initial schedule from the profiled base speed.
    const double s0 = regulator_.applied_speedup();
    const ConfigSchedule initial =
        optimizer_.Optimize(s0, config_.control_cycle.seconds());
    scheduler_.Apply(initial, table_);
    last_schedule_ = initial;
    has_last_schedule_ = true;

    if (scheduler_.consecutive_failed_applies() >= config_.watchdog_threshold) {
        EngageFallback();
        return;
    }

    cycle_task_.Start(config_.control_cycle);
}

void
OnlineController::Stop()
{
    cycle_task_.Stop();
    device_->perf().Stop();
    device_->SetControllerOverheadPower(0.0);
    device_->Sync();
}

double
OnlineController::base_speed_estimate() const
{
    return regulator_.base_speed_estimate();
}

void
OnlineController::EngageFallback()
{
    if (fallback_engaged_) {
        return;
    }
    fallback_engaged_ = true;
    Warn("watchdog: %d consecutive control cycles failed to actuate; "
         "reverting to the stock governors",
         scheduler_.consecutive_failed_applies());
    scheduler_.CancelPending();
    Sysfs& sysfs = device_->sysfs();
    // Best effort: if even these writes fail, the device keeps whatever
    // governors it has — there is nothing further a userspace agent can do.
    TrySetGovernor(sysfs, std::string(kCpufreqSysfsRoot) + "/scaling_governor",
                   "interactive");
    TrySetGovernor(sysfs, std::string(kDevfreqSysfsRoot) + "/governor",
                   "cpubw_hwmon");
    TrySetGovernor(sysfs, std::string(kGpuSysfsRoot) + "/governor",
                   "msm-adreno-tz");
    Stop();
}

void
OnlineController::RunCycle()
{
    if (fallback_engaged_) {
        return;
    }

    // (1) Measure: average of the perf samples in the elapsed cycle. The
    // window can be empty (every sample dropped by an injected PMU fault)
    // or garbage (counter glitch); either way the cycle runs degraded:
    // the Kalman estimate holds and the previous schedule is reapplied.
    const PerfWindow window = device_->perf().DrainWindow();
    const bool plausible =
        window.samples > 0 && std::isfinite(window.avg_gips) &&
        window.avg_gips > 0.0 &&
        window.avg_gips <= config_.plausibility_factor *
                               regulator_.base_speed_estimate() *
                               table_.max_speedup();

    double required;
    ConfigSchedule schedule;
    if (plausible) {
        // (2) Regulate: required speedup for the next cycle.
        required = regulator_.Step(window.avg_gips);

        // (3) Optimize: minimum-energy dwell schedule realizing it.
        schedule = optimizer_.Optimize(required, config_.control_cycle.seconds());
        last_schedule_ = schedule;
        has_last_schedule_ = true;
    } else {
        ++degraded_cycle_count_;
        required = regulator_.applied_speedup();
        schedule = has_last_schedule_
                       ? last_schedule_
                       : optimizer_.Optimize(required,
                                             config_.control_cycle.seconds());
    }

    // (4) Actuate.
    scheduler_.Apply(schedule, table_);

    ControlCycleRecord record;
    record.time_s = device_->sim().Now().seconds();
    record.measured_gips = window.avg_gips;
    record.required_speedup = required;
    record.base_speed_estimate = regulator_.base_speed_estimate();
    record.expected_power_mw = schedule.expected_power_mw;
    record.low_config = table_.entries()[schedule.slots.front().entry_index].config;
    record.high_config = table_.entries()[schedule.slots.back().entry_index].config;
    record.perf_samples = window.samples;
    record.degraded = !plausible;
    history_.push_back(record);

    if (scheduler_.consecutive_failed_applies() >= config_.watchdog_threshold) {
        EngageFallback();
    }
}

}  // namespace aeo
