#include "core/online_controller.h"

#include "common/logging.h"

namespace aeo {

namespace {

RegulatorConfig
MakeRegulatorConfig(const ProfileTable& table, const ControllerConfig& config)
{
    RegulatorConfig reg;
    reg.target_gips = config.target_gips;
    reg.initial_base_speed = table.base_speed_gips();
    reg.min_speedup = table.min_speedup();
    reg.max_speedup = table.max_speedup();
    reg.kalman_process_var =
        config.use_kalman ? config.kalman_process_var : 0.0;
    // With the Kalman filter disabled, a huge measurement variance freezes
    // the estimate at the profiled base speed (gain → 0).
    reg.kalman_measurement_var =
        config.use_kalman ? config.kalman_measurement_var : 1e12;
    return reg;
}

}  // namespace

OnlineController::OnlineController(Device* device, ProfileTable table,
                                   ControllerConfig config)
    : device_(device),
      table_(std::move(table)),
      config_(config),
      optimizer_(&table_, config.backend),
      regulator_(MakeRegulatorConfig(table_, config)),
      scheduler_(device, config.min_dwell),
      cycle_task_(&device->sim(), [this] { RunCycle(); }),
      controls_bandwidth_(table_.entries().front().config.controls_bandwidth()),
      controls_gpu_(table_.entries().front().config.controls_gpu())
{
    AEO_ASSERT(device_ != nullptr, "controller needs a device");
    AEO_ASSERT(config_.target_gips > 0.0, "controller needs a performance target");
    for (const ProfileEntry& entry : table_.entries()) {
        AEO_ASSERT(entry.config.controls_bandwidth() == controls_bandwidth_,
                   "profile table mixes coordinated and CPU-only rows");
        AEO_ASSERT(entry.config.controls_gpu() == controls_gpu_,
                   "profile table mixes GPU-controlled and default-GPU rows");
    }
}

void
OnlineController::Start()
{
    Sysfs& sysfs = device_->sysfs();
    sysfs.Write(std::string(kCpufreqSysfsRoot) + "/scaling_governor", "userspace");
    if (controls_bandwidth_) {
        sysfs.Write(std::string(kDevfreqSysfsRoot) + "/governor", "userspace");
    } else {
        // CPU-only controller (§V-D): the bus stays with the default
        // governor, taking decisions in an independent, isolated manner.
        sysfs.Write(std::string(kDevfreqSysfsRoot) + "/governor", "cpubw_hwmon");
    }
    if (controls_gpu_) {
        // §VII extension: GPU frequency joins the coordinated configuration.
        sysfs.Write(std::string(kGpuSysfsRoot) + "/governor", "userspace");
    } else {
        sysfs.Write(std::string(kGpuSysfsRoot) + "/governor", "msm-adreno-tz");
    }

    // Charge the controller's own computation and actuation to the plant
    // (§V-A1): <10 ms at ~25 mW per cycle plus ~14 mW during transitions.
    const double writes_per_cycle =
        2.0 * (1.0 + (controls_bandwidth_ ? 1.0 : 0.0) + (controls_gpu_ ? 1.0 : 0.0));
    const double overhead_mw =
        (config_.compute_seconds * config_.compute_power_mw +
         writes_per_cycle * config_.actuation_seconds * config_.actuation_power_mw) /
        config_.control_cycle.seconds();
    device_->SetControllerOverheadPower(overhead_mw);

    device_->perf().Start();
    device_->Sync();

    // Apply the initial schedule from the profiled base speed.
    const double s0 = regulator_.applied_speedup();
    const ConfigSchedule initial =
        optimizer_.Optimize(s0, config_.control_cycle.seconds());
    scheduler_.Apply(initial, table_);

    cycle_task_.Start(config_.control_cycle);
}

void
OnlineController::Stop()
{
    cycle_task_.Stop();
    device_->perf().Stop();
    device_->SetControllerOverheadPower(0.0);
    device_->Sync();
}

double
OnlineController::base_speed_estimate() const
{
    return regulator_.base_speed_estimate();
}

void
OnlineController::RunCycle()
{
    // (1) Measure: average of the perf samples in the elapsed cycle.
    const double measured = device_->perf().DrainWindowAverage();

    // (2) Regulate: required speedup for the next cycle.
    const double required = regulator_.Step(measured);

    // (3) Optimize: minimum-energy dwell schedule realizing it.
    const ConfigSchedule schedule =
        optimizer_.Optimize(required, config_.control_cycle.seconds());

    // (4) Actuate.
    scheduler_.Apply(schedule, table_);

    ControlCycleRecord record;
    record.time_s = device_->sim().Now().seconds();
    record.measured_gips = measured;
    record.required_speedup = required;
    record.base_speed_estimate = regulator_.base_speed_estimate();
    record.expected_power_mw = schedule.expected_power_mw;
    record.low_config = table_.entries()[schedule.slots.front().entry_index].config;
    record.high_config = table_.entries()[schedule.slots.back().entry_index].config;
    history_.push_back(record);
}

}  // namespace aeo
