#include "core/online_controller.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"

namespace aeo {

namespace {

RegulatorConfig
MakeRegulatorConfig(const ProfileTable& table, const ControllerConfig& config)
{
    RegulatorConfig reg;
    reg.target_gips = config.target_gips;
    reg.initial_base_speed = table.base_speed_gips();
    reg.min_speedup = table.min_speedup();
    reg.max_speedup = table.max_speedup();
    reg.kalman_process_var =
        config.use_kalman ? config.kalman_process_var : 0.0;
    // With the Kalman filter disabled, a huge measurement variance freezes
    // the estimate at the profiled base speed (gain → 0).
    reg.kalman_measurement_var =
        config.use_kalman ? config.kalman_measurement_var : 1e12;
    reg.surplus_band = config.regulator_surplus_band;
    reg.max_step_down = config.regulator_max_step_down;
    return reg;
}

StateMachineOptions
MakeStateMachineOptions(const ControllerConfig& config)
{
    StateMachineOptions options;
    options.reengage = config.reengage;
    options.reengage_successes = config.reengage_successes;
    return options;
}

}  // namespace

OnlineController::OnlineController(platform::Platform* platform,
                                   ProfileTable table, ControllerConfig config)
    : platform_(platform),
      table_(std::move(table)),
      config_(config),
      optimizer_(&table_, config.backend),
      regulator_(MakeRegulatorConfig(table_, config)),
      drift_(table_.size(), config.drift),
      machine_(MakeStateMachineOptions(config)),
      cycle_tick_(&platform->clock(), &platform->ticks(),
                  [this](const platform::TickInfo& tick) { RunCycle(tick); }),
      probe_tick_(&platform->clock(), &platform->ticks(),
                  [this](const platform::TickInfo&) { ProbeRecovery(); }),
      controls_bandwidth_(table_.entries().front().config.controls_bandwidth()),
      controls_gpu_(table_.entries().front().config.controls_gpu()),
      active_table_(&table_),
      active_optimizer_(&optimizer_)
{
    AEO_ASSERT(platform_ != nullptr, "controller needs a platform");
    AEO_ASSERT(config_.target_gips > 0.0, "controller needs a performance target");
    AEO_ASSERT(config_.watchdog_threshold > 0, "watchdog threshold must be positive");
    AEO_ASSERT(config_.plausibility_factor > 0.0, "plausibility factor must be positive");
    AEO_ASSERT(config_.cap_recheck_cycles > 0, "cap recheck must be positive");
    AEO_ASSERT(config_.cap_confirm_cycles > 0, "cap confirm must be positive");
    AEO_ASSERT(config_.reengage_probe_cycles > 0 && config_.reengage_successes > 0,
               "re-engagement tuning must be positive");
    AEO_ASSERT(config_.tick_jitter_tolerance >= 0.0,
               "jitter tolerance must be non-negative");
    AEO_ASSERT(config_.suspend_gap_periods > config_.tick_jitter_tolerance,
               "suspend threshold must exceed the jitter tolerance");
    AEO_ASSERT(config_.deadline_storm_threshold > 0,
               "deadline storm threshold must be positive");
    for (size_t i = 0; i < table_.entries().size(); ++i) {
        const ProfileEntry& entry = table_.entries()[i];
        AEO_ASSERT(entry.config.controls_bandwidth() == controls_bandwidth_,
                   "profile table mixes coordinated and CPU-only rows");
        AEO_ASSERT(entry.config.controls_gpu() == controls_gpu_,
                   "profile table mixes GPU-controlled and default-GPU rows");
        config_index_.emplace(entry.config, i);
    }
    platform::Actuator& actuator = platform_->actuator();
    actuator.ConfigureActuation(config_.min_dwell, config_.retry);
    actuator.SetReadbackVerification(config_.readback_verification);
}

void
OnlineController::Start()
{
    platform_->governors().PinForControl(controls_bandwidth_, controls_gpu_);

    // Charge the controller's own computation and actuation to the plant
    // (§V-A1): <10 ms at ~25 mW per cycle plus ~14 mW during transitions.
    const double writes_per_cycle =
        2.0 * (1.0 + (controls_bandwidth_ ? 1.0 : 0.0) + (controls_gpu_ ? 1.0 : 0.0));
    const double overhead_mw =
        (config_.compute_seconds.value() * config_.compute_power_mw.value() +
         writes_per_cycle * config_.actuation_seconds.value() *
             config_.actuation_power_mw.value()) /
        config_.control_cycle.seconds();
    platform_->SetControllerOverheadPower(overhead_mw);

    platform_->perf().StartSampling();
    platform_->Sync();

    // Apply the initial schedule from the profiled base speed (over the
    // working table, which still excludes any caps learned before a
    // watchdog round-trip).
    const double s0 = regulator_.applied_speedup();
    const ConfigSchedule initial =
        active_optimizer_->Optimize(s0, config_.control_cycle.seconds());
    Actuate(initial);
    last_schedule_ = initial;
    last_schedule_version_ = table_version_;
    has_last_schedule_ = true;

    if (platform_->actuator().consecutive_failed_applies() >=
        config_.watchdog_threshold) {
        EngageFallback(ControllerEvent::kWatchdogTrip);
        return;
    }

    cycle_tick_.Start(CyclePolicy());
}

platform::DeadlinePolicy
OnlineController::CyclePolicy() const
{
    platform::DeadlinePolicy policy;
    policy.period = config_.control_cycle;
    policy.jitter_tolerance = config_.tick_jitter_tolerance;
    policy.suspend_gap_periods = config_.suspend_gap_periods;
    policy.miss_policy = config_.deadline_miss_policy;
    return policy;
}

void
OnlineController::Stop()
{
    probe_tick_.Stop();
    StopControl();
    machine_.Dispatch(ControllerEvent::kControlStopped);
}

void
OnlineController::StopControl()
{
    cycle_tick_.Stop();
    platform_->perf().StopSampling();
    platform_->SetControllerOverheadPower(0.0);
    platform_->Sync();
}

double
OnlineController::base_speed_estimate() const
{
    return regulator_.base_speed_estimate();
}

void
OnlineController::Actuate(const ConfigSchedule& schedule)
{
    platform::ActuationPlan plan;
    for (const ScheduleSlot& slot : schedule.slots) {
        plan.push_back(platform::PlannedDwell{
            active_table_->entries()[slot.entry_index].config, slot.seconds});
    }
    platform_->actuator().Apply(plan);
}

void
OnlineController::EngageFallback(ControllerEvent trigger)
{
    if (machine_.fallback_engaged()) {
        return;
    }
    machine_.Dispatch(trigger);
    last_fallback_time_s_ = platform_->clock().Now().seconds();
    Warn("watchdog: %d consecutive control cycles failed to actuate; "
         "reverting to the stock governors",
         platform_->actuator().consecutive_failed_applies());
    platform_->actuator().CancelPending();
    // Best effort: if even these writes fail, the device keeps whatever
    // governors it has — there is nothing further a userspace agent can do.
    platform_->governors().RestoreStock();
    StopControl();
    if (config_.reengage) {
        // Keep probing the actuation path; once it stays healthy long
        // enough the controller takes the device back. Probe lateness is
        // irrelevant — the callback ignores the tick classification.
        platform::DeadlinePolicy probe_policy;
        probe_policy.period =
            config_.control_cycle * config_.reengage_probe_cycles;
        probe_tick_.Start(probe_policy);
    }
}

void
OnlineController::ProbeRecovery()
{
    const bool healthy = platform_->actuator().ProbeActuationPath();
    const StateTransition transition = machine_.Dispatch(
        healthy ? ControllerEvent::kProbeOk : ControllerEvent::kProbeFailed);
    if (transition.changed) {
        // Quorum met: the machine is back in NORMAL.
        probe_tick_.Stop();
        Reengage();
    }
}

void
OnlineController::Reengage()
{
    ++reengage_count_;
    Warn("watchdog: actuation path healthy for %d probes; re-engaging control",
         config_.reengage_successes);
    platform_->actuator().ResetFailureTracking();
    Start();
}

void
OnlineController::AddCycleObserver(CycleObserver observer)
{
    AEO_ASSERT(observer != nullptr, "cycle observer must be callable");
    cycle_observers_.push_back(std::move(observer));
}

void
OnlineController::ConsumeDeliveries(
    const std::vector<platform::DwellDelivery>& deliveries,
    double measured_gips, Milliwatts measured_power_mw,
    bool measurement_plausible)
{
    using platform::DwellDelivery;
    constexpr int kNoCap = platform::kNoCapLevel;

    // --- Clamp learning from read-back mismatches -------------------------
    if (config_.readback_verification) {
        bool saw_mismatch = false;
        int cycle_cpu_cap = kNoCap;
        int cycle_bw_cap = kNoCap;
        for (const DwellDelivery& dwell : deliveries) {
            if (dwell.cpu.clamped()) {
                cycle_cpu_cap =
                    std::min(cycle_cpu_cap, dwell.cpu.delivered_level);
                saw_mismatch = true;
            }
            if (dwell.bw.attempted && dwell.bw.clamped()) {
                cycle_bw_cap =
                    std::min(cycle_bw_cap, dwell.bw.delivered_level);
                saw_mismatch = true;
            }
        }
        if (saw_mismatch) {
            machine_.Dispatch(ControllerEvent::kActuationMismatch);
            // Debounce: a persistent clamp re-confirms every cycle and is
            // trusted after cap_confirm_cycles; an isolated lying write is
            // transient noise and must not mask the feasible set.
            mismatch_streak_ = std::min(mismatch_streak_ + 1,
                                        config_.cap_confirm_cycles);
            if (mismatch_streak_ >= config_.cap_confirm_cycles ||
                mismatch_cpu_cap_ != kNoCap || mismatch_bw_cap_ != kNoCap) {
                machine_.Dispatch(ControllerEvent::kClampConfirmed);
                mismatch_cpu_cap_ = std::min(mismatch_cpu_cap_, cycle_cpu_cap);
                mismatch_bw_cap_ = std::min(mismatch_bw_cap_, cycle_bw_cap);
            }
            mismatch_cap_age_ = 0;
        } else {
            mismatch_streak_ = 0;
            if (mismatch_cpu_cap_ != kNoCap || mismatch_bw_cap_ != kNoCap) {
                // No re-confirmation: let a stale clamp expire so the
                // controller re-probes the full table once the device has
                // recovered.
                if (++mismatch_cap_age_ >= config_.cap_recheck_cycles) {
                    machine_.Dispatch(ControllerEvent::kCapExpired);
                    mismatch_cpu_cap_ = kNoCap;
                    mismatch_bw_cap_ = kNoCap;
                    mismatch_cap_age_ = 0;
                }
            }
        }
    }

    // --- Drift observation ------------------------------------------------
    if (!config_.drift.enabled || !measurement_plausible ||
        measured_power_mw.value() <= 0.0) {
        return;
    }
    double total_seconds = 0.0;
    for (const DwellDelivery& dwell : deliveries) {
        total_seconds += dwell.seconds;
    }
    if (total_seconds <= 0.0) {
        return;
    }

    // Attribute the cycle to the configurations the device actually ran
    // (delivered levels where verified, requested otherwise) and predict
    // what the *original* table says that mixture should have produced.
    // The dwell list is walked twice — once to decide whether the cycle is
    // attributable at all, once to feed the drift detector — so the matched
    // rows never need to be materialized (RunCycle is allocation-free).
    const auto match_entry = [this,
                              total_seconds](const DwellDelivery& dwell,
                                             size_t* entry_index,
                                             double* weight) {
        SystemConfig effective = dwell.requested_config;
        if (dwell.cpu.verified) {
            effective.cpu_level = dwell.cpu.delivered_level;
        }
        if (dwell.bw.attempted && dwell.bw.verified) {
            effective.bw_level = dwell.bw.delivered_level;
        }
        if (dwell.gpu.attempted && dwell.gpu.verified) {
            effective.gpu_level = dwell.gpu.delivered_level;
        }
        const auto it = config_index_.find(effective);
        if (it == config_index_.end()) {
            return false;  // Delivered an unprofiled point; no comparison.
        }
        *entry_index = it->second;
        *weight = dwell.seconds / total_seconds;
        return true;
    };
    double covered = 0.0;
    double predicted_power_mw = 0.0;
    double predicted_speedup = 0.0;
    for (const DwellDelivery& dwell : deliveries) {
        size_t entry_index = 0;
        double weight = 0.0;
        if (!match_entry(dwell, &entry_index, &weight)) {
            continue;
        }
        const ProfileEntry& entry = table_.entries()[entry_index];
        predicted_power_mw += weight * entry.power_mw.value();
        predicted_speedup += weight * entry.speedup;
        covered += weight;
    }
    // Only attribute when the visited rows explain (essentially) the whole
    // cycle — a partially unprofiled cycle would smear foreign residuals
    // onto the rows that were matched.
    if (covered < 0.999 || predicted_power_mw <= 0.0 ||
        predicted_speedup <= 0.0) {
        return;
    }
    const double base = regulator_.base_speed_estimate();
    if (base <= 0.0) {
        return;
    }
    const double measured_speedup = measured_gips / base;
    const double power_residual = measured_power_mw.value() / predicted_power_mw;
    const double speedup_residual = measured_speedup / predicted_speedup;
    const double now_s = platform_->clock().Now().seconds();
    for (const DwellDelivery& dwell : deliveries) {
        size_t entry_index = 0;
        double weight = 0.0;
        if (!match_entry(dwell, &entry_index, &weight)) {
            continue;
        }
        drift_.Observe(now_s, entry_index, weight, power_residual,
                       speedup_residual);
    }
}

// aeo: hot-path-stop -- amortized: rebuilds only when a cap, drift
// correction, or table version actually changes, never on the steady-state
// cycle path.
bool
OnlineController::RefreshWorkingTable(int cpu_cap, int bw_cap)
{
    std::vector<ProfileEntry> rows;
    rows.reserve(table_.size());
    bool changed = false;
    bool drift_corrected = false;
    for (size_t i = 0; i < table_.entries().size(); ++i) {
        const ProfileEntry& entry = table_.entries()[i];
        const bool reachable =
            entry.config.cpu_level <= cpu_cap &&
            (!entry.config.controls_bandwidth() ||
             entry.config.bw_level <= bw_cap);
        if (!reachable) {
            changed = true;
            continue;
        }
        ProfileEntry corrected = entry;
        const double power_factor = drift_.PowerCorrection(i);
        const double speedup_factor = drift_.SpeedupCorrection(i);
        if (power_factor != 1.0 || speedup_factor != 1.0) {
            corrected.power_mw = corrected.power_mw * power_factor;
            corrected.speedup *= speedup_factor;
            changed = true;
            drift_corrected = true;
        }
        rows.push_back(corrected);
    }

    if (!changed) {
        // Healthy: plan over the originals, bit-identical to a controller
        // without this machinery.
        if (active_table_ != &table_) {
            ++table_version_;
        }
        active_table_ = &table_;
        active_optimizer_ = &optimizer_;
        working_table_.reset();
        working_optimizer_.reset();
        return true;
    }
    if (rows.empty()) {
        return false;
    }
    if (drift_corrected) {
        machine_.Dispatch(ControllerEvent::kDriftCorrected);
    }
    working_table_ = std::make_unique<ProfileTable>(table_.app_name(), rows,
                                                    table_.base_speed_gips());
    working_optimizer_ = std::make_unique<EnergyOptimizer>(working_table_.get(),
                                                           config_.backend);
    active_table_ = working_table_.get();
    active_optimizer_ = working_optimizer_.get();
    ++table_version_;
    return true;
}

// aeo: hot-path
void
OnlineController::RunCycle(const platform::TickInfo& tick)
{
    if (machine_.fallback_engaged()) {
        return;
    }
    machine_.Dispatch(ControllerEvent::kCycleStart);

    // (0) Deadline accounting. Classification is always recorded; only the
    // *handling* below is gated by suspend_resync, so the pre-hardening
    // behaviour (consume a stretched window as one epoch) stays plantable
    // for the chaos monitors.
    const bool suspend_gap = tick.kind == platform::TickKind::kSuspendGap;
    if (tick.kind == platform::TickKind::kMissed) {
        ++deadline_miss_cycle_count_;
    }
    if (suspend_gap) {
        ++suspend_gap_cycle_count_;
    }
    if (config_.suspend_resync) {
        switch (tick.kind) {
        case platform::TickKind::kOnTime:
            break;
        case platform::TickKind::kJitter:
            machine_.Dispatch(ControllerEvent::kTickJitter);
            break;
        case platform::TickKind::kMissed:
            machine_.Dispatch(ControllerEvent::kTickMissed);
            if (tick.consecutive_misses >= config_.deadline_storm_threshold) {
                Warn("deadline storm: %d consecutive control ticks missed "
                     "their epoch; handing the device back to the stock "
                     "governors",
                     tick.consecutive_misses);
                EngageFallback(ControllerEvent::kDeadlineStorm);
                return;
            }
            break;
        case platform::TickKind::kSuspendGap:
            machine_.Dispatch(ControllerEvent::kSuspendResume);
            break;
        }
    }
    // Stale-data guard: a window that straddles a suspend gap (or feeds a
    // catch-up backlog tick) is not one epoch of the running app; steering
    // on it would actuate from pre-suspend data.
    const bool stale_guard =
        config_.suspend_resync && (suspend_gap || tick.catch_up);
    if (stale_guard) {
        ++stale_guard_cycle_count_;
    }

    // (1) Measure: average of the perf samples in the elapsed cycle. The
    // window can be empty (every sample dropped by an injected PMU fault)
    // or garbage (counter glitch); either way the cycle runs degraded:
    // the Kalman estimate holds and the previous schedule is reapplied.
    // A quarantined (stale) window degrades the same way.
    const platform::PerfWindow window = platform_->perf().DrainWindow();
    const Milliwatts measured_power_mw =
        Milliwatts(platform_->perf().DrainAveragePowerMw());
    const bool plausible =
        window.samples > 0 && std::isfinite(window.avg_gips) &&
        window.avg_gips > 0.0 &&
        window.avg_gips <= config_.plausibility_factor *
                               regulator_.base_speed_estimate() *
                               table_.max_speedup();
    const bool usable = plausible && !stale_guard;
    machine_.Dispatch(usable ? ControllerEvent::kPerfReadOk
                             : ControllerEvent::kPerfReadFailed);

    // (1b) Verify: what did the device actually run last cycle? Learn caps
    // from read-back mismatches and feed the drift detector, then re-derive
    // the feasible set under the kernel's advertised frequency ceiling.
    // (Copied: Apply() later this cycle clears the actuator's records, and
    // the cycle observers see the same snapshot.)
    // A suspend gap quarantines the whole delivery history: the records
    // straddle the sleep, so clamp evidence and drift residuals derived
    // from them would be gap artefacts, and actuation strikes from before
    // the sleep must not count toward the watchdog after it.
    const std::vector<platform::DwellDelivery> deliveries =
        platform_->actuator().cycle_deliveries();
    const bool quarantine_deliveries = config_.suspend_resync && suspend_gap;
    if (quarantine_deliveries) {
        platform_->actuator().ResetFailureTracking();
    } else {
        ConsumeDeliveries(deliveries, window.avg_gips, measured_power_mw,
                          usable);
    }
    const int policy_cap = config_.readback_verification
                               ? platform_->thermals().ReadCpuCapLevel()
                               : platform::kNoCapLevel;
    const int cpu_cap = std::min(policy_cap, mismatch_cpu_cap_);
    const int bw_cap = mismatch_bw_cap_;
    if (!RefreshWorkingTable(cpu_cap, bw_cap)) {
        Warn("no profiled configuration reachable under cpu cap level %d; "
             "handing the device back to the stock governors",
             cpu_cap);
        EngageFallback(ControllerEvent::kFeasibleSetEmpty);
        return;
    }

    double required;
    ConfigSchedule schedule;
    if (usable) {
        // (2) Regulate: required speedup for the next cycle.
        required = regulator_.Step(window.avg_gips);

        // (3) Optimize: minimum-energy dwell schedule realizing it over the
        // *reachable* (masked, drift-corrected) table.
        schedule = active_optimizer_->Optimize(required,
                                               config_.control_cycle.seconds());
        last_schedule_ = schedule;
        last_schedule_version_ = table_version_;
        has_last_schedule_ = true;
    } else {
        ++degraded_cycle_count_;
        required = regulator_.applied_speedup();
        if (has_last_schedule_ && last_schedule_version_ == table_version_) {
            schedule = last_schedule_;
        } else {
            // The remembered schedule indexes a table that no longer exists;
            // re-solve over the current one instead of replaying stale slots.
            schedule = active_optimizer_->Optimize(
                required, config_.control_cycle.seconds());
            last_schedule_ = schedule;
            last_schedule_version_ = table_version_;
            has_last_schedule_ = true;
        }
    }

    // Safe mode: even the best reachable configuration falls short of the
    // requirement. The optimizer already clamps the schedule to the
    // reachable ceiling, so the device dwells at its best feasible point —
    // bounded by the thermal cap — while the envelope is recorded.
    const bool safe_mode = required > active_table_->max_speedup() + 1e-9;
    if (safe_mode) {
        machine_.Dispatch(ControllerEvent::kTargetUnreachable);
        ++safe_mode_cycle_count_;
    }

    // (4) Actuate.
    Actuate(schedule);

    ControlCycleRecord record;
    record.time_s = platform_->clock().Now().seconds();
    record.measured_gips = window.avg_gips;
    record.required_speedup = required;
    record.base_speed_estimate = regulator_.base_speed_estimate();
    record.expected_power_mw = schedule.expected_power_mw;
    record.low_config =
        active_table_->entries()[schedule.slots.front().entry_index].config;
    record.high_config =
        active_table_->entries()[schedule.slots.back().entry_index].config;
    record.perf_samples = window.samples;
    record.degraded = !usable;
    record.temp_c = platform_->thermals().ReadZoneTempC();
    record.cpu_cap_level =
        cpu_cap >= platform_->max_cpu_level() ? -1 : cpu_cap;
    record.safe_mode = safe_mode;
    record.measured_power_mw = measured_power_mw;
    record.tick_kind = tick.kind;
    record.tick_lateness_s = tick.lateness.seconds();
    record.epochs_skipped = tick.epochs_skipped;
    record.stale_guard = stale_guard;
    // aeo-lint: allow(hot-path-alloc) -- the cycle history is the
    // experiment's output artifact; growth here IS the product.
    history_.push_back(record);

    if (!quarantine_deliveries &&
        platform_->actuator().consecutive_failed_applies() >=
            config_.watchdog_threshold) {
        EngageFallback(ControllerEvent::kWatchdogTrip);
    }

    // Observers run last so they see the cycle's full effect, including a
    // watchdog trip this cycle caused.
    for (const CycleObserver& observer : cycle_observers_) {
        // aeo-lint: allow(hot-path-alloc) -- invoking an already-stored
        // std::function does not allocate; only constructing one does.
        observer(record, deliveries);
    }
}

}  // namespace aeo
