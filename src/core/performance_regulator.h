/**
 * @file
 * The performance regulator (§III-B3): the adaptive-gain integral
 * controller of equations (2)–(3) combined with the Kalman base-speed
 * estimator. Each control cycle it turns the measured performance y_n and
 * target r into the speedup s_n the energy optimizer must realize.
 */
#ifndef AEO_CORE_PERFORMANCE_REGULATOR_H_
#define AEO_CORE_PERFORMANCE_REGULATOR_H_

#include "control/integral_controller.h"
#include "control/kalman_filter.h"

namespace aeo {

/** Regulator tuning. */
struct RegulatorConfig {
    /** Target performance r, GIPS. */
    double target_gips = 0.0;
    /** Initial base-speed estimate b̂₀ (profiled base speed). */
    double initial_base_speed = 0.1;
    /** Achievable speedup range from the profile table. */
    double min_speedup = 1.0;
    double max_speedup = 1.0;
    /** Kalman process variance Q (base-speed drift per cycle). */
    double kalman_process_var = 1e-5;
    /** Kalman measurement variance R (GIPS measurement noise²). */
    double kalman_measurement_var = 1e-4;
    /**
     * Surplus-banking band of the integrator, in speedup units (see
     * AdaptiveIntegralController::set_surplus_band). A phase-heterogeneous
     * application's demand bursts overshoot the target by far more than one
     * cycle's worth of speedup swing; banking lets the regulator spend that
     * surplus as additional low-speedup cycles instead of discarding it at
     * the output clamp. 0 (the default) is the paper's plain clamped
     * integrator, bit-identical.
     */
    double surplus_band = 0.0;
    /**
     * Downward slew limit of the integrator output, in speedup units per
     * control cycle (see AdaptiveIntegralController::set_max_step_down).
     * Makes banked surplus drain near the frontier knee instead of at the
     * floor. kUnlimitedStep (the default) is the paper's unslewed
     * integrator, bit-identical.
     */
    double max_step_down = kUnlimitedStep;
};

/** Computes the required speedup from measured performance. */
class PerformanceRegulator {
  public:
    explicit PerformanceRegulator(const RegulatorConfig& config);

    /**
     * One control step: updates the Kalman base-speed estimate with the
     * measurement y_n (observed through the previously applied speedup) and
     * integrates the tracking error.
     *
     * @param measured_gips y_n.
     * @return the required speedup s_n for the next cycle.
     */
    double Step(double measured_gips);

    /** Current base-speed estimate b̂, GIPS. */
    double base_speed_estimate() const { return kalman_.estimate(); }

    /** Current tracking error e = r − y, GIPS (from the last step). */
    double last_error() const { return last_error_; }

    /** The speedup currently applied to the plant. */
    double applied_speedup() const { return integrator_.output(); }

    /** Changes the target performance r at runtime. */
    void set_target_gips(double target) { target_gips_ = target; }

    /** Current target r. */
    double target_gips() const { return target_gips_; }

  private:
    double target_gips_;
    AdaptiveIntegralController integrator_;
    ScalarKalmanFilter kalman_;
    double last_error_ = 0.0;
};

}  // namespace aeo

#endif  // AEO_CORE_PERFORMANCE_REGULATOR_H_
