/**
 * @file
 * The controller's operating mode as one explicit state machine. The mode
 * logic used to live in overlapping booleans and counters spread through
 * OnlineController (`fallback_engaged_`, per-cycle `degraded`/`safe_mode`
 * flags, `probe_successes_`); every legal mode change is now a row in a
 * single transition table, and every illegal (state, event) pair is
 * rejected loudly instead of silently mutating a flag.
 *
 * States:
 *
 *  - NORMAL         — closed-loop control on a plausible measurement.
 *  - DEGRADED       — controlling, but the last measurement was missing or
 *                     garbage: the Kalman estimate holds and the previous
 *                     schedule is reused.
 *  - SAFE_MODE      — controlling, but even the best reachable operating
 *                     point cannot meet the target; the device dwells at
 *                     the feasible ceiling while the envelope is recorded.
 *  - PROBE          — the watchdog tripped and the stock governors rule;
 *                     the actuation path is probed periodically and control
 *                     re-engages after a quorum of healthy probes.
 *  - FALLBACK_STOCK — the watchdog tripped with re-engagement disabled (or
 *                     control was stopped for good); terminal.
 *
 * The machine is a pure mode tracker: it decides *what state control is
 * in*, never *what to do about it* — actuation, counter bumps and record
 * keeping stay in OnlineController, which dispatches events at exactly the
 * points where it used to mutate the flags.
 */
#ifndef AEO_CORE_CONTROLLER_STATE_MACHINE_H_
#define AEO_CORE_CONTROLLER_STATE_MACHINE_H_

#include <cstdint>

namespace aeo {

/** Operating mode of the online controller. */
enum class ControllerState {
    kNormal,
    kDegraded,
    kSafeMode,
    kProbe,
    kFallbackStock,
};

inline constexpr int kControllerStateCount = 5;

/** Everything that can move the controller between modes. */
enum class ControllerEvent {
    /** A control cycle began while control is engaged. */
    kCycleStart,
    /** The perf window was plausible; closed-loop regulation ran. */
    kPerfReadOk,
    /** The perf window was empty or implausible; the cycle ran degraded. */
    kPerfReadFailed,
    /** Read-back saw a delivered level below the request (clamp evidence,
     * not yet trusted). */
    kActuationMismatch,
    /** Clamp evidence persisted for cap_confirm_cycles; the feasible set
     * is now masked. */
    kClampConfirmed,
    /** A learned clamp went unconfirmed for cap_recheck_cycles and was
     * dropped; the full table is feasible again. */
    kCapExpired,
    /** The drift detector applied a correction to the working table. */
    kDriftCorrected,
    /** The required speedup exceeds the reachable ceiling. */
    kTargetUnreachable,
    /** No profiled configuration is reachable under the active caps. */
    kFeasibleSetEmpty,
    /** K consecutive cycles failed to actuate. */
    kWatchdogTrip,
    /** A recovery probe of the actuation path came back healthy. */
    kProbeOk,
    /** A recovery probe failed at the transport level. */
    kProbeFailed,
    /** Stop() — control wound down by the experiment driver. */
    kControlStopped,
    /** The control tick ran late but within the jitter tolerance. */
    kTickJitter,
    /** The control tick slipped past its epoch (deadline miss). */
    kTickMissed,
    /** The tick arrived after a suspend-length gap; estimators must not
     * treat the gap as a measurement window. */
    kSuspendResume,
    /** K consecutive deadline misses — temporal analogue of a watchdog
     * trip: control cannot hold its epoch, so the stock governors rule. */
    kDeadlineStorm,
};

inline constexpr int kControllerEventCount = 17;

const char* ControllerStateName(ControllerState state);
const char* ControllerEventName(ControllerEvent event);

/** Re-engagement tuning the machine needs to resolve a watchdog trip. */
struct StateMachineOptions {
    /** Probe-and-re-engage after a trip; off, the fallback is terminal. */
    bool reengage = true;
    /** Consecutive healthy probes required to leave PROBE. */
    int reengage_successes = 3;
};

/** The result of dispatching one event. */
struct StateTransition {
    /** The state after the event. */
    ControllerState state;
    /** False iff the (state, event) pair is not in the transition table
     * (the machine stays put and the dispatch is counted). */
    bool legal;
    /** True iff the state changed. */
    bool changed;
};

/** The mode tracker. Deterministic, allocation-free, no I/O. */
class ControllerStateMachine {
  public:
    explicit ControllerStateMachine(
        StateMachineOptions options = {},
        ControllerState initial = ControllerState::kNormal);

    /** Feeds one event through the transition table. */
    StateTransition Dispatch(ControllerEvent event);

    ControllerState state() const { return state_; }

    /** True while the stock governors rule (PROBE or FALLBACK_STOCK). */
    bool fallback_engaged() const
    {
        return state_ == ControllerState::kProbe ||
               state_ == ControllerState::kFallbackStock;
    }

    /** True while the control cycle runs (NORMAL/DEGRADED/SAFE_MODE). */
    bool control_engaged() const { return !fallback_engaged(); }

    /** Healthy probes accumulated toward the re-engagement quorum. */
    int probe_successes() const { return probe_successes_; }

    /** Dispatches that named a pair outside the transition table. */
    uint64_t illegal_dispatch_count() const { return illegal_dispatches_; }

    /**
     * What the table says about a (state, event) pair, without dispatching:
     * the successor state, or @p state itself for pairs that stay put.
     * Returns false for pairs outside the table (@p next untouched). The
     * quorum-dependent PROBE × kProbeOk pair reports the quorum-met
     * successor (NORMAL). Exposed so tests can cover the entire table.
     */
    static bool ActionFor(ControllerState state, ControllerEvent event,
                          const StateMachineOptions& options,
                          ControllerState* next);

  private:
    StateMachineOptions options_;
    ControllerState state_;
    int probe_successes_ = 0;
    uint64_t illegal_dispatches_ = 0;
};

}  // namespace aeo

#endif  // AEO_CORE_CONTROLLER_STATE_MACHINE_H_
