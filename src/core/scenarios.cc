#include "core/scenarios.h"

#include "common/logging.h"

namespace aeo {

namespace {

/** Every other level in [first, last], always including @p last. */
std::vector<int>
Alternate(int first, int last)
{
    std::vector<int> levels;
    for (int level = first; level <= last; level += 2) {
        levels.push_back(level);
    }
    if (levels.back() != last) {
        levels.push_back(last);
    }
    return levels;
}

}  // namespace

AppScenario
GetAppScenario(const std::string& app_name)
{
    AppScenario scenario;
    scenario.app_name = app_name;

    if (app_name == "VidCon") {
        scenario.batch = true;
        scenario.run_duration = SimTime::FromSeconds(400);  // completion cap
        scenario.profile_cpu_levels = Alternate(6, 17);     // paper levels 7,9,..,18
    } else if (app_name == "MobileBench") {
        scenario.batch = true;
        scenario.run_duration = SimTime::FromSeconds(400);
        scenario.profile_cpu_levels = Alternate(6, 17);  // paper levels 7,9,..,18
    } else if (app_name == "AngryBirds") {
        scenario.batch = false;
        scenario.run_duration = SimTime::FromSeconds(200);  // §IV-C: 200 s played
        scenario.profile_duration = SimTime::FromSeconds(45);  // covers an ad cycle
        scenario.profile_cpu_levels = {0, 2, 4};            // paper levels 1, 3, 5
    } else if (app_name == "WeChat") {
        scenario.batch = false;
        scenario.run_duration = SimTime::FromSeconds(100);  // 100 s video call
        scenario.profile_cpu_levels = {2, 4, 6};            // paper levels 3, 5, 7
    } else if (app_name == "MXPlayer") {
        scenario.batch = false;
        scenario.run_duration = SimTime::FromSeconds(137);  // 137 s HD video
        scenario.profile_cpu_levels = Alternate(4, 17);     // paper levels 5,7,..,18
    } else if (app_name == "Spotify") {
        scenario.batch = false;
        scenario.run_duration = SimTime::FromSeconds(100);  // 100 s, songs @20 s
        scenario.profile_duration = SimTime::FromSeconds(45);  // two song cycles
        scenario.profile_cpu_levels = {0, 2, 4};            // paper levels 1, 3, 5
    } else if (app_name == "eBook") {
        scenario.batch = false;
        scenario.run_duration = SimTime::FromSeconds(120);
        scenario.profile_cpu_levels = {0, 2, 4};
    } else {
        Fatal("no scenario for application '%s'", app_name.c_str());
    }
    return scenario;
}

std::vector<std::string>
EvaluationAppNames()
{
    return {"VidCon", "MobileBench", "AngryBirds", "WeChat", "MXPlayer", "Spotify"};
}

}  // namespace aeo
