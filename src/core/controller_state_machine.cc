#include "core/controller_state_machine.h"

#include "common/logging.h"

namespace aeo {

namespace {

/** What the transition table prescribes for a (state, event) pair. */
enum class Action {
    kIllegal,
    /** Legal, no mode change. */
    kStay,
    kToNormal,
    kToDegraded,
    kToSafeMode,
    /** Watchdog action: PROBE when re-engagement is on, else terminal. */
    kTripFallback,
    /** One healthy probe; NORMAL once the quorum is met. */
    kProbeSuccess,
    /** One failed probe; the quorum counter restarts. */
    kProbeFailure,
};

// The single transition table. Rows are states, columns are events in
// declaration order: CycleStart, PerfReadOk, PerfReadFailed,
// ActuationMismatch, ClampConfirmed, CapExpired, DriftCorrected,
// TargetUnreachable, FeasibleSetEmpty, WatchdogTrip, ProbeOk, ProbeFailed,
// ControlStopped, TickJitter, TickMissed, SuspendResume, DeadlineStorm.
constexpr Action kIll = Action::kIllegal;
constexpr Action kSty = Action::kStay;

constexpr Action
    kTransitionTable[kControllerStateCount][kControllerEventCount] = {
        // NORMAL: full control vocabulary; probes never run here. Timing
        // events are mode-neutral annotations except a deadline storm,
        // which trips like a watchdog.
        {kSty, Action::kToNormal, Action::kToDegraded, kSty, kSty, kSty, kSty,
         Action::kToSafeMode, Action::kTripFallback, Action::kTripFallback,
         kIll, kIll, kSty, kSty, kSty, kSty, Action::kTripFallback},
        // DEGRADED: identical — degradation is re-evaluated every cycle.
        {kSty, Action::kToNormal, Action::kToDegraded, kSty, kSty, kSty, kSty,
         Action::kToSafeMode, Action::kTripFallback, Action::kTripFallback,
         kIll, kIll, kSty, kSty, kSty, kSty, Action::kTripFallback},
        // SAFE_MODE: identical — the envelope lifts as soon as the target
        // is reachable again.
        {kSty, Action::kToNormal, Action::kToDegraded, kSty, kSty, kSty, kSty,
         Action::kToSafeMode, Action::kTripFallback, Action::kTripFallback,
         kIll, kIll, kSty, kSty, kSty, kSty, Action::kTripFallback},
        // PROBE: the control cycle is stopped, so only probe outcomes (and
        // a final Stop) are meaningful; tick classification has no cycle to
        // annotate.
        {kIll, kIll, kIll, kIll, kIll, kIll, kIll, kIll, kIll, kIll,
         Action::kProbeSuccess, Action::kProbeFailure, kSty, kIll, kIll, kIll,
         kIll},
        // FALLBACK_STOCK: terminal.
        {kIll, kIll, kIll, kIll, kIll, kIll, kIll, kIll, kIll, kIll, kIll,
         kIll, kSty, kIll, kIll, kIll, kIll},
};

Action
LookUp(ControllerState state, ControllerEvent event)
{
    return kTransitionTable[static_cast<int>(state)][static_cast<int>(event)];
}

}  // namespace

const char*
ControllerStateName(ControllerState state)
{
    switch (state) {
        case ControllerState::kNormal: return "NORMAL";
        case ControllerState::kDegraded: return "DEGRADED";
        case ControllerState::kSafeMode: return "SAFE_MODE";
        case ControllerState::kProbe: return "PROBE";
        case ControllerState::kFallbackStock: return "FALLBACK_STOCK";
    }
    return "?";
}

const char*
ControllerEventName(ControllerEvent event)
{
    switch (event) {
        case ControllerEvent::kCycleStart: return "CycleStart";
        case ControllerEvent::kPerfReadOk: return "PerfReadOk";
        case ControllerEvent::kPerfReadFailed: return "PerfReadFailed";
        case ControllerEvent::kActuationMismatch: return "ActuationMismatch";
        case ControllerEvent::kClampConfirmed: return "ClampConfirmed";
        case ControllerEvent::kCapExpired: return "CapExpired";
        case ControllerEvent::kDriftCorrected: return "DriftCorrected";
        case ControllerEvent::kTargetUnreachable: return "TargetUnreachable";
        case ControllerEvent::kFeasibleSetEmpty: return "FeasibleSetEmpty";
        case ControllerEvent::kWatchdogTrip: return "WatchdogTrip";
        case ControllerEvent::kProbeOk: return "ProbeOk";
        case ControllerEvent::kProbeFailed: return "ProbeFailed";
        case ControllerEvent::kControlStopped: return "ControlStopped";
        case ControllerEvent::kTickJitter: return "TickJitter";
        case ControllerEvent::kTickMissed: return "TickMissed";
        case ControllerEvent::kSuspendResume: return "SuspendResume";
        case ControllerEvent::kDeadlineStorm: return "DeadlineStorm";
    }
    return "?";
}

ControllerStateMachine::ControllerStateMachine(StateMachineOptions options,
                                               ControllerState initial)
    : options_(options), state_(initial)
{
    AEO_ASSERT(options_.reengage_successes > 0,
               "re-engagement quorum must be positive");
}

StateTransition
ControllerStateMachine::Dispatch(ControllerEvent event)
{
    const ControllerState from = state_;
    switch (LookUp(from, event)) {
        case Action::kIllegal:
            ++illegal_dispatches_;
            Warn("controller state machine: event %s is illegal in state %s",
                 ControllerEventName(event), ControllerStateName(from));
            return StateTransition{from, false, false};
        case Action::kStay:
            break;
        case Action::kToNormal:
            state_ = ControllerState::kNormal;
            break;
        case Action::kToDegraded:
            state_ = ControllerState::kDegraded;
            break;
        case Action::kToSafeMode:
            state_ = ControllerState::kSafeMode;
            break;
        case Action::kTripFallback:
            probe_successes_ = 0;
            state_ = options_.reengage ? ControllerState::kProbe
                                       : ControllerState::kFallbackStock;
            break;
        case Action::kProbeSuccess:
            if (++probe_successes_ >= options_.reengage_successes) {
                probe_successes_ = 0;
                state_ = ControllerState::kNormal;
            }
            break;
        case Action::kProbeFailure:
            probe_successes_ = 0;
            break;
    }
    return StateTransition{state_, true, state_ != from};
}

bool
ControllerStateMachine::ActionFor(ControllerState state, ControllerEvent event,
                                  const StateMachineOptions& options,
                                  ControllerState* next)
{
    switch (LookUp(state, event)) {
        case Action::kIllegal:
            return false;
        case Action::kStay:
        case Action::kProbeFailure:
            *next = state;
            return true;
        case Action::kToNormal:
            *next = ControllerState::kNormal;
            return true;
        case Action::kToDegraded:
            *next = ControllerState::kDegraded;
            return true;
        case Action::kToSafeMode:
            *next = ControllerState::kSafeMode;
            return true;
        case Action::kTripFallback:
            *next = options.reengage ? ControllerState::kProbe
                                     : ControllerState::kFallbackStock;
            return true;
        case Action::kProbeSuccess:
            *next = ControllerState::kNormal;
            return true;
    }
    return false;
}

}  // namespace aeo
