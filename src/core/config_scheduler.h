/**
 * @file
 * The scheduler S of the feedback loop (Fig. 2): applies the optimizer's
 * dwell-time schedule to the phone through the userspace governors' sysfs
 * files, honouring the 200 ms minimum dwell the paper's implementation
 * enforces (§V-A: "the smallest duration for the CPUs to stay at any given
 * frequency is 200 ms"). Not to be confused with the OS scheduler.
 *
 * Actuation is hardened against the failures a real Nexus 6 exhibits:
 *
 *  - transient errors (EBUSY/EIO, injected or real) are retried with capped
 *    exponential backoff, the cumulative delay bounded by the min-dwell
 *    budget so a flaky write can never eat into the next slot;
 *  - EINVAL (a rejected target) falls back to the nearest accepted
 *    frequency, walking outward through the OPP table;
 *  - every exhausted operation is counted, and consecutive fully-failed
 *    Apply() cycles are tracked so the controller's watchdog can revert to
 *    the stock governors after K strikes;
 *  - every accepted write is *verified by read-back*: the subsystem's
 *    cur_freq is re-read and compared against the request, so a write that
 *    succeeds but silently delivers a lower operating point (msm_thermal's
 *    clamp, an injected silent-clamp fault) is detected rather than trusted.
 *
 * The per-dwell path is allocation-free: sysfs nodes are opened once as
 * interned SysfsHandles, and the candidate value strings for every target
 * level (nearest-first, for the EINVAL fallback walk) are precomputed at
 * construction from the device's immutable OPP tables.
 */
#ifndef AEO_CORE_CONFIG_SCHEDULER_H_
#define AEO_CORE_CONFIG_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/energy_optimizer.h"
#include "core/profile_table.h"
#include "device/device.h"

namespace aeo {

/** Retry/backoff tuning for sysfs actuation. */
struct ActuationRetryPolicy {
    /** Maximum retries per write after the initial attempt. */
    int max_retries = 4;
    /** First backoff delay; doubles on each subsequent retry. */
    SimTime initial_backoff = SimTime::Millis(12);
    /**
     * Ceiling on the cumulative backoff (plus injected latency) one write
     * may consume. Zero = use the scheduler's min dwell, keeping retrial
     * inside the 200 ms dwell budget.
     */
    SimTime budget = SimTime::Zero();
};

/** Counters describing how actuation has gone so far. */
struct ActuationStats {
    /** Successful sysfs configuration writes. */
    uint64_t writes = 0;
    /** Retry attempts after transient failures. */
    uint64_t retries = 0;
    /** EINVAL fallbacks to a neighbouring accepted frequency. */
    uint64_t inval_fallbacks = 0;
    /**
     * Writes that exhausted their retry budget and gave up — the write
     * itself *failed* (the kernel returned an error). Distinct from
     * silent_clamps below, where the write succeeded but lied.
     */
    uint64_t failed_ops = 0;
    /** Writes whose read-back verification completed. */
    uint64_t verified_writes = 0;
    /**
     * Writes that were *accepted but not applied*: the write reported
     * success yet read-back showed a different operating point (thermal
     * throttling, an injected silent clamp). Invisible without read-back.
     */
    uint64_t silent_clamps = 0;
    /** Read-backs that themselves failed, leaving the write unverified. */
    uint64_t readback_failures = 0;
};

/** Requested-vs-delivered outcome of one subsystem write. */
struct ActuationDelivery {
    /** Whether this subsystem was actuated at all in the dwell. */
    bool attempted = false;
    /** Whether the write (after retries/fallback) reported success. */
    bool write_ok = false;
    /** Whether read-back verification completed. */
    bool verified = false;
    /** Level the scheduler asked for (after any EINVAL fallback). */
    int requested_level = -1;
    /** Level read back from the device; -1 when unverified. */
    int delivered_level = -1;

    /** True when the device silently delivered less than requested. */
    bool
    clamped() const
    {
        return verified && delivered_level < requested_level;
    }
};

/** Per-dwell delivery record across the actuated subsystems. */
struct DwellDelivery {
    /** The configuration the slot asked for. */
    SystemConfig requested_config;
    /** Planned dwell duration, seconds (0 for out-of-cycle applies). */
    double seconds = 0.0;
    ActuationDelivery cpu;
    ActuationDelivery bw;
    ActuationDelivery gpu;
};

/** Applies configuration schedules to the device. */
class ConfigScheduler {
  public:
    /**
     * @param device    The plant; must outlive the scheduler.
     * @param min_dwell Minimum time at any configuration (200 ms).
     * @param retry     Retry/backoff tuning for flaky sysfs writes.
     */
    ConfigScheduler(Device* device, SimTime min_dwell = SimTime::Millis(200),
                    ActuationRetryPolicy retry = {});

    /**
     * Quantizes dwells to the minimum-dwell grid (preserving the cycle
     * total) and schedules the sysfs writes over the coming cycle. Slots
     * rounding to zero are merged into the remaining slot. Starts a new
     * actuation cycle for failure accounting: the previous cycle's outcome
     * is folded into consecutive_failed_applies() first.
     *
     * @param schedule Optimizer output (1 or 2 slots).
     * @param table    The profile table the slot indices refer to.
     */
    void Apply(const ConfigSchedule& schedule, const ProfileTable& table);

    /**
     * Writes one configuration immediately, retrying transient failures and
     * substituting the nearest accepted level on EINVAL.
     *
     * @return true if every subsystem write eventually succeeded.
     */
    bool ApplyConfigNow(const SystemConfig& config);

    /** Cancels configuration switches still pending from the current cycle
     * (used when the controller hands the device back to stock governors). */
    void CancelPending();

    /** Total successful sysfs configuration writes performed. */
    uint64_t write_count() const { return stats_.writes; }

    /** Actuation health counters. */
    const ActuationStats& stats() const { return stats_; }

    /**
     * Enables/disables post-write read-back verification (on by default).
     * Verification re-reads the subsystem's cur_freq after every accepted
     * write and records requested-vs-delivered levels, exposing silent
     * clamps that a write-only actuator cannot see.
     */
    void SetReadbackVerification(bool on) { readback_ = on; }

    /**
     * Delivery records accumulated since the last Apply() opened a cycle
     * (slot writes land here as their events fire). The controller drains
     * them at the next cycle boundary to learn what the device actually ran.
     */
    const std::vector<DwellDelivery>& cycle_deliveries() const
    {
        return cycle_deliveries_;
    }

    /**
     * Clears the consecutive-failure accounting (used when the watchdog
     * re-engages control after a fallback period: old strikes must not
     * count against the fresh start).
     */
    void ResetFailureTracking();

    /**
     * Number of Apply() cycles in a row — including the current one — whose
     * actuation failed (at least one write exhausted its retries). The
     * controller's watchdog reverts to the stock governors when this
     * reaches its threshold.
     */
    int consecutive_failed_applies() const;

  private:
    /**
     * Everything needed to actuate one subsystem without allocating: the
     * interned set/readback nodes, and — per target level — the candidate
     * value strings (and their level indices) ordered by distance from the
     * target, which the EINVAL fallback walks outward.
     */
    struct SubsystemActuator {
        SysfsHandle set;
        SysfsHandle readback;
        std::vector<std::vector<std::string>> candidates;
        std::vector<std::vector<int>> levels;
        /** Maps a raw readback value to the nearest table level. */
        std::function<int(long long)> to_level;
    };

    /** Retries @p value at @p node under the backoff budget. */
    FaultErrc WriteWithRetry(SysfsHandle node, const std::string& value);

    /** One subsystem write with EINVAL fallback over candidate values,
     * ordered preferred-first. @p accepted_index receives the index of the
     * candidate that succeeded (untouched on failure). */
    bool WriteWithFallback(SysfsHandle node,
                           const std::vector<std::string>& candidates,
                           size_t* accepted_index = nullptr);

    /** Writes @p target on @p plan's node (with fallback + read-back) and
     * records the outcome in @p delivery. */
    void ActuateSubsystem(const SubsystemActuator& plan, int target,
                          ActuationDelivery* delivery);

    /** Re-reads @p plan's readback node and fills in the verification half
     * of @p delivery. */
    void VerifyDelivery(const SubsystemActuator& plan,
                        ActuationDelivery* delivery);

    void NoteOpOutcome(bool ok);

    Device* device_;
    SubsystemActuator cpu_plan_;
    SubsystemActuator bw_plan_;
    SubsystemActuator gpu_plan_;
    SimTime min_dwell_;
    ActuationRetryPolicy retry_;
    ActuationStats stats_;
    std::vector<EventId> pending_;
    std::vector<DwellDelivery> cycle_deliveries_;
    bool readback_ = true;
    /** Completed Apply() cycles that failed, consecutively. */
    int failed_cycles_in_a_row_ = 0;
    /** Whether any op has failed in the current cycle. */
    bool cycle_has_failure_ = false;
    bool cycle_open_ = false;
};

}  // namespace aeo

#endif  // AEO_CORE_CONFIG_SCHEDULER_H_
