/**
 * @file
 * The scheduler S of the feedback loop (Fig. 2): applies the optimizer's
 * dwell-time schedule to the phone through the userspace governors' sysfs
 * files, honouring the 200 ms minimum dwell the paper's implementation
 * enforces (§V-A: "the smallest duration for the CPUs to stay at any given
 * frequency is 200 ms"). Not to be confused with the OS scheduler.
 */
#ifndef AEO_CORE_CONFIG_SCHEDULER_H_
#define AEO_CORE_CONFIG_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "core/energy_optimizer.h"
#include "core/profile_table.h"
#include "device/device.h"

namespace aeo {

/** Applies configuration schedules to the device. */
class ConfigScheduler {
  public:
    /**
     * @param device    The plant; must outlive the scheduler.
     * @param min_dwell Minimum time at any configuration (200 ms).
     */
    ConfigScheduler(Device* device, SimTime min_dwell = SimTime::Millis(200));

    /**
     * Quantizes dwells to the minimum-dwell grid (preserving the cycle
     * total) and schedules the sysfs writes over the coming cycle. Slots
     * rounding to zero are merged into the remaining slot.
     *
     * @param schedule Optimizer output (1 or 2 slots).
     * @param table    The profile table the slot indices refer to.
     */
    void Apply(const ConfigSchedule& schedule, const ProfileTable& table);

    /** Writes one configuration immediately. */
    void ApplyConfigNow(const SystemConfig& config);

    /** Total sysfs configuration writes performed. */
    uint64_t write_count() const { return write_count_; }

  private:
    Device* device_;
    SimTime min_dwell_;
    uint64_t write_count_ = 0;
    std::vector<EventId> pending_;
};

}  // namespace aeo

#endif  // AEO_CORE_CONFIG_SCHEDULER_H_
