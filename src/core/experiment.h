/**
 * @file
 * The end-to-end experiment harness behind the paper's evaluation (§V):
 * run an application under the default governors, profile it offline, run
 * it again under the controller with the default performance as the target,
 * and compare energy and performance — the procedure that generates
 * Tables III, IV and V and Figures 4 and 5.
 */
#ifndef AEO_CORE_EXPERIMENT_H_
#define AEO_CORE_EXPERIMENT_H_

#include <string>

#include "apps/background_load.h"
#include "core/offline_profiler.h"
#include "core/online_controller.h"
#include "core/profile_table.h"
#include "core/scenarios.h"
#include "device/run_result.h"

namespace aeo {

/** Options for one default-vs-controller comparison. */
struct ExperimentOptions {
    /** Background load during profiling (the paper always profiles in BL). */
    BackgroundKind profile_load = BackgroundKind::kBaseline;
    /** Background load during both evaluation runs. */
    BackgroundKind run_load = BackgroundKind::kBaseline;
    /** CPU-only controller (§V-D ablation). */
    bool cpu_only = false;
    /** Sparse profiling + interpolation (§III-A); false = dense grid. */
    bool sparse_profiling = true;
    /** Runs averaged per profiled configuration. */
    int profile_runs = 3;
    /**
     * Measurement window per profiling run; Zero = use the app scenario's
     * cycle-covering default.
     */
    SimTime profile_duration = SimTime::Zero();
    /**
     * Post-profiling pruning threshold (§V-A): rows whose speedup advantage
     * over a cheaper row is below this fraction of the maximum speedup are
     * dropped from the table supplied to the controller. 0 disables.
     */
    double prune_epsilon = 0.01;
    /**
     * CPU governor for the baseline ("default") run. Empty = the Android
     * stock interactive governor, the paper's comparison point and the
     * byte-identical legacy path. Any registered governor name works —
     * e.g. "lulzactive" compares the controller against the community
     * governor instead (bench flag --baseline=lulzactive).
     */
    std::string baseline_cpu_governor;
    /** Controller tuning; target_gips is filled from the default run. */
    ControllerConfig controller;
    /** Base seed; default/profiling/controller runs use distinct streams. */
    uint64_t seed = 7;
    /**
     * Parallel fan-out for the profiling stage of this comparison (see
     * ProfilerOptions::batch). Ignored — forced serial — when the
     * comparison itself runs inside a RunComparisons() fan-out, so pools
     * never nest.
     */
    BatchOptions batch;
};

/** One entry in a RunComparisons() sweep. */
struct ComparisonJob {
    std::string app_name;
    ExperimentOptions options;
};

/** Everything one comparison produces. */
struct ExperimentOutcome {
    RunResult default_run;
    RunResult controller_run;
    ProfileTable table;
    /** Performance change, percent (positive = controller faster). */
    double perf_delta_pct = 0.0;
    /** Energy savings, percent (positive = controller saves energy). */
    double energy_savings_pct = 0.0;
};

/** Runs the paper's evaluation procedure. */
class ExperimentHarness {
  public:
    explicit ExperimentHarness(DeviceFactory factory = MakeDefaultDeviceFactory());

    /** Runs @p app_name under the default governors (interactive+hwmon).
     * A non-empty @p cpu_governor replaces interactive on the CPU. */
    RunResult RunDefault(const std::string& app_name, BackgroundKind load,
                         uint64_t seed,
                         const std::string& cpu_governor = {}) const;

    /** Profiles @p app_name per its scenario. */
    ProfileTable ProfileApp(const std::string& app_name,
                            const ExperimentOptions& options) const;

    /**
     * Runs @p app_name under the controller with the given table and
     * target.
     */
    RunResult RunWithController(const std::string& app_name, const ProfileTable& table,
                                double target_gips, const ExperimentOptions& options,
                                uint64_t seed) const;

    /** The full §V procedure: default → profile → controller → compare. */
    ExperimentOutcome RunComparison(const std::string& app_name,
                                    const ExperimentOptions& options = {}) const;

    /**
     * Runs a sweep of independent comparisons across the batch layer and
     * returns the outcomes in @p jobs order. Each comparison is one batch
     * job (its inner profiling is forced serial so pools never nest); every
     * outcome is bit-identical to calling RunComparison() directly,
     * regardless of worker count.
     */
    std::vector<ExperimentOutcome> RunComparisons(std::vector<ComparisonJob> jobs,
                                                  const BatchOptions& batch = {}) const;

  private:
    void DriveRun(Device* device, const AppScenario& scenario) const;

    DeviceFactory factory_;
};

}  // namespace aeo

#endif  // AEO_CORE_EXPERIMENT_H_
