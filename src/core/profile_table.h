/**
 * @file
 * The offline profile table (§III-A, Table I): per system configuration,
 * the application's average speedup 𝕊 (normalized to the lowest profiled
 * configuration) and average device power ℙ. The online controller's energy
 * optimizer works entirely from this table.
 */
#ifndef AEO_CORE_PROFILE_TABLE_H_
#define AEO_CORE_PROFILE_TABLE_H_

#include <string>
#include <vector>

#include "common/units.h"
#include "common/system_config.h"
#include "soc/bandwidth_table.h"

namespace aeo {

/** One profiled row: configuration, speedup and power. */
struct ProfileEntry {
    SystemConfig config;
    /** Average speedup 𝕊 relative to the base configuration. */
    double speedup = 1.0;
    /** Average device power ℙ at this configuration. */
    Milliwatts power_mw;
};

/** Raw measurement before normalization. */
struct ProfileMeasurement {
    SystemConfig config;
    /** Average application performance, GIPS. */
    double gips = 0.0;
    /** Average device power. */
    Milliwatts power_mw;
};

/** Immutable profile table sorted by ascending speedup. */
class ProfileTable {
  public:
    /**
     * @param app_name        Application the table profiles.
     * @param entries         Profiled rows (any order; sorted internally).
     * @param base_speed_gips Absolute performance of the speedup-1 reference.
     */
    ProfileTable(std::string app_name, std::vector<ProfileEntry> entries,
                 double base_speed_gips);

    /**
     * Builds a table from raw measurements: speedups are normalized to the
     * slowest measured configuration (the paper's "lowest system
     * configuration" reference).
     */
    static ProfileTable FromMeasurements(
        const std::string& app_name,
        const std::vector<ProfileMeasurement>& measurements);

    /** Application name. */
    const std::string& app_name() const { return app_name_; }

    /** Rows in ascending speedup order. */
    const std::vector<ProfileEntry>& entries() const { return entries_; }

    /** Number of rows (N in the paper's notation). */
    size_t size() const { return entries_.size(); }

    /** Base speed b: GIPS of the speedup-1 reference configuration. */
    double base_speed_gips() const { return base_speed_gips_; }

    /** Smallest achievable speedup. */
    double min_speedup() const { return entries_.front().speedup; }

    /** Largest achievable speedup. */
    double max_speedup() const { return entries_.back().speedup; }

    /** Speedup corresponding to an absolute GIPS value. */
    double SpeedupForGips(double gips) const { return gips / base_speed_gips_; }

    /** Absolute GIPS for a speedup value. */
    double GipsForSpeedup(double speedup) const { return speedup * base_speed_gips_; }

    /**
     * Densifies bandwidth columns by linear interpolation (§III-A): for each
     * CPU level the table must contain the lowest and highest profiled
     * bandwidth; each missing level in @p bw_table is interpolated in
     * bandwidth for both speedup and power.
     */
    ProfileTable InterpolateBandwidths(const BandwidthTable& bw_table) const;

    /**
     * Application-specific pruning (§V-A): drops rows whose extra speedup
     * over a *cheaper* row is within measurement noise. The paper excludes
     * "the high frequencies ... based on the performance/power
     * characteristics of the profiled data" — e.g. MX Player's performance
     * varies only 0.4 % beyond level 5, so paying more power for it is
     * pointless and only destabilizes the controller.
     *
     * @param epsilon_rel A row is dropped when another row has strictly
     *        lower power and a speedup within epsilon_rel·max_speedup below
     *        (or above) this row's.
     */
    ProfileTable PruneEpsilonDominated(double epsilon_rel) const;

    /**
     * The other half of the §V-A exclusion: cuts the steep tail of the
     * energy/performance frontier. Walking the rows in ascending speedup,
     * the marginal cost of each step — ΔmW per unit of speedup — is
     * compared against the table-wide average slope (power range over
     * speedup range); once a step costs more than @p slope_factor times
     * that average, it and every faster row are dropped. On a wide
     * heterogeneous cross-product the last few percent of speedup can cost
     * half again the platform's power (big and LITTLE both at fmax); when
     * the regulator saturates — a measurement dip, a phase change — it pegs
     * the most expensive row, so a disproportionate tail turns transient
     * saturation into a massive energy regression. The paper prunes these
     * rows by hand per application; this automates the same judgement.
     *
     * Rows with speedup ≤ @p protect_below_speedup are never cut, so the
     * caller can guarantee the target QoS region survives (pass 0 for an
     * unconditional cut, or the target speedup plus margin).
     */
    ProfileTable PruneSteepTail(double slope_factor,
                                double protect_below_speedup) const;

    /** Serializes to CSV (cpu_level, bw_level, speedup, power_mw columns). */
    std::string ToCsv() const;

    /** Parses a table produced by ToCsv(); Fatal() on malformed input. */
    static ProfileTable FromCsv(const std::string& app_name, const std::string& csv,
                                double base_speed_gips);

    /** Paper-style rendering (Table I). */
    std::string ToString() const;

  private:
    void Validate() const;

    std::string app_name_;
    std::vector<ProfileEntry> entries_;
    double base_speed_gips_;
};

}  // namespace aeo

#endif  // AEO_CORE_PROFILE_TABLE_H_
